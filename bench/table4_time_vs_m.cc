// Table IV reproduction: overall time of SQM (gamma = 18, BGW, P = 4,
// n = 500 in the paper) versus the record count m. Expected shape: overall
// time grows linearly in m while the DP-injection time is independent of m
// (the noise dimension depends only on n).

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "bench/timing_common.h"

int main(int argc, char** argv) {
  using namespace sqm;
  const bench::BenchConfig config = bench::ParseArgs(argc, argv);

  const size_t n = config.paper_scale ? 500 : 16;
  const std::vector<size_t> record_counts =
      config.paper_scale ? std::vector<size_t>{20, 100, 500, 2500}
                         : std::vector<size_t>{20, 100, 500, 1000};
  const size_t clients = 4;
  const double gamma = 18.0;
  const double latency = config.paper_scale ? 0.1 : 0.0;

  bench::PrintHeader(
      "Table IV: SQM time vs record count m (gamma=18, P=4, n=" +
          std::to_string(n) + ")",
      config.paper_scale ? "scale=paper" : "scale=small");

  std::printf("\nTask: principal component analysis (PCA)\n");
  bench::PrintTimingHeader("records m");
  for (size_t m : record_counts) {
    bench::PrintTimingRow(m,
                          bench::TimePcaRelease(m, n, clients, gamma,
                                                latency));
  }

  std::printf("\nTask: logistic regression (LR)\n");
  bench::PrintTimingHeader("records m");
  for (size_t m : record_counts) {
    bench::PrintTimingRow(m,
                          bench::TimeLrRelease(m, n, clients, gamma,
                                               latency));
  }

  std::printf(
      "\nReading: overall time grows ~linearly in m while the DP column "
      "is flat (noise dimension depends only on n) — cf. paper Table "
      "IV.\n");
  return 0;
}
