// Ablation (DESIGN.md / paper Section I challenge 2): why SQM injects
// Skellam noise rather than the discrete Gaussian [51].
//
// (a) Privacy at matched variance: the Skellam RDP bound (Lemma 1) is the
//     discrete/continuous-Gaussian term alpha*D2^2/(2*Var) plus a
//     correction that vanishes as the variance grows — the two noises are
//     interchangeable in utility.
// (b) Distributed closure: Skellam is closed under convolution, so n
//     clients sampling Sk(mu/n) produce exactly Sk(mu) in aggregate, and
//     the privacy analysis applies verbatim. The discrete Gaussian is NOT
//     closed: the sum of n shares deviates from N_Z(0, sigma^2), and the
//     deviation (measured here as an empirical total-variation distance)
//     blows up precisely in the small-noise regime where it matters —
//     which is why distributed discrete-Gaussian protocols need either a
//     trusted sampler or costly secure sampling [52, 53], the gap SQM
//     closes.

#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_common.h"
#include "dp/gaussian.h"
#include "dp/rdp.h"
#include "dp/skellam.h"
#include "sampling/discrete_gaussian.h"
#include "sampling/rng.h"
#include "sampling/skellam_sampler.h"

namespace sqm {
namespace {

/// Empirical TV distance between two integer samples.
double EmpiricalTv(const std::vector<int64_t>& a,
                   const std::vector<int64_t>& b) {
  std::map<int64_t, double> pmf;
  const double wa = 1.0 / static_cast<double>(a.size());
  const double wb = 1.0 / static_cast<double>(b.size());
  for (int64_t x : a) pmf[x] += wa;
  for (int64_t x : b) pmf[x] -= wb;
  double tv = 0.0;
  for (const auto& [x, diff] : pmf) tv += std::fabs(diff);
  return tv / 2.0;
}

}  // namespace
}  // namespace sqm

int main(int argc, char** argv) {
  using namespace sqm;
  const bench::BenchConfig config = bench::ParseArgs(argc, argv);
  const size_t trials = config.paper_scale ? 400000 : 80000;

  bench::PrintHeader(
      "Ablation: Skellam vs discrete Gaussian as the DP noise",
      "privacy at matched variance + closure under distributed summation");

  // ---- (a) epsilon at matched variance (single release, delta = 1e-5).
  std::printf("(a) epsilon of one release, sensitivity D2 = 10, delta = "
              "1e-5, matched Var:\n");
  std::printf("%-14s %-16s %-18s\n", "variance", "Skellam eps",
              "Gaussian-RDP eps");
  bench::PrintRule();
  const double d2 = 10.0;
  for (double variance : {4e2, 4e3, 4e4, 4e5}) {
    const double mu = variance / 2.0;
    const double skellam_eps =
        SkellamEpsilonSingleRelease(mu, d2 * d2, d2, 1e-5);
    const auto gauss = [&](double alpha) {
      return GaussianRdp(alpha, d2, std::sqrt(variance));
    };
    const double gauss_eps =
        BestEpsilonFromCurve(gauss, DefaultAlphaGrid(), 1e-5);
    std::printf("%-14.0f %-16.4f %-18.4f\n", variance, skellam_eps,
                gauss_eps);
  }

  // ---- (b) closure under summation across n clients.
  std::printf(
      "\n(b) empirical TV distance between [sum of n noise shares] and "
      "[the target distribution], %zu trials:\n",
      trials);
  std::printf("%-10s %-10s %-26s %-26s\n", "Var", "n clients",
              "Skellam: sum vs Sk(mu)", "DGauss: sum vs N_Z(sigma^2)");
  bench::PrintRule();
  Rng rng(17);
  for (double variance : {1.0, 4.0, 25.0}) {
    for (size_t n : {4u, 16u}) {
      const double mu = variance / 2.0;
      const SkellamSampler sk_share(mu / static_cast<double>(n));
      const SkellamSampler sk_direct(mu);
      const double sigma = std::sqrt(variance);
      const DiscreteGaussianSampler dg_share(
          sigma / std::sqrt(static_cast<double>(n)));
      const DiscreteGaussianSampler dg_direct(sigma);

      std::vector<int64_t> sk_sum(trials), sk_one(trials), dg_sum(trials),
          dg_one(trials);
      for (size_t i = 0; i < trials; ++i) {
        int64_t s = 0;
        int64_t g = 0;
        for (size_t j = 0; j < n; ++j) {
          s += sk_share.Sample(rng);
          g += dg_share.Sample(rng);
        }
        sk_sum[i] = s;
        dg_sum[i] = g;
        sk_one[i] = sk_direct.Sample(rng);
        dg_one[i] = dg_direct.Sample(rng);
      }
      std::printf("%-10.0f %-10zu %-26.4f %-26.4f\n", variance, n,
                  EmpiricalTv(sk_sum, sk_one), EmpiricalTv(dg_sum, dg_one));
    }
  }

  std::printf(
      "\nReading: (a) the two noises cost the same epsilon once the "
      "variance is moderately large; (b) the Skellam column is pure "
      "sampling error (closure is exact) while the discrete-Gaussian "
      "column shows a real distributional gap that grows as the variance "
      "shrinks — the reason SQM's distributed noise is Skellam.\n");
  return 0;
}
