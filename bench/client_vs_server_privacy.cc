// Section V-C ("On data partitioning") quantified: the server-observed
// guarantee of SQM is independent of how many clients the columns are
// split across, while the client-observed guarantee carries the factor
// P/(P-1) (each client knows its own Sk(mu/P) share) plus the doubled
// replace-one sensitivity — and converges to a fixed gap as P grows.
// This is the asymmetry Table III's threat-model comparison turns on.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/sensitivity.h"
#include "dp/rdp.h"
#include "dp/skellam.h"

int main(int argc, char** argv) {
  using namespace sqm;
  (void)bench::ParseArgs(argc, argv);

  bench::PrintHeader(
      "Client- vs server-observed privacy vs number of clients P",
      "PCA release, gamma=4096, n=64 attributes, mu calibrated for "
      "server eps=1, delta=1e-5");

  const double gamma = 4096.0;
  const size_t n = 64;
  const double delta = 1e-5;
  const SensitivityBound sens = PcaSensitivity(gamma, 1.0, n);
  const double mu =
      CalibrateSkellamMuSingleRelease(1.0, delta, sens.l1, sens.l2)
          .ValueOrDie();

  const auto server_curve = [&](double alpha) {
    return SkellamRdpServer(alpha, sens.l1, sens.l2, mu);
  };
  const double server_eps =
      BestEpsilonFromCurve(server_curve, DefaultAlphaGrid(), delta);

  std::printf("%-10s %-16s %-16s %-14s\n", "clients P", "server eps",
              "client eps", "ratio");
  bench::PrintRule();
  for (size_t clients : {2u, 4u, 8u, 16u, 64u, 256u, 1024u}) {
    const auto client_curve = [&](double alpha) {
      return SkellamRdpClient(alpha, sens.l1, sens.l2, mu, clients);
    };
    const double client_eps =
        BestEpsilonFromCurve(client_curve, DefaultAlphaGrid(), delta);
    std::printf("%-10zu %-16.4f %-16.4f %-14.4f\n", clients, server_eps,
                client_eps, client_eps / server_eps);
  }

  std::printf(
      "\nReading: the server column is flat — partitioning does not "
      "change the aggregate noise Sk(mu). The client column shrinks as "
      "P grows (the P/(P-1) known-share factor vanishes) but converges "
      "to a fixed multiple of the server epsilon driven by the doubled "
      "replace-one sensitivity (cf. paper Section V-C and the tau_client "
      "formulas of Lemmas 3-5).\n");
  return 0;
}
