// Figure 3 reproduction: logistic-regression test accuracy versus epsilon
// on four ACSIncome-style state profiles, comparing
//   - Centralized : DPSGD with exact sigmoid [54],
//   - SQM(2^13)   : the paper's mechanism at fine quantization,
//   - SQM(2^10)   : coarser quantization,
//   - VFL-LocalDP : the Algorithm-4 baseline (perturb data, train to
//                   convergence).
// Expected shape (paper): SQM(2^13) ~ Centralized for eps >= 1; SQM(2^10)
// slightly below; both far above the local-DP baseline.

#include <cstdio>
#include <functional>
#include <vector>

#include "bench/bench_common.h"
#include "vfl/dataset.h"
#include "vfl/logistic.h"
#include "vfl/synthetic.h"

namespace sqm {
namespace {

/// Rounds per epsilon, standing in for the paper's "2, 5, 8, 10, 10
/// epochs" schedule (one round = one Poisson batch).
size_t RoundsForEpsilon(double eps, bool paper_scale) {
  const size_t unit = paper_scale ? 200 : 8;
  if (eps <= 0.5) return 2 * unit;
  if (eps <= 1.0) return 5 * unit;
  if (eps <= 2.0) return 8 * unit;
  return 10 * unit;
}

}  // namespace
}  // namespace sqm

int main(int argc, char** argv) {
  using namespace sqm;
  const bench::BenchConfig config = bench::ParseArgs(argc, argv);
  const int reps = config.reps > 0 ? config.reps
                                   : (config.paper_scale ? 20 : 3);

  bench::PrintHeader(
      "Figure 3: LR test accuracy vs epsilon (ACSIncome-style states)",
      config.paper_scale ? "scale=paper" : "scale=small (use --scale=paper "
                                           "for the full grid)");

  const std::vector<double> epsilons{0.5, 1, 2, 4, 8};
  const std::vector<std::string> states{"CA", "TX", "NY", "FL"};
  const double data_scale = config.paper_scale ? 1.0 : 0.04;
  const double q = config.paper_scale ? 0.001 : 0.05;

  for (const std::string& state : states) {
    const VflDataset full = MakeAcsIncomeLrLike(state, data_scale);
    const TrainTestSplit split = SplitTrainTest(full, 0.5, 7).ValueOrDie();
    // The paper trains on a 10% subsample of each state's ~100k records;
    // at small scale the split is already that size, so keep all of it
    // (a 1/10 subsample of 2k records would starve every method).
    const VflDataset train =
        config.paper_scale
            ? SubsampleRecords(split.train, split.train.num_records() / 10,
                               3)
                  .ValueOrDie()
            : split.train;

    std::printf("\nState %s: m_train=%zu d=%zu q=%g (delta=1e-5)\n",
                state.c_str(), train.num_records(), train.num_features(),
                q);
    std::printf("%-12s", "method");
    for (double eps : epsilons) std::printf("  eps=%-6.3g", eps);
    std::printf("\n");
    bench::PrintRule();

    auto sweep = [&](const std::string& name,
                     const std::function<double(const LogisticOptions&)>&
                         run) {
      std::printf("%-12s", name.c_str());
      for (double eps : epsilons) {
        std::vector<double> accs;
        for (int r = 0; r < reps; ++r) {
          LogisticOptions options;
          options.epsilon = eps;
          options.sample_rate = q;
          options.rounds = RoundsForEpsilon(eps, config.paper_scale);
          options.learning_rate = 2.0;
          options.seed = 100 + 31 * r;
          accs.push_back(run(options));
        }
        std::printf("  %-10.4f", bench::Summarize(accs).mean);
      }
      std::printf("\n");
    };

    sweep("Centralized", [&](const LogisticOptions& options) {
      return TrainDpSgd(train, split.test, options)
          .ValueOrDie()
          .test_accuracy;
    });
    sweep("SQM 2^13", [&](const LogisticOptions& base) {
      LogisticOptions options = base;
      options.gamma = 8192.0;
      return TrainSqmLogistic(train, split.test, options)
          .ValueOrDie()
          .test_accuracy;
    });
    sweep("SQM 2^10", [&](const LogisticOptions& base) {
      LogisticOptions options = base;
      options.gamma = 1024.0;
      return TrainSqmLogistic(train, split.test, options)
          .ValueOrDie()
          .test_accuracy;
    });
    sweep("VFL-LocalDP", [&](const LogisticOptions& options) {
      return TrainLocalDpLogistic(train, split.test, options)
          .ValueOrDie()
          .test_accuracy;
    });
  }

  std::printf(
      "\nReading: SQM 2^13 should track Centralized within a few points "
      "for eps >= 1, SQM 2^10 slightly below, and VFL-LocalDP far below "
      "(cf. paper Figure 3).\n");
  return 0;
}
