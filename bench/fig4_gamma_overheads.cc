// Figure 4 reproduction: effect of the scaling parameter gamma on
//  (a) the L2 sensitivity overhead of quantized LR,
//        sqrt((3/4)^2 + 9d/gamma + 36/gamma^2) - 3/4   (d = 800),
//  (b) the normalized std of the calibrated Skellam noise relative to the
//      centralized DPSGD Gaussian at the same (eps, delta, q, rounds).
// Both must decay to ~0 as gamma grows (log-scale y in the paper).

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/sensitivity.h"
#include "dp/gaussian.h"
#include "dp/skellam.h"

int main(int argc, char** argv) {
  using namespace sqm;
  const bench::BenchConfig config = bench::ParseArgs(argc, argv);

  bench::PrintHeader(
      "Figure 4: sensitivity & noise overhead of SQM-LR vs gamma",
      "analytic reproduction (d=800, eps=1, delta=1e-5, q=0.001, 5 "
      "epochs-worth of rounds)");

  const size_t d = 800;
  const double eps = 1.0;
  const double delta = 1e-5;
  const double q = 0.001;
  // The paper runs 5 epochs at q = 0.001; one epoch ~ 1/q rounds would be
  // 5000 — we follow the proportionality with the same constant for both
  // mechanisms, which is what the *ratio* plotted in Figure 4 measures.
  const size_t rounds = config.paper_scale ? 5000 : 500;

  // Centralized reference: DPSGD noise multiplier for the same schedule,
  // normalized per unit sensitivity.
  const double z_central =
      CalibrateDpSgdNoise(eps, delta, q, rounds).ValueOrDie();

  std::printf("%-10s %-22s %-22s %-20s\n", "gamma", "sensitivity overhead",
              "normalized noise std", "noise overhead vs central");
  bench::PrintRule();
  for (double gamma : {64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0}) {
    const double sens_overhead = LogisticSensitivityOverhead(gamma, d);

    // Calibrate mu for the quantized release and normalize the injected
    // noise std back to the data scale (divide by gamma^3, the LR output
    // scale).
    const SensitivityBound sens = LogisticGradientSensitivity(gamma, d);
    const double mu =
        CalibrateSkellamMuSubsampled(eps, delta, sens.l1, sens.l2, q,
                                     rounds)
            .ValueOrDie();
    const double normalized_std =
        std::sqrt(2.0 * mu) / (gamma * gamma * gamma);
    // Central DPSGD injects std z * C with C = 1 per round; Approx-poly
    // sensitivity is 3/4, so the matched-likeness reference is z * 3/4.
    const double reference = z_central * 0.75;
    std::printf("%-10.0f %-22.6g %-22.6g %-20.6g\n", gamma, sens_overhead,
                normalized_std, normalized_std / reference - 1.0);
  }

  std::printf(
      "\nReading: both the sensitivity overhead and the noise overhead "
      "relative to the centralized Gaussian decay towards 0 as gamma "
      "grows (cf. paper Figure 4; note the paper plots log-scale y).\n");
  return 0;
}
