// Google-benchmark microbenchmarks for the substrates: field arithmetic,
// Shamir sharing, samplers, quantization, BGW multiplication throughput,
// and the eigensolvers. These bound the constants behind Table I's
// asymptotic complexities.

#include <benchmark/benchmark.h>
#include "mpc/network.h"

#include "core/quantize.h"
#include "math/eigen.h"
#include "math/linalg.h"
#include "mpc/field.h"
#include "mpc/protocol.h"
#include "sampling/gaussian_sampler.h"
#include "sampling/poisson.h"
#include "sampling/rng.h"
#include "sampling/skellam_sampler.h"

namespace sqm {
namespace {

void BM_FieldMul(benchmark::State& state) {
  Rng rng(1);
  const Field::Element a = rng.NextBounded(Field::kModulus);
  Field::Element b = rng.NextBounded(Field::kModulus);
  for (auto _ : state) {
    b = Field::Mul(a, b);
    benchmark::DoNotOptimize(b);
  }
}
BENCHMARK(BM_FieldMul);

void BM_FieldInv(benchmark::State& state) {
  Rng rng(2);
  Field::Element a = 1 + rng.NextBounded(Field::kModulus - 1);
  for (auto _ : state) {
    a = Field::Inv(a | 1);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_FieldInv);

void BM_ShamirShare(benchmark::State& state) {
  const size_t parties = state.range(0);
  ShamirScheme scheme(parties, (parties - 1) / 2);
  Rng rng(3);
  for (auto _ : state) {
    auto shares = scheme.Share(12345, rng);
    benchmark::DoNotOptimize(shares);
  }
}
BENCHMARK(BM_ShamirShare)->Arg(4)->Arg(10)->Arg(20);

void BM_ShamirReconstruct(benchmark::State& state) {
  const size_t parties = state.range(0);
  ShamirScheme scheme(parties, (parties - 1) / 2);
  Rng rng(4);
  const auto shares = scheme.Share(12345, rng);
  for (auto _ : state) {
    auto secret = scheme.Reconstruct(shares);
    benchmark::DoNotOptimize(secret);
  }
}
BENCHMARK(BM_ShamirReconstruct)->Arg(4)->Arg(10)->Arg(20);

void BM_PoissonSmallMu(benchmark::State& state) {
  PoissonSampler sampler(2.0);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(rng));
  }
}
BENCHMARK(BM_PoissonSmallMu);

void BM_PoissonLargeMu(benchmark::State& state) {
  PoissonSampler sampler(1e6);
  Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(rng));
  }
}
BENCHMARK(BM_PoissonLargeMu);

void BM_SkellamSample(benchmark::State& state) {
  SkellamSampler sampler(static_cast<double>(state.range(0)));
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(rng));
  }
}
BENCHMARK(BM_SkellamSample)->Arg(100)->Arg(1000000);

void BM_GaussianSample(benchmark::State& state) {
  GaussianSampler sampler(1.0);
  Rng rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(rng));
  }
}
BENCHMARK(BM_GaussianSample);

void BM_StochasticRound(benchmark::State& state) {
  Rng rng(9);
  double v = 0.123456;
  for (auto _ : state) {
    benchmark::DoNotOptimize(StochasticRound(v, 8192.0, rng));
    v += 1e-9;
  }
}
BENCHMARK(BM_StochasticRound);

void BM_BgwMulBatch(benchmark::State& state) {
  const size_t parties = 4;
  const size_t batch = state.range(0);
  SimulatedNetwork network(parties, 0.0);
  BgwProtocol protocol(ShamirScheme(parties, 1), &network, 10);
  std::vector<Field::Element> values(batch, 7);
  const SharedVector a = protocol.ShareFromParty(0, values);
  const SharedVector b = protocol.ShareFromParty(1, values);
  for (auto _ : state) {
    auto product = protocol.Mul(a, b);
    benchmark::DoNotOptimize(product);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_BgwMulBatch)->Arg(64)->Arg(1024)->Arg(16384);

void BM_Gram(benchmark::State& state) {
  const size_t n = state.range(0);
  Matrix x(256, n);
  Rng rng(11);
  for (auto& v : x.data()) v = rng.NextDouble();
  for (auto _ : state) {
    auto gram = Gram(x);
    benchmark::DoNotOptimize(gram);
  }
}
BENCHMARK(BM_Gram)->Arg(16)->Arg(64)->Arg(128);

void BM_JacobiEigen(benchmark::State& state) {
  const size_t n = state.range(0);
  Matrix a(n, n);
  Rng rng(12);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      a(i, j) = a(j, i) = rng.NextDouble() - 0.5;
    }
  }
  for (auto _ : state) {
    auto eig = JacobiEigenSymmetric(a);
    benchmark::DoNotOptimize(eig);
  }
}
BENCHMARK(BM_JacobiEigen)->Arg(8)->Arg(32);

void BM_TopKEigenvectors(benchmark::State& state) {
  const size_t n = state.range(0);
  Matrix a(n, n);
  Rng rng(13);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      a(i, j) = a(j, i) = rng.NextDouble() - 0.5;
    }
  }
  for (auto _ : state) {
    auto v = TopKEigenvectors(a, 5);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_TopKEigenvectors)->Arg(32)->Arg(128);

}  // namespace
}  // namespace sqm

BENCHMARK_MAIN();
