// Ablation (paper Section V-B / VII "Extension to more complicated
// functions"): quality of polynomial approximations of the sigmoid — the
// sole approximation step in SQM's logistic regression.
//
// Compares, per degree and interval radius R (= the bound on |<w, x>|):
//   - Taylor truncation at 0 (the paper's choice, H = 1),
//   - Chebyshev interpolation on [-R, R] (uniformly optimal up to a
//     constant).
// With ||w||, ||x|| <= 1 the argument never leaves [-1, 1], where even the
// order-1 Taylor error is < 0.02 — hence Figure 5's negligible gap. For
// models with larger pre-activations the Taylor error explodes while
// Chebyshev stays controlled, quantifying why "more delicate
// approximations are needed" beyond LR.

#include <cstdio>

#include "bench/bench_common.h"
#include "poly/chebyshev.h"
#include "poly/taylor.h"

int main(int argc, char** argv) {
  using namespace sqm;
  (void)bench::ParseArgs(argc, argv);

  bench::PrintHeader(
      "Ablation: sigmoid approximation quality (Taylor vs Chebyshev)",
      "max |approx - sigmoid| over |u| <= R");

  const auto sigmoid = [](double u) { return Sigmoid(u); };
  std::printf("%-8s %-8s %-18s %-18s\n", "degree", "R", "Taylor max err",
              "Chebyshev max err");
  bench::PrintRule();
  for (size_t degree : {1u, 3u, 5u, 7u}) {
    for (double radius : {1.0, 2.0, 4.0}) {
      const double taylor = SigmoidTaylorMaxError(degree, radius);
      const auto cheb =
          SigmoidChebyshevCoefficients(degree, radius).ValueOrDie();
      const double chebyshev =
          MaxApproximationError(sigmoid, cheb, radius);
      std::printf("%-8zu %-8.1f %-18.6g %-18.6g\n", degree, radius, taylor,
                  chebyshev);
    }
  }

  std::printf(
      "\nReading: at R = 1 (the LR regime: ||w||, ||x|| <= 1) both are "
      "tiny, matching Figure 5's negligible gap. At R = 4 the Taylor "
      "truncation is useless while Chebyshev still converges — the "
      "quantitative content behind the paper's caveat that deeper models "
      "need more delicate approximations.\n");
  return 0;
}
