// Table II companion: the same SQM release over BGW on four transport
// configurations — the paper's lock-step simulation (deterministic, time =
// rounds * 0.1 s), the threaded runtime on reliable links (real wall-clock
// concurrency), the threaded runtime on lossy links (drops recovered by
// timeout + retransmission), and real TCP over localhost (one transport
// per party thread, full mesh on loopback sockets — the deployment path
// sqm-party runs, minus process isolation). The released integers are
// identical in all four; what changes is the clock being reported and the
// traffic needed to get there.
//
// With --json=FILE the per-row numbers are also written as a JSON record
// (scripts/check.sh archives it as BENCH_transport_modes.json).

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/party_sqm.h"
#include "core/sqm.h"
#include "net/tcp/party_config.h"
#include "net/tcp/socket.h"
#include "net/tcp/tcp_transport.h"
#include "poly/parser.h"

namespace {

struct TcpRun {
  bool supported = false;
  bool ok = false;
  double wall_seconds = 0.0;
  sqm::SqmReport report;  ///< Party 0's report.
  std::string error;
};

/// Runs every party of `config` as a thread over a real loopback mesh
/// (pre-bound port-0 listeners, the coordinator's race-free setup) and
/// times the whole run including mesh establishment.
TcpRun RunTcpLocalhost(sqm::DeploymentConfig config) {
  TcpRun result;
  if (!sqm::net::TcpSupported()) return result;
  result.supported = true;

  const size_t n = config.parties.size();
  std::vector<sqm::net::Socket> listeners;
  for (size_t i = 0; i < n; ++i) {
    sqm::Result<sqm::net::Socket> listener =
        sqm::net::ListenOn("127.0.0.1", 0);
    if (!listener.ok()) {
      result.error = listener.status().ToString();
      return result;
    }
    sqm::Result<uint16_t> port = sqm::net::LocalPort(listener.ValueOrDie());
    if (!port.ok()) {
      result.error = port.status().ToString();
      return result;
    }
    config.parties[i].port = port.ValueOrDie();
    listeners.push_back(std::move(listener.ValueOrDie()));
  }

  std::vector<sqm::SqmReport> reports(n);
  std::vector<std::string> errors(n);
  std::vector<std::thread> threads;
  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < n; ++i) {
    const int fd = listeners[i].Release();
    threads.emplace_back([&, i, fd] {
      sqm::Result<std::unique_ptr<sqm::TcpTransport>> transport =
          sqm::TcpTransport::Create(
              sqm::TcpOptionsFromDeployment(config, i, fd));
      if (!transport.ok()) {
        errors[i] = transport.status().ToString();
        return;
      }
      sqm::Result<sqm::SqmReport> report =
          sqm::RunPartySqm(config, i, transport.ValueOrDie().get());
      transport.ValueOrDie()->Shutdown();
      if (!report.ok()) {
        errors[i] = report.status().ToString();
        return;
      }
      reports[i] = report.ValueOrDie();
    });
  }
  for (std::thread& thread : threads) thread.join();
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  for (size_t i = 0; i < n; ++i) {
    if (!errors[i].empty()) {
      result.error = "party " + std::to_string(i) + ": " + errors[i];
      return result;
    }
    if (reports[i].raw != reports[0].raw) {
      result.error = "party " + std::to_string(i) + " released different values";
      return result;
    }
  }
  result.ok = true;
  result.report = reports[0];
  return result;
}

struct Row {
  size_t n = 0;
  size_t m = 0;
  double lockstep_seconds = 0.0;
  double threaded_seconds = 0.0;
  double lossy_seconds = 0.0;
  unsigned long long lossy_messages = 0;
  unsigned long long lossy_retries = 0;
  bool tcp_supported = false;
  double tcp_seconds = 0.0;
  bool match = false;
};

void WriteJson(const std::string& path, bool paper_scale,
               const std::vector<Row>& rows) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(out,
               "{\"bench\":\"transport_modes\",\"scale\":\"%s\","
               "\"modes\":[\"lockstep\",\"threaded\",\"threaded-lossy\","
               "\"tcp-localhost\"],\"rows\":[",
               paper_scale ? "paper" : "small");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(
        out,
        "%s{\"n\":%zu,\"m\":%zu,\"lockstep_simulated_seconds\":%.6f,"
        "\"threaded_wall_seconds\":%.6f,\"lossy_wall_seconds\":%.6f,"
        "\"lossy_messages\":%llu,\"lossy_retries\":%llu,"
        "\"tcp_supported\":%s,\"tcp_wall_seconds\":%.6f,\"match\":%s}",
        i == 0 ? "" : ",", row.n, row.m, row.lockstep_seconds,
        row.threaded_seconds, row.lossy_seconds, row.lossy_messages,
        row.lossy_retries, row.tcp_supported ? "true" : "false",
        row.tcp_seconds, row.match ? "true" : "false");
  }
  std::fprintf(out, "]}\n");
  std::fclose(out);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sqm;
  const bench::BenchConfig config = bench::ParseArgs(argc, argv);

  const size_t m = config.paper_scale ? 200 : 40;
  const std::vector<size_t> dims =
      config.paper_scale ? std::vector<size_t>{8, 16, 32}
                         : std::vector<size_t>{4, 8, 12};
  const double gamma = 18.0;
  const double latency = 0.1;  // The paper's per-round latency.
  const double drop_probability = 0.05;

  bench::PrintHeader(
      "Table II companion: lock-step simulated time vs threaded and TCP "
      "wall-clock (m=" + std::to_string(m) + ", gamma=18, latency=0.1 s)",
      "release f_i(x) = x_i * x_{i+1 mod n}; lossy = " +
          std::to_string(drop_probability) + " drop probability per link; "
          "tcp = n transports on loopback sockets (the sqm-party path)");

  std::printf("\n%-6s %-4s %-14s %-14s %-14s %-12s %-9s %-9s %-6s\n", "n",
              "P", "lockstep (s)", "threaded (s)", "lossy (s)", "tcp (s)",
              "messages", "retries", "match");
  bench::PrintRule();

  std::vector<Row> rows;
  for (size_t n : dims) {
    // A pairwise-product release: n output dimensions, one batched Mul
    // round, the message pattern of the paper's quadratic (PCA-style)
    // task. Expressed once as a deployment config so all four transports
    // run byte-for-byte the same mechanism: the in-process modes derive
    // their SqmOptions from it, the TCP mode runs it per party.
    DeploymentConfig deployment;
    deployment.run_id = 7000 + n;
    deployment.session_key = 0xbe4c;
    deployment.parties.assign(n, {"127.0.0.1", 0});
    deployment.rows = m;
    deployment.cols = n;
    deployment.data_seed = 7 * n + 1;
    deployment.gamma = gamma;
    deployment.mu = 0.0;
    deployment.max_f_l2 = static_cast<double>(n);
    deployment.quantize_coefficients = false;
    std::string poly;
    for (size_t i = 0; i < n; ++i) {
      if (i > 0) poly += "; ";
      poly += "x" + std::to_string(i) + "*x" + std::to_string((i + 1) % n);
    }
    deployment.polynomial = poly;

    const Matrix x =
        GenerateDeploymentMatrix(m, n, deployment.data_seed);
    Result<PolynomialVector> f = ParsePolynomialVector(deployment.polynomial);
    Result<SqmOptions> base = SqmOptionsFromDeployment(deployment);
    SqmOptions options = base.ValueOrDie();
    options.network_latency_seconds = latency;

    const SqmReport lockstep =
        SqmEvaluator(options).Evaluate(f.ValueOrDie(), x).ValueOrDie();

    options.transport = TransportMode::kThreaded;
    options.threaded.receive_timeout_seconds = 0.05;
    options.threaded.max_retries = 8;
    options.threaded.retry_backoff_seconds = 0.0005;
    const SqmReport threaded =
        SqmEvaluator(options).Evaluate(f.ValueOrDie(), x).ValueOrDie();

    options.threaded.faults.all_links.drop_probability = drop_probability;
    const SqmReport lossy =
        SqmEvaluator(options).Evaluate(f.ValueOrDie(), x).ValueOrDie();

    const TcpRun tcp = RunTcpLocalhost(deployment);
    if (tcp.supported && !tcp.ok) {
      std::fprintf(stderr, "tcp run (n=%zu) failed: %s\n", n,
                   tcp.error.c_str());
    }

    Row row;
    row.n = n;
    row.m = m;
    row.lockstep_seconds = lockstep.transport.simulated_seconds;
    row.threaded_seconds = threaded.transport.wall_seconds;
    row.lossy_seconds = lossy.transport.wall_seconds;
    row.lossy_messages = lossy.network.messages;
    row.lossy_retries = lossy.transport.retries;
    row.tcp_supported = tcp.supported;
    row.tcp_seconds = tcp.wall_seconds;
    row.match = threaded.raw == lockstep.raw && lossy.raw == lockstep.raw &&
                (!tcp.supported || (tcp.ok && tcp.report.raw == lockstep.raw));
    rows.push_back(row);

    char tcp_text[32];
    if (tcp.supported) {
      std::snprintf(tcp_text, sizeof(tcp_text), "%.4f", tcp.wall_seconds);
    } else {
      std::snprintf(tcp_text, sizeof(tcp_text), "n/a");
    }
    std::printf("%-6zu %-4zu %-14.3f %-14.4f %-14.4f %-12s %-9llu %-9llu %-6s\n",
                n, n, row.lockstep_seconds, row.threaded_seconds,
                row.lossy_seconds, tcp_text, row.lossy_messages,
                row.lossy_retries, row.match ? "yes" : "NO");
  }

  std::printf(
      "\nReading: the lock-step column charges 0.1 s per synchronous round "
      "(the paper's model); the other columns are real wall-clock. Reliable "
      "threaded links finish in milliseconds, each recovered drop adds one "
      "receive-timeout window, and the TCP column adds mesh establishment "
      "plus kernel socket hops. The released integers match across all "
      "transports — bit-exactness is independent of the execution model.\n");

  if (!config.json_path.empty()) {
    WriteJson(config.json_path, config.paper_scale, rows);
    std::printf("JSON summary written to %s\n", config.json_path.c_str());
  }
  return 0;
}
