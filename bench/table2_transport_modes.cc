// Table II companion: the same SQM release over BGW on the three transport
// configurations — the paper's lock-step simulation (deterministic, time =
// rounds * 0.1 s), the threaded runtime on reliable links (real wall-clock
// concurrency), and the threaded runtime on lossy links (drops recovered by
// timeout + retransmission). The released integers are identical in all
// three; what changes is the clock being reported and the traffic needed to
// get there.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/sqm.h"
#include "sampling/rng.h"

int main(int argc, char** argv) {
  using namespace sqm;
  const bench::BenchConfig config = bench::ParseArgs(argc, argv);

  const size_t m = config.paper_scale ? 200 : 40;
  const std::vector<size_t> dims =
      config.paper_scale ? std::vector<size_t>{8, 16, 32}
                         : std::vector<size_t>{4, 8, 12};
  const double gamma = 18.0;
  const double latency = 0.1;  // The paper's per-round latency.
  const double drop_probability = 0.05;

  bench::PrintHeader(
      "Table II companion: lock-step simulated time vs threaded wall-clock "
      "(m=" + std::to_string(m) + ", gamma=18, latency=0.1 s)",
      "release f_i(x) = x_i * x_{i+1 mod n}; lossy = " +
          std::to_string(drop_probability) + " drop probability per link");

  std::printf("\n%-6s %-4s %-14s %-14s %-14s %-9s %-9s %-6s\n", "n", "P",
              "lockstep (s)", "threaded (s)", "lossy (s)", "messages",
              "retries", "match");
  bench::PrintRule();

  for (size_t n : dims) {
    // A pairwise-product release: n output dimensions, one batched Mul
    // round, the message pattern of the paper's quadratic (PCA-style) task.
    PolynomialVector f;
    for (size_t i = 0; i < n; ++i) {
      Polynomial p;
      p.AddTerm(Monomial(1.0, {{i, 1}, {(i + 1) % n, 1}}));
      f.AddDimension(p);
    }
    Matrix x(m, n);
    Rng rng(7 * n + 1);
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = 0; j < n; ++j) {
        x(i, j) = (rng.NextDouble() - 0.5) * 0.8;
      }
    }

    SqmOptions options;
    options.gamma = gamma;
    options.mu = 0.0;
    options.backend = MpcBackend::kBgw;
    options.network_latency_seconds = latency;
    options.max_f_l2 = static_cast<double>(n);
    options.quantize_coefficients = false;

    const SqmReport lockstep =
        SqmEvaluator(options).Evaluate(f, x).ValueOrDie();

    options.transport = TransportMode::kThreaded;
    options.threaded.receive_timeout_seconds = 0.05;
    options.threaded.max_retries = 8;
    options.threaded.retry_backoff_seconds = 0.0005;
    const SqmReport threaded =
        SqmEvaluator(options).Evaluate(f, x).ValueOrDie();

    options.threaded.faults.all_links.drop_probability = drop_probability;
    const SqmReport lossy =
        SqmEvaluator(options).Evaluate(f, x).ValueOrDie();

    const bool match =
        threaded.raw == lockstep.raw && lossy.raw == lockstep.raw;
    std::printf("%-6zu %-4zu %-14.3f %-14.4f %-14.4f %-9llu %-9llu %-6s\n",
                n, n, lockstep.transport.simulated_seconds,
                threaded.transport.wall_seconds,
                lossy.transport.wall_seconds,
                static_cast<unsigned long long>(lossy.network.messages),
                static_cast<unsigned long long>(lossy.transport.retries),
                match ? "yes" : "NO");
  }

  std::printf(
      "\nReading: the lock-step column charges 0.1 s per synchronous round "
      "(the paper's model); the threaded columns are real wall-clock, so "
      "reliable links finish in milliseconds and each recovered drop adds "
      "one receive-timeout window. The released integers match across all "
      "transports.\n");
  return 0;
}
