// Ablation (DESIGN.md): stochastic rounding (Algorithm 2) versus
// deterministic nearest rounding. Nearest rounding is not unbiased: on a
// Gram matrix the per-entry rounding residuals correlate with the data and
// accumulate a systematic bias across the m records, while Algorithm 2's
// residuals are zero-mean and average out. This bench measures the bias of
// the de-scaled covariance diagonal under both schemes at coarse gamma.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/quantize.h"
#include "math/linalg.h"
#include "sampling/rng.h"

namespace sqm {
namespace {

/// Mean signed error of the Gram diagonal estimate over `reps` datasets.
struct BiasResult {
  double stochastic = 0.0;
  double nearest = 0.0;
};

BiasResult MeasureBias(size_t m, double value, double gamma, int reps) {
  // All records identical with one attribute = `value`: the exact Gram
  // "matrix" is m * value^2. Nearest rounding maps every record to the
  // same integer, so its residual never averages out.
  BiasResult result;
  for (int r = 0; r < reps; ++r) {
    Rng rng(100 + r);
    double stochastic_gram = 0.0;
    for (size_t i = 0; i < m; ++i) {
      const double q = static_cast<double>(
          StochasticRound(value, gamma, rng));
      stochastic_gram += q * q;
    }
    const double nearest_q = static_cast<double>(NearestRound(value, gamma));
    const double nearest_gram = static_cast<double>(m) * nearest_q *
                                nearest_q;
    const double exact = static_cast<double>(m) * value * value;
    result.stochastic += stochastic_gram / (gamma * gamma) - exact;
    result.nearest += nearest_gram / (gamma * gamma) - exact;
  }
  result.stochastic /= reps;
  result.nearest /= reps;
  return result;
}

}  // namespace
}  // namespace sqm

int main(int argc, char** argv) {
  using namespace sqm;
  const bench::BenchConfig config = bench::ParseArgs(argc, argv);
  const int reps = config.reps > 0 ? config.reps : 40;
  const size_t m = config.paper_scale ? 100000 : 5000;

  bench::PrintHeader(
      "Ablation: stochastic (Algorithm 2) vs nearest rounding",
      "signed bias of the de-scaled Gram diagonal, m=" + std::to_string(m));

  std::printf("%-8s %-10s %-22s %-22s\n", "gamma", "value",
              "bias (stochastic)", "bias (nearest)");
  bench::PrintRule();
  for (double gamma : {4.0, 8.0, 16.0, 64.0}) {
    for (double value : {0.37, 0.81}) {
      const BiasResult bias = MeasureBias(m, value, gamma, reps);
      std::printf("%-8.0f %-10.2f %-22.5f %-22.5f\n", gamma, value,
                  bias.stochastic, bias.nearest);
    }
  }

  std::printf(
      "\nReading: Algorithm 2's bias stays near 0 at every gamma (the "
      "small residual is the E[q^2] = (gamma v)^2 + p(1-p) variance "
      "inflation, bounded by 1/(4 gamma^2) after de-scaling); nearest "
      "rounding carries an O(m/gamma) systematic bias that noise cannot "
      "hide. This is why SQM quantizes with randomized rounding.\n");
  return 0;
}
