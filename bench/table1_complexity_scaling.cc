// Table I reproduction: the paper's complexity table is analytic
// (computation / communication / time for PCA and LR under BGW). This
// bench (a) restates the formulas and (b) validates the dominant scaling
// empirically: measured communication for PCA grows ~n^2 m P and for LR
// ~n m P, and measured time follows the same trend, by fitting the growth
// exponent between successive problem sizes.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "bench/timing_common.h"

namespace sqm {
namespace {

double GrowthExponent(double small_value, double large_value,
                      double size_ratio) {
  return std::log(large_value / small_value) / std::log(size_ratio);
}

}  // namespace
}  // namespace sqm

int main(int argc, char** argv) {
  using namespace sqm;
  const bench::BenchConfig config = bench::ParseArgs(argc, argv);

  bench::PrintHeader("Table I: complexity of SQM under BGW",
                     "analytic formulas + empirical scaling check");

  std::printf(
      "Paper formulas (m records, n attributes, P clients, scale gamma):\n"
      "  PCA: computation O(mP + n^2 m log m / P + n^2) per client,\n"
      "       communication O(n^2 m P log gamma), time O(n^2 m log m)\n"
      "  LR : computation O(m(n-1)P + m(n-1) log m / P) per client,\n"
      "       communication O(m(n-1) P log m log gamma), time "
      "O(m(n-1) log m)\n\n");

  const size_t m = config.paper_scale ? 500 : 60;
  const size_t n_small = config.paper_scale ? 50 : 8;
  const size_t n_large = 2 * n_small;
  const double ratio = 2.0;

  const bench::TimingRow pca_small =
      bench::TimePcaRelease(m, n_small, 4, 18.0, 0.0);
  const bench::TimingRow pca_large =
      bench::TimePcaRelease(m, n_large, 4, 18.0, 0.0);
  const bench::TimingRow lr_small =
      bench::TimeLrRelease(m, n_small, 4, 18.0, 0.0);
  const bench::TimingRow lr_large =
      bench::TimeLrRelease(m, n_large, 4, 18.0, 0.0);

  std::printf("Empirical growth exponents when doubling n (m=%zu, P=4):\n",
              m);
  std::printf("%-28s %-12s %-12s\n", "quantity", "measured", "expected");
  bench::PrintRule();
  std::printf("%-28s %-12.2f %-12s\n", "PCA communication vs n",
              GrowthExponent(static_cast<double>(pca_small.elements),
                             static_cast<double>(pca_large.elements),
                             ratio),
              "~2 (n^2)");
  std::printf("%-28s %-12.2f %-12s\n", "PCA wall time vs n",
              GrowthExponent(pca_small.overall_seconds,
                             pca_large.overall_seconds, ratio),
              "~2 (n^2)");
  std::printf("%-28s %-12.2f %-12s\n", "LR communication vs n",
              GrowthExponent(static_cast<double>(lr_small.elements),
                             static_cast<double>(lr_large.elements),
                             ratio),
              "~1-2 (n..n^2*)");
  std::printf("%-28s %-12.2f %-12s\n", "LR wall time vs n",
              GrowthExponent(lr_small.overall_seconds,
                             lr_large.overall_seconds, ratio),
              "~1-2");
  std::printf(
      "\n* The generic circuit path evaluates the expanded degree-2 "
      "polynomial (n^2 monomials); the paper's O(m n) LR figure assumes "
      "the structured inner-product evaluation, which the vectorized "
      "protocol layer (mpc/protocol.h InnerProduct) provides.\n");
  return 0;
}
