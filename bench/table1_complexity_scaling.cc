// Table I reproduction: the paper's complexity table is analytic
// (computation / communication / time for PCA and LR under BGW). This
// bench (a) restates the formulas, (b) validates the dominant scaling
// empirically: measured communication for PCA grows ~n^2 m P and for LR
// ~n m P, and measured time follows the same trend, by fitting the growth
// exponent between successive problem sizes, and (c) measures the batched
// Shamir hot path (ShareBatch / ReconstructBatch over precomputed
// Vandermonde / Lagrange tables) against the scalar loop it replaces —
// the constant-factor side of the same complexity story.
//
// With --json=FILE the batch sweep is also written as a JSON record
// (scripts/check.sh archives it as BENCH_complexity_scaling.json).

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench/timing_common.h"
#include "mpc/shamir.h"
#include "sampling/rng.h"

namespace sqm {
namespace {

double GrowthExponent(double small_value, double large_value,
                      double size_ratio) {
  return std::log(large_value / small_value) / std::log(size_ratio);
}

double SecondsSince(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct BatchRow {
  size_t d = 0;
  double scalar_share_seconds = 0.0;
  double batch_share_seconds = 0.0;
  double scalar_recon_seconds = 0.0;
  double batch_recon_seconds = 0.0;
};

/// Times d-secret sharing + reconstruction, scalar loop vs the batched
/// entry points, over `reps` repetitions. Both legs consume identical RNG
/// schedules (ShareBatch draws coefficients in scalar order), so the work
/// compared is bit-for-bit the same computation.
BatchRow TimeBatchSweep(size_t d, int reps) {
  const ShamirScheme scheme(5, 2);
  const size_t parties = 5;
  std::vector<Field::Element> secrets(d);
  for (size_t i = 0; i < d; ++i) {
    secrets[i] = Field::Encode(static_cast<int64_t>(i) - 3);
  }

  BatchRow row;
  row.d = d;
  Field::Element sink = 0;

  {
    Rng rng(77);
    std::vector<std::vector<Field::Element>> shares(d);
    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) {
      for (size_t i = 0; i < d; ++i) shares[i] = scheme.Share(secrets[i], rng);
      sink ^= shares[d - 1][0];
    }
    row.scalar_share_seconds = SecondsSince(start) / reps;
  }
  {
    Rng rng(77);
    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) {
      const auto rows = scheme.ShareBatch(secrets, rng);
      sink ^= rows[0][d - 1];
    }
    row.batch_share_seconds = SecondsSince(start) / reps;
  }

  // Reconstruction operates on the party-major share matrix the protocol
  // actually holds; the scalar leg pays the per-secret column gather that
  // ReconstructBatch's table-driven sweep avoids.
  Rng rng(78);
  const std::vector<std::vector<Field::Element>> rows =
      scheme.ShareBatch(secrets, rng);
  {
    std::vector<Field::Element> column(parties);
    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) {
      for (size_t i = 0; i < d; ++i) {
        for (size_t j = 0; j < parties; ++j) column[j] = rows[j][i];
        sink ^= scheme.Reconstruct(column);
      }
    }
    row.scalar_recon_seconds = SecondsSince(start) / reps;
  }
  {
    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) {
      sink ^= scheme.ReconstructBatch(rows)[d - 1];
    }
    row.batch_recon_seconds = SecondsSince(start) / reps;
  }
  if (sink == 0xdeadbeef) std::printf("(unlikely sink)\n");
  return row;
}

void WriteJson(const std::string& path, bool paper_scale,
               const std::vector<BatchRow>& rows) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(out,
               "{\"bench\":\"complexity_scaling\",\"scale\":\"%s\","
               "\"scheme\":{\"parties\":5,\"threshold\":2},"
               "\"batch_rows\":[",
               paper_scale ? "paper" : "small");
  for (size_t i = 0; i < rows.size(); ++i) {
    const BatchRow& row = rows[i];
    std::fprintf(
        out,
        "%s{\"d\":%zu,\"scalar_share_seconds\":%.9f,"
        "\"batch_share_seconds\":%.9f,\"share_speedup\":%.3f,"
        "\"scalar_reconstruct_seconds\":%.9f,"
        "\"batch_reconstruct_seconds\":%.9f,\"reconstruct_speedup\":%.3f}",
        i > 0 ? "," : "", row.d, row.scalar_share_seconds,
        row.batch_share_seconds,
        row.scalar_share_seconds / row.batch_share_seconds,
        row.scalar_recon_seconds, row.batch_recon_seconds,
        row.scalar_recon_seconds / row.batch_recon_seconds);
  }
  std::fprintf(out, "]}\n");
  std::fclose(out);
}

}  // namespace
}  // namespace sqm

int main(int argc, char** argv) {
  using namespace sqm;
  const bench::BenchConfig config = bench::ParseArgs(argc, argv);

  bench::PrintHeader("Table I: complexity of SQM under BGW",
                     "analytic formulas + empirical scaling check");

  std::printf(
      "Paper formulas (m records, n attributes, P clients, scale gamma):\n"
      "  PCA: computation O(mP + n^2 m log m / P + n^2) per client,\n"
      "       communication O(n^2 m P log gamma), time O(n^2 m log m)\n"
      "  LR : computation O(m(n-1)P + m(n-1) log m / P) per client,\n"
      "       communication O(m(n-1) P log m log gamma), time "
      "O(m(n-1) log m)\n\n");

  const size_t m = config.paper_scale ? 500 : 60;
  const size_t n_small = config.paper_scale ? 50 : 8;
  const size_t n_large = 2 * n_small;
  const double ratio = 2.0;

  const bench::TimingRow pca_small =
      bench::TimePcaRelease(m, n_small, 4, 18.0, 0.0);
  const bench::TimingRow pca_large =
      bench::TimePcaRelease(m, n_large, 4, 18.0, 0.0);
  const bench::TimingRow lr_small =
      bench::TimeLrRelease(m, n_small, 4, 18.0, 0.0);
  const bench::TimingRow lr_large =
      bench::TimeLrRelease(m, n_large, 4, 18.0, 0.0);

  std::printf("Empirical growth exponents when doubling n (m=%zu, P=4):\n",
              m);
  std::printf("%-28s %-12s %-12s\n", "quantity", "measured", "expected");
  bench::PrintRule();
  std::printf("%-28s %-12.2f %-12s\n", "PCA communication vs n",
              GrowthExponent(static_cast<double>(pca_small.elements),
                             static_cast<double>(pca_large.elements),
                             ratio),
              "~2 (n^2)");
  std::printf("%-28s %-12.2f %-12s\n", "PCA wall time vs n",
              GrowthExponent(pca_small.overall_seconds,
                             pca_large.overall_seconds, ratio),
              "~2 (n^2)");
  std::printf("%-28s %-12.2f %-12s\n", "LR communication vs n",
              GrowthExponent(static_cast<double>(lr_small.elements),
                             static_cast<double>(lr_large.elements),
                             ratio),
              "~1-2 (n..n^2*)");
  std::printf("%-28s %-12.2f %-12s\n", "LR wall time vs n",
              GrowthExponent(lr_small.overall_seconds,
                             lr_large.overall_seconds, ratio),
              "~1-2");
  std::printf(
      "\n* The generic circuit path evaluates the expanded degree-2 "
      "polynomial (n^2 monomials); the paper's O(m n) LR figure assumes "
      "the structured inner-product evaluation, which the vectorized "
      "protocol layer (mpc/protocol.h InnerProduct) provides.\n");

  std::printf(
      "\nBatched Shamir hot path (scheme (5,2); per-batch seconds, mean of "
      "reps):\n");
  std::printf("%-6s | %-14s %-14s %-8s | %-14s %-14s %-8s\n", "d",
              "scalar share", "batch share", "speedup", "scalar recon",
              "batch recon", "speedup");
  bench::PrintRule();
  const int batch_reps =
      config.reps > 0 ? config.reps : (config.paper_scale ? 2000 : 400);
  std::vector<BatchRow> batch_rows;
  for (const size_t d : {4u, 16u, 64u, 256u}) {
    const BatchRow row = TimeBatchSweep(d, batch_reps);
    batch_rows.push_back(row);
    std::printf("%-6zu | %-14.9f %-14.9f %-8.2f | %-14.9f %-14.9f %-8.2f\n",
                row.d, row.scalar_share_seconds, row.batch_share_seconds,
                row.scalar_share_seconds / row.batch_share_seconds,
                row.scalar_recon_seconds, row.batch_recon_seconds,
                row.scalar_recon_seconds / row.batch_recon_seconds);
  }
  std::printf(
      "\nReading: both columns perform the identical field computation "
      "(same RNG schedule, bit-identical outputs — the differential suite "
      "pins this); the batched columns amortize the Vandermonde / Lagrange "
      "table lookups and run branchless lazy-reduction kernels over "
      "contiguous spans. The win compounds with d; by d >= 16 the batched "
      "path should dominate on any machine.\n");

  if (!config.json_path.empty()) {
    WriteJson(config.json_path, config.paper_scale, batch_rows);
    std::printf("JSON summary written to %s\n", config.json_path.c_str());
  }
  return 0;
}
