// Ablation (Table I footnote): generic circuit evaluation of the expanded
// polynomial versus the structured vectorized operations in mpc/ops.h.
//
// For the LR gradient, the expanded degree-2 polynomial has O(d^2)
// monomials per record, so the circuit engine performs O(m d^2) secure
// multiplications. The structured path computes the inner product
// u_i = <w-hat, x-hat_i> locally on shares (public weights) and only
// multiplies u * x and y * x — O(m d) secure products in one batched
// round — which is how the paper's O(m (n-1)) LR complexity row arises.
// For PCA both paths perform m * n(n+1)/2 products; the structured path
// wins on rounds and engine overhead only.

#include <chrono>
#include "mpc/network.h"
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/quantize.h"
#include "core/sqm.h"
#include "mpc/ops.h"
#include "sampling/rng.h"
#include "vfl/logistic.h"
#include "vfl/synthetic.h"

namespace sqm {
namespace {

double SecondsSince(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct PathCost {
  double seconds = 0.0;
  uint64_t elements = 0;
  uint64_t rounds = 0;
  std::vector<int64_t> release;
};

/// Circuit path: the generic SQM evaluator over the expanded polynomial.
PathCost RunCircuitPath(const Matrix& batch,
                        const std::vector<double>& weights, double gamma) {
  const PolynomialVector f = BuildLogisticGradientPolynomial(weights);
  SqmOptions options;
  options.gamma = gamma;
  options.mu = 0.0;
  options.backend = MpcBackend::kBgw;
  options.max_f_l2 = 0.75;
  options.seed = 5;
  SqmEvaluator evaluator(options);
  const auto start = std::chrono::steady_clock::now();
  const SqmReport report = evaluator.Evaluate(f, batch).ValueOrDie();
  PathCost cost;
  cost.seconds = SecondsSince(start);
  cost.elements = report.network.field_elements;
  cost.rounds = report.network.rounds;
  cost.release = report.raw;
  return cost;
}

/// Structured path: quantize identically, then SecureOps.
PathCost RunStructuredPath(const Matrix& batch,
                           const std::vector<double>& weights,
                           double gamma) {
  const size_t d = weights.size();
  const size_t m = batch.rows();

  // Quantize with the same discipline as the circuit path (same seed
  // splits as SqmEvaluator with quantize_coefficients=true).
  Rng rng(5);
  Rng coeff_rng = rng.Split(0x0c0eff);
  Rng data_rng = rng.Split(0xda7a);
  const QuantizedDatabase db = QuantizeDatabase(batch, gamma, data_rng);

  SecureOps::LogisticGradientInputs inputs;
  inputs.feature_columns.resize(d);
  for (size_t j = 0; j < d; ++j) inputs.feature_columns[j] = db.columns[j];
  inputs.labels = db.columns[d];
  inputs.weights.resize(d);
  for (size_t j = 0; j < d; ++j) {
    inputs.weights[j] = StochasticRound(weights[j] / 4.0, gamma, coeff_rng);
  }
  inputs.half_coefficient = StochasticRound(0.5, gamma * gamma, coeff_rng);
  inputs.label_coefficient =
      StochasticRound(-1.0, gamma, coeff_rng);
  inputs.noise_per_client.assign(d + 1, std::vector<int64_t>(d, 0));

  SimulatedNetwork network(d + 1, 0.0);
  BgwProtocol protocol(ShamirScheme(d + 1, d / 2), &network, 5);
  SecureOps ops(&protocol);
  const auto start = std::chrono::steady_clock::now();
  PathCost cost;
  cost.release = ops.NoisyLogisticGradient(inputs).ValueOrDie();
  cost.seconds = SecondsSince(start);
  cost.elements = network.stats().field_elements;
  cost.rounds = network.stats().rounds;
  (void)m;
  return cost;
}

}  // namespace
}  // namespace sqm

int main(int argc, char** argv) {
  using namespace sqm;
  const bench::BenchConfig config = bench::ParseArgs(argc, argv);

  bench::PrintHeader(
      "Ablation: structured secure ops vs generic circuit (LR gradient)",
      "same quantized release, different evaluation strategies");

  const double gamma = 18.0;
  const size_t m = config.paper_scale ? 200 : 40;
  std::printf("%-6s %-6s | %-12s %-14s %-8s | %-12s %-14s %-8s\n", "d", "m",
              "circuit s", "elements", "rounds", "structured s", "elements",
              "rounds");
  bench::PrintRule();
  for (size_t d : config.paper_scale
                      ? std::vector<size_t>{16, 32, 64, 128}
                      : std::vector<size_t>{8, 16, 32}) {
    SyntheticLrSpec spec;
    spec.rows = m;
    spec.cols = d;
    spec.seed = 2;
    const VflDataset data = GenerateLrDataset(spec);
    Matrix batch(m, d + 1);
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = 0; j < d; ++j) batch(i, j) = data.features(i, j);
      batch(i, d) = static_cast<double>(data.labels[i]);
    }
    std::vector<double> w(d, 0.0);
    Rng wr(7);
    for (auto& wi : w) wi = (wr.NextDouble() - 0.5) / std::sqrt(
                                 static_cast<double>(d));

    const PathCost circuit = RunCircuitPath(batch, w, gamma);
    const PathCost structured = RunStructuredPath(batch, w, gamma);
    std::printf(
        "%-6zu %-6zu | %-12.4f %-14llu %-8llu | %-12.4f %-14llu %-8llu\n",
        d, m, circuit.seconds,
        static_cast<unsigned long long>(circuit.elements),
        static_cast<unsigned long long>(circuit.rounds), structured.seconds,
        static_cast<unsigned long long>(structured.elements),
        static_cast<unsigned long long>(structured.rounds));
  }

  std::printf(
      "\nReading: the circuit path's traffic grows ~d^2 per record while "
      "the structured path grows ~d, with a constant round count — the "
      "gap is the Table I footnote. (The two releases differ only in "
      "rounding randomness; both are exact SQM evaluations.)\n");
  return 0;
}
