#ifndef SQM_BENCH_BENCH_COMMON_H_
#define SQM_BENCH_BENCH_COMMON_H_

// Shared helpers for the reproduction benches. Every bench binary accepts
//   --scale=small   (default) reduced sizes so the full suite finishes on
//                   one core in minutes; preserves the paper's qualitative
//                   shape (who wins, by roughly what factor, crossovers).
//   --scale=paper   the paper's parameter grid (can take hours).
//   --reps=N        overrides the number of repetitions per configuration.
//   --json=FILE     additionally writes the bench's machine-readable
//                   summary to FILE (benches that support it; used by
//                   scripts/check.sh to archive BENCH_*.json records).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/logging.h"
#include "math/stats.h"

namespace sqm {
namespace bench {

struct BenchConfig {
  bool paper_scale = false;
  int reps = 0;  // 0 = bench-specific default.
  std::string json_path;  // Empty = no JSON summary file.
};

inline BenchConfig ParseArgs(int argc, char** argv) {
  BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scale=paper") == 0) {
      config.paper_scale = true;
    } else if (std::strcmp(argv[i], "--scale=small") == 0) {
      config.paper_scale = false;
    } else if (std::strncmp(argv[i], "--reps=", 7) == 0) {
      config.reps = std::atoi(argv[i] + 7);
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      config.json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--benchmark", 11) == 0) {
      // Ignore google-benchmark flags when sharing a command line.
    } else {
      std::fprintf(stderr,
                   "unknown flag '%s' (supported: --scale=small|paper, "
                   "--reps=N)\n",
                   argv[i]);
    }
  }
  // Keep bench output clean.
  Logger::SetLevel(LogLevel::kError);
  return config;
}

inline void PrintHeader(const std::string& title, const std::string& note) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  if (!note.empty()) std::printf("%s\n", note.c_str());
  std::printf("================================================================\n");
}

inline void PrintRule() {
  std::printf("----------------------------------------------------------------\n");
}

/// Mean +- stddev over repeated runs.
struct Summary {
  double mean = 0.0;
  double stddev = 0.0;
};

inline Summary Summarize(const std::vector<double>& values) {
  return {Mean(values), StdDev(values)};
}

}  // namespace bench
}  // namespace sqm

#endif  // SQM_BENCH_BENCH_COMMON_H_
