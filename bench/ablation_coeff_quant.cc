// Ablation (DESIGN.md, paper Section IV-B "Challenge"): per-degree
// coefficient compensation versus naive uniform scaling for polynomials
// with mixed-degree monomials.
//
// Naive scheme: scale every input by gamma, leave coefficients unscaled.
// A degree-k monomial is then amplified by gamma^k — monomials of
// different degrees live on different scales, and the server cannot
// down-scale them jointly. The only sound single down-scale factor is the
// one for the *largest* degree, which amplifies the lower-degree terms'
// relative error and forces a worst-case sensitivity union across scales.
//
// SQM's scheme (Algorithm 3 lines 1-3): each coefficient of degree
// lambda_t[l] is pre-scaled by gamma^{1+lambda-lambda_t[l]}, so every
// monomial lands on the common scale gamma^{lambda+1}. This bench measures
// the resulting estimation error of both schemes on the mixed-degree LR
// gradient polynomial, and the sensitivity bounds that each scheme must
// calibrate noise against.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/quantize.h"
#include "core/sensitivity.h"
#include "sampling/rng.h"
#include "vfl/logistic.h"

namespace sqm {
namespace {

/// Naive evaluation: quantize data by gamma, keep real coefficients, apply
/// each monomial's own gamma^{-degree} at the end of the *summed* value
/// using the max degree (the only joint option) — per-component correct
/// rescaling is impossible once the components are summed inside MPC.
double NaiveEstimate(const PolynomialVector& f, const Matrix& x,
                     double gamma, uint64_t seed) {
  Rng rng(seed);
  const QuantizedDatabase db = QuantizeDatabase(x, gamma, rng);
  const double lambda = static_cast<double>(f.Degree());
  double total = 0.0;
  for (size_t i = 0; i < db.rows; ++i) {
    for (const Monomial& term : f.dims()[0].terms()) {
      double value = term.coefficient();
      for (const auto& [var, exp] : term.exponents()) {
        for (uint32_t e = 0; e < exp; ++e) {
          value *= static_cast<double>(db.at(i, var));
        }
      }
      total += value;  // Mixed scales gamma^{deg} summed together.
    }
  }
  return total / std::pow(gamma, lambda);
}

double SqmEstimate(const PolynomialVector& f, const Matrix& x, double gamma,
                   uint64_t seed) {
  Rng rng(seed);
  Rng coeff_rng = rng.Split(1);
  Rng data_rng = rng.Split(2);
  const QuantizedPolynomial qf =
      QuantizePolynomial(f, gamma, coeff_rng).ValueOrDie();
  const QuantizedDatabase db = QuantizeDatabase(x, gamma, data_rng);
  double total = 0.0;
  for (size_t i = 0; i < db.rows; ++i) {
    total += static_cast<double>(
        EvaluateQuantizedDim(qf.dims[0], db, i).ValueOrDie());
  }
  return total / qf.output_scale;
}

}  // namespace
}  // namespace sqm

int main(int argc, char** argv) {
  using namespace sqm;
  const bench::BenchConfig config = bench::ParseArgs(argc, argv);
  const int reps = config.reps > 0 ? config.reps : 25;

  bench::PrintHeader(
      "Ablation: per-degree coefficient quantization vs naive scaling",
      "mixed-degree polynomial f = 0.5 x0 + 0.25 x0 x1 - x2 x0 (the LR "
      "gradient shape)");

  // One LR-gradient-style dimension with degrees {1, 2, 2}.
  PolynomialVector f;
  Polynomial p;
  p.AddTerm(Monomial::Power(0.5, 0, 1));
  p.AddTerm(Monomial(0.25, {{0, 1}, {1, 1}}));
  p.AddTerm(Monomial(-1.0, {{2, 1}, {0, 1}}));
  f.AddDimension(p);

  const size_t m = config.paper_scale ? 5000 : 500;
  Matrix x(m, 3);
  Rng gen(3);
  for (auto& v : x.data()) v = gen.NextDouble() - 0.5;
  std::vector<std::vector<double>> rows;
  for (size_t i = 0; i < m; ++i) rows.push_back(x.Row(i));
  const double exact = f.EvaluateSum(rows)[0];

  std::printf("%-8s %-20s %-20s\n", "gamma", "|error| SQM scheme",
              "|error| naive scheme");
  bench::PrintRule();
  for (double gamma : {8.0, 32.0, 128.0, 512.0}) {
    std::vector<double> sqm_err, naive_err;
    for (int r = 0; r < reps; ++r) {
      sqm_err.push_back(
          std::fabs(SqmEstimate(f, x, gamma, 50 + r) - exact));
      naive_err.push_back(
          std::fabs(NaiveEstimate(f, x, gamma, 50 + r) - exact));
    }
    std::printf("%-8.0f %-20.5f %-20.5f\n", gamma,
                bench::Summarize(sqm_err).mean,
                bench::Summarize(naive_err).mean);
  }

  std::printf(
      "\nSensitivity view: with compensation, one joint bound "
      "Delta_2 = gamma^{lambda+1} max||f|| + o(.) covers all monomials "
      "(Lemma 4). Without it, each degree-k component needs its own "
      "gamma^k bound whose worst cases can correspond to different "
      "inputs, so the naive union bound is strictly looser — and the "
      "estimate above shows the naive scheme's error does not vanish "
      "with gamma, because the deg-1 term is downscaled by gamma^2.\n");
  return 0;
}
