#ifndef SQM_BENCH_TIMING_COMMON_H_
#define SQM_BENCH_TIMING_COMMON_H_

// Shared machinery for the timing tables (paper Tables II, IV, V): run the
// PCA covariance release and the LR gradient release through the real BGW
// engine over the simulated network (per-round latency 0.1 s, as in the
// paper) and report the overall time next to the marginal cost of DP noise
// injection.

#include <cmath>
#include <cstdio>

#include "core/sqm.h"
#include "vfl/logistic.h"
#include "vfl/pca.h"
#include "vfl/synthetic.h"

namespace sqm {
namespace bench {

struct TimingRow {
  double overall_seconds = 0.0;
  double noise_seconds = 0.0;
  uint64_t messages = 0;
  uint64_t elements = 0;  ///< Field elements on the wire (8 bytes each).
  uint64_t rounds = 0;
};

/// One SQM-PCA covariance release over BGW: n attributes, m records,
/// P clients, gamma = 18 (the paper's Table II setting).
inline TimingRow TimePcaRelease(size_t m, size_t n, size_t clients,
                                double gamma, double latency) {
  SyntheticPcaSpec spec;
  spec.rows = m;
  spec.cols = n;
  spec.rank = std::max<size_t>(2, n / 4);
  spec.seed = 5;
  const Matrix x = GeneratePcaDataset(spec).features;

  PcaOptions options;
  options.k = std::max<size_t>(1, n / 4);
  options.epsilon = 1.0;
  options.gamma = gamma;
  options.num_clients = clients;
  options.backend = MpcBackend::kBgw;
  options.network_latency_seconds = latency;
  const PcaResult result = SqmPca(x, options).ValueOrDie();

  TimingRow row;
  row.overall_seconds = result.timing.TotalSeconds();
  row.noise_seconds = result.timing.noise_injection_seconds;
  row.messages = result.network.messages;
  row.elements = result.network.field_elements;
  row.rounds = result.network.rounds;
  return row;
}

/// One SQM-LR gradient-sum release over BGW for a full m-record batch with
/// d = n - 1 features.
inline TimingRow TimeLrRelease(size_t m, size_t n, size_t clients,
                               double gamma, double latency) {
  SyntheticLrSpec spec;
  spec.rows = m;
  spec.cols = n - 1;
  spec.seed = 5;
  const VflDataset data = GenerateLrDataset(spec);
  const size_t d = data.num_features();

  Matrix batch(m, d + 1);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < d; ++j) batch(i, j) = data.features(i, j);
    batch(i, d) = static_cast<double>(data.labels[i]);
  }
  std::vector<double> w(d, 0.0);
  for (size_t j = 0; j < d; ++j) {
    w[j] = (j % 2 == 0 ? 1.0 : -1.0) / std::sqrt(static_cast<double>(d));
  }
  const PolynomialVector f = BuildLogisticGradientPolynomial(w);

  SqmOptions options;
  options.gamma = gamma;
  options.mu = 1000.0;  // Fixed noise: the table measures time, not utility.
  options.num_clients = clients;
  options.backend = MpcBackend::kBgw;
  options.network_latency_seconds = latency;
  options.max_f_l2 = 0.75;
  const SqmReport report =
      SqmEvaluator(options).Evaluate(f, batch).ValueOrDie();

  TimingRow row;
  row.overall_seconds = report.timing.TotalSeconds();
  row.noise_seconds = report.timing.noise_injection_seconds;
  row.messages = report.network.messages;
  row.elements = report.network.field_elements;
  row.rounds = report.network.rounds;
  return row;
}

inline void PrintTimingHeader(const char* variable) {
  std::printf("%-14s %-18s %-18s %-12s %-10s\n", variable,
              "overall time (s)", "time for DP (s)", "messages", "rounds");
}

inline void PrintTimingRow(size_t value, const TimingRow& row) {
  std::printf("%-14zu %-18.3f %-18.4f %-12llu %-10llu\n", value,
              row.overall_seconds, row.noise_seconds,
              static_cast<unsigned long long>(row.messages),
              static_cast<unsigned long long>(row.rounds));
}

}  // namespace bench
}  // namespace sqm

#endif  // SQM_BENCH_TIMING_COMMON_H_
