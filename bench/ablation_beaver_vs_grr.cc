// Ablation (DESIGN.md): online multiplication cost of the two secure
// multiplication strategies the library ships.
//
//   GRR (mpc/protocol.h Mul) — BGW's classic degree reduction: each party
//   re-shares its local product; n*(n-1) messages of k elements per batch,
//   fresh polynomial sampling on the critical path, no preprocessing.
//
//   Beaver (mpc/beaver.h)    — consume a preprocessed triple per product;
//   online cost is ONE joint opening of (x - a, y - b): n*(n-1) messages
//   of 2k elements but no online polynomial sampling, and the opening can
//   be batched with other openings.
//
// The trade is classic: Beaver moves work offline (a deployment would run
// an offline triple protocol) for a leaner online phase. SQM can sit on
// either: SqmOptions::mul_backend selects GRR or the pre-dealt
// BeaverTriplePool end to end, and the differential suite proves the
// released bits identical.
//
// With --json=FILE the per-row numbers and the quorum-path round counts
// are also written as a JSON record (scripts/check.sh archives it as
// BENCH_beaver_vs_grr.json).

#include <chrono>
#include "mpc/network.h"
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/party_sqm.h"
#include "core/sqm.h"
#include "mpc/beaver.h"
#include "mpc/protocol.h"
#include "net/tcp/party_config.h"
#include "net/tcp/socket.h"
#include "net/tcp/tcp_transport.h"
#include "poly/parser.h"

namespace sqm {
namespace {

double SecondsSince(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct Row {
  size_t parties = 0;
  size_t batch = 0;
  double grr_seconds = 0.0;
  unsigned long long grr_elements = 0;
  double dealer_seconds = 0.0;   ///< Beaver online + inline dealing.
  double offline_seconds = 0.0;  ///< Pool pre-dealing, per batch.
  double online_seconds = 0.0;   ///< Pool-backed online phase only.
  unsigned long long beaver_elements = 0;
};

struct RoundCounts {
  bool ok = false;
  uint64_t grr_rounds = 0;
  uint64_t beaver_rounds = 0;
  uint64_t grr_census_messages = 0;
  uint64_t beaver_census_messages = 0;
};

struct PartyRun {
  bool ok = false;
  SqmReport report;  ///< Party 0's report.
};

/// Runs every party of a 3-party degrade-policy deployment as a thread
/// over real loopback TCP (the sqm-party daemon path, where the quorum
/// census actually goes on the wire) and returns party 0's report.
PartyRun RunQuorumTcp(const std::string& backend, uint64_t run_id) {
  PartyRun result;
  DeploymentConfig config;
  config.run_id = run_id;
  config.session_key = 0xbea7e5;
  config.parties.assign(3, {"127.0.0.1", 0});
  config.rows = 8;
  config.cols = 3;
  config.data_seed = 7;
  config.polynomial = "x0*x1 + x2; x2*x2";
  config.gamma = 64;
  config.mu = 4.0;
  config.seed = 42;
  config.mul_backend = backend;
  config.dropout_policy = "degrade";
  config.receive_timeout_seconds = 1.0;
  config.connect_timeout_seconds = 10.0;

  const size_t n = config.parties.size();
  std::vector<net::Socket> listeners;
  for (size_t i = 0; i < n; ++i) {
    Result<net::Socket> listener = net::ListenOn("127.0.0.1", 0);
    if (!listener.ok()) return result;
    Result<uint16_t> port = net::LocalPort(listener.ValueOrDie());
    if (!port.ok()) return result;
    config.parties[i].port = port.ValueOrDie();
    listeners.push_back(std::move(listener.ValueOrDie()));
  }
  std::vector<SqmReport> reports(n);
  // Not vector<bool>: parties write concurrently, and its bit packing
  // would make neighboring writes race.
  std::vector<char> party_ok(n, 0);
  std::vector<std::thread> threads;
  for (size_t i = 0; i < n; ++i) {
    const int fd = listeners[i].Release();
    threads.emplace_back([&, i, fd] {
      Result<std::unique_ptr<TcpTransport>> transport =
          TcpTransport::Create(TcpOptionsFromDeployment(config, i, fd));
      if (!transport.ok()) return;
      Result<SqmReport> report =
          RunPartySqm(config, i, transport.ValueOrDie().get());
      transport.ValueOrDie()->Shutdown();
      if (!report.ok()) return;
      reports[i] = report.ValueOrDie();
      party_ok[i] = 1;
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (size_t i = 0; i < n; ++i) {
    if (!party_ok[i]) return result;
  }
  result.ok = true;
  result.report = reports[0];
  return result;
}

/// Runs the same SQM release on the networked quorum
/// (dropout_policy=degrade) path under both Mul backends and reports the
/// transport round counters: GRR needs a sub-share exchange plus a census
/// round per multiplication level, Beaver one packed opening and no
/// census at all. (The in-process driver sees every dealer directly and
/// skips the census, so the halving is only visible here.)
RoundCounts CountQuorumRounds() {
  RoundCounts counts;
  if (!net::TcpSupported()) return counts;
  const PartyRun grr = RunQuorumTcp("grr", 9101);
  const PartyRun beaver = RunQuorumTcp("beaver", 9102);
  if (!grr.ok || !beaver.ok) return counts;
  if (grr.report.raw != beaver.report.raw) return counts;

  counts.ok = true;
  counts.grr_rounds = grr.report.network.rounds;
  counts.beaver_rounds = beaver.report.network.rounds;
  for (const PhaseStats& phase : grr.report.transport.phases) {
    if (phase.phase == "census") {
      counts.grr_census_messages = phase.traffic.messages;
    }
  }
  for (const PhaseStats& phase : beaver.report.transport.phases) {
    if (phase.phase == "census") {
      counts.beaver_census_messages = phase.traffic.messages;
    }
  }
  return counts;
}

void WriteJson(const std::string& path, bool paper_scale,
               const std::vector<Row>& rows, const RoundCounts& counts) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(out,
               "{\"bench\":\"beaver_vs_grr\",\"scale\":\"%s\",\"rows\":[",
               paper_scale ? "paper" : "small");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(
        out,
        "%s{\"parties\":%zu,\"batch\":%zu,\"grr_seconds\":%.6f,"
        "\"grr_elements\":%llu,\"beaver_dealer_seconds\":%.6f,"
        "\"beaver_offline_seconds\":%.6f,\"beaver_online_seconds\":%.6f,"
        "\"beaver_elements\":%llu}",
        i > 0 ? "," : "", row.parties, row.batch, row.grr_seconds,
        row.grr_elements, row.dealer_seconds, row.offline_seconds,
        row.online_seconds, row.beaver_elements);
  }
  std::fprintf(out, "],\"quorum_rounds\":{\"ok\":%s,\"grr\":%llu,"
                    "\"beaver\":%llu,\"grr_census_messages\":%llu,"
                    "\"beaver_census_messages\":%llu}}\n",
               counts.ok ? "true" : "false",
               static_cast<unsigned long long>(counts.grr_rounds),
               static_cast<unsigned long long>(counts.beaver_rounds),
               static_cast<unsigned long long>(counts.grr_census_messages),
               static_cast<unsigned long long>(counts.beaver_census_messages));
  std::fclose(out);
}

}  // namespace
}  // namespace sqm

int main(int argc, char** argv) {
  using namespace sqm;
  const bench::BenchConfig config = bench::ParseArgs(argc, argv);
  const int repeats = config.paper_scale ? 50 : 10;

  bench::PrintHeader(
      "Ablation: GRR degree reduction vs Beaver triples (online phase)",
      "batched secure multiplication, mean over repeated batches");

  std::printf("%-8s %-8s | %-12s %-14s | %-12s %-12s %-12s %-14s\n",
              "parties", "batch", "GRR s", "GRR elements", "dealer s",
              "offline s", "online s", "Beaver elems");
  bench::PrintRule();

  std::vector<Row> json_rows;
  for (size_t parties : {4u, 8u, 16u}) {
    for (size_t batch : config.paper_scale
                            ? std::vector<size_t>{1024, 16384}
                            : std::vector<size_t>{256, 4096}) {
      const size_t threshold = (parties - 1) / 2;
      SimulatedNetwork network(parties, 0.0);
      BgwProtocol protocol(ShamirScheme(parties, threshold), &network, 3);
      BeaverTripleDealer dealer(ShamirScheme(parties, threshold), 4);
      BeaverMultiplier beaver(&protocol, &dealer);

      std::vector<Field::Element> values(batch);
      for (size_t i = 0; i < batch; ++i) values[i] = i + 1;
      const SharedVector x = protocol.ShareFromParty(0, values);
      const SharedVector y = protocol.ShareFromParty(1, values);

      // GRR timing.
      NetworkStats before = network.stats();
      auto start = std::chrono::steady_clock::now();
      for (int r = 0; r < repeats; ++r) {
        (void)protocol.Mul(x, y).ValueOrDie();
      }
      const double grr_seconds = SecondsSince(start) / repeats;
      const uint64_t grr_elements =
          (network.stats().field_elements - before.field_elements) /
          repeats;

      // Beaver timing (dealing excluded: it is the offline phase; we
      // pre-deal outside the timed region by warming the dealer's batch).
      before = network.stats();
      start = std::chrono::steady_clock::now();
      for (int r = 0; r < repeats; ++r) {
        (void)beaver.Mul(x, y).ValueOrDie();
      }
      const double beaver_seconds = SecondsSince(start) / repeats;
      const uint64_t beaver_elements =
          (network.stats().field_elements - before.field_elements) /
          repeats;

      // Pool-backed split: pre-deal the whole run's triples up front (the
      // offline phase, timed separately), then time the pure online phase.
      start = std::chrono::steady_clock::now();
      BeaverTriplePool pool(ShamirScheme(parties, threshold), 5,
                            batch * static_cast<size_t>(repeats));
      const double offline_seconds = SecondsSince(start) / repeats;
      BeaverMultiplier pooled(&protocol, &pool);
      start = std::chrono::steady_clock::now();
      for (int r = 0; r < repeats; ++r) {
        (void)pooled.Mul(x, y).ValueOrDie();
      }
      const double online_seconds = SecondsSince(start) / repeats;

      Row row;
      row.parties = parties;
      row.batch = batch;
      row.grr_seconds = grr_seconds;
      row.grr_elements = grr_elements;
      row.dealer_seconds = beaver_seconds;
      row.offline_seconds = offline_seconds;
      row.online_seconds = online_seconds;
      row.beaver_elements = beaver_elements;
      json_rows.push_back(row);

      std::printf(
          "%-8zu %-8zu | %-12.5f %-14llu | %-12.5f %-12.5f %-12.5f %-14llu\n",
          parties, batch, grr_seconds,
          static_cast<unsigned long long>(grr_elements), beaver_seconds,
          offline_seconds, online_seconds,
          static_cast<unsigned long long>(beaver_elements));
    }
  }

  std::printf(
      "\nReading: `dealer s` is the legacy inline-dealer multiplier (deal "
      "+ open on the critical path); `offline s` + `online s` split the "
      "same work through the BeaverTriplePool — the pool is charged once "
      "up front and the online phase is a single packed opening per batch. "
      "Per-batch traffic is the 2k-element opening vs GRR's k-element "
      "re-sharing — comparable volume, but Beaver needs no online "
      "randomness and composes with opening batches.\n");

  const RoundCounts counts = CountQuorumRounds();
  std::printf(
      "\nQuorum-path round accounting (dropout_policy=degrade, same "
      "release both backends):\n");
  if (counts.ok) {
    std::printf("  GRR    rounds: %llu  (census messages: %llu)\n",
                static_cast<unsigned long long>(counts.grr_rounds),
                static_cast<unsigned long long>(counts.grr_census_messages));
    std::printf("  Beaver rounds: %llu  (census messages: %llu)\n",
                static_cast<unsigned long long>(counts.beaver_rounds),
                static_cast<unsigned long long>(
                    counts.beaver_census_messages));
    std::printf(
        "  Each GRR multiplication level costs a sub-share round plus a "
        "census round; Beaver replaces both with ONE packed opening "
        "(opened values are public, so no census), halving the per-Mul "
        "round count. Released bits were verified identical.\n");
  } else {
    std::printf("  (quorum comparison failed to run)\n");
  }

  if (!config.json_path.empty()) {
    WriteJson(config.json_path, config.paper_scale, json_rows, counts);
    std::printf("JSON summary written to %s\n", config.json_path.c_str());
  }
  return 0;
}
