// Ablation (DESIGN.md): online multiplication cost of the two secure
// multiplication strategies the library ships.
//
//   GRR (mpc/protocol.h Mul) — BGW's classic degree reduction: each party
//   re-shares its local product; n*(n-1) messages of k elements per batch,
//   fresh polynomial sampling on the critical path, no preprocessing.
//
//   Beaver (mpc/beaver.h)    — consume a preprocessed triple per product;
//   online cost is ONE joint opening of (x - a, y - b): n*(n-1) messages
//   of 2k elements but no online polynomial sampling, and the opening can
//   be batched with other openings.
//
// The trade is classic: Beaver moves work offline (a deployment would run
// an offline triple protocol) for a leaner online phase. SQM can sit on
// either (the paper treats the MPC as a black box).

#include <chrono>
#include "mpc/network.h"
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "mpc/beaver.h"
#include "mpc/protocol.h"

namespace sqm {
namespace {

double SecondsSince(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace
}  // namespace sqm

int main(int argc, char** argv) {
  using namespace sqm;
  const bench::BenchConfig config = bench::ParseArgs(argc, argv);
  const int repeats = config.paper_scale ? 50 : 10;

  bench::PrintHeader(
      "Ablation: GRR degree reduction vs Beaver triples (online phase)",
      "batched secure multiplication, mean over repeated batches");

  std::printf("%-8s %-8s | %-12s %-14s | %-12s %-14s %-14s\n", "parties",
              "batch", "GRR s", "GRR elements", "Beaver s",
              "Beaver elems", "triples");
  bench::PrintRule();

  for (size_t parties : {4u, 8u, 16u}) {
    for (size_t batch : config.paper_scale
                            ? std::vector<size_t>{1024, 16384}
                            : std::vector<size_t>{256, 4096}) {
      const size_t threshold = (parties - 1) / 2;
      SimulatedNetwork network(parties, 0.0);
      BgwProtocol protocol(ShamirScheme(parties, threshold), &network, 3);
      BeaverTripleDealer dealer(ShamirScheme(parties, threshold), 4);
      BeaverMultiplier beaver(&protocol, &dealer);

      std::vector<Field::Element> values(batch);
      for (size_t i = 0; i < batch; ++i) values[i] = i + 1;
      const SharedVector x = protocol.ShareFromParty(0, values);
      const SharedVector y = protocol.ShareFromParty(1, values);

      // GRR timing.
      NetworkStats before = network.stats();
      auto start = std::chrono::steady_clock::now();
      for (int r = 0; r < repeats; ++r) {
        (void)protocol.Mul(x, y).ValueOrDie();
      }
      const double grr_seconds = SecondsSince(start) / repeats;
      const uint64_t grr_elements =
          (network.stats().field_elements - before.field_elements) /
          repeats;

      // Beaver timing (dealing excluded: it is the offline phase; we
      // pre-deal outside the timed region by warming the dealer's batch).
      before = network.stats();
      start = std::chrono::steady_clock::now();
      for (int r = 0; r < repeats; ++r) {
        (void)beaver.Mul(x, y).ValueOrDie();
      }
      const double beaver_seconds = SecondsSince(start) / repeats;
      const uint64_t beaver_elements =
          (network.stats().field_elements - before.field_elements) /
          repeats;

      std::printf(
          "%-8zu %-8zu | %-12.5f %-14llu | %-12.5f %-14llu %-14zu\n",
          parties, batch, grr_seconds,
          static_cast<unsigned long long>(grr_elements), beaver_seconds,
          static_cast<unsigned long long>(beaver_elements),
          beaver.triples_used());
    }
  }

  std::printf(
      "\nReading: Beaver's online wall time excludes triple generation "
      "(the offline phase, here a dealer); its per-batch traffic is the "
      "2k-element opening vs GRR's k-element re-sharing — comparable "
      "volume, but Beaver needs no online randomness and composes with "
      "opening batches. Note the Beaver timing above still includes the "
      "dealer cost inline, so treat it as an upper bound on the online "
      "phase.\n");
  return 0;
}
