// Table II reproduction: overall time of SQM (gamma = 18, BGW, P = 4
// clients, m = 1000 records in the paper) versus the data dimension n, for
// PCA and LR, next to the isolated cost of DP noise injection.
// Expected shape: overall time grows superlinearly in n (n^2 m for PCA,
// n m for LR) while the DP-injection time stays near-constant, so the DP
// overhead fraction -> 0 as n grows.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "bench/timing_common.h"

int main(int argc, char** argv) {
  using namespace sqm;
  const bench::BenchConfig config = bench::ParseArgs(argc, argv);

  const size_t m = config.paper_scale ? 1000 : 60;
  const std::vector<size_t> dims =
      config.paper_scale ? std::vector<size_t>{20, 100, 500}
                         : std::vector<size_t>{8, 16, 32, 64};
  const size_t clients = 4;
  const double gamma = 18.0;
  const double latency = config.paper_scale ? 0.1 : 0.0;

  bench::PrintHeader(
      "Table II: SQM time vs data dimension n (gamma=18, P=4, m=" +
          std::to_string(m) + ")",
      config.paper_scale
          ? "scale=paper (0.1 s simulated per-round latency)"
          : "scale=small (latency 0; wall-clock compute only)");

  std::printf("\nTask: principal component analysis (PCA)\n");
  bench::PrintTimingHeader("dimension n");
  for (size_t n : dims) {
    bench::PrintTimingRow(n,
                          bench::TimePcaRelease(m, n, clients, gamma,
                                                latency));
  }

  std::printf("\nTask: logistic regression (LR)\n");
  bench::PrintTimingHeader("dimension n");
  for (size_t n : dims) {
    bench::PrintTimingRow(n,
                          bench::TimeLrRelease(m, n, clients, gamma,
                                               latency));
  }

  std::printf(
      "\nReading: overall time grows ~n^2 (PCA) / ~n (LR) while the DP "
      "column stays near-flat, so the relative DP overhead vanishes with "
      "n (cf. paper Table II).\n");
  return 0;
}
