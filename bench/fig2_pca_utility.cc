// Figure 2 reproduction: PCA utility ||X V||_F^2 versus epsilon for four
// dataset profiles, comparing
//   - Central   : Analyze-Gauss (central-DP upper bound) [65],
//   - SQM(gamma): the paper's mechanism at several quantization scales,
//   - LocalDP   : the Algorithm-4 baseline,
//   - NonPriv   : the exact ceiling (reference only).
// Expected shape (paper): Central ~ SQM(large gamma) > SQM(small gamma)
// >> LocalDP, with every method improving in epsilon and SQM improving in
// gamma. Datasets are synthetic stand-ins with the paper's (m, n) shape —
// see DESIGN.md "Substitutions".

#include <cmath>
#include <cstdio>
#include <functional>
#include <vector>

#include "bench/bench_common.h"
#include "vfl/pca.h"
#include "vfl/synthetic.h"

namespace sqm {
namespace {

struct DatasetCase {
  std::string label;
  VflDataset data;
  std::vector<double> epsilons;
  std::vector<double> gammas;
  size_t k;
};

void RunCase(const DatasetCase& c, int reps) {
  std::printf("\nDataset %s: m=%zu n=%zu k=%zu (delta=1e-5)\n",
              c.label.c_str(), c.data.num_records(), c.data.num_features(),
              c.k);
  std::printf("%-10s", "method");
  for (double eps : c.epsilons) std::printf("  eps=%-8.4g", eps);
  std::printf("\n");
  bench::PrintRule();

  const double exact =
      NonPrivatePca(c.data.features, c.k).ValueOrDie().utility;
  std::printf("%-10s", "NonPriv");
  for (size_t i = 0; i < c.epsilons.size(); ++i) {
    std::printf("  %-12.4f", exact);
  }
  std::printf("\n");

  auto sweep = [&](const std::string& name,
                   const std::function<double(double, uint64_t)>& run) {
    std::printf("%-10s", name.c_str());
    for (double eps : c.epsilons) {
      std::vector<double> utilities;
      for (int r = 0; r < reps; ++r) {
        utilities.push_back(run(eps, 1000 + 17 * r));
      }
      std::printf("  %-12.4f", bench::Summarize(utilities).mean);
    }
    std::printf("\n");
  };

  sweep("Central", [&](double eps, uint64_t seed) {
    PcaOptions options;
    options.k = c.k;
    options.epsilon = eps;
    options.seed = seed;
    return CentralDpPca(c.data.features, options).ValueOrDie().utility;
  });
  for (double gamma : c.gammas) {
    char name[32];
    std::snprintf(name, sizeof(name), "SQM 2^%d",
                  static_cast<int>(std::log2(gamma)));
    sweep(name, [&, gamma](double eps, uint64_t seed) {
      PcaOptions options;
      options.k = c.k;
      options.epsilon = eps;
      options.gamma = gamma;
      options.seed = seed;
      return SqmPca(c.data.features, options).ValueOrDie().utility;
    });
  }
  sweep("LocalDP", [&](double eps, uint64_t seed) {
    PcaOptions options;
    options.k = c.k;
    options.epsilon = eps;
    options.seed = seed;
    return LocalDpPca(c.data.features, options).ValueOrDie().utility;
  });
}

}  // namespace
}  // namespace sqm

int main(int argc, char** argv) {
  using namespace sqm;
  const bench::BenchConfig config = bench::ParseArgs(argc, argv);
  const int reps = config.reps > 0 ? config.reps
                                   : (config.paper_scale ? 20 : 3);
  const double scale = config.paper_scale ? 1.0 : 0.01;

  bench::PrintHeader(
      "Figure 2: PCA utility ||X V||_F^2 vs epsilon",
      config.paper_scale ? "scale=paper (paper-sized datasets; slow)"
                         : "scale=small (reduced synthetic stand-ins; "
                           "run with --scale=paper for full sizes)");

  // Low-dimensional datasets: eps 0.25..8 (paper Figure 2 top rows).
  const std::vector<double> low_eps{0.25, 0.5, 1, 2, 4, 8};
  // High-dimensional: eps 4..32 (paper bottom rows).
  const std::vector<double> high_eps{4, 8, 16, 32};

  std::vector<DatasetCase> cases;
  // Each sweep includes one deliberately coarse gamma so the
  // quantization-error regime is visible even at small scale (the paper's
  // gamma separation shows on its high-dimensional datasets).
  cases.push_back({"KDDCUP-like", MakeKddCupLike(scale), low_eps,
                   {4.0, 64.0, 16384.0}, 5});
  cases.push_back({"ACSIncome-like", MakeAcsIncomePcaLike(scale), low_eps,
                   {4.0, 64.0, 16384.0}, 5});
  cases.push_back({"CiteSeer-like",
                   MakeCiteSeerLike(config.paper_scale ? 1.0 : 0.02),
                   high_eps,
                   {4.0, 256.0, 4096.0},
                   10});
  cases.push_back({"Gene-like",
                   MakeGeneLike(config.paper_scale ? 1.0 : 0.005),
                   high_eps,
                   {4.0, 1024.0, 16384.0},
                   10});

  for (const auto& c : cases) RunCase(c, reps);

  std::printf(
      "\nReading: SQM at the largest gamma should track Central closely "
      "and dominate LocalDP at every epsilon; utility grows with both "
      "epsilon and gamma (cf. paper Figure 2).\n");
  return 0;
}
