// Table V reproduction: overall time of SQM (gamma = 18, BGW, m = n = 500
// in the paper) versus the number of clients P. Expected shape: both the
// overall time and the DP-injection time grow with P (BGW traffic is
// quadratic in P; every client contributes a noise share), but DP stays a
// small fraction of the total.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "bench/timing_common.h"

int main(int argc, char** argv) {
  using namespace sqm;
  const bench::BenchConfig config = bench::ParseArgs(argc, argv);

  const size_t n = config.paper_scale ? 500 : 20;
  const size_t m = config.paper_scale ? 500 : 60;
  const std::vector<size_t> client_counts{4, 10, 20};
  const double gamma = 18.0;
  const double latency = config.paper_scale ? 0.1 : 0.0;

  bench::PrintHeader(
      "Table V: SQM time vs number of clients P (gamma=18, m=" +
          std::to_string(m) + ", n=" + std::to_string(n) + ")",
      config.paper_scale ? "scale=paper" : "scale=small");

  std::printf("\nTask: principal component analysis (PCA)\n");
  bench::PrintTimingHeader("clients P");
  for (size_t p : client_counts) {
    bench::PrintTimingRow(p,
                          bench::TimePcaRelease(m, n, p, gamma, latency));
  }

  std::printf("\nTask: logistic regression (LR)\n");
  bench::PrintTimingHeader("clients P");
  for (size_t p : client_counts) {
    bench::PrintTimingRow(p,
                          bench::TimeLrRelease(m, n, p, gamma, latency));
  }

  std::printf(
      "\nReading: time grows with P (quadratic BGW traffic) and the DP "
      "column grows too (P noise shares), but remains a small fraction of "
      "the overall cost — cf. paper Table V.\n");
  return 0;
}
