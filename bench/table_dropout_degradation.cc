// Dropout degradation table: PCA utility and realized epsilon versus the
// number of dropped clients, comparing DropoutPolicy::kDegrade (release
// with the noise deficit, honestly re-accounted) against kTopUp (survivors
// refill the deficit before release).
//
// Two measurement paths, because the in-process crash simulation schedules
// crashes mid-Mul — AFTER the noise inputs were secret-shared, so the
// degraded release still carries the full Sk(mu) in value while the
// accountant conservatively assumes the dropped clients' noise never
// arrived:
//   - realized epsilon comes from REAL BGW runs with d crashed parties
//     (the full dropout pipeline: liveness detection, quorum Mul, top-up,
//     recomputed guarantee in SqmReport.dropout);
//   - utility comes from plaintext runs at the accountant's worst-case
//     noise level — Sk((n-d)/n mu) for kDegrade, Sk(mu) for kTopUp — i.e.
//     the release distribution when the dropped clients died before
//     contributing any noise.
// Prints a table and a JSON block (line after "JSON:") for plotting.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "sampling/gaussian_sampler.h"
#include "core/report_io.h"
#include "core/sensitivity.h"
#include "core/sqm.h"
#include "dp/skellam.h"
#include "math/eigen.h"
#include "math/matrix.h"
#include "sampling/rng.h"
#include "vfl/dataset.h"
#include "vfl/metrics.h"

namespace sqm {
namespace {

// n attributes, one client each; bgw_threshold = 2 keeps the quorum at
// 2t+1 = 5, so up to n - 5 parties may drop.
constexpr size_t kAttributes = 9;
constexpr size_t kThreshold = 2;
constexpr size_t kTopKDims = 3;
constexpr double kEpsilon = 1.0;
constexpr double kDelta = 1e-5;
constexpr double kGamma = 4096.0;

// Correlated synthetic columns (a planted rank-3 signal plus noise), rows
// normalized to the record norm bound 1 as the PCA mechanisms require.
Matrix MakeData(size_t rows, uint64_t seed) {
  Rng rng(seed);
  GaussianSampler gauss(1.0);
  Matrix x(rows, kAttributes);
  for (size_t i = 0; i < rows; ++i) {
    double factor[3];
    for (double& v : factor) v = gauss.Sample(rng);
    for (size_t j = 0; j < kAttributes; ++j) {
      x(i, j) = factor[j % 3] * (1.0 + 0.1 * static_cast<double>(j)) +
                0.3 * gauss.Sample(rng);
    }
  }
  NormalizeRecords(x, 1.0);
  return x;
}

// Upper-triangle covariance release, Section V-A style (coefficients all 1,
// degree uniformly 2, so coefficient quantization is skipped).
PolynomialVector CovarianceF() {
  PolynomialVector f;
  for (size_t i = 0; i < kAttributes; ++i) {
    for (size_t j = i; j < kAttributes; ++j) {
      Polynomial p;
      p.AddTerm(i == j ? Monomial::Power(1.0, i, 2)
                       : Monomial(1.0, {{i, 1}, {j, 1}}));
      f.AddDimension(std::move(p));
    }
  }
  return f;
}

SqmOptions BaseOptions(double mu, uint64_t seed) {
  SqmOptions options;
  options.gamma = kGamma;
  options.mu = mu;
  options.bgw_threshold = kThreshold;
  options.seed = seed;
  options.record_norm_bound = 1.0;
  options.max_f_l2 = 1.0;
  options.dp_delta = kDelta;
  options.quantize_coefficients = false;
  return options;
}

double UtilityFromEstimate(const Matrix& x,
                           const std::vector<double>& estimate,
                           uint64_t seed) {
  Matrix covariance(kAttributes, kAttributes);
  size_t t = 0;
  for (size_t i = 0; i < kAttributes; ++i) {
    for (size_t j = i; j < kAttributes; ++j, ++t) {
      covariance(i, j) = estimate[t];
      covariance(j, i) = estimate[t];
    }
  }
  TopKOptions eig;
  eig.seed = seed ^ 0xe16e;
  const Matrix subspace =
      TopKEigenvectors(covariance, kTopKDims, eig).ValueOrDie();
  return PcaUtility(x, subspace);
}

struct Row {
  const char* policy;
  size_t dropped;
  double realized_mu = 0.0;
  double realized_epsilon = 0.0;
  bench::Summary utility;
};

}  // namespace
}  // namespace sqm

int main(int argc, char** argv) {
  using namespace sqm;
  const bench::BenchConfig config = bench::ParseArgs(argc, argv);
  const int reps = config.reps > 0 ? config.reps
                                   : (config.paper_scale ? 10 : 3);
  const size_t rows = config.paper_scale ? 400 : 100;

  bench::PrintHeader(
      "Dropout degradation: PCA utility and realized epsilon vs dropped "
      "clients",
      "kDegrade releases with the noise deficit (epsilon grows); kTopUp "
      "refills it (epsilon holds, extra noise costs utility vs the "
      "no-dropout run only through sampling variance).");

  const Matrix x = MakeData(rows, 7);
  const PolynomialVector f = CovarianceF();
  const SensitivityBound sens = PcaSensitivity(kGamma, 1.0, kAttributes);
  const double mu =
      CalibrateSkellamMuSingleRelease(kEpsilon, kDelta, sens.l1, sens.l2)
          .ValueOrDie();
  std::printf("m=%zu n=%zu t=%zu quorum=%zu  eps=%.3g delta=%.1e  "
              "mu=%.1f  reps=%d\n",
              rows, kAttributes, kThreshold, 2 * kThreshold + 1, kEpsilon,
              kDelta, mu, reps);

  {
    SqmOptions exact = BaseOptions(0.0, 1);
    const SqmReport clean = SqmEvaluator(exact).Evaluate(f, x).ValueOrDie();
    std::printf("non-private utility ||X V||_F^2 = %.4f\n",
                UtilityFromEstimate(x, clean.estimate, 1));
  }

  std::printf("\n%-9s %-8s %-12s %-14s %-22s\n", "policy", "dropped",
              "realized_mu", "realized_eps", "utility (mean +- std)");
  bench::PrintRule();

  const size_t max_dropped = kAttributes - (2 * kThreshold + 1);
  std::vector<Row> table;
  for (const DropoutPolicy policy :
       {DropoutPolicy::kDegrade, DropoutPolicy::kTopUp}) {
    for (size_t dropped = 0; dropped <= max_dropped; ++dropped) {
      Row row;
      row.policy = DropoutPolicyToString(policy);
      row.dropped = dropped;

      // One real BGW run with `dropped` parties crashing right after the
      // input phase: exercises liveness detection, quorum multiplication,
      // (for kTopUp) the compensation round, and yields the honestly
      // recomputed guarantee.
      SqmOptions bgw = BaseOptions(mu, 11);
      bgw.backend = MpcBackend::kBgw;
      bgw.dropout_policy = policy;
      for (size_t c = 0; c < dropped; ++c) {
        bgw.threaded.faults.crashes.push_back(
            {1 + 2 * c, static_cast<uint64_t>(kAttributes)});
      }
      const SqmReport report =
          SqmEvaluator(bgw).Evaluate(f, x).ValueOrDie();
      SQM_CHECK(report.dropout.num_dropped == dropped);
      row.realized_mu = report.dropout.realized_mu;
      row.realized_epsilon = report.dropout.realized_epsilon;

      // Utility at the accountant's worst-case noise level, averaged over
      // seeds (plaintext backend: the MPC is exact, so utility only
      // depends on the noise distribution).
      const double effective_mu = policy == DropoutPolicy::kTopUp
                                      ? mu
                                      : SkellamMuWithDropouts(
                                            mu, kAttributes, dropped);
      std::vector<double> utilities;
      for (int r = 0; r < reps; ++r) {
        SqmOptions plain = BaseOptions(effective_mu, 1000 + 17 * r);
        const SqmReport sample =
            SqmEvaluator(plain).Evaluate(f, x).ValueOrDie();
        utilities.push_back(
            UtilityFromEstimate(x, sample.estimate, plain.seed));
      }
      row.utility = bench::Summarize(utilities);

      std::printf("%-9s %-8zu %-12.1f %-14.4f %.4f +- %.4f\n", row.policy,
                  row.dropped, row.realized_mu, row.realized_epsilon,
                  row.utility.mean, row.utility.stddev);
      table.push_back(row);
    }
  }

  JsonWriter json;
  json.BeginObject();
  json.Field("epsilon_configured", kEpsilon)
      .Field("delta", kDelta)
      .Field("mu_configured", mu)
      .Field("num_clients", static_cast<uint64_t>(kAttributes))
      .Field("threshold", static_cast<uint64_t>(kThreshold));
  json.BeginArray("rows");
  for (const Row& row : table) {
    json.BeginObject()
        .Field("policy", std::string(row.policy))
        .Field("dropped", static_cast<uint64_t>(row.dropped))
        .Field("realized_mu", row.realized_mu)
        .Field("realized_epsilon", row.realized_epsilon)
        .Field("utility_mean", row.utility.mean)
        .Field("utility_stddev", row.utility.stddev)
        .EndObject();
  }
  json.EndArray();
  json.EndObject();
  std::printf("\nJSON:\n%s\n", json.str().c_str());
  return 0;
}
