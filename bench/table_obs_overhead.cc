// Observability overhead: the same BGW-backed SQM release measured three
// ways — instrumentation collecting (tracer + metrics + ledger all live),
// instrumentation killed at run time (obs::SetEnabled(false): every macro
// and span checks one relaxed atomic and bails), and, when the build was
// configured with -DSQM_OBS=OFF, the compile-time zero. The claim being
// checked is the PR's acceptance bar: <= 5% wall-clock overhead with
// collection on, ~0% with the kill switch.
//
// Two sections: the in-process evaluator (pure collection cost), then a
// tcp-localhost mode — every party a thread over a real loopback mesh, the
// sqm-party wire path — where the traced run also pays the trace-context
// frame-header bytes and the per-frame net.send/net.recv spans. Output is
// the usual table plus a JSON line per row; --json=FILE archives all rows
// as one machine-readable record (scripts/check.sh keeps it as
// BENCH_obs_overhead.json).

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/party_sqm.h"
#include "core/sqm.h"
#include "math/stats.h"
#include "net/tcp/party_config.h"
#include "net/tcp/socket.h"
#include "net/tcp/tcp_transport.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "sampling/rng.h"

namespace {

double MedianRunSeconds(const sqm::PolynomialVector& f, const sqm::Matrix& x,
                        const sqm::SqmOptions& options, int reps) {
  std::vector<double> seconds;
  seconds.reserve(reps);
  for (int r = 0; r < reps; ++r) {
    // Fresh buffers each rep so instrumented runs pay steady-state
    // collection cost, not buffer-growth amortization artifacts.
    sqm::obs::Tracer::Global().Clear();
    const auto start = std::chrono::steady_clock::now();
    const sqm::SqmReport report =
        sqm::SqmEvaluator(options).Evaluate(f, x).ValueOrDie();
    const auto stop = std::chrono::steady_clock::now();
    if (report.raw.empty()) std::abort();  // Keep the work observable.
    seconds.push_back(std::chrono::duration<double>(stop - start).count());
  }
  return sqm::Quantile(seconds, 0.5);
}

struct TcpRun {
  bool ok = false;
  double wall_seconds = 0.0;
  std::vector<int64_t> raw;
  std::string error;
};

/// One full networked release: every party of `config` as a thread over a
/// pre-bound loopback mesh (the coordinator's race-free setup). The caller
/// sets the obs state beforehand; a traced run therefore carries trace
/// context in every frame header, a killed run sends bare v3 frames.
TcpRun RunTcpLocalhost(sqm::DeploymentConfig config) {
  TcpRun result;
  const size_t n = config.parties.size();
  std::vector<sqm::net::Socket> listeners;
  for (size_t i = 0; i < n; ++i) {
    sqm::Result<sqm::net::Socket> listener =
        sqm::net::ListenOn("127.0.0.1", 0);
    if (!listener.ok()) {
      result.error = listener.status().ToString();
      return result;
    }
    sqm::Result<uint16_t> port = sqm::net::LocalPort(listener.ValueOrDie());
    if (!port.ok()) {
      result.error = port.status().ToString();
      return result;
    }
    config.parties[i].port = port.ValueOrDie();
    listeners.push_back(std::move(listener.ValueOrDie()));
  }

  std::vector<sqm::SqmReport> reports(n);
  std::vector<std::string> errors(n);
  std::vector<std::thread> threads;
  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < n; ++i) {
    const int fd = listeners[i].Release();
    threads.emplace_back([&, i, fd] {
      sqm::Result<std::unique_ptr<sqm::TcpTransport>> transport =
          sqm::TcpTransport::Create(
              sqm::TcpOptionsFromDeployment(config, i, fd));
      if (!transport.ok()) {
        errors[i] = transport.status().ToString();
        return;
      }
      sqm::Result<sqm::SqmReport> report =
          sqm::RunPartySqm(config, i, transport.ValueOrDie().get());
      transport.ValueOrDie()->Shutdown();
      if (!report.ok()) {
        errors[i] = report.status().ToString();
        return;
      }
      reports[i] = report.ValueOrDie();
    });
  }
  for (std::thread& thread : threads) thread.join();
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  for (size_t i = 0; i < n; ++i) {
    if (!errors[i].empty()) {
      result.error = "party " + std::to_string(i) + ": " + errors[i];
      return result;
    }
    if (reports[i].raw != reports[0].raw) {
      result.error =
          "party " + std::to_string(i) + " released different values";
      return result;
    }
  }
  result.ok = true;
  result.raw = reports[0].raw;
  return result;
}

double MedianTcpSeconds(const sqm::DeploymentConfig& config, int reps,
                        TcpRun* last) {
  std::vector<double> seconds;
  seconds.reserve(reps);
  for (int r = 0; r < reps; ++r) {
    sqm::obs::Tracer::Global().Clear();
    *last = RunTcpLocalhost(config);
    if (!last->ok) return 0.0;
    seconds.push_back(last->wall_seconds);
  }
  return sqm::Quantile(seconds, 0.5);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sqm;
  const bench::BenchConfig config = bench::ParseArgs(argc, argv);

  const int reps = config.reps > 0 ? config.reps : (config.paper_scale ? 9 : 5);
  const size_t m = config.paper_scale ? 200 : 60;
  const std::vector<size_t> dims =
      config.paper_scale ? std::vector<size_t>{4, 8, 16}
                         : std::vector<size_t>{3, 5, 8};

  bench::PrintHeader(
      "Observability overhead: traced vs kill-switched SQM release "
      "(BGW, m=" + std::to_string(m) + ", median of " +
          std::to_string(reps) + " reps)",
      "overhead = (traced - killed) / killed; acceptance bar is <= 5%");

#ifdef SQM_OBS_DISABLED
  std::printf("\nBuilt with -DSQM_OBS=OFF: Enabled() is a compile-time "
              "false; 'traced' below exercises the stubbed-out path.\n");
#endif

  std::vector<std::string> json_rows;
  auto record = [&json_rows](const std::string& row) {
    std::printf("JSON %s\n", row.c_str());
    json_rows.push_back(row);
  };

  std::printf("\n%-6s %-14s %-14s %-10s %-10s %-10s\n", "n", "killed (s)",
              "traced (s)", "overhead", "events", "match");
  bench::PrintRule();

  for (size_t n : dims) {
    const PolynomialVector f = PolynomialVector::OuterProduct(n);
    Matrix x(m, n);
    Rng rng(11 * n + 3);
    for (auto& v : x.data()) v = (rng.NextDouble() - 0.5) * 0.8;

    SqmOptions options;
    options.gamma = 64.0;
    options.mu = 16.0;
    options.seed = 42;
    options.backend = MpcBackend::kBgw;
    options.quantize_coefficients = false;

    obs::SetEnabled(false);
    const double killed = MedianRunSeconds(f, x, options, reps);
    const SqmReport dark = SqmEvaluator(options).Evaluate(f, x).ValueOrDie();

    obs::SetEnabled(true);
    obs::Registry::Global().ResetAll();
    const double traced = MedianRunSeconds(f, x, options, reps);
    const SqmReport lit = SqmEvaluator(options).Evaluate(f, x).ValueOrDie();
    const uint64_t events = obs::Tracer::Global().num_events();
    obs::SetEnabled(false);

    // Same seed, same options: instrumentation must not perturb the
    // released integers.
    const bool match = lit.raw == dark.raw;
    const double overhead = killed > 0.0 ? (traced - killed) / killed : 0.0;

    std::printf("%-6zu %-14.6f %-14.6f %-9.2f%% %-10llu %-10s\n", n, killed,
                traced, overhead * 100.0,
                static_cast<unsigned long long>(events),
                match ? "yes" : "NO");
    char row[256];
    std::snprintf(row, sizeof(row),
                  "{\"bench\":\"obs_overhead\",\"mode\":\"inprocess\","
                  "\"n\":%zu,\"m\":%zu,"
                  "\"killed_seconds\":%.9f,\"traced_seconds\":%.9f,"
                  "\"overhead\":%.6f,\"trace_events\":%llu,\"match\":%s}",
                  n, m, killed, traced, overhead,
                  static_cast<unsigned long long>(events),
                  match ? "true" : "false");
    record(row);
  }

  // tcp-localhost: the sqm-party wire path. The traced leg pays spans AND
  // the 16 trace-context bytes per frame; the killed leg ships bare v3
  // frames — and both must release the same integers (the
  // telemetry-never-changes-results invariant, here at bench scale).
  if (net::TcpSupported()) {
    bench::PrintHeader(
        "tcp-localhost: " + std::to_string(reps) +
            " reps, 3 parties as threads over loopback sockets",
        "traced leg also carries trace context in every frame header");
    std::printf("\n%-6s %-14s %-14s %-10s %-10s\n", "n", "killed (s)",
                "traced (s)", "overhead", "match");
    bench::PrintRule();

    DeploymentConfig deployment;
    deployment.run_id = 77;
    deployment.session_key = 0x0b5beac0ffee;
    deployment.parties = {{"127.0.0.1", 0}, {"127.0.0.1", 0},
                          {"127.0.0.1", 0}};
    deployment.rows = config.paper_scale ? 200 : 48;
    deployment.data_seed = 5;
    deployment.polynomial = "x0*x1; x1*x2; x0*x2";
    deployment.gamma = 64.0;
    deployment.mu = 16.0;
    deployment.seed = 42;
    deployment.quantize_coefficients = false;

    obs::SetEnabled(false);
    TcpRun killed_run;
    const double tcp_killed = MedianTcpSeconds(deployment, reps, &killed_run);

    obs::SetEnabled(true);
    obs::Registry::Global().ResetAll();
    // A nonzero trace id is what puts trace context on the wire.
    obs::Tracer::SetTraceId(0x0b5ebe4c51ULL | 1);
    TcpRun traced_run;
    const double tcp_traced = MedianTcpSeconds(deployment, reps, &traced_run);
    obs::Tracer::SetTraceId(0);
    obs::SetEnabled(false);

    if (!killed_run.ok || !traced_run.ok) {
      std::printf("tcp-localhost run failed: %s\n",
                  (!killed_run.ok ? killed_run : traced_run).error.c_str());
    } else {
      const bool tcp_match = killed_run.raw == traced_run.raw;
      const double tcp_overhead =
          tcp_killed > 0.0 ? (tcp_traced - tcp_killed) / tcp_killed : 0.0;
      std::printf("%-6zu %-14.6f %-14.6f %-9.2f%% %-10s\n",
                  deployment.parties.size(), tcp_killed, tcp_traced,
                  tcp_overhead * 100.0, tcp_match ? "yes" : "NO");
      char row[256];
      std::snprintf(row, sizeof(row),
                    "{\"bench\":\"obs_overhead\",\"mode\":\"tcp-localhost\","
                    "\"n\":%zu,\"m\":%zu,"
                    "\"killed_seconds\":%.9f,\"traced_seconds\":%.9f,"
                    "\"overhead\":%.6f,\"match\":%s}",
                    deployment.parties.size(), deployment.rows, tcp_killed,
                    tcp_traced, tcp_overhead, tcp_match ? "true" : "false");
      record(row);
    }
  }

  if (!config.json_path.empty()) {
    std::FILE* out = std::fopen(config.json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", config.json_path.c_str());
      return 1;
    }
    std::fprintf(out, "{\"bench\":\"obs_overhead\",\"rows\":[");
    for (size_t i = 0; i < json_rows.size(); ++i) {
      std::fprintf(out, "%s%s", i == 0 ? "" : ",", json_rows[i].c_str());
    }
    std::fprintf(out, "]}\n");
    std::fclose(out);
  }

  obs::Tracer::Global().Clear();
  std::printf("\nNote: the kill switch leaves report-facing data (transport\n"
              "stats, the privacy ledger inside SqmReport) untouched; only\n"
              "telemetry collection stops.\n");
  return 0;
}
