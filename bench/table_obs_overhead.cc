// Observability overhead: the same BGW-backed SQM release measured three
// ways — instrumentation collecting (tracer + metrics + ledger all live),
// instrumentation killed at run time (obs::SetEnabled(false): every macro
// and span checks one relaxed atomic and bails), and, when the build was
// configured with -DSQM_OBS=OFF, the compile-time zero. The claim being
// checked is the PR's acceptance bar: <= 5% wall-clock overhead with
// collection on, ~0% with the kill switch.
//
// Output is the usual table plus a JSON line per row for scripted
// regression tracking.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/sqm.h"
#include "math/stats.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "sampling/rng.h"

namespace {

double MedianRunSeconds(const sqm::PolynomialVector& f, const sqm::Matrix& x,
                        const sqm::SqmOptions& options, int reps) {
  std::vector<double> seconds;
  seconds.reserve(reps);
  for (int r = 0; r < reps; ++r) {
    // Fresh buffers each rep so instrumented runs pay steady-state
    // collection cost, not buffer-growth amortization artifacts.
    sqm::obs::Tracer::Global().Clear();
    const auto start = std::chrono::steady_clock::now();
    const sqm::SqmReport report =
        sqm::SqmEvaluator(options).Evaluate(f, x).ValueOrDie();
    const auto stop = std::chrono::steady_clock::now();
    if (report.raw.empty()) std::abort();  // Keep the work observable.
    seconds.push_back(std::chrono::duration<double>(stop - start).count());
  }
  return sqm::Quantile(seconds, 0.5);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sqm;
  const bench::BenchConfig config = bench::ParseArgs(argc, argv);

  const int reps = config.reps > 0 ? config.reps : (config.paper_scale ? 9 : 5);
  const size_t m = config.paper_scale ? 200 : 60;
  const std::vector<size_t> dims =
      config.paper_scale ? std::vector<size_t>{4, 8, 16}
                         : std::vector<size_t>{3, 5, 8};

  bench::PrintHeader(
      "Observability overhead: traced vs kill-switched SQM release "
      "(BGW, m=" + std::to_string(m) + ", median of " +
          std::to_string(reps) + " reps)",
      "overhead = (traced - killed) / killed; acceptance bar is <= 5%");

#ifdef SQM_OBS_DISABLED
  std::printf("\nBuilt with -DSQM_OBS=OFF: Enabled() is a compile-time "
              "false; 'traced' below exercises the stubbed-out path.\n");
#endif

  std::printf("\n%-6s %-14s %-14s %-10s %-10s %-10s\n", "n", "killed (s)",
              "traced (s)", "overhead", "events", "match");
  bench::PrintRule();

  for (size_t n : dims) {
    const PolynomialVector f = PolynomialVector::OuterProduct(n);
    Matrix x(m, n);
    Rng rng(11 * n + 3);
    for (auto& v : x.data()) v = (rng.NextDouble() - 0.5) * 0.8;

    SqmOptions options;
    options.gamma = 64.0;
    options.mu = 16.0;
    options.seed = 42;
    options.backend = MpcBackend::kBgw;
    options.quantize_coefficients = false;

    obs::SetEnabled(false);
    const double killed = MedianRunSeconds(f, x, options, reps);
    const SqmReport dark = SqmEvaluator(options).Evaluate(f, x).ValueOrDie();

    obs::SetEnabled(true);
    obs::Registry::Global().ResetAll();
    const double traced = MedianRunSeconds(f, x, options, reps);
    const SqmReport lit = SqmEvaluator(options).Evaluate(f, x).ValueOrDie();
    const uint64_t events = obs::Tracer::Global().num_events();
    obs::SetEnabled(false);

    // Same seed, same options: instrumentation must not perturb the
    // released integers.
    const bool match = lit.raw == dark.raw;
    const double overhead = killed > 0.0 ? (traced - killed) / killed : 0.0;

    std::printf("%-6zu %-14.6f %-14.6f %-9.2f%% %-10llu %-10s\n", n, killed,
                traced, overhead * 100.0,
                static_cast<unsigned long long>(events),
                match ? "yes" : "NO");
    std::printf("JSON {\"bench\":\"obs_overhead\",\"n\":%zu,\"m\":%zu,"
                "\"killed_seconds\":%.9f,\"traced_seconds\":%.9f,"
                "\"overhead\":%.6f,\"trace_events\":%llu,\"match\":%s}\n",
                n, m, killed, traced, overhead,
                static_cast<unsigned long long>(events),
                match ? "true" : "false");
  }

  obs::Tracer::Global().Clear();
  std::printf("\nNote: the kill switch leaves report-facing data (transport\n"
              "stats, the privacy ledger inside SqmReport) untouched; only\n"
              "telemetry collection stops.\n");
  return 0;
}
