// Figure 5 reproduction: the gap between centralized DPSGD (exact sigmoid,
// clipped per-record gradients) and Approx-Poly (order-1 Taylor polynomial
// gradient with continuous Gaussian noise, no quantization) is negligible —
// the paper reports it "constantly smaller than 0.05". This isolates the
// cost of the polynomial approximation from the cost of quantization.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "vfl/dataset.h"
#include "vfl/logistic.h"
#include "vfl/synthetic.h"

int main(int argc, char** argv) {
  using namespace sqm;
  const bench::BenchConfig config = bench::ParseArgs(argc, argv);
  const int reps = config.reps > 0 ? config.reps
                                   : (config.paper_scale ? 20 : 3);

  bench::PrintHeader(
      "Figure 5: Centralized DPSGD vs Approx-Poly (polynomial gradient)",
      "gap must stay below ~0.05 at every epsilon");

  const std::vector<double> epsilons{0.5, 1, 2, 4, 8};
  const std::vector<std::string> states{"CA", "TX", "NY", "FL"};
  const double data_scale = config.paper_scale ? 1.0 : 0.04;

  double worst_gap = 0.0;
  for (const std::string& state : states) {
    const VflDataset full = MakeAcsIncomeLrLike(state, data_scale);
    const TrainTestSplit split = SplitTrainTest(full, 0.5, 7).ValueOrDie();

    std::printf("\nState %s: m=%zu d=%zu\n", state.c_str(),
                split.train.num_records(), split.train.num_features());
    std::printf("%-12s", "method");
    for (double eps : epsilons) std::printf("  eps=%-6.3g", eps);
    std::printf("\n");
    bench::PrintRule();

    std::vector<double> central_acc, approx_acc;
    for (double eps : epsilons) {
      std::vector<double> c_runs, a_runs;
      for (int r = 0; r < reps; ++r) {
        LogisticOptions options;
        options.epsilon = eps;
        options.sample_rate = config.paper_scale ? 0.001 : 0.05;
        options.rounds = config.paper_scale ? 1000 : 50;
        options.learning_rate = 2.0;
        options.seed = 400 + 13 * r;
        c_runs.push_back(TrainDpSgd(split.train, split.test, options)
                             .ValueOrDie()
                             .test_accuracy);
        a_runs.push_back(TrainApproxPoly(split.train, split.test, options)
                             .ValueOrDie()
                             .test_accuracy);
      }
      central_acc.push_back(bench::Summarize(c_runs).mean);
      approx_acc.push_back(bench::Summarize(a_runs).mean);
    }

    std::printf("%-12s", "Centralized");
    for (double a : central_acc) std::printf("  %-10.4f", a);
    std::printf("\n%-12s", "Approx-Poly");
    for (double a : approx_acc) std::printf("  %-10.4f", a);
    std::printf("\n%-12s", "gap");
    for (size_t i = 0; i < epsilons.size(); ++i) {
      const double gap = central_acc[i] - approx_acc[i];
      worst_gap = std::max(worst_gap, std::fabs(gap));
      std::printf("  %-10.4f", gap);
    }
    std::printf("\n");
  }

  std::printf("\nWorst |gap| across all states and epsilons: %.4f "
              "(paper: < 0.05)\n",
              worst_gap);
  return 0;
}
