#include "dp/accountant.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dp/gaussian.h"
#include "dp/rdp.h"
#include "dp/skellam.h"

namespace sqm {
namespace {

TEST(AccountantTest, EmptyAccountantIsFree) {
  PrivacyAccountant accountant;
  EXPECT_EQ(accountant.num_events(), 0u);
  EXPECT_DOUBLE_EQ(accountant.TotalEpsilon(1e-5).ValueOrDie(), 0.0);
}

TEST(AccountantTest, SingleGaussianMatchesDirectConversion) {
  PrivacyAccountant accountant;
  accountant.AddGaussian("release", 1.0, 4.0);
  const auto curve = [](double alpha) { return GaussianRdp(alpha, 1.0, 4.0); };
  const double direct =
      BestEpsilonFromCurve(curve, DefaultAlphaGrid(), 1e-5);
  EXPECT_NEAR(accountant.TotalEpsilon(1e-5).ValueOrDie(), direct, 1e-12);
}

TEST(AccountantTest, SingleSkellamMatchesDirectConversion) {
  PrivacyAccountant accountant;
  accountant.AddSkellam("release", 100.0, 10.0, 1e5);
  const double direct =
      SkellamEpsilonSingleRelease(1e5, 100.0, 10.0, 1e-5);
  EXPECT_NEAR(accountant.TotalEpsilon(1e-5).ValueOrDie(), direct, 1e-12);
}

TEST(AccountantTest, CompositionAddsRdp) {
  PrivacyAccountant one;
  one.AddGaussian("a", 1.0, 2.0);
  PrivacyAccountant two;
  two.AddGaussian("a", 1.0, 2.0);
  two.AddGaussian("b", 1.0, 2.0);
  EXPECT_DOUBLE_EQ(two.TotalRdp(4), 2.0 * one.TotalRdp(4));
  EXPECT_GT(two.TotalEpsilon(1e-5).ValueOrDie(),
            one.TotalEpsilon(1e-5).ValueOrDie());
}

TEST(AccountantTest, CountEqualsRepeatedAdds) {
  PrivacyAccountant repeated;
  repeated.AddGaussian("r", 1.0, 3.0, 1.0, 10);
  PrivacyAccountant manual;
  for (int i = 0; i < 10; ++i) manual.AddGaussian("m", 1.0, 3.0);
  EXPECT_NEAR(repeated.TotalEpsilon(1e-5).ValueOrDie(),
              manual.TotalEpsilon(1e-5).ValueOrDie(), 1e-12);
}

TEST(AccountantTest, SubsamplingMatchesDpSgdAccounting) {
  PrivacyAccountant accountant;
  accountant.AddGaussian("sgd", 1.0, 1.5, 0.01, 100);
  const double direct = DpSgdEpsilon(1.5, 0.01, 100, 1e-5);
  EXPECT_NEAR(accountant.TotalEpsilon(1e-5).ValueOrDie(), direct, 1e-9);
}

TEST(AccountantTest, MixedMechanismsCompose) {
  // A PCA release (Skellam) followed by an LR training run (subsampled
  // Skellam) and a diagnostic Gaussian release — the heterogeneous case
  // the class exists for.
  PrivacyAccountant accountant;
  accountant.AddSkellam("pca", 1e8, 1e4, 1e10);
  accountant.AddSkellam("lr", 1e8, 1e4, 1e11, 0.01, 50);
  accountant.AddGaussian("diag", 1.0, 10.0);
  const double total = accountant.TotalEpsilon(1e-5).ValueOrDie();
  // Each individually must cost less than the total.
  PrivacyAccountant only_pca;
  only_pca.AddSkellam("pca", 1e8, 1e4, 1e10);
  EXPECT_GT(total, only_pca.TotalEpsilon(1e-5).ValueOrDie());
  EXPECT_TRUE(std::isfinite(total));
}

TEST(AccountantTest, TotalEpsilonValidatesDelta) {
  PrivacyAccountant accountant;
  accountant.AddGaussian("a", 1.0, 1.0);
  EXPECT_FALSE(accountant.TotalEpsilon(0.0).ok());
  EXPECT_FALSE(accountant.TotalEpsilon(1.0).ok());
}

TEST(AccountantTest, ResetClearsEvents) {
  PrivacyAccountant accountant;
  accountant.AddGaussian("a", 1.0, 1.0);
  accountant.Reset();
  EXPECT_EQ(accountant.num_events(), 0u);
  EXPECT_DOUBLE_EQ(accountant.TotalEpsilon(1e-5).ValueOrDie(), 0.0);
}

TEST(AccountantTest, RemainingRepetitionsIsConsistent) {
  PrivacyAccountant accountant;
  PrivacyEvent round;
  round.label = "lr-round";
  round.rdp = [](double alpha) { return GaussianRdp(alpha, 1.0, 2.0); };
  round.sampling_rate = 0.02;

  const double target = 1.0;
  const size_t k =
      accountant.RemainingRepetitions(round, target, 1e-5).ValueOrDie();
  ASSERT_GT(k, 0u);

  // k rounds fit the budget; k+1 must exceed it.
  PrivacyAccountant with_k;
  PrivacyEvent batch = round;
  batch.count = k;
  with_k.AddEvent(batch);
  EXPECT_LE(with_k.TotalEpsilon(1e-5).ValueOrDie(), target + 1e-9);

  PrivacyAccountant with_k1;
  batch.count = k + 1;
  with_k1.AddEvent(batch);
  EXPECT_GT(with_k1.TotalEpsilon(1e-5).ValueOrDie(), target);
}

TEST(AccountantTest, RemainingRepetitionsZeroWhenOverBudget) {
  PrivacyAccountant accountant;
  accountant.AddGaussian("expensive", 1.0, 0.5);  // eps >> 1 already.
  PrivacyEvent round;
  round.rdp = [](double alpha) { return GaussianRdp(alpha, 1.0, 2.0); };
  EXPECT_EQ(accountant.RemainingRepetitions(round, 1.0, 1e-5).ValueOrDie(),
            0u);
}

}  // namespace
}  // namespace sqm
