#include "poly/monomial.h"

#include <gtest/gtest.h>

namespace sqm {
namespace {

TEST(MonomialTest, ConstantMonomial) {
  const Monomial m(2.5);
  EXPECT_DOUBLE_EQ(m.coefficient(), 2.5);
  EXPECT_EQ(m.Degree(), 0u);
  EXPECT_EQ(m.MinArity(), 0u);
  EXPECT_DOUBLE_EQ(m.Evaluate({}), 2.5);
}

TEST(MonomialTest, PowerFactory) {
  const Monomial m = Monomial::Power(3.0, 1, 2);  // 3 * x1^2.
  EXPECT_EQ(m.Degree(), 2u);
  EXPECT_EQ(m.MinArity(), 2u);
  EXPECT_DOUBLE_EQ(m.Evaluate({0.0, 4.0}), 48.0);
}

TEST(MonomialTest, NormalizationMergesDuplicates) {
  // x0 * x0 must become x0^2.
  const Monomial m(1.0, {{0, 1}, {0, 1}});
  ASSERT_EQ(m.exponents().size(), 1u);
  EXPECT_EQ(m.exponents()[0].second, 2u);
  EXPECT_DOUBLE_EQ(m.Evaluate({3.0}), 9.0);
}

TEST(MonomialTest, NormalizationDropsZeroExponents) {
  const Monomial m(2.0, {{0, 0}, {1, 1}});
  ASSERT_EQ(m.exponents().size(), 1u);
  EXPECT_EQ(m.exponents()[0].first, 1u);
}

TEST(MonomialTest, NormalizationSortsVariables) {
  const Monomial m(1.0, {{3, 1}, {1, 2}});
  ASSERT_EQ(m.exponents().size(), 2u);
  EXPECT_EQ(m.exponents()[0].first, 1u);
  EXPECT_EQ(m.exponents()[1].first, 3u);
  EXPECT_EQ(m.MinArity(), 4u);
}

TEST(MonomialTest, EvaluateMixedTerm) {
  // -1.5 * x0^2 * x2^3 at (2, _, -1) = -1.5 * 4 * -1 = 6.
  const Monomial m(-1.5, {{0, 2}, {2, 3}});
  EXPECT_DOUBLE_EQ(m.Evaluate({2.0, 99.0, -1.0}), 6.0);
  EXPECT_EQ(m.Degree(), 5u);
}

TEST(MonomialTest, ProductMultipliesCoefficientsAndAddsExponents) {
  const Monomial a(2.0, {{0, 1}});
  const Monomial b(3.0, {{0, 1}, {1, 2}});
  const Monomial p = a * b;
  EXPECT_DOUBLE_EQ(p.coefficient(), 6.0);
  EXPECT_EQ(p.Degree(), 4u);
  EXPECT_DOUBLE_EQ(p.Evaluate({2.0, 3.0}), 6.0 * 4.0 * 9.0);
}

TEST(MonomialTest, ToStringShowsStructure) {
  const Monomial m(2.5, {{0, 2}, {3, 1}});
  EXPECT_EQ(m.ToString(), "2.5*x0^2*x3");
}

TEST(MonomialTest, LargeExponentEvaluation) {
  const Monomial m = Monomial::Power(1.0, 0, 10);
  EXPECT_DOUBLE_EQ(m.Evaluate({2.0}), 1024.0);
}

}  // namespace
}  // namespace sqm
