// Tests of the concurrent transport runtime: blocking receives across
// threads, timeout/retry recovery of fault-dropped messages, party crashes
// surfacing as protocol errors, delayed and reordered delivery, mailbox
// backpressure, and a per-party all-to-all stress run (the TSan target for
// the `net` ctest label).

#include "net/threaded.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/sqm.h"
#include "mpc/field.h"
#include "mpc/network.h"
#include "mpc/protocol.h"
#include "mpc/shamir.h"
#include "net/runner.h"

namespace sqm {
namespace {

ThreadedTransportOptions FastOptions() {
  // Short windows keep the fault tests quick; values this small are fine
  // because in-process "links" deliver in microseconds.
  ThreadedTransportOptions options;
  options.receive_timeout_seconds = 0.02;
  options.max_retries = 2;
  options.retry_backoff_seconds = 0.0005;
  return options;
}

TEST(ThreadedTransportTest, BlockingReceiveWaitsForConcurrentSend) {
  ThreadedTransport net(2, FastOptions());
  std::thread sender([&net] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    net.Send(0, 1, {7, 8});
  });
  // The receive starts before the send: it must block, not fail.
  const Result<Transport::Payload> received = net.Receive(0, 1);
  sender.join();
  ASSERT_TRUE(received.ok()) << received.status().ToString();
  EXPECT_EQ(received.ValueOrDie(), (Transport::Payload{7, 8}));
}

TEST(ThreadedTransportTest, DriverModeBgwMatchesLockstep) {
  // The same single-driver BGW program over both transports: the values
  // opened and every traffic counter must agree (faults disabled).
  auto run = [](Transport* network) {
    BgwProtocol protocol(ShamirScheme(5, 2), network, 77);
    SharedVector a = protocol.ShareFromParty(0, Field::EncodeVector({9, -2}));
    SharedVector b = protocol.ShareFromParty(3, Field::EncodeVector({4, 11}));
    SharedVector product = protocol.Mul(a, b).ValueOrDie();
    return protocol.OpenSigned(product);
  };

  SimulatedNetwork lockstep(5, 0.1);
  ThreadedTransportOptions options = FastOptions();
  options.per_round_latency_seconds = 0.1;
  options.element_wire_bytes = Field::kWireBytes;
  ThreadedTransport threaded(5, options);

  const std::vector<int64_t> lockstep_opened = run(&lockstep);
  EXPECT_EQ(run(&threaded), lockstep_opened);
  EXPECT_EQ(lockstep_opened, (std::vector<int64_t>{36, -22}));

  const NetworkStats expected = lockstep.stats();
  const NetworkStats actual = threaded.stats();
  EXPECT_EQ(actual.messages, expected.messages);
  EXPECT_EQ(actual.field_elements, expected.field_elements);
  EXPECT_EQ(actual.rounds, expected.rounds);
  EXPECT_EQ(actual.bytes(), expected.bytes());
  EXPECT_DOUBLE_EQ(threaded.SimulatedSeconds(), lockstep.SimulatedSeconds());
}

TEST(ThreadedTransportTest, TimeoutThenRetryRecoversDroppedMessage) {
  // Certain drop: the first receive attempt must time out, request a
  // retransmission, and deliver the original payload on the retry.
  ThreadedTransportOptions options = FastOptions();
  options.faults.all_links.drop_probability = 1.0;
  ThreadedTransport net(2, options);

  net.Send(0, 1, {42, 43});
  const Result<Transport::Payload> received = net.Receive(0, 1);
  ASSERT_TRUE(received.ok()) << received.status().ToString();
  EXPECT_EQ(received.ValueOrDie(), (Transport::Payload{42, 43}));

  const TransportStats snapshot = net.Snapshot();
  EXPECT_EQ(snapshot.drops_injected, 1u);
  EXPECT_EQ(snapshot.receive_timeouts, 1u);
  EXPECT_EQ(snapshot.retries, 1u);
  // The retransmission is charged as fresh traffic, like a resent packet.
  EXPECT_EQ(snapshot.totals.messages, 2u);
  EXPECT_EQ(snapshot.totals.field_elements, 4u);
}

TEST(ThreadedTransportTest, SilentChannelExhaustsRetriesWithDeadline) {
  ThreadedTransport net(2, FastOptions());
  const Result<Transport::Payload> received = net.Receive(0, 1);
  ASSERT_FALSE(received.ok());
  EXPECT_EQ(received.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(net.Snapshot().receive_timeouts, 3u);  // 1 try + 2 retries.
}

TEST(ThreadedTransportTest, CrashedPartyMidMulFailsWithUnavailable) {
  // Party 2 crashes after the two input rounds; the Mul that follows cannot
  // gather its re-shares and must fail gracefully instead of aborting.
  ThreadedTransportOptions options = FastOptions();
  options.max_retries = 1;
  options.faults.crash_party = 2;
  options.faults.crash_after_rounds = 2;
  ThreadedTransport net(3, options);

  BgwProtocol protocol(ShamirScheme(3, 1), &net, 5);
  SharedVector a = protocol.ShareFromParty(0, Field::EncodeVector({6}));
  SharedVector b = protocol.ShareFromParty(1, Field::EncodeVector({7}));
  const Result<SharedVector> product = protocol.Mul(a, b);
  ASSERT_FALSE(product.ok());
  EXPECT_EQ(product.status().code(), StatusCode::kUnavailable);
  // The crashed party's two cross-party re-shares were swallowed.
  EXPECT_EQ(net.Snapshot().crash_losses, 2u);
}

TEST(ThreadedTransportTest, DelayedDeliveryExtendsTheWait) {
  // The injected delay exceeds the receive timeout; because the message is
  // known to be in flight, the receive waits it out instead of timing out.
  ThreadedTransportOptions options = FastOptions();
  options.faults.all_links.delay_mean_seconds = 0.03;
  ThreadedTransport net(2, options);

  net.Send(0, 1, {5});
  const Result<Transport::Payload> received = net.Receive(0, 1);
  ASSERT_TRUE(received.ok()) << received.status().ToString();
  EXPECT_EQ(received.ValueOrDie(), (Transport::Payload{5}));
  const TransportStats snapshot = net.Snapshot();
  EXPECT_EQ(snapshot.delays_injected, 1u);
  EXPECT_EQ(snapshot.receive_timeouts, 0u);
}

TEST(ThreadedTransportTest, ReorderedMessagesJumpTheQueue) {
  ThreadedTransportOptions options = FastOptions();
  options.faults.all_links.reorder_probability = 1.0;
  ThreadedTransport net(2, options);

  net.Send(0, 1, {1});  // Queue empty: nothing to jump ahead of.
  net.Send(0, 1, {2});  // Reordered in front of {1}.
  EXPECT_EQ(net.Receive(0, 1).ValueOrDie(), (Transport::Payload{2}));
  EXPECT_EQ(net.Receive(0, 1).ValueOrDie(), (Transport::Payload{1}));
  EXPECT_EQ(net.Snapshot().reorders_injected, 1u);
}

TEST(ThreadedTransportTest, BoundedMailboxExertsBackpressure) {
  ThreadedTransportOptions options = FastOptions();
  options.mailbox_capacity = 1;
  ThreadedTransport net(2, options);

  net.Send(0, 1, {1});  // Fills the channel.
  std::atomic<bool> drained{false};
  std::thread receiver([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    drained.store(true);
    EXPECT_EQ(net.Receive(0, 1).ValueOrDie(), (Transport::Payload{1}));
    EXPECT_EQ(net.Receive(0, 1).ValueOrDie(), (Transport::Payload{2}));
  });
  net.Send(0, 1, {2});  // Must block until the receiver drains {1}.
  EXPECT_TRUE(drained.load());
  receiver.join();
}

TEST(ThreadedTransportTest, ResetDrainsQueuesAndRetransmissions) {
  ThreadedTransportOptions options = FastOptions();
  options.faults.all_links.drop_probability = 1.0;
  ThreadedTransport net(2, options);
  net.Send(0, 1, {1});  // Dropped: parked for retransmission.

  ThreadedTransport clean(2, FastOptions());
  clean.Send(0, 1, {1});
  clean.Send(1, 0, {2});
  clean.EndRound();
  EXPECT_EQ(clean.Reset(), 2u);
  EXPECT_EQ(clean.stats().messages, 0u);
  EXPECT_EQ(clean.completed_rounds(), 0u);
  EXPECT_EQ(net.Reset(), 1u);  // The parked retransmission counts too.
}

TEST(ThreadedTransportTest, PerPartyAllToAllStress) {
  // The TSan target: every party on its own thread, all-to-all traffic with
  // a round barrier, checking payload integrity and final accounting. Any
  // data race in the mailbox or accounting paths shows up here.
  constexpr size_t kParties = 4;
  constexpr uint64_t kRounds = 25;
  ThreadedTransport net(kParties, FastOptions());
  PartyRunner runner(kParties);

  const Status status = runner.Run([&](size_t party) -> Status {
    for (uint64_t round = 0; round < kRounds; ++round) {
      for (size_t to = 0; to < kParties; ++to) {
        net.Send(party, to, {round, party, to});
      }
      net.ArriveRound(party);
      for (size_t from = 0; from < kParties; ++from) {
        SQM_ASSIGN_OR_RETURN(const Transport::Payload received,
                             net.Receive(from, party));
        if (received != Transport::Payload{round, from, party}) {
          return Status::Internal("payload corrupted in transit");
        }
      }
    }
    return Status::OK();
  });
  EXPECT_TRUE(status.ok()) << status.ToString();

  const TransportStats snapshot = net.Snapshot();
  EXPECT_EQ(snapshot.totals.rounds, kRounds);
  EXPECT_EQ(snapshot.totals.messages, kRounds * kParties * (kParties - 1));
  EXPECT_EQ(snapshot.totals.field_elements, 3 * snapshot.totals.messages);
  EXPECT_EQ(snapshot.channels.size(), kParties * (kParties - 1));
}

TEST(ThreadedTransportTest, SqmPipelineSurvivesDropsAndMatchesLockstep) {
  // End to end: the full SQM release over BGW on a lossy threaded transport
  // must reconstruct exactly the values the deterministic lock-step
  // simulation releases — retries make the loss invisible to the protocol.
  PolynomialVector f;
  Polynomial p;
  p.AddTerm(Monomial::Power(1.0, 0, 3));
  p.AddTerm(Monomial(1.5, {{1, 1}, {2, 1}}));
  f.AddDimension(p);
  Matrix x{{0.2, -0.3, 0.4}, {0.5, 0.1, -0.2}, {-0.4, 0.6, 0.3}};

  SqmOptions options;
  options.gamma = 512.0;
  options.mu = 0.0;
  options.backend = MpcBackend::kBgw;
  options.max_f_l2 = 4.0;
  const SqmReport lockstep =
      SqmEvaluator(options).Evaluate(f, x).ValueOrDie();

  options.transport = TransportMode::kThreaded;
  options.threaded = FastOptions();
  options.threaded.max_retries = 6;
  options.threaded.faults.all_links.drop_probability = 0.1;
  const SqmReport threaded =
      SqmEvaluator(options).Evaluate(f, x).ValueOrDie();

  EXPECT_EQ(threaded.raw, lockstep.raw);
  EXPECT_EQ(threaded.estimate, lockstep.estimate);
  // Loss shows up in the transport report, not the release.
  EXPECT_GT(threaded.transport.drops_injected, 0u);
  EXPECT_EQ(threaded.transport.retries, threaded.transport.drops_injected);
  EXPECT_GT(threaded.transport.wall_seconds, 0.0);
  EXPECT_EQ(threaded.network.messages,
            lockstep.network.messages + threaded.transport.retries);
}

}  // namespace
}  // namespace sqm
