#include "vfl/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace sqm {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test case: ctest runs cases as parallel processes, and a
    // shared filename races (one process's TearDown unlinks another's file).
    path_ = ::testing::TempDir() + "/sqm_csv_test_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".csv";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void WriteFile(const std::string& content) {
    std::ofstream f(path_);
    f << content;
  }

  std::string path_;
};

TEST_F(CsvTest, LoadsUnlabelledWithHeader) {
  WriteFile("a,b\n1.5,2\n-3,0.25\n");
  const VflDataset data = LoadCsvDataset(path_).ValueOrDie();
  EXPECT_EQ(data.num_records(), 2u);
  EXPECT_EQ(data.num_features(), 2u);
  EXPECT_FALSE(data.has_labels());
  EXPECT_DOUBLE_EQ(data.features(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(data.features(1, 1), 0.25);
}

TEST_F(CsvTest, LoadsLabelColumn) {
  WriteFile("x0,x1,label\n0.5,0.25,1\n-1,2,0\n");
  CsvOptions options;
  options.label_column = 2;
  const VflDataset data = LoadCsvDataset(path_, options).ValueOrDie();
  EXPECT_EQ(data.num_features(), 2u);
  EXPECT_EQ(data.labels, (std::vector<int>{1, 0}));
}

TEST_F(CsvTest, NoHeaderMode) {
  WriteFile("1,2\n3,4\n");
  CsvOptions options;
  options.has_header = false;
  const VflDataset data = LoadCsvDataset(path_, options).ValueOrDie();
  EXPECT_EQ(data.num_records(), 2u);
}

TEST_F(CsvTest, CustomDelimiter) {
  WriteFile("a;b\n1;2\n");
  CsvOptions options;
  options.delimiter = ';';
  const VflDataset data = LoadCsvDataset(path_, options).ValueOrDie();
  EXPECT_DOUBLE_EQ(data.features(0, 1), 2.0);
}

TEST_F(CsvTest, RejectsMissingFile) {
  EXPECT_EQ(LoadCsvDataset("/nonexistent/file.csv").status().code(),
            StatusCode::kIoError);
}

TEST_F(CsvTest, RejectsNonNumericField) {
  WriteFile("a,b\n1,two\n");
  const auto result = LoadCsvDataset(path_);
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  EXPECT_NE(result.status().message().find("two"), std::string::npos);
}

TEST_F(CsvTest, RejectsRaggedRows) {
  WriteFile("a,b\n1,2\n3\n");
  EXPECT_EQ(LoadCsvDataset(path_).status().code(), StatusCode::kIoError);
}

TEST_F(CsvTest, RejectsEmptyFile) {
  WriteFile("header,only\n");
  EXPECT_EQ(LoadCsvDataset(path_).status().code(), StatusCode::kIoError);
}

TEST_F(CsvTest, RejectsLabelColumnOutOfRange) {
  WriteFile("a,b\n1,2\n");
  CsvOptions options;
  options.label_column = 5;
  EXPECT_EQ(LoadCsvDataset(path_, options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(CsvTest, SaveLoadRoundTrip) {
  VflDataset data;
  data.features = Matrix{{1.25, -2}, {0, 3.5}};
  data.labels = {1, 0};
  CsvOptions options;
  options.label_column = 2;
  ASSERT_TRUE(SaveCsvDataset(data, path_, options).ok());
  const VflDataset loaded = LoadCsvDataset(path_, options).ValueOrDie();
  EXPECT_EQ(loaded.features, data.features);
  EXPECT_EQ(loaded.labels, data.labels);
}

}  // namespace
}  // namespace sqm
