// The distributed observability plane, end to end: a 5-process networked
// run must yield (a) one merged, clock-aligned Perfetto timeline whose
// net.link flow arrows connect a sender's net.send span to the receiver's
// net.recv span ACROSS process boundaries, (b) a fleet_metrics.json whose
// per-party byte counters reconcile exactly with each party's own
// transport accounting, and (c) — with the runtime kill switch off — a
// bit-identical release with no telemetry artifacts at all (the
// telemetry-never-changes-results invariant).
//
// The supervised-restart suite SIGKILLs party 2 mid-Mul and checks the
// trace side of recovery: the pre-crash incarnation's spans survive (the
// telemetry tick rewrites the trace file durably), both incarnations merge
// onto ONE party track, and the respawn's span-id namespace shares no ids
// with its pre-crash self.

#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/json.h"
#include "core/report_io.h"
#include "core/sqm.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#include <unistd.h>
#define SQM_DEPLOY_TEST_SUPPORTED 1
#endif

namespace {

#ifdef SQM_DEPLOY_TEST_SUPPORTED

using sqm::JsonValue;
using sqm::ParseJson;

/// 5-party roster, quorum 3, one restart — deploy_chaos_test's recovery
/// shape plus the observability knobs: a fast telemetry tick (0.05 s) so
/// the durable trace rewrite certainly lands before a mid-Mul SIGKILL.
std::string DeployConfig(uint64_t run_id, bool obs_enabled) {
  std::ostringstream out;
  out << "{\n"
      << "  \"run_id\": " << run_id << ", \"session_key\": 6060,\n"
      << "  \"parties\": ["
      << "{\"host\":\"127.0.0.1\",\"port\":0},"
      << "{\"host\":\"127.0.0.1\",\"port\":0},"
      << "{\"host\":\"127.0.0.1\",\"port\":0},"
      << "{\"host\":\"127.0.0.1\",\"port\":0},"
      << "{\"host\":\"127.0.0.1\",\"port\":0}],\n"
      << "  \"rows\": 6, \"cols\": 5, \"data_seed\": 9,\n"
      << "  \"polynomial\": \"x0*x1; x2*x3; x3*x4\",\n"
      << "  \"gamma\": 32, \"mu\": 4, \"seed\": 1234,\n"
      << "  \"dropout_policy\": \"degrade\",\n"
      << "  \"bgw_threshold\": 1, \"dp_delta\": 1e-5,\n"
      << "  \"mpc_max_attempts\": 8,\n"
      << "  \"receive_timeout_seconds\": 1.0,\n"
      << "  \"max_reconnect_attempts\": 2,\n"
      << "  \"reconnect_backoff_seconds\": 0.05,\n"
      << "  \"max_restarts\": 1,\n"
      << "  \"restart_backoff_seconds\": 0.25,\n"
      << "  \"recovery_deadline_seconds\": 20.0,\n"
      << "  \"obs_enabled\": " << (obs_enabled ? "true" : "false") << ",\n"
      << "  \"telemetry_snapshot_interval_seconds\": 0.05\n"
      << "}\n";
  return out.str();
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return in ? buffer.str() : std::string();
}

bool FileExists(const std::string& path) {
  std::ifstream in(path);
  return static_cast<bool>(in);
}

struct RunResult {
  std::string dir;
  std::string coordinator_json;
};

RunResult RunCoordinator(const std::string& name,
                         const std::string& config_text,
                         const std::string& extra_flags) {
  RunResult result;
  result.dir = testing::TempDir() + "/obsdist_" + name + "_" +
               std::to_string(::getpid());
  EXPECT_EQ(std::system(("mkdir -p " + result.dir).c_str()), 0);
  {
    std::ofstream config(result.dir + "/deploy.json", std::ios::trunc);
    config << config_text;
    EXPECT_TRUE(config.good());
  }
  const std::string command =
      std::string(SQM_COORDINATOR_BIN) + " --config=" + result.dir +
      "/deploy.json --out-dir=" + result.dir + " " + extra_flags +
      " --timeout-seconds=240 > " + result.dir + "/coordinator.log 2>&1";
  const int rc = std::system(command.c_str());
  EXPECT_TRUE(WIFEXITED(rc) && WEXITSTATUS(rc) == 0)
      << "coordinator log:\n"
      << ReadFileOrEmpty(result.dir + "/coordinator.log");
  result.coordinator_json = ReadFileOrEmpty(result.dir + "/coordinator.json");
  return result;
}

/// Flow-arrow ids of the given phase ("s" or "f") with the pid that
/// recorded each, keyed by id.
std::map<uint64_t, std::set<uint64_t>> FlowPidsByPhase(
    const JsonValue& trace, const std::string& phase) {
  std::map<uint64_t, std::set<uint64_t>> out;
  for (const JsonValue& event : trace.Find("traceEvents")->items) {
    const JsonValue* ph = event.Find("ph");
    if (ph == nullptr || ph->string_value != phase) continue;
    out[event.Find("id")->uint_value].insert(
        event.Find("pid")->uint_value);
  }
  return out;
}

TEST(ObsDistributed, FleetTelemetryAndMergedTraceEndToEnd) {
  const RunResult result =
      RunCoordinator("fleet", DeployConfig(201, /*obs_enabled=*/true),
                     "--compare-lockstep --stats-interval=0.1");
  EXPECT_NE(result.coordinator_json.find("\"lockstep_match\":true"),
            std::string::npos);
  EXPECT_NE(result.coordinator_json.find("\"telemetry_reconciles\":true"),
            std::string::npos)
      << result.coordinator_json;

  // fleet_metrics.json reconciles EXACTLY with every party's own frozen
  // transport totals — the fleet view is the parties' accounting, not an
  // approximation of it.
  const std::string fleet_text =
      ReadFileOrEmpty(result.dir + "/fleet_metrics.json");
  ASSERT_FALSE(fleet_text.empty());
  const JsonValue fleet = ParseJson(fleet_text).ValueOrDie();
  const JsonValue* parties = fleet.Find("parties");
  ASSERT_NE(parties, nullptr);
  ASSERT_EQ(parties->items.size(), 5u);
  for (const JsonValue& entry : parties->items) {
    const uint64_t j = entry.Find("party")->uint_value;
    EXPECT_TRUE(entry.Find("final")->bool_value)
        << "party " << j << " never shipped its final snapshot";
    const sqm::SqmReport report =
        sqm::SqmReportFromJson(
            ReadFileOrEmpty(result.dir + "/party_" + std::to_string(j) +
                            ".json"))
            .ValueOrDie();
    const JsonValue* net = entry.Find("net");
    ASSERT_NE(net, nullptr);
    EXPECT_EQ(net->Find("wire_bytes")->uint_value,
              report.transport.totals.wire_bytes);
    EXPECT_EQ(net->Find("messages")->uint_value,
              report.transport.totals.messages);
    EXPECT_EQ(net->Find("field_elements")->uint_value,
              report.transport.totals.field_elements);
    EXPECT_EQ(net->Find("rounds")->uint_value,
              report.transport.totals.rounds);
    // The ledger and the Beaver/phase state rode along.
    EXPECT_NE(entry.Find("phase"), nullptr);
    EXPECT_NE(entry.Find("clock_offset_micros"), nullptr);
  }

  // The merged timeline links sends to receives across processes: at
  // least one net.link flow id must have its start ("s") and finish
  // ("f") recorded by DIFFERENT pids.
  const std::string merged_text =
      ReadFileOrEmpty(result.dir + "/merged_trace.json");
  ASSERT_FALSE(merged_text.empty());
  const JsonValue merged = ParseJson(merged_text).ValueOrDie();
  const auto starts = FlowPidsByPhase(merged, "s");
  const auto finishes = FlowPidsByPhase(merged, "f");
  EXPECT_FALSE(starts.empty());
  size_t cross_process_links = 0;
  for (const auto& [id, finish_pids] : finishes) {
    const auto start = starts.find(id);
    if (start == starts.end()) continue;
    for (const uint64_t finish_pid : finish_pids) {
      if (start->second.count(finish_pid) == 0) ++cross_process_links;
    }
  }
  EXPECT_GT(cross_process_links, 0u)
      << "no flow arrow crosses a process boundary";

  // The coordinator's own validator accepts the merged document
  // (monotone, properly nested span intervals; no dangling flows).
  const int rc = std::system(
      (std::string(SQM_COORDINATOR_BIN) + " --trace-validate=" +
       result.dir + "/merged_trace.json > /dev/null 2>&1")
          .c_str());
  EXPECT_TRUE(WIFEXITED(rc) && WEXITSTATUS(rc) == 0)
      << "trace-validate rejected the merged trace";
}

TEST(ObsDistributed, RestartKeepsOnePartyTrackWithFreshSpanIds) {
  const RunResult result = RunCoordinator(
      "restart", DeployConfig(202, /*obs_enabled=*/true),
      "--compare-lockstep --crash-party=2 --crash-at-mul-level=1");
  EXPECT_NE(result.coordinator_json.find("\"restarts\":1"),
            std::string::npos)
      << result.coordinator_json;

  // The SIGKILLed incarnation never dumped its own flight ring, so the
  // supervisor must have preserved the black box from the last telemetry
  // snapshot at restart time — even though the respawn finished cleanly.
  const std::string flight_text =
      ReadFileOrEmpty(result.dir + "/flight_2.json");
  ASSERT_FALSE(flight_text.empty()) << "flight recorder lost to SIGKILL";
  EXPECT_NE(flight_text.find("\"party\":2"), std::string::npos)
      << flight_text;
  EXPECT_NE(flight_text.find("\"events\":["), std::string::npos)
      << flight_text;

  // The pre-crash incarnation's trace survived the SIGKILL (the telemetry
  // tick rewrites it durably), and the respawn wrote its own file.
  const std::string pre_text =
      ReadFileOrEmpty(result.dir + "/party_2.inc0.trace.json");
  const std::string post_text =
      ReadFileOrEmpty(result.dir + "/party_2.inc1.trace.json");
  ASSERT_FALSE(pre_text.empty()) << "pre-crash trace lost";
  ASSERT_FALSE(post_text.empty()) << "post-crash trace missing";

  // No span-id collisions across the crash: the respawn draws from an
  // incarnation-keyed namespace, so the flow ids (net.send span ids) of
  // the two incarnations are disjoint.
  auto flow_ids = [](const std::string& text) {
    std::set<uint64_t> ids;
    const JsonValue doc = ParseJson(text).ValueOrDie();
    for (const JsonValue& event : doc.Find("traceEvents")->items) {
      const JsonValue* ph = event.Find("ph");
      if (ph != nullptr &&
          (ph->string_value == "s" || ph->string_value == "f")) {
        ids.insert(event.Find("id")->uint_value);
      }
    }
    return ids;
  };
  const std::set<uint64_t> pre_ids = flow_ids(pre_text);
  const std::set<uint64_t> post_ids = flow_ids(post_text);
  EXPECT_FALSE(post_ids.empty());
  for (const uint64_t id : post_ids) {
    EXPECT_EQ(pre_ids.count(id), 0u)
        << "span id " << id << " reused across incarnations";
  }

  // Both incarnations merged onto ONE party track: exactly one
  // process_name record for party 2's pid (pid = party + 1 = 3), with
  // span events from both documents under it.
  const JsonValue merged =
      ParseJson(ReadFileOrEmpty(result.dir + "/merged_trace.json"))
          .ValueOrDie();
  int labels_for_pid3 = 0;
  bool pid3_has_spans = false;
  for (const JsonValue& event : merged.Find("traceEvents")->items) {
    const JsonValue* name = event.Find("name");
    const JsonValue* pid = event.Find("pid");
    if (name == nullptr || pid == nullptr || pid->uint_value != 3u) {
      continue;
    }
    if (name->string_value == "process_name") ++labels_for_pid3;
    const JsonValue* ph = event.Find("ph");
    if (ph != nullptr && ph->string_value == "X") pid3_has_spans = true;
  }
  EXPECT_EQ(labels_for_pid3, 1);
  EXPECT_TRUE(pid3_has_spans);
}

TEST(ObsDistributed, KillSwitchLeavesNoArtifactsAndIdenticalRelease) {
  // Runtime kill switch off: --compare-lockstep still passes (the
  // coordinator's exit code asserts the bit-identical release), and NO
  // observability artifact exists — no telemetry channel, no fleet view,
  // no trace files, no merged timeline.
  const RunResult result =
      RunCoordinator("dark", DeployConfig(203, /*obs_enabled=*/false),
                     "--compare-lockstep");
  EXPECT_NE(result.coordinator_json.find("\"lockstep_match\":true"),
            std::string::npos);
  EXPECT_NE(result.coordinator_json.find("\"telemetry_enabled\":false"),
            std::string::npos)
      << result.coordinator_json;
  EXPECT_FALSE(FileExists(result.dir + "/fleet_metrics.json"));
  EXPECT_FALSE(FileExists(result.dir + "/merged_trace.json"));
  for (int j = 0; j < 5; ++j) {
    EXPECT_FALSE(FileExists(result.dir + "/party_" + std::to_string(j) +
                            ".inc0.trace.json"));
    EXPECT_FALSE(FileExists(result.dir + "/flight_" + std::to_string(j) +
                            ".json"));
  }
}

#else  // !SQM_DEPLOY_TEST_SUPPORTED

TEST(ObsDistributed, SkippedWithoutForkExec) {
  GTEST_SKIP() << "multi-process observability tests need POSIX fork/exec";
}

#endif

}  // namespace
