#include "net/liveness.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace sqm {
namespace {

TEST(LivenessTest, StartsAllAlive) {
  LivenessTracker tracker(4);
  EXPECT_EQ(tracker.num_parties(), 4u);
  EXPECT_EQ(tracker.num_alive(), 4u);
  EXPECT_EQ(tracker.num_dead(), 0u);
  for (size_t j = 0; j < 4; ++j) {
    EXPECT_EQ(tracker.state(j), PartyLiveness::kAlive);
    EXPECT_FALSE(tracker.IsDead(j));
  }
  EXPECT_EQ(tracker.Survivors(), (std::vector<size_t>{0, 1, 2, 3}));
  EXPECT_TRUE(tracker.Dead().empty());
}

TEST(LivenessTest, TimeoutsWalkAliveSuspectedDead) {
  LivenessTracker tracker(3, LivenessOptions{1, 2});
  tracker.RecordFailure(1, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(tracker.state(1), PartyLiveness::kSuspected);
  EXPECT_EQ(tracker.num_alive(), 3u);  // Suspected still counts alive.
  tracker.RecordFailure(1, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(tracker.state(1), PartyLiveness::kDead);
  EXPECT_EQ(tracker.num_alive(), 2u);
  EXPECT_EQ(tracker.Dead(), (std::vector<size_t>{1}));
}

TEST(LivenessTest, SuccessClearsSuspicion) {
  LivenessTracker tracker(3, LivenessOptions{1, 3});
  tracker.RecordFailure(2, StatusCode::kDeadlineExceeded);
  tracker.RecordFailure(2, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(tracker.state(2), PartyLiveness::kSuspected);
  tracker.RecordSuccess(2);
  EXPECT_EQ(tracker.state(2), PartyLiveness::kAlive);
  // The failure counter restarted: three more timeouts to die, not one.
  tracker.RecordFailure(2, StatusCode::kDeadlineExceeded);
  tracker.RecordFailure(2, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(tracker.state(2), PartyLiveness::kSuspected);
  tracker.RecordFailure(2, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(tracker.state(2), PartyLiveness::kDead);
}

TEST(LivenessTest, UnavailableKillsImmediately) {
  LivenessTracker tracker(3);
  tracker.RecordFailure(0, StatusCode::kUnavailable);
  EXPECT_TRUE(tracker.IsDead(0));
  EXPECT_EQ(tracker.Survivors(), (std::vector<size_t>{1, 2}));
}

TEST(LivenessTest, DeadIsAbsorbing) {
  LivenessTracker tracker(2);
  tracker.MarkDead(1);
  tracker.RecordSuccess(1);
  EXPECT_TRUE(tracker.IsDead(1));
  tracker.RecordFailure(1, StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(tracker.IsDead(1));
}

TEST(LivenessTest, ResetRevivesEveryone) {
  LivenessTracker tracker(3);
  tracker.MarkDead(0);
  tracker.RecordFailure(1, StatusCode::kDeadlineExceeded);
  tracker.Reset();
  EXPECT_EQ(tracker.num_alive(), 3u);
  EXPECT_EQ(tracker.state(1), PartyLiveness::kAlive);
}

TEST(LivenessTest, ToStringCoversAllStates) {
  EXPECT_STREQ(PartyLivenessToString(PartyLiveness::kAlive), "alive");
  EXPECT_STREQ(PartyLivenessToString(PartyLiveness::kSuspected),
               "suspected");
  EXPECT_STREQ(PartyLivenessToString(PartyLiveness::kDead), "dead");
}

TEST(LivenessTest, ConcurrentRecordingIsSafe) {
  // Per-party threads of a ThreadedTransport run hammer one tracker; TSan
  // (the net/resilience sanitizer config) verifies the locking.
  LivenessTracker tracker(8);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < 8; ++t) {
    threads.emplace_back([&tracker, t] {
      for (int i = 0; i < 200; ++i) {
        tracker.RecordFailure(t, StatusCode::kDeadlineExceeded);
        tracker.RecordSuccess(t);
        (void)tracker.Survivors();
        (void)tracker.num_alive();
      }
      tracker.RecordFailure(t, StatusCode::kUnavailable);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(tracker.num_dead(), 8u);
}

}  // namespace
}  // namespace sqm
