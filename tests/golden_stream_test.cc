// Golden-stream regression pins: exact outputs of the deterministic
// building blocks every reproducible run depends on — the xoshiro256**
// generator, stochastic rounding, field arithmetic and encoding, Shamir
// share streams, and the Skellam sampler. A change in any of these values
// silently invalidates every recorded transcript, fuzz seed, and published
// experiment; this test turns that silent break into a loud one.
//
// If a change here is INTENTIONAL (a deliberate RNG or encoding revision),
// regenerate the constants and say so in the commit message — downstream
// transcripts and seeds stop reproducing across that boundary.

#include <gtest/gtest.h>

#include <vector>

#include "core/quantize.h"
#include "mpc/beaver.h"
#include "mpc/field.h"
#include "mpc/shamir.h"
#include "sampling/rng.h"
#include "sampling/skellam_sampler.h"

namespace sqm {
namespace {

TEST(GoldenStreamTest, RngUint64Stream) {
  Rng rng(12345);
  EXPECT_EQ(rng.NextUint64(), 13720838825685603483ULL);
  EXPECT_EQ(rng.NextUint64(), 2398916695208396998ULL);
  EXPECT_EQ(rng.NextUint64(), 17770384849984869256ULL);
  EXPECT_EQ(rng.NextUint64(), 891717726879801395ULL);
  EXPECT_EQ(rng.NextBounded(1000), 344ULL);
  EXPECT_EQ(rng.NextBounded(1000), 396ULL);
  EXPECT_EQ(rng.NextBounded(1000), 809ULL);
  EXPECT_EQ(rng.NextBounded(1000), 710ULL);
  // Exact doubles: NextDouble is a deterministic bit manipulation of the
  // uint64 stream, not a platform-dependent conversion.
  EXPECT_EQ(rng.NextDouble(), 0.38596574267734496);
  EXPECT_EQ(rng.NextDouble(), 0.91061307555070869);
}

TEST(GoldenStreamTest, RngSplitIsAnIndependentPinnedStream) {
  Rng rng(7);
  Rng split = rng.Split(1);
  EXPECT_EQ(split.NextUint64(), 8026408544651863512ULL);
  // Split consumes exactly one parent draw, independent of the stream id:
  // the parent's stream after Split(1) and after Split(2) must agree.
  Rng parent_a(7);
  parent_a.Split(1);
  Rng parent_b(7);
  parent_b.Split(2);
  EXPECT_EQ(parent_a.NextUint64(), parent_b.NextUint64());
  // Distinct stream ids give unrelated child streams.
  Rng again(7);
  EXPECT_NE(again.Split(2).NextUint64(), 8026408544651863512ULL);
}

TEST(GoldenStreamTest, StochasticRoundStream) {
  Rng rng(42);
  EXPECT_EQ(StochasticRound(0.3, 16.0, rng), 5);
  EXPECT_EQ(StochasticRound(-1.7, 16.0, rng), -27);
  EXPECT_EQ(StochasticRound(2.5, 16.0, rng), 40);
  EXPECT_EQ(StochasticRound(0.0, 16.0, rng), 0);
  EXPECT_EQ(StochasticRound(-0.49, 16.0, rng), -8);
  EXPECT_EQ(StochasticRound(123.456, 16.0, rng), 1975);
}

TEST(GoldenStreamTest, FieldArithmeticAndEncoding) {
  EXPECT_EQ(Field::Mul(1234567890123ULL, 987654321ULL),
            1841202383003765355ULL);
  EXPECT_EQ(Field::Pow(3, 1000000), 163732605560283221ULL);
  EXPECT_EQ(Field::Inv(12345), 2288845705541077819ULL);
  EXPECT_EQ(Field::Mul(12345, Field::Inv(12345)), 1ULL);
  EXPECT_EQ(Field::Encode(-5), 2305843009213693946ULL);  // kModulus - 5.
  EXPECT_EQ(Field::Decode(Field::Encode(-5)), -5);
  EXPECT_EQ(Field::Decode(Field::Encode(int64_t{1} << 40)), int64_t{1} << 40);
}

TEST(GoldenStreamTest, ShamirShareStream) {
  Rng rng(99);
  const ShamirScheme scheme(5, 2);
  const std::vector<Field::Element> shares =
      scheme.Share(Field::Encode(42), rng);
  const std::vector<Field::Element> expected = {
      695513846409949539ULL,  1446368837727678369ULL,
      2252564973953186532ULL, 808259245872780077ULL,
      1725137671913846906ULL,
  };
  EXPECT_EQ(shares, expected);
  EXPECT_EQ(Field::Decode(scheme.Reconstruct(shares)), 42);
}

TEST(GoldenStreamTest, ShamirShareBatchStream) {
  // Same seed and scheme as ShamirShareStream: the FIRST secret's column
  // must reproduce that pin exactly (ShareBatch draws coefficients in the
  // same secret-major order as d scalar Share calls), and the rest of the
  // matrix is pinned so any RNG-schedule drift in the batched path fails
  // loudly here before it can corrupt a release.
  Rng rng(99);
  const ShamirScheme scheme(5, 2);
  const std::vector<std::vector<Field::Element>> rows = scheme.ShareBatch(
      {Field::Encode(42), Field::Encode(-7), Field::Encode(1000000007)}, rng);
  const std::vector<std::vector<Field::Element>> expected = {
      {695513846409949539ULL, 2007791269633559457ULL,
       2153650275751665538ULL},
      {1446368837727678369ULL, 995039701646312208ULL,
       370679382725468610ULL},
      {2252564973953186532ULL, 1573431314465646148ULL,
       1568616349562491076ULL},
      {808259245872780077ULL, 1437123098877867326ULL,
       1135775157835345034ULL},
      {1725137671913846906ULL, 586115054882975742ULL,
       1377998816757724435ULL},
  };
  EXPECT_EQ(rows, expected);
  const std::vector<Field::Element> secrets = scheme.ReconstructBatch(rows);
  ASSERT_EQ(secrets.size(), 3u);
  EXPECT_EQ(Field::Decode(secrets[0]), 42);
  EXPECT_EQ(Field::Decode(secrets[1]), -7);
  EXPECT_EQ(Field::Decode(secrets[2]), 1000000007);
}

TEST(GoldenStreamTest, BeaverPoolTripleStream) {
  // The offline pool's triple stream for a fixed seed, pinned end to end.
  // Every party's shares of (a, b, c) are part of the deterministic replay
  // contract: a seed-4242 pool must hand out these exact shares forever.
  BeaverTriplePool pool(ShamirScheme(5, 2), 4242, 2);
  const BeaverTriplePool::TripleBatch batch = pool.Take(2).ValueOrDie();
  const std::vector<std::vector<Field::Element>> expected_a = {
      {1156198552247118895ULL, 711273587708044440ULL},
      {1705491641041966133ULL, 1392391941948312783ULL},
      {2272682223285477541ULL, 55636982904808001ULL},
      {551927289763959168ULL, 1312694729004917996ULL},
      {1154912858904798916ULL, 551879161821254866ULL},
  };
  const std::vector<std::vector<Field::Element>> expected_b = {
      {758286593360335874ULL, 1478351140677974869ULL},
      {1467318294389616872ULL, 545864227197743332ULL},
      {980404277712518404ULL, 2230068641420382427ULL},
      {1603387552542734421ULL, 1919278364918504252ULL},
      {1030425109666570972ULL, 1919336406905802758ULL},
  };
  const std::vector<std::vector<Field::Element>> expected_c = {
      {1516838377061997254ULL, 1483514692084005341ULL},
      {183068127407078727ULL, 1126594411282514958ULL},
      {1760918351818857212ULL, 110984569425916338ULL},
      {1638703031869944807ULL, 742528175727903432ULL},
      {2122265176774035463ULL, 715382220974782289ULL},
  };
  const ShamirScheme scheme(5, 2);
  for (size_t j = 0; j < 5; ++j) {
    EXPECT_EQ(batch.a.shares(j), expected_a[j]) << "party " << j;
    EXPECT_EQ(batch.b.shares(j), expected_b[j]) << "party " << j;
    EXPECT_EQ(batch.c.shares(j), expected_c[j]) << "party " << j;
  }
  // And the pinned triples are in fact multiplication triples.
  for (size_t i = 0; i < 2; ++i) {
    std::vector<Field::Element> a_col(5), b_col(5), c_col(5);
    for (size_t j = 0; j < 5; ++j) {
      a_col[j] = expected_a[j][i];
      b_col[j] = expected_b[j][i];
      c_col[j] = expected_c[j][i];
    }
    EXPECT_EQ(Field::Mul(scheme.Reconstruct(a_col),
                         scheme.Reconstruct(b_col)),
              scheme.Reconstruct(c_col));
  }
}

TEST(GoldenStreamTest, SkellamSampleStream) {
  Rng rng(3);
  const SkellamSampler sampler(4.0);
  const std::vector<int64_t> samples = sampler.SampleVector(rng, 5);
  EXPECT_EQ(samples, (std::vector<int64_t>{0, -1, 4, 3, 2}));
}

}  // namespace
}  // namespace sqm
