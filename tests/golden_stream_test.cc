// Golden-stream regression pins: exact outputs of the deterministic
// building blocks every reproducible run depends on — the xoshiro256**
// generator, stochastic rounding, field arithmetic and encoding, Shamir
// share streams, and the Skellam sampler. A change in any of these values
// silently invalidates every recorded transcript, fuzz seed, and published
// experiment; this test turns that silent break into a loud one.
//
// If a change here is INTENTIONAL (a deliberate RNG or encoding revision),
// regenerate the constants and say so in the commit message — downstream
// transcripts and seeds stop reproducing across that boundary.

#include <gtest/gtest.h>

#include <vector>

#include "core/quantize.h"
#include "mpc/field.h"
#include "mpc/shamir.h"
#include "sampling/rng.h"
#include "sampling/skellam_sampler.h"

namespace sqm {
namespace {

TEST(GoldenStreamTest, RngUint64Stream) {
  Rng rng(12345);
  EXPECT_EQ(rng.NextUint64(), 13720838825685603483ULL);
  EXPECT_EQ(rng.NextUint64(), 2398916695208396998ULL);
  EXPECT_EQ(rng.NextUint64(), 17770384849984869256ULL);
  EXPECT_EQ(rng.NextUint64(), 891717726879801395ULL);
  EXPECT_EQ(rng.NextBounded(1000), 344ULL);
  EXPECT_EQ(rng.NextBounded(1000), 396ULL);
  EXPECT_EQ(rng.NextBounded(1000), 809ULL);
  EXPECT_EQ(rng.NextBounded(1000), 710ULL);
  // Exact doubles: NextDouble is a deterministic bit manipulation of the
  // uint64 stream, not a platform-dependent conversion.
  EXPECT_EQ(rng.NextDouble(), 0.38596574267734496);
  EXPECT_EQ(rng.NextDouble(), 0.91061307555070869);
}

TEST(GoldenStreamTest, RngSplitIsAnIndependentPinnedStream) {
  Rng rng(7);
  Rng split = rng.Split(1);
  EXPECT_EQ(split.NextUint64(), 8026408544651863512ULL);
  // Split consumes exactly one parent draw, independent of the stream id:
  // the parent's stream after Split(1) and after Split(2) must agree.
  Rng parent_a(7);
  parent_a.Split(1);
  Rng parent_b(7);
  parent_b.Split(2);
  EXPECT_EQ(parent_a.NextUint64(), parent_b.NextUint64());
  // Distinct stream ids give unrelated child streams.
  Rng again(7);
  EXPECT_NE(again.Split(2).NextUint64(), 8026408544651863512ULL);
}

TEST(GoldenStreamTest, StochasticRoundStream) {
  Rng rng(42);
  EXPECT_EQ(StochasticRound(0.3, 16.0, rng), 5);
  EXPECT_EQ(StochasticRound(-1.7, 16.0, rng), -27);
  EXPECT_EQ(StochasticRound(2.5, 16.0, rng), 40);
  EXPECT_EQ(StochasticRound(0.0, 16.0, rng), 0);
  EXPECT_EQ(StochasticRound(-0.49, 16.0, rng), -8);
  EXPECT_EQ(StochasticRound(123.456, 16.0, rng), 1975);
}

TEST(GoldenStreamTest, FieldArithmeticAndEncoding) {
  EXPECT_EQ(Field::Mul(1234567890123ULL, 987654321ULL),
            1841202383003765355ULL);
  EXPECT_EQ(Field::Pow(3, 1000000), 163732605560283221ULL);
  EXPECT_EQ(Field::Inv(12345), 2288845705541077819ULL);
  EXPECT_EQ(Field::Mul(12345, Field::Inv(12345)), 1ULL);
  EXPECT_EQ(Field::Encode(-5), 2305843009213693946ULL);  // kModulus - 5.
  EXPECT_EQ(Field::Decode(Field::Encode(-5)), -5);
  EXPECT_EQ(Field::Decode(Field::Encode(int64_t{1} << 40)), int64_t{1} << 40);
}

TEST(GoldenStreamTest, ShamirShareStream) {
  Rng rng(99);
  const ShamirScheme scheme(5, 2);
  const std::vector<Field::Element> shares =
      scheme.Share(Field::Encode(42), rng);
  const std::vector<Field::Element> expected = {
      695513846409949539ULL,  1446368837727678369ULL,
      2252564973953186532ULL, 808259245872780077ULL,
      1725137671913846906ULL,
  };
  EXPECT_EQ(shares, expected);
  EXPECT_EQ(Field::Decode(scheme.Reconstruct(shares)), 42);
}

TEST(GoldenStreamTest, SkellamSampleStream) {
  Rng rng(3);
  const SkellamSampler sampler(4.0);
  const std::vector<int64_t> samples = sampler.SampleVector(rng, 5);
  EXPECT_EQ(samples, (std::vector<int64_t>{0, -1, 4, 3, 2}));
}

}  // namespace
}  // namespace sqm
