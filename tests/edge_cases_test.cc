// Boundary and failure-injection tests across modules: values at the edge
// of the representable ranges, degenerate shapes, and the SQM_CHECK-guarded
// preconditions (death tests — programmer errors must fail loudly, not
// corrupt a release).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/quantize.h"
#include "core/sqm.h"
#include "math/matrix.h"
#include "mpc/field.h"
#include "mpc/network.h"
#include "mpc/shamir.h"
#include "sampling/rng.h"

namespace sqm {
namespace {

// ----------------------------------------------------------------- field

TEST(FieldEdgeTest, CenteredBoundaryRoundTrips) {
  EXPECT_EQ(Field::Decode(Field::Encode(Field::kMaxCentered)),
            Field::kMaxCentered);
  EXPECT_EQ(Field::Decode(Field::Encode(-Field::kMaxCentered)),
            -Field::kMaxCentered);
  // kMaxCentered + (-kMaxCentered) = 0 survives the encoding.
  EXPECT_EQ(Field::Decode(Field::Add(Field::Encode(Field::kMaxCentered),
                                     Field::Encode(-Field::kMaxCentered))),
            0);
}

TEST(FieldEdgeDeathTest, EncodeRejectsOutOfRange) {
  EXPECT_DEATH(Field::Encode(Field::kMaxCentered + 1), "Check failed");
  EXPECT_DEATH(Field::Encode(std::numeric_limits<int64_t>::min()),
               "Check failed");
}

TEST(FieldEdgeDeathTest, InverseOfZeroAborts) {
  EXPECT_DEATH(Field::Inv(0), "Check failed");
}

// ---------------------------------------------------------------- shamir

TEST(ShamirEdgeTest, SecretAtFieldBoundary) {
  ShamirScheme scheme(5, 2);
  Rng rng(1);
  const Field::Element secret = Field::kModulus - 1;
  EXPECT_EQ(scheme.Reconstruct(scheme.Share(secret, rng)), secret);
}

TEST(ShamirEdgeDeathTest, InvalidParametersAbortConstruction) {
  EXPECT_DEATH(ShamirScheme(4, 2), "Check failed");  // 2t >= n.
  EXPECT_DEATH(ShamirScheme(1, 1), "Check failed");
}

// --------------------------------------------------------------- network

TEST(NetworkEdgeDeathTest, OutOfRangePartyAborts) {
  SimulatedNetwork net(2, 0.0);
  EXPECT_DEATH(net.Send(0, 5, {1}), "Check failed");
  EXPECT_DEATH(net.Send(7, 0, {1}), "Check failed");
}

TEST(NetworkEdgeTest, EmptyPayloadIsLegal) {
  SimulatedNetwork net(2, 0.0);
  net.Send(0, 1, {});
  EXPECT_EQ(net.Receive(0, 1).ValueOrDie().size(), 0u);
  EXPECT_EQ(net.stats().field_elements, 0u);
  EXPECT_EQ(net.stats().messages, 1u);
}

// ---------------------------------------------------------------- matrix

TEST(MatrixEdgeDeathTest, ShapeViolationsAbort) {
  Matrix a(2, 2);
  Matrix b(3, 2);
  EXPECT_DEATH(a += b, "Check failed");
  EXPECT_DEATH(a.Row(5), "Check failed");
  EXPECT_DEATH(a.SetCol(0, {1.0}), "Check failed");
}

TEST(MatrixEdgeTest, ZeroByZeroOperations) {
  Matrix empty;
  EXPECT_EQ(empty.Transpose().rows(), 0u);
  EXPECT_EQ((empty + empty).size(), 0u);
}

// -------------------------------------------------------------- quantize

TEST(QuantizeEdgeTest, HugeScaleStillExact) {
  Rng rng(2);
  // 2^40 * 0.5 = 2^39, exactly representable: deterministic.
  const double scale = std::pow(2.0, 40);
  EXPECT_EQ(StochasticRound(0.5, scale, rng), int64_t{1} << 39);
}

TEST(QuantizeEdgeTest, TinyValuesRoundToZeroOrOne) {
  Rng rng(3);
  int ones = 0;
  for (int i = 0; i < 10000; ++i) {
    const int64_t r = StochasticRound(1e-4, 100.0, rng);  // 0.01 scaled.
    ASSERT_TRUE(r == 0 || r == 1);
    ones += static_cast<int>(r);
  }
  EXPECT_NEAR(ones / 10000.0, 0.01, 0.005);
}

TEST(QuantizeEdgeTest, NegativeExactMultiple) {
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(StochasticRound(-3.0, 8.0, rng), -24);
  }
}

// ------------------------------------------------------------------- sqm

TEST(SqmEdgeTest, SingleRecordDatabase) {
  Matrix x(1, 2);
  x(0, 0) = 0.5;
  x(0, 1) = -0.25;
  PolynomialVector f;
  Polynomial p;
  p.AddTerm(Monomial(1.0, {{0, 1}, {1, 1}}));
  f.AddDimension(p);
  SqmOptions options;
  options.mu = 0.0;
  options.gamma = 1024.0;
  options.quantize_coefficients = false;
  const SqmReport report =
      SqmEvaluator(options).Evaluate(f, x).ValueOrDie();
  EXPECT_NEAR(report.estimate[0], -0.125, 1e-3);
}

TEST(SqmEdgeTest, ConstantOnlyPolynomialViaCoefficients) {
  // f(x) = 3 (degree 0): the release is m * 3 regardless of data.
  Matrix x(7, 2);
  PolynomialVector f;
  Polynomial p;
  p.AddTerm(Monomial(3.0));
  f.AddDimension(p);
  SqmOptions options;
  options.mu = 0.0;
  options.gamma = 64.0;
  options.max_f_l2 = 3.0;
  const SqmReport report =
      SqmEvaluator(options).Evaluate(f, x).ValueOrDie();
  EXPECT_NEAR(report.estimate[0], 21.0, 0.05);
}

TEST(SqmEdgeTest, GammaExactlyOneIsCoarsestLegalQuantization) {
  Matrix x(50, 2);
  Rng gen(5);
  for (auto& v : x.data()) v = gen.NextDouble() - 0.5;
  const PolynomialVector f = PolynomialVector::OuterProduct(2);
  SqmOptions options;
  options.mu = 0.0;
  options.gamma = 1.0;
  options.quantize_coefficients = false;
  // Legal but very lossy; must run without error.
  EXPECT_TRUE(SqmEvaluator(options).Evaluate(f, x).ok());
}

TEST(SqmEdgeTest, UnevenColumnPartitioning) {
  // 5 columns over 3 clients: blocks of 2, 2, 1. BGW and plaintext must
  // agree (exercises ClientColumnRange's remainder handling).
  Matrix x(4, 5);
  Rng gen(6);
  for (auto& v : x.data()) v = gen.NextDouble() - 0.5;
  const PolynomialVector f = PolynomialVector::OuterProduct(5);
  SqmOptions options;
  options.mu = 9.0;
  options.gamma = 32.0;
  options.num_clients = 3;
  options.quantize_coefficients = false;
  options.backend = MpcBackend::kPlaintext;
  const SqmReport plain =
      SqmEvaluator(options).Evaluate(f, x).ValueOrDie();
  options.backend = MpcBackend::kBgw;
  const SqmReport bgw = SqmEvaluator(options).Evaluate(f, x).ValueOrDie();
  EXPECT_EQ(plain.raw, bgw.raw);
}

}  // namespace
}  // namespace sqm
