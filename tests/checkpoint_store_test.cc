// Durable checkpoint store: round-trip fidelity, atomicity guarantees at
// the API level, and — most important for recovery correctness — refusal
// of anything corrupt. A restarted party that trusted a torn or bit-
// flipped snapshot would rejoin with wrong shares and poison the quorum,
// so every corruption must come back kIntegrityViolation, never a
// half-plausible checkpoint.

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mpc/checkpoint_store.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#else
static int getpid() { return 0; }
#endif

namespace {

std::string MakeTempDir(const std::string& tag) {
  static int counter = 0;
  const std::string dir = testing::TempDir() + "/ckpt_" + tag + "_" +
                          std::to_string(::getpid()) + "_" +
                          std::to_string(counter++);
  EXPECT_EQ(std::system(("rm -rf " + dir + " && mkdir -p " + dir).c_str()),
            0);
  return dir;
}

sqm::DurableCheckpoint SampleCheckpoint() {
  sqm::DurableCheckpoint snap;
  snap.run_id = 0xdecafbadULL;
  snap.party = 3;
  snap.incarnation = 2;
  snap.fingerprint = 0x1234567890abcdefULL;
  snap.valid = true;
  snap.next_level = 5;
  snap.mul_rounds_done = 7;
  snap.wire_shares = {1, 2, (uint64_t{1} << 61) - 2, 0, 42};
  snap.rng_state[0] = 11;
  snap.rng_state[1] = 22;
  snap.rng_state[2] = 33;
  snap.rng_state[3] = 44;
  return snap;
}

TEST(CheckpointStore, SaveLoadRoundTripsEveryField) {
  const sqm::CheckpointStore store(MakeTempDir("roundtrip"));
  EXPECT_FALSE(store.Exists());

  const sqm::DurableCheckpoint snap = SampleCheckpoint();
  ASSERT_TRUE(store.Save(snap).ok());
  EXPECT_TRUE(store.Exists());

  sqm::Result<sqm::DurableCheckpoint> loaded = store.Load();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const sqm::DurableCheckpoint& got = loaded.ValueOrDie();
  EXPECT_EQ(got.run_id, snap.run_id);
  EXPECT_EQ(got.party, snap.party);
  EXPECT_EQ(got.incarnation, snap.incarnation);
  EXPECT_EQ(got.fingerprint, snap.fingerprint);
  EXPECT_EQ(got.valid, snap.valid);
  EXPECT_EQ(got.next_level, snap.next_level);
  EXPECT_EQ(got.mul_rounds_done, snap.mul_rounds_done);
  EXPECT_EQ(got.wire_shares, snap.wire_shares);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(got.rng_state[i], snap.rng_state[i]);
  }
}

TEST(CheckpointStore, SaveOverwritesAtomically) {
  const sqm::CheckpointStore store(MakeTempDir("overwrite"));
  sqm::DurableCheckpoint snap = SampleCheckpoint();
  ASSERT_TRUE(store.Save(snap).ok());

  snap.next_level = 9;
  snap.wire_shares = {99};
  ASSERT_TRUE(store.Save(snap).ok());

  sqm::Result<sqm::DurableCheckpoint> loaded = store.Load();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.ValueOrDie().next_level, 9u);
  EXPECT_EQ(loaded.ValueOrDie().wire_shares, std::vector<uint64_t>{99});
}

TEST(CheckpointStore, MissingFileIsNotFound) {
  const sqm::CheckpointStore store(MakeTempDir("missing"));
  sqm::Result<sqm::DurableCheckpoint> loaded = store.Load();
  EXPECT_EQ(loaded.status().code(), sqm::StatusCode::kNotFound);
}

TEST(CheckpointStore, ClearIsIdempotent) {
  const sqm::CheckpointStore store(MakeTempDir("clear"));
  EXPECT_TRUE(store.Clear().ok());  // Nothing there yet.
  ASSERT_TRUE(store.Save(SampleCheckpoint()).ok());
  EXPECT_TRUE(store.Clear().ok());
  EXPECT_FALSE(store.Exists());
  EXPECT_TRUE(store.Clear().ok());
}

TEST(CheckpointStore, FlippedByteFailsCrc) {
  const sqm::CheckpointStore store(MakeTempDir("bitflip"));
  ASSERT_TRUE(store.Save(SampleCheckpoint()).ok());

  // Flip one byte in the middle of the payload.
  std::fstream file(store.path(),
                    std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(file.good());
  file.seekg(40);
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  file.seekp(40);
  file.write(&byte, 1);
  file.close();

  sqm::Result<sqm::DurableCheckpoint> loaded = store.Load();
  EXPECT_EQ(loaded.status().code(), sqm::StatusCode::kIntegrityViolation)
      << loaded.status().ToString();
}

TEST(CheckpointStore, TruncatedFileIsRejected) {
  const sqm::CheckpointStore store(MakeTempDir("truncated"));
  ASSERT_TRUE(store.Save(SampleCheckpoint()).ok());

  std::ifstream in(store.path(), std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 16u);
  std::ofstream out(store.path(), std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 9));
  out.close();

  sqm::Result<sqm::DurableCheckpoint> loaded = store.Load();
  EXPECT_EQ(loaded.status().code(), sqm::StatusCode::kIntegrityViolation);
}

TEST(CheckpointStore, WrongMagicIsRejected) {
  const sqm::CheckpointStore store(MakeTempDir("magic"));
  ASSERT_TRUE(store.Save(SampleCheckpoint()).ok());

  std::fstream file(store.path(),
                    std::ios::in | std::ios::out | std::ios::binary);
  const char zeros[8] = {0};
  file.seekp(0);
  file.write(zeros, 8);
  file.close();

  sqm::Result<sqm::DurableCheckpoint> loaded = store.Load();
  EXPECT_EQ(loaded.status().code(), sqm::StatusCode::kIntegrityViolation);
}

TEST(Crc32, MatchesKnownVector) {
  // IEEE 802.3 CRC-32 of "123456789" is the classic check value.
  const uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(sqm::Crc32(data, sizeof(data)), 0xcbf43926u);
}

}  // namespace
