#include "core/sensitivity.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sqm {
namespace {

TEST(SensitivityTest, L1FromL2PicksMinimum) {
  // Small l2: l2^2 < sqrt(d) l2.
  EXPECT_DOUBLE_EQ(L1FromL2(2.0, 100), 4.0);
  // Large l2: sqrt(d) l2 < l2^2.
  EXPECT_DOUBLE_EQ(L1FromL2(100.0, 4), 200.0);
}

TEST(SensitivityTest, PcaMatchesLemma5) {
  const double gamma = 64.0;
  const double c = 1.0;
  const size_t n = 10;
  const SensitivityBound bound = PcaSensitivity(gamma, c, n);
  EXPECT_DOUBLE_EQ(bound.l2, gamma * gamma * c * c + n);
  EXPECT_DOUBLE_EQ(bound.l1,
                   std::min(bound.l2 * bound.l2,
                            std::sqrt(100.0) * bound.l2));
}

TEST(SensitivityTest, PcaOverheadVanishesRelatively) {
  // (gamma^2 c^2 + n) / (gamma^2 c^2) -> 1 as gamma grows (Eq. 7
  // discussion).
  const size_t n = 100;
  double prev_ratio = 1e9;
  for (double gamma : {16.0, 64.0, 256.0, 1024.0}) {
    const double ratio = PcaSensitivity(gamma, 1.0, n).l2 / (gamma * gamma);
    EXPECT_LT(ratio, prev_ratio);
    prev_ratio = ratio;
  }
  EXPECT_NEAR(prev_ratio, 1.0, 1e-3);
}

TEST(SensitivityTest, LogisticMatchesLemma7) {
  const double gamma = 64.0;
  const size_t d = 20;
  const SensitivityBound bound = LogisticGradientSensitivity(gamma, d);
  const double g3 = gamma * gamma * gamma;
  const double expected =
      std::sqrt(0.75 * 0.75 * g3 * g3 + 9.0 * std::pow(gamma, 5) * d +
                36.0 * std::pow(gamma, 4));
  EXPECT_DOUBLE_EQ(bound.l2, expected);
}

TEST(SensitivityTest, LogisticOverheadMatchesFigure4Formula) {
  const size_t d = 800;
  for (double gamma : {64.0, 1024.0, 65536.0}) {
    const double expected = std::sqrt(0.5625 + 9.0 * d / gamma +
                                      36.0 / (gamma * gamma)) -
                            0.75;
    EXPECT_DOUBLE_EQ(LogisticSensitivityOverhead(gamma, d), expected);
  }
}

TEST(SensitivityTest, LogisticOverheadDecreasesToZero) {
  double prev = 1e9;
  for (double gamma : {64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0}) {
    const double overhead = LogisticSensitivityOverhead(gamma, 800);
    EXPECT_LT(overhead, prev);
    prev = overhead;
  }
  EXPECT_LT(prev, 0.1);
}

TEST(SensitivityTest, GenericBoundDominatesMainTerm) {
  const PolynomialVector f = PolynomialVector::OuterProduct(3);
  const double gamma = 256.0;
  const SensitivityBound bound = PolynomialSensitivity(f, gamma, 1.0, 1.0);
  EXPECT_GE(bound.l2, std::pow(gamma, 3.0));  // gamma^{lambda+1} * max_f.
}

TEST(SensitivityTest, GenericOverheadVanishesRelatively) {
  const PolynomialVector f = PolynomialVector::OuterProduct(3);
  double prev_ratio = 1e18;
  for (double gamma : {64.0, 1024.0, 16384.0}) {
    const double ratio = PolynomialSensitivity(f, gamma, 1.0, 1.0).l2 /
                         std::pow(gamma, 3.0);
    EXPECT_LT(ratio, prev_ratio);
    prev_ratio = ratio;
  }
  EXPECT_NEAR(prev_ratio, 1.0, 0.05);
}

TEST(SensitivityTest, CapacityBitsGrowWithParameters) {
  const double bits_small = EstimateCapacityBits(100, 256.0, 2, 1.0, 0.0);
  const double bits_more_records =
      EstimateCapacityBits(10000, 256.0, 2, 1.0, 0.0);
  const double bits_bigger_gamma =
      EstimateCapacityBits(100, 4096.0, 2, 1.0, 0.0);
  EXPECT_GT(bits_more_records, bits_small);
  EXPECT_GT(bits_bigger_gamma, bits_small);
}

TEST(SensitivityTest, CapacityCheckAcceptsPaperScales) {
  // KDDCUP-scale PCA: m ~ 2e5, gamma = 2^14, degree 2.
  EXPECT_TRUE(CheckFieldCapacity(200000, 16384.0, 2, 1.0, 1e15).ok());
}

TEST(SensitivityTest, CapacityCheckRejectsWrapRisk) {
  // gamma^3 with huge m and f-norm would exceed 2^60.
  EXPECT_EQ(CheckFieldCapacity(1000000000, 65536.0, 2, 100.0, 0.0).code(),
            StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace sqm
