#include "mpc/bgw.h"
#include "mpc/network.h"

#include <gtest/gtest.h>

namespace sqm {
namespace {

class BgwTest : public ::testing::Test {
 protected:
  static constexpr size_t kParties = 5;
  static constexpr size_t kThreshold = 2;

  BgwTest()
      : network_(kParties, 0.0),
        engine_(ShamirScheme(kParties, kThreshold), &network_, 1234) {}

  SimulatedNetwork network_;
  BgwEngine engine_;
};

TEST_F(BgwTest, EvaluatesLinearCircuit) {
  // out = 2*a + b - c with a, b, c owned by different parties.
  Circuit c;
  const auto a = c.AddInput(0);
  const auto b = c.AddInput(1);
  const auto cc = c.AddInput(2);
  const auto two_a = c.AddMulConst(a, 2);
  c.MarkOutput(c.AddSub(c.AddAdd(two_a, b), cc));

  const auto out =
      engine_.Evaluate(c, {{10}, {5}, {3}, {}, {}}).ValueOrDie();
  EXPECT_EQ(out, (std::vector<int64_t>{22}));
}

TEST_F(BgwTest, EvaluatesProductChain) {
  // out = a * b * c (depth 2).
  Circuit c;
  const auto a = c.AddInput(0);
  const auto b = c.AddInput(1);
  const auto cc = c.AddInput(2);
  c.MarkOutput(c.AddMul(c.AddMul(a, b), cc));
  const auto out =
      engine_.Evaluate(c, {{-3}, {4}, {5}, {}, {}}).ValueOrDie();
  EXPECT_EQ(out, (std::vector<int64_t>{-60}));
  EXPECT_EQ(engine_.last_report().mul_rounds, 2u);
  EXPECT_EQ(engine_.last_report().multiplications, 2u);
}

TEST_F(BgwTest, BatchesSameDepthMultiplications) {
  // Four independent products all at depth 1 -> one mul round.
  Circuit c;
  std::vector<Circuit::WireId> inputs;
  for (size_t j = 0; j < 4; ++j) inputs.push_back(c.AddInput(j));
  for (size_t j = 0; j < 4; ++j) {
    c.MarkOutput(c.AddMul(inputs[j], inputs[(j + 1) % 4]));
  }
  const auto out =
      engine_.Evaluate(c, {{2}, {3}, {5}, {7}, {}}).ValueOrDie();
  EXPECT_EQ(out, (std::vector<int64_t>{6, 15, 35, 14}));
  EXPECT_EQ(engine_.last_report().mul_rounds, 1u);
}

TEST_F(BgwTest, ConstantsAndPolynomials) {
  // out = 3*x^2 + 2*x + 7 for x = -4 -> 48 - 8 + 7 = 47.
  Circuit c;
  const auto x = c.AddInput(0);
  const auto x2 = c.AddMul(x, x);
  const auto term2 = c.AddMulConst(x2, 3);
  const auto term1 = c.AddMulConst(x, 2);
  const auto seven = c.AddConstant(7);
  c.MarkOutput(c.AddAdd(c.AddAdd(term2, term1), seven));
  const auto out = engine_.Evaluate(c, {{-4}, {}, {}, {}, {}}).ValueOrDie();
  EXPECT_EQ(out, (std::vector<int64_t>{47}));
}

TEST_F(BgwTest, NegativeConstantsViaFieldEncoding) {
  Circuit c;
  const auto x = c.AddInput(0);
  c.MarkOutput(c.AddMulConst(x, Field::Encode(-5)));
  const auto out = engine_.Evaluate(c, {{7}, {}, {}, {}, {}}).ValueOrDie();
  EXPECT_EQ(out, (std::vector<int64_t>{-35}));
}

TEST_F(BgwTest, RejectsWrongInputCount) {
  Circuit c;
  c.MarkOutput(c.AddInput(0));
  EXPECT_FALSE(engine_.Evaluate(c, {{}, {}, {}, {}, {}}).ok());
  EXPECT_FALSE(engine_.Evaluate(c, {{1, 2}, {}, {}, {}, {}}).ok());
  EXPECT_FALSE(engine_.Evaluate(c, {{1}}).ok());
}

TEST_F(BgwTest, MultipleInputsPerPartyConsumeInOrder)
{
  Circuit c;
  const auto a0 = c.AddInput(0);
  const auto a1 = c.AddInput(0);
  c.MarkOutput(c.AddSub(a0, a1));
  const auto out =
      engine_.Evaluate(c, {{10, 4}, {}, {}, {}, {}}).ValueOrDie();
  EXPECT_EQ(out, (std::vector<int64_t>{6}));
}

TEST(BgwThreePartyTest, InnerProductAcrossParties) {
  // <x, y> for 3-vectors owned by parties 0 and 1.
  SimulatedNetwork network(3, 0.0);
  BgwEngine engine(ShamirScheme(3, 1), &network, 5);
  Circuit c;
  std::vector<Circuit::WireId> x, y;
  for (int i = 0; i < 3; ++i) x.push_back(c.AddInput(0));
  for (int i = 0; i < 3; ++i) y.push_back(c.AddInput(1));
  Circuit::WireId acc = c.AddConstant(0);
  for (int i = 0; i < 3; ++i) acc = c.AddAdd(acc, c.AddMul(x[i], y[i]));
  c.MarkOutput(acc);
  const auto out =
      engine.Evaluate(c, {{1, 2, 3}, {4, 5, 6}, {}}).ValueOrDie();
  EXPECT_EQ(out, (std::vector<int64_t>{32}));
}

TEST(BgwLatencyTest, SimulatedTimeTracksRounds) {
  SimulatedNetwork network(3, 0.1);
  BgwEngine engine(ShamirScheme(3, 1), &network, 5);
  Circuit c;
  const auto a = c.AddInput(0);
  const auto b = c.AddInput(1);
  c.MarkOutput(c.AddMul(a, b));
  (void)engine.Evaluate(c, {{2}, {3}, {}}).ValueOrDie();
  // Rounds: input sharing (2 contributing parties) + 1 mul + 1 open = 4.
  EXPECT_EQ(network.stats().rounds, 4u);
  EXPECT_DOUBLE_EQ(network.SimulatedSeconds(), 0.4);
}

}  // namespace
}  // namespace sqm
