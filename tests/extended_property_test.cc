// Second property-sweep suite, covering the extension modules: the
// polynomial parser, Beaver multiplication, the structured secure ops, and
// the privacy accountant.

#include <gtest/gtest.h>
#include "mpc/network.h"

#include <cmath>
#include <sstream>
#include <tuple>

#include "dp/accountant.h"
#include "dp/gaussian.h"
#include "mpc/beaver.h"
#include "mpc/ops.h"
#include "poly/parser.h"
#include "sampling/rng.h"

namespace sqm {
namespace {

// ------------------------------------------------------------ parser

class ParserRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserRoundTripTest, RandomPolynomialSurvivesFormatParse) {
  Rng rng(GetParam());
  // Build a random polynomial, render it, re-parse it, compare on probes.
  Polynomial original;
  const size_t terms = 1 + rng.NextBounded(5);
  for (size_t t = 0; t < terms; ++t) {
    const double coefficient =
        (rng.NextDouble() - 0.5) * 4.0;
    std::vector<std::pair<size_t, uint32_t>> exponents;
    const size_t vars = rng.NextBounded(3);
    for (size_t v = 0; v < vars; ++v) {
      exponents.emplace_back(rng.NextBounded(4),
                             1 + static_cast<uint32_t>(rng.NextBounded(3)));
    }
    original.AddTerm(Monomial(coefficient, std::move(exponents)));
  }

  const std::string text = FormatPolynomial(original);
  const auto reparsed = ParsePolynomial(text);
  ASSERT_TRUE(reparsed.ok()) << text << " -> "
                             << reparsed.status().ToString();
  for (int probe = 0; probe < 5; ++probe) {
    std::vector<double> x(4);
    for (auto& xi : x) xi = rng.NextDouble() * 2.0 - 1.0;
    const double a = original.Evaluate(x);
    const double b = reparsed.ValueOrDie().Evaluate(x);
    EXPECT_NEAR(a, b, 1e-9 * std::max(1.0, std::fabs(a))) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRoundTripTest,
                         ::testing::Range(uint64_t{0}, uint64_t{20}));

// ------------------------------------------------------------ beaver

class BeaverEqualsGrrTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(BeaverEqualsGrrTest, RandomVectorsMultiplyIdentically) {
  const auto [parties, threshold] = GetParam();
  SimulatedNetwork network(parties, 0.0);
  BgwProtocol protocol(ShamirScheme(parties, threshold), &network,
                       parties * 13 + threshold);
  BeaverTripleDealer dealer(ShamirScheme(parties, threshold),
                            parties * 17 + threshold);
  BeaverMultiplier beaver(&protocol, &dealer);

  Rng rng(parties + threshold);
  std::vector<int64_t> xs(8), ys(8), expected(8);
  for (size_t i = 0; i < 8; ++i) {
    xs[i] = static_cast<int64_t>(rng.NextBounded(1u << 20)) - (1 << 19);
    ys[i] = static_cast<int64_t>(rng.NextBounded(1u << 20)) - (1 << 19);
    expected[i] = xs[i] * ys[i];
  }
  const SharedVector x =
      protocol.ShareFromParty(0, Field::EncodeVector(xs));
  const SharedVector y =
      protocol.ShareFromParty(1 % parties, Field::EncodeVector(ys));

  EXPECT_EQ(protocol.OpenSigned(protocol.Mul(x, y).ValueOrDie()),
            expected);
  EXPECT_EQ(protocol.OpenSigned(beaver.Mul(x, y).ValueOrDie()), expected);
}

INSTANTIATE_TEST_SUITE_P(Configs, BeaverEqualsGrrTest,
                         ::testing::Values(std::make_tuple(3u, 1u),
                                           std::make_tuple(5u, 2u),
                                           std::make_tuple(7u, 3u),
                                           std::make_tuple(9u, 2u)));

// ------------------------------------------------------------ ops

class OpsCovariancePropertyTest : public ::testing::TestWithParam<size_t> {
};

TEST_P(OpsCovariancePropertyTest, MatchesPlaintextOnRandomColumns) {
  const size_t n = GetParam();  // Clients = attributes.
  const size_t m = 9;
  SimulatedNetwork network(n, 0.0);
  BgwProtocol protocol(ShamirScheme(n, (n - 1) / 2), &network, n * 7);
  SecureOps ops(&protocol);

  Rng rng(n);
  std::vector<std::vector<int64_t>> columns(n, std::vector<int64_t>(m));
  for (auto& col : columns) {
    for (auto& v : col) {
      v = static_cast<int64_t>(rng.NextBounded(201)) - 100;
    }
  }
  const size_t d = n * (n + 1) / 2;
  std::vector<std::vector<int64_t>> noise(n, std::vector<int64_t>(d));
  std::vector<int64_t> noise_sum(d, 0);
  for (auto& client_noise : noise) {
    for (size_t t = 0; t < d; ++t) {
      client_noise[t] = static_cast<int64_t>(rng.NextBounded(11)) - 5;
      noise_sum[t] += client_noise[t];
    }
  }

  const std::vector<int64_t> release =
      ops.NoisyCovarianceUpper(columns, noise).ValueOrDie();
  size_t pair = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j, ++pair) {
      int64_t expected = noise_sum[pair];
      for (size_t r = 0; r < m; ++r) {
        expected += columns[i][r] * columns[j][r];
      }
      EXPECT_EQ(release[pair], expected) << "pair " << i << "," << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, OpsCovariancePropertyTest,
                         ::testing::Values(3, 5, 8));

// ------------------------------------------------------- accountant

class AccountantMonotoneTest : public ::testing::TestWithParam<double> {};

TEST_P(AccountantMonotoneTest, EpsilonGrowsWithEventCount) {
  const double sigma = GetParam();
  double prev = 0.0;
  for (size_t count : {1u, 2u, 4u, 16u, 64u}) {
    PrivacyAccountant accountant;
    accountant.AddGaussian("g", 1.0, sigma, 1.0, count);
    const double eps = accountant.TotalEpsilon(1e-5).ValueOrDie();
    EXPECT_GT(eps, prev);
    prev = eps;
  }
}

INSTANTIATE_TEST_SUITE_P(Sigmas, AccountantMonotoneTest,
                         ::testing::Values(2.0, 8.0, 32.0));

}  // namespace
}  // namespace sqm
