#include "poly/parser.h"

#include <gtest/gtest.h>

namespace sqm {
namespace {

TEST(ParserTest, PaperRunningExample) {
  const Polynomial p =
      ParsePolynomial("x0^3 + 1.5*x1*x2 + 2").ValueOrDie();
  EXPECT_EQ(p.num_terms(), 3u);
  EXPECT_EQ(p.Degree(), 3u);
  // f(2, 3, 4) = 8 + 18 + 2 = 28.
  EXPECT_DOUBLE_EQ(p.Evaluate({2, 3, 4}), 28.0);
}

TEST(ParserTest, ConstantsAndSigns) {
  EXPECT_DOUBLE_EQ(ParsePolynomial("-2.5").ValueOrDie().Evaluate({}), -2.5);
  EXPECT_DOUBLE_EQ(ParsePolynomial("+3").ValueOrDie().Evaluate({}), 3.0);
  EXPECT_DOUBLE_EQ(ParsePolynomial("1 - 2 + 4").ValueOrDie().Evaluate({}),
                   3.0);
}

TEST(ParserTest, CoefficientProducts) {
  // "2*3*x0" multiplies all numeric factors into the coefficient.
  const Polynomial p = ParsePolynomial("2*3*x0").ValueOrDie();
  EXPECT_DOUBLE_EQ(p.Evaluate({5}), 30.0);
}

TEST(ParserTest, ExponentsAndRepeatedVariables) {
  // x0*x0 merges to x0^2.
  const Polynomial p = ParsePolynomial("x0*x0 + x0^2").ValueOrDie();
  EXPECT_DOUBLE_EQ(p.Evaluate({3}), 18.0);
  EXPECT_EQ(p.Degree(), 2u);
}

TEST(ParserTest, ScientificNotation) {
  const Polynomial p = ParsePolynomial("1.5e-2*x1").ValueOrDie();
  EXPECT_DOUBLE_EQ(p.Evaluate({0, 100}), 1.5);
}

TEST(ParserTest, WhitespaceInsensitive) {
  const Polynomial a = ParsePolynomial("x0*x1+2").ValueOrDie();
  const Polynomial b =
      ParsePolynomial("  x0 * x1   +   2 ").ValueOrDie();
  EXPECT_DOUBLE_EQ(a.Evaluate({3, 4}), b.Evaluate({3, 4}));
}

TEST(ParserTest, ErrorsCarryPosition) {
  for (const char* bad :
       {"", "x", "x0 +", "2x0", "x0^0", "x0 x1", "x0^", "@", "x0^99"}) {
    const auto result = ParsePolynomial(bad);
    EXPECT_FALSE(result.ok()) << "input '" << bad << "'";
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(ParserTest, VectorParsing) {
  const PolynomialVector f =
      ParsePolynomialVector("x0^2; x0*x1; x1^2").ValueOrDie();
  EXPECT_EQ(f.output_dim(), 3u);
  const std::vector<double> out = f.Evaluate({2, 3});
  EXPECT_DOUBLE_EQ(out[0], 4.0);
  EXPECT_DOUBLE_EQ(out[1], 6.0);
  EXPECT_DOUBLE_EQ(out[2], 9.0);
}

TEST(ParserTest, VectorRejectsEmptyDimension) {
  EXPECT_FALSE(ParsePolynomialVector("x0; ; x1").ok());
  EXPECT_FALSE(ParsePolynomialVector("").ok());
}

TEST(ParserTest, FormatRoundTrips) {
  for (const char* text :
       {"x0^3 + 1.5*x1*x2 + 2", "-x0 + 0.25*x1^2", "42"}) {
    const Polynomial original = ParsePolynomial(text).ValueOrDie();
    const Polynomial reparsed =
        ParsePolynomial(FormatPolynomial(original)).ValueOrDie();
    // Compare by evaluation on a probe point.
    const std::vector<double> probe{0.7, -1.3, 2.1};
    EXPECT_NEAR(original.Evaluate(probe), reparsed.Evaluate(probe), 1e-12)
        << text << " -> " << FormatPolynomial(original);
  }
}

TEST(ParserTest, FormatHandlesSigns) {
  const Polynomial p = ParsePolynomial("-2*x0 - 3").ValueOrDie();
  const std::string text = FormatPolynomial(p);
  EXPECT_EQ(text, "-2*x0 - 3");
}

}  // namespace
}  // namespace sqm
