#include "vfl/synthetic.h"

#include <gtest/gtest.h>

#include "math/eigen.h"
#include "math/linalg.h"
#include "vfl/metrics.h"

namespace sqm {
namespace {

TEST(SyntheticPcaTest, ShapeAndNormBound) {
  SyntheticPcaSpec spec;
  spec.rows = 200;
  spec.cols = 20;
  spec.rank = 5;
  const VflDataset data = GeneratePcaDataset(spec);
  EXPECT_EQ(data.num_records(), 200u);
  EXPECT_EQ(data.num_features(), 20u);
  EXPECT_FALSE(data.has_labels());
  EXPECT_LE(MaxRecordNorm(data.features), 1.0 + 1e-9);
}

TEST(SyntheticPcaTest, HasLowRankStructure) {
  SyntheticPcaSpec spec;
  spec.rows = 400;
  spec.cols = 30;
  spec.rank = 4;
  spec.noise_level = 0.05;
  const VflDataset data = GeneratePcaDataset(spec);
  // Top-rank subspace must capture almost all the energy.
  const Matrix v =
      TopKEigenvectors(Gram(data.features), spec.rank).ValueOrDie();
  const double captured = PcaUtility(data.features, v);
  const double total =
      PcaUtility(data.features, Matrix::Identity(spec.cols));
  EXPECT_GT(captured / total, 0.9);
}

TEST(SyntheticPcaTest, DeterministicPerSeed) {
  SyntheticPcaSpec spec;
  spec.rows = 50;
  spec.cols = 8;
  spec.seed = 77;
  EXPECT_EQ(GeneratePcaDataset(spec).features,
            GeneratePcaDataset(spec).features);
  spec.seed = 78;
  EXPECT_FALSE(GeneratePcaDataset(spec).features ==
               GeneratePcaDataset(SyntheticPcaSpec{.rows = 50,
                                                   .cols = 8,
                                                   .seed = 77})
                   .features);
}

TEST(SyntheticLrTest, ShapeLabelsAndNorm) {
  SyntheticLrSpec spec;
  spec.rows = 500;
  spec.cols = 12;
  const VflDataset data = GenerateLrDataset(spec);
  EXPECT_EQ(data.num_records(), 500u);
  EXPECT_EQ(data.labels.size(), 500u);
  EXPECT_LE(MaxRecordNorm(data.features), 1.0 + 1e-9);
  size_t positives = 0;
  for (int y : data.labels) {
    EXPECT_TRUE(y == 0 || y == 1);
    positives += static_cast<size_t>(y);
  }
  // Balanced classes.
  EXPECT_NEAR(static_cast<double>(positives) / 500.0, 0.5, 0.1);
}

TEST(SyntheticLrTest, TaskIsLearnable) {
  // A logistic model on the clean data must beat chance by a wide margin —
  // otherwise the LR benchmarks would measure noise only.
  SyntheticLrSpec spec;
  spec.rows = 2000;
  spec.cols = 10;
  spec.margin = 2.0;
  spec.label_noise = 0.05;
  const VflDataset data = GenerateLrDataset(spec);
  // Cheap learnability proxy: the class-conditional means differ strongly
  // along some direction; use the mean-difference direction as weights.
  std::vector<double> w(spec.cols, 0.0);
  double pos = 0.0;
  for (size_t i = 0; i < data.num_records(); ++i) {
    const double sign = data.labels[i] == 1 ? 1.0 : -1.0;
    pos += data.labels[i];
    for (size_t j = 0; j < spec.cols; ++j) {
      w[j] += sign * data.features(i, j);
    }
  }
  ClipNorm(w, 1.0);
  // Scale up for a sharper sigmoid.
  for (auto& wi : w) wi *= 50.0;
  const double acc = Accuracy(w, data);
  EXPECT_GT(acc, 0.8);
}

TEST(SyntheticProfilesTest, ShapesScaleAsDocumented) {
  const VflDataset kdd = MakeKddCupLike(0.01);
  EXPECT_GE(kdd.num_records(), 200u);
  EXPECT_GE(kdd.num_features(), 16u);
  EXPECT_EQ(kdd.name, "kddcup-like");

  const VflDataset gene = MakeGeneLike(0.1);
  EXPECT_GT(gene.num_features(), gene.num_records() / 2);  // n >> m profile.
}

TEST(SyntheticProfilesTest, StatesProduceDistinctData) {
  const VflDataset ca = MakeAcsIncomeLrLike("CA", 0.01);
  const VflDataset tx = MakeAcsIncomeLrLike("TX", 0.01);
  EXPECT_TRUE(ca.has_labels());
  EXPECT_FALSE(ca.features == tx.features);
  EXPECT_EQ(ca.name, "acsincome-CA");
}

}  // namespace
}  // namespace sqm
