#include "poly/taylor.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sqm {
namespace {

TEST(TaylorTest, SigmoidKnownValues) {
  EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5);
  EXPECT_NEAR(Sigmoid(1.0), 1.0 / (1.0 + std::exp(-1.0)), 1e-15);
  EXPECT_NEAR(Sigmoid(-1.0), 1.0 - Sigmoid(1.0), 1e-15);
}

TEST(TaylorTest, SigmoidStableAtExtremes) {
  EXPECT_NEAR(Sigmoid(1000.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-1000.0), 0.0, 1e-12);
  EXPECT_FALSE(std::isnan(Sigmoid(-1000.0)));
}

TEST(TaylorTest, Order1CoefficientsMatchPaper) {
  // sigma(u) ~ 1/2 + u/4 (Section V-B).
  const std::vector<double> c = SigmoidTaylorCoefficients(1);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_DOUBLE_EQ(c[0], 0.5);
  EXPECT_DOUBLE_EQ(c[1], 0.25);
}

TEST(TaylorTest, HigherOrderCoefficients) {
  const std::vector<double> c = SigmoidTaylorCoefficients(7);
  EXPECT_DOUBLE_EQ(c[3], -1.0 / 48.0);
  EXPECT_DOUBLE_EQ(c[5], 1.0 / 480.0);
  EXPECT_DOUBLE_EQ(c[7], -17.0 / 80640.0);
  EXPECT_DOUBLE_EQ(c[2], 0.0);
  EXPECT_DOUBLE_EQ(c[4], 0.0);
}

TEST(TaylorTest, ApproximationExactAtZero) {
  for (size_t order : {1, 3, 5, 7}) {
    EXPECT_DOUBLE_EQ(SigmoidTaylor(0.0, order), 0.5);
  }
}

TEST(TaylorTest, ErrorDecreasesWithOrder) {
  const double e1 = SigmoidTaylorMaxError(1, 1.0);
  const double e3 = SigmoidTaylorMaxError(3, 1.0);
  const double e5 = SigmoidTaylorMaxError(5, 1.0);
  const double e7 = SigmoidTaylorMaxError(7, 1.0);
  EXPECT_GT(e1, e3);
  EXPECT_GT(e3, e5);
  EXPECT_GT(e5, e7);
}

TEST(TaylorTest, Order1ErrorSmallOnUnitInterval) {
  // With ||w||, ||x|| <= 1 the argument satisfies |u| <= 1, where the
  // order-1 error stays below 0.02 — why H = 1 suffices in the paper
  // (Figure 5 reports the resulting accuracy gap as "constantly smaller
  // than 0.05").
  EXPECT_LT(SigmoidTaylorMaxError(1, 1.0), 0.02);
}

TEST(TaylorTest, ApproximationOddSymmetryAroundHalf) {
  // sigma(u) - 1/2 is odd; the truncations preserve this.
  for (size_t order : {1, 3, 5, 7}) {
    for (double u : {0.1, 0.5, 0.9}) {
      EXPECT_NEAR(SigmoidTaylor(u, order) - 0.5,
                  -(SigmoidTaylor(-u, order) - 0.5), 1e-15);
    }
  }
}

}  // namespace
}  // namespace sqm
