#include "vfl/logistic.h"

#include <gtest/gtest.h>

#include "vfl/dataset.h"
#include "vfl/synthetic.h"

namespace sqm {
namespace {

TrainTestSplit EasyTask(size_t rows = 1500, size_t cols = 8) {
  SyntheticLrSpec spec;
  spec.rows = rows;
  spec.cols = cols;
  spec.margin = 2.5;
  spec.label_noise = 0.02;
  spec.seed = 3;
  return SplitTrainTest(GenerateLrDataset(spec), 0.7, 1).ValueOrDie();
}

LogisticOptions FastOptions() {
  LogisticOptions options;
  options.epsilon = 4.0;
  options.sample_rate = 0.05;
  options.rounds = 60;
  options.learning_rate = 2.0;
  options.gamma = 1024.0;
  return options;
}

TEST(LogisticGradientPolynomialTest, MatchesNumericGradient) {
  // The polynomial must evaluate to (sigma_taylor(<w,x>) - y) * x.
  const std::vector<double> w{0.3, -0.2, 0.5};
  const PolynomialVector f = BuildLogisticGradientPolynomial(w);
  EXPECT_EQ(f.output_dim(), 3u);
  EXPECT_EQ(f.Degree(), 2u);

  const std::vector<double> x{0.1, 0.4, -0.3};
  for (int y : {0, 1}) {
    std::vector<double> record = x;
    record.push_back(static_cast<double>(y));
    const std::vector<double> grad = f.Evaluate(record);
    double u = 0.0;
    for (size_t j = 0; j < 3; ++j) u += w[j] * x[j];
    const double err = (0.5 + 0.25 * u) - y;
    for (size_t t = 0; t < 3; ++t) {
      EXPECT_NEAR(grad[t], err * x[t], 1e-12) << "t=" << t << " y=" << y;
    }
  }
}

TEST(LogisticTest, NonPrivateLearnsEasyTask) {
  const TrainTestSplit split = EasyTask();
  LogisticOptions options = FastOptions();
  const LogisticResult result =
      TrainNonPrivateLogistic(split.train, split.test, options)
          .ValueOrDie();
  EXPECT_GT(result.test_accuracy, 0.85);
}

TEST(LogisticTest, DpSgdLearnsWithGenerousBudget) {
  const TrainTestSplit split = EasyTask();
  LogisticOptions options = FastOptions();
  const LogisticResult result =
      TrainDpSgd(split.train, split.test, options).ValueOrDie();
  EXPECT_GT(result.test_accuracy, 0.75);
  EXPECT_GT(result.sigma, 0.0);
}

TEST(LogisticTest, SqmLearnsWithGenerousBudget) {
  const TrainTestSplit split = EasyTask(1200, 6);
  LogisticOptions options = FastOptions();
  const LogisticResult result =
      TrainSqmLogistic(split.train, split.test, options).ValueOrDie();
  EXPECT_GT(result.test_accuracy, 0.75);
  EXPECT_GT(result.mu, 0.0);
}

TEST(LogisticTest, SqmNearDpSgdAtLargeGamma) {
  // The paper's Figure 3 claim: fine quantization closes the gap to the
  // centralized mechanism.
  const TrainTestSplit split = EasyTask(1200, 6);
  LogisticOptions options = FastOptions();
  options.gamma = 8192.0;
  const LogisticResult sqm_result =
      TrainSqmLogistic(split.train, split.test, options).ValueOrDie();
  const LogisticResult central =
      TrainDpSgd(split.train, split.test, options).ValueOrDie();
  EXPECT_GT(sqm_result.test_accuracy, central.test_accuracy - 0.1);
}

TEST(LogisticTest, SqmBeatsLocalDpBaseline) {
  const TrainTestSplit split = EasyTask(1200, 6);
  LogisticOptions options = FastOptions();
  options.epsilon = 1.0;
  const LogisticResult sqm_result =
      TrainSqmLogistic(split.train, split.test, options).ValueOrDie();
  const LogisticResult local =
      TrainLocalDpLogistic(split.train, split.test, options).ValueOrDie();
  EXPECT_GE(sqm_result.test_accuracy, local.test_accuracy - 0.02);
}

TEST(LogisticTest, ApproxPolyCloseToDpSgd) {
  // Figure 5: the polynomial approximation costs almost nothing.
  const TrainTestSplit split = EasyTask();
  LogisticOptions options = FastOptions();
  const LogisticResult exact =
      TrainDpSgd(split.train, split.test, options).ValueOrDie();
  const LogisticResult approx =
      TrainApproxPoly(split.train, split.test, options).ValueOrDie();
  EXPECT_NEAR(approx.test_accuracy, exact.test_accuracy, 0.1);
}

TEST(LogisticTest, HigherTaylorOrderSupportedByApproxPoly) {
  const TrainTestSplit split = EasyTask(800, 6);
  LogisticOptions options = FastOptions();
  options.taylor_order = 3;
  EXPECT_TRUE(TrainApproxPoly(split.train, split.test, options).ok());
  options.taylor_order = 2;
  EXPECT_FALSE(TrainApproxPoly(split.train, split.test, options).ok());
}

TEST(LogisticTest, SqmRejectsHigherTaylorOrder) {
  const TrainTestSplit split = EasyTask(400, 4);
  LogisticOptions options = FastOptions();
  options.taylor_order = 3;
  EXPECT_EQ(TrainSqmLogistic(split.train, split.test, options)
                .status()
                .code(),
            StatusCode::kUnimplemented);
}

TEST(LogisticTest, ValidatesInputs) {
  const TrainTestSplit split = EasyTask(400, 4);
  LogisticOptions options = FastOptions();
  options.rounds = 0;
  EXPECT_FALSE(TrainDpSgd(split.train, split.test, options).ok());
  options = FastOptions();
  options.sample_rate = 0.0;
  EXPECT_FALSE(TrainSqmLogistic(split.train, split.test, options).ok());
  options = FastOptions();
  VflDataset unlabelled = split.train;
  unlabelled.labels.clear();
  EXPECT_FALSE(TrainDpSgd(unlabelled, split.test, options).ok());
}

TEST(LogisticTest, WeightsAreClipped) {
  const TrainTestSplit split = EasyTask(400, 4);
  LogisticOptions options = FastOptions();
  options.weight_clip = 1.0;
  const LogisticResult result =
      TrainNonPrivateLogistic(split.train, split.test, options)
          .ValueOrDie();
  double norm_sq = 0.0;
  for (double w : result.weights) norm_sq += w * w;
  EXPECT_LE(norm_sq, 1.0 + 1e-9);
}

}  // namespace
}  // namespace sqm
