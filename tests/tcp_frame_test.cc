// Wire framing for the TCP transport: length-prefixed frames with a
// SipHash-2-4 MAC under the shared session key. The MAC is the only
// authentication on the link (pre-TLS posture, docs/DEPLOYMENT.md), so
// these tests pin down that every forgery vector — wrong key, flipped
// bit, patched version, truncation, hostile length field — is rejected
// before any payload byte is trusted.

#include "net/tcp/frame.h"

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

namespace {

using sqm::net::DecodeFrame;
using sqm::net::EncodeFrame;
using sqm::net::Frame;
using sqm::net::FrameType;
using sqm::net::SipHash24;

constexpr uint64_t kKey = 0x5eed5e551044u;

Frame SampleFrame() {
  Frame frame;
  frame.type = FrameType::kData;
  frame.from = 3;
  frame.to = 1;
  frame.seq = 42;
  frame.incarnation = 7;
  frame.run_id = 88;
  frame.phase = "mul";
  frame.payload = {0, 1, uint64_t{1} << 60, 0x1fffffffffffffffull};
  return frame;
}

/// EncodeFrame output starts with the u32 length prefix; DecodeFrame
/// takes the body after it.
const uint8_t* Body(const std::vector<uint8_t>& wire) {
  return wire.data() + 4;
}
size_t BodyLen(const std::vector<uint8_t>& wire) { return wire.size() - 4; }

TEST(TcpFrame, EncodeDecodeRoundTrip) {
  const Frame frame = SampleFrame();
  const std::vector<uint8_t> wire = EncodeFrame(frame, kKey);
  ASSERT_GT(wire.size(), 4u);

  // The length prefix counts exactly the bytes that follow it.
  uint32_t prefix = 0;
  std::memcpy(&prefix, wire.data(), 4);
  EXPECT_EQ(prefix, BodyLen(wire));

  sqm::Result<Frame> decoded = DecodeFrame(Body(wire), BodyLen(wire), kKey);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const Frame& got = decoded.ValueOrDie();
  EXPECT_EQ(got.type, frame.type);
  EXPECT_EQ(got.from, frame.from);
  EXPECT_EQ(got.to, frame.to);
  EXPECT_EQ(got.seq, frame.seq);
  EXPECT_EQ(got.incarnation, frame.incarnation);
  EXPECT_EQ(got.run_id, frame.run_id);
  EXPECT_EQ(got.phase, frame.phase);
  EXPECT_EQ(got.payload, frame.payload);
}

TEST(TcpFrame, EmptyPayloadAndPhaseRoundTrip) {
  Frame frame;
  frame.type = FrameType::kBye;
  const std::vector<uint8_t> wire = EncodeFrame(frame, kKey);
  sqm::Result<Frame> decoded = DecodeFrame(Body(wire), BodyLen(wire), kKey);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.ValueOrDie().type, FrameType::kBye);
  EXPECT_TRUE(decoded.ValueOrDie().payload.empty());
  EXPECT_TRUE(decoded.ValueOrDie().phase.empty());
}

TEST(TcpFrame, WrongSessionKeyFailsMac) {
  const std::vector<uint8_t> wire = EncodeFrame(SampleFrame(), kKey);
  sqm::Result<Frame> decoded =
      DecodeFrame(Body(wire), BodyLen(wire), kKey + 1);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), sqm::StatusCode::kIntegrityViolation);
}

TEST(TcpFrame, AnySingleBitFlipIsRejected) {
  const std::vector<uint8_t> wire = EncodeFrame(SampleFrame(), kKey);
  // Walk a sample of byte positions across header, phase, payload, MAC.
  for (size_t pos = 4; pos < wire.size(); pos += 5) {
    std::vector<uint8_t> tampered = wire;
    tampered[pos] ^= 0x40;
    sqm::Result<Frame> decoded =
        DecodeFrame(Body(tampered), BodyLen(tampered), kKey);
    EXPECT_FALSE(decoded.ok()) << "bit flip at byte " << pos << " accepted";
  }
}

TEST(TcpFrame, VersionMismatchRejected) {
  std::vector<uint8_t> wire = EncodeFrame(SampleFrame(), kKey);
  // Body layout starts with the u16 wire version, little-endian.
  wire[4] ^= 0xff;
  sqm::Result<Frame> decoded = DecodeFrame(Body(wire), BodyLen(wire), kKey);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), sqm::StatusCode::kIntegrityViolation);
}

TEST(TcpFrame, TruncationRejectedAtEveryLength) {
  const std::vector<uint8_t> wire = EncodeFrame(SampleFrame(), kKey);
  for (size_t len = 0; len < BodyLen(wire); ++len) {
    sqm::Result<Frame> decoded = DecodeFrame(Body(wire), len, kKey);
    EXPECT_FALSE(decoded.ok()) << "truncated body of " << len
                               << " bytes accepted";
  }
}

TEST(TcpFrame, HostilePayloadCountCannotDriveAllocation) {
  std::vector<uint8_t> wire = EncodeFrame(SampleFrame(), kKey);
  // The u32 payload count sits right before the payload words and the
  // trailing 8-byte MAC: offset = len - mac - 4 * u64 payload - 4.
  const size_t count_off = wire.size() - 8 - 4 * 8 - 4;
  const uint32_t huge = 0xffffffffu;
  std::memcpy(wire.data() + count_off, &huge, 4);
  sqm::Result<Frame> decoded = DecodeFrame(Body(wire), BodyLen(wire), kKey);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), sqm::StatusCode::kIntegrityViolation);
}

TEST(TcpFrame, IncarnationIsCoveredByTheMac) {
  // A replay attack on the rejoin protocol would take a pre-crash frame
  // and patch its incarnation field up to the restarted peer's; that only
  // works if the MAC ignores the field. Two frames differing ONLY in
  // incarnation must therefore differ in their trailing MAC bytes, not
  // just in the field itself.
  Frame frame = SampleFrame();
  const std::vector<uint8_t> wire_a = EncodeFrame(frame, kKey);
  frame.incarnation += 1;
  const std::vector<uint8_t> wire_b = EncodeFrame(frame, kKey);
  ASSERT_EQ(wire_a.size(), wire_b.size());
  EXPECT_NE(std::memcmp(wire_a.data() + wire_a.size() - 8,
                        wire_b.data() + wire_b.size() - 8, 8),
            0)
      << "MAC unchanged when the incarnation changed";
}

TEST(TcpFrame, TraceContextRoundTripsWhenFlagged) {
  Frame frame = SampleFrame();
  frame.has_trace = true;
  frame.trace_id = 0xdecafbad0ddba11ull;
  frame.span_id = (uint64_t{3} << 48) | 77;
  const std::vector<uint8_t> wire = EncodeFrame(frame, kKey);
  sqm::Result<Frame> decoded = DecodeFrame(Body(wire), BodyLen(wire), kKey);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded.ValueOrDie().has_trace);
  EXPECT_EQ(decoded.ValueOrDie().trace_id, frame.trace_id);
  EXPECT_EQ(decoded.ValueOrDie().span_id, frame.span_id);

  // The context block costs exactly 16 bytes — and only when flagged.
  Frame bare = SampleFrame();
  EXPECT_EQ(wire.size(), EncodeFrame(bare, kKey).size() + 16);
}

TEST(TcpFrame, NoTraceFlagMeansNoContextBytes) {
  // The kill-switch invariant at the wire level: an unflagged frame
  // decodes with has_trace false and zeroed ids, and its encoding is
  // byte-identical to a frame that never had context fields touched.
  Frame frame = SampleFrame();
  frame.trace_id = 0x1234;  // Ignored without has_trace.
  frame.span_id = 0x5678;
  const std::vector<uint8_t> wire = EncodeFrame(frame, kKey);
  EXPECT_EQ(wire, EncodeFrame(SampleFrame(), kKey));
  sqm::Result<Frame> decoded = DecodeFrame(Body(wire), BodyLen(wire), kKey);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_FALSE(decoded.ValueOrDie().has_trace);
  EXPECT_EQ(decoded.ValueOrDie().trace_id, 0u);
  EXPECT_EQ(decoded.ValueOrDie().span_id, 0u);
}

TEST(TcpFrame, TraceContextIsCoveredByTheMac) {
  // Patching span ids on the wire (to forge causal links in the merged
  // trace) must break the MAC like any other tamper.
  Frame frame = SampleFrame();
  frame.has_trace = true;
  frame.trace_id = 1;
  frame.span_id = 2;
  std::vector<uint8_t> wire = EncodeFrame(frame, kKey);
  frame.span_id = 3;
  const std::vector<uint8_t> wire_b = EncodeFrame(frame, kKey);
  ASSERT_EQ(wire.size(), wire_b.size());
  EXPECT_NE(std::memcmp(wire.data() + wire.size() - 8,
                        wire_b.data() + wire_b.size() - 8, 8),
            0)
      << "MAC unchanged when the span id changed";
}

TEST(TcpFrame, UnknownFlagBitsRejected) {
  // Flags live at body offset 3 (u16 version | u8 type | u8 flags). A
  // future-flag frame must not decode as if the bit were meaningless —
  // but a flipped flag also breaks the MAC, so re-MAC the patched body to
  // prove the flag check itself fires.
  const Frame frame = SampleFrame();
  std::vector<uint8_t> wire = EncodeFrame(frame, kKey);
  wire[4 + 3] |= 0x80;
  uint64_t k0 = 0, k1 = 0;
  sqm::net::DeriveMacKey(kKey, &k0, &k1);
  const uint64_t mac =
      SipHash24(k0, k1, Body(wire), BodyLen(wire) - 8);
  std::memcpy(wire.data() + wire.size() - 8, &mac, 8);
  sqm::Result<Frame> decoded = DecodeFrame(Body(wire), BodyLen(wire), kKey);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), sqm::StatusCode::kIntegrityViolation);
}

TEST(TcpFrame, TelemetryFrameTypesRoundTrip) {
  for (const FrameType type :
       {FrameType::kTelemetryHello, FrameType::kTelemetryClock,
        FrameType::kTelemetrySnapshot}) {
    Frame frame;
    frame.type = type;
    frame.from = 2;
    frame.to = 0xFFFFFFFFu;  // kTelemetryCoordinatorId.
    frame.incarnation = 1;
    frame.run_id = 9;
    frame.payload = {123456789, 987654321};
    const std::vector<uint8_t> wire = EncodeFrame(frame, kKey);
    sqm::Result<Frame> decoded =
        DecodeFrame(Body(wire), BodyLen(wire), kKey);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.ValueOrDie().type, type);
    EXPECT_EQ(decoded.ValueOrDie().to, frame.to);
    EXPECT_EQ(decoded.ValueOrDie().payload, frame.payload);
  }
}

TEST(TcpFrame, SipHashIsDeterministicAndKeySeparated) {
  const uint8_t data[] = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  const uint64_t a = SipHash24(1, 2, data, sizeof(data));
  EXPECT_EQ(a, SipHash24(1, 2, data, sizeof(data)));
  EXPECT_NE(a, SipHash24(2, 1, data, sizeof(data)));
  EXPECT_NE(a, SipHash24(1, 2, data, sizeof(data) - 1));
}

TEST(TcpFrame, MaxEncodedFrameBytesBoundsRealEncodings) {
  const Frame frame = SampleFrame();
  const std::vector<uint8_t> wire = EncodeFrame(frame, kKey);
  EXPECT_LE(wire.size(),
            sqm::net::MaxEncodedFrameBytes(frame.payload.size()));
}

}  // namespace
