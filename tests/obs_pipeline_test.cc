// End-to-end observability: a full SQM run (n = 5 parties, PCA-style
// second-moment release over BGW) must leave behind (1) a Chrome trace
// with per-party share / mul / open spans, (2) registry traffic counters
// that reconcile EXACTLY with the transport's own accounting, and (3) a
// privacy ledger embedded in the report.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/json.h"
#include "core/sqm.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "sampling/rng.h"

namespace sqm {
namespace {

constexpr size_t kParties = 5;

Matrix SmallDatabase(size_t rows, size_t cols, uint64_t seed) {
  Matrix x(rows, cols);
  Rng rng(seed);
  for (auto& v : x.data()) v = rng.NextDouble() - 0.5;
  return x;
}

SqmOptions PcaStyleOptions() {
  SqmOptions options;
  options.mu = 25.0;
  options.gamma = 64.0;
  options.seed = 99;
  options.quantize_coefficients = false;  // PCA instantiation.
  options.backend = MpcBackend::kBgw;
  return options;
}

/// Fresh global obs state per test: counters zeroed, trace and global
/// ledger emptied, switch on.
class ObsPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetEnabled(true);
    obs::Registry::Global().ResetAll();
    obs::Tracer::Global().Clear();
    obs::PrivacyLedger::Global().Clear();
  }
};

TEST_F(ObsPipelineTest, FullRunProducesPerPartyProtocolSpans) {
  const Matrix x = SmallDatabase(8, kParties, 1);
  const PolynomialVector f = PolynomialVector::OuterProduct(kParties);
  const SqmReport report =
      SqmEvaluator(PcaStyleOptions()).Evaluate(f, x).ValueOrDie();
  ASSERT_FALSE(report.estimate.empty());

  // Which party tracks carried each protocol phase?
  std::set<int32_t> share_tracks;
  std::set<int32_t> mul_tracks;
  std::set<int32_t> open_tracks;
  for (const obs::TraceEvent& event : obs::Tracer::Global().Collect()) {
    const std::string name = event.name;
    if (name == "bgw.share") share_tracks.insert(event.track);
    if (name == "bgw.mul.deal") mul_tracks.insert(event.track);
    if (name == "bgw.open.broadcast") open_tracks.insert(event.track);
  }
  for (size_t j = 0; j < kParties; ++j) {
    const int32_t track = static_cast<int32_t>(j);
    EXPECT_TRUE(share_tracks.count(track)) << "no share span for party " << j;
    EXPECT_TRUE(mul_tracks.count(track)) << "no mul span for party " << j;
    EXPECT_TRUE(open_tracks.count(track)) << "no open span for party " << j;
  }
}

TEST_F(ObsPipelineTest, ChromeTraceJsonLoadsWithNamedPartyRows) {
  const Matrix x = SmallDatabase(6, kParties, 2);
  const PolynomialVector f = PolynomialVector::OuterProduct(kParties);
  ASSERT_TRUE(SqmEvaluator(PcaStyleOptions()).Evaluate(f, x).ok());

  const std::string json = obs::Tracer::Global().ToChromeTraceJson();
  const JsonValue root = ParseJson(json).ValueOrDie();
  const JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);

  std::set<std::string> track_names;
  std::set<std::string> span_names;
  for (const JsonValue& event : events->items) {
    const std::string ph = event.Find("ph")->string_value;
    if (ph == "M") {
      track_names.insert(event.Find("args")->Find("name")->string_value);
    } else if (ph == "X") {
      span_names.insert(event.Find("name")->string_value);
    }
  }
  for (size_t j = 0; j < kParties; ++j) {
    EXPECT_TRUE(track_names.count("party " + std::to_string(j)));
  }
  EXPECT_TRUE(track_names.count("driver"));
  // The taxonomy the acceptance criteria name: distinct share / mul /
  // open spans, plus pipeline and transport levels.
  for (const char* required :
       {"bgw.share", "bgw.mul", "bgw.mul.deal", "bgw.mul.recombine",
        "bgw.open", "bgw.open.broadcast", "sqm.evaluate", "sqm.quantize",
        "sqm.mpc_compute", "net.send"}) {
    EXPECT_TRUE(span_names.count(required)) << "missing span " << required;
  }
}

TEST_F(ObsPipelineTest, RegistryTrafficMatchesTransportStatsExactly) {
  const Matrix x = SmallDatabase(8, kParties, 3);
  const PolynomialVector f = PolynomialVector::OuterProduct(kParties);
  const SqmReport report =
      SqmEvaluator(PcaStyleOptions()).Evaluate(f, x).ValueOrDie();

  const obs::MetricsSnapshot snapshot = obs::Registry::Global().Snapshot();
  // Satellite invariant: totals == sum of per-channel == registry counter.
  uint64_t channel_bytes = 0;
  uint64_t channel_messages = 0;
  for (const ChannelStats& channel : report.transport.channels) {
    channel_bytes += channel.wire_bytes;
    channel_messages += channel.messages;
  }
  EXPECT_EQ(report.transport.totals.wire_bytes, channel_bytes);
  EXPECT_EQ(report.transport.totals.messages, channel_messages);
  EXPECT_EQ(snapshot.CounterValue("net.send.wire_bytes"),
            report.transport.totals.wire_bytes);
  EXPECT_EQ(snapshot.CounterValue("net.send.messages"),
            report.transport.totals.messages);
  EXPECT_EQ(snapshot.CounterValue("net.send.field_elements"),
            report.transport.totals.field_elements);
  EXPECT_EQ(snapshot.CounterValue("net.rounds"),
            report.transport.totals.rounds);
  EXPECT_GT(report.transport.totals.wire_bytes, 0u);
}

TEST_F(ObsPipelineTest, ReportEmbedsPrivacyLedger) {
  const Matrix x = SmallDatabase(8, kParties, 4);
  const PolynomialVector f = PolynomialVector::OuterProduct(kParties);
  const SqmReport report =
      SqmEvaluator(PcaStyleOptions()).Evaluate(f, x).ValueOrDie();

  ASSERT_FALSE(report.ledger.empty());
  const obs::LedgerEntry& spend = report.ledger.back();
  EXPECT_EQ(spend.label, "sqm_release");
  EXPECT_GT(spend.mu, 0.0);
  EXPECT_DOUBLE_EQ(spend.delta, 1e-5);
  EXPECT_GT(spend.epsilon, 0.0);
  // The ledger's cumulative epsilon is the report's realized epsilon: one
  // release, same accountant, same delta.
  EXPECT_NEAR(spend.cumulative_epsilon, report.dropout.realized_epsilon,
              1e-12);
  // Forwarded to the global stream too.
  EXPECT_GE(obs::PrivacyLedger::Global().size(), 1u);
}

TEST_F(ObsPipelineTest, KillSwitchSuppressesTraceAndMetricsButNotReport) {
  const Matrix x = SmallDatabase(6, kParties, 5);
  const PolynomialVector f = PolynomialVector::OuterProduct(kParties);

  obs::SetEnabled(false);
  const SqmReport report =
      SqmEvaluator(PcaStyleOptions()).Evaluate(f, x).ValueOrDie();
  obs::SetEnabled(true);

  EXPECT_EQ(obs::Tracer::Global().num_events(), 0u);
  EXPECT_EQ(obs::Registry::Global().Snapshot().CounterValue(
                "net.send.messages"),
            0u);
  EXPECT_EQ(obs::PrivacyLedger::Global().size(), 0u);
  // The report's own data is NOT gated: transport accounting and the
  // local ledger mirror are results, not telemetry.
  EXPECT_GT(report.transport.totals.messages, 0u);
  EXPECT_FALSE(report.ledger.empty());
}

TEST_F(ObsPipelineTest, DisabledRunReleasesIdenticalValues) {
  const Matrix x = SmallDatabase(8, kParties, 6);
  const PolynomialVector f = PolynomialVector::OuterProduct(kParties);

  const SqmReport traced =
      SqmEvaluator(PcaStyleOptions()).Evaluate(f, x).ValueOrDie();
  obs::SetEnabled(false);
  const SqmReport dark =
      SqmEvaluator(PcaStyleOptions()).Evaluate(f, x).ValueOrDie();
  obs::SetEnabled(true);
  EXPECT_EQ(traced.raw, dark.raw);  // Instrumentation never perturbs results.
}

TEST_F(ObsPipelineTest, ThreadedTransportReconcilesToo) {
  const Matrix x = SmallDatabase(6, kParties, 7);
  const PolynomialVector f = PolynomialVector::OuterProduct(kParties);
  SqmOptions options = PcaStyleOptions();
  options.transport = TransportMode::kThreaded;
  const SqmReport report =
      SqmEvaluator(options).Evaluate(f, x).ValueOrDie();

  const obs::MetricsSnapshot snapshot = obs::Registry::Global().Snapshot();
  EXPECT_EQ(snapshot.CounterValue("net.send.wire_bytes"),
            report.transport.totals.wire_bytes);
  EXPECT_EQ(snapshot.CounterValue("net.send.messages"),
            report.transport.totals.messages);
}

}  // namespace
}  // namespace sqm
