#include "vfl/pca.h"

#include <gtest/gtest.h>

#include "math/linalg.h"
#include "vfl/metrics.h"
#include "vfl/synthetic.h"

namespace sqm {
namespace {

Matrix TestData() {
  SyntheticPcaSpec spec;
  spec.rows = 300;
  spec.cols = 12;
  spec.rank = 3;
  spec.noise_level = 0.05;
  spec.seed = 5;
  return GeneratePcaDataset(spec).features;
}

TEST(PcaTest, NonPrivateCapturesLowRankEnergy) {
  const Matrix x = TestData();
  const PcaResult exact = NonPrivatePca(x, 3).ValueOrDie();
  const double total = PcaUtility(x, Matrix::Identity(x.cols()));
  EXPECT_GT(exact.utility / total, 0.9);
  EXPECT_EQ(exact.subspace.rows(), 12u);
  EXPECT_EQ(exact.subspace.cols(), 3u);
}

TEST(PcaTest, CentralDpApproachesNonPrivateAtLargeEpsilon) {
  const Matrix x = TestData();
  const PcaResult exact = NonPrivatePca(x, 3).ValueOrDie();
  PcaOptions options;
  options.k = 3;
  options.epsilon = 64.0;
  const PcaResult central = CentralDpPca(x, options).ValueOrDie();
  EXPECT_GT(central.utility, 0.95 * exact.utility);
  EXPECT_GT(central.sigma, 0.0);
}

TEST(PcaTest, CentralDpUtilityIncreasesWithEpsilon) {
  const Matrix x = TestData();
  PcaOptions options;
  options.k = 3;
  options.epsilon = 0.05;
  const double low = CentralDpPca(x, options).ValueOrDie().utility;
  options.epsilon = 16.0;
  const double high = CentralDpPca(x, options).ValueOrDie().utility;
  EXPECT_GT(high, low);
}

TEST(PcaTest, SqmNearCentralAtLargeGamma) {
  // The paper's headline claim for PCA (Figure 2): SQM with fine
  // quantization matches central DP.
  const Matrix x = TestData();
  PcaOptions options;
  options.k = 3;
  options.epsilon = 4.0;
  options.gamma = 4096.0;
  const PcaResult sqm_result = SqmPca(x, options).ValueOrDie();
  const PcaResult central = CentralDpPca(x, options).ValueOrDie();
  EXPECT_GT(sqm_result.utility, 0.9 * central.utility);
  EXPECT_GT(sqm_result.mu, 0.0);
}

TEST(PcaTest, SqmBeatsLocalDp) {
  const Matrix x = TestData();
  PcaOptions options;
  options.k = 3;
  options.epsilon = 1.0;
  options.gamma = 2048.0;
  const double sqm_utility = SqmPca(x, options).ValueOrDie().utility;
  const double local_utility = LocalDpPca(x, options).ValueOrDie().utility;
  EXPECT_GT(sqm_utility, local_utility);
}

TEST(PcaTest, SqmUtilityImprovesWithGamma) {
  const Matrix x = TestData();
  PcaOptions options;
  options.k = 3;
  options.epsilon = 1.0;
  options.gamma = 4.0;  // Deliberately coarse.
  const double coarse = SqmPca(x, options).ValueOrDie().utility;
  options.gamma = 4096.0;
  const double fine = SqmPca(x, options).ValueOrDie().utility;
  EXPECT_GT(fine, coarse);
}

TEST(PcaTest, BgwBackendMatchesPlaintextRelease) {
  // Small instance: the BGW path must produce the same utility as the fast
  // path given the same seed (identical quantization + noise draws).
  SyntheticPcaSpec spec;
  spec.rows = 12;
  spec.cols = 5;
  spec.rank = 2;
  spec.seed = 9;
  const Matrix x = GeneratePcaDataset(spec).features;
  PcaOptions options;
  options.k = 2;
  options.epsilon = 2.0;
  options.gamma = 64.0;
  options.seed = 31;
  options.backend = MpcBackend::kPlaintext;
  const PcaResult fast = SqmPca(x, options).ValueOrDie();
  options.backend = MpcBackend::kBgw;
  const PcaResult mpc = SqmPca(x, options).ValueOrDie();
  EXPECT_NEAR(fast.utility, mpc.utility, 1e-9);
  EXPECT_GT(mpc.network.messages, 0u);
}

TEST(PcaTest, OptionValidation) {
  const Matrix x = TestData();
  PcaOptions options;
  options.k = 0;
  EXPECT_FALSE(SqmPca(x, options).ok());
  options.k = 100;
  EXPECT_FALSE(CentralDpPca(x, options).ok());
  options.k = 3;
  options.epsilon = -1.0;
  EXPECT_FALSE(LocalDpPca(x, options).ok());
  EXPECT_FALSE(NonPrivatePca(x, 0).ok());
}

TEST(PcaTest, TimingPopulatedForSqm) {
  const Matrix x = TestData();
  PcaOptions options;
  options.k = 2;
  options.epsilon = 1.0;
  const PcaResult result = SqmPca(x, options).ValueOrDie();
  EXPECT_GT(result.timing.TotalSeconds(), 0.0);
  EXPECT_GE(result.timing.noise_injection_seconds, 0.0);
}

}  // namespace
}  // namespace sqm
