#include "mpc/field.h"

#include <gtest/gtest.h>

#include "sampling/rng.h"

namespace sqm {
namespace {

TEST(FieldTest, ModulusIsMersenne61) {
  EXPECT_EQ(Field::kModulus, (uint64_t{1} << 61) - 1);
  EXPECT_EQ(Field::kMaxCentered,
            static_cast<int64_t>((Field::kModulus - 1) / 2));
}

TEST(FieldTest, ReduceHandlesLargeValues) {
  EXPECT_EQ(Field::Reduce(0), 0u);
  EXPECT_EQ(Field::Reduce(Field::kModulus), 0u);
  EXPECT_EQ(Field::Reduce(Field::kModulus + 5), 5u);
  EXPECT_EQ(Field::Reduce(UINT64_MAX),
            Field::Reduce((UINT64_MAX & Field::kModulus) +
                          (UINT64_MAX >> 61)));
}

TEST(FieldTest, AddSubRoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const auto a = rng.NextBounded(Field::kModulus);
    const auto b = rng.NextBounded(Field::kModulus);
    EXPECT_EQ(Field::Sub(Field::Add(a, b), b), a);
    EXPECT_EQ(Field::Add(Field::Sub(a, b), b), a);
  }
}

TEST(FieldTest, NegIsAdditiveInverse) {
  Rng rng(2);
  EXPECT_EQ(Field::Neg(0), 0u);
  for (int i = 0; i < 100; ++i) {
    const auto a = rng.NextBounded(Field::kModulus);
    EXPECT_EQ(Field::Add(a, Field::Neg(a)), 0u);
  }
}

TEST(FieldTest, MulAgainstSmallKnownValues) {
  EXPECT_EQ(Field::Mul(3, 7), 21u);
  EXPECT_EQ(Field::Mul(0, 12345), 0u);
  EXPECT_EQ(Field::Mul(1, Field::kModulus - 1), Field::kModulus - 1);
  // (p-1)^2 mod p = 1.
  EXPECT_EQ(Field::Mul(Field::kModulus - 1, Field::kModulus - 1), 1u);
}

TEST(FieldTest, MulIsCommutativeAndAssociative) {
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const auto a = rng.NextBounded(Field::kModulus);
    const auto b = rng.NextBounded(Field::kModulus);
    const auto c = rng.NextBounded(Field::kModulus);
    EXPECT_EQ(Field::Mul(a, b), Field::Mul(b, a));
    EXPECT_EQ(Field::Mul(Field::Mul(a, b), c),
              Field::Mul(a, Field::Mul(b, c)));
  }
}

TEST(FieldTest, Distributivity) {
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    const auto a = rng.NextBounded(Field::kModulus);
    const auto b = rng.NextBounded(Field::kModulus);
    const auto c = rng.NextBounded(Field::kModulus);
    EXPECT_EQ(Field::Mul(a, Field::Add(b, c)),
              Field::Add(Field::Mul(a, b), Field::Mul(a, c)));
  }
}

TEST(FieldTest, PowMatchesRepeatedMul) {
  const Field::Element base = 123456789;
  Field::Element expected = 1;
  for (uint64_t e = 0; e <= 20; ++e) {
    EXPECT_EQ(Field::Pow(base, e), expected);
    expected = Field::Mul(expected, base);
  }
}

TEST(FieldTest, FermatLittleTheorem) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const auto a = 1 + rng.NextBounded(Field::kModulus - 1);
    EXPECT_EQ(Field::Pow(a, Field::kModulus - 1), 1u);
  }
}

TEST(FieldTest, InverseIsMultiplicativeInverse) {
  Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    const auto a = 1 + rng.NextBounded(Field::kModulus - 1);
    EXPECT_EQ(Field::Mul(a, Field::Inv(a)), 1u);
  }
}

TEST(FieldTest, EncodeDecodeRoundTrip) {
  Rng rng(7);
  EXPECT_EQ(Field::Decode(Field::Encode(0)), 0);
  EXPECT_EQ(Field::Decode(Field::Encode(Field::kMaxCentered)),
            Field::kMaxCentered);
  EXPECT_EQ(Field::Decode(Field::Encode(-Field::kMaxCentered)),
            -Field::kMaxCentered);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = static_cast<int64_t>(rng.NextUint64() >> 4) -
                      (int64_t{1} << 59);
    if (v > Field::kMaxCentered || v < -Field::kMaxCentered) continue;
    EXPECT_EQ(Field::Decode(Field::Encode(v)), v);
  }
}

TEST(FieldTest, EncodedArithmeticMatchesSignedArithmetic) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const int64_t a = static_cast<int64_t>(rng.NextBounded(1u << 30)) -
                      (1 << 29);
    const int64_t b = static_cast<int64_t>(rng.NextBounded(1u << 30)) -
                      (1 << 29);
    EXPECT_EQ(Field::Decode(Field::Add(Field::Encode(a), Field::Encode(b))),
              a + b);
    EXPECT_EQ(Field::Decode(Field::Sub(Field::Encode(a), Field::Encode(b))),
              a - b);
    EXPECT_EQ(Field::Decode(Field::Mul(Field::Encode(a), Field::Encode(b))),
              a * b);
  }
}

TEST(FieldTest, VectorHelpers) {
  const std::vector<int64_t> values{-3, 0, 7, -100000};
  EXPECT_EQ(Field::DecodeVector(Field::EncodeVector(values)), values);
}

}  // namespace
}  // namespace sqm
