#include "mpc/protocol.h"
#include "mpc/network.h"

#include <gtest/gtest.h>

namespace sqm {
namespace {

class ProtocolTest : public ::testing::Test {
 protected:
  static constexpr size_t kParties = 5;
  static constexpr size_t kThreshold = 2;

  ProtocolTest()
      : network_(kParties, 0.0),
        protocol_(ShamirScheme(kParties, kThreshold), &network_, 99) {}

  SimulatedNetwork network_;
  BgwProtocol protocol_;
};

TEST_F(ProtocolTest, ShareAndOpenRoundTrip) {
  const std::vector<int64_t> values{7, -3, 0, 100000};
  const SharedVector shared =
      protocol_.ShareFromParty(0, Field::EncodeVector(values));
  EXPECT_EQ(protocol_.OpenSigned(shared), values);
}

TEST_F(ProtocolTest, SharesHideTheSecretFromBelowThresholdCoalitions) {
  // With threshold 2, any 2 shares are uniform. Coarse check: repeated
  // sharings of the same value produce different share pairs.
  const std::vector<int64_t> secret{5};
  const SharedVector s1 =
      protocol_.ShareFromParty(0, Field::EncodeVector(secret));
  const SharedVector s2 =
      protocol_.ShareFromParty(0, Field::EncodeVector(secret));
  EXPECT_NE(s1.shares(1)[0], s2.shares(1)[0]);
}

TEST_F(ProtocolTest, AddIsExact) {
  const SharedVector a =
      protocol_.ShareFromParty(0, Field::EncodeVector({1, 2, 3}));
  const SharedVector b =
      protocol_.ShareFromParty(1, Field::EncodeVector({10, -20, 30}));
  const SharedVector sum = protocol_.Add(a, b).ValueOrDie();
  EXPECT_EQ(protocol_.OpenSigned(sum), (std::vector<int64_t>{11, -18, 33}));
}

TEST_F(ProtocolTest, SubIsExact) {
  const SharedVector a =
      protocol_.ShareFromParty(0, Field::EncodeVector({5, 5}));
  const SharedVector b =
      protocol_.ShareFromParty(1, Field::EncodeVector({2, 9}));
  const SharedVector diff = protocol_.Sub(a, b).ValueOrDie();
  EXPECT_EQ(protocol_.OpenSigned(diff), (std::vector<int64_t>{3, -4}));
}

TEST_F(ProtocolTest, ShapeMismatchIsRejected) {
  const SharedVector a =
      protocol_.ShareFromParty(0, Field::EncodeVector({1, 2}));
  const SharedVector b =
      protocol_.ShareFromParty(1, Field::EncodeVector({1}));
  EXPECT_FALSE(protocol_.Add(a, b).ok());
  EXPECT_FALSE(protocol_.Sub(a, b).ok());
  EXPECT_FALSE(protocol_.Mul(a, b).ok());
}

TEST_F(ProtocolTest, ScaleConstIsExact) {
  const SharedVector a =
      protocol_.ShareFromParty(0, Field::EncodeVector({3, -4}));
  const SharedVector scaled =
      protocol_.ScaleConst(a, Field::Encode(7));
  EXPECT_EQ(protocol_.OpenSigned(scaled), (std::vector<int64_t>{21, -28}));
}

TEST_F(ProtocolTest, AddPublicIsExact) {
  const SharedVector a =
      protocol_.ShareFromParty(0, Field::EncodeVector({3, 4}));
  const SharedVector shifted =
      protocol_.AddPublic(a, Field::EncodeVector({100, -1})).ValueOrDie();
  EXPECT_EQ(protocol_.OpenSigned(shifted), (std::vector<int64_t>{103, 3}));
}

TEST_F(ProtocolTest, MulIsExactIncludingNegatives) {
  const SharedVector a =
      protocol_.ShareFromParty(0, Field::EncodeVector({3, -4, 0, 1000}));
  const SharedVector b =
      protocol_.ShareFromParty(1, Field::EncodeVector({5, 6, 9, -1000}));
  const SharedVector product = protocol_.Mul(a, b).ValueOrDie();
  EXPECT_EQ(protocol_.OpenSigned(product),
            (std::vector<int64_t>{15, -24, 0, -1000000}));
}

TEST_F(ProtocolTest, MulCostsOneRoundAndQuadraticMessages) {
  const SharedVector a =
      protocol_.ShareFromParty(0, Field::EncodeVector({1, 2, 3}));
  const SharedVector b =
      protocol_.ShareFromParty(1, Field::EncodeVector({4, 5, 6}));
  const NetworkStats before = network_.stats();
  (void)protocol_.Mul(a, b).ValueOrDie();
  const NetworkStats after = network_.stats();
  EXPECT_EQ(after.rounds - before.rounds, 1u);
  // n*(n-1) pairwise messages, each batching all 3 elements.
  EXPECT_EQ(after.messages - before.messages, kParties * (kParties - 1));
  EXPECT_EQ(after.field_elements - before.field_elements,
            kParties * (kParties - 1) * 3);
}

TEST_F(ProtocolTest, RepeatedMultiplicationStaysReconstructible) {
  // Degree reduction must keep the sharing degree at t so products chain.
  SharedVector x = protocol_.ShareFromParty(0, Field::EncodeVector({3}));
  int64_t expected = 3;
  for (int i = 0; i < 5; ++i) {
    x = protocol_.Mul(x, x).ValueOrDie();
    expected *= expected;
    if (expected > 1000000000) break;  // Stay far from field capacity.
  }
  EXPECT_EQ(protocol_.OpenSigned(x)[0], expected);
}

TEST_F(ProtocolTest, SumElementsIsExact) {
  const SharedVector a =
      protocol_.ShareFromParty(2, Field::EncodeVector({1, -2, 3, -4, 5}));
  const SharedVector sum = protocol_.SumElements(a);
  EXPECT_EQ(protocol_.OpenSigned(sum), (std::vector<int64_t>{3}));
}

TEST_F(ProtocolTest, InnerProductIsExact) {
  const SharedVector a =
      protocol_.ShareFromParty(0, Field::EncodeVector({1, 2, 3}));
  const SharedVector b =
      protocol_.ShareFromParty(1, Field::EncodeVector({4, 5, 6}));
  const SharedVector ip = protocol_.InnerProduct(a, b).ValueOrDie();
  EXPECT_EQ(protocol_.OpenSigned(ip), (std::vector<int64_t>{32}));
}

TEST_F(ProtocolTest, SharePublicBehavesAsDegreeZeroSharing) {
  const SharedVector pub =
      protocol_.SharePublic(Field::EncodeVector({9, 9}));
  const SharedVector priv =
      protocol_.ShareFromParty(0, Field::EncodeVector({2, -3}));
  const SharedVector product = protocol_.Mul(pub, priv).ValueOrDie();
  EXPECT_EQ(protocol_.OpenSigned(product), (std::vector<int64_t>{18, -27}));
}

TEST(ProtocolThreePartyTest, MinimalConfigurationWorks) {
  // n = 3, t = 1 is the smallest BGW configuration; 2t+1 = 3 = n.
  SimulatedNetwork network(3, 0.0);
  BgwProtocol protocol(ShamirScheme(3, 1), &network, 7);
  const SharedVector a =
      protocol.ShareFromParty(0, Field::EncodeVector({6}));
  const SharedVector b =
      protocol.ShareFromParty(2, Field::EncodeVector({7}));
  EXPECT_EQ(protocol.OpenSigned(protocol.Mul(a, b).ValueOrDie())[0], 42);
}

}  // namespace
}  // namespace sqm
