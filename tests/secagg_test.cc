#include "mpc/secagg.h"
#include "mpc/network.h"

#include <gtest/gtest.h>

#include <cmath>

#include <optional>
#include <set>

#include "sampling/rng.h"
#include "sampling/skellam_sampler.h"

namespace sqm {
namespace {

TEST(SecAggTest, MasksCancelInTheSum) {
  constexpr size_t kClients = 6;
  SecureAggregation secagg(kClients, 77);
  std::vector<std::vector<Field::Element>> uploads;
  std::vector<int64_t> expected(4, 0);
  Rng rng(1);
  for (size_t j = 0; j < kClients; ++j) {
    std::vector<int64_t> values(4);
    for (auto& v : values) {
      v = static_cast<int64_t>(rng.NextBounded(2001)) - 1000;
    }
    for (size_t t = 0; t < 4; ++t) expected[t] += values[t];
    uploads.push_back(secagg.MaskedUpload(j, values).ValueOrDie());
  }
  EXPECT_EQ(secagg.Aggregate(uploads).ValueOrDie(), expected);
}

TEST(SecAggTest, IndividualUploadLooksUniform) {
  // A single masked upload must reveal nothing: with >= 2 clients every
  // element is shifted by a uniform mask.
  SecureAggregation secagg(3, 5);
  std::set<Field::Element> seen;
  for (int r = 0; r < 500; ++r) {
    SecureAggregation fresh(3, 1000 + r);
    const auto upload =
        fresh.MaskedUpload(0, {42}).ValueOrDie();
    seen.insert(upload[0]);
  }
  // Essentially all distinct and spread out.
  EXPECT_GT(seen.size(), 495u);
}

TEST(SecAggTest, TwoClientsMinimum) {
  SecureAggregation secagg(2, 9);
  const auto u0 = secagg.MaskedUpload(0, {10, -5}).ValueOrDie();
  const auto u1 = secagg.MaskedUpload(1, {-3, 8}).ValueOrDie();
  EXPECT_EQ(secagg.Aggregate({u0, u1}).ValueOrDie(),
            (std::vector<int64_t>{7, 3}));
}

TEST(SecAggTest, ValidatesInputs) {
  SecureAggregation secagg(3, 9);
  EXPECT_FALSE(secagg.MaskedUpload(7, {1}).ok());
  const auto u0 = secagg.MaskedUpload(0, {1}).ValueOrDie();
  EXPECT_FALSE(secagg.Aggregate({u0}).ok());  // Missing uploads.
  const auto u1 = secagg.MaskedUpload(1, {1}).ValueOrDie();
  const auto u2 = secagg.MaskedUpload(2, {1, 2}).ValueOrDie();  // Ragged.
  EXPECT_FALSE(secagg.Aggregate({u0, u1, u2}).ok());
}

TEST(SecAggTest, SupportsDistributedDpForLinearFunctions) {
  // The HFL recipe [39-41]: each client adds its own Skellam share before
  // masking; the server learns sum x_j + Sk(mu) and nothing else. This is
  // the pattern SQM generalizes beyond linearity.
  constexpr size_t kClients = 8;
  const double mu = 200.0;
  SecureAggregation secagg(kClients, 3);
  SkellamSampler share(mu / kClients);
  Rng rng(4);
  std::vector<std::vector<Field::Element>> uploads;
  int64_t true_sum = 0;
  for (size_t j = 0; j < kClients; ++j) {
    const int64_t value = static_cast<int64_t>(j) * 10;
    true_sum += value;
    const int64_t noisy = value + share.Sample(rng);
    uploads.push_back(secagg.MaskedUpload(j, {noisy}).ValueOrDie());
  }
  const int64_t released = secagg.Aggregate(uploads).ValueOrDie()[0];
  // Noisy but near: |release - sum| within 12 std of Sk(mu).
  EXPECT_LT(std::llabs(released - true_sum),
            static_cast<int64_t>(12.0 * std::sqrt(2.0 * mu)));
}

TEST(SecAggTest, CannotExpressCrossClientProducts) {
  // The structural limitation that motivates SQM (Section VII "Gaps"):
  // aggregating masked uploads yields SUMS. For the VFL covariance entry
  // x_a * x_b — a product across two clients' private attributes — the
  // sum of anything the clients can compute locally from their own
  // attribute alone cannot equal the product for all inputs. We exhibit
  // the counterexample pair rather than prove it: two input pairs with
  // equal sums but different products.
  SecureAggregation secagg(2, 13);
  const auto run = [&](int64_t a, int64_t b) {
    const auto u0 = secagg.MaskedUpload(0, {a}).ValueOrDie();
    const auto u1 = secagg.MaskedUpload(1, {b}).ValueOrDie();
    return secagg.Aggregate({u0, u1}).ValueOrDie()[0];
  };
  // (1, 4) and (2, 3): same aggregate 5, products 4 vs 6 — a linear
  // aggregation of per-client values cannot distinguish them.
  EXPECT_EQ(run(1, 4), run(2, 3));
}

TEST(SecAggTest, DropoutsYieldPartialSumOverSurvivors) {
  constexpr size_t kClients = 6;
  SecureAggregation secagg(kClients, 21);
  std::vector<std::optional<std::vector<Field::Element>>> uploads(kClients);
  std::vector<int64_t> expected(3, 0);
  Rng rng(4);
  for (size_t j = 0; j < kClients; ++j) {
    std::vector<int64_t> values(3);
    for (auto& v : values) {
      v = static_cast<int64_t>(rng.NextBounded(2001)) - 1000;
    }
    if (j == 1 || j == 4) continue;  // Clients 1 and 4 drop out.
    for (size_t t = 0; t < 3; ++t) expected[t] += values[t];
    uploads[j] = secagg.MaskedUpload(j, values).ValueOrDie();
  }
  const auto result = secagg.AggregateWithDropouts(uploads).ValueOrDie();
  EXPECT_EQ(result.sum, expected);
  EXPECT_EQ(result.survivors, (std::vector<size_t>{0, 2, 3, 5}));
  EXPECT_EQ(result.num_dropped, 2u);
}

TEST(SecAggTest, NoDropoutsMatchesPlainAggregate) {
  SecureAggregation secagg(4, 31);
  std::vector<std::vector<Field::Element>> plain;
  std::vector<std::optional<std::vector<Field::Element>>> optional;
  for (size_t j = 0; j < 4; ++j) {
    const auto upload =
        secagg.MaskedUpload(j, {int64_t(j) + 1, -int64_t(j)}).ValueOrDie();
    plain.push_back(upload);
    optional.emplace_back(upload);
  }
  const auto result = secagg.AggregateWithDropouts(optional).ValueOrDie();
  EXPECT_EQ(result.sum, secagg.Aggregate(plain).ValueOrDie());
  EXPECT_EQ(result.num_dropped, 0u);
}

TEST(SecAggTest, SingleSurvivorIsRefused) {
  // Unmasking down to one survivor would reveal its bare input.
  SecureAggregation secagg(3, 41);
  std::vector<std::optional<std::vector<Field::Element>>> uploads(3);
  uploads[2] = secagg.MaskedUpload(2, {99}).ValueOrDie();
  const auto result = secagg.AggregateWithDropouts(uploads);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SecAggTest, UnmaskTrafficAccountedWhenNetworkAttached) {
  SimulatedNetwork network(5, 0.0);
  SecureAggregation secagg(5, 51, &network);
  std::vector<std::optional<std::vector<Field::Element>>> uploads(5);
  for (size_t j = 0; j < 5; ++j) {
    if (j == 3) continue;
    uploads[j] = secagg.MaskedUpload(j, {7, 8}).ValueOrDie();
  }
  const auto before = network.stats();
  ASSERT_TRUE(secagg.AggregateWithDropouts(uploads).ok());
  // One unmask message per survivor towards the server; survivor 0 is the
  // server itself (self-send, not counted).
  EXPECT_EQ(network.stats().messages - before.messages, 3u);
}

TEST(SecAggTest, TrafficAccountedWhenNetworkAttached) {
  SimulatedNetwork network(4, 0.0);
  SecureAggregation secagg(4, 5, &network);
  for (size_t j = 0; j < 4; ++j) {
    (void)secagg.MaskedUpload(j, {1, 2, 3}).ValueOrDie();
  }
  // Client 0's upload is a self-send (it is also the server here), so 3
  // uploads count as traffic.
  EXPECT_EQ(network.stats().messages, 3u);
  EXPECT_EQ(network.stats().field_elements, 9u);
}

}  // namespace
}  // namespace sqm
