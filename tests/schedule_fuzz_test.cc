// Schedule-exploration fuzzing: deterministic BGW probes over
// ThreadedTransport under seeded fault schedules, with transcript
// record/replay as the repro mechanism. Any failure the fuzzer reports
// must reproduce bit-exactly from its iteration seed alone.

#include "testing/schedule_fuzz.h"

#include <gtest/gtest.h>

#include "mpc/field.h"
#include "mpc/shamir.h"
#include "net/lockstep.h"
#include "testing/transcript.h"

namespace sqm {
namespace {

using testing::CompareTranscripts;
using testing::ScheduleFuzzOptions;
using testing::ScheduleFuzzer;
using testing::Transcript;
using testing::TranscriptDiff;

ScheduleFuzzOptions FastOptions() {
  ScheduleFuzzOptions options;
  options.iterations = 4;
  options.storm_rounds = 2;
  return options;
}

TEST(ScheduleFuzzTest, SweepHoldsAllInvariants) {
  ScheduleFuzzer fuzzer(FastOptions());
  const auto report = fuzzer.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.ValueOrDie().failures, 0u)
      << "first failing seed " << report.ValueOrDie().first_failing_seed
      << ": " << report.ValueOrDie().first_failure;
  EXPECT_EQ(report.ValueOrDie().iterations_run, 4u);
}

TEST(ScheduleFuzzTest, IterationIsDeterministicFromItsSeed) {
  // The repro contract: re-running an iteration from its seed regenerates
  // the identical fault mix, inputs, transcripts, and release.
  constexpr uint64_t kSeed = 0xdecafbad5eedULL;
  ScheduleFuzzer first(FastOptions());
  ASSERT_TRUE(first.RunIteration(kSeed).ok());
  const Transcript reference_a = first.last_reference_transcript();
  const Transcript threaded_a = first.last_threaded_transcript();
  const std::vector<int64_t> outputs_a = first.last_reference_outputs();

  ScheduleFuzzer second(FastOptions());
  ASSERT_TRUE(second.RunIteration(kSeed).ok());
  EXPECT_TRUE(
      CompareTranscripts(reference_a, second.last_reference_transcript())
          .identical);
  EXPECT_TRUE(
      CompareTranscripts(threaded_a, second.last_threaded_transcript())
          .identical);
  EXPECT_EQ(outputs_a, second.last_reference_outputs());
}

TEST(ScheduleFuzzTest, DifferentSeedsExerciseDifferentExecutions) {
  ScheduleFuzzOptions options = FastOptions();
  options.storm_rounds = 0;  // Only the probe matters here.
  ScheduleFuzzer fuzzer(options);
  ASSERT_TRUE(fuzzer.RunIteration(1).ok());
  const Transcript first = fuzzer.last_reference_transcript();
  ASSERT_TRUE(fuzzer.RunIteration(2).ok());
  const TranscriptDiff diff =
      CompareTranscripts(first, fuzzer.last_reference_transcript());
  EXPECT_FALSE(diff.identical)
      << "distinct seeds should shuffle inputs and sharing randomness";
}

TEST(ScheduleFuzzTest, RecordedTranscriptReplaysToTheSameRelease) {
  // Bit-exact repro via replay: feed the recorded reference transcript into
  // a fresh LockstepTransport and reconstruct the opened values straight
  // from the open-phase wire messages.
  ScheduleFuzzOptions options = FastOptions();
  options.storm_rounds = 0;
  ScheduleFuzzer fuzzer(options);
  ASSERT_TRUE(fuzzer.RunIteration(0xfeedULL).ok());
  const Transcript& transcript = fuzzer.last_reference_transcript();
  const std::vector<int64_t>& released = fuzzer.last_reference_outputs();
  ASSERT_FALSE(released.empty());

  LockstepTransport replay(options.num_parties, 0.0, Field::kWireBytes);
  ASSERT_TRUE(testing::ReplayIntoLockstep(transcript, &replay).ok());
  replay.EndRound();

  // Collect the open-phase broadcasts addressed to party 0. The probe runs
  // two opens (product vector, then inner product); each sends one message
  // per ordered pair. Reconstruction needs threshold+1 = 3 points; parties
  // 1..3 plus their shares addressed to party 0 are all on the wire.
  const ShamirScheme scheme(options.num_parties, options.threshold);
  std::vector<std::vector<uint64_t>> open_payloads;
  for (const auto& entry : transcript.entries) {
    if (entry.phase.rfind("open", 0) == 0 && entry.to == 0) {
      open_payloads.push_back(entry.payload);
    }
  }
  // Two opens, each with num_parties-1 messages into party 0.
  ASSERT_EQ(open_payloads.size(), 2 * (options.num_parties - 1));

  const size_t per_open = options.num_parties - 1;
  std::vector<int64_t> reconstructed;
  for (size_t open = 0; open < 2; ++open) {
    const size_t base = open * per_open;
    const size_t length = open_payloads[base].size();
    for (size_t t = 0; t < length; ++t) {
      // Message order within an open is dealer-major: parties 1,2,3,4
      // each broadcast their full share vector to party 0.
      std::vector<std::pair<size_t, Field::Element>> points;
      for (size_t j = 1; j <= options.threshold + 1; ++j) {
        points.emplace_back(j, open_payloads[base + j - 1][t]);
      }
      const auto value = scheme.ReconstructFromSubset(points);
      ASSERT_TRUE(value.ok()) << value.status().ToString();
      reconstructed.push_back(Field::Decode(value.ValueOrDie()));
    }
  }
  EXPECT_EQ(reconstructed, released);
}

TEST(ScheduleFuzzTest, TranscriptsSurviveJsonRoundTrip) {
  ScheduleFuzzOptions options = FastOptions();
  options.storm_rounds = 0;
  ScheduleFuzzer fuzzer(options);
  ASSERT_TRUE(fuzzer.RunIteration(0xabcULL).ok());
  const Transcript& original = fuzzer.last_reference_transcript();
  const std::string json = testing::TranscriptToJson(original);
  const auto parsed = testing::TranscriptFromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const TranscriptDiff diff =
      CompareTranscripts(original, parsed.ValueOrDie());
  EXPECT_TRUE(diff.identical) << diff.description;
}

}  // namespace
}  // namespace sqm
