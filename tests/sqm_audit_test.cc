// End-to-end empirical privacy audit of the FULL SQM pipeline: run
// Algorithm 3 (quantization + distributed Skellam + evaluation +
// post-processing) on neighboring databases and verify that the audited
// epsilon lower bound respects the calibrated guarantee. This closes the
// loop between the analytical accounting (dp/) and the implementation
// (core/), the gap that real-world DP bugs live in.

#include <gtest/gtest.h>

#include <cmath>

#include "core/sqm.h"
#include "dp/audit.h"
#include "dp/skellam.h"

namespace sqm {
namespace {

/// A single-dimension product release over a small database; `extra_row`
/// toggles the neighboring record.
double RunSqmRelease(bool extra_row, double gamma, double mu,
                     uint64_t seed) {
  // Base database: 6 fixed records over 2 attributes. The neighboring
  // database appends one extra record with the worst-case norm.
  const size_t base_rows = 6;
  Matrix x(base_rows + (extra_row ? 1 : 0), 2);
  for (size_t i = 0; i < base_rows; ++i) {
    x(i, 0) = 0.5;
    x(i, 1) = 0.25;
  }
  if (extra_row) {
    x(base_rows, 0) = std::sqrt(0.5);  // ||x||_2 = 1, f(x) = 0.5.
    x(base_rows, 1) = std::sqrt(0.5);
  }

  PolynomialVector f;
  Polynomial p;
  p.AddTerm(Monomial(1.0, {{0, 1}, {1, 1}}));
  f.AddDimension(p);

  SqmOptions options;
  options.gamma = gamma;
  options.mu = mu;
  options.seed = seed;
  options.quantize_coefficients = false;
  options.max_f_l2 = 1.0;
  SqmEvaluator evaluator(options);
  const SqmReport report = evaluator.Evaluate(f, x).ValueOrDie();
  return static_cast<double>(report.raw[0]);
}

TEST(SqmAuditTest, FullPipelineRespectsCalibratedEpsilon) {
  const double gamma = 16.0;
  const double epsilon = 1.0;
  const double delta = 1e-5;
  // Lemma-4-style sensitivity for this one-dimensional degree-2 release:
  // Delta_2 = gamma^2 * max|f| + quantization overhead (+n as in PCA).
  const double d2 = gamma * gamma * 0.5 + 2.0;
  const double mu =
      CalibrateSkellamMuSingleRelease(epsilon, delta, d2 * d2, d2)
          .ValueOrDie();

  AuditOptions audit;
  audit.trials = 25000;
  audit.delta = delta;
  const AuditResult result =
      AuditEpsilonLowerBound(
          [&](uint64_t seed) {
            return RunSqmRelease(false, gamma, mu, seed);
          },
          [&](uint64_t seed) {
            return RunSqmRelease(true, gamma, mu, seed);
          },
          audit)
          .ValueOrDie();
  // The audited lower bound must not exceed the guarantee, modulo
  // estimation slack.
  EXPECT_LT(result.epsilon_lower_bound, epsilon + 0.25)
      << "events=" << result.events_evaluated;
}

TEST(SqmAuditTest, UndersizedNoiseIsDetected) {
  // Sanity of the audit itself: with 1000x less noise than calibrated the
  // neighboring releases separate almost deterministically and the audit
  // must flag a large epsilon.
  const double gamma = 16.0;
  const double d2 = gamma * gamma * 0.5 + 2.0;
  const double mu =
      CalibrateSkellamMuSingleRelease(1.0, 1e-5, d2 * d2, d2)
          .ValueOrDie() /
      100000.0;

  AuditOptions audit;
  audit.trials = 8000;
  const AuditResult result =
      AuditEpsilonLowerBound(
          [&](uint64_t seed) {
            return RunSqmRelease(false, gamma, mu, seed);
          },
          [&](uint64_t seed) {
            return RunSqmRelease(true, gamma, mu, seed);
          },
          audit)
          .ValueOrDie();
  EXPECT_GT(result.epsilon_lower_bound, 2.0);
}

}  // namespace
}  // namespace sqm
