#include "core/report_io.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace sqm {
namespace {

TEST(JsonWriterTest, EmptyObject) {
  JsonWriter writer;
  writer.BeginObject().EndObject();
  EXPECT_EQ(writer.str(), "{}");
}

TEST(JsonWriterTest, ScalarFields) {
  JsonWriter writer;
  writer.BeginObject()
      .Field("a", int64_t{-3})
      .Field("b", uint64_t{7})
      .Field("c", 1.5)
      .Field("d", std::string("hi"))
      .Field("e", true)
      .EndObject();
  EXPECT_EQ(writer.str(),
            "{\"a\":-3,\"b\":7,\"c\":1.5,\"d\":\"hi\",\"e\":true}");
}

TEST(JsonWriterTest, NestedArraysAndObjects) {
  JsonWriter writer;
  writer.BeginObject();
  writer.BeginArray("xs").Value(int64_t{1}).Value(int64_t{2}).EndArray();
  writer.Key("inner").BeginObject().Field("y", 0.25).EndObject();
  writer.EndObject();
  EXPECT_EQ(writer.str(), "{\"xs\":[1,2],\"inner\":{\"y\":0.25}}");
}

TEST(JsonWriterTest, EscapesStrings) {
  JsonWriter writer;
  writer.BeginObject()
      .Field("s", std::string("a\"b\\c\nd"))
      .EndObject();
  EXPECT_EQ(writer.str(), "{\"s\":\"a\\\"b\\\\c\\nd\"}");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter writer;
  writer.BeginObject()
      .Field("nan", std::nan(""))
      .EndObject();
  EXPECT_EQ(writer.str(), "{\"nan\":null}");
}

TEST(ReportIoTest, NetworkStatsShape) {
  NetworkStats stats;
  stats.messages = 12;
  stats.field_elements = 34;
  stats.rounds = 5;
  // bytes are tracked at Send time from the serialized element width, not
  // recomputed from field_elements, so a hand-filled struct carries them
  // explicitly.
  stats.wire_bytes = 272;
  const std::string json = NetworkStatsToJson(stats);
  EXPECT_EQ(json,
            "{\"messages\":12,\"field_elements\":34,\"bytes\":272,"
            "\"rounds\":5}");
}

TEST(ReportIoTest, TransportStatsShape) {
  TransportStats stats;
  stats.num_parties = 3;
  stats.totals.messages = 6;
  stats.totals.field_elements = 18;
  stats.totals.wire_bytes = 144;
  stats.totals.rounds = 2;
  ChannelStats channel;
  channel.from = 0;
  channel.to = 1;
  channel.messages = 2;
  channel.field_elements = 6;
  channel.wire_bytes = 48;
  stats.channels.push_back(channel);
  PhaseStats phase;
  phase.phase = "mul";
  phase.traffic.messages = 6;
  stats.phases.push_back(phase);
  stats.retries = 1;
  stats.simulated_seconds = 0.2;
  const std::string json = TransportStatsToJson(stats);
  EXPECT_NE(json.find("\"num_parties\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"channels\":[{\"from\":0,\"to\":1,\"messages\":2,"
                      "\"field_elements\":6,\"bytes\":48}]"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"phases\":[{\"phase\":\"mul\",\"messages\":6,"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"retries\":1"), std::string::npos);
  EXPECT_NE(json.find("\"simulated_seconds\":0.2"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(ReportIoTest, SqmReportContainsAllSections) {
  SqmReport report;
  report.estimate = {1.5, -2.0};
  report.raw = {3, -4};
  report.timing.quantize_seconds = 0.25;
  report.network.messages = 9;
  const std::string json = SqmReportToJson(report);
  EXPECT_NE(json.find("\"estimate\":[1.5,-2]"), std::string::npos) << json;
  EXPECT_NE(json.find("\"raw\":[3,-4]"), std::string::npos);
  EXPECT_NE(json.find("\"quantize_seconds\":0.25"), std::string::npos);
  EXPECT_NE(json.find("\"messages\":9"), std::string::npos);
  // Balanced braces.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

}  // namespace
}  // namespace sqm
