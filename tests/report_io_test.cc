#include "core/report_io.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace sqm {
namespace {

TEST(JsonWriterTest, EmptyObject) {
  JsonWriter writer;
  writer.BeginObject().EndObject();
  EXPECT_EQ(writer.str(), "{}");
}

TEST(JsonWriterTest, ScalarFields) {
  JsonWriter writer;
  writer.BeginObject()
      .Field("a", int64_t{-3})
      .Field("b", uint64_t{7})
      .Field("c", 1.5)
      .Field("d", std::string("hi"))
      .Field("e", true)
      .EndObject();
  EXPECT_EQ(writer.str(),
            "{\"a\":-3,\"b\":7,\"c\":1.5,\"d\":\"hi\",\"e\":true}");
}

TEST(JsonWriterTest, NestedArraysAndObjects) {
  JsonWriter writer;
  writer.BeginObject();
  writer.BeginArray("xs").Value(int64_t{1}).Value(int64_t{2}).EndArray();
  writer.Key("inner").BeginObject().Field("y", 0.25).EndObject();
  writer.EndObject();
  EXPECT_EQ(writer.str(), "{\"xs\":[1,2],\"inner\":{\"y\":0.25}}");
}

TEST(JsonWriterTest, EscapesStrings) {
  JsonWriter writer;
  writer.BeginObject()
      .Field("s", std::string("a\"b\\c\nd"))
      .EndObject();
  EXPECT_EQ(writer.str(), "{\"s\":\"a\\\"b\\\\c\\nd\"}");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter writer;
  writer.BeginObject()
      .Field("nan", std::nan(""))
      .EndObject();
  EXPECT_EQ(writer.str(), "{\"nan\":null}");
}

TEST(ReportIoTest, NetworkStatsShape) {
  NetworkStats stats;
  stats.messages = 12;
  stats.field_elements = 34;
  stats.rounds = 5;
  // bytes are tracked at Send time from the serialized element width, not
  // recomputed from field_elements, so a hand-filled struct carries them
  // explicitly.
  stats.wire_bytes = 272;
  const std::string json = NetworkStatsToJson(stats);
  EXPECT_EQ(json,
            "{\"messages\":12,\"field_elements\":34,\"bytes\":272,"
            "\"rounds\":5}");
}

TEST(ReportIoTest, TransportStatsShape) {
  TransportStats stats;
  stats.num_parties = 3;
  stats.totals.messages = 6;
  stats.totals.field_elements = 18;
  stats.totals.wire_bytes = 144;
  stats.totals.rounds = 2;
  ChannelStats channel;
  channel.from = 0;
  channel.to = 1;
  channel.messages = 2;
  channel.field_elements = 6;
  channel.wire_bytes = 48;
  stats.channels.push_back(channel);
  PhaseStats phase;
  phase.phase = "mul";
  phase.traffic.messages = 6;
  stats.phases.push_back(phase);
  stats.retries = 1;
  stats.simulated_seconds = 0.2;
  const std::string json = TransportStatsToJson(stats);
  EXPECT_NE(json.find("\"num_parties\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"channels\":[{\"from\":0,\"to\":1,\"messages\":2,"
                      "\"field_elements\":6,\"bytes\":48}]"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"phases\":[{\"phase\":\"mul\",\"messages\":6,"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"retries\":1"), std::string::npos);
  EXPECT_NE(json.find("\"simulated_seconds\":0.2"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(ReportIoTest, SqmReportContainsAllSections) {
  SqmReport report;
  report.estimate = {1.5, -2.0};
  report.raw = {3, -4};
  report.timing.quantize_seconds = 0.25;
  report.network.messages = 9;
  const std::string json = SqmReportToJson(report);
  EXPECT_NE(json.find("\"estimate\":[1.5,-2]"), std::string::npos) << json;
  EXPECT_NE(json.find("\"raw\":[3,-4]"), std::string::npos);
  EXPECT_NE(json.find("\"quantize_seconds\":0.25"), std::string::npos);
  EXPECT_NE(json.find("\"messages\":9"), std::string::npos);
  // Balanced braces.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

// ---------------------------------------------------------------------------
// JSON parsing and report round-trips.

TEST(JsonParserTest, ParsesScalarsAndContainers) {
  const auto parsed = ParseJson(
      "{\"a\": [1, -2, 3.5], \"b\": {\"c\": \"x\\ny\", \"d\": true, "
      "\"e\": null}}");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& root = parsed.ValueOrDie();
  ASSERT_EQ(root.kind, JsonValue::Kind::kObject);
  const JsonValue* a = root.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items.size(), 3u);
  EXPECT_TRUE(a->items[0].is_integer);
  EXPECT_EQ(a->items[0].uint_value, 1u);
  EXPECT_TRUE(a->items[1].is_negative);
  EXPECT_EQ(a->items[1].int_value, -2);
  EXPECT_FALSE(a->items[2].is_integer);
  EXPECT_DOUBLE_EQ(a->items[2].number, 3.5);
  const JsonValue* b = root.Find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->Find("c")->string_value, "x\ny");
  EXPECT_TRUE(b->Find("d")->bool_value);
  EXPECT_EQ(b->Find("e")->kind, JsonValue::Kind::kNull);
}

TEST(JsonParserTest, KeepsFieldElementsExactAboveDoublePrecision) {
  // 2^61 - 2 = 2305843009213693950 is not representable as a double; the
  // parser must preserve the exact integer for transcript payloads.
  const auto parsed = ParseJson("[2305843009213693950]");
  ASSERT_TRUE(parsed.ok());
  const JsonValue& element = parsed.ValueOrDie().items[0];
  ASSERT_TRUE(element.is_integer);
  EXPECT_EQ(element.uint_value, 2305843009213693950ULL);
}

TEST(JsonParserTest, MalformedDocumentsFailWithStatusNotCrash) {
  const char* kBad[] = {
      "",                      // empty
      "{",                     // truncated object
      "[1,2",                  // truncated array
      "{\"a\":}",              // missing value
      "{\"a\":1,}",            // trailing comma
      "{'a':1}",               // wrong quotes
      "{\"a\":1} trailing",    // garbage after document
      "{\"s\":\"\\q\"}",       // bad escape
      "{\"s\":\"unterminated", // unterminated string
      "nullx",                 // keyword with suffix
      "01",                    // leading zero
      "{\"a\":+1}",            // explicit plus
      "\"\x01\"",              // raw control character
  };
  for (const char* text : kBad) {
    const auto parsed = ParseJson(text);
    EXPECT_FALSE(parsed.ok()) << "accepted malformed JSON: " << text;
    EXPECT_EQ(parsed.status().code(), StatusCode::kIoError);
    EXPECT_NE(parsed.status().message().find("byte"), std::string::npos)
        << "error should name the offending byte offset: "
        << parsed.status().ToString();
  }
}

TEST(JsonParserTest, RejectsPathologicallyDeepNesting) {
  std::string deep;
  for (int i = 0; i < 300; ++i) deep += '[';
  for (int i = 0; i < 300; ++i) deep += ']';
  const auto parsed = ParseJson(deep);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("deep"), std::string::npos)
      << parsed.status().ToString();
}

TEST(ReportIoTest, SqmReportRoundTripsThroughJson) {
  SqmReport report;
  report.estimate = {1.5, -2.25, 0.0};
  report.raw = {3, -4, 0};
  report.timing.quantize_seconds = 0.25;
  report.timing.noise_sampling_seconds = 0.125;
  report.timing.mpc_compute_seconds = 1.5;
  report.timing.simulated_network_seconds = 0.75;
  report.timing.noise_injection_seconds = 0.0625;
  report.network.messages = 9;
  report.network.field_elements = 27;
  report.network.rounds = 4;
  report.dropout.policy = DropoutPolicy::kTopUp;
  report.dropout.num_parties = 5;
  report.dropout.num_dropped = 2;
  report.dropout.survivors = {0, 2, 4};
  report.dropout.configured_mu = 16.0;
  report.dropout.realized_mu = 9.6;
  report.dropout.topup_mu = 6.4;
  report.dropout.configured_epsilon = 0.5;
  report.dropout.realized_epsilon = 0.8125;
  report.dropout.delta = 1e-6;
  report.dropout.best_alpha = 12.5;
  report.dropout.mpc_attempts = 3;
  report.dropout.resumed_from_level = 1;

  const std::string json = SqmReportToJson(report);
  const auto parsed = SqmReportFromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const SqmReport& back = parsed.ValueOrDie();
  EXPECT_EQ(back.estimate, report.estimate);
  EXPECT_EQ(back.raw, report.raw);
  EXPECT_EQ(back.timing.quantize_seconds, report.timing.quantize_seconds);
  EXPECT_EQ(back.timing.noise_injection_seconds,
            report.timing.noise_injection_seconds);
  EXPECT_EQ(back.network.messages, report.network.messages);
  EXPECT_EQ(back.network.field_elements, report.network.field_elements);
  EXPECT_EQ(back.network.rounds, report.network.rounds);
  EXPECT_EQ(back.dropout.policy, DropoutPolicy::kTopUp);
  EXPECT_EQ(back.dropout.num_parties, 5u);
  EXPECT_EQ(back.dropout.num_dropped, 2u);
  EXPECT_EQ(back.dropout.survivors, report.dropout.survivors);
  EXPECT_EQ(back.dropout.configured_mu, 16.0);
  EXPECT_EQ(back.dropout.realized_mu, 9.6);
  EXPECT_EQ(back.dropout.topup_mu, 6.4);
  EXPECT_EQ(back.dropout.realized_epsilon, 0.8125);
  EXPECT_EQ(back.dropout.delta, 1e-6);
  EXPECT_EQ(back.dropout.best_alpha, 12.5);
  EXPECT_EQ(back.dropout.mpc_attempts, 3u);
  EXPECT_EQ(back.dropout.resumed_from_level, 1u);
}

TEST(ReportIoTest, SqmReportFromJsonRejectsStructuralMistakes) {
  SqmReport report;
  report.estimate = {1.0};
  report.raw = {1};
  const std::string good = SqmReportToJson(report);
  ASSERT_TRUE(SqmReportFromJson(good).ok());

  // Whole-document damage.
  EXPECT_FALSE(SqmReportFromJson("").ok());
  EXPECT_FALSE(SqmReportFromJson("[]").ok());
  EXPECT_FALSE(SqmReportFromJson(good.substr(0, good.size() / 2)).ok());

  // A wrong-typed member: "raw" holding strings.
  std::string bad = good;
  const size_t raw_pos = bad.find("\"raw\":[1]");
  ASSERT_NE(raw_pos, std::string::npos);
  bad.replace(raw_pos, 9, "\"raw\":[\"x\"]");
  const auto typed = SqmReportFromJson(bad);
  ASSERT_FALSE(typed.ok());
  EXPECT_EQ(typed.status().code(), StatusCode::kIoError);

  // An unknown dropout policy string.
  std::string policy = good;
  const size_t policy_pos = policy.find("\"policy\":\"abort\"");
  ASSERT_NE(policy_pos, std::string::npos);
  policy.replace(policy_pos, 16, "\"policy\":\"shrug\"");
  EXPECT_FALSE(SqmReportFromJson(policy).ok());
}

TEST(ReportIoTest, PrivacyLedgerRoundTripsThroughJson) {
  SqmReport report;
  report.estimate = {1.0};
  report.raw = {1};
  obs::LedgerEntry spend;
  spend.sequence = 7;
  spend.elapsed_seconds = 0.5;
  spend.mechanism = "skellam_dropout";
  spend.label = "sqm_release";
  spend.mu = 80.0;
  spend.gamma = 256.0;
  spend.dimension = 9;
  spend.l1_sensitivity = 2.0;
  spend.l2_sensitivity = 1.0;
  spend.sampling_rate = 1.0;
  spend.count = 1;
  spend.epsilon = 0.75;
  spend.delta = 1e-5;
  spend.best_alpha = 8.5;
  spend.cumulative_epsilon = 0.75;
  spend.contributors = 4;
  spend.expected_contributors = 5;
  spend.deficit_mu = 20.0;
  report.ledger.push_back(spend);

  const std::string json = SqmReportToJson(report);
  EXPECT_NE(json.find("\"privacy_ledger\":["), std::string::npos);
  const auto parsed = SqmReportFromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.ValueOrDie().ledger.size(), 1u);
  const obs::LedgerEntry& back = parsed.ValueOrDie().ledger[0];
  EXPECT_EQ(back.sequence, 7u);
  EXPECT_EQ(back.mechanism, "skellam_dropout");
  EXPECT_EQ(back.label, "sqm_release");
  EXPECT_EQ(back.mu, 80.0);
  EXPECT_EQ(back.gamma, 256.0);
  EXPECT_EQ(back.dimension, 9u);
  EXPECT_EQ(back.l1_sensitivity, 2.0);
  EXPECT_EQ(back.epsilon, 0.75);
  EXPECT_EQ(back.delta, 1e-5);
  EXPECT_EQ(back.best_alpha, 8.5);
  EXPECT_EQ(back.cumulative_epsilon, 0.75);
  EXPECT_EQ(back.contributors, 4u);
  EXPECT_EQ(back.expected_contributors, 5u);
  EXPECT_EQ(back.deficit_mu, 20.0);
}

TEST(ReportIoTest, MissingPrivacyLedgerBlockLoadsAsEmpty) {
  // Reports written before the observability release have no
  // "privacy_ledger" member; loading them must succeed with an empty
  // ledger, not fail on a missing key.
  SqmReport report;
  report.estimate = {1.0};
  report.raw = {1};
  std::string json = SqmReportToJson(report);
  const size_t pos = json.find(",\"privacy_ledger\":[]");
  ASSERT_NE(pos, std::string::npos);
  json.erase(pos, std::string(",\"privacy_ledger\":[]").size());

  const auto parsed = SqmReportFromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed.ValueOrDie().ledger.empty());
}

TEST(ReportIoTest, MalformedLedgerEntryFailsWithStatus) {
  SqmReport report;
  report.estimate = {1.0};
  report.raw = {1};
  std::string json = SqmReportToJson(report);
  const size_t pos = json.find("\"privacy_ledger\":[]");
  ASSERT_NE(pos, std::string::npos);
  // An entry missing every required field.
  json.replace(pos, std::string("\"privacy_ledger\":[]").size(),
               "\"privacy_ledger\":[{\"mechanism\":\"skellam\"}]");
  const auto parsed = SqmReportFromJson(json);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kIoError);
}

TEST(ReportIoTest, DropoutPolicyStringsRoundTrip) {
  for (DropoutPolicy policy : {DropoutPolicy::kAbort, DropoutPolicy::kDegrade,
                               DropoutPolicy::kTopUp}) {
    const auto back = DropoutPolicyFromString(DropoutPolicyToString(policy));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.ValueOrDie(), policy);
  }
  EXPECT_FALSE(DropoutPolicyFromString("nonsense").ok());
}

}  // namespace
}  // namespace sqm
