#include "core/report_io.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace sqm {
namespace {

TEST(JsonWriterTest, EmptyObject) {
  JsonWriter writer;
  writer.BeginObject().EndObject();
  EXPECT_EQ(writer.str(), "{}");
}

TEST(JsonWriterTest, ScalarFields) {
  JsonWriter writer;
  writer.BeginObject()
      .Field("a", int64_t{-3})
      .Field("b", uint64_t{7})
      .Field("c", 1.5)
      .Field("d", std::string("hi"))
      .Field("e", true)
      .EndObject();
  EXPECT_EQ(writer.str(),
            "{\"a\":-3,\"b\":7,\"c\":1.5,\"d\":\"hi\",\"e\":true}");
}

TEST(JsonWriterTest, NestedArraysAndObjects) {
  JsonWriter writer;
  writer.BeginObject();
  writer.BeginArray("xs").Value(int64_t{1}).Value(int64_t{2}).EndArray();
  writer.Key("inner").BeginObject().Field("y", 0.25).EndObject();
  writer.EndObject();
  EXPECT_EQ(writer.str(), "{\"xs\":[1,2],\"inner\":{\"y\":0.25}}");
}

TEST(JsonWriterTest, EscapesStrings) {
  JsonWriter writer;
  writer.BeginObject()
      .Field("s", std::string("a\"b\\c\nd"))
      .EndObject();
  EXPECT_EQ(writer.str(), "{\"s\":\"a\\\"b\\\\c\\nd\"}");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter writer;
  writer.BeginObject()
      .Field("nan", std::nan(""))
      .EndObject();
  EXPECT_EQ(writer.str(), "{\"nan\":null}");
}

TEST(ReportIoTest, NetworkStatsShape) {
  NetworkStats stats;
  stats.messages = 12;
  stats.field_elements = 34;
  stats.rounds = 5;
  const std::string json = NetworkStatsToJson(stats);
  EXPECT_EQ(json,
            "{\"messages\":12,\"field_elements\":34,\"bytes\":272,"
            "\"rounds\":5}");
}

TEST(ReportIoTest, SqmReportContainsAllSections) {
  SqmReport report;
  report.estimate = {1.5, -2.0};
  report.raw = {3, -4};
  report.timing.quantize_seconds = 0.25;
  report.network.messages = 9;
  const std::string json = SqmReportToJson(report);
  EXPECT_NE(json.find("\"estimate\":[1.5,-2]"), std::string::npos) << json;
  EXPECT_NE(json.find("\"raw\":[3,-4]"), std::string::npos);
  EXPECT_NE(json.find("\"quantize_seconds\":0.25"), std::string::npos);
  EXPECT_NE(json.find("\"messages\":9"), std::string::npos);
  // Balanced braces.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

}  // namespace
}  // namespace sqm
