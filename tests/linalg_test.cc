#include "math/linalg.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sqm {
namespace {

TEST(LinalgTest, MatMulSmall) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  EXPECT_EQ(MatMul(a, b), (Matrix{{19, 22}, {43, 50}}));
}

TEST(LinalgTest, MatMulIdentity) {
  Matrix a{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(MatMul(a, Matrix::Identity(3)), a);
  EXPECT_EQ(MatMul(Matrix::Identity(2), a), a);
}

TEST(LinalgTest, GramEqualsTransposeProduct) {
  Matrix x{{1, 2, 0}, {0, 1, 3}, {-1, 0.5, 2}};
  const Matrix gram = Gram(x);
  const Matrix reference = MatMul(x.Transpose(), x);
  ASSERT_EQ(gram.rows(), reference.rows());
  for (size_t i = 0; i < gram.rows(); ++i)
    for (size_t j = 0; j < gram.cols(); ++j)
      EXPECT_NEAR(gram(i, j), reference(i, j), 1e-12);
}

TEST(LinalgTest, GramIsSymmetric) {
  Matrix x{{1.5, -2, 0.25}, {3, 0, 1}};
  const Matrix gram = Gram(x);
  for (size_t i = 0; i < gram.rows(); ++i)
    for (size_t j = 0; j < gram.cols(); ++j)
      EXPECT_DOUBLE_EQ(gram(i, j), gram(j, i));
}

TEST(LinalgTest, MatVec) {
  Matrix a{{1, 2}, {3, 4}};
  EXPECT_EQ(MatVec(a, {1, 1}), (std::vector<double>{3, 7}));
}

TEST(LinalgTest, DotAndNorms) {
  EXPECT_DOUBLE_EQ(Dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_DOUBLE_EQ(Norm2({3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(Norm1({-3, 4, -5}), 12.0);
}

TEST(LinalgTest, FrobeniusNorm) {
  Matrix a{{3, 0}, {0, 4}};
  EXPECT_DOUBLE_EQ(FrobeniusNorm(a), 5.0);
}

TEST(LinalgTest, ClipNormScalesDown) {
  std::vector<double> v{3, 4};
  ClipNorm(v, 1.0);
  EXPECT_NEAR(Norm2(v), 1.0, 1e-12);
  EXPECT_NEAR(v[0] / v[1], 0.75, 1e-12);  // Direction preserved.
}

TEST(LinalgTest, ClipNormNoOpWithinBound) {
  std::vector<double> v{0.3, 0.4};
  ClipNorm(v, 1.0);
  EXPECT_DOUBLE_EQ(v[0], 0.3);
  EXPECT_DOUBLE_EQ(v[1], 0.4);
}

TEST(LinalgTest, CapturedVarianceOfFullBasisIsTotalEnergy) {
  Matrix x{{1, 2}, {3, 4}, {5, 6}};
  const double total = std::pow(FrobeniusNorm(x), 2);
  EXPECT_NEAR(CapturedVariance(x, Matrix::Identity(2)), total, 1e-9);
}

TEST(LinalgTest, OrthonormalizeProducesOrthonormalColumns) {
  Matrix a{{1, 1}, {1, 0}, {0, 1}};
  EXPECT_EQ(OrthonormalizeColumns(a), 2u);
  const std::vector<double> c0 = a.Col(0);
  const std::vector<double> c1 = a.Col(1);
  EXPECT_NEAR(Norm2(c0), 1.0, 1e-12);
  EXPECT_NEAR(Norm2(c1), 1.0, 1e-12);
  EXPECT_NEAR(Dot(c0, c1), 0.0, 1e-12);
}

TEST(LinalgTest, OrthonormalizeDetectsDependentColumns) {
  Matrix a{{1, 2}, {2, 4}, {3, 6}};  // Second column = 2 * first.
  EXPECT_EQ(OrthonormalizeColumns(a), 1u);
  EXPECT_NEAR(Norm2(a.Col(1)), 0.0, 1e-12);
}

}  // namespace
}  // namespace sqm
