#include "mpc/network.h"

#include <gtest/gtest.h>

namespace sqm {
namespace {

TEST(NetworkTest, SendReceiveFifo) {
  SimulatedNetwork net(3, 0.1);
  net.Send(0, 1, {10, 20});
  net.Send(0, 1, {30});
  EXPECT_TRUE(net.HasPending(0, 1));
  EXPECT_EQ(net.Receive(0, 1).ValueOrDie(),
            (std::vector<Field::Element>{10, 20}));
  EXPECT_EQ(net.Receive(0, 1).ValueOrDie(),
            (std::vector<Field::Element>{30}));
  EXPECT_FALSE(net.HasPending(0, 1));
}

TEST(NetworkTest, ReceiveOnEmptyChannelFails) {
  SimulatedNetwork net(2, 0.0);
  EXPECT_EQ(net.Receive(0, 1).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(NetworkTest, ChannelsAreIndependent) {
  SimulatedNetwork net(3, 0.0);
  net.Send(0, 1, {1});
  net.Send(1, 0, {2});
  net.Send(2, 1, {3});
  EXPECT_EQ(net.Receive(1, 0).ValueOrDie()[0], 2u);
  EXPECT_EQ(net.Receive(0, 1).ValueOrDie()[0], 1u);
  EXPECT_EQ(net.Receive(2, 1).ValueOrDie()[0], 3u);
}

TEST(NetworkTest, SelfSendDoesNotCountAsTraffic) {
  SimulatedNetwork net(2, 0.0);
  net.Send(0, 0, {1, 2, 3});
  EXPECT_EQ(net.stats().messages, 0u);
  EXPECT_EQ(net.stats().field_elements, 0u);
  EXPECT_EQ(net.Receive(0, 0).ValueOrDie().size(), 3u);
}

TEST(NetworkTest, StatsCountMessagesAndElements) {
  SimulatedNetwork net(3, 0.0);
  net.Send(0, 1, {1, 2});
  net.Send(1, 2, {3});
  EXPECT_EQ(net.stats().messages, 2u);
  EXPECT_EQ(net.stats().field_elements, 3u);
  EXPECT_EQ(net.stats().bytes(), 3 * sizeof(Field::Element));
}

TEST(NetworkTest, SimulatedClockAdvancesPerRound) {
  SimulatedNetwork net(2, 0.1);
  EXPECT_DOUBLE_EQ(net.SimulatedSeconds(), 0.0);
  net.EndRound();
  net.EndRound();
  net.EndRound();
  EXPECT_DOUBLE_EQ(net.SimulatedSeconds(), 0.3);
  EXPECT_EQ(net.stats().rounds, 3u);
}

TEST(NetworkTest, ResetClearsEverything) {
  SimulatedNetwork net(2, 0.1);
  net.Send(0, 1, {1});
  net.EndRound();
  net.Reset();
  EXPECT_FALSE(net.HasPending(0, 1));
  EXPECT_EQ(net.stats().messages, 0u);
  EXPECT_DOUBLE_EQ(net.SimulatedSeconds(), 0.0);
}

}  // namespace
}  // namespace sqm
