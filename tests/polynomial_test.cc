#include "poly/polynomial.h"

#include <gtest/gtest.h>

namespace sqm {
namespace {

Polynomial PaperExample() {
  // The paper's running example: f(x) = x0^3 + 1.5*x1*x2 + 2 (degree 3).
  Polynomial p;
  p.AddTerm(Monomial::Power(1.0, 0, 3));
  p.AddTerm(Monomial(1.5, {{1, 1}, {2, 1}}));
  p.AddTerm(Monomial(2.0));
  return p;
}

TEST(PolynomialTest, PaperExampleEvaluates) {
  const Polynomial p = PaperExample();
  EXPECT_EQ(p.Degree(), 3u);
  EXPECT_EQ(p.MinArity(), 3u);
  EXPECT_EQ(p.num_terms(), 3u);
  // 2^3 + 1.5*3*4 + 2 = 8 + 18 + 2 = 28.
  EXPECT_DOUBLE_EQ(p.Evaluate({2, 3, 4}), 28.0);
}

TEST(PolynomialTest, EmptyPolynomialIsZero) {
  const Polynomial p;
  EXPECT_EQ(p.Degree(), 0u);
  EXPECT_DOUBLE_EQ(p.Evaluate({1, 2, 3}), 0.0);
  EXPECT_EQ(p.ToString(), "0");
}

TEST(PolynomialTest, EvaluateSumOverRows) {
  Polynomial p;
  p.AddTerm(Monomial::Power(1.0, 0, 1));
  const std::vector<std::vector<double>> rows{{1}, {2}, {3.5}};
  EXPECT_DOUBLE_EQ(p.EvaluateSum(rows), 6.5);
}

TEST(PolynomialVectorTest, DegreeIsMaxOverDims) {
  PolynomialVector f;
  Polynomial p1;
  p1.AddTerm(Monomial::Power(1.0, 0, 1));
  Polynomial p2;
  p2.AddTerm(Monomial::Power(1.0, 0, 4));
  f.AddDimension(p1).AddDimension(p2);
  EXPECT_EQ(f.Degree(), 4u);
  EXPECT_EQ(f.output_dim(), 2u);
}

TEST(PolynomialVectorTest, EvaluateAllDims) {
  PolynomialVector f;
  Polynomial p1;
  p1.AddTerm(Monomial::Power(2.0, 0, 1));
  Polynomial p2;
  p2.AddTerm(Monomial(1.0, {{0, 1}, {1, 1}}));
  f.AddDimension(p1).AddDimension(p2);
  const std::vector<double> out = f.Evaluate({3, 4});
  EXPECT_DOUBLE_EQ(out[0], 6.0);
  EXPECT_DOUBLE_EQ(out[1], 12.0);
}

TEST(PolynomialVectorTest, EvaluateSumIsLinear) {
  PolynomialVector f;
  Polynomial p;
  p.AddTerm(Monomial::Power(1.0, 0, 2));
  f.AddDimension(p);
  const std::vector<std::vector<double>> rows{{1}, {2}, {3}};
  EXPECT_DOUBLE_EQ(f.EvaluateSum(rows)[0], 14.0);
}

TEST(PolynomialVectorTest, MaxTermsPerDimension) {
  PolynomialVector f;
  f.AddDimension(PaperExample());
  Polynomial single;
  single.AddTerm(Monomial(1.0));
  f.AddDimension(single);
  EXPECT_EQ(f.MaxTermsPerDimension(), 3u);
}

TEST(PolynomialVectorTest, OuterProductMatchesGram) {
  // f(x) = x^T x flattened: evaluating and summing over rows must equal the
  // Gram matrix entries.
  const PolynomialVector f = PolynomialVector::OuterProduct(3);
  EXPECT_EQ(f.output_dim(), 9u);
  EXPECT_EQ(f.Degree(), 2u);
  const std::vector<double> x{1, 2, 3};
  const std::vector<double> out = f.Evaluate(x);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(out[i * 3 + j], x[i] * x[j]);
    }
  }
}

TEST(PolynomialVectorTest, ToStringJoinsDims) {
  PolynomialVector f = PolynomialVector::OuterProduct(2);
  const std::string s = f.ToString();
  EXPECT_EQ(s.front(), '(');
  EXPECT_EQ(s.back(), ')');
}

}  // namespace
}  // namespace sqm
