// fuzz_smoke: seeded adversarial smoke run, wired into ctest and intended
// to be re-run under -DSQM_SANITIZE=thread. Two sweeps:
//
//   1. schedule fuzzing — N seeded iterations of the BGW probe over
//      ThreadedTransport with derived fault mixes, transcript-compared
//      against the lockstep reference (plus the threaded message storm);
//   2. adversary conformance — every tamper kind against the checked BGW
//      probe, asserting detect-or-release-unchanged.
//
// Usage: fuzz_smoke [--iterations N] [--seed S]
// On failure it prints the iteration seed; reproduce with
//   fuzz_smoke --iterations 1 --seed <S>
// or ScheduleFuzzer::RunIteration(<S>) under a debugger.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "mpc/field.h"
#include "mpc/protocol.h"
#include "mpc/shamir.h"
#include "net/lockstep.h"
#include "testing/schedule_fuzz.h"
#include "testing/tamper.h"

namespace {

using sqm::BgwProtocol;
using sqm::Field;
using sqm::LockstepTransport;
using sqm::ShamirScheme;
using sqm::SharedVector;
using sqm::Status;
using sqm::testing::ByzantineInterceptor;
using sqm::testing::ScheduleFuzzOptions;
using sqm::testing::ScheduleFuzzer;
using sqm::testing::TamperPolicy;

/// One checked BGW probe under the given interceptor; reports whether the
/// run failed (detected) and, if it released, whether the release matched.
bool DetectOrUnchanged(TamperPolicy policy, std::string* what) {
  constexpr size_t kParties = 5;
  constexpr size_t kThreshold = 2;
  const std::vector<int64_t> x0 = {3, -4, 5};
  const std::vector<int64_t> x1 = {-7, 2, 9};
  const std::vector<int64_t> expected = {-21, -8, 45};

  ByzantineInterceptor byzantine({policy});
  LockstepTransport network(kParties, 0.0, Field::kWireBytes);
  network.SetInterceptor(&byzantine);
  BgwProtocol protocol(ShamirScheme(kParties, kThreshold), &network, 5);
  protocol.set_verify_sharings(true);
  auto run = [&]() -> sqm::Result<std::vector<int64_t>> {
    SQM_ASSIGN_OR_RETURN(
        const SharedVector a,
        protocol.ShareFromPartyChecked(0, Field::EncodeVector(x0)));
    SQM_ASSIGN_OR_RETURN(
        const SharedVector b,
        protocol.ShareFromPartyChecked(1, Field::EncodeVector(x1)));
    SQM_ASSIGN_OR_RETURN(const SharedVector prod, protocol.Mul(a, b));
    return protocol.OpenSignedChecked(prod);
  };
  const auto result = run();
  network.SetInterceptor(nullptr);
  if (!result.ok()) return true;  // Detected: fine.
  if (result.ValueOrDie() == expected) return true;  // Unchanged: fine.
  *what = std::string(sqm::testing::TamperKindToString(policy.kind)) +
          " on phase \"" + policy.target.phase +
          "\" changed the release without an error";
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  ScheduleFuzzOptions options;
  options.iterations = 8;
  options.storm_rounds = 2;
  options.stop_on_failure = false;
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--iterations") == 0) {
      options.iterations = static_cast<size_t>(std::atoll(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      options.seed = std::strtoull(argv[i + 1], nullptr, 0);
    }
  }

  std::printf("fuzz_smoke: %zu schedule iterations from seed 0x%llx\n",
              options.iterations,
              static_cast<unsigned long long>(options.seed));
  ScheduleFuzzer fuzzer(options);
  const auto report = fuzzer.Run();
  if (!report.ok()) {
    std::printf("FAIL: fuzz harness error: %s\n",
                report.status().ToString().c_str());
    return 1;
  }
  if (report.ValueOrDie().failures > 0) {
    std::printf(
        "FAIL: %zu/%zu iterations broke an invariant.\n"
        "  first failing seed: %llu\n  %s\n"
        "  reproduce: fuzz_smoke --iterations 1 --seed %llu\n",
        report.ValueOrDie().failures, report.ValueOrDie().iterations_run,
        static_cast<unsigned long long>(
            report.ValueOrDie().first_failing_seed),
        report.ValueOrDie().first_failure.c_str(),
        static_cast<unsigned long long>(
            report.ValueOrDie().first_failing_seed));
    return 1;
  }
  std::printf(
      "  ok: %zu iterations (%llu drops, %llu delays, %llu reorders, "
      "%llu retries injected)\n",
      report.ValueOrDie().iterations_run,
      static_cast<unsigned long long>(report.ValueOrDie().drops_injected),
      static_cast<unsigned long long>(report.ValueOrDie().delays_injected),
      static_cast<unsigned long long>(report.ValueOrDie().reorders_injected),
      static_cast<unsigned long long>(report.ValueOrDie().retries));

  // Adversary conformance sweep: detect-or-unchanged for every kind/phase.
  const TamperPolicy::Kind kKinds[] = {
      TamperPolicy::Kind::kAdditive,    TamperPolicy::Kind::kBitFlip,
      TamperPolicy::Kind::kWrongDegree, TamperPolicy::Kind::kEquivocate,
      TamperPolicy::Kind::kReplay,      TamperPolicy::Kind::kSwallow,
  };
  const char* kPhases[] = {"input", "mul", "open"};
  size_t checks = 0;
  for (TamperPolicy::Kind kind : kKinds) {
    for (const char* phase : kPhases) {
      TamperPolicy policy;
      policy.kind = kind;
      policy.target.phase = phase;
      policy.magnitude = 7;
      policy.bit = 20;
      policy.degree = 3;
      std::string what;
      if (!DetectOrUnchanged(policy, &what)) {
        std::printf("FAIL: %s\n", what.c_str());
        return 1;
      }
      ++checks;
    }
  }
  std::printf("  ok: %zu tamper policies detect-or-unchanged\n", checks);
  std::printf("fuzz_smoke: PASS\n");
  return 0;
}
