#include "core/sqm.h"

#include <gtest/gtest.h>

#include <cmath>

#include "math/stats.h"
#include "sampling/rng.h"

namespace sqm {
namespace {

Matrix SmallDatabase(size_t rows, size_t cols, uint64_t seed) {
  Matrix x(rows, cols);
  Rng rng(seed);
  for (auto& v : x.data()) v = rng.NextDouble() - 0.5;
  return x;
}

std::vector<double> ExactSum(const PolynomialVector& f, const Matrix& x) {
  std::vector<std::vector<double>> rows;
  for (size_t i = 0; i < x.rows(); ++i) rows.push_back(x.Row(i));
  return f.EvaluateSum(rows);
}

TEST(SqmTest, NoiselessEstimateApproachesExactValue) {
  const Matrix x = SmallDatabase(40, 3, 1);
  const PolynomialVector f = PolynomialVector::OuterProduct(3);
  const std::vector<double> exact = ExactSum(f, x);

  SqmOptions options;
  options.mu = 0.0;
  options.gamma = 4096.0;
  options.quantize_coefficients = false;
  SqmEvaluator evaluator(options);
  const SqmReport report = evaluator.Evaluate(f, x).ValueOrDie();
  ASSERT_EQ(report.estimate.size(), exact.size());
  for (size_t t = 0; t < exact.size(); ++t) {
    EXPECT_NEAR(report.estimate[t], exact[t], 0.02) << "dim " << t;
  }
}

TEST(SqmTest, QuantizationErrorShrinksWithGamma) {
  const Matrix x = SmallDatabase(30, 2, 2);
  const PolynomialVector f = PolynomialVector::OuterProduct(2);
  const std::vector<double> exact = ExactSum(f, x);

  double prev_worst = 1e18;
  for (double gamma : {16.0, 128.0, 1024.0, 8192.0}) {
    SqmOptions options;
    options.mu = 0.0;
    options.gamma = gamma;
    options.quantize_coefficients = false;
    SqmEvaluator evaluator(options);
    const SqmReport report = evaluator.Evaluate(f, x).ValueOrDie();
    double worst = 0.0;
    for (size_t t = 0; t < exact.size(); ++t) {
      worst = std::max(worst, std::fabs(report.estimate[t] - exact[t]));
    }
    EXPECT_LE(worst, prev_worst * 1.5);  // Allow stochastic wiggle.
    prev_worst = worst;
  }
  EXPECT_LT(prev_worst, 5e-3);
}

TEST(SqmTest, CoefficientQuantizationHandlesMixedDegrees) {
  // f(x) = 0.5 x0 + 0.25 x0 x1 - 2: degrees 1, 2, 0 in one dimension.
  PolynomialVector f;
  Polynomial p;
  p.AddTerm(Monomial::Power(0.5, 0, 1));
  p.AddTerm(Monomial(0.25, {{0, 1}, {1, 1}}));
  p.AddTerm(Monomial(-2.0));
  f.AddDimension(p);

  const Matrix x = SmallDatabase(25, 2, 3);
  const std::vector<double> exact = ExactSum(f, x);

  SqmOptions options;
  options.mu = 0.0;
  options.gamma = 2048.0;
  options.max_f_l2 = 3.0;
  SqmEvaluator evaluator(options);
  const SqmReport report = evaluator.Evaluate(f, x).ValueOrDie();
  EXPECT_NEAR(report.estimate[0], exact[0], 0.05);
}

TEST(SqmTest, NoiseHasRequestedVariance) {
  // With a constant-zero data contribution the estimate is pure noise
  // Sk(mu) / gamma^lambda; check the variance across seeds.
  Matrix x(5, 2);  // All zeros.
  PolynomialVector f;
  Polynomial p;
  p.AddTerm(Monomial(1.0, {{0, 1}, {1, 1}}));
  f.AddDimension(p);

  const double gamma = 32.0;
  const double mu = 400.0;
  std::vector<double> draws;
  for (uint64_t seed = 0; seed < 3000; ++seed) {
    SqmOptions options;
    options.mu = mu;
    options.gamma = gamma;
    options.seed = seed;
    options.quantize_coefficients = false;
    SqmEvaluator evaluator(options);
    const SqmReport report = evaluator.Evaluate(f, x).ValueOrDie();
    draws.push_back(report.estimate[0] * gamma * gamma);
  }
  EXPECT_NEAR(Mean(draws), 0.0, 5.0 * std::sqrt(2.0 * mu / 3000.0));
  EXPECT_NEAR(Variance(draws), 2.0 * mu, 0.1 * 2.0 * mu);
}

TEST(SqmTest, BgwBackendMatchesPlaintextExactly) {
  // Same seed => same quantization and noise; the MPC layer is exact, so
  // the two backends must agree bit-for-bit.
  const Matrix x = SmallDatabase(6, 4, 4);
  const PolynomialVector f = PolynomialVector::OuterProduct(4);

  SqmOptions options;
  options.mu = 25.0;
  options.gamma = 64.0;
  options.seed = 99;
  options.quantize_coefficients = false;

  options.backend = MpcBackend::kPlaintext;
  const SqmReport plain =
      SqmEvaluator(options).Evaluate(f, x).ValueOrDie();

  options.backend = MpcBackend::kBgw;
  const SqmReport bgw = SqmEvaluator(options).Evaluate(f, x).ValueOrDie();

  EXPECT_EQ(plain.raw, bgw.raw);
  EXPECT_GT(bgw.network.messages, 0u);
  EXPECT_EQ(plain.network.messages, 0u);
}

TEST(SqmTest, BgwBackendWithCoefficientQuantization) {
  PolynomialVector f;
  Polynomial p;
  p.AddTerm(Monomial::Power(0.5, 0, 1));
  p.AddTerm(Monomial(0.25, {{0, 1}, {1, 1}}));
  p.AddTerm(Monomial(-1.0, {{2, 1}, {0, 1}}));
  f.AddDimension(p);
  const Matrix x = SmallDatabase(5, 3, 5);

  SqmOptions options;
  options.mu = 10.0;
  options.gamma = 32.0;
  options.seed = 7;
  options.max_f_l2 = 2.0;

  options.backend = MpcBackend::kPlaintext;
  const SqmReport plain =
      SqmEvaluator(options).Evaluate(f, x).ValueOrDie();
  options.backend = MpcBackend::kBgw;
  const SqmReport bgw = SqmEvaluator(options).Evaluate(f, x).ValueOrDie();
  EXPECT_EQ(plain.raw, bgw.raw);
}

TEST(SqmTest, FewerClientsThanColumnsSupported) {
  const Matrix x = SmallDatabase(6, 4, 6);
  const PolynomialVector f = PolynomialVector::OuterProduct(4);
  SqmOptions options;
  options.mu = 10.0;
  options.gamma = 64.0;
  options.num_clients = 2;
  options.quantize_coefficients = false;

  options.backend = MpcBackend::kPlaintext;
  const SqmReport plain =
      SqmEvaluator(options).Evaluate(f, x).ValueOrDie();
  options.backend = MpcBackend::kBgw;
  // With 2 clients BGW needs threshold < 1, which Shamir validation
  // rejects — expect a clean error, not a crash.
  EXPECT_FALSE(SqmEvaluator(options).Evaluate(f, x).ok());

  options.num_clients = 3;
  const SqmReport bgw = SqmEvaluator(options).Evaluate(f, x).ValueOrDie();
  options.backend = MpcBackend::kPlaintext;
  const SqmReport plain3 =
      SqmEvaluator(options).Evaluate(f, x).ValueOrDie();
  EXPECT_EQ(bgw.raw, plain3.raw);
  (void)plain;
}

TEST(SqmTest, InputValidation) {
  const Matrix x = SmallDatabase(5, 2, 7);
  const PolynomialVector f = PolynomialVector::OuterProduct(2);
  {
    SqmOptions options;
    options.gamma = 0.5;
    EXPECT_FALSE(SqmEvaluator(options).Evaluate(f, x).ok());
  }
  {
    SqmOptions options;
    options.mu = -1.0;
    EXPECT_FALSE(SqmEvaluator(options).Evaluate(f, x).ok());
  }
  {
    SqmOptions options;
    options.num_clients = 5;  // More clients than columns.
    EXPECT_FALSE(SqmEvaluator(options).Evaluate(f, x).ok());
  }
  {
    const PolynomialVector wide = PolynomialVector::OuterProduct(3);
    SqmOptions options;
    EXPECT_FALSE(SqmEvaluator(options).Evaluate(wide, x).ok());
  }
  {
    SqmOptions options;
    EXPECT_FALSE(
        SqmEvaluator(options).Evaluate(PolynomialVector(), x).ok());
  }
  {
    Matrix empty(0, 2);
    SqmOptions options;
    EXPECT_FALSE(SqmEvaluator(options).Evaluate(f, empty).ok());
  }
}

TEST(SqmTest, CapacityGuardTriggers) {
  const Matrix x = SmallDatabase(100, 2, 8);
  const PolynomialVector f = PolynomialVector::OuterProduct(2);
  SqmOptions options;
  options.gamma = 1e9;  // gamma^2 * m overflows 2^60.
  options.quantize_coefficients = false;
  const auto result = SqmEvaluator(options).Evaluate(f, x);
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST(SqmTest, TimingFieldsArePopulated) {
  const Matrix x = SmallDatabase(20, 3, 9);
  const PolynomialVector f = PolynomialVector::OuterProduct(3);
  SqmOptions options;
  options.mu = 100.0;
  options.quantize_coefficients = false;
  const SqmReport report =
      SqmEvaluator(options).Evaluate(f, x).ValueOrDie();
  EXPECT_GE(report.timing.quantize_seconds, 0.0);
  EXPECT_GE(report.timing.noise_sampling_seconds, 0.0);
  EXPECT_GT(report.timing.TotalSeconds(), 0.0);
}

TEST(SqmTest, SimulatedLatencyAccountedInBgw) {
  const Matrix x = SmallDatabase(4, 3, 10);
  const PolynomialVector f = PolynomialVector::OuterProduct(3);
  SqmOptions options;
  options.backend = MpcBackend::kBgw;
  options.network_latency_seconds = 0.1;
  options.quantize_coefficients = false;
  const SqmReport report =
      SqmEvaluator(options).Evaluate(f, x).ValueOrDie();
  EXPECT_GT(report.timing.simulated_network_seconds, 0.0);
  EXPECT_DOUBLE_EQ(report.timing.simulated_network_seconds,
                   0.1 * static_cast<double>(report.network.rounds));
}

}  // namespace
}  // namespace sqm
