#include "dp/audit.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dp/gaussian.h"
#include "dp/skellam.h"
#include "sampling/gaussian_sampler.h"
#include "sampling/rng.h"
#include "sampling/skellam_sampler.h"

namespace sqm {
namespace {

TEST(AuditTest, ValidatesArguments) {
  const auto mech = [](uint64_t) { return 0.0; };
  AuditOptions options;
  options.trials = 10;  // Too few.
  EXPECT_FALSE(AuditEpsilonLowerBound(mech, mech, options).ok());
  options.trials = 1000;
  options.delta = 1.5;
  EXPECT_FALSE(AuditEpsilonLowerBound(mech, mech, options).ok());
  EXPECT_FALSE(AuditEpsilonLowerBound(nullptr, mech, {}).ok());
}

TEST(AuditTest, IdenticalMechanismsAuditNearZero) {
  const auto mech = [](uint64_t seed) {
    Rng rng(seed);
    return rng.NextDouble();
  };
  AuditOptions options;
  options.trials = 20000;
  const AuditResult result =
      AuditEpsilonLowerBound(mech, mech, options).ValueOrDie();
  EXPECT_LT(result.epsilon_lower_bound, 0.15);
  EXPECT_GT(result.events_evaluated, 0u);
}

TEST(AuditTest, GaussianMechanismRespectsCalibratedEpsilon) {
  // Count query with sensitivity 1: F(X) = 10 vs F(X') = 11, Gaussian
  // noise calibrated for eps = 1.
  const double sigma = CalibrateGaussianSigma(1.0, 1e-5, 1.0).ValueOrDie();
  const auto make_mech = [sigma](double value) {
    return [value, sigma](uint64_t seed) {
      Rng rng(seed ^ 0xa0d17);
      GaussianSampler sampler(sigma);
      return value + sampler.Sample(rng);
    };
  };
  AuditOptions options;
  options.trials = 30000;
  const AuditResult result =
      AuditEpsilonLowerBound(make_mech(10.0), make_mech(11.0), options)
          .ValueOrDie();
  // The audited lower bound must not exceed the guarantee (+ sampling
  // slack).
  EXPECT_LT(result.epsilon_lower_bound, 1.0 + 0.2);
}

TEST(AuditTest, DetectsBlatantViolation) {
  // A "mechanism" that leaks the database deterministically: the audit
  // must report a large epsilon, not a small one.
  const auto leaky = [](double value) {
    return [value](uint64_t seed) {
      Rng rng(seed);
      return value + 0.001 * rng.NextDouble();
    };
  };
  AuditOptions options;
  options.trials = 5000;
  const AuditResult result =
      AuditEpsilonLowerBound(leaky(0.0), leaky(1.0), options).ValueOrDie();
  EXPECT_GT(result.epsilon_lower_bound, 3.0);
}

TEST(AuditTest, SkellamReleaseRespectsCalibratedEpsilon) {
  // End-to-end audit of the distributed Skellam release on neighboring
  // integer databases: F differs by the sensitivity bound.
  const double d2 = 4.0;
  const double mu =
      CalibrateSkellamMuSingleRelease(1.0, 1e-5, d2 * d2, d2).ValueOrDie();
  const auto make_mech = [mu](int64_t value) {
    return [value, mu](uint64_t seed) {
      Rng rng(seed ^ 0x5e11a);
      // Distributed: 4 clients each contribute Sk(mu/4).
      const SkellamSampler share(mu / 4.0);
      int64_t noise = 0;
      for (int j = 0; j < 4; ++j) noise += share.Sample(rng);
      return static_cast<double>(value + noise);
    };
  };
  AuditOptions options;
  options.trials = 30000;
  const AuditResult result =
      AuditEpsilonLowerBound(make_mech(100), make_mech(104), options)
          .ValueOrDie();
  EXPECT_LT(result.epsilon_lower_bound, 1.0 + 0.2);
}

TEST(AuditTest, LooserNoiseAuditsLower) {
  // Monotonicity sanity: 4x the noise must audit at a visibly smaller
  // epsilon-hat for the same pair of databases.
  const auto make_mech = [](double value, double sigma) {
    return [value, sigma](uint64_t seed) {
      Rng rng(seed ^ 0xbeef);
      GaussianSampler sampler(sigma);
      return value + sampler.Sample(rng);
    };
  };
  AuditOptions options;
  options.trials = 20000;
  const double tight =
      AuditEpsilonLowerBound(make_mech(0, 1.0), make_mech(1, 1.0), options)
          .ValueOrDie()
          .epsilon_lower_bound;
  const double loose =
      AuditEpsilonLowerBound(make_mech(0, 4.0), make_mech(1, 4.0), options)
          .ValueOrDie()
          .epsilon_lower_bound;
  EXPECT_GT(tight, loose);
}

}  // namespace
}  // namespace sqm
