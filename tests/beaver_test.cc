#include "mpc/beaver.h"
#include "mpc/network.h"

#include <gtest/gtest.h>

#include "sampling/rng.h"

namespace sqm {
namespace {

class BeaverTest : public ::testing::Test {
 protected:
  static constexpr size_t kParties = 5;
  static constexpr size_t kThreshold = 2;

  BeaverTest()
      : network_(kParties, 0.0),
        protocol_(ShamirScheme(kParties, kThreshold), &network_, 21),
        dealer_(ShamirScheme(kParties, kThreshold), 22),
        multiplier_(&protocol_, &dealer_) {}

  SimulatedNetwork network_;
  BgwProtocol protocol_;
  BeaverTripleDealer dealer_;
  BeaverMultiplier multiplier_;
};

TEST_F(BeaverTest, DealtTriplesAreConsistent) {
  ShamirScheme scheme(kParties, kThreshold);
  BeaverTripleDealer dealer(scheme, 3);
  for (int i = 0; i < 50; ++i) {
    const auto triple = dealer.Deal();
    const Field::Element a = scheme.Reconstruct(triple.a_shares);
    const Field::Element b = scheme.Reconstruct(triple.b_shares);
    const Field::Element c = scheme.Reconstruct(triple.c_shares);
    EXPECT_EQ(Field::Mul(a, b), c);
  }
}

TEST_F(BeaverTest, TriplesAreFresh) {
  const auto t1 = dealer_.Deal();
  const auto t2 = dealer_.Deal();
  EXPECT_NE(t1.a_shares, t2.a_shares);
}

TEST_F(BeaverTest, MulIsExact) {
  const SharedVector x =
      protocol_.ShareFromParty(0, Field::EncodeVector({3, -4, 0, 123456}));
  const SharedVector y =
      protocol_.ShareFromParty(1, Field::EncodeVector({7, 9, 5, -1000}));
  const SharedVector product = multiplier_.Mul(x, y).ValueOrDie();
  EXPECT_EQ(protocol_.OpenSigned(product),
            (std::vector<int64_t>{21, -36, 0, -123456000}));
  EXPECT_EQ(multiplier_.triples_used(), 4u);
}

TEST_F(BeaverTest, MulChainsAndMatchesGrr) {
  // Beaver output stays a degree-t sharing: products chain, and the result
  // matches GRR multiplication of the same inputs.
  const SharedVector x =
      protocol_.ShareFromParty(0, Field::EncodeVector({6}));
  const SharedVector y =
      protocol_.ShareFromParty(1, Field::EncodeVector({-7}));
  const SharedVector beaver1 = multiplier_.Mul(x, y).ValueOrDie();
  const SharedVector beaver2 = multiplier_.Mul(beaver1, x).ValueOrDie();
  EXPECT_EQ(protocol_.OpenSigned(beaver2), (std::vector<int64_t>{-252}));

  const SharedVector grr =
      protocol_.Mul(protocol_.Mul(x, y).ValueOrDie(), x).ValueOrDie();
  EXPECT_EQ(protocol_.OpenSigned(grr), (std::vector<int64_t>{-252}));
}

TEST_F(BeaverTest, OnlineTrafficIsOneOpening) {
  const SharedVector x =
      protocol_.ShareFromParty(0, Field::EncodeVector({1, 2, 3}));
  const SharedVector y =
      protocol_.ShareFromParty(1, Field::EncodeVector({4, 5, 6}));
  const NetworkStats before = network_.stats();
  (void)multiplier_.Mul(x, y).ValueOrDie();
  const NetworkStats after = network_.stats();
  // One round; the opening broadcasts 2*k elements per ordered pair.
  EXPECT_EQ(after.rounds - before.rounds, 1u);
  EXPECT_EQ(after.field_elements - before.field_elements,
            kParties * (kParties - 1) * 2 * 3);
}

TEST_F(BeaverTest, ShapeMismatchRejected) {
  const SharedVector x =
      protocol_.ShareFromParty(0, Field::EncodeVector({1, 2}));
  const SharedVector y =
      protocol_.ShareFromParty(1, Field::EncodeVector({3}));
  EXPECT_FALSE(multiplier_.Mul(x, y).ok());
}

TEST_F(BeaverTest, PoolStreamMatchesDealerStream) {
  // A pool and a dealer with equal seeds must produce byte-identical
  // triple streams: the pool is the same dealing loop run offline.
  const ShamirScheme scheme(kParties, kThreshold);
  BeaverTriplePool pool(scheme, 97, 6);
  BeaverTripleDealer dealer(scheme, 97);
  const BeaverTriplePool::TripleBatch batch = pool.Take(6).ValueOrDie();
  for (size_t i = 0; i < 6; ++i) {
    const BeaverTripleDealer::TripleShares triple = dealer.Deal();
    for (size_t j = 0; j < kParties; ++j) {
      EXPECT_EQ(batch.a.shares(j)[i], triple.a_shares[j])
          << "a triple " << i << " party " << j;
      EXPECT_EQ(batch.b.shares(j)[i], triple.b_shares[j])
          << "b triple " << i << " party " << j;
      EXPECT_EQ(batch.c.shares(j)[i], triple.c_shares[j])
          << "c triple " << i << " party " << j;
    }
  }
}

TEST_F(BeaverTest, PoolBackedMultiplierMatchesDealerBacked) {
  const SharedVector x =
      protocol_.ShareFromParty(0, Field::EncodeVector({3, -4, 0, 123456}));
  const SharedVector y =
      protocol_.ShareFromParty(1, Field::EncodeVector({7, 9, 5, -1000}));
  BeaverTriplePool pool(ShamirScheme(kParties, kThreshold), 23, 4);
  BeaverMultiplier pooled(&protocol_, &pool);
  const SharedVector product = pooled.Mul(x, y).ValueOrDie();
  EXPECT_EQ(protocol_.OpenSigned(product),
            (std::vector<int64_t>{21, -36, 0, -123456000}));
  EXPECT_EQ(pooled.triples_used(), 4u);
  EXPECT_EQ(pool.available(), 0u);
}

TEST_F(BeaverTest, PoolExhaustionRefusesWithoutStateChange) {
  BeaverTriplePool pool(ShamirScheme(kParties, kThreshold), 5, 3);
  EXPECT_EQ(pool.capacity(), 3u);
  ASSERT_TRUE(pool.Take(2).ok());
  EXPECT_EQ(pool.available(), 1u);

  // Over-ask: kFailedPrecondition, and nothing is consumed or re-dealt —
  // the pool NEVER silently deals online.
  const Result<BeaverTriplePool::TripleBatch> over = pool.Take(2);
  EXPECT_EQ(over.status().code(), StatusCode::kFailedPrecondition)
      << over.status().ToString();
  EXPECT_EQ(pool.available(), 1u);
  EXPECT_EQ(pool.taken(), 2u);
  EXPECT_EQ(pool.capacity(), 3u);

  // The remaining triple is still the third of the seed's stream.
  BeaverTripleDealer dealer(ShamirScheme(kParties, kThreshold), 5);
  dealer.Deal();
  dealer.Deal();
  const BeaverTripleDealer::TripleShares expected = dealer.Deal();
  const BeaverTriplePool::TripleBatch last = pool.Take(1).ValueOrDie();
  for (size_t j = 0; j < kParties; ++j) {
    EXPECT_EQ(last.c.shares(j)[0], expected.c_shares[j]);
  }
  EXPECT_EQ(pool.Take(1).status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(BeaverTest, RefillExtendsTheSameStream) {
  const ShamirScheme scheme(kParties, kThreshold);
  BeaverTriplePool refilled(scheme, 11, 2);
  ASSERT_TRUE(refilled.Take(2).ok());
  ASSERT_TRUE(refilled.Refill(2).ok());
  EXPECT_EQ(refilled.capacity(), 4u);
  const BeaverTriplePool::TripleBatch tail = refilled.Take(2).ValueOrDie();
  // Triples 3 and 4 of a straight 4-capacity pool, bit for bit.
  BeaverTriplePool straight(scheme, 11, 4);
  ASSERT_TRUE(straight.Take(2).ok());
  const BeaverTriplePool::TripleBatch expected = straight.Take(2).ValueOrDie();
  for (size_t j = 0; j < kParties; ++j) {
    EXPECT_EQ(tail.a.shares(j), expected.a.shares(j));
    EXPECT_EQ(tail.b.shares(j), expected.b.shares(j));
    EXPECT_EQ(tail.c.shares(j), expected.c.shares(j));
  }
}

TEST_F(BeaverTest, RefillUnderDropoutEnforcesDealerQuorum) {
  // Dealing degree-t triples that recombine under MulQuorum needs the
  // 2t+1 dealer rule, exactly like a GRR level: with t = 2 that is 5
  // distinct surviving dealers.
  BeaverTriplePool pool(ShamirScheme(kParties, kThreshold), 13, 1);

  const Status short_quorum = pool.Refill(4, {0, 1, 2, 3});
  EXPECT_EQ(short_quorum.code(), StatusCode::kFailedPrecondition)
      << short_quorum.ToString();
  EXPECT_EQ(pool.capacity(), 1u);  // Refused refill left the pool alone.

  // Duplicates and out-of-range indices do not inflate the count.
  const Status padded = pool.Refill(4, {0, 1, 1, 2, 3, 3, 99});
  EXPECT_EQ(padded.code(), StatusCode::kFailedPrecondition)
      << padded.ToString();

  const Status full_quorum = pool.Refill(4, {0, 1, 2, 3, 4});
  EXPECT_TRUE(full_quorum.ok()) << full_quorum.ToString();
  EXPECT_EQ(pool.capacity(), 5u);
  EXPECT_EQ(pool.available(), 5u);
}

TEST(BeaverThreePartyTest, WorksAtMinimalConfiguration) {
  SimulatedNetwork network(3, 0.0);
  BgwProtocol protocol(ShamirScheme(3, 1), &network, 31);
  BeaverTripleDealer dealer(ShamirScheme(3, 1), 32);
  BeaverMultiplier multiplier(&protocol, &dealer);
  const SharedVector x =
      protocol.ShareFromParty(0, Field::EncodeVector({11}));
  const SharedVector y =
      protocol.ShareFromParty(2, Field::EncodeVector({-3}));
  EXPECT_EQ(protocol.OpenSigned(multiplier.Mul(x, y).ValueOrDie()),
            (std::vector<int64_t>{-33}));
}

}  // namespace
}  // namespace sqm
