#include "mpc/beaver.h"
#include "mpc/network.h"

#include <gtest/gtest.h>

#include "sampling/rng.h"

namespace sqm {
namespace {

class BeaverTest : public ::testing::Test {
 protected:
  static constexpr size_t kParties = 5;
  static constexpr size_t kThreshold = 2;

  BeaverTest()
      : network_(kParties, 0.0),
        protocol_(ShamirScheme(kParties, kThreshold), &network_, 21),
        dealer_(ShamirScheme(kParties, kThreshold), 22),
        multiplier_(&protocol_, &dealer_) {}

  SimulatedNetwork network_;
  BgwProtocol protocol_;
  BeaverTripleDealer dealer_;
  BeaverMultiplier multiplier_;
};

TEST_F(BeaverTest, DealtTriplesAreConsistent) {
  ShamirScheme scheme(kParties, kThreshold);
  BeaverTripleDealer dealer(scheme, 3);
  for (int i = 0; i < 50; ++i) {
    const auto triple = dealer.Deal();
    const Field::Element a = scheme.Reconstruct(triple.a_shares);
    const Field::Element b = scheme.Reconstruct(triple.b_shares);
    const Field::Element c = scheme.Reconstruct(triple.c_shares);
    EXPECT_EQ(Field::Mul(a, b), c);
  }
}

TEST_F(BeaverTest, TriplesAreFresh) {
  const auto t1 = dealer_.Deal();
  const auto t2 = dealer_.Deal();
  EXPECT_NE(t1.a_shares, t2.a_shares);
}

TEST_F(BeaverTest, MulIsExact) {
  const SharedVector x =
      protocol_.ShareFromParty(0, Field::EncodeVector({3, -4, 0, 123456}));
  const SharedVector y =
      protocol_.ShareFromParty(1, Field::EncodeVector({7, 9, 5, -1000}));
  const SharedVector product = multiplier_.Mul(x, y).ValueOrDie();
  EXPECT_EQ(protocol_.OpenSigned(product),
            (std::vector<int64_t>{21, -36, 0, -123456000}));
  EXPECT_EQ(multiplier_.triples_used(), 4u);
}

TEST_F(BeaverTest, MulChainsAndMatchesGrr) {
  // Beaver output stays a degree-t sharing: products chain, and the result
  // matches GRR multiplication of the same inputs.
  const SharedVector x =
      protocol_.ShareFromParty(0, Field::EncodeVector({6}));
  const SharedVector y =
      protocol_.ShareFromParty(1, Field::EncodeVector({-7}));
  const SharedVector beaver1 = multiplier_.Mul(x, y).ValueOrDie();
  const SharedVector beaver2 = multiplier_.Mul(beaver1, x).ValueOrDie();
  EXPECT_EQ(protocol_.OpenSigned(beaver2), (std::vector<int64_t>{-252}));

  const SharedVector grr =
      protocol_.Mul(protocol_.Mul(x, y).ValueOrDie(), x).ValueOrDie();
  EXPECT_EQ(protocol_.OpenSigned(grr), (std::vector<int64_t>{-252}));
}

TEST_F(BeaverTest, OnlineTrafficIsOneOpening) {
  const SharedVector x =
      protocol_.ShareFromParty(0, Field::EncodeVector({1, 2, 3}));
  const SharedVector y =
      protocol_.ShareFromParty(1, Field::EncodeVector({4, 5, 6}));
  const NetworkStats before = network_.stats();
  (void)multiplier_.Mul(x, y).ValueOrDie();
  const NetworkStats after = network_.stats();
  // One round; the opening broadcasts 2*k elements per ordered pair.
  EXPECT_EQ(after.rounds - before.rounds, 1u);
  EXPECT_EQ(after.field_elements - before.field_elements,
            kParties * (kParties - 1) * 2 * 3);
}

TEST_F(BeaverTest, ShapeMismatchRejected) {
  const SharedVector x =
      protocol_.ShareFromParty(0, Field::EncodeVector({1, 2}));
  const SharedVector y =
      protocol_.ShareFromParty(1, Field::EncodeVector({3}));
  EXPECT_FALSE(multiplier_.Mul(x, y).ok());
}

TEST(BeaverThreePartyTest, WorksAtMinimalConfiguration) {
  SimulatedNetwork network(3, 0.0);
  BgwProtocol protocol(ShamirScheme(3, 1), &network, 31);
  BeaverTripleDealer dealer(ShamirScheme(3, 1), 32);
  BeaverMultiplier multiplier(&protocol, &dealer);
  const SharedVector x =
      protocol.ShareFromParty(0, Field::EncodeVector({11}));
  const SharedVector y =
      protocol.ShareFromParty(2, Field::EncodeVector({-3}));
  EXPECT_EQ(protocol.OpenSigned(multiplier.Mul(x, y).ValueOrDie()),
            (std::vector<int64_t>{-33}));
}

}  // namespace
}  // namespace sqm
