// Statistical tests of the *secrecy* side of the MPC layer: what a
// sub-threshold coalition observes must be independent of the secrets.
// These are distributional smoke tests (chi-square-style bin comparisons),
// not proofs — BGW's information-theoretic security is classical — but
// they catch implementation bugs like reusing sharing randomness or
// leaking a secret into a deterministic share.

#include <gtest/gtest.h>
#include "mpc/network.h"

#include <cmath>
#include <vector>

#include "mpc/field.h"
#include "mpc/protocol.h"
#include "mpc/shamir.h"
#include "sampling/rng.h"

namespace sqm {
namespace {

/// Coarse uniformity check: bins the top bits of field elements and
/// verifies no bin deviates from the uniform expectation by more than
/// 6 sigma.
void ExpectRoughlyUniform(const std::vector<Field::Element>& values) {
  constexpr size_t kBins = 16;
  std::vector<size_t> counts(kBins, 0);
  for (Field::Element v : values) {
    ++counts[static_cast<size_t>(v >> 57)];  // Top 4 bits of 61.
  }
  const double expected =
      static_cast<double>(values.size()) / static_cast<double>(kBins);
  const double tolerance = 6.0 * std::sqrt(expected);
  for (size_t b = 0; b < kBins; ++b) {
    EXPECT_NEAR(static_cast<double>(counts[b]), expected, tolerance)
        << "bin " << b;
  }
}

TEST(MpcPrivacyTest, SingleShareIsUniformRegardlessOfSecret) {
  ShamirScheme scheme(5, 2);
  Rng rng(1);
  for (int64_t secret : {0L, 1L, 1000000L}) {
    std::vector<Field::Element> observed;
    for (int i = 0; i < 20000; ++i) {
      observed.push_back(scheme.Share(Field::Encode(secret), rng)[3]);
    }
    ExpectRoughlyUniform(observed);
  }
}

TEST(MpcPrivacyTest, CoalitionShareSumsLookAlikeAcrossSecrets) {
  // A 2-of-5 coalition (threshold t = 2) sees two shares. Compare a
  // scalar statistic of the joint view (share_a + share_b mod p) across
  // two very different secrets: the distributions must agree bin-by-bin.
  ShamirScheme scheme(5, 2);
  constexpr size_t kRuns = 30000;
  constexpr size_t kBins = 16;
  auto collect = [&](int64_t secret, uint64_t seed) {
    Rng rng(seed);
    std::vector<size_t> counts(kBins, 0);
    for (size_t i = 0; i < kRuns; ++i) {
      const auto shares = scheme.Share(Field::Encode(secret), rng);
      const Field::Element view = Field::Add(shares[0], shares[4]);
      ++counts[static_cast<size_t>(view >> 57)];
    }
    return counts;
  };
  const auto counts_zero = collect(0, 11);
  const auto counts_big = collect(987654321, 13);
  for (size_t b = 0; b < kBins; ++b) {
    const double expected = static_cast<double>(kRuns) / kBins;
    EXPECT_NEAR(static_cast<double>(counts_zero[b]),
                static_cast<double>(counts_big[b]),
                8.0 * std::sqrt(expected))
        << "bin " << b;
  }
}

TEST(MpcPrivacyTest, MulResharingMessagesAreUniform) {
  // During GRR multiplication each party re-shares its local product; the
  // sub-shares a single observer receives must look uniform whatever the
  // inputs were.
  constexpr size_t kParties = 5;
  std::vector<Field::Element> observed;
  for (int run = 0; run < 4000; ++run) {
    SimulatedNetwork network(kParties, 0.0);
    BgwProtocol protocol(ShamirScheme(kParties, 2), &network,
                         1000 + run);
    const SharedVector a =
        protocol.ShareFromParty(0, Field::EncodeVector({7}));
    const SharedVector b =
        protocol.ShareFromParty(1, Field::EncodeVector({-13}));
    (void)protocol.Mul(a, b).ValueOrDie();
    // Party 2's share of the product is one "observation" of the
    // post-reduction transcript.
    observed.push_back(a.shares(2)[0]);
  }
  ExpectRoughlyUniform(observed);
}

TEST(MpcPrivacyTest, FreshRandomnessAcrossSharings) {
  // Re-sharing the same secret twice must never reuse the polynomial.
  ShamirScheme scheme(3, 1);
  Rng rng(5);
  size_t identical = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto s1 = scheme.Share(Field::Encode(42), rng);
    const auto s2 = scheme.Share(Field::Encode(42), rng);
    if (s1 == s2) ++identical;
  }
  EXPECT_EQ(identical, 0u);
}

TEST(MpcPrivacyTest, DistinctProtocolSeedsGiveDistinctTranscripts) {
  // Two executions with different seeds must not produce the same share
  // pattern (a frozen RNG would silently break secrecy).
  SimulatedNetwork net_a(3, 0.0);
  SimulatedNetwork net_b(3, 0.0);
  BgwProtocol proto_a(ShamirScheme(3, 1), &net_a, 1);
  BgwProtocol proto_b(ShamirScheme(3, 1), &net_b, 2);
  const SharedVector a =
      proto_a.ShareFromParty(0, Field::EncodeVector({5}));
  const SharedVector b =
      proto_b.ShareFromParty(0, Field::EncodeVector({5}));
  EXPECT_NE(a.shares(1)[0], b.shares(1)[0]);
}

}  // namespace
}  // namespace sqm
