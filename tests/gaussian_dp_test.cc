#include "dp/gaussian.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sqm {
namespace {

TEST(GaussianDpTest, RdpClosedForm) {
  EXPECT_DOUBLE_EQ(GaussianRdp(2.0, 1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(GaussianRdp(4.0, 2.0, 2.0), 2.0);
}

TEST(GaussianDpTest, StdNormalCdfKnownValues) {
  EXPECT_NEAR(StdNormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(StdNormalCdf(1.959963984540054), 0.975, 1e-9);
  EXPECT_NEAR(StdNormalCdf(-1.959963984540054), 0.025, 1e-9);
}

TEST(GaussianDpTest, DeltaDecreasesInSigma) {
  double prev = 1.0;
  for (double sigma : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    const double delta = GaussianDelta(1.0, 1.0, sigma);
    EXPECT_LT(delta, prev);
    prev = delta;
  }
}

TEST(GaussianDpTest, CalibratedSigmaIsTight) {
  for (double eps : {0.25, 1.0, 4.0}) {
    for (double delta : {1e-5, 1e-7}) {
      const double sigma =
          CalibrateGaussianSigma(eps, delta, 1.0).ValueOrDie();
      // At the calibrated sigma the exact delta matches the target...
      EXPECT_LE(GaussianDelta(eps, 1.0, sigma), delta * (1.0 + 1e-6));
      // ...and 1% less noise violates it (tightness).
      EXPECT_GT(GaussianDelta(eps, 1.0, sigma * 0.99), delta);
    }
  }
}

TEST(GaussianDpTest, CalibratedSigmaScalesWithSensitivity) {
  const double s1 = CalibrateGaussianSigma(1.0, 1e-5, 1.0).ValueOrDie();
  const double s2 = CalibrateGaussianSigma(1.0, 1e-5, 2.0).ValueOrDie();
  EXPECT_NEAR(s2 / s1, 2.0, 1e-6);
}

TEST(GaussianDpTest, ClassicBoundIsLooserThanAnalytic) {
  // The classic sigma = sqrt(2 ln(1.25/delta)) * Delta / eps bound is valid
  // but conservative; analytic calibration must not exceed it (eps <= 1).
  const double eps = 0.5;
  const double delta = 1e-5;
  const double classic = std::sqrt(2.0 * std::log(1.25 / delta)) / eps;
  const double analytic =
      CalibrateGaussianSigma(eps, delta, 1.0).ValueOrDie();
  EXPECT_LT(analytic, classic);
}

TEST(GaussianDpTest, CalibrationRejectsBadArguments) {
  EXPECT_FALSE(CalibrateGaussianSigma(0.0, 1e-5, 1.0).ok());
  EXPECT_FALSE(CalibrateGaussianSigma(1.0, 0.0, 1.0).ok());
  EXPECT_FALSE(CalibrateGaussianSigma(1.0, 1.5, 1.0).ok());
  EXPECT_FALSE(CalibrateGaussianSigma(1.0, 1e-5, -1.0).ok());
}

TEST(GaussianDpTest, DpSgdEpsilonDecreasesInNoise) {
  double prev = 1e9;
  for (double z : {0.5, 1.0, 2.0, 4.0}) {
    const double eps = DpSgdEpsilon(z, 0.01, 100, 1e-5);
    EXPECT_LT(eps, prev);
    prev = eps;
  }
}

TEST(GaussianDpTest, DpSgdEpsilonIncreasesInRounds) {
  const double e10 = DpSgdEpsilon(1.0, 0.01, 10, 1e-5);
  const double e100 = DpSgdEpsilon(1.0, 0.01, 100, 1e-5);
  EXPECT_LT(e10, e100);
}

TEST(GaussianDpTest, DpSgdCalibrationRoundTrips) {
  const double target_eps = 2.0;
  const double z =
      CalibrateDpSgdNoise(target_eps, 1e-5, 0.01, 50).ValueOrDie();
  const double achieved = DpSgdEpsilon(z, 0.01, 50, 1e-5);
  EXPECT_LE(achieved, target_eps * (1.0 + 1e-6));
  EXPECT_GT(DpSgdEpsilon(z * 0.95, 0.01, 50, 1e-5), target_eps);
}

TEST(GaussianDpTest, SubsamplingBeatsFullBatch) {
  // At equal noise, sampling 1% of records per round must cost far less
  // epsilon than full-batch rounds.
  const double sub = DpSgdEpsilon(1.0, 0.01, 100, 1e-5);
  const double full = DpSgdEpsilon(1.0, 1.0, 100, 1e-5);
  EXPECT_LT(sub, full / 5.0);
}

}  // namespace
}  // namespace sqm
