#include "core/confidence.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sampling/rng.h"
#include "sampling/skellam_sampler.h"

namespace sqm {
namespace {

TEST(ConfidenceTest, ZeroNoiseGivesPointInterval) {
  const ReleaseInterval interval =
      SkellamReleaseInterval(3.5, 0.0, 100.0).ValueOrDie();
  EXPECT_DOUBLE_EQ(interval.lower, 3.5);
  EXPECT_DOUBLE_EQ(interval.upper, 3.5);
  EXPECT_DOUBLE_EQ(interval.noise_std, 0.0);
}

TEST(ConfidenceTest, RadiusGrowsWithMuAndConfidence) {
  const double r_small =
      SkellamReleaseInterval(0.0, 100.0, 1.0).ValueOrDie().upper;
  const double r_large =
      SkellamReleaseInterval(0.0, 10000.0, 1.0).ValueOrDie().upper;
  EXPECT_GT(r_large, r_small);

  const double r95 =
      SkellamReleaseInterval(0.0, 100.0, 1.0, 0.95).ValueOrDie().upper;
  const double r999 =
      SkellamReleaseInterval(0.0, 100.0, 1.0, 0.999).ValueOrDie().upper;
  EXPECT_GT(r999, r95);
}

TEST(ConfidenceTest, ScaleDividesRadius) {
  const double r1 =
      SkellamReleaseInterval(0.0, 100.0, 1.0).ValueOrDie().upper;
  const double r100 =
      SkellamReleaseInterval(0.0, 100.0, 100.0).ValueOrDie().upper;
  EXPECT_NEAR(r1 / r100, 100.0, 1e-9);
}

TEST(ConfidenceTest, TailRadiusConsistentWithBound) {
  // Plug the radius back into the bound: 2 exp(-t^2/(2(2mu+t))) <= beta.
  for (double mu : {1.0, 100.0, 1e6}) {
    for (double beta : {0.05, 0.001}) {
      const double t = SkellamTailRadius(mu, beta);
      const double bound =
          2.0 * std::exp(-t * t / (2.0 * (2.0 * mu + t)));
      EXPECT_LE(bound, beta * (1.0 + 1e-9)) << "mu=" << mu;
      // And it is essentially tight (within a factor of ~2 of equality).
      EXPECT_GT(bound, beta / 4.0);
    }
  }
}

TEST(ConfidenceTest, EmpiricalCoverage) {
  // Draw many Sk(mu) samples; the fraction inside the 95% radius must be
  // at least 95% (the bound is conservative, so typically higher).
  const double mu = 500.0;
  const double radius = SkellamTailRadius(mu, 0.05);
  SkellamSampler sampler(mu);
  Rng rng(7);
  constexpr int kDraws = 50000;
  int inside = 0;
  for (int i = 0; i < kDraws; ++i) {
    if (std::llabs(sampler.Sample(rng)) <=
        static_cast<int64_t>(radius)) {
      ++inside;
    }
  }
  EXPECT_GT(static_cast<double>(inside) / kDraws, 0.95);
}

TEST(ConfidenceTest, GaussianLimitSanity) {
  // For huge mu the radius should be within a small factor of the
  // Gaussian 95% quantile 1.96 * sqrt(2 mu) (the bound costs ~30%).
  const double mu = 1e8;
  const double radius = SkellamTailRadius(mu, 0.05);
  const double gaussian = 1.96 * std::sqrt(2.0 * mu);
  EXPECT_GT(radius, gaussian * 0.9);
  EXPECT_LT(radius, gaussian * 2.0);
}

TEST(ConfidenceTest, ValidatesArguments) {
  EXPECT_FALSE(SkellamReleaseInterval(0.0, -1.0, 1.0).ok());
  EXPECT_FALSE(SkellamReleaseInterval(0.0, 1.0, 0.0).ok());
  EXPECT_FALSE(SkellamReleaseInterval(0.0, 1.0, 1.0, 0.0).ok());
  EXPECT_FALSE(SkellamReleaseInterval(0.0, 1.0, 1.0, 1.0).ok());
}

}  // namespace
}  // namespace sqm
