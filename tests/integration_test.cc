// End-to-end tests exercising the full SQM stack: quantization + local
// Skellam noise + BGW over the simulated network + server post-processing,
// and the cross-mechanism comparisons the paper's evaluation rests on.

#include <gtest/gtest.h>
#include "mpc/network.h"

#include <cmath>

#include "core/sqm.h"
#include "dp/skellam.h"
#include "math/stats.h"
#include "mpc/bgw.h"
#include "vfl/logistic.h"
#include "vfl/pca.h"
#include "vfl/synthetic.h"

namespace sqm {
namespace {

TEST(IntegrationTest, FullSqmPipelineOverBgwRecoversPolynomialSum) {
  // The paper's running example f(x) = x0^3 + 1.5 x1 x2 + 2, evaluated over
  // a small vertically partitioned database by 3 clients via BGW, with
  // noise disabled to isolate correctness.
  PolynomialVector f;
  Polynomial p;
  p.AddTerm(Monomial::Power(1.0, 0, 3));
  p.AddTerm(Monomial(1.5, {{1, 1}, {2, 1}}));
  p.AddTerm(Monomial(2.0));
  f.AddDimension(p);

  Matrix x{{0.2, -0.3, 0.4}, {0.5, 0.1, -0.2}, {-0.4, 0.6, 0.3}};
  double exact = 0.0;
  for (size_t i = 0; i < 3; ++i) exact += p.Evaluate(x.Row(i));

  SqmOptions options;
  options.gamma = 512.0;
  options.mu = 0.0;
  options.backend = MpcBackend::kBgw;
  options.max_f_l2 = 4.0;
  const SqmReport report =
      SqmEvaluator(options).Evaluate(f, x).ValueOrDie();
  EXPECT_NEAR(report.estimate[0], exact, 0.01);
  EXPECT_GT(report.network.messages, 0u);
  EXPECT_GT(report.network.rounds, 0u);
}

TEST(IntegrationTest, AggregateNoiseVarianceMatchesCalibratedMu) {
  // End to end: calibrate mu for (eps, delta), run the full mechanism many
  // times on a fixed database, and check that the release variance matches
  // 2*mu (the Skellam aggregate) plus the quantization jitter.
  Matrix x(10, 2);
  for (size_t i = 0; i < 10; ++i) {
    x(i, 0) = 0.25;  // Exact multiples of 1/gamma: no rounding jitter.
    x(i, 1) = -0.5;
  }
  PolynomialVector f;
  Polynomial p;
  p.AddTerm(Monomial(1.0, {{0, 1}, {1, 1}}));
  f.AddDimension(p);

  const double gamma = 16.0;
  const double d2 = gamma * gamma * 1.0 + 2.0;  // Lemma-5-style bound.
  const double mu =
      CalibrateSkellamMuSingleRelease(2.0, 1e-5, d2 * d2, d2).ValueOrDie();

  std::vector<double> raws;
  for (uint64_t seed = 0; seed < 2000; ++seed) {
    SqmOptions options;
    options.gamma = gamma;
    options.mu = mu;
    options.seed = seed;
    options.quantize_coefficients = false;
    const SqmReport report =
        SqmEvaluator(options).Evaluate(f, x).ValueOrDie();
    raws.push_back(static_cast<double>(report.raw[0]));
  }
  const double expected_signal = 10.0 * 0.25 * -0.5 * gamma * gamma;
  EXPECT_NEAR(Mean(raws), expected_signal,
              5.0 * std::sqrt(2.0 * mu / 2000.0));
  EXPECT_NEAR(Variance(raws) / (2.0 * mu), 1.0, 0.1);
}

TEST(IntegrationTest, PrivacyUtilityOrderingOnPca) {
  // The qualitative shape of Figure 2: central >= SQM(fine) >= SQM(coarse)
  // >> local DP, and everything below the non-private ceiling.
  SyntheticPcaSpec spec;
  spec.rows = 400;
  spec.cols = 16;
  spec.rank = 4;
  spec.seed = 21;
  const Matrix x = GeneratePcaDataset(spec).features;

  PcaOptions options;
  options.k = 4;
  options.epsilon = 2.0;

  const double exact = NonPrivatePca(x, 4).ValueOrDie().utility;
  const double central = CentralDpPca(x, options).ValueOrDie().utility;
  options.gamma = 4096.0;
  const double sqm_fine = SqmPca(x, options).ValueOrDie().utility;
  options.gamma = 2.0;
  const double sqm_coarse = SqmPca(x, options).ValueOrDie().utility;
  const double local = LocalDpPca(x, options).ValueOrDie().utility;

  EXPECT_GE(exact * 1.001, central);
  // Fine SQM ~ central (either may win a given noise draw; they must stay
  // within 10% of each other).
  EXPECT_NEAR(sqm_fine / central, 1.0, 0.1);
  EXPECT_GT(sqm_fine, sqm_coarse * 0.999);
  EXPECT_GT(sqm_fine, local);
}

TEST(IntegrationTest, SqmLogisticOverBgwMatchesPlaintextTraining) {
  // Train two tiny models, one with the BGW backend and one with the
  // plaintext backend, same seeds: identical releases => identical weights.
  SyntheticLrSpec spec;
  spec.rows = 120;
  spec.cols = 4;
  spec.seed = 33;
  const TrainTestSplit split =
      SplitTrainTest(GenerateLrDataset(spec), 0.7, 2).ValueOrDie();

  LogisticOptions options;
  options.epsilon = 4.0;
  options.sample_rate = 0.1;
  options.rounds = 4;
  options.gamma = 256.0;
  options.seed = 11;

  options.backend = MpcBackend::kPlaintext;
  const LogisticResult plain =
      TrainSqmLogistic(split.train, split.test, options).ValueOrDie();
  options.backend = MpcBackend::kBgw;
  const LogisticResult mpc =
      TrainSqmLogistic(split.train, split.test, options).ValueOrDie();

  ASSERT_EQ(plain.weights.size(), mpc.weights.size());
  for (size_t j = 0; j < plain.weights.size(); ++j) {
    EXPECT_NEAR(plain.weights[j], mpc.weights[j], 1e-12);
  }
  EXPECT_GT(mpc.network.messages, 0u);
}

TEST(IntegrationTest, ServerEpsilonIndependentOfClientCount) {
  // Section V-C "On data partitioning": the server-observed guarantee
  // depends on gamma and mu only; re-partitioning the columns among a
  // different number of clients must not change the release distribution's
  // calibration.
  SyntheticPcaSpec spec;
  spec.rows = 60;
  spec.cols = 8;
  spec.seed = 13;
  const Matrix x = GeneratePcaDataset(spec).features;

  PcaOptions options;
  options.k = 2;
  options.epsilon = 1.0;
  options.gamma = 512.0;
  options.num_clients = 8;
  const PcaResult with8 = SqmPca(x, options).ValueOrDie();
  options.num_clients = 4;
  const PcaResult with4 = SqmPca(x, options).ValueOrDie();
  EXPECT_DOUBLE_EQ(with8.mu, with4.mu);  // Same calibrated noise total.
}

TEST(IntegrationTest, BgwRoundStructureMatchesCircuitDepth) {
  // Input rounds (contributing parties) + mul rounds (depth) + open round.
  SimulatedNetwork network(5, 0.0);
  BgwEngine engine(ShamirScheme(5, 2), &network, 3);
  Circuit c;
  const auto a = c.AddInput(0);
  const auto b = c.AddInput(1);
  const auto d = c.AddInput(2);
  c.MarkOutput(c.AddMul(c.AddMul(a, b), d));  // Depth 2.
  (void)engine.Evaluate(c, {{2}, {3}, {4}, {}, {}}).ValueOrDie();
  EXPECT_EQ(network.stats().rounds, 3u + 2u + 1u);
}

}  // namespace
}  // namespace sqm
