#include "math/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sqm {
namespace {

TEST(StatsTest, MeanBasics) {
  EXPECT_DOUBLE_EQ(Mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(Mean(std::vector<double>{5.0}), 5.0);
  EXPECT_DOUBLE_EQ(Mean(std::vector<double>{1, 2, 3, 4}), 2.5);
}

TEST(StatsTest, VarianceIsUnbiasedForm) {
  EXPECT_DOUBLE_EQ(Variance(std::vector<double>{1.0}), 0.0);
  // Sample variance of {1, 3} with n-1 denominator is 2.
  EXPECT_DOUBLE_EQ(Variance(std::vector<double>{1, 3}), 2.0);
  EXPECT_DOUBLE_EQ(StdDev(std::vector<double>{1, 3}),
                   std::sqrt(2.0));
}

TEST(StatsTest, QuantileInterpolates) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.1), 1.4);
}

TEST(StatsTest, QuantileUnsortedInput) {
  EXPECT_DOUBLE_EQ(Quantile({5, 1, 3, 2, 4}, 0.5), 3.0);
}

TEST(StatsTest, SkewnessOfSymmetricIsZero) {
  EXPECT_NEAR(Skewness({-2, -1, 0, 1, 2}), 0.0, 1e-12);
  EXPECT_GT(Skewness({0, 0, 0, 0, 10}), 0.0);
  EXPECT_LT(Skewness({0, 0, 0, 0, -10}), 0.0);
}

TEST(StatsTest, KurtosisEdgeCases) {
  EXPECT_DOUBLE_EQ(ExcessKurtosis({1, 2, 3}), 0.0);  // size < 4.
  EXPECT_DOUBLE_EQ(ExcessKurtosis({5, 5, 5, 5}), 0.0);  // zero variance.
}

TEST(StatsTest, IntegerOverloads) {
  std::vector<int64_t> v{1, 2, 3};
  EXPECT_DOUBLE_EQ(Mean(v), 2.0);
  EXPECT_DOUBLE_EQ(Variance(v), 1.0);
}

}  // namespace
}  // namespace sqm
