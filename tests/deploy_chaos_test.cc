// Socket-level chaos + supervised recovery: the coordinator launches a
// 5-party networked run as real OS processes with a restart budget, one
// party is SIGKILLed mid-Mul (and, in the chaos variant, the transport
// additionally injects seeded connection resets, torn writes, stalls and
// an asymmetric partition), and the run must STILL release values
// bit-identical to an in-process lockstep replay — full quorum, empty
// dropout, the configured epsilon, no ledger deficit.
//
// This is the proof obligation of the recovery subsystem: durable
// checkpoints + incarnation rejoin + resume barriers turn `kill -9` from
// a permanent dropout (PR 2's degrade path) into a transparent blip. The
// third suite exhausts the restart budget on purpose and checks the
// fallback to that degrade path still re-accounts epsilon honestly.

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/report_io.h"
#include "core/sqm.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#include <unistd.h>
#define SQM_DEPLOY_TEST_SUPPORTED 1
#endif

namespace {

#ifdef SQM_DEPLOY_TEST_SUPPORTED

/// Same 5-party roster and query as deploy_resilience_test (bgw_threshold
/// 1 → quorum 3, so losing one party for good is survivable), plus the
/// recovery knobs: one restart, and a 20-second resume-barrier budget —
/// generous because every party must outwait the slowest peer's failed
/// level (receive timeout + census timeout) before it reaches its own
/// barrier, and sanitizer builds stretch every step.
std::string DeployConfig(uint64_t run_id, bool chaos) {
  std::ostringstream out;
  out << "{\n"
      << "  \"run_id\": " << run_id << ", \"session_key\": 5555,\n"
      << "  \"parties\": ["
      << "{\"host\":\"127.0.0.1\",\"port\":0},"
      << "{\"host\":\"127.0.0.1\",\"port\":0},"
      << "{\"host\":\"127.0.0.1\",\"port\":0},"
      << "{\"host\":\"127.0.0.1\",\"port\":0},"
      << "{\"host\":\"127.0.0.1\",\"port\":0}],\n"
      << "  \"rows\": 6, \"cols\": 5, \"data_seed\": 9,\n"
      << "  \"polynomial\": \"x0*x1; x2*x3; x3*x4\",\n"
      << "  \"gamma\": 32, \"mu\": 4, \"seed\": 1234,\n"
      << "  \"dropout_policy\": \"degrade\",\n"
      << "  \"bgw_threshold\": 1, \"dp_delta\": 1e-5,\n"
      << "  \"mpc_max_attempts\": 8,\n"
      << "  \"receive_timeout_seconds\": 1.0,\n"
      << "  \"max_reconnect_attempts\": 2,\n"
      << "  \"reconnect_backoff_seconds\": 0.05,\n"
      << "  \"max_restarts\": 1,\n"
      << "  \"restart_backoff_seconds\": 0.25,\n"
      << "  \"recovery_deadline_seconds\": 20.0";
  if (chaos) {
    // Seeded fault storm confined to the mul phase: every lost or severed
    // frame costs one full-quorum level failure + resume barrier, so the
    // event cap (3 per party) and mpc_max_attempts (8) bound the run.
    out << ",\n"
        << "  \"chaos_seed\": 777,\n"
        << "  \"chaos_phase\": \"mul\",\n"
        << "  \"chaos_max_events\": 3,\n"
        << "  \"chaos_reset_probability\": 0.2,\n"
        << "  \"chaos_partial_write_probability\": 0.15,\n"
        << "  \"chaos_stall_probability\": 0.1,\n"
        << "  \"chaos_stall_seconds\": 0.05,\n"
        << "  \"chaos_partition_peer\": 3,\n"
        << "  \"chaos_partition_sends\": 2";
  }
  out << "\n}\n";
  return out.str();
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return in ? buffer.str() : std::string();
}

struct RunResult {
  sqm::SqmReport report;        ///< Party 0's report.
  std::string coordinator_json;
  std::string dir;
};

/// Runs the coordinator on `config` with party 2 crashing at Mul level 1
/// and returns party 0's report; `expect_ok` is the required coordinator
/// exit status. Fails the test on any setup error.
RunResult RunScenario(const std::string& name, const std::string& config_text,
                      const std::string& extra_flags, bool expect_ok) {
  RunResult result;
  result.dir = testing::TempDir() + "/chaos_" + name + "_" +
               std::to_string(::getpid());
  EXPECT_EQ(std::system(("mkdir -p " + result.dir).c_str()), 0);
  {
    std::ofstream config(result.dir + "/deploy.json", std::ios::trunc);
    config << config_text;
    EXPECT_TRUE(config.good());
  }

  const std::string command =
      std::string(SQM_COORDINATOR_BIN) + " --config=" + result.dir +
      "/deploy.json --out-dir=" + result.dir +
      " --crash-party=2 --crash-at-mul-level=1 " + extra_flags +
      " --timeout-seconds=240 > " + result.dir + "/coordinator.log 2>&1";
  const int rc = std::system(command.c_str());
  EXPECT_TRUE(WIFEXITED(rc)) << "coordinator did not exit normally";
  EXPECT_EQ(WEXITSTATUS(rc), expect_ok ? 0 : 1)
      << "coordinator log:\n" << ReadFileOrEmpty(result.dir + "/coordinator.log");

  const std::string report_json =
      ReadFileOrEmpty(result.dir + "/party_0.json");
  EXPECT_FALSE(report_json.empty()) << "party 0 wrote no report";
  sqm::Result<sqm::SqmReport> report = sqm::SqmReportFromJson(report_json);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  if (report.ok()) result.report = report.ValueOrDie();
  result.coordinator_json = ReadFileOrEmpty(result.dir + "/coordinator.json");
  return result;
}

TEST(DeployChaos, KillMidMulRecoversFullQuorumBitIdentical) {
  // --compare-lockstep makes the coordinator itself require the networked
  // release to be bit-identical to the in-process lockstep run; its exit
  // code carries that assertion.
  const RunResult result = RunScenario(
      "recover", DeployConfig(91, /*chaos=*/false), "--compare-lockstep",
      /*expect_ok=*/true);
  const sqm::DropoutReport& dropout = result.report.dropout;

  // The SIGKILLed party was restarted and rejoined: nobody dropped, so the
  // ledger shows the CONFIGURED guarantee — no deficit, no degradation.
  EXPECT_EQ(dropout.num_parties, 5u);
  EXPECT_EQ(dropout.num_dropped, 0u);
  EXPECT_EQ(dropout.survivors.size(), 5u);
  EXPECT_DOUBLE_EQ(dropout.configured_mu, 4.0);
  EXPECT_DOUBLE_EQ(dropout.realized_mu, 4.0);
  EXPECT_DOUBLE_EQ(dropout.realized_epsilon, dropout.configured_epsilon);

  // The supervisor consumed exactly one restart for party 2, whose second
  // incarnation finished cleanly (exit_code 0 in the same record).
  EXPECT_NE(result.coordinator_json.find("\"restarts\":1"),
            std::string::npos)
      << result.coordinator_json;
  EXPECT_NE(result.coordinator_json.find("\"lockstep_match\":true"),
            std::string::npos);

  // The rejoin ran off a durable checkpoint, not a lucky in-memory state.
  EXPECT_FALSE(
      ReadFileOrEmpty(result.dir + "/ckpt_2/checkpoint.bin").empty());
}

TEST(DeployChaos, SocketChaosPlusKillStillBitIdentical) {
  // kill -9 AND seeded resets / torn writes / stalls AND a 2-send
  // asymmetric partition toward party 3 — recovery must shrug all of it
  // off: every lost frame fails its level for everyone (full-quorum
  // census), the barrier resynchronizes, the redo retransmits.
  const RunResult result = RunScenario(
      "storm", DeployConfig(92, /*chaos=*/true), "--compare-lockstep",
      /*expect_ok=*/true);
  const sqm::DropoutReport& dropout = result.report.dropout;

  EXPECT_EQ(dropout.num_dropped, 0u);
  EXPECT_EQ(dropout.survivors.size(), 5u);
  EXPECT_DOUBLE_EQ(dropout.realized_mu, 4.0);
  EXPECT_DOUBLE_EQ(dropout.realized_epsilon, dropout.configured_epsilon);
  EXPECT_NE(result.coordinator_json.find("\"lockstep_match\":true"),
            std::string::npos);
}

TEST(DeployChaos, ExhaustedRestartsFallBackToDegrade) {
  // --crash-every-incarnation re-arms the SIGKILL on the respawn, so the
  // single restart is spent and party 2 stays dead. The survivors must
  // then positively declare it dead (reconnect + rejoin window), fall
  // back to the PR 2 degrade path and re-account honestly: mu drops to
  // 4 * 4/5 = 3.2 and epsilon gets strictly worse but stays finite.
  const RunResult result = RunScenario(
      "exhaust", DeployConfig(93, /*chaos=*/false),
      "--crash-every-incarnation", /*expect_ok=*/true);
  const sqm::DropoutReport& dropout = result.report.dropout;

  EXPECT_EQ(dropout.policy, sqm::DropoutPolicy::kDegrade);
  EXPECT_EQ(dropout.num_dropped, 1u);
  ASSERT_EQ(dropout.survivors.size(), 4u);
  for (size_t survivor : dropout.survivors) {
    EXPECT_NE(survivor, 2u) << "the twice-killed party cannot survive";
  }
  EXPECT_NEAR(dropout.realized_mu, 3.2, 1e-12);
  EXPECT_GT(dropout.realized_epsilon, dropout.configured_epsilon);
  EXPECT_TRUE(std::isfinite(dropout.realized_epsilon));
}

#else  // !SQM_DEPLOY_TEST_SUPPORTED

TEST(DeployChaos, SkippedWithoutForkExec) {
  GTEST_SKIP() << "multi-process chaos tests need POSIX fork/exec";
}

#endif

}  // namespace
