#include "dp/rdp.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sqm {
namespace {

TEST(RdpTest, ConversionMatchesClosedForm) {
  // Lemma 9 at alpha = 2, tau = 1, delta = 1e-5:
  // eps = 1 + log(1e5) + log(1/2) - log(2).
  const double expected =
      1.0 + std::log(1e5) + std::log(0.5) - std::log(2.0);
  EXPECT_NEAR(RdpToEpsilon(2.0, 1.0, 1e-5), expected, 1e-12);
}

TEST(RdpTest, EpsilonIncreasesWithTau) {
  EXPECT_LT(RdpToEpsilon(4.0, 0.1, 1e-5), RdpToEpsilon(4.0, 0.2, 1e-5));
}

TEST(RdpTest, EpsilonDecreasesWithDelta) {
  EXPECT_GT(RdpToEpsilon(4.0, 0.1, 1e-9), RdpToEpsilon(4.0, 0.1, 1e-3));
}

TEST(RdpTest, BestEpsilonPicksInteriorAlpha) {
  // Gaussian-like curve tau = alpha * r: the conversion tradeoff makes
  // neither the smallest nor the largest alpha optimal in general.
  const auto curve = [](double alpha) { return alpha * 0.01; };
  double best_alpha = 0.0;
  const double eps =
      BestEpsilonFromCurve(curve, DefaultAlphaGrid(), 1e-5, &best_alpha);
  EXPECT_GT(best_alpha, 2.0);
  EXPECT_LT(best_alpha, 128.0);
  // Must be at most the epsilon at any particular alpha.
  EXPECT_LE(eps, RdpToEpsilon(2.0, curve(2.0), 1e-5));
  EXPECT_LE(eps, RdpToEpsilon(64.0, curve(64.0), 1e-5));
}

TEST(RdpTest, ComposeSums) {
  EXPECT_DOUBLE_EQ(ComposeRdp({0.1, 0.2, 0.3}), 0.6);
  EXPECT_DOUBLE_EQ(ComposeRdp({}), 0.0);
}

TEST(RdpTest, LogBinomialMatchesSmallCases) {
  EXPECT_NEAR(LogBinomial(5, 2), std::log(10.0), 1e-12);
  EXPECT_NEAR(LogBinomial(10, 0), 0.0, 1e-12);
  EXPECT_NEAR(LogBinomial(10, 10), 0.0, 1e-12);
  EXPECT_NEAR(LogBinomial(52, 5), std::log(2598960.0), 1e-9);
}

TEST(RdpTest, LogSumExpStable) {
  EXPECT_NEAR(LogSumExp({0.0, 0.0}), std::log(2.0), 1e-12);
  // Huge values must not overflow.
  EXPECT_NEAR(LogSumExp({1000.0, 1000.0}), 1000.0 + std::log(2.0), 1e-9);
  // Dominant term wins.
  EXPECT_NEAR(LogSumExp({0.0, 500.0}), 500.0, 1e-9);
}

TEST(RdpTest, SubsamplingWithQOneIsIdentity) {
  const auto tau = [](size_t l) { return 0.05 * static_cast<double>(l); };
  EXPECT_DOUBLE_EQ(SubsampledRdp(8, 1.0, tau), tau(8));
}

TEST(RdpTest, SubsamplingAmplifiesPrivacy) {
  const auto tau = [](size_t l) { return 0.1 * static_cast<double>(l); };
  const double amplified = SubsampledRdp(8, 0.01, tau);
  EXPECT_LT(amplified, tau(8));
  EXPECT_GT(amplified, 0.0);
}

TEST(RdpTest, SubsamplingMonotoneInQ) {
  const auto tau = [](size_t l) { return 0.1 * static_cast<double>(l); };
  double prev = 0.0;
  for (double q : {0.001, 0.01, 0.1, 0.5}) {
    const double value = SubsampledRdp(4, q, tau);
    EXPECT_GT(value, prev);
    prev = value;
  }
}

TEST(RdpTest, SubsamplingStableForHugeInnerTau) {
  // The paper's LR accounting feeds enormous tau_l (unscaled sensitivities);
  // the log-space computation must stay finite.
  const auto tau = [](size_t l) { return 1e4 * static_cast<double>(l); };
  const double value = SubsampledRdp(4, 1e-3, tau);
  EXPECT_TRUE(std::isfinite(value));
  EXPECT_GT(value, 0.0);
}

TEST(RdpTest, SubsamplingSmallQSecondOrderBehaviour) {
  // For q -> 0 the bound behaves like q^2 * e^{tau_2} terms: halving q
  // should reduce tau by roughly 4x in the small-q regime.
  const auto tau = [](size_t l) { return 0.5 * static_cast<double>(l); };
  const double t1 = SubsampledRdp(2, 0.01, tau);
  const double t2 = SubsampledRdp(2, 0.005, tau);
  EXPECT_NEAR(t1 / t2, 4.0, 0.5);
}

}  // namespace
}  // namespace sqm
