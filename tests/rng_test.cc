#include "sampling/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "math/stats.h"

namespace sqm {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  size_t same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_EQ(same, 0u);
}

TEST(RngTest, ZeroSeedWorks) {
  Rng rng(0);
  std::set<uint64_t> seen;
  for (int i = 0; i < 64; ++i) seen.insert(rng.NextUint64());
  EXPECT_GT(seen.size(), 60u);  // No obvious degeneracy.
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, BoundedIsRoughlyUniform) {
  Rng rng(11);
  constexpr uint64_t kBound = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(kBound)];
  for (int c : counts) {
    // Expected 10000 each; 5-sigma band ~ +-470.
    EXPECT_NEAR(c, kDraws / static_cast<int>(kBound), 500);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(13);
  double min_seen = 1.0;
  double max_seen = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    min_seen = std::min(min_seen, u);
    max_seen = std::max(max_seen, u);
  }
  EXPECT_LT(min_seen, 0.01);
  EXPECT_GT(max_seen, 0.99);
}

TEST(RngTest, DoubleMeanIsHalf) {
  Rng rng(17);
  std::vector<double> draws(50000);
  for (auto& d : draws) d = rng.NextDouble();
  EXPECT_NEAR(Mean(draws), 0.5, 0.01);
  EXPECT_NEAR(Variance(draws), 1.0 / 12.0, 0.01);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(19);
  for (double p : {0.1, 0.5, 0.9}) {
    int heads = 0;
    constexpr int kDraws = 50000;
    for (int i = 0; i < kDraws; ++i) {
      if (rng.NextBernoulli(p)) ++heads;
    }
    EXPECT_NEAR(static_cast<double>(heads) / kDraws, p, 0.01);
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_FALSE(rng.NextBernoulli(-1.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
    EXPECT_TRUE(rng.NextBernoulli(2.0));
  }
}

TEST(RngTest, SplitStreamsAreIndependent) {
  Rng parent(29);
  Rng child_a = parent.Split(0);
  Rng child_b = parent.Split(1);
  size_t same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (child_a.NextUint64() == child_b.NextUint64()) ++same;
  }
  EXPECT_EQ(same, 0u);
}

TEST(RngTest, SplitIsDeterministic) {
  Rng p1(31);
  Rng p2(31);
  Rng c1 = p1.Split(5);
  Rng c2 = p2.Split(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(c1.NextUint64(), c2.NextUint64());
}

}  // namespace
}  // namespace sqm
