// Differential-equivalence harness for the batched hot path: every batched
// kernel (Field *Vec, Shamir ShareBatch/ReconstructBatch) must be
// bit-identical to the element-at-a-time reference it replaced, and the
// Beaver-pool Mul backend must release bit-identical values to GRR degree
// reduction across all three transports (lockstep, threaded, TCP) under
// identical seeds. These are not statistical comparisons — a single
// differing bit anywhere is a failure, because every recorded transcript,
// golden pin, and published experiment depends on exact reproducibility.
//
// docs/TESTING.md "Differential equivalence" describes the tier; the
// companion pins live in golden_stream_test.cc.

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/party_sqm.h"
#include "core/sqm.h"
#include "mpc/beaver.h"
#include "mpc/field.h"
#include "mpc/network.h"
#include "mpc/protocol.h"
#include "mpc/shamir.h"
#include "net/tcp/party_config.h"
#include "net/tcp/socket.h"
#include "net/tcp/tcp_transport.h"
#include "poly/parser.h"
#include "sampling/rng.h"

namespace {

using sqm::BeaverTriplePool;
using sqm::Field;
using sqm::Rng;
using sqm::ShamirScheme;
using sqm::net::ListenOn;
using sqm::net::LocalPort;
using sqm::net::Socket;
using sqm::net::TcpSupported;

// Adversarial operands for the branchless kernels: the canonical boundary
// (0, 1, p-2, p-1), values straddling the conditional-subtract edge, and a
// seeded random fill. The scalar ops are the ground truth.
std::vector<Field::Element> AdversarialOperands(uint64_t seed) {
  std::vector<Field::Element> v = {
      0,
      1,
      2,
      Field::kModulus - 1,
      Field::kModulus - 2,
      (Field::kModulus - 1) / 2,
      (Field::kModulus + 1) / 2,
      uint64_t{1} << 60,
      (uint64_t{1} << 60) - 1,
  };
  Rng rng(seed);
  for (size_t i = 0; i < 64; ++i) v.push_back(rng.NextBounded(Field::kModulus));
  return v;
}

TEST(FieldVecEquivalence, AddSubMulScaleMatchScalarBitForBit) {
  const std::vector<Field::Element> a = AdversarialOperands(101);
  const std::vector<Field::Element> b = AdversarialOperands(202);
  const size_t n = a.size();
  std::vector<Field::Element> got(n);

  Field::AddVec(a.data(), b.data(), got.data(), n);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(got[i], Field::Add(a[i], b[i])) << "AddVec at " << i;
  }
  Field::SubVec(a.data(), b.data(), got.data(), n);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(got[i], Field::Sub(a[i], b[i])) << "SubVec at " << i;
  }
  Field::MulVec(a.data(), b.data(), got.data(), n);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(got[i], Field::Mul(a[i], b[i])) << "MulVec at " << i;
  }
  const Field::Element c = Field::kModulus - 3;
  Field::ScaleVec(a.data(), c, got.data(), n);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(got[i], Field::Mul(a[i], c)) << "ScaleVec at " << i;
  }
}

TEST(FieldVecEquivalence, MulAddVecMatchesScalarAccumulation) {
  const std::vector<Field::Element> v = AdversarialOperands(303);
  const Field::Element w = (Field::kModulus - 1) / 3;
  std::vector<Field::Element> acc_vec = AdversarialOperands(404);
  std::vector<Field::Element> acc_ref = acc_vec;
  Field::MulAddVec(acc_vec.data(), v.data(), w, v.size());
  for (size_t i = 0; i < v.size(); ++i) {
    acc_ref[i] = Field::Add(acc_ref[i], Field::Mul(v[i], w));
  }
  EXPECT_EQ(acc_vec, acc_ref);
}

TEST(FieldVecEquivalence, ReduceVecMatchesScalarReduceAboveModulus) {
  // Raw 64-bit inputs deliberately above p (the lazy-reduction range),
  // including the top of the uint64 range and exact multiples of p.
  std::vector<uint64_t> raw = {
      0,
      Field::kModulus,
      Field::kModulus + 1,
      2 * Field::kModulus,
      2 * Field::kModulus + 5,
      ~uint64_t{0},
      ~uint64_t{0} - 1,
      uint64_t{1} << 61,
      (uint64_t{1} << 62) | 12345,
  };
  Rng rng(505);
  for (size_t i = 0; i < 64; ++i) raw.push_back(rng.NextUint64());
  std::vector<Field::Element> got(raw.size());
  Field::ReduceVec(raw.data(), got.data(), raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    EXPECT_EQ(got[i], Field::Reduce(raw[i])) << "ReduceVec at " << i;
    EXPECT_LT(got[i], Field::kModulus);
  }
}

TEST(FieldVecEquivalence, SumVecMatchesScalarFold) {
  const std::vector<Field::Element> v = AdversarialOperands(606);
  Field::Element ref = 0;
  for (const Field::Element e : v) ref = Field::Add(ref, e);
  EXPECT_EQ(Field::SumVec(v.data(), v.size()), ref);
  EXPECT_EQ(Field::SumVec(v.data(), 0), 0u);
}

// ShareBatch must draw randomness in exactly the order d scalar Share
// calls would, produce the identical share matrix, and leave the RNG at
// the identical cursor — this is what lets the protocol swap one for the
// other without invalidating any recorded transcript.
TEST(ShamirBatchEquivalence, ShareBatchMatchesScalarShareStream) {
  const ShamirScheme scheme(5, 2);
  const std::vector<Field::Element> secrets = {
      Field::Encode(42),  Field::Encode(-7), 0, Field::kModulus - 1,
      Field::Encode(123),
  };
  Rng scalar_rng(2024);
  Rng batch_rng(2024);

  std::vector<std::vector<Field::Element>> expected(
      scheme.num_parties(), std::vector<Field::Element>(secrets.size()));
  for (size_t i = 0; i < secrets.size(); ++i) {
    const std::vector<Field::Element> shares =
        scheme.Share(secrets[i], scalar_rng);
    for (size_t j = 0; j < scheme.num_parties(); ++j) {
      expected[j][i] = shares[j];
    }
  }
  const std::vector<std::vector<Field::Element>> got =
      scheme.ShareBatch(secrets, batch_rng);
  EXPECT_EQ(got, expected);
  // Cursor equality: the next draws from both streams must agree.
  EXPECT_EQ(batch_rng.NextUint64(), scalar_rng.NextUint64());
  EXPECT_EQ(batch_rng.NextUint64(), scalar_rng.NextUint64());
}

TEST(ShamirBatchEquivalence, ReconstructBatchMatchesScalar) {
  const ShamirScheme scheme(7, 3);
  Rng rng(99);
  const std::vector<Field::Element> secrets = {
      Field::Encode(1), Field::Encode(-1000), Field::kModulus - 1, 0,
  };
  const std::vector<std::vector<Field::Element>> rows =
      scheme.ShareBatch(secrets, rng);
  const std::vector<Field::Element> opened = scheme.ReconstructBatch(rows);
  ASSERT_EQ(opened.size(), secrets.size());
  std::vector<Field::Element> column(scheme.num_parties());
  for (size_t i = 0; i < secrets.size(); ++i) {
    for (size_t j = 0; j < scheme.num_parties(); ++j) column[j] = rows[j][i];
    EXPECT_EQ(opened[i], scheme.Reconstruct(column)) << "element " << i;
    EXPECT_EQ(opened[i], secrets[i]) << "element " << i;
  }
}

TEST(ShamirBatchEquivalence, ReconstructBatchFromSurvivorsMatchesScalar) {
  const ShamirScheme scheme(5, 2);
  Rng rng(4242);
  const std::vector<Field::Element> secrets = {
      Field::Encode(5), Field::Encode(-5), Field::Encode(1 << 20),
  };
  std::vector<std::vector<Field::Element>> rows =
      scheme.ShareBatch(secrets, rng);
  // Parties 1 and 3 dropped: their rows are stale/empty.
  const std::vector<size_t> survivors = {0, 2, 4};
  rows[1].clear();
  rows[3].assign(1, 777);  // Wrong length too — must never be touched.
  const sqm::Result<std::vector<Field::Element>> batch =
      scheme.ReconstructBatchFromSurvivors(rows, survivors,
                                           scheme.threshold());
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  std::vector<Field::Element> column(scheme.num_parties(), 0);
  for (size_t i = 0; i < secrets.size(); ++i) {
    for (const size_t j : survivors) column[j] = rows[j][i];
    const sqm::Result<Field::Element> scalar =
        scheme.ReconstructFromSurvivors(column, survivors,
                                        scheme.threshold());
    ASSERT_TRUE(scalar.ok()) << scalar.status().ToString();
    EXPECT_EQ(batch.ValueOrDie()[i], scalar.ValueOrDie()) << "element " << i;
    EXPECT_EQ(batch.ValueOrDie()[i], secrets[i]) << "element " << i;
  }
}

TEST(ShamirBatchEquivalence, SurvivorShortfallFailsLikeScalar) {
  const ShamirScheme scheme(5, 2);
  Rng rng(7);
  const std::vector<std::vector<Field::Element>> rows =
      scheme.ShareBatch({Field::Encode(9)}, rng);
  const std::vector<size_t> survivors = {0, 4};  // Need t+1 = 3.
  const sqm::Result<std::vector<Field::Element>> batch =
      scheme.ReconstructBatchFromSurvivors(rows, survivors,
                                           scheme.threshold());
  EXPECT_EQ(batch.status().code(), sqm::StatusCode::kFailedPrecondition)
      << batch.status().ToString();
}

// ---------------------------------------------------------------------------
// GRR vs Beaver, driver transports. The MPC is exact — the release is a
// deterministic function of the quantized inputs and the externally
// sampled noise, neither of which depends on how products are reduced —
// so switching the Mul backend must not move a single bit of the release.

sqm::SqmOptions DriverOptions(sqm::MulBackend backend,
                              sqm::TransportMode transport) {
  sqm::SqmOptions options;
  options.backend = sqm::MpcBackend::kBgw;
  options.mul_backend = backend;
  options.transport = transport;
  options.gamma = 64.0;
  options.mu = 4.0;
  options.seed = 42;
  return options;
}

sqm::Result<sqm::SqmReport> RunDriver(const sqm::SqmOptions& options) {
  sqm::Result<sqm::PolynomialVector> f =
      sqm::ParsePolynomialVector("x0*x1 + x2; x2*x2");
  EXPECT_TRUE(f.ok()) << f.status().ToString();
  const sqm::Matrix x = sqm::GenerateDeploymentMatrix(8, 3, 7);
  sqm::SqmEvaluator evaluator(options);
  return evaluator.Evaluate(f.ValueOrDie(), x);
}

TEST(GrrVsBeaver, LockstepReleasesAreBitIdentical) {
  const sqm::Result<sqm::SqmReport> grr = RunDriver(
      DriverOptions(sqm::MulBackend::kGrr, sqm::TransportMode::kLockstep));
  ASSERT_TRUE(grr.ok()) << grr.status().ToString();
  const sqm::Result<sqm::SqmReport> beaver = RunDriver(
      DriverOptions(sqm::MulBackend::kBeaver, sqm::TransportMode::kLockstep));
  ASSERT_TRUE(beaver.ok()) << beaver.status().ToString();
  ASSERT_FALSE(grr.ValueOrDie().raw.empty());
  EXPECT_EQ(beaver.ValueOrDie().raw, grr.ValueOrDie().raw);
  EXPECT_EQ(beaver.ValueOrDie().estimate, grr.ValueOrDie().estimate);
}

TEST(GrrVsBeaver, ThreadedReleasesMatchLockstepBothBackends) {
  const sqm::Result<sqm::SqmReport> reference = RunDriver(
      DriverOptions(sqm::MulBackend::kGrr, sqm::TransportMode::kLockstep));
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  for (const sqm::MulBackend backend :
       {sqm::MulBackend::kGrr, sqm::MulBackend::kBeaver}) {
    const sqm::Result<sqm::SqmReport> threaded =
        RunDriver(DriverOptions(backend, sqm::TransportMode::kThreaded));
    ASSERT_TRUE(threaded.ok()) << threaded.status().ToString();
    EXPECT_EQ(threaded.ValueOrDie().raw, reference.ValueOrDie().raw)
        << "backend " << sqm::MulBackendToString(backend);
  }
}

TEST(GrrVsBeaver, QuorumPathReleasesAreBitIdentical) {
  // Degrade policy with no crashes: the quorum machinery runs (census for
  // GRR, censusless opens for Beaver) but every party survives, so the
  // release must equal the kAbort run bit for bit under both backends.
  sqm::SqmOptions grr_options =
      DriverOptions(sqm::MulBackend::kGrr, sqm::TransportMode::kLockstep);
  grr_options.dropout_policy = sqm::DropoutPolicy::kDegrade;
  sqm::SqmOptions beaver_options = grr_options;
  beaver_options.mul_backend = sqm::MulBackend::kBeaver;
  const sqm::Result<sqm::SqmReport> grr = RunDriver(grr_options);
  ASSERT_TRUE(grr.ok()) << grr.status().ToString();
  const sqm::Result<sqm::SqmReport> beaver = RunDriver(beaver_options);
  ASSERT_TRUE(beaver.ok()) << beaver.status().ToString();
  EXPECT_EQ(beaver.ValueOrDie().raw, grr.ValueOrDie().raw);

  const sqm::Result<sqm::SqmReport> abort_run = RunDriver(
      DriverOptions(sqm::MulBackend::kGrr, sqm::TransportMode::kLockstep));
  ASSERT_TRUE(abort_run.ok()) << abort_run.status().ToString();
  EXPECT_EQ(grr.ValueOrDie().raw, abort_run.ValueOrDie().raw);
}

// ---------------------------------------------------------------------------
// GRR vs Beaver over real loopback TCP: every party its own thread with
// real sockets, exactly as the sqm-party daemon runs. Same helpers as
// party_protocol_test.cc.

sqm::DeploymentConfig TcpConfig(const std::string& mul_backend,
                                uint64_t run_id) {
  sqm::DeploymentConfig config;
  config.run_id = run_id;
  config.session_key = 0xbea7e5;
  config.parties.assign(3, {"127.0.0.1", 0});
  config.rows = 8;
  config.cols = 3;
  config.data_seed = 7;
  config.polynomial = "x0*x1 + x2; x2*x2";
  config.gamma = 64;
  config.mu = 4.0;
  config.seed = 42;
  config.mul_backend = mul_backend;
  config.receive_timeout_seconds = 1.0;
  config.connect_timeout_seconds = 10.0;
  return config;
}

std::vector<sqm::SqmReport> RunNetworked(sqm::DeploymentConfig config) {
  const size_t n = config.parties.size();
  std::vector<Socket> listeners;
  for (size_t i = 0; i < n; ++i) {
    sqm::Result<Socket> listener = ListenOn("127.0.0.1", 0);
    EXPECT_TRUE(listener.ok()) << listener.status().ToString();
    sqm::Result<uint16_t> port = LocalPort(listener.ValueOrDie());
    EXPECT_TRUE(port.ok()) << port.status().ToString();
    config.parties[i].port = port.ValueOrDie();
    listeners.push_back(std::move(listener.ValueOrDie()));
  }
  std::vector<sqm::SqmReport> reports(n);
  std::vector<std::string> errors(n);
  std::vector<std::thread> threads;
  for (size_t i = 0; i < n; ++i) {
    const int fd = listeners[i].Release();
    threads.emplace_back([&, i, fd] {
      sqm::Result<std::unique_ptr<sqm::TcpTransport>> transport =
          sqm::TcpTransport::Create(
              sqm::TcpOptionsFromDeployment(config, i, fd));
      if (!transport.ok()) {
        errors[i] = "transport: " + transport.status().ToString();
        return;
      }
      sqm::Result<sqm::SqmReport> report =
          sqm::RunPartySqm(config, i, transport.ValueOrDie().get());
      transport.ValueOrDie()->Shutdown();
      if (!report.ok()) {
        errors[i] = report.status().ToString();
        return;
      }
      reports[i] = report.ValueOrDie();
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(errors[i].empty()) << "party " << i << ": " << errors[i];
  }
  return reports;
}

TEST(GrrVsBeaver, TcpReleasesMatchDriverBitForBitBothBackends) {
  if (!TcpSupported()) GTEST_SKIP() << "no POSIX sockets on this platform";
  const sqm::Result<sqm::SqmReport> reference = RunDriver(
      DriverOptions(sqm::MulBackend::kGrr, sqm::TransportMode::kLockstep));
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  const std::vector<sqm::SqmReport> grr = RunNetworked(TcpConfig("grr", 31));
  ASSERT_EQ(grr.size(), 3u);
  const std::vector<sqm::SqmReport> beaver =
      RunNetworked(TcpConfig("beaver", 32));
  ASSERT_EQ(beaver.size(), 3u);

  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(grr[i].raw, reference.ValueOrDie().raw)
        << "grr party " << i << " differs from driver";
    EXPECT_EQ(beaver[i].raw, reference.ValueOrDie().raw)
        << "beaver party " << i << " differs from driver";
  }
}

TEST(GrrVsBeaver, BeaverHalvesQuorumMulRoundsOnTcp) {
  if (!TcpSupported()) GTEST_SKIP() << "no POSIX sockets on this platform";
  // Under the quorum path a GRR Mul costs two rounds (sub-shares +
  // census) while a Beaver Mul costs one (the opened values are public,
  // so no dealer-set agreement is needed). With the input and output
  // rounds identical, the Beaver run must finish in strictly fewer
  // rounds and release the same values.
  sqm::DeploymentConfig grr_config = TcpConfig("grr", 33);
  grr_config.dropout_policy = "degrade";
  sqm::DeploymentConfig beaver_config = TcpConfig("beaver", 34);
  beaver_config.dropout_policy = "degrade";
  const std::vector<sqm::SqmReport> grr = RunNetworked(grr_config);
  ASSERT_EQ(grr.size(), 3u);
  const std::vector<sqm::SqmReport> beaver = RunNetworked(beaver_config);
  ASSERT_EQ(beaver.size(), 3u);
  EXPECT_EQ(beaver[0].raw, grr[0].raw);
  EXPECT_LT(beaver[0].network.rounds, grr[0].network.rounds);
  // The census phase disappears entirely under Beaver.
  for (const auto& phase : beaver[0].transport.phases) {
    EXPECT_NE(phase.phase, "census") << "Beaver run still ran a census";
  }
}

// ---------------------------------------------------------------------------
// Pool-backed protocol details observable at this level.

TEST(GrrVsBeaver, ProtocolCountsTriplesAndPinsPoolToDealerStream) {
  const size_t n = 5;
  const ShamirScheme scheme(n, 2);
  sqm::SimulatedNetwork network(n, 0.0);
  sqm::BgwProtocol protocol(scheme, &network, 77);
  BeaverTriplePool pool(scheme, 1234, 8);
  protocol.set_beaver_pool(&pool);

  const sqm::SharedVector a =
      protocol.ShareFromParty(0, {Field::Encode(6), Field::Encode(-3)});
  const sqm::SharedVector b =
      protocol.ShareFromParty(1, {Field::Encode(7), Field::Encode(11)});
  sqm::Result<sqm::SharedVector> product = protocol.Mul(a, b);
  ASSERT_TRUE(product.ok()) << product.status().ToString();
  EXPECT_EQ(protocol.beaver_triples_used(), 2u);
  EXPECT_EQ(pool.taken(), 2u);
  const std::vector<int64_t> opened =
      protocol.OpenSigned(product.ValueOrDie());
  EXPECT_EQ(opened, (std::vector<int64_t>{42, -33}));
}

}  // namespace
