#include "core/logging.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/json.h"

namespace sqm {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_level_ = Logger::GetLevel(); }
  void TearDown() override {
    Logger::SetLevel(saved_level_);
    Logger::SetSink(nullptr);
    Logger::ClearModuleLevels();
  }

  LogLevel saved_level_;
};

TEST_F(LoggingTest, LevelRoundTrips) {
  Logger::SetLevel(LogLevel::kWarning);
  EXPECT_EQ(Logger::GetLevel(), LogLevel::kWarning);
  Logger::SetLevel(LogLevel::kDebug);
  EXPECT_EQ(Logger::GetLevel(), LogLevel::kDebug);
}

TEST_F(LoggingTest, BelowThresholdIsSuppressed) {
  Logger::SetLevel(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  SQM_LOG(kInfo) << "should not appear";
  SQM_LOG(kWarning) << "nor this";
  const std::string output = ::testing::internal::GetCapturedStderr();
  EXPECT_TRUE(output.empty()) << output;
}

TEST_F(LoggingTest, AtOrAboveThresholdIsEmitted) {
  Logger::SetLevel(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  SQM_LOG(kInfo) << "hello " << 42;
  SQM_LOG(kError) << "bad thing";
  const std::string output = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(output.find("[INFO] hello 42"), std::string::npos);
  EXPECT_NE(output.find("[ERROR] bad thing"), std::string::npos);
}

TEST_F(LoggingTest, CheckPassesSilently) {
  ::testing::internal::CaptureStderr();
  SQM_CHECK(1 + 1 == 2);
  EXPECT_TRUE(::testing::internal::GetCapturedStderr().empty());
}

TEST_F(LoggingTest, SinkCapturesStructuredRecords) {
  std::vector<LogRecord> records;
  Logger::SetSink([&records](const LogRecord& r) { records.push_back(r); });
  Logger::SetLevel(LogLevel::kInfo);
  SQM_LOG(kWarning) << "captured " << 7;

  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].level, LogLevel::kWarning);
  EXPECT_EQ(records[0].message, "captured 7");
  EXPECT_EQ(records[0].line, __LINE__ - 5);
  // Module derivation depends on how the build spells __FILE__; the
  // record must agree with the public helper either way.
  EXPECT_EQ(records[0].module, Logger::ModuleFromFile(__FILE__));
  EXPECT_GE(records[0].elapsed_seconds, 0.0);
}

TEST_F(LoggingTest, NullSinkRestoresStderrDefault) {
  std::vector<LogRecord> records;
  Logger::SetSink([&records](const LogRecord& r) { records.push_back(r); });
  Logger::SetSink(nullptr);
  Logger::SetLevel(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  SQM_LOG(kInfo) << "back to stderr";
  const std::string output = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(output.find("[INFO] back to stderr"), std::string::npos);
  EXPECT_TRUE(records.empty());
}

TEST_F(LoggingTest, ModuleLevelOverrideWinsOverGlobal) {
  Logger::SetLevel(LogLevel::kError);
  Logger::SetModuleLevel("tests", LogLevel::kDebug);
  EXPECT_TRUE(Logger::ShouldLog(LogLevel::kDebug, "tests"));
  EXPECT_FALSE(Logger::ShouldLog(LogLevel::kDebug, "net"));
  Logger::ClearModuleLevel("tests");
  EXPECT_FALSE(Logger::ShouldLog(LogLevel::kDebug, "tests"));
}

TEST_F(LoggingTest, RecordToJsonLineParses) {
  LogRecord record;
  record.level = LogLevel::kWarning;
  record.file = "src/net/threaded.cc";
  record.line = 42;
  record.module = "net";
  record.message = "retry \"queue\" full";
  record.elapsed_seconds = 1.5;

  const JsonValue root =
      ParseJson(Logger::RecordToJsonLine(record)).ValueOrDie();
  EXPECT_EQ(root.Find("level")->string_value, "WARN");
  EXPECT_EQ(root.Find("module")->string_value, "net");
  EXPECT_EQ(root.Find("message")->string_value, "retry \"queue\" full");
  EXPECT_EQ(root.Find("line")->int_value, 42);
}

TEST_F(LoggingTest, ModuleFromFileStripsSrcPrefix) {
  EXPECT_EQ(Logger::ModuleFromFile("src/net/threaded.cc"), "net");
  EXPECT_EQ(Logger::ModuleFromFile("/root/repo/src/mpc/bgw.cc"), "mpc");
  EXPECT_EQ(Logger::ModuleFromFile("tests/logging_test.cc"), "tests");
  EXPECT_EQ(Logger::ModuleFromFile("standalone.cc"), "");
}

TEST_F(LoggingTest, ConcurrentLoggingKeepsRecordsWhole) {
  std::atomic<int> count{0};
  Logger::SetSink([&count](const LogRecord& r) {
    // Sinks run under the logger mutex: each record arrives complete.
    if (r.message == "thread message") count.fetch_add(1);
  });
  Logger::SetLevel(LogLevel::kInfo);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 50; ++i) SQM_LOG(kInfo) << "thread message";
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(count.load(), 8 * 50);
}

using LoggingDeathTest = LoggingTest;

TEST_F(LoggingDeathTest, FatalAborts) {
  EXPECT_DEATH(Logger::Log(LogLevel::kFatal, "boom"), "boom");
}

TEST_F(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH(SQM_CHECK(false), "Check failed");
}

}  // namespace
}  // namespace sqm
