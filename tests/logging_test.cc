#include "core/logging.h"

#include <gtest/gtest.h>

namespace sqm {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_level_ = Logger::GetLevel(); }
  void TearDown() override { Logger::SetLevel(saved_level_); }

  LogLevel saved_level_;
};

TEST_F(LoggingTest, LevelRoundTrips) {
  Logger::SetLevel(LogLevel::kWarning);
  EXPECT_EQ(Logger::GetLevel(), LogLevel::kWarning);
  Logger::SetLevel(LogLevel::kDebug);
  EXPECT_EQ(Logger::GetLevel(), LogLevel::kDebug);
}

TEST_F(LoggingTest, BelowThresholdIsSuppressed) {
  Logger::SetLevel(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  SQM_LOG(kInfo) << "should not appear";
  SQM_LOG(kWarning) << "nor this";
  const std::string output = ::testing::internal::GetCapturedStderr();
  EXPECT_TRUE(output.empty()) << output;
}

TEST_F(LoggingTest, AtOrAboveThresholdIsEmitted) {
  Logger::SetLevel(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  SQM_LOG(kInfo) << "hello " << 42;
  SQM_LOG(kError) << "bad thing";
  const std::string output = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(output.find("[INFO] hello 42"), std::string::npos);
  EXPECT_NE(output.find("[ERROR] bad thing"), std::string::npos);
}

TEST_F(LoggingTest, CheckPassesSilently) {
  ::testing::internal::CaptureStderr();
  SQM_CHECK(1 + 1 == 2);
  EXPECT_TRUE(::testing::internal::GetCapturedStderr().empty());
}

using LoggingDeathTest = LoggingTest;

TEST_F(LoggingDeathTest, FatalAborts) {
  EXPECT_DEATH(Logger::Log(LogLevel::kFatal, "boom"), "boom");
}

TEST_F(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH(SQM_CHECK(false), "Check failed");
}

}  // namespace
}  // namespace sqm
