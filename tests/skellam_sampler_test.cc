#include "sampling/skellam_sampler.h"

#include <gtest/gtest.h>

#include <cmath>

#include "math/stats.h"
#include "sampling/rng.h"

namespace sqm {
namespace {

TEST(SkellamSamplerTest, ZeroMuIsDegenerate) {
  SkellamSampler sampler(0.0);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.Sample(rng), 0);
}

class SkellamMomentsTest : public ::testing::TestWithParam<double> {};

TEST_P(SkellamMomentsTest, ZeroMeanVarianceTwoMu) {
  const double mu = GetParam();
  SkellamSampler sampler(mu);
  Rng rng(11);
  constexpr size_t kDraws = 200000;
  const std::vector<int64_t> draws = sampler.SampleVector(rng, kDraws);
  const double std_dev = std::sqrt(2.0 * mu);
  EXPECT_NEAR(Mean(draws), 0.0, 5.0 * std_dev / std::sqrt(kDraws));
  EXPECT_NEAR(Variance(draws), 2.0 * mu, 0.05 * 2.0 * mu);
}

INSTANTIATE_TEST_SUITE_P(Mus, SkellamMomentsTest,
                         ::testing::Values(0.5, 2.0, 10.0, 100.0, 5000.0));

TEST(SkellamSamplerTest, SymmetricDistribution) {
  SkellamSampler sampler(5.0);
  Rng rng(13);
  std::vector<double> draws(200000);
  for (auto& d : draws) d = static_cast<double>(sampler.Sample(rng));
  EXPECT_NEAR(Skewness(draws), 0.0, 0.02);
}

TEST(SkellamSamplerTest, ClosureUnderSummation) {
  // Sum of n draws from Sk(mu/n) must be distributed as Sk(mu) — the
  // property the distributed noise injection of Algorithm 1 relies on.
  constexpr double kTotalMu = 40.0;
  constexpr size_t kClients = 8;
  SkellamSampler share_sampler(kTotalMu / kClients);
  Rng rng(17);
  constexpr size_t kDraws = 100000;
  std::vector<double> sums(kDraws, 0.0);
  for (auto& s : sums) {
    for (size_t j = 0; j < kClients; ++j) {
      s += static_cast<double>(share_sampler.Sample(rng));
    }
  }
  EXPECT_NEAR(Mean(sums), 0.0, 5.0 * std::sqrt(2.0 * kTotalMu / kDraws));
  EXPECT_NEAR(Variance(sums), 2.0 * kTotalMu, 0.05 * 2.0 * kTotalMu);
  // Excess kurtosis of Sk(mu) is 1/(2 mu): small but positive.
  EXPECT_NEAR(ExcessKurtosis(sums), 1.0 / (2.0 * kTotalMu), 0.03);
}

TEST(SkellamSamplerTest, ExactRegimeFlag) {
  EXPECT_TRUE(SkellamSampler(1e6).IsExact());
  EXPECT_TRUE(SkellamSampler(SkellamSampler::kExactMuLimit).IsExact());
  EXPECT_FALSE(SkellamSampler(SkellamSampler::kExactMuLimit * 2).IsExact());
}

TEST(SkellamSamplerTest, LargeMuFallbackHasMatchingMoments) {
  // Above the exact limit the sampler switches to a rounded Gaussian of the
  // same variance; verify the moments (relative tolerance).
  const double mu = 1e16;
  SkellamSampler sampler(mu);
  ASSERT_FALSE(sampler.IsExact());
  Rng rng(19);
  constexpr size_t kDraws = 50000;
  std::vector<double> draws(kDraws);
  for (auto& d : draws) d = static_cast<double>(sampler.Sample(rng));
  EXPECT_NEAR(Mean(draws) / std::sqrt(2.0 * mu), 0.0, 0.05);
  EXPECT_NEAR(Variance(draws) / (2.0 * mu), 1.0, 0.05);
}

TEST(SkellamSamplerTest, VarianceAccessor) {
  EXPECT_DOUBLE_EQ(SkellamSampler(3.5).Variance(), 7.0);
}

}  // namespace
}  // namespace sqm
