// Drives the sqmlint checker in-process over fixture snippets: for every
// check, one case proving it fires and one proving a named suppression
// silences it. Fixtures are raw strings — the lexer treats literals as
// single tokens, so sqmlint's own scan of this file stays clean.

#include "sqmlint/checker.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace {

using sqmlint::Finding;

std::vector<Finding> Lint(const std::string& path, const std::string& code) {
  return sqmlint::RunChecks(sqmlint::BuildProject({{path, code}}));
}

/// Findings for `check` with the given suppression state.
int Count(const std::vector<Finding>& findings, const std::string& check,
          bool suppressed) {
  int n = 0;
  for (const Finding& f : findings) {
    if (f.check == check && f.suppressed == suppressed) ++n;
  }
  return n;
}

int Active(const std::vector<Finding>& findings, const std::string& check) {
  return Count(findings, check, false);
}

// ---------------------------------------------------------------- unchecked-status

constexpr char kDiscardedStatus[] = R"cpp(
Status Flush(int fd);
void f(int fd) {
  Flush(fd);
}
)cpp";

TEST(UncheckedStatus, FiresOnDiscardedCall) {
  const auto findings = Lint("src/dp/x.cc", kDiscardedStatus);
  EXPECT_EQ(Active(findings, "unchecked-status"), 1);
}

TEST(UncheckedStatus, SuppressionSilences) {
  const auto findings = Lint("src/dp/x.cc", R"cpp(
Status Flush(int fd);
void f(int fd) {
  Flush(fd);  // sqmlint:allow(unchecked-status)
}
)cpp");
  EXPECT_EQ(Active(findings, "unchecked-status"), 0);
  EXPECT_EQ(Count(findings, "unchecked-status", true), 1);
}

TEST(UncheckedStatus, VoidCastAndAssignmentAreChecked) {
  const auto findings = Lint("src/dp/x.cc", R"cpp(
Status Flush(int fd);
void f(int fd) {
  (void)Flush(fd);
  Status s = Flush(fd);
}
)cpp");
  EXPECT_EQ(Active(findings, "unchecked-status"), 0);
}

TEST(UncheckedStatus, AmbiguousNameIsSkipped) {
  // `Add` is declared both Status-returning and void-returning; without
  // type resolution the call is ambiguous, so the lexicon drops the name
  // ([[nodiscard]] still covers the real sites at compile time).
  const auto findings = Lint("src/dp/x.cc", R"cpp(
Status Add(int x);
void g() { Add(1); }
struct Counter { void Add(int n); };
void h(Counter& c) { c.Add(1); }
)cpp");
  EXPECT_EQ(Active(findings, "unchecked-status"), 0);
}

TEST(UncheckedStatus, ResultReturnTypeCounts) {
  const auto findings = Lint("src/dp/x.cc", R"cpp(
Result<std::vector<int>> Parse(const char* s);
void f(const char* s) {
  Parse(s);
}
)cpp");
  EXPECT_EQ(Active(findings, "unchecked-status"), 1);
}

// ------------------------------------------------------------------- secret-taint

constexpr char kLoggedShare[] = R"cpp(
void f(const std::vector<uint64_t>& noise_shares) {
  SQM_LOG(kInfo) << "first " << noise_shares[0];
}
)cpp";

TEST(SecretTaint, FiresOnShareReachingLogSink) {
  const auto findings = Lint("src/mpc/x.cc", kLoggedShare);
  EXPECT_EQ(Active(findings, "secret-taint"), 1);
}

TEST(SecretTaint, SuppressionSilences) {
  const auto findings = Lint("src/mpc/x.cc", R"cpp(
void f(const std::vector<uint64_t>& noise_shares) {
  // sqmlint:allow(secret-taint)
  SQM_LOG(kInfo) << "first " << noise_shares[0];
}
)cpp");
  EXPECT_EQ(Active(findings, "secret-taint"), 0);
  EXPECT_EQ(Count(findings, "secret-taint", true), 1);
}

TEST(SecretTaint, TestingBoundaryIsAllowlisted) {
  const auto findings = Lint("src/testing/x.cc", kLoggedShare);
  EXPECT_EQ(Active(findings, "secret-taint"), 0);
}

TEST(SecretTaint, WordBoundariesAvoidSharedPtr) {
  // "shared" is not "share": lexicon matching is per identifier word.
  const auto findings = Lint("src/mpc/x.cc", R"cpp(
void f(const std::shared_ptr<int>& shared_state) {
  SQM_LOG(kInfo) << "ptr " << shared_state.use_count();
}
)cpp");
  EXPECT_EQ(Active(findings, "secret-taint"), 0);
}

TEST(SecretTaint, FiresOnObsArgumentSink) {
  const auto findings = Lint("src/mpc/x.cc", R"cpp(
void f(Span& span, uint64_t mask_value) {
  span.AddArg("m", mask_value);
}
)cpp");
  EXPECT_EQ(Active(findings, "secret-taint"), 1);
}

// ----------------------------------------------------------------- rng-discipline

constexpr char kStdEngine[] = R"cpp(
#include <random>
void f() {
  std::mt19937 gen(42);
}
)cpp";

TEST(RngDiscipline, FiresOnStdEngineOutsideSampling) {
  const auto findings = Lint("src/net/x.cc", kStdEngine);
  EXPECT_GE(Active(findings, "rng-discipline"), 1);
}

TEST(RngDiscipline, SamplingModuleIsAllowlisted) {
  const auto findings = Lint("src/sampling/x.cc", kStdEngine);
  EXPECT_EQ(Active(findings, "rng-discipline"), 0);
}

TEST(RngDiscipline, SuppressionSilences) {
  const auto findings = Lint("src/net/x.cc", R"cpp(
void f() {
  std::mt19937 gen(42);  // sqmlint:allow(rng-discipline)
}
)cpp");
  EXPECT_EQ(Active(findings, "rng-discipline"), 0);
  EXPECT_EQ(Count(findings, "rng-discipline", true), 1);
}

TEST(RngDiscipline, WallClockInDeterministicModule) {
  const auto findings = Lint("src/mpc/x.cc", R"cpp(
void f() {
  long t = time(nullptr);
}
)cpp");
  EXPECT_EQ(Active(findings, "rng-discipline"), 1);
}

TEST(RngDiscipline, SystemClockBannedEverywhere) {
  const auto findings = Lint("tests/x.cc", R"cpp(
void f() {
  auto t = std::chrono::system_clock::now();
}
)cpp");
  EXPECT_EQ(Active(findings, "rng-discipline"), 1);
}

// ----------------------------------------------------------------- field-capacity

constexpr char kRawAdd[] = R"cpp(
void f() {
  Field::Element a = 1;
  Field::Element b = 2;
  Field::Element c = a + b;
}
)cpp";

TEST(FieldCapacity, FiresOnRawArithmetic) {
  const auto findings = Lint("src/vfl/x.cc", kRawAdd);
  EXPECT_EQ(Active(findings, "field-capacity"), 1);
}

TEST(FieldCapacity, SuppressionSilences) {
  const auto findings = Lint("src/vfl/x.cc", R"cpp(
void f() {
  Field::Element a = 1;
  Field::Element b = 2;
  Field::Element c = a + b;  // sqmlint:allow(field-capacity)
}
)cpp");
  EXPECT_EQ(Active(findings, "field-capacity"), 0);
  EXPECT_EQ(Count(findings, "field-capacity", true), 1);
}

TEST(FieldCapacity, CheckedOpsAreClean) {
  const auto findings = Lint("src/vfl/x.cc", R"cpp(
void f() {
  Field::Element a = 1;
  Field::Element b = 2;
  Field::Element c = Field::Add(a, b);
}
)cpp");
  EXPECT_EQ(Active(findings, "field-capacity"), 0);
}

TEST(FieldCapacity, FieldImplementationIsAllowlisted) {
  const auto findings = Lint("src/mpc/field.cc", kRawAdd);
  EXPECT_EQ(Active(findings, "field-capacity"), 0);
}

TEST(FieldCapacity, PointerDeclaratorIsNotMultiplication) {
  // Span-kernel signatures declare `const Element* a` where `a` is also a
  // tracked scalar name elsewhere in the file; the '*' after the type
  // name is a declarator, not field arithmetic.
  const auto findings = Lint("src/vfl/x.h", R"cpp(
struct Field {
  using Element = uint64_t;
  static Element Add(Element a, Element b);
  static void AddVec(const Element* a, const Element* b, Element* out,
                     size_t n);
};
)cpp");
  EXPECT_EQ(Active(findings, "field-capacity"), 0);
}

TEST(FieldCapacity, VectorElementIndexing) {
  const auto findings = Lint("src/vfl/x.cc", R"cpp(
void f(std::vector<Field::Element>& shares_vec) {
  shares_vec[0] += 7;
}
)cpp");
  EXPECT_EQ(Active(findings, "field-capacity"), 1);
}

// --------------------------------------------------------------- mutex-annotation

constexpr char kRawStdMutex[] = R"cpp(
#include <mutex>
struct S {
  std::mutex mu_;
};
)cpp";

TEST(MutexAnnotation, FiresOnRawStdMutexInNet) {
  const auto findings = Lint("src/net/x.h", kRawStdMutex);
  EXPECT_GE(Active(findings, "mutex-annotation"), 1);
}

TEST(MutexAnnotation, OtherModulesOutOfScope) {
  const auto findings = Lint("src/dp/x.h", kRawStdMutex);
  EXPECT_EQ(Active(findings, "mutex-annotation"), 0);
}

TEST(MutexAnnotation, SuppressionSilences) {
  const auto findings = Lint("src/net/x.h", R"cpp(
struct S {
  std::mutex mu_;  // sqmlint:allow(mutex-annotation)
};
)cpp");
  EXPECT_EQ(Active(findings, "mutex-annotation"), 0);
  EXPECT_EQ(Count(findings, "mutex-annotation", true), 1);
}

TEST(MutexAnnotation, UnannotatedMutexMember) {
  const auto findings = Lint("src/obs/x.h", R"cpp(
struct S {
  Mutex mu_;
  int guarded_value = 0;
};
)cpp");
  EXPECT_EQ(Active(findings, "mutex-annotation"), 1);
}

TEST(MutexAnnotation, GuardedByAnnotationSatisfies) {
  const auto findings = Lint("src/obs/x.h", R"cpp(
struct S {
  Mutex mu_;
  int guarded_value SQM_GUARDED_BY(mu_) = 0;
};
)cpp");
  EXPECT_EQ(Active(findings, "mutex-annotation"), 0);
}

// -------------------------------------------------------------- socket-discipline

constexpr char kRawConnect[] = R"cpp(
void f(int fd, const sockaddr* addr, unsigned len) {
  if (::connect(fd, addr, len) != 0) return;
}
)cpp";

TEST(SocketDiscipline, FiresOnRawCallOutsideSocketModule) {
  const auto findings = Lint("src/net/tcp/tcp_transport.cc", kRawConnect);
  EXPECT_EQ(Active(findings, "socket-discipline"), 1);
}

TEST(SocketDiscipline, SocketModuleIsAllowlisted) {
  const auto findings = Lint("src/net/tcp/socket.cc", kRawConnect);
  EXPECT_EQ(Active(findings, "socket-discipline"), 0);
}

TEST(SocketDiscipline, SuppressionSilences) {
  const auto findings = Lint("src/net/tcp/tcp_transport.cc", R"cpp(
void f(int fd, const sockaddr* addr, unsigned len) {
  // sqmlint:allow(socket-discipline)
  if (::connect(fd, addr, len) != 0) return;
}
)cpp");
  EXPECT_EQ(Active(findings, "socket-discipline"), 0);
  EXPECT_EQ(Count(findings, "socket-discipline", true), 1);
}

TEST(SocketDiscipline, UnqualifiedCallAlsoFires) {
  const auto findings = Lint("src/core/x.cc", R"cpp(
void f(int fd) {
  listen(fd, 64);
}
)cpp");
  EXPECT_EQ(Active(findings, "socket-discipline"), 1);
}

TEST(SocketDiscipline, MemberAndNamespacedCallsAreClean) {
  // x.send() is a method, std::bind is the functional utility — neither
  // is a socket syscall.
  const auto findings = Lint("src/core/x.cc", R"cpp(
void f(Channel& x, Fn g) {
  x.send(1);
  auto h = std::bind(g, 2);
}
)cpp");
  EXPECT_EQ(Active(findings, "socket-discipline"), 0);
}

TEST(SocketDiscipline, DiscardedResultInsideSocketModule) {
  const auto findings = Lint("src/net/tcp/socket.cc", R"cpp(
void f(int fd) {
  ::shutdown(fd, 2);
}
)cpp");
  EXPECT_EQ(Active(findings, "socket-discipline"), 1);
}

TEST(SocketDiscipline, CheckedAndVoidCastInsideSocketModule) {
  const auto findings = Lint("src/net/tcp/socket.cc", R"cpp(
void f(int fd) {
  const int rc = ::shutdown(fd, 2);
  (void)::shutdown(fd, rc);
  if (::listen(fd, 64) != 0) return;
}
)cpp");
  EXPECT_EQ(Active(findings, "socket-discipline"), 0);
}

// ------------------------------------------------------------- suppression rules

TEST(Suppression, BareDirectiveIsItselfAFinding) {
  const auto findings = Lint("src/dp/x.cc", R"cpp(
int f();  // sqmlint:allow
)cpp");
  EXPECT_EQ(Active(findings, "suppression-syntax"), 1);
}

TEST(Suppression, WrongCheckNameDoesNotSilence) {
  const auto findings = Lint("src/dp/x.cc", R"cpp(
Status Flush(int fd);
void f(int fd) {
  Flush(fd);  // sqmlint:allow(rng-discipline)
}
)cpp");
  EXPECT_EQ(Active(findings, "unchecked-status"), 1);
}

TEST(Suppression, DirectiveAboveOffendingLine) {
  const auto findings = Lint("src/dp/x.cc", R"cpp(
Status Flush(int fd);
void f(int fd) {
  // sqmlint:allow(unchecked-status)
  Flush(fd);
}
)cpp");
  EXPECT_EQ(Active(findings, "unchecked-status"), 0);
}

// -------------------------------------------------------------- retry-discipline

constexpr char kBareRetrySleep[] = R"cpp(
void Dial() {
  while (true) {
    if (TryConnect()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}
)cpp";

TEST(RetryDiscipline, FiresOnUnpacedSleepInLoop) {
  const auto findings = Lint("src/net/tcp/x.cc", kBareRetrySleep);
  EXPECT_EQ(Active(findings, "retry-discipline"), 1);
}

TEST(RetryDiscipline, OutsideNetModuleIsIgnored) {
  const auto findings = Lint("src/dp/x.cc", kBareRetrySleep);
  EXPECT_EQ(Active(findings, "retry-discipline"), 0);
}

TEST(RetryDiscipline, SleepOutsideLoopIsFine) {
  const auto findings = Lint("src/net/x.cc", R"cpp(
void Settle() {
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
}
)cpp");
  EXPECT_EQ(Active(findings, "retry-discipline"), 0);
}

TEST(RetryDiscipline, BackoffInStatementPaces) {
  const auto findings = Lint("src/net/x.cc", R"cpp(
void Recv() {
  double backoff = 0.001;
  for (;;) {
    if (Ready()) return;
    if (backoff > 0.0) std::this_thread::sleep_for(ToDuration(backoff));
    backoff *= 2.0;
  }
}
)cpp");
  EXPECT_EQ(Active(findings, "retry-discipline"), 0);
}

TEST(RetryDiscipline, DeadlineInLoopHeaderPaces) {
  const auto findings = Lint("src/net/tcp/x.cc", R"cpp(
bool Wait(Clock::time_point deadline) {
  while (Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return true;
}
)cpp");
  EXPECT_EQ(Active(findings, "retry-discipline"), 0);
}

TEST(RetryDiscipline, DoWhileIsALoopToo) {
  const auto findings = Lint("src/net/x.cc", R"cpp(
void Poll() {
  do {
    ::usleep(1000);
  } while (!Done());
}
)cpp");
  EXPECT_EQ(Active(findings, "retry-discipline"), 1);
}

TEST(RetryDiscipline, SuppressionSilences) {
  const auto findings = Lint("src/net/tcp/x.cc", R"cpp(
void Stall() {
  for (;;) {
    // sqmlint:allow(retry-discipline)
    std::this_thread::sleep_for(Seconds(stall_seconds));
    return;
  }
}
)cpp");
  EXPECT_EQ(Active(findings, "retry-discipline"), 0);
  EXPECT_EQ(Count(findings, "retry-discipline", true), 1);
}

// ------------------------------------------------------------- batch-discipline

constexpr char kScalarLoopInHotPath[] = R"cpp(
void Recombine(std::vector<Field::Element>& out, Field::Element delta,
               size_t n) {
  for (size_t k = 0; k < n; ++k) {
    out[k] = Field::Add(out[k], delta);
  }
}
)cpp";

TEST(BatchDiscipline, FiresOnInductionIndexedScalarOp) {
  const auto findings = Lint("src/mpc/bgw.cc", kScalarLoopInHotPath);
  EXPECT_EQ(Active(findings, "batch-discipline"), 1);
}

TEST(BatchDiscipline, OutsideHotPathIsIgnored) {
  // Same code outside the scoped hot-path files: the kernels are an
  // optimization contract for the multiply/open/driver loops, not a
  // repo-wide style rule.
  const auto findings = Lint("src/mpc/ops.cc", kScalarLoopInHotPath);
  EXPECT_EQ(Active(findings, "batch-discipline"), 0);
}

TEST(BatchDiscipline, VectorKernelAndGateIndexingAreClean) {
  const auto findings = Lint("src/mpc/party_protocol.cc", R"cpp(
void Walk(std::vector<Field::Element>& shares, const Circuit& circuit,
          const Field::Element* term, size_t n) {
  Field::AddVec(shares.data(), term, shares.data(), n);
  for (size_t w = 0; w < circuit.size(); ++w) {
    const Gate& gate = circuit[w];
    shares[w] = Field::Add(shares[gate.lhs], shares[gate.rhs]);
  }
}
)cpp");
  EXPECT_EQ(Active(findings, "batch-discipline"), 0);
}

TEST(BatchDiscipline, RangeForIsNotACountedLoop) {
  const auto findings = Lint("src/mpc/protocol.cc", R"cpp(
void Sum(const std::vector<Field::Element>& xs, Field::Element& acc) {
  for (Field::Element s : xs) acc = Field::Add(acc, s);
}
)cpp");
  EXPECT_EQ(Active(findings, "batch-discipline"), 0);
}

TEST(BatchDiscipline, SuppressionSilences) {
  const auto findings = Lint("src/core/sqm.cc", R"cpp(
void Fold(std::vector<Field::Element>& out, Field::Element delta, size_t n) {
  for (size_t k = 0; k < n; ++k) {
    out[k] = Field::Add(out[k], delta);  // sqmlint:allow(batch-discipline)
  }
}
)cpp");
  EXPECT_EQ(Active(findings, "batch-discipline"), 0);
  EXPECT_EQ(Count(findings, "batch-discipline", true), 1);
}

// ---------------------------------------------------------------- obs-discipline

TEST(ObsDiscipline, FiresOnDynamicMetricName) {
  const auto findings = Lint("src/mpc/x.cc", R"cpp(
void f(const std::string& label, double v) {
  SQM_OBS_GAUGE_SET(label.c_str(), v);
}
)cpp");
  EXPECT_EQ(Active(findings, "obs-discipline"), 1);
}

TEST(ObsDiscipline, FiresOnDynamicSpanName) {
  const auto findings = Lint("src/mpc/x.cc", R"cpp(
void f(const char* phase) {
  Span span(phase, "mpc");
}
)cpp");
  EXPECT_EQ(Active(findings, "obs-discipline"), 1);
}

TEST(ObsDiscipline, FiresOnSecretFlightArgument) {
  const auto findings = Lint("src/mpc/x.cc", R"cpp(
void f(uint64_t mask_value) {
  SQM_FLIGHT_EVENT2("mul.level", 3, mask_value);
}
)cpp");
  EXPECT_EQ(Active(findings, "obs-discipline"), 1);
}

TEST(ObsDiscipline, FiresOnSecretSpanAnnotation) {
  const auto findings = Lint("src/mpc/x.cc", R"cpp(
void f(Span& span, uint64_t share_count) {
  span.AddArg("n", share_count);
}
)cpp");
  EXPECT_EQ(Active(findings, "obs-discipline"), 1);
}

TEST(ObsDiscipline, LiteralNamesAndCleanArgsPass) {
  const auto findings = Lint("src/mpc/x.cc", R"cpp(
void f(size_t level) {
  Span span("bgw.mul", "mpc");
  span.AddArg("level", static_cast<int64_t>(level));
  SQM_OBS_COUNTER_INC("mpc.mul.levels");
  SQM_FLIGHT_EVENT("mul.level", static_cast<int64_t>(level));
}
)cpp");
  EXPECT_EQ(Active(findings, "obs-discipline"), 0);
}

TEST(ObsDiscipline, ConstructorSignatureIsNotAName) {
  // The Span declaration in obs/trace.h ("Span(const char* name...)") and
  // the deleted copy constructor must not read as dynamic-name call sites.
  const auto findings = Lint("src/obs/trace.h", R"cpp(
class Span {
 public:
  explicit Span(const char* name, const char* category = "sqm");
  Span(const Span&) = delete;
};
)cpp");
  EXPECT_EQ(Active(findings, "obs-discipline"), 0);
}

TEST(ObsDiscipline, SuppressionSilences) {
  const auto findings = Lint("src/mpc/x.cc", R"cpp(
void f(const std::string& label, double v) {
  SQM_OBS_GAUGE_SET(label.c_str(), v);  // sqmlint:allow(obs-discipline)
}
)cpp");
  EXPECT_EQ(Active(findings, "obs-discipline"), 0);
  EXPECT_EQ(Count(findings, "obs-discipline", true), 1);
}

// ------------------------------------------------------------------ JSON output

TEST(Json, FindingsAndSummaryShapes) {
  const auto project =
      sqmlint::BuildProject({{"src/dp/x.cc", kDiscardedStatus}});
  const auto findings = sqmlint::RunChecks(project);
  const std::string json = sqmlint::RenderJson(project, findings);
  EXPECT_NE(json.find("\"check\":\"unchecked-status\""), std::string::npos);
  EXPECT_NE(json.find("\"path\":\"src/dp/x.cc\""), std::string::npos);
  EXPECT_NE(json.find("\"suppressed\":false"), std::string::npos);
  EXPECT_NE(json.find("\"summary\":{\"files\":1,\"active\":1,\"suppressed\":0}"),
            std::string::npos);
}

TEST(Json, SuppressedFindingMarked) {
  const auto project = sqmlint::BuildProject({{"src/vfl/x.cc", R"cpp(
void f() {
  Field::Element a = 1;
  Field::Element r = a * a;  // sqmlint:allow(field-capacity)
}
)cpp"}});
  const auto findings = sqmlint::RunChecks(project);
  const std::string json = sqmlint::RenderJson(project, findings);
  EXPECT_NE(json.find("\"suppressed\":true"), std::string::npos);
  EXPECT_EQ(sqmlint::CountActive(findings), 0u);
}

// ------------------------------------------------------------------ lexer rules

TEST(Lexer, LiteralsAreInert) {
  // Engine names and secret words inside string literals never fire.
  const auto findings = Lint("src/net/x.cc", R"cpp(
const char* kDoc = "std::mt19937 and noise_shares and time(nullptr)";
)cpp");
  EXPECT_EQ(sqmlint::CountActive(findings), 0u);
}

TEST(Lexer, CheckSubsetSelection) {
  const auto project = sqmlint::BuildProject({{"src/net/x.cc", kStdEngine}});
  const auto findings = sqmlint::RunChecks(project, {"secret-taint"});
  EXPECT_EQ(sqmlint::CountActive(findings), 0u);
}

}  // namespace
