// Drives the sqmlint checker in-process over fixture snippets: for every
// check, one case proving it fires and one proving a named suppression
// silences it. Fixtures are raw strings — the lexer treats literals as
// single tokens, so sqmlint's own scan of this file stays clean.

#include "sqmlint/checker.h"

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/json.h"
#include "sqmlint/baseline.h"

namespace {

using sqmlint::Finding;

std::vector<Finding> Lint(const std::string& path, const std::string& code) {
  return sqmlint::RunChecks(sqmlint::BuildProject({{path, code}}));
}

/// Multi-file variant for the interprocedural flow fixtures.
std::vector<Finding> LintFiles(
    const std::vector<std::pair<std::string, std::string>>& files) {
  return sqmlint::RunChecks(sqmlint::BuildProject(files));
}

/// Findings for `check` with the given suppression state.
int Count(const std::vector<Finding>& findings, const std::string& check,
          bool suppressed) {
  int n = 0;
  for (const Finding& f : findings) {
    if (f.check == check && f.suppressed == suppressed) ++n;
  }
  return n;
}

int Active(const std::vector<Finding>& findings, const std::string& check) {
  return Count(findings, check, false);
}

// ---------------------------------------------------------------- unchecked-status

constexpr char kDiscardedStatus[] = R"cpp(
Status Flush(int fd);
void f(int fd) {
  Flush(fd);
}
)cpp";

TEST(UncheckedStatus, FiresOnDiscardedCall) {
  const auto findings = Lint("src/dp/x.cc", kDiscardedStatus);
  EXPECT_EQ(Active(findings, "unchecked-status"), 1);
}

TEST(UncheckedStatus, SuppressionSilences) {
  const auto findings = Lint("src/dp/x.cc", R"cpp(
Status Flush(int fd);
void f(int fd) {
  Flush(fd);  // sqmlint:allow(unchecked-status)
}
)cpp");
  EXPECT_EQ(Active(findings, "unchecked-status"), 0);
  EXPECT_EQ(Count(findings, "unchecked-status", true), 1);
}

TEST(UncheckedStatus, VoidCastAndAssignmentAreChecked) {
  const auto findings = Lint("src/dp/x.cc", R"cpp(
Status Flush(int fd);
void f(int fd) {
  (void)Flush(fd);
  Status s = Flush(fd);
}
)cpp");
  EXPECT_EQ(Active(findings, "unchecked-status"), 0);
}

TEST(UncheckedStatus, AmbiguousNameIsSkipped) {
  // `Add` is declared both Status-returning and void-returning; without
  // type resolution the call is ambiguous, so the lexicon drops the name
  // ([[nodiscard]] still covers the real sites at compile time).
  const auto findings = Lint("src/dp/x.cc", R"cpp(
Status Add(int x);
void g() { Add(1); }
struct Counter { void Add(int n); };
void h(Counter& c) { c.Add(1); }
)cpp");
  EXPECT_EQ(Active(findings, "unchecked-status"), 0);
}

TEST(UncheckedStatus, ResultReturnTypeCounts) {
  const auto findings = Lint("src/dp/x.cc", R"cpp(
Result<std::vector<int>> Parse(const char* s);
void f(const char* s) {
  Parse(s);
}
)cpp");
  EXPECT_EQ(Active(findings, "unchecked-status"), 1);
}

// ------------------------------------------------------------------- secret-taint

constexpr char kLoggedShare[] = R"cpp(
void f(const std::vector<uint64_t>& noise_shares) {
  SQM_LOG(kInfo) << "first " << noise_shares[0];
}
)cpp";

TEST(SecretTaint, FiresOnShareReachingLogSink) {
  const auto findings = Lint("src/mpc/x.cc", kLoggedShare);
  EXPECT_EQ(Active(findings, "secret-taint"), 1);
}

TEST(SecretTaint, SuppressionSilences) {
  const auto findings = Lint("src/mpc/x.cc", R"cpp(
void f(const std::vector<uint64_t>& noise_shares) {
  // sqmlint:allow(secret-taint)
  SQM_LOG(kInfo) << "first " << noise_shares[0];
}
)cpp");
  EXPECT_EQ(Active(findings, "secret-taint"), 0);
  EXPECT_EQ(Count(findings, "secret-taint", true), 1);
}

TEST(SecretTaint, TestingBoundaryIsAllowlisted) {
  const auto findings = Lint("src/testing/x.cc", kLoggedShare);
  EXPECT_EQ(Active(findings, "secret-taint"), 0);
}

TEST(SecretTaint, WordBoundariesAvoidSharedPtr) {
  // "shared" is not "share": lexicon matching is per identifier word.
  const auto findings = Lint("src/mpc/x.cc", R"cpp(
void f(const std::shared_ptr<int>& shared_state) {
  SQM_LOG(kInfo) << "ptr " << shared_state.use_count();
}
)cpp");
  EXPECT_EQ(Active(findings, "secret-taint"), 0);
}

TEST(SecretTaint, FiresOnObsArgumentSink) {
  const auto findings = Lint("src/mpc/x.cc", R"cpp(
void f(Span& span, uint64_t mask_value) {
  span.AddArg("m", mask_value);
}
)cpp");
  EXPECT_EQ(Active(findings, "secret-taint"), 1);
}

// ----------------------------------------------------------------- rng-discipline

constexpr char kStdEngine[] = R"cpp(
#include <random>
void f() {
  std::mt19937 gen(42);
}
)cpp";

TEST(RngDiscipline, FiresOnStdEngineOutsideSampling) {
  const auto findings = Lint("src/net/x.cc", kStdEngine);
  EXPECT_GE(Active(findings, "rng-discipline"), 1);
}

TEST(RngDiscipline, SamplingModuleIsAllowlisted) {
  const auto findings = Lint("src/sampling/x.cc", kStdEngine);
  EXPECT_EQ(Active(findings, "rng-discipline"), 0);
}

TEST(RngDiscipline, SuppressionSilences) {
  const auto findings = Lint("src/net/x.cc", R"cpp(
void f() {
  std::mt19937 gen(42);  // sqmlint:allow(rng-discipline)
}
)cpp");
  EXPECT_EQ(Active(findings, "rng-discipline"), 0);
  EXPECT_EQ(Count(findings, "rng-discipline", true), 1);
}

TEST(RngDiscipline, WallClockInDeterministicModule) {
  const auto findings = Lint("src/mpc/x.cc", R"cpp(
void f() {
  long t = time(nullptr);
}
)cpp");
  EXPECT_EQ(Active(findings, "rng-discipline"), 1);
}

TEST(RngDiscipline, SystemClockBannedEverywhere) {
  const auto findings = Lint("tests/x.cc", R"cpp(
void f() {
  auto t = std::chrono::system_clock::now();
}
)cpp");
  EXPECT_EQ(Active(findings, "rng-discipline"), 1);
}

// ----------------------------------------------------------------- field-capacity

constexpr char kRawAdd[] = R"cpp(
void f() {
  Field::Element a = 1;
  Field::Element b = 2;
  Field::Element c = a + b;
}
)cpp";

TEST(FieldCapacity, FiresOnRawArithmetic) {
  const auto findings = Lint("src/vfl/x.cc", kRawAdd);
  EXPECT_EQ(Active(findings, "field-capacity"), 1);
}

TEST(FieldCapacity, SuppressionSilences) {
  const auto findings = Lint("src/vfl/x.cc", R"cpp(
void f() {
  Field::Element a = 1;
  Field::Element b = 2;
  Field::Element c = a + b;  // sqmlint:allow(field-capacity)
}
)cpp");
  EXPECT_EQ(Active(findings, "field-capacity"), 0);
  EXPECT_EQ(Count(findings, "field-capacity", true), 1);
}

TEST(FieldCapacity, CheckedOpsAreClean) {
  const auto findings = Lint("src/vfl/x.cc", R"cpp(
void f() {
  Field::Element a = 1;
  Field::Element b = 2;
  Field::Element c = Field::Add(a, b);
}
)cpp");
  EXPECT_EQ(Active(findings, "field-capacity"), 0);
}

TEST(FieldCapacity, FieldImplementationIsAllowlisted) {
  const auto findings = Lint("src/mpc/field.cc", kRawAdd);
  EXPECT_EQ(Active(findings, "field-capacity"), 0);
}

TEST(FieldCapacity, PointerDeclaratorIsNotMultiplication) {
  // Span-kernel signatures declare `const Element* a` where `a` is also a
  // tracked scalar name elsewhere in the file; the '*' after the type
  // name is a declarator, not field arithmetic.
  const auto findings = Lint("src/vfl/x.h", R"cpp(
struct Field {
  using Element = uint64_t;
  static Element Add(Element a, Element b);
  static void AddVec(const Element* a, const Element* b, Element* out,
                     size_t n);
};
)cpp");
  EXPECT_EQ(Active(findings, "field-capacity"), 0);
}

TEST(FieldCapacity, VectorElementIndexing) {
  const auto findings = Lint("src/vfl/x.cc", R"cpp(
void f(std::vector<Field::Element>& shares_vec) {
  shares_vec[0] += 7;
}
)cpp");
  EXPECT_EQ(Active(findings, "field-capacity"), 1);
}

// --------------------------------------------------------------- mutex-annotation

constexpr char kRawStdMutex[] = R"cpp(
#include <mutex>
struct S {
  std::mutex mu_;
};
)cpp";

TEST(MutexAnnotation, FiresOnRawStdMutexInNet) {
  const auto findings = Lint("src/net/x.h", kRawStdMutex);
  EXPECT_GE(Active(findings, "mutex-annotation"), 1);
}

TEST(MutexAnnotation, OtherModulesOutOfScope) {
  const auto findings = Lint("src/dp/x.h", kRawStdMutex);
  EXPECT_EQ(Active(findings, "mutex-annotation"), 0);
}

TEST(MutexAnnotation, SuppressionSilences) {
  const auto findings = Lint("src/net/x.h", R"cpp(
struct S {
  std::mutex mu_;  // sqmlint:allow(mutex-annotation)
};
)cpp");
  EXPECT_EQ(Active(findings, "mutex-annotation"), 0);
  EXPECT_EQ(Count(findings, "mutex-annotation", true), 1);
}

TEST(MutexAnnotation, UnannotatedMutexMember) {
  const auto findings = Lint("src/obs/x.h", R"cpp(
struct S {
  Mutex mu_;
  int guarded_value = 0;
};
)cpp");
  EXPECT_EQ(Active(findings, "mutex-annotation"), 1);
}

TEST(MutexAnnotation, GuardedByAnnotationSatisfies) {
  const auto findings = Lint("src/obs/x.h", R"cpp(
struct S {
  Mutex mu_;
  int guarded_value SQM_GUARDED_BY(mu_) = 0;
};
)cpp");
  EXPECT_EQ(Active(findings, "mutex-annotation"), 0);
}

// -------------------------------------------------------------- socket-discipline

constexpr char kRawConnect[] = R"cpp(
void f(int fd, const sockaddr* addr, unsigned len) {
  if (::connect(fd, addr, len) != 0) return;
}
)cpp";

TEST(SocketDiscipline, FiresOnRawCallOutsideSocketModule) {
  const auto findings = Lint("src/net/tcp/tcp_transport.cc", kRawConnect);
  EXPECT_EQ(Active(findings, "socket-discipline"), 1);
}

TEST(SocketDiscipline, SocketModuleIsAllowlisted) {
  const auto findings = Lint("src/net/tcp/socket.cc", kRawConnect);
  EXPECT_EQ(Active(findings, "socket-discipline"), 0);
}

TEST(SocketDiscipline, SuppressionSilences) {
  const auto findings = Lint("src/net/tcp/tcp_transport.cc", R"cpp(
void f(int fd, const sockaddr* addr, unsigned len) {
  // sqmlint:allow(socket-discipline)
  if (::connect(fd, addr, len) != 0) return;
}
)cpp");
  EXPECT_EQ(Active(findings, "socket-discipline"), 0);
  EXPECT_EQ(Count(findings, "socket-discipline", true), 1);
}

TEST(SocketDiscipline, UnqualifiedCallAlsoFires) {
  const auto findings = Lint("src/core/x.cc", R"cpp(
void f(int fd) {
  listen(fd, 64);
}
)cpp");
  EXPECT_EQ(Active(findings, "socket-discipline"), 1);
}

TEST(SocketDiscipline, MemberAndNamespacedCallsAreClean) {
  // x.send() is a method, std::bind is the functional utility — neither
  // is a socket syscall.
  const auto findings = Lint("src/core/x.cc", R"cpp(
void f(Channel& x, Fn g) {
  x.send(1);
  auto h = std::bind(g, 2);
}
)cpp");
  EXPECT_EQ(Active(findings, "socket-discipline"), 0);
}

TEST(SocketDiscipline, DiscardedResultInsideSocketModule) {
  const auto findings = Lint("src/net/tcp/socket.cc", R"cpp(
void f(int fd) {
  ::shutdown(fd, 2);
}
)cpp");
  EXPECT_EQ(Active(findings, "socket-discipline"), 1);
}

TEST(SocketDiscipline, CheckedAndVoidCastInsideSocketModule) {
  const auto findings = Lint("src/net/tcp/socket.cc", R"cpp(
void f(int fd) {
  const int rc = ::shutdown(fd, 2);
  (void)::shutdown(fd, rc);
  if (::listen(fd, 64) != 0) return;
}
)cpp");
  EXPECT_EQ(Active(findings, "socket-discipline"), 0);
}

// ------------------------------------------------------------- suppression rules

TEST(Suppression, BareDirectiveIsItselfAFinding) {
  const auto findings = Lint("src/dp/x.cc", R"cpp(
int f();  // sqmlint:allow
)cpp");
  EXPECT_EQ(Active(findings, "suppression-syntax"), 1);
}

TEST(Suppression, WrongCheckNameDoesNotSilence) {
  const auto findings = Lint("src/dp/x.cc", R"cpp(
Status Flush(int fd);
void f(int fd) {
  Flush(fd);  // sqmlint:allow(rng-discipline)
}
)cpp");
  EXPECT_EQ(Active(findings, "unchecked-status"), 1);
}

TEST(Suppression, DirectiveAboveOffendingLine) {
  const auto findings = Lint("src/dp/x.cc", R"cpp(
Status Flush(int fd);
void f(int fd) {
  // sqmlint:allow(unchecked-status)
  Flush(fd);
}
)cpp");
  EXPECT_EQ(Active(findings, "unchecked-status"), 0);
}

// -------------------------------------------------------------- retry-discipline

constexpr char kBareRetrySleep[] = R"cpp(
void Dial() {
  while (true) {
    if (TryConnect()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}
)cpp";

TEST(RetryDiscipline, FiresOnUnpacedSleepInLoop) {
  const auto findings = Lint("src/net/tcp/x.cc", kBareRetrySleep);
  EXPECT_EQ(Active(findings, "retry-discipline"), 1);
}

TEST(RetryDiscipline, OutsideNetModuleIsIgnored) {
  const auto findings = Lint("src/dp/x.cc", kBareRetrySleep);
  EXPECT_EQ(Active(findings, "retry-discipline"), 0);
}

TEST(RetryDiscipline, SleepOutsideLoopIsFine) {
  const auto findings = Lint("src/net/x.cc", R"cpp(
void Settle() {
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
}
)cpp");
  EXPECT_EQ(Active(findings, "retry-discipline"), 0);
}

TEST(RetryDiscipline, BackoffInStatementPaces) {
  const auto findings = Lint("src/net/x.cc", R"cpp(
void Recv() {
  double backoff = 0.001;
  for (;;) {
    if (Ready()) return;
    if (backoff > 0.0) std::this_thread::sleep_for(ToDuration(backoff));
    backoff *= 2.0;
  }
}
)cpp");
  EXPECT_EQ(Active(findings, "retry-discipline"), 0);
}

TEST(RetryDiscipline, DeadlineInLoopHeaderPaces) {
  const auto findings = Lint("src/net/tcp/x.cc", R"cpp(
bool Wait(Clock::time_point deadline) {
  while (Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return true;
}
)cpp");
  EXPECT_EQ(Active(findings, "retry-discipline"), 0);
}

TEST(RetryDiscipline, DoWhileIsALoopToo) {
  const auto findings = Lint("src/net/x.cc", R"cpp(
void Poll() {
  do {
    ::usleep(1000);
  } while (!Done());
}
)cpp");
  EXPECT_EQ(Active(findings, "retry-discipline"), 1);
}

TEST(RetryDiscipline, SuppressionSilences) {
  const auto findings = Lint("src/net/tcp/x.cc", R"cpp(
void Stall() {
  for (;;) {
    // sqmlint:allow(retry-discipline)
    std::this_thread::sleep_for(Seconds(stall_seconds));
    return;
  }
}
)cpp");
  EXPECT_EQ(Active(findings, "retry-discipline"), 0);
  EXPECT_EQ(Count(findings, "retry-discipline", true), 1);
}

// ------------------------------------------------------------- batch-discipline

constexpr char kScalarLoopInHotPath[] = R"cpp(
void Recombine(std::vector<Field::Element>& out, Field::Element delta,
               size_t n) {
  for (size_t k = 0; k < n; ++k) {
    out[k] = Field::Add(out[k], delta);
  }
}
)cpp";

TEST(BatchDiscipline, FiresOnInductionIndexedScalarOp) {
  const auto findings = Lint("src/mpc/bgw.cc", kScalarLoopInHotPath);
  EXPECT_EQ(Active(findings, "batch-discipline"), 1);
}

TEST(BatchDiscipline, OutsideHotPathIsIgnored) {
  // Same code outside the scoped hot-path files: the kernels are an
  // optimization contract for the multiply/open/driver loops, not a
  // repo-wide style rule.
  const auto findings = Lint("src/mpc/ops.cc", kScalarLoopInHotPath);
  EXPECT_EQ(Active(findings, "batch-discipline"), 0);
}

TEST(BatchDiscipline, VectorKernelAndGateIndexingAreClean) {
  const auto findings = Lint("src/mpc/party_protocol.cc", R"cpp(
void Walk(std::vector<Field::Element>& shares, const Circuit& circuit,
          const Field::Element* term, size_t n) {
  Field::AddVec(shares.data(), term, shares.data(), n);
  for (size_t w = 0; w < circuit.size(); ++w) {
    const Gate& gate = circuit[w];
    shares[w] = Field::Add(shares[gate.lhs], shares[gate.rhs]);
  }
}
)cpp");
  EXPECT_EQ(Active(findings, "batch-discipline"), 0);
}

TEST(BatchDiscipline, RangeForIsNotACountedLoop) {
  const auto findings = Lint("src/mpc/protocol.cc", R"cpp(
void Sum(const std::vector<Field::Element>& xs, Field::Element& acc) {
  for (Field::Element s : xs) acc = Field::Add(acc, s);
}
)cpp");
  EXPECT_EQ(Active(findings, "batch-discipline"), 0);
}

TEST(BatchDiscipline, SuppressionSilences) {
  const auto findings = Lint("src/core/sqm.cc", R"cpp(
void Fold(std::vector<Field::Element>& out, Field::Element delta, size_t n) {
  for (size_t k = 0; k < n; ++k) {
    out[k] = Field::Add(out[k], delta);  // sqmlint:allow(batch-discipline)
  }
}
)cpp");
  EXPECT_EQ(Active(findings, "batch-discipline"), 0);
  EXPECT_EQ(Count(findings, "batch-discipline", true), 1);
}

// ---------------------------------------------------------------- obs-discipline

TEST(ObsDiscipline, FiresOnDynamicMetricName) {
  const auto findings = Lint("src/mpc/x.cc", R"cpp(
void f(const std::string& label, double v) {
  SQM_OBS_GAUGE_SET(label.c_str(), v);
}
)cpp");
  EXPECT_EQ(Active(findings, "obs-discipline"), 1);
}

TEST(ObsDiscipline, FiresOnDynamicSpanName) {
  const auto findings = Lint("src/mpc/x.cc", R"cpp(
void f(const char* phase) {
  Span span(phase, "mpc");
}
)cpp");
  EXPECT_EQ(Active(findings, "obs-discipline"), 1);
}

TEST(ObsDiscipline, FiresOnSecretFlightArgument) {
  const auto findings = Lint("src/mpc/x.cc", R"cpp(
void f(uint64_t mask_value) {
  SQM_FLIGHT_EVENT2("mul.level", 3, mask_value);
}
)cpp");
  EXPECT_EQ(Active(findings, "obs-discipline"), 1);
}

TEST(ObsDiscipline, FiresOnSecretSpanAnnotation) {
  const auto findings = Lint("src/mpc/x.cc", R"cpp(
void f(Span& span, uint64_t share_count) {
  span.AddArg("n", share_count);
}
)cpp");
  EXPECT_EQ(Active(findings, "obs-discipline"), 1);
}

TEST(ObsDiscipline, LiteralNamesAndCleanArgsPass) {
  const auto findings = Lint("src/mpc/x.cc", R"cpp(
void f(size_t level) {
  Span span("bgw.mul", "mpc");
  span.AddArg("level", static_cast<int64_t>(level));
  SQM_OBS_COUNTER_INC("mpc.mul.levels");
  SQM_FLIGHT_EVENT("mul.level", static_cast<int64_t>(level));
}
)cpp");
  EXPECT_EQ(Active(findings, "obs-discipline"), 0);
}

TEST(ObsDiscipline, ConstructorSignatureIsNotAName) {
  // The Span declaration in obs/trace.h ("Span(const char* name...)") and
  // the deleted copy constructor must not read as dynamic-name call sites.
  const auto findings = Lint("src/obs/trace.h", R"cpp(
class Span {
 public:
  explicit Span(const char* name, const char* category = "sqm");
  Span(const Span&) = delete;
};
)cpp");
  EXPECT_EQ(Active(findings, "obs-discipline"), 0);
}

TEST(ObsDiscipline, SuppressionSilences) {
  const auto findings = Lint("src/mpc/x.cc", R"cpp(
void f(const std::string& label, double v) {
  SQM_OBS_GAUGE_SET(label.c_str(), v);  // sqmlint:allow(obs-discipline)
}
)cpp");
  EXPECT_EQ(Active(findings, "obs-discipline"), 0);
  EXPECT_EQ(Count(findings, "obs-discipline", true), 1);
}

// ------------------------------------------------------------------ JSON output

TEST(Json, FindingsAndSummaryShapes) {
  const auto project =
      sqmlint::BuildProject({{"src/dp/x.cc", kDiscardedStatus}});
  const auto findings = sqmlint::RunChecks(project);
  const std::string json = sqmlint::RenderJson(project, findings);
  EXPECT_NE(json.find("\"check\":\"unchecked-status\""), std::string::npos);
  EXPECT_NE(json.find("\"path\":\"src/dp/x.cc\""), std::string::npos);
  EXPECT_NE(json.find("\"suppressed\":false"), std::string::npos);
  EXPECT_NE(json.find("\"summary\":{\"files\":1,\"active\":1,\"suppressed\":0}"),
            std::string::npos);
}

TEST(Json, SuppressedFindingMarked) {
  const auto project = sqmlint::BuildProject({{"src/vfl/x.cc", R"cpp(
void f() {
  Field::Element a = 1;
  Field::Element r = a * a;  // sqmlint:allow(field-capacity)
}
)cpp"}});
  const auto findings = sqmlint::RunChecks(project);
  const std::string json = sqmlint::RenderJson(project, findings);
  EXPECT_NE(json.find("\"suppressed\":true"), std::string::npos);
  EXPECT_EQ(sqmlint::CountActive(findings), 0u);
}

// ------------------------------------------------------------------ lexer rules

TEST(Lexer, LiteralsAreInert) {
  // Engine names and secret words inside string literals never fire.
  const auto findings = Lint("src/net/x.cc", R"cpp(
const char* kDoc = "std::mt19937 and noise_shares and time(nullptr)";
)cpp");
  EXPECT_EQ(sqmlint::CountActive(findings), 0u);
}

TEST(Lexer, CheckSubsetSelection) {
  const auto project = sqmlint::BuildProject({{"src/net/x.cc", kStdEngine}});
  const auto findings = sqmlint::RunChecks(project, {"secret-taint"});
  EXPECT_EQ(sqmlint::CountActive(findings), 0u);
}

// ------------------------------------------------------------- lexer edge cases

TEST(Lexer, RawStringContainingCommentMarkerIsInert) {
  // A raw string holding "//" must not swallow the rest of the file: the
  // statement after it still lexes and the taint still fires.
  const auto findings = Lint("src/mpc/x.cc", R"fix(
const char* kDoc = R"(see https://example.com // not a comment)";
void f(const std::vector<uint64_t>& noise_shares) {
  SQM_LOG(kInfo) << noise_shares[0];
}
)fix");
  EXPECT_EQ(Active(findings, "secret-taint"), 1);
}

TEST(Lexer, LineContinuationSplicesStatement) {
  // A backslash-newline inside a statement (the multi-line macro idiom)
  // splices: the sink and the secret land in one token stream.
  const auto findings = Lint("src/mpc/x.cc",
                             "void f(const std::vector<uint64_t>& "
                             "noise_shares) {\n"
                             "  SQM_LOG(kInfo) << \\\n"
                             "      noise_shares[0];\n"
                             "}\n");
  EXPECT_EQ(Active(findings, "secret-taint"), 1);
}

TEST(Lexer, LineContinuationInsideMacroDefinition) {
  const auto findings = Lint("src/mpc/x.cc",
                             "#define LOG_FIRST(v) \\\n"
                             "  SQM_LOG(kInfo) << (v)[0]\n"
                             "void f(const std::vector<uint64_t>& "
                             "noise_shares) {\n"
                             "  LOG_FIRST(noise_shares);\n"
                             "}\n");
  EXPECT_EQ(Active(findings, "secret-taint"), 1);
}

TEST(Lexer, NestedTemplateCloseDoesNotConfuseIr) {
  const auto findings = Lint("src/dp/x.cc", R"cpp(
std::vector<std::vector<uint64_t>> MakeMatrix(size_t n);
void f(size_t n) {
  std::map<int, std::vector<std::pair<int, int>>> index;
  auto m = MakeMatrix(n);
  (void)index;
  (void)m;
}
)cpp");
  EXPECT_EQ(sqmlint::CountActive(findings), 0u);
}

TEST(Lexer, AllowDirectiveInsideMultiLineStatement) {
  // The directive trails the first physical line of a statement whose
  // finding is reported on that same line; the next-line span also covers
  // continuations placed above the offending token.
  const auto findings = Lint("src/mpc/x.cc", R"cpp(
void f(const std::vector<uint64_t>& noise_shares) {
  SQM_LOG(kInfo)  // sqmlint:allow(secret-taint)
      << noise_shares[0];
}
)cpp");
  EXPECT_EQ(Active(findings, "secret-taint"), 0);
  EXPECT_EQ(Count(findings, "secret-taint", true), 1);
}

// -------------------------------------------------------------------- taint-flow

TEST(TaintFlow, FiresOnSourceReachingLogIntraprocedural) {
  // `blob` carries no secret-looking name, so the lexicon is blind; the
  // flow engine tracks the Share() return into the log statement.
  const auto findings = Lint("src/dp/x.cc", R"cpp(
void f(ShamirScheme& scheme) {
  auto blob = scheme.Share(42);
  SQM_LOG(kInfo) << "payload " << blob[0];
}
)cpp");
  EXPECT_EQ(Active(findings, "taint-flow"), 1);
  EXPECT_EQ(Active(findings, "secret-taint"), 0);
}

TEST(TaintFlow, InterproceduralSourceInCalleeSinkInCaller) {
  // The source lives in one function, the sink in its caller: the return
  // summary of MakeBlob carries the secret bit across the call.
  const auto findings = Lint("src/dp/x.cc", R"cpp(
std::vector<uint64_t> MakeBlob(ShamirScheme& scheme) {
  auto v = scheme.Share(7);
  return v;
}
void Publish(ShamirScheme& scheme) {
  auto blob = MakeBlob(scheme);
  SQM_LOG(kInfo) << blob[0];
}
)cpp");
  EXPECT_EQ(Active(findings, "taint-flow"), 1);
}

TEST(TaintFlow, CrossFileFlowTheLexiconProvablyMisses) {
  // Producer and consumer live in different translation units and no
  // identifier smells secret — the legacy lexicon check stays silent
  // (asserted) while the symbol-graph propagation connects the files.
  const auto findings = LintFiles(
      {{"src/dp/dealer.cc", R"cpp(
std::vector<uint64_t> DealerOutput(ShamirScheme& scheme, uint64_t v) {
  auto blob = scheme.Share(v);
  return blob;
}
)cpp"},
       {"src/core/emit.cc", R"cpp(
void Publish(ShamirScheme& scheme) {
  auto payload = DealerOutput(scheme, 7);
  SQM_LOG(kInfo) << "payload " << payload[0];
}
)cpp"}});
  EXPECT_EQ(Active(findings, "secret-taint"), 0);
  EXPECT_EQ(Active(findings, "taint-flow"), 1);
}

TEST(TaintFlow, ArgumentTaintReachesCalleeParameter) {
  const auto findings = LintFiles(
      {{"src/core/writer.cc", R"cpp(
void WriteOut(const std::vector<uint64_t>& data) {
  SQM_LOG(kInfo) << data[0];
}
)cpp"},
       {"src/dp/flow.cc", R"cpp(
void Run(ShamirScheme& scheme) {
  auto blob = scheme.Share(3);
  WriteOut(blob);
}
)cpp"}});
  EXPECT_EQ(Active(findings, "taint-flow"), 1);
}

TEST(TaintFlow, DeclassifyOnSinkReportsButDoesNotGate) {
  const auto findings = Lint("src/dp/x.cc", R"cpp(
void f(ShamirScheme& scheme) {
  auto blob = scheme.Share(42);
  SQM_LOG(kInfo) << blob[0];  // sqmlint:declassify(unit-scale demo value, not a real share)
}
)cpp");
  EXPECT_EQ(Active(findings, "taint-flow"), 0);
  EXPECT_EQ(Count(findings, "taint-flow", true), 1);
}

TEST(TaintFlow, DeclassifyOnCallBoundaryStopsPropagation) {
  // Declassifying where the value crosses into the callee is a flow
  // barrier: nothing downstream fires, in either file.
  const auto findings = LintFiles(
      {{"src/core/writer.cc", R"cpp(
void WriteOut(const std::vector<uint64_t>& data) {
  SQM_LOG(kInfo) << data[0];
}
)cpp"},
       {"src/dp/flow.cc", R"cpp(
void Run(ShamirScheme& scheme) {
  auto blob = scheme.Share(3);
  WriteOut(blob);  // sqmlint:declassify(post-aggregation public estimate)
}
)cpp"}});
  EXPECT_EQ(Active(findings, "taint-flow"), 0);
}

TEST(TaintFlow, MalformedDeclassifyIsItselfReported) {
  const auto findings = Lint("src/dp/x.cc", R"cpp(
void f(ShamirScheme& scheme) {
  auto blob = scheme.Share(42);
  SQM_LOG(kInfo) << blob[0];  // sqmlint:declassify
}
)cpp");
  EXPECT_EQ(Active(findings, "declassify-syntax"), 1);
  // The flow finding still gates: a reasonless declassify covers nothing.
  EXPECT_EQ(Active(findings, "taint-flow"), 1);
}

TEST(TaintFlow, SizeAccessorLaundersTaint) {
  const auto findings = Lint("src/dp/x.cc", R"cpp(
void f(ShamirScheme& scheme) {
  auto blob = scheme.Share(42);
  SQM_LOG(kInfo) << "count " << blob.size();
}
)cpp");
  EXPECT_EQ(Active(findings, "taint-flow"), 0);
}

TEST(TaintFlow, WireSinkOutsideSeamFires) {
  const auto findings = Lint("src/obs/exporter.cc", R"cpp(
void f(Transport& transport, ShamirScheme& scheme) {
  auto blob = scheme.Share(42);
  transport.Send(1, blob);
}
)cpp");
  EXPECT_EQ(Active(findings, "taint-flow"), 1);
}

TEST(TaintFlow, WireSinkInsideSeamIsTheProtocol) {
  const auto findings = Lint("src/mpc/x.cc", R"cpp(
void f(Transport& transport, ShamirScheme& scheme) {
  auto blob = scheme.Share(42);
  transport.Send(1, blob);
}
)cpp");
  EXPECT_EQ(Active(findings, "taint-flow"), 0);
}

TEST(TaintFlow, ObsSpanArgumentSinkFires) {
  const auto findings = Lint("src/dp/x.cc", R"cpp(
void f(Span& span, ShamirScheme& scheme) {
  auto blob = scheme.Share(42);
  span.AddArg("v", blob[0]);
}
)cpp");
  EXPECT_EQ(Active(findings, "taint-flow"), 1);
}

TEST(TaintFlow, HarnessFilesNeitherSeedNorSink) {
  // Test code builds and prints secret material on purpose: a tests/ file
  // produces no flow findings and does not taint src/ callees.
  const auto findings = LintFiles(
      {{"src/core/writer.cc", R"cpp(
void WriteOut(const std::vector<uint64_t>& data) {
  SQM_LOG(kInfo) << data[0];
}
)cpp"},
       {"tests/flow_test.cc", R"cpp(
void Exercise(ShamirScheme& scheme) {
  auto blob = scheme.Share(3);
  SQM_LOG(kInfo) << blob[0];
  WriteOut(blob);
}
)cpp"}});
  EXPECT_EQ(Active(findings, "taint-flow"), 0);
}

TEST(TaintFlow, NoFlowFallbackSkipsEngine) {
  const auto project = sqmlint::BuildProject({{"src/dp/x.cc", R"cpp(
void f(ShamirScheme& scheme) {
  auto blob = scheme.Share(42);
  SQM_LOG(kInfo) << blob[0];
}
)cpp"}},
                                             /*with_flow=*/false);
  const auto findings = sqmlint::RunChecks(project);
  EXPECT_EQ(Active(findings, "taint-flow"), 0);
}

// ------------------------------------------------------------- dp-spend-coverage

TEST(DpSpendCoverage, FiresOnUncoveredDrawBelowDriver) {
  // The draw hides one call below the SQM driver and no accountant spend
  // dominates it anywhere on the path.
  const auto findings = Lint("src/core/sqm.cc", R"cpp(
int64_t AddNoise(Rng& rng, double mu) {
  return Sample(rng, mu);
}
Result<SqmReport> SqmEvaluator::Evaluate(const Query& q) {
  int64_t noisy = AddNoise(rng_, 1.0);
  return Ok(noisy);
}
)cpp");
  EXPECT_EQ(Active(findings, "dp-spend-coverage"), 1);
}

TEST(DpSpendCoverage, SpendOnThePathCoversTheDraw) {
  const auto findings = Lint("src/core/sqm.cc", R"cpp(
int64_t AddNoise(Rng& rng, double mu) {
  return Sample(rng, mu);
}
Result<SqmReport> SqmEvaluator::Evaluate(const Query& q) {
  accountant_.AddSkellam(1.0, 16.0);
  int64_t noisy = AddNoise(rng_, 1.0);
  return Ok(noisy);
}
)cpp");
  EXPECT_EQ(Active(findings, "dp-spend-coverage"), 0);
}

TEST(DpSpendCoverage, DrawNotReachableFromDriverIsOutOfScope) {
  const auto findings = Lint("src/vfl/x.cc", R"cpp(
int64_t Jitter(Rng& rng) {
  return Sample(rng, 0.5);
}
)cpp");
  EXPECT_EQ(Active(findings, "dp-spend-coverage"), 0);
}

TEST(DpSpendCoverage, DeclassifySilencesWithJustification) {
  const auto findings = Lint("src/core/sqm.cc", R"cpp(
Result<SqmReport> SqmEvaluator::Evaluate(const Query& q) {
  int64_t seed = Sample(rng_, 1.0);  // sqmlint:declassify(seed derivation, not a DP noise draw)
  return Ok(seed);
}
)cpp");
  EXPECT_EQ(Active(findings, "dp-spend-coverage"), 0);
  EXPECT_EQ(Count(findings, "dp-spend-coverage", true), 1);
}

// ----------------------------------------------------------------- secret-branch

TEST(SecretBranch, FiresOnSecretSteeredIfInMpc) {
  const auto findings = Lint("src/mpc/x.cc", R"cpp(
void f(ShamirScheme& scheme) {
  auto v = scheme.Share(7);
  if (v[0] > 10) {
    Handle();
  }
}
)cpp");
  EXPECT_EQ(Active(findings, "secret-branch"), 1);
}

TEST(SecretBranch, FiresOnSecretLoopBound) {
  const auto findings = Lint("src/mpc/x.cc", R"cpp(
void f(ShamirScheme& scheme) {
  auto v = scheme.Share(7);
  for (uint64_t i = 0; i < v[0]; ++i) {
    Step();
  }
}
)cpp");
  EXPECT_EQ(Active(findings, "secret-branch"), 1);
}

TEST(SecretBranch, FiresOnSecretArrayIndex) {
  const auto findings = Lint("src/mpc/x.cc", R"cpp(
void f(ShamirScheme& scheme, const std::vector<int>& table) {
  auto v = scheme.Share(7);
  int picked = table[v[0]];
  (void)picked;
}
)cpp");
  EXPECT_EQ(Active(findings, "secret-branch"), 1);
}

TEST(SecretBranch, ConstantTimeHelperIsTheApprovedRoute) {
  const auto findings = Lint("src/mpc/x.cc", R"cpp(
void f(ShamirScheme& scheme) {
  auto v = scheme.Share(7);
  uint64_t picked = CtSelect(CtLess(v[0], 10), v[0], 0);
  (void)picked;
}
)cpp");
  EXPECT_EQ(Active(findings, "secret-branch"), 0);
}

TEST(SecretBranch, PublicSizeOfSecretContainerMaySteer) {
  const auto findings = Lint("src/mpc/x.cc", R"cpp(
void f(ShamirScheme& scheme) {
  auto v = scheme.Share(7);
  for (size_t i = 0; i < v.size(); ++i) {
    Step(i);
  }
}
)cpp");
  EXPECT_EQ(Active(findings, "secret-branch"), 0);
}

TEST(SecretBranch, OutsideMpcIsOutOfScope) {
  const auto findings = Lint("src/dp/x.cc", R"cpp(
void f(ShamirScheme& scheme) {
  auto v = scheme.Share(7);
  if (v[0] > 10) {
    Handle();
  }
}
)cpp");
  EXPECT_EQ(Active(findings, "secret-branch"), 0);
}

TEST(SecretBranch, ConditionalReductionPatternRegression) {
  // Regression fixture for the src/mpc/field.cc fix: the scalar reduction
  // used to branch on the (secret) element — `if (r >= p) r -= p` — which
  // this check now flags; the committed mask-based form stays silent.
  const auto branchy = Lint("src/mpc/x.cc", R"cpp(
uint64_t Reduce(ShamirScheme& scheme) {
  auto r = scheme.Share(1);
  if (r >= kModulus) r -= kModulus;
  return r;
}
)cpp");
  EXPECT_EQ(Active(branchy, "secret-branch"), 1);

  const auto branchless = Lint("src/mpc/x.cc", R"cpp(
uint64_t Reduce(ShamirScheme& scheme) {
  auto r = scheme.Share(1);
  r = r - (kModulus & -static_cast<uint64_t>(r >= kModulus));
  return r;
}
)cpp");
  EXPECT_EQ(Active(branchless, "secret-branch"), 0);
}

TEST(SecretBranch, DeclassifySilencesWithJustification) {
  const auto findings = Lint("src/mpc/x.cc", R"cpp(
void f(ShamirScheme& scheme) {
  auto v = scheme.Share(7);
  if (v[0] > 10) {  // sqmlint:declassify(v is a reconstructed public output here)
    Handle();
  }
}
)cpp");
  EXPECT_EQ(Active(findings, "secret-branch"), 0);
  EXPECT_EQ(Count(findings, "secret-branch", true), 1);
}

// -------------------------------------------------------------- baseline ratchet

constexpr char kOneFinding[] = R"cpp(
Status Flush(int fd);
void f(int fd) {
  Flush(fd);
}
)cpp";

TEST(Baseline, RoundTripMatchesItself) {
  const auto project = sqmlint::BuildProject({{"src/dp/x.cc", kOneFinding}});
  const auto findings = sqmlint::RunChecks(project);
  ASSERT_GT(sqmlint::CountActive(findings), 0u);
  const sqmlint::Baseline baseline =
      sqmlint::BaselineFromFindings(project, findings);
  const std::string text = sqmlint::RenderBaseline(baseline);
  sqmlint::Baseline parsed;
  std::string error;
  ASSERT_TRUE(sqmlint::ParseBaseline(text, &parsed, &error)) << error;
  const sqmlint::BaselineDelta delta =
      sqmlint::CompareBaseline(project, findings, parsed);
  EXPECT_TRUE(delta.Clean());
  EXPECT_EQ(delta.matched, sqmlint::CountActive(findings));
}

TEST(Baseline, InjectedRegressionComesBackFresh) {
  // The ratchet scenario check.sh relies on: a new finding not present in
  // the committed baseline must fail the comparison.
  const auto clean = sqmlint::BuildProject({{"src/dp/x.cc", "void f();\n"}});
  const sqmlint::Baseline baseline =
      sqmlint::BaselineFromFindings(clean, sqmlint::RunChecks(clean));
  EXPECT_TRUE(baseline.entries.empty());

  const auto regressed =
      sqmlint::BuildProject({{"src/dp/x.cc", kOneFinding}});
  const auto findings = sqmlint::RunChecks(regressed);
  const sqmlint::BaselineDelta delta =
      sqmlint::CompareBaseline(regressed, findings, baseline);
  EXPECT_FALSE(delta.Clean());
  EXPECT_EQ(delta.fresh.size(), sqmlint::CountActive(findings));
}

TEST(Baseline, StaleEntriesRefuseToLinger) {
  // A baselined finding that stops firing must be deleted from the
  // committed file: the baseline only shrinks.
  const auto project =
      sqmlint::BuildProject({{"src/dp/x.cc", "void f();\n"}});
  sqmlint::Baseline baseline;
  baseline.entries.push_back(
      {"unchecked-status", "src/dp/x.cc", "Flush(fd);"});
  const sqmlint::BaselineDelta delta = sqmlint::CompareBaseline(
      project, sqmlint::RunChecks(project), baseline);
  EXPECT_FALSE(delta.Clean());
  ASSERT_EQ(delta.stale.size(), 1u);
  EXPECT_EQ(delta.stale[0].check, "unchecked-status");
}

TEST(Baseline, FingerprintSurvivesLineChurn) {
  // Unrelated edits above the finding shift its line number; the
  // line-text fingerprint keeps matching so the baseline does not churn.
  const auto before = sqmlint::BuildProject({{"src/dp/x.cc", kOneFinding}});
  const sqmlint::Baseline baseline =
      sqmlint::BaselineFromFindings(before, sqmlint::RunChecks(before));
  const auto after = sqmlint::BuildProject(
      {{"src/dp/x.cc", std::string("// one new comment line\n\n") +
                           kOneFinding}});
  const sqmlint::BaselineDelta delta = sqmlint::CompareBaseline(
      after, sqmlint::RunChecks(after), baseline);
  EXPECT_TRUE(delta.Clean());
}

TEST(Baseline, ModuleRelativePathCutsAbsolutePrefix) {
  EXPECT_EQ(sqmlint::ModuleRelativePath("/home/u/repo/src/mpc/field.cc"),
            "src/mpc/field.cc");
  EXPECT_EQ(sqmlint::ModuleRelativePath("tests/sqm_test.cc"),
            "tests/sqm_test.cc");
  EXPECT_EQ(sqmlint::ModuleRelativePath("tools/sqmlint/main.cc"),
            "tools/sqmlint/main.cc");
}

TEST(Baseline, SuppressedFindingsAreNotBaselined) {
  const auto project = sqmlint::BuildProject({{"src/dp/x.cc", R"cpp(
Status Flush(int fd);
void f(int fd) {
  Flush(fd);  // sqmlint:allow(unchecked-status)
}
)cpp"}});
  const sqmlint::Baseline baseline =
      sqmlint::BaselineFromFindings(project, sqmlint::RunChecks(project));
  EXPECT_TRUE(baseline.entries.empty());
}

// ------------------------------------------------------- JSON / SARIF round-trip

TEST(Renderers, JsonRoundTripsThroughRepoParser) {
  const auto project = sqmlint::BuildProject({{"src/dp/x.cc", kOneFinding}});
  const auto findings = sqmlint::RunChecks(project);
  const auto parsed = sqm::ParseJson(sqmlint::RenderJson(project, findings));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const sqm::JsonValue& doc = parsed.value();
  const sqm::JsonValue* list = doc.Find("findings");
  ASSERT_NE(list, nullptr);
  ASSERT_EQ(list->items.size(), findings.size());
  const sqm::JsonValue* check = list->items[0].Find("check");
  ASSERT_NE(check, nullptr);
  EXPECT_EQ(check->string_value, "unchecked-status");
  const sqm::JsonValue* summary = doc.Find("summary");
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(summary->Find("active")->uint_value, 1u);
}

TEST(Renderers, SarifRoundTripsThroughRepoParser) {
  const auto project = sqmlint::BuildProject({{"src/dp/x.cc", kOneFinding}});
  const auto findings = sqmlint::RunChecks(project);
  const auto parsed = sqm::ParseJson(sqmlint::RenderSarif(project, findings));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const sqm::JsonValue& doc = parsed.value();
  EXPECT_EQ(doc.Find("version")->string_value, "2.1.0");
  const sqm::JsonValue* runs = doc.Find("runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_EQ(runs->items.size(), 1u);
  const sqm::JsonValue& run = runs->items[0];
  const sqm::JsonValue* driver = run.Find("tool")->Find("driver");
  ASSERT_NE(driver, nullptr);
  EXPECT_EQ(driver->Find("name")->string_value, "sqmlint");
  // One rule per registered check.
  EXPECT_EQ(driver->Find("rules")->items.size(),
            sqmlint::AllChecks().size());
  const sqm::JsonValue* results = run.Find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->items.size(), findings.size());
  const sqm::JsonValue& result = results->items[0];
  EXPECT_EQ(result.Find("ruleId")->string_value, "unchecked-status");
  const sqm::JsonValue* region = result.Find("locations")
                                     ->items[0]
                                     .Find("physicalLocation")
                                     ->Find("region");
  ASSERT_NE(region, nullptr);
  EXPECT_TRUE(region->Find("startLine")->is_integer);
}

TEST(Renderers, SarifMarksSuppressedFindings) {
  const auto project = sqmlint::BuildProject({{"src/dp/x.cc", R"cpp(
Status Flush(int fd);
void f(int fd) {
  Flush(fd);  // sqmlint:allow(unchecked-status)
}
)cpp"}});
  const auto findings = sqmlint::RunChecks(project);
  const auto parsed = sqm::ParseJson(sqmlint::RenderSarif(project, findings));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const sqm::JsonValue* results =
      parsed.value().Find("runs")->items[0].Find("results");
  ASSERT_EQ(results->items.size(), 1u);
  const sqm::JsonValue* suppressions =
      results->items[0].Find("suppressions");
  ASSERT_NE(suppressions, nullptr);
  ASSERT_EQ(suppressions->items.size(), 1u);
  EXPECT_EQ(suppressions->items[0].Find("kind")->string_value, "inSource");
}

}  // namespace
