#include "core/quantize.h"

#include <gtest/gtest.h>

#include <cmath>

#include "math/stats.h"

namespace sqm {
namespace {

TEST(StochasticRoundTest, ExactIntegersAreFixedPoints) {
  Rng rng(1);
  EXPECT_EQ(StochasticRound(3.0, 1.0, rng), 3);
  EXPECT_EQ(StochasticRound(-2.0, 1.0, rng), -2);
  EXPECT_EQ(StochasticRound(0.5, 4.0, rng), 2);  // 0.5 * 4 = 2 exactly.
}

TEST(StochasticRoundTest, RoundsToOneOfTwoNeighbours) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const int64_t r = StochasticRound(2.3, 10.0, rng);  // 23 exactly.
    EXPECT_EQ(r, 23);
  }
  for (int i = 0; i < 1000; ++i) {
    const int64_t r = StochasticRound(0.234, 10.0, rng);  // 2.34.
    EXPECT_TRUE(r == 2 || r == 3);
  }
}

TEST(StochasticRoundTest, IsUnbiased) {
  // E[round(v * s)] = v * s — the property that makes quantized Gram
  // matrices unbiased (Algorithm 2 discussion).
  Rng rng(3);
  for (double v : {0.123, -0.777, 1.999, -3.501}) {
    const double scale = 7.0;
    constexpr int kDraws = 200000;
    double sum = 0.0;
    for (int i = 0; i < kDraws; ++i) {
      sum += static_cast<double>(StochasticRound(v, scale, rng));
    }
    EXPECT_NEAR(sum / kDraws, v * scale, 0.01) << "v=" << v;
  }
}

TEST(StochasticRoundTest, NegativeValuesHandled) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const int64_t r = StochasticRound(-0.25, 10.0, rng);  // -2.5.
    EXPECT_TRUE(r == -3 || r == -2);
  }
}

TEST(NearestRoundTest, RoundsToNearest) {
  EXPECT_EQ(NearestRound(0.24, 10.0), 2);
  EXPECT_EQ(NearestRound(0.26, 10.0), 3);
  EXPECT_EQ(NearestRound(-0.26, 10.0), -3);
}

TEST(QuantizeDatabaseTest, ShapesAndScale) {
  Matrix x{{0.5, -0.25}, {1.0, 0.125}};
  Rng rng(5);
  const QuantizedDatabase db = QuantizeDatabase(x, 8.0, rng);
  EXPECT_EQ(db.rows, 2u);
  EXPECT_EQ(db.cols, 2u);
  // All entries are exact multiples of 1/8 -> deterministic.
  EXPECT_EQ(db.at(0, 0), 4);
  EXPECT_EQ(db.at(0, 1), -2);
  EXPECT_EQ(db.at(1, 0), 8);
  EXPECT_EQ(db.at(1, 1), 1);
}

TEST(QuantizeDatabaseTest, ColumnsUseIndependentStreams) {
  // Two identical columns must round differently at non-exact fractions.
  Matrix x(200, 2);
  for (size_t i = 0; i < 200; ++i) {
    x(i, 0) = 0.3333;
    x(i, 1) = 0.3333;
  }
  Rng rng(6);
  const QuantizedDatabase db = QuantizeDatabase(x, 10.0, rng);
  size_t differing = 0;
  for (size_t i = 0; i < 200; ++i) {
    if (db.at(i, 0) != db.at(i, 1)) ++differing;
  }
  EXPECT_GT(differing, 20u);
}

TEST(QuantizePolynomialTest, PerDegreeCoefficientScaling) {
  // f(x) = 0.5*x0 + 0.25*x0*x1 (degrees 1 and 2; lambda = 2).
  // Coefficient scales: deg-1 -> gamma^2, deg-2 -> gamma^1.
  PolynomialVector f;
  Polynomial p;
  p.AddTerm(Monomial::Power(0.5, 0, 1));
  p.AddTerm(Monomial(0.25, {{0, 1}, {1, 1}}));
  f.AddDimension(p);

  Rng rng(7);
  const double gamma = 16.0;
  const QuantizedPolynomial qf =
      QuantizePolynomial(f, gamma, rng).ValueOrDie();
  EXPECT_EQ(qf.degree, 2u);
  EXPECT_DOUBLE_EQ(qf.output_scale, gamma * gamma * gamma);
  ASSERT_EQ(qf.dims.size(), 1u);
  ASSERT_EQ(qf.dims[0].size(), 2u);
  EXPECT_EQ(qf.dims[0][0].coefficient, 128);  // 0.5 * 16^2, exact.
  EXPECT_EQ(qf.dims[0][1].coefficient, 4);    // 0.25 * 16, exact.
}

TEST(QuantizePolynomialTest, RejectsGammaBelowOne) {
  PolynomialVector f = PolynomialVector::OuterProduct(2);
  Rng rng(8);
  EXPECT_FALSE(QuantizePolynomial(f, 0.5, rng).ok());
}

TEST(QuantizePolynomialTest, RejectsOverflowingCoefficient) {
  PolynomialVector f;
  Polynomial p;
  p.AddTerm(Monomial(1e10));  // Degree 0: scale gamma^{1+lambda}.
  Polynomial q;
  q.AddTerm(Monomial(1.0, {{0, 1}, {1, 1}, {2, 1}}));  // lambda = 3.
  f.AddDimension(p).AddDimension(q);
  Rng rng(9);
  EXPECT_EQ(QuantizePolynomial(f, 4096.0, rng).status().code(),
            StatusCode::kOutOfRange);
}

TEST(EvaluateQuantizedDimTest, MatchesManualComputation) {
  // f-hat = 3 * x0^2 * x1 on quantized row (4, -2) -> 3*16*(-2) = -96.
  QuantizedDatabase db;
  db.rows = 1;
  db.cols = 2;
  db.columns = {{4}, {-2}};
  QuantizedMonomial qm;
  qm.coefficient = 3;
  qm.exponents = {{0, 2}, {1, 1}};
  const auto value = EvaluateQuantizedDim({qm}, db, 0);
  EXPECT_EQ(value.ValueOrDie(), -96);
}

TEST(EvaluateQuantizedDimTest, DetectsCapacityOverflow) {
  QuantizedDatabase db;
  db.rows = 1;
  db.cols = 1;
  db.columns = {{int64_t{1} << 31}};
  QuantizedMonomial qm;
  qm.coefficient = 1;
  qm.exponents = {{0, 2}};  // (2^31)^2 = 2^62 > capacity.
  EXPECT_EQ(EvaluateQuantizedDim({qm}, db, 0).status().code(),
            StatusCode::kOutOfRange);
}

TEST(EvaluateQuantizedDimTest, ValidatesIndices) {
  QuantizedDatabase db;
  db.rows = 1;
  db.cols = 1;
  db.columns = {{1}};
  QuantizedMonomial qm;
  qm.coefficient = 1;
  qm.exponents = {{5, 1}};  // Missing column.
  EXPECT_FALSE(EvaluateQuantizedDim({qm}, db, 0).ok());
  EXPECT_FALSE(EvaluateQuantizedDim({qm}, db, 3).ok());  // Missing row.
}

TEST(QuantizeRoundTripTest, RelativeErrorShrinksWithGamma) {
  // Lemma 2 / Corollary 1: the quantization error of the de-scaled estimate
  // vanishes as gamma grows.
  Matrix x(50, 2);
  Rng data_gen(11);
  for (auto& v : x.data()) v = data_gen.NextDouble() - 0.5;
  const PolynomialVector f = PolynomialVector::OuterProduct(2);

  std::vector<std::vector<double>> rows;
  for (size_t i = 0; i < x.rows(); ++i) rows.push_back(x.Row(i));
  const std::vector<double> exact = f.EvaluateSum(rows);

  double prev_error = 1e18;
  for (double gamma : {16.0, 256.0, 4096.0}) {
    Rng rng(12);
    const QuantizedDatabase db = QuantizeDatabase(x, gamma, rng);
    double worst = 0.0;
    for (size_t t = 0; t < f.output_dim(); ++t) {
      // Coefficients are 1; no coefficient quantization (PCA convention).
      QuantizedMonomial qm;
      qm.coefficient = 1;
      qm.exponents = f.dims()[t].terms()[0].exponents();
      double acc = 0.0;
      for (size_t i = 0; i < db.rows; ++i) {
        acc += static_cast<double>(
            EvaluateQuantizedDim({qm}, db, i).ValueOrDie());
      }
      worst = std::max(worst,
                       std::fabs(acc / (gamma * gamma) - exact[t]));
    }
    EXPECT_LT(worst, prev_error);
    prev_error = worst;
  }
  EXPECT_LT(prev_error, 1e-2);
}

}  // namespace
}  // namespace sqm
