// Multi-process resilience: the coordinator launches a 5-party networked
// run as real OS processes, one party is SIGKILLed mid-Mul (no goodbye
// frame, sub-shares half-sent), and the survivors must finish and
// re-account the privacy guarantee instead of hanging.
//
// This is the one suite that exercises the deployment path end-to-end —
// fork/exec, pre-bound listeners, TCP framing, crash detection via
// reconnect-window expiry, the census round, and the dropout ledger — so
// it spawns the real sqm-coordinator binary (path baked in via
// SQM_COORDINATOR_BIN) rather than simulating any layer.

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/report_io.h"
#include "core/sqm.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#include <unistd.h>
#define SQM_DEPLOY_TEST_SUPPORTED 1
#endif

namespace {

#ifdef SQM_DEPLOY_TEST_SUPPORTED

/// 5-party roster on loopback, port 0 everywhere (the coordinator binds
/// real ports and rewrites the roster before forking). bgw_threshold = 1
/// gives quorum 2t+1 = 3, so one crash among five parties is tolerable;
/// the default threshold (n-1)/2 would make the quorum n and turn any
/// crash into an abort.
std::string DeployConfig(const std::string& policy) {
  std::ostringstream out;
  out << "{\n"
      << "  \"run_id\": 88, \"session_key\": 5555,\n"
      << "  \"parties\": ["
      << "{\"host\":\"127.0.0.1\",\"port\":0},"
      << "{\"host\":\"127.0.0.1\",\"port\":0},"
      << "{\"host\":\"127.0.0.1\",\"port\":0},"
      << "{\"host\":\"127.0.0.1\",\"port\":0},"
      << "{\"host\":\"127.0.0.1\",\"port\":0}],\n"
      << "  \"rows\": 6, \"cols\": 5, \"data_seed\": 9,\n"
      << "  \"polynomial\": \"x0*x1; x2*x3; x3*x4\",\n"
      << "  \"gamma\": 32, \"mu\": 4, \"seed\": 1234,\n"
      << "  \"dropout_policy\": \"" << policy << "\",\n"
      << "  \"bgw_threshold\": 1, \"dp_delta\": 1e-5,\n"
      << "  \"receive_timeout_seconds\": 1.0,\n"
      << "  \"max_reconnect_attempts\": 2,\n"
      << "  \"reconnect_backoff_seconds\": 0.05\n"
      << "}\n";
  return out.str();
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return in ? buffer.str() : std::string();
}

/// Runs the coordinator for `policy` with party 2 crashing at Mul level 1
/// and returns party 0's report. Fails the test on any setup error.
sqm::SqmReport RunCrashScenario(const std::string& policy) {
  const std::string dir =
      testing::TempDir() + "/deploy_" + policy + "_" +
      std::to_string(::getpid());
  EXPECT_EQ(std::system(("mkdir -p " + dir).c_str()), 0);
  {
    std::ofstream config(dir + "/deploy.json", std::ios::trunc);
    config << DeployConfig(policy);
    EXPECT_TRUE(config.good());
  }

  const std::string command = std::string(SQM_COORDINATOR_BIN) +
                              " --config=" + dir + "/deploy.json" +
                              " --out-dir=" + dir +
                              " --crash-party=2 --crash-at-mul-level=1" +
                              " --timeout-seconds=90 > " + dir +
                              "/coordinator.log 2>&1";
  const int rc = std::system(command.c_str());
  EXPECT_TRUE(WIFEXITED(rc)) << "coordinator did not exit normally";
  EXPECT_EQ(WEXITSTATUS(rc), 0)
      << "coordinator failed; log:\n" << ReadFileOrEmpty(dir + "/coordinator.log");

  const std::string report_json = ReadFileOrEmpty(dir + "/party_0.json");
  EXPECT_FALSE(report_json.empty()) << "party 0 wrote no report";
  sqm::Result<sqm::SqmReport> report = sqm::SqmReportFromJson(report_json);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return report.ok() ? report.ValueOrDie() : sqm::SqmReport();
}

TEST(DeployResilience, KillMidMulUnderDegradeReaccountsEpsilon) {
  const sqm::SqmReport report = RunCrashScenario("degrade");
  const sqm::DropoutReport& dropout = report.dropout;

  EXPECT_EQ(dropout.policy, sqm::DropoutPolicy::kDegrade);
  EXPECT_EQ(dropout.num_parties, 5u);
  EXPECT_EQ(dropout.num_dropped, 1u);
  ASSERT_EQ(dropout.survivors.size(), 4u);
  for (size_t survivor : dropout.survivors) {
    EXPECT_NE(survivor, 2u) << "the killed party cannot be a survivor";
  }

  // Party 2's Skellam contribution died with it: mu drops from 4 to
  // 4 * 4/5 = 3.2 and the honest epsilon at the weaker noise must be
  // strictly worse (larger) but still finite — degraded, not destroyed.
  EXPECT_DOUBLE_EQ(dropout.configured_mu, 4.0);
  EXPECT_NEAR(dropout.realized_mu, 3.2, 1e-12);
  EXPECT_DOUBLE_EQ(dropout.topup_mu, 0.0);
  EXPECT_GT(dropout.realized_epsilon, dropout.configured_epsilon);
  EXPECT_TRUE(std::isfinite(dropout.realized_epsilon));
  EXPECT_GT(dropout.configured_epsilon, 0.0);
}

TEST(DeployResilience, KillMidMulUnderTopupRestoresConfiguredMu) {
  const sqm::SqmReport report = RunCrashScenario("topup");
  const sqm::DropoutReport& dropout = report.dropout;

  EXPECT_EQ(dropout.policy, sqm::DropoutPolicy::kTopUp);
  EXPECT_EQ(dropout.num_dropped, 1u);
  // Each of the 4 survivors adds mu/n = 0.8 of fresh noise, restoring the
  // provisioned total: 3.2 + 4 * 0.8 / 4 ... i.e. realized_mu == 4.
  EXPECT_NEAR(dropout.topup_mu, 0.8, 1e-12);
  EXPECT_NEAR(dropout.realized_mu, 4.0, 1e-12);
  EXPECT_NEAR(dropout.realized_epsilon, dropout.configured_epsilon,
              1e-9 * dropout.configured_epsilon);
}

#else  // !SQM_DEPLOY_TEST_SUPPORTED

TEST(DeployResilience, SkippedWithoutForkExec) {
  GTEST_SKIP() << "multi-process deployment tests need POSIX fork/exec";
}

#endif

}  // namespace
