#include "math/matrix.h"

#include <gtest/gtest.h>

namespace sqm {
namespace {

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(MatrixTest, ZeroInitialized) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  for (size_t i = 0; i < 3; ++i)
    for (size_t j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(m(i, j), 0.0);
}

TEST(MatrixTest, InitializerListLayout) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(0, 0), 1);
  EXPECT_DOUBLE_EQ(m(0, 2), 3);
  EXPECT_DOUBLE_EQ(m(1, 1), 5);
}

TEST(MatrixTest, Identity) {
  const Matrix id = Matrix::Identity(3);
  for (size_t i = 0; i < 3; ++i)
    for (size_t j = 0; j < 3; ++j)
      EXPECT_DOUBLE_EQ(id(i, j), i == j ? 1.0 : 0.0);
}

TEST(MatrixTest, RowAndColAccessors) {
  Matrix m{{1, 2}, {3, 4}, {5, 6}};
  EXPECT_EQ(m.Row(1), (std::vector<double>{3, 4}));
  EXPECT_EQ(m.Col(0), (std::vector<double>{1, 3, 5}));
}

TEST(MatrixTest, SetRowAndCol) {
  Matrix m(2, 2);
  m.SetRow(0, {7, 8});
  m.SetCol(1, {9, 10});
  EXPECT_DOUBLE_EQ(m(0, 0), 7);
  EXPECT_DOUBLE_EQ(m(0, 1), 9);
  EXPECT_DOUBLE_EQ(m(1, 1), 10);
}

TEST(MatrixTest, SelectColsPreservesOrder) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  const Matrix sel = m.SelectCols({2, 0});
  EXPECT_EQ(sel.cols(), 2u);
  EXPECT_DOUBLE_EQ(sel(0, 0), 3);
  EXPECT_DOUBLE_EQ(sel(0, 1), 1);
  EXPECT_DOUBLE_EQ(sel(1, 0), 6);
}

TEST(MatrixTest, SelectRowsPreservesOrder) {
  Matrix m{{1, 2}, {3, 4}, {5, 6}};
  const Matrix sel = m.SelectRows({2, 0});
  EXPECT_EQ(sel.rows(), 2u);
  EXPECT_DOUBLE_EQ(sel(0, 0), 5);
  EXPECT_DOUBLE_EQ(sel(1, 1), 2);
}

TEST(MatrixTest, TransposeRoundTrip) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  const Matrix t = m.Transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6);
  EXPECT_EQ(t.Transpose(), m);
}

TEST(MatrixTest, Arithmetic) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{10, 20}, {30, 40}};
  EXPECT_EQ(a + b, (Matrix{{11, 22}, {33, 44}}));
  EXPECT_EQ(b - a, (Matrix{{9, 18}, {27, 36}}));
  EXPECT_EQ(a * 2.0, (Matrix{{2, 4}, {6, 8}}));
  EXPECT_EQ(2.0 * a, (Matrix{{2, 4}, {6, 8}}));
}

TEST(MatrixTest, ToStringMentionsShape) {
  Matrix m{{1, 2}};
  EXPECT_NE(m.ToString().find("1x2"), std::string::npos);
}

}  // namespace
}  // namespace sqm
