// Dropout-tolerance acceptance tests: with n = 7, t = 2 (quorum 2t+1 = 5),
// crashing any 2 parties mid-Mul under kDegrade completes the SQM release
// with exactly the no-crash values and an honestly recomputed (epsilon,
// delta); crashing 3 fails fast with kUnavailable naming the quorum
// shortfall — under both transports. Plus checkpoint resume after transient
// timeouts and a crash sweep over every party x protocol phase (the
// `resilience` ctest label's TSan target).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "core/report_io.h"
#include "core/sqm.h"
#include "mpc/bgw.h"
#include "mpc/circuit.h"
#include "mpc/network.h"
#include "mpc/protocol.h"
#include "mpc/shamir.h"
#include "net/liveness.h"
#include "net/threaded.h"

namespace sqm {
namespace {

ThreadedTransportOptions FastOptions() {
  ThreadedTransportOptions options;
  options.receive_timeout_seconds = 0.02;
  options.max_retries = 2;
  options.retry_backoff_seconds = 0.0005;
  return options;
}

// n = 7 clients (one column each), t = 2: quorum 2t+1 = 5, so any 2 crashes
// are survivable and 3 are not. Two output dimensions, one of degree 3, so
// the circuit has two multiplication levels.
constexpr size_t kParties = 7;
constexpr size_t kThreshold = 2;
// One input round per party; crashes scheduled after them land mid-Mul.
constexpr uint64_t kAfterInputs = kParties;

PolynomialVector AcceptanceF() {
  PolynomialVector f;
  Polynomial p0;
  p0.AddTerm(Monomial(1.0, {{0, 1}, {1, 1}}));
  p0.AddTerm(Monomial(1.0, {{2, 1}, {3, 1}}));
  f.AddDimension(p0);
  Polynomial p1;
  p1.AddTerm(Monomial(1.0, {{4, 1}, {5, 1}, {6, 1}}));
  f.AddDimension(p1);
  return f;
}

Matrix AcceptanceX() {
  return Matrix{{0.2, -0.3, 0.4, 0.5, -0.1, 0.6, 0.3},
                {-0.4, 0.1, 0.2, -0.5, 0.3, -0.2, 0.7},
                {0.5, 0.6, -0.3, 0.1, 0.4, 0.2, -0.6}};
}

SqmOptions AcceptanceOptions() {
  SqmOptions options;
  options.gamma = 64.0;
  options.mu = 400.0;
  options.backend = MpcBackend::kBgw;
  options.bgw_threshold = kThreshold;
  options.max_f_l2 = 2.0;
  return options;
}

TEST(ResilienceTest, DegradeSurvivesAnyTwoCrashesWithExactRelease) {
  const PolynomialVector f = AcceptanceF();
  const Matrix x = AcceptanceX();

  SqmOptions options = AcceptanceOptions();
  const SqmReport baseline = SqmEvaluator(options).Evaluate(f, x).ValueOrDie();

  // Enabling the quorum paths without any crash must not change the release.
  options.dropout_policy = DropoutPolicy::kDegrade;
  const SqmReport clean = SqmEvaluator(options).Evaluate(f, x).ValueOrDie();
  EXPECT_EQ(clean.raw, baseline.raw);
  EXPECT_EQ(clean.dropout.num_dropped, 0u);
  EXPECT_DOUBLE_EQ(clean.dropout.realized_mu, options.mu);
  EXPECT_DOUBLE_EQ(clean.dropout.realized_epsilon,
                   clean.dropout.configured_epsilon);

  // Crash every pair of parties mid-Mul: the release must complete on the
  // 5-survivor quorum and open to exactly the no-crash values (survivor
  // randomness and the already-shared inputs are untouched by the crash; a
  // degree-2t sharing opens identically from every 2t+1 subset).
  for (size_t a = 0; a < kParties; ++a) {
    for (size_t b = a + 1; b < kParties; ++b) {
      SqmOptions crashed = options;
      crashed.threaded.faults.crashes = {{a, kAfterInputs},
                                         {b, kAfterInputs}};
      const auto result = SqmEvaluator(crashed).Evaluate(f, x);
      ASSERT_TRUE(result.ok())
          << "crash pair (" << a << "," << b
          << "): " << result.status().ToString();
      const SqmReport& report = result.ValueOrDie();
      EXPECT_EQ(report.raw, baseline.raw)
          << "crash pair (" << a << "," << b << ")";
      const DropoutReport& dropout = report.dropout;
      EXPECT_EQ(dropout.policy, DropoutPolicy::kDegrade);
      EXPECT_EQ(dropout.num_dropped, 2u);
      ASSERT_EQ(dropout.survivors.size(), 5u);
      EXPECT_EQ(std::count(dropout.survivors.begin(),
                           dropout.survivors.end(), a),
                0);
      EXPECT_EQ(std::count(dropout.survivors.begin(),
                           dropout.survivors.end(), b),
                0);
      // The deficit Sk(5/7 mu) is accounted honestly: less noise, larger
      // (but still finite) epsilon at the same delta.
      EXPECT_DOUBLE_EQ(dropout.realized_mu, options.mu * 5.0 / 7.0);
      EXPECT_GT(dropout.realized_epsilon, dropout.configured_epsilon);
      EXPECT_TRUE(std::isfinite(dropout.realized_epsilon));
      EXPECT_EQ(dropout.mpc_attempts, 1u);
    }
  }
}

TEST(ResilienceTest, AbortPolicySurfacesCrashAsError) {
  SqmOptions options = AcceptanceOptions();
  options.threaded.faults.crashes = {{3, kAfterInputs}};
  // dropout_policy defaults to kAbort: the legacy all-or-nothing behavior.
  const auto result =
      SqmEvaluator(options).Evaluate(AcceptanceF(), AcceptanceX());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

TEST(ResilienceTest, ThreeCrashesFailFastNamingQuorumShortfall) {
  const PolynomialVector f = AcceptanceF();
  const Matrix x = AcceptanceX();
  for (const TransportMode mode :
       {TransportMode::kLockstep, TransportMode::kThreaded}) {
    SqmOptions options = AcceptanceOptions();
    options.dropout_policy = DropoutPolicy::kDegrade;
    options.transport = mode;
    if (mode == TransportMode::kThreaded) options.threaded = FastOptions();
    options.threaded.faults.crashes = {
        {1, kAfterInputs}, {3, kAfterInputs}, {5, kAfterInputs}};
    const auto result = SqmEvaluator(options).Evaluate(f, x);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
    EXPECT_NE(result.status().message().find("quorum"), std::string::npos)
        << result.status().ToString();
  }
}

TEST(ResilienceTest, ThreadedDegradeMatchesLockstepRelease) {
  const PolynomialVector f = AcceptanceF();
  const Matrix x = AcceptanceX();

  SqmOptions options = AcceptanceOptions();
  const SqmReport baseline = SqmEvaluator(options).Evaluate(f, x).ValueOrDie();

  options.dropout_policy = DropoutPolicy::kDegrade;
  options.transport = TransportMode::kThreaded;
  options.threaded = FastOptions();
  options.threaded.faults.crashes = {{1, kAfterInputs}, {5, kAfterInputs}};
  const auto result = SqmEvaluator(options).Evaluate(f, x);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const SqmReport& report = result.ValueOrDie();
  EXPECT_EQ(report.raw, baseline.raw);
  EXPECT_EQ(report.dropout.survivors, (std::vector<size_t>{0, 2, 3, 4, 6}));
  EXPECT_EQ(report.dropout.num_dropped, 2u);
  EXPECT_GT(report.dropout.realized_epsilon,
            report.dropout.configured_epsilon);
}

TEST(ResilienceTest, TopUpRestoresFullNoiseAndEpsilon) {
  const PolynomialVector f = AcceptanceF();
  const Matrix x = AcceptanceX();

  SqmOptions options = AcceptanceOptions();
  options.dropout_policy = DropoutPolicy::kDegrade;
  options.threaded.faults.crashes = {{2, kAfterInputs}, {6, kAfterInputs}};
  const SqmReport degraded =
      SqmEvaluator(options).Evaluate(f, x).ValueOrDie();

  options.dropout_policy = DropoutPolicy::kTopUp;
  const SqmReport topped = SqmEvaluator(options).Evaluate(f, x).ValueOrDie();

  const DropoutReport& dropout = topped.dropout;
  EXPECT_EQ(dropout.num_dropped, 2u);
  // 5 survivors each contribute Sk(2 mu / 35): together Sk(2/7 mu), which
  // fills the deficit back up to the full Sk(mu).
  EXPECT_NEAR(dropout.topup_mu, options.mu * 2.0 / 7.0, 1e-9);
  EXPECT_NEAR(dropout.realized_mu, options.mu, 1e-9);
  EXPECT_NEAR(dropout.realized_epsilon, dropout.configured_epsilon, 1e-6);
  // The compensating noise actually entered the release.
  EXPECT_NE(topped.raw, degraded.raw);
  EXPECT_GT(degraded.dropout.realized_epsilon, dropout.realized_epsilon);
}

TEST(ResilienceTest, DropoutReportSerializesToJson) {
  SqmOptions options = AcceptanceOptions();
  options.dropout_policy = DropoutPolicy::kDegrade;
  options.threaded.faults.crashes = {{0, kAfterInputs}, {4, kAfterInputs}};
  const SqmReport report =
      SqmEvaluator(options).Evaluate(AcceptanceF(), AcceptanceX()).ValueOrDie();
  const std::string json = SqmReportToJson(report);
  EXPECT_NE(json.find("\"policy\":\"degrade\""), std::string::npos);
  EXPECT_NE(json.find("\"num_dropped\":2"), std::string::npos);
  EXPECT_NE(json.find("\"survivors\":[1,2,3,5,6]"), std::string::npos);
  EXPECT_NE(json.find("\"realized_epsilon\":"), std::string::npos);
}

// Lockstep network that times out a fixed set of dealers once each, after
// the input phase — a transient flake (kDeadlineExceeded), not a crash: the
// parties stay alive and the retried level succeeds.
class FlakyOnceNetwork : public SimulatedNetwork {
 public:
  FlakyOnceNetwork(size_t num_parties, std::vector<size_t> flaky_dealers)
      : SimulatedNetwork(num_parties, 0.0),
        pending_(std::move(flaky_dealers)) {}

  Result<Payload> Receive(size_t from, size_t to) override {
    if (stats().rounds >= num_parties()) {
      const auto it = std::find(pending_.begin(), pending_.end(), from);
      if (it != pending_.end()) {
        pending_.erase(it);
        return Status::DeadlineExceeded("injected transient timeout");
      }
    }
    return SimulatedNetwork::Receive(from, to);
  }

 private:
  std::vector<size_t> pending_;
};

TEST(ResilienceTest, CheckpointResumesAfterTransientTimeouts) {
  // n = 5, t = 1: quorum 3, two mul levels. Timing out 3 of 5 dealers in
  // the first mul round sinks that level (2 usable < 3); all three parties
  // are merely suspected, so the run resumes from the checkpoint, drains
  // the stale sub-shares, and finishes with the clean-run values.
  Circuit circuit;
  std::vector<Circuit::WireId> in(5);
  for (size_t j = 0; j < 5; ++j) in[j] = circuit.AddInput(j);
  Circuit::WireId prod = circuit.AddMul(in[0], in[1]);
  prod = circuit.AddMul(prod, in[2]);
  prod = circuit.AddAdd(prod, circuit.AddAdd(in[3], in[4]));
  circuit.MarkOutput(prod);
  const std::vector<std::vector<int64_t>> inputs = {
      {3}, {-4}, {5}, {7}, {-2}};
  const int64_t expected = (3 * -4) * 5 + 7 - 2;

  SimulatedNetwork clean_net(5, 0.0);
  BgwEngine clean_engine(ShamirScheme(5, 1), &clean_net, 99);
  LivenessTracker clean_tracker(5);
  clean_engine.set_liveness(&clean_tracker);
  const auto clean = clean_engine.Evaluate(circuit, inputs).ValueOrDie();
  ASSERT_EQ(clean, (std::vector<int64_t>{expected}));

  FlakyOnceNetwork flaky_net(5, {1, 2, 3});
  BgwEngine engine(ShamirScheme(5, 1), &flaky_net, 99);
  LivenessTracker tracker(5);
  engine.set_liveness(&tracker);

  BgwCheckpoint checkpoint;
  const auto first = engine.EvaluateToShares(circuit, inputs, &checkpoint);
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(first.status().message().find("quorum"), std::string::npos);
  EXPECT_TRUE(checkpoint.valid);
  EXPECT_EQ(checkpoint.next_level, 1u);  // Inputs kept; retry at level 1.
  EXPECT_EQ(tracker.num_dead(), 0u);     // Suspected, not dead.
  EXPECT_EQ(tracker.state(1), PartyLiveness::kSuspected);

  const auto second = engine.EvaluateToShares(circuit, inputs, &checkpoint);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  const auto outputs = engine.OpenOutputs(second.ValueOrDie()).ValueOrDie();
  EXPECT_EQ(outputs, (std::vector<int64_t>{expected}));
  EXPECT_EQ(tracker.num_alive(), 5u);  // Success cleared every suspicion.
}

TEST(ResilienceTest, CrashSweepEveryPartyEveryPhase) {
  // Crash each party at each protocol phase boundary over the threaded
  // transport: every run must either finish with the no-crash release and a
  // consistent dropout report, or fail with kUnavailable — never hang,
  // never release corrupted values. n = 5, t = 1: rounds 0..4 are input
  // rounds (party j deals in round j), round 5 is the mul, round 6 the
  // open.
  PolynomialVector f;
  Polynomial p;
  p.AddTerm(Monomial(1.0, {{0, 1}, {1, 1}}));
  p.AddTerm(Monomial(1.0, {{2, 1}, {3, 1}}));
  p.AddTerm(Monomial(2.0, {{4, 2}}));
  f.AddDimension(p);
  const Matrix x{{0.3, -0.2, 0.5, 0.4, -0.6}, {-0.1, 0.7, 0.2, -0.3, 0.5}};

  SqmOptions options;
  options.gamma = 32.0;
  options.mu = 0.0;
  options.backend = MpcBackend::kBgw;
  options.bgw_threshold = 1;
  options.max_f_l2 = 2.0;
  const SqmReport baseline = SqmEvaluator(options).Evaluate(f, x).ValueOrDie();

  size_t completed = 0;
  size_t refused = 0;
  for (size_t party = 0; party < 5; ++party) {
    for (const uint64_t after_rounds : {uint64_t{0}, uint64_t{2},
                                        uint64_t{5}, uint64_t{6}}) {
      SqmOptions crashed = options;
      crashed.dropout_policy = DropoutPolicy::kDegrade;
      crashed.transport = TransportMode::kThreaded;
      crashed.threaded = FastOptions();
      crashed.threaded.faults.crashes = {{party, after_rounds}};
      const auto result = SqmEvaluator(crashed).Evaluate(f, x);
      if (result.ok()) {
        ++completed;
        const SqmReport& report = result.ValueOrDie();
        EXPECT_EQ(report.raw, baseline.raw)
            << "party " << party << " after " << after_rounds << " rounds";
        EXPECT_EQ(report.dropout.num_dropped, 1u);
        EXPECT_EQ(report.dropout.survivors.size(), 4u);
      } else {
        ++refused;
        // Input-phase crashes are not degradable: a lost input has no
        // quorum that can reconstruct it.
        EXPECT_EQ(result.status().code(), StatusCode::kUnavailable)
            << result.status().ToString();
        EXPECT_LE(after_rounds, uint64_t{4})
            << "party " << party << ": post-input crash must degrade, got "
            << result.status().ToString();
      }
    }
  }
  // Crashes strictly after a party's own dealing round degrade; at or
  // before it they refuse: 12 completions, 8 refusals.
  EXPECT_EQ(completed, 12u);
  EXPECT_EQ(refused, 8u);
}

}  // namespace
}  // namespace sqm
