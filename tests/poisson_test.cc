#include "sampling/poisson.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "math/stats.h"
#include "sampling/rng.h"

namespace sqm {
namespace {

TEST(PoissonTest, ZeroRateIsDegenerate) {
  PoissonSampler sampler(0.0);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.Sample(rng), 0);
}

TEST(PoissonTest, SamplesAreNonNegative) {
  Rng rng(2);
  for (double mu : {0.1, 1.0, 5.0, 20.0, 1000.0}) {
    PoissonSampler sampler(mu);
    for (int i = 0; i < 1000; ++i) EXPECT_GE(sampler.Sample(rng), 0);
  }
}

/// Parameterized moment check across both sampling regimes (Knuth inversion
/// below mu = 10, PTRS above).
class PoissonMomentsTest : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMomentsTest, MeanAndVarianceMatchMu) {
  const double mu = GetParam();
  PoissonSampler sampler(mu);
  Rng rng(42);
  constexpr size_t kDraws = 200000;
  const std::vector<int64_t> draws = sampler.SampleVector(rng, kDraws);
  // Mean and variance of Poisson(mu) are both mu. 5-sigma tolerances.
  const double tol_mean = 5.0 * std::sqrt(mu / kDraws);
  EXPECT_NEAR(Mean(draws), mu, std::max(tol_mean, 1e-3));
  // Var of the sample variance ~ (mu + 3mu^2... ) use generous 5% + abs.
  EXPECT_NEAR(Variance(draws), mu, std::max(0.05 * mu, 1e-2));
}

INSTANTIATE_TEST_SUITE_P(Regimes, PoissonMomentsTest,
                         ::testing::Values(0.25, 1.0, 3.0, 9.9, 10.1, 25.0,
                                           100.0, 1234.5));

TEST(PoissonTest, SmallMuPmfMatches) {
  // Chi-square-style check of the empirical pmf against e^{-mu} mu^k / k!.
  const double mu = 2.5;
  PoissonSampler sampler(mu);
  Rng rng(7);
  constexpr int kDraws = 200000;
  std::map<int64_t, int> counts;
  for (int i = 0; i < kDraws; ++i) ++counts[sampler.Sample(rng)];
  for (int64_t k = 0; k <= 8; ++k) {
    const double expected =
        std::exp(-mu + k * std::log(mu) - std::lgamma(k + 1.0));
    const double observed = static_cast<double>(counts[k]) / kDraws;
    EXPECT_NEAR(observed, expected, 0.005) << "k=" << k;
  }
}

TEST(PoissonTest, LargeMuSkewnessIsSmallAndPositive) {
  // Poisson skewness is 1/sqrt(mu).
  const double mu = 400.0;
  PoissonSampler sampler(mu);
  Rng rng(9);
  std::vector<double> draws(100000);
  for (auto& d : draws) d = static_cast<double>(sampler.Sample(rng));
  EXPECT_NEAR(Skewness(draws), 1.0 / std::sqrt(mu), 0.02);
}

TEST(PoissonTest, DeterministicGivenSeed) {
  PoissonSampler sampler(17.0);
  Rng a(5);
  Rng b(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sampler.Sample(a), sampler.Sample(b));
  }
}

}  // namespace
}  // namespace sqm
