#include "poly/chebyshev.h"

#include <gtest/gtest.h>

#include <cmath>

#include "poly/taylor.h"

namespace sqm {
namespace {

TEST(ChebyshevTest, ReproducesLowDegreePolynomialsExactly) {
  // Interpolating a polynomial of degree <= `degree` is exact.
  const auto quad = [](double u) { return 3.0 - 2.0 * u + 0.5 * u * u; };
  const std::vector<double> c =
      ChebyshevCoefficients(quad, 2, 1.5).ValueOrDie();
  ASSERT_EQ(c.size(), 3u);
  EXPECT_NEAR(c[0], 3.0, 1e-12);
  EXPECT_NEAR(c[1], -2.0, 1e-12);
  EXPECT_NEAR(c[2], 0.5, 1e-12);
}

TEST(ChebyshevTest, EvaluateMonomialBasisHorner) {
  EXPECT_DOUBLE_EQ(EvaluateMonomialBasis({1, 2, 3}, 2.0), 1 + 4 + 12);
  EXPECT_DOUBLE_EQ(EvaluateMonomialBasis({}, 5.0), 0.0);
}

TEST(ChebyshevTest, SigmoidErrorDecreasesWithDegree) {
  const auto sigmoid = [](double u) { return Sigmoid(u); };
  double prev = 1e9;
  for (size_t degree : {1u, 3u, 5u, 9u}) {
    const auto c = SigmoidChebyshevCoefficients(degree, 4.0).ValueOrDie();
    const double err = MaxApproximationError(sigmoid, c, 4.0);
    EXPECT_LT(err, prev);
    prev = err;
  }
  EXPECT_LT(prev, 1e-3);
}

TEST(ChebyshevTest, BeatsTaylorUniformlyAtSameDegree) {
  // The point of the module: at equal degree, the Chebyshev interpolant's
  // worst-case error over the interval is smaller than the Taylor
  // truncation's (which is only optimal at 0). Compare on a wide interval
  // where Taylor degrades badly.
  const auto sigmoid = [](double u) { return Sigmoid(u); };
  const double radius = 3.0;
  for (size_t degree : {3u, 5u, 7u}) {
    const auto cheb =
        SigmoidChebyshevCoefficients(degree, radius).ValueOrDie();
    const double cheb_err = MaxApproximationError(sigmoid, cheb, radius);
    const double taylor_err = SigmoidTaylorMaxError(degree, radius);
    EXPECT_LT(cheb_err, taylor_err) << "degree " << degree;
  }
}

TEST(ChebyshevTest, ScalesWithRadius) {
  // Same function, wider interval -> larger (but still controlled) error.
  const auto sigmoid = [](double u) { return Sigmoid(u); };
  const auto narrow = SigmoidChebyshevCoefficients(5, 1.0).ValueOrDie();
  const auto wide = SigmoidChebyshevCoefficients(5, 6.0).ValueOrDie();
  EXPECT_LT(MaxApproximationError(sigmoid, narrow, 1.0),
            MaxApproximationError(sigmoid, wide, 6.0));
}

TEST(ChebyshevTest, ValidatesArguments) {
  const auto f = [](double u) { return u; };
  EXPECT_FALSE(ChebyshevCoefficients(f, 3, 0.0).ok());
  EXPECT_FALSE(ChebyshevCoefficients(f, 3, -1.0).ok());
  EXPECT_FALSE(ChebyshevCoefficients(nullptr, 3, 1.0).ok());
  EXPECT_FALSE(ChebyshevCoefficients(f, 100, 1.0).ok());
}

TEST(ChebyshevTest, OddFunctionGetsNearZeroEvenCoefficients) {
  const auto odd = [](double u) { return std::tanh(u); };
  const auto c = ChebyshevCoefficients(odd, 7, 2.0).ValueOrDie();
  EXPECT_NEAR(c[0], 0.0, 1e-12);
  EXPECT_NEAR(c[2], 0.0, 1e-12);
  EXPECT_NEAR(c[4], 0.0, 1e-12);
}

}  // namespace
}  // namespace sqm
