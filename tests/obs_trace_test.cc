#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>

#include "core/json.h"
#include "obs/obs.h"

namespace sqm::obs {
namespace {

/// The tracer is process-global; every test starts from an empty buffer
/// with observability enabled and the default track restored.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(true);
    Tracer::Global().Clear();
  }
};

/// Events with the given name in the collected buffer.
std::vector<TraceEvent> EventsNamed(const std::string& name) {
  std::vector<TraceEvent> out;
  for (const TraceEvent& event : Tracer::Global().Collect()) {
    if (name == event.name) out.push_back(event);
  }
  return out;
}

TEST_F(TraceTest, SpanRecordsCompleteEvent) {
  {
    Span span("test.span", "test");
    span.AddArg("answer", 42);
  }
  const auto events = EventsNamed("test.span");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, TraceEvent::Type::kComplete);
  EXPECT_STREQ(events[0].category, "test");
  ASSERT_EQ(events[0].num_args, 1);
  EXPECT_STREQ(events[0].args[0].key, "answer");
  EXPECT_EQ(events[0].args[0].value, 42);
}

TEST_F(TraceTest, NestedSpansBothRecorded) {
  {
    Span outer("test.outer", "test");
    {
      Span inner("test.inner", "test");
    }
  }
  EXPECT_EQ(EventsNamed("test.outer").size(), 1u);
  EXPECT_EQ(EventsNamed("test.inner").size(), 1u);
  // The inner span closed first, so its end is <= the outer's end.
  const TraceEvent outer = EventsNamed("test.outer")[0];
  const TraceEvent inner = EventsNamed("test.inner")[0];
  EXPECT_GE(inner.ts_micros, outer.ts_micros);
  EXPECT_LE(inner.ts_micros + inner.dur_micros,
            outer.ts_micros + outer.dur_micros);
}

TEST_F(TraceTest, ExplicitTrackPinsSpanToPartyRow) {
  {
    Span span("test.party_span", "test", /*track=*/3);
  }
  const auto events = EventsNamed("test.party_span");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].track, 3);
}

TEST_F(TraceTest, TrackScopeSetsAndRestoresCurrentTrack) {
  const int32_t before = Tracer::CurrentTrack();
  {
    TrackScope track(7);
    EXPECT_EQ(Tracer::CurrentTrack(), 7);
    Span span("test.tracked", "test");
  }
  EXPECT_EQ(Tracer::CurrentTrack(), before);
  ASSERT_EQ(EventsNamed("test.tracked").size(), 1u);
  EXPECT_EQ(EventsNamed("test.tracked")[0].track, 7);
}

TEST_F(TraceTest, DisabledSpanEmitsNothing) {
  SetEnabled(false);
  {
    Span span("test.disabled", "test");
  }
  SetEnabled(true);
  EXPECT_TRUE(EventsNamed("test.disabled").empty());
}

TEST_F(TraceTest, InstantEventRecorded) {
  Tracer::Global().Instant("test.instant", "test");
  const auto events = EventsNamed("test.instant");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, TraceEvent::Type::kInstant);
}

TEST_F(TraceTest, CounterEventRecorded) {
  Tracer::Global().CounterValue("test.counter_event", 17);
  const auto events = EventsNamed("test.counter_event");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, TraceEvent::Type::kCounter);
  EXPECT_EQ(events[0].args[0].value, 17);
}

TEST_F(TraceTest, ArgsBeyondCapacityAreDropped) {
  TraceEvent event;
  for (int i = 0; i < TraceEvent::kMaxArgs + 3; ++i) {
    event.AddArg("k", i);
  }
  EXPECT_EQ(event.num_args, TraceEvent::kMaxArgs);
}

TEST_F(TraceTest, ChromeTraceJsonIsWellFormed) {
  Tracer::Global().SetTrackName(0, "party 0");
  {
    TrackScope track(0);
    Span span("test.json_span", "test");
    span.AddArg("n", 5);
  }
  Tracer::Global().Instant("test.json_instant", "test");

  const std::string json = Tracer::Global().ToChromeTraceJson();
  const JsonValue root = ParseJson(json).ValueOrDie();
  const JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::Kind::kArray);

  bool found_metadata = false;
  bool found_span = false;
  bool found_instant = false;
  for (const JsonValue& event : events->items) {
    const std::string name = event.Find("name")->string_value;
    const std::string ph = event.Find("ph")->string_value;
    if (ph == "M" && name == "thread_name") {
      found_metadata = true;
      EXPECT_EQ(event.Find("args")->Find("name")->string_value, "party 0");
    }
    if (name == "test.json_span") {
      found_span = true;
      EXPECT_EQ(ph, "X");
      EXPECT_EQ(event.Find("tid")->int_value, 0);
      ASSERT_NE(event.Find("dur"), nullptr);
      EXPECT_EQ(event.Find("args")->Find("n")->int_value, 5);
    }
    if (name == "test.json_instant") {
      found_instant = true;
      EXPECT_EQ(ph, "i");
      EXPECT_EQ(event.Find("s")->string_value, "t");
    }
  }
  EXPECT_TRUE(found_metadata);
  EXPECT_TRUE(found_span);
  EXPECT_TRUE(found_instant);
  EXPECT_EQ(root.Find("displayTimeUnit")->string_value, "ms");
}

TEST_F(TraceTest, CollectSeesEventsFromOtherThreads) {
  std::thread worker([] {
    TrackScope track(11);
    Span span("test.worker_span", "test");
  });
  worker.join();
  const auto events = EventsNamed("test.worker_span");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].track, 11);
}

TEST_F(TraceTest, ClearDropsBufferedEvents) {
  {
    Span span("test.cleared", "test");
  }
  ASSERT_EQ(EventsNamed("test.cleared").size(), 1u);
  Tracer::Global().Clear();
  EXPECT_EQ(Tracer::Global().num_events(), 0u);
}

TEST_F(TraceTest, FlowEventsExportAsChromeArrows) {
  Tracer::Global().FlowStart("net.link", "net", 4242);
  Tracer::Global().FlowFinish("net.link", "net", 4242);
  const std::string json = Tracer::Global().ToChromeTraceJson();
  const JsonValue root = ParseJson(json).ValueOrDie();
  bool found_start = false;
  bool found_finish = false;
  for (const JsonValue& event : root.Find("traceEvents")->items) {
    const JsonValue* ph = event.Find("ph");
    if (ph == nullptr) continue;
    if (ph->string_value == "s") {
      found_start = true;
      EXPECT_EQ(event.Find("id")->uint_value, 4242u);
      EXPECT_EQ(event.Find("name")->string_value, "net.link");
    }
    if (ph->string_value == "f") {
      found_finish = true;
      EXPECT_EQ(event.Find("id")->uint_value, 4242u);
      // Binding point "enclosing slice": the arrow attaches to the span
      // that was live when the finish was recorded.
      ASSERT_NE(event.Find("bp"), nullptr);
      EXPECT_EQ(event.Find("bp")->string_value, "e");
    }
  }
  EXPECT_TRUE(found_start);
  EXPECT_TRUE(found_finish);
}

TEST_F(TraceTest, SpanIdNamespaceKeepsIncarnationsCollisionFree) {
  // The sqm-party slab layout: ((party+1) << 48) | (incarnation << 40) | 1.
  // Ids drawn after a rebase live in the new slab, so a respawned
  // incarnation can never mint an id its pre-crash self already used.
  Tracer::SetSpanIdNamespace((uint64_t{3} << 48) | (uint64_t{0} << 40) | 1);
  std::vector<uint64_t> first;
  for (int i = 0; i < 100; ++i) first.push_back(Tracer::NextSpanId());
  Tracer::SetSpanIdNamespace((uint64_t{3} << 48) | (uint64_t{1} << 40) | 1);
  for (int i = 0; i < 100; ++i) {
    const uint64_t id = Tracer::NextSpanId();
    EXPECT_EQ(id >> 40, (uint64_t{3} << 8) | 1);
    for (const uint64_t old : first) EXPECT_NE(id, old);
  }
  // Restore the default namespace for the other suites.
  Tracer::SetSpanIdNamespace(1);
}

TEST_F(TraceTest, MergeAppliesClockOffsetAndSharesPidAcrossIncarnations) {
  // Two incarnations of "party 2", each a tiny single-span document.
  {
    Span span("test.pre_crash", "test");
  }
  const std::string pre = Tracer::Global().ToChromeTraceJson();
  Tracer::Global().Clear();
  {
    Span span("test.post_crash", "test");
  }
  const std::string post = Tracer::Global().ToChromeTraceJson();

  std::vector<TraceDoc> docs(2);
  docs[0].name = "party 2";
  docs[0].json = pre;
  docs[0].clock_offset_micros = 1000000;
  docs[0].pid = 3;
  docs[1].name = "party 2";
  docs[1].json = post;
  docs[1].clock_offset_micros = -250;
  docs[1].pid = 3;
  const Result<std::string> merged = MergeChromeTraces(docs);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  const JsonValue root = ParseJson(merged.ValueOrDie()).ValueOrDie();

  int process_names_for_pid3 = 0;
  bool found_pre = false;
  bool found_post = false;
  for (const JsonValue& event : root.Find("traceEvents")->items) {
    const JsonValue* name = event.Find("name");
    if (name == nullptr) continue;
    if (name->string_value == "process_name" &&
        event.Find("pid")->uint_value == 3u) {
      ++process_names_for_pid3;
    }
    if (name->string_value == "test.pre_crash") {
      found_pre = true;
      EXPECT_EQ(event.Find("pid")->uint_value, 3u);
      EXPECT_GE(event.Find("ts")->uint_value, 1000000u);
    }
    if (name->string_value == "test.post_crash") {
      found_post = true;
      EXPECT_EQ(event.Find("pid")->uint_value, 3u);
    }
  }
  // One process label per pid, even with two documents merged onto it.
  EXPECT_EQ(process_names_for_pid3, 1);
  EXPECT_TRUE(found_pre);
  EXPECT_TRUE(found_post);
}

TEST_F(TraceTest, MergePrunesFlowFinishesWhoseStartDiedWithTheSender) {
  // Sender document: one linked send (flow 71) — the send for flow 72 was
  // lost with a crash, so no "s" exists for it anywhere.
  {
    Span span("test.send", "test");
    Tracer::Global().FlowStart("net.link", "net", 71);
  }
  const std::string sender = Tracer::Global().ToChromeTraceJson();
  Tracer::Global().Clear();
  // Receiver document: finishes for both flows.
  {
    Span span("test.recv", "test");
    Tracer::Global().FlowFinish("net.link", "net", 71);
    Tracer::Global().FlowFinish("net.link", "net", 72);
  }
  const std::string receiver = Tracer::Global().ToChromeTraceJson();

  const std::vector<std::pair<std::string, std::string>> inputs = {
      {"party 0", sender}, {"party 1", receiver}};
  const Result<std::string> merged = MergeChromeTraces(inputs);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  const JsonValue root = ParseJson(merged.ValueOrDie()).ValueOrDie();

  std::set<uint64_t> starts;
  std::set<uint64_t> finishes;
  for (const JsonValue& event : root.Find("traceEvents")->items) {
    const JsonValue* ph = event.Find("ph");
    if (ph == nullptr) continue;
    if (ph->string_value == "s") starts.insert(event.Find("id")->uint_value);
    if (ph->string_value == "f") {
      finishes.insert(event.Find("id")->uint_value);
    }
  }
  // The matched arrow survives whole; the orphaned finish is pruned so the
  // merged artifact never carries an unrenderable half-link.
  EXPECT_EQ(starts, (std::set<uint64_t>{71}));
  EXPECT_EQ(finishes, (std::set<uint64_t>{71}));
}

TEST_F(TraceTest, WriteChromeTraceFileRoundTrips) {
  {
    Span span("test.file_span", "test");
  }
  const std::string path = ::testing::TempDir() + "/obs_trace_test.json";
  ASSERT_TRUE(Tracer::Global().WriteChromeTraceFile(path));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const JsonValue root = ParseJson(buffer.str()).ValueOrDie();
  ASSERT_NE(root.Find("traceEvents"), nullptr);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sqm::obs
