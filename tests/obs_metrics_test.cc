#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/json.h"
#include "obs/obs.h"

namespace sqm::obs {
namespace {

/// Global-state hygiene: the registry is shared by every test in this
/// binary, so each test starts from zeroed metrics with obs enabled.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(true);
    Registry::Global().ResetAll();
  }
};

TEST_F(MetricsTest, CounterAddsAndResets) {
  Counter& counter = Registry::Global().GetCounter("test.counter");
  EXPECT_EQ(counter.Get(), 0u);
  counter.Add(3);
  counter.Increment();
  EXPECT_EQ(counter.Get(), 4u);
  counter.Reset();
  EXPECT_EQ(counter.Get(), 0u);
}

TEST_F(MetricsTest, GetCounterReturnsStableReference) {
  Counter& a = Registry::Global().GetCounter("test.stable");
  Counter& b = Registry::Global().GetCounter("test.stable");
  EXPECT_EQ(&a, &b);
  a.Add(7);
  EXPECT_EQ(b.Get(), 7u);
}

TEST_F(MetricsTest, GaugeStoresDoubles) {
  Gauge& gauge = Registry::Global().GetGauge("test.gauge");
  gauge.Set(2.5);
  EXPECT_DOUBLE_EQ(gauge.Get(), 2.5);
  gauge.Set(-1.0);
  EXPECT_DOUBLE_EQ(gauge.Get(), -1.0);
}

TEST_F(MetricsTest, HistogramBucketsAreLogarithmic) {
  // Bucket upper bounds are 2^i - 1: value v lands in the bucket indexed
  // by the bit width of v.
  EXPECT_EQ(Histogram::BucketFor(0), 0);
  EXPECT_EQ(Histogram::BucketFor(1), 1);
  EXPECT_EQ(Histogram::BucketFor(2), 2);
  EXPECT_EQ(Histogram::BucketFor(3), 2);
  EXPECT_EQ(Histogram::BucketFor(4), 3);
  EXPECT_EQ(Histogram::BucketFor(1023), 10);
  EXPECT_EQ(Histogram::BucketFor(1024), 11);
  EXPECT_EQ(Histogram::BucketFor(~0ull), Histogram::kNumBuckets - 1);
}

TEST_F(MetricsTest, HistogramTracksCountSumMax) {
  Histogram& h = Registry::Global().GetHistogram("test.hist");
  h.Record(1);
  h.Record(10);
  h.Record(100);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_EQ(h.Sum(), 111u);
}

TEST_F(MetricsTest, SnapshotContainsAllMetrics) {
  Registry::Global().GetCounter("snap.counter").Add(5);
  Registry::Global().GetGauge("snap.gauge").Set(1.5);
  Registry::Global().GetHistogram("snap.hist").Record(42);

  const MetricsSnapshot snapshot = Registry::Global().Snapshot();
  EXPECT_EQ(snapshot.CounterValue("snap.counter"), 5u);
  EXPECT_EQ(snapshot.CounterValue("missing.counter"), 0u);

  bool found_gauge = false;
  for (const auto& g : snapshot.gauges) {
    if (g.name == "snap.gauge") {
      found_gauge = true;
      EXPECT_DOUBLE_EQ(g.value, 1.5);
    }
  }
  EXPECT_TRUE(found_gauge);

  bool found_hist = false;
  for (const auto& h : snapshot.histograms) {
    if (h.name == "snap.hist") {
      found_hist = true;
      EXPECT_EQ(h.count, 1u);
      EXPECT_EQ(h.sum, 42u);
    }
  }
  EXPECT_TRUE(found_hist);
}

TEST_F(MetricsTest, SnapshotJsonParses) {
  Registry::Global().GetCounter("json.counter").Add(9);
  Registry::Global().GetHistogram("json.hist").Record(7);
  const std::string json = Registry::Global().SnapshotJson();

  const JsonValue root = ParseJson(json).ValueOrDie();
  const JsonValue* counters = root.Find("counters");
  ASSERT_NE(counters, nullptr);
  bool found = false;
  for (const JsonValue& c : counters->items) {
    if (c.Find("name")->string_value == "json.counter") {
      found = true;
      EXPECT_EQ(c.Find("value")->int_value, 9);
    }
  }
  EXPECT_TRUE(found);
  ASSERT_NE(root.Find("histograms"), nullptr);
}

TEST_F(MetricsTest, ResetAllZeroesWithoutInvalidatingReferences) {
  Counter& counter = Registry::Global().GetCounter("reset.counter");
  counter.Add(10);
  Registry::Global().ResetAll();
  EXPECT_EQ(counter.Get(), 0u);  // Same object, zeroed, still usable.
  counter.Add(1);
  EXPECT_EQ(counter.Get(), 1u);
}

TEST_F(MetricsTest, MacrosRespectRuntimeKillSwitch) {
  SQM_OBS_COUNTER_ADD("macro.counter", 2);
  SetEnabled(false);
  SQM_OBS_COUNTER_ADD("macro.counter", 100);
  SetEnabled(true);
  SQM_OBS_COUNTER_INC("macro.counter");
  EXPECT_EQ(Registry::Global().GetCounter("macro.counter").Get(), 3u);
}

TEST_F(MetricsTest, ScopedTimerRecordsOneSample) {
  Histogram& h = Registry::Global().GetHistogram("timer.hist");
  {
    ScopedTimer timer(h);
  }
  EXPECT_EQ(h.Count(), 1u);
}

TEST_F(MetricsTest, ConcurrentCountersDontLoseIncrements) {
  Counter& counter = Registry::Global().GetCounter("race.counter");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.Get(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace sqm::obs
