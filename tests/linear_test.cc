#include "vfl/linear.h"

#include <gtest/gtest.h>

#include <cmath>

#include "math/linalg.h"

namespace sqm {
namespace {

RegressionSplit EasyTask(size_t rows = 1500, size_t cols = 8) {
  SyntheticRegressionSpec spec;
  spec.rows = rows;
  spec.cols = cols;
  spec.noise_std = 0.02;
  spec.seed = 4;
  return SplitRegression(GenerateRegressionDataset(spec), 0.7, 1)
      .ValueOrDie();
}

LinearOptions FastOptions() {
  LinearOptions options;
  options.epsilon = 4.0;
  options.sample_rate = 0.05;
  options.rounds = 80;
  options.learning_rate = 2.0;
  options.gamma = 2048.0;
  return options;
}

TEST(LinearGradientPolynomialTest, ExactlyMatchesSquaredLossGradient) {
  const std::vector<double> w{0.4, -0.1, 0.3};
  const PolynomialVector f = BuildLinearGradientPolynomial(w);
  EXPECT_EQ(f.output_dim(), 3u);
  EXPECT_EQ(f.Degree(), 2u);
  const std::vector<double> x{0.2, -0.5, 0.1};
  const double y = 0.37;
  std::vector<double> record = x;
  record.push_back(y);
  const std::vector<double> grad = f.Evaluate(record);
  const double err = Dot(w, x) - y;
  for (size_t t = 0; t < 3; ++t) {
    // No approximation anywhere: equality to machine precision.
    EXPECT_NEAR(grad[t], err * x[t], 1e-15);
  }
}

TEST(LinearTest, SyntheticDataNormalized) {
  SyntheticRegressionSpec spec;
  spec.rows = 300;
  spec.cols = 10;
  const RegressionDataset data = GenerateRegressionDataset(spec);
  EXPECT_EQ(data.num_records(), 300u);
  EXPECT_EQ(data.targets.size(), 300u);
  double max_norm = 0.0;
  for (size_t i = 0; i < data.num_records(); ++i) {
    max_norm = std::max(max_norm, Norm2(data.features.Row(i)));
  }
  EXPECT_LE(max_norm, 1.0 + 1e-9);
  for (double y : data.targets) EXPECT_LE(std::fabs(y), 1.0 + 1e-9);
}

TEST(LinearTest, SplitPreservesPairs) {
  const RegressionDataset data = GenerateRegressionDataset(
      {.rows = 50, .cols = 3, .noise_std = 0.0, .seed = 9});
  const RegressionSplit split =
      SplitRegression(data, 0.6, 2).ValueOrDie();
  EXPECT_EQ(split.train.num_records() + split.test.num_records(), 50u);
  EXPECT_EQ(split.train.targets.size(), split.train.num_records());
}

TEST(LinearTest, NonPrivateFitsSignal) {
  const RegressionSplit split = EasyTask();
  const LinearResult result =
      TrainNonPrivateLinear(split.train, split.test, FastOptions())
          .ValueOrDie();
  // Targets have unit-ish scale; a good fit should leave small residuals.
  EXPECT_LT(result.test_rmse, 0.25);
}

TEST(LinearTest, SqmNearCentralAndBeatsLocal) {
  const RegressionSplit split = EasyTask(1200, 6);
  LinearOptions options = FastOptions();
  options.epsilon = 2.0;
  const LinearResult sqm_result =
      TrainSqmLinear(split.train, split.test, options).ValueOrDie();
  const LinearResult central =
      TrainDpSgdLinear(split.train, split.test, options).ValueOrDie();
  const LinearResult local =
      TrainLocalDpLinear(split.train, split.test, options).ValueOrDie();
  EXPECT_GT(sqm_result.mu, 0.0);
  EXPECT_LT(sqm_result.test_rmse, central.test_rmse + 0.1);
  EXPECT_LE(sqm_result.test_rmse, local.test_rmse + 0.02);
}

TEST(LinearTest, UtilityImprovesWithEpsilon) {
  const RegressionSplit split = EasyTask(1200, 6);
  LinearOptions options = FastOptions();
  options.epsilon = 0.25;
  const double low =
      TrainSqmLinear(split.train, split.test, options).ValueOrDie()
          .test_rmse;
  options.epsilon = 8.0;
  const double high =
      TrainSqmLinear(split.train, split.test, options).ValueOrDie()
          .test_rmse;
  EXPECT_LT(high, low + 0.02);
}

TEST(LinearTest, BgwBackendMatchesPlaintext) {
  const RegressionSplit split = EasyTask(80, 4);
  LinearOptions options = FastOptions();
  options.rounds = 3;
  options.sample_rate = 0.1;
  options.gamma = 256.0;
  options.backend = MpcBackend::kPlaintext;
  const LinearResult plain =
      TrainSqmLinear(split.train, split.test, options).ValueOrDie();
  options.backend = MpcBackend::kBgw;
  const LinearResult mpc =
      TrainSqmLinear(split.train, split.test, options).ValueOrDie();
  ASSERT_EQ(plain.weights.size(), mpc.weights.size());
  for (size_t j = 0; j < plain.weights.size(); ++j) {
    EXPECT_NEAR(plain.weights[j], mpc.weights[j], 1e-12);
  }
}

TEST(LinearTest, RidgePenaltyShrinksWeights) {
  const RegressionSplit split = EasyTask(800, 6);
  LinearOptions options = FastOptions();
  options.l2_penalty = 0.0;
  const LinearResult free =
      TrainNonPrivateLinear(split.train, split.test, options).ValueOrDie();
  options.l2_penalty = 0.5;
  const LinearResult ridged =
      TrainNonPrivateLinear(split.train, split.test, options).ValueOrDie();
  EXPECT_LT(Norm2(ridged.weights), Norm2(free.weights));
}

TEST(LinearTest, ValidatesInputs) {
  const RegressionSplit split = EasyTask(100, 3);
  LinearOptions options = FastOptions();
  options.rounds = 0;
  EXPECT_FALSE(TrainSqmLinear(split.train, split.test, options).ok());
  options = FastOptions();
  options.l2_penalty = -1.0;
  EXPECT_FALSE(TrainDpSgdLinear(split.train, split.test, options).ok());
  RegressionDataset broken = split.train;
  broken.targets.pop_back();
  EXPECT_FALSE(TrainNonPrivateLinear(broken, split.test, options).ok());
}

}  // namespace
}  // namespace sqm
