// Distributional conformance: chi-square goodness-of-fit for the Poisson
// sampler's two code paths (Knuth inversion below the PTRS threshold, PTRS
// rejection above it) and for Skellam tails, plus identities for the
// regularized-gamma machinery the p-values rest on. Seeds are fixed, so
// the chi-square statistics are deterministic — thresholds are loose
// enough (p > 1e-6) that a correct sampler never flakes, yet an off-by-one
// in either path moves the statistic by orders of magnitude.

#include "testing/stat_check.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "math/stats.h"
#include "sampling/poisson.h"
#include "sampling/rng.h"
#include "sampling/skellam_sampler.h"

namespace sqm {
namespace {

using testing::ChiSquareGoodnessOfFit;
using testing::ChiSquareResult;
using testing::ChiSquareTwoSample;
using testing::ChiSquareUniform;

double PoissonLogPmf(double mu, int64_t k) {
  return -mu + static_cast<double>(k) * std::log(mu) -
         std::lgamma(static_cast<double>(k) + 1.0);
}

/// Chi-square GOF of `samples` against Poisson(mu), binning the window
/// [lo, hi] with pooled tails so every expected count is comfortably > 5.
ChiSquareResult PoissonGof(double mu, const std::vector<int64_t>& samples,
                           int64_t lo, int64_t hi) {
  const size_t n = samples.size();
  const size_t bins = static_cast<size_t>(hi - lo) + 3;  // window + 2 tails.
  std::vector<uint64_t> observed(bins, 0);
  for (int64_t s : samples) {
    if (s < lo) {
      ++observed[0];
    } else if (s > hi) {
      ++observed[bins - 1];
    } else {
      ++observed[static_cast<size_t>(s - lo) + 1];
    }
  }
  std::vector<double> expected(bins, 0.0);
  double window_mass = 0.0;
  for (int64_t k = lo; k <= hi; ++k) {
    const double p = std::exp(PoissonLogPmf(mu, k));
    expected[static_cast<size_t>(k - lo) + 1] = p * static_cast<double>(n);
    window_mass += p;
  }
  // Tail mass, split by a wide numeric sum (Poisson mass beyond mu +- 12
  // sigma is far below double precision, so the truncation is exact for
  // test purposes).
  double lower_mass = 0.0;
  for (int64_t k = 0; k < lo; ++k) lower_mass += std::exp(PoissonLogPmf(mu, k));
  expected[0] = lower_mass * static_cast<double>(n);
  expected[bins - 1] =
      (1.0 - window_mass - lower_mass) * static_cast<double>(n);
  // When lo == 0 the lower tail is empty; drop zero-mass bins.
  std::vector<uint64_t> used_observed;
  std::vector<double> used_expected;
  for (size_t i = 0; i < bins; ++i) {
    if (expected[i] <= 0.0) continue;
    used_observed.push_back(observed[i]);
    used_expected.push_back(expected[i]);
  }
  const auto result = ChiSquareGoodnessOfFit(used_observed, used_expected);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? result.ValueOrDie() : ChiSquareResult{};
}

TEST(StatConformanceTest, PoissonPtrsPathMatchesThePmf) {
  // mu = 25 is well above kPtrsThreshold = 10: every draw exercises the
  // PTRS transformed-rejection path.
  constexpr double kMu = 25.0;
  static_assert(kMu >= PoissonSampler::kPtrsThreshold);
  PoissonSampler sampler(kMu);
  Rng rng(20240801);
  const std::vector<int64_t> samples = sampler.SampleVector(rng, 200000);
  // Window mu +- 4 sigma: [5, 45].
  const ChiSquareResult gof = PoissonGof(kMu, samples, 5, 45);
  EXPECT_GT(gof.p_value, 1e-6)
      << "PTRS chi-square " << gof.statistic << " on " << gof.dof << " dof";
}

TEST(StatConformanceTest, PoissonKnuthPathMatchesThePmf) {
  constexpr double kMu = 3.5;
  static_assert(kMu < PoissonSampler::kPtrsThreshold);
  PoissonSampler sampler(kMu);
  Rng rng(911);
  const std::vector<int64_t> samples = sampler.SampleVector(rng, 200000);
  const ChiSquareResult gof = PoissonGof(kMu, samples, 0, 11);
  EXPECT_GT(gof.p_value, 1e-6)
      << "Knuth chi-square " << gof.statistic << " on " << gof.dof << " dof";
}

TEST(StatConformanceTest, TwoPoissonPathsAgreeAcrossTheThreshold) {
  // mu just below and just above the PTRS threshold should produce nearly
  // identical distributions; the weighted two-sample statistic tolerates
  // the genuine mu difference at this resolution while still catching a
  // path-specific bias.
  Rng rng_a(5), rng_b(6);
  const std::vector<int64_t> below =
      PoissonSampler(9.99).SampleVector(rng_a, 150000);
  const std::vector<int64_t> above =
      PoissonSampler(10.01).SampleVector(rng_b, 150000);
  std::vector<uint64_t> bins_a(25, 0), bins_b(25, 0);
  for (int64_t s : below) ++bins_a[static_cast<size_t>(std::min(s, int64_t{24}))];
  for (int64_t s : above) ++bins_b[static_cast<size_t>(std::min(s, int64_t{24}))];
  const auto result = ChiSquareTwoSample(bins_a, bins_b);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result.ValueOrDie().p_value, 1e-6);
}

TEST(StatConformanceTest, SkellamTailsMatchTheConvolutionPmf) {
  // Sk(mu) here is the difference of two independent Poisson(mu) variates.
  // Sanity-check the parameterisation via the variance (Var = 2*mu), then
  // run a full GOF against the numeric convolution pmf with pooled tails —
  // the tails are where a biased PTRS acceptance region would show up.
  constexpr double kMu = 8.0;
  SkellamSampler sampler(kMu);
  Rng rng(777);
  const std::vector<int64_t> samples = sampler.SampleVector(rng, 200000);
  const double variance = Variance(samples);
  EXPECT_NEAR(variance, 2.0 * kMu, 0.25)
      << "Skellam variance should be 2*mu";

  // pmf of Z = X - Y with X, Y ~ Poisson(mu): sum_k p(k) p(k - z).
  auto skellam_pmf = [&](int64_t z) {
    double mass = 0.0;
    for (int64_t k = std::max<int64_t>(0, z); k <= z + 200; ++k) {
      mass += std::exp(PoissonLogPmf(kMu, k) + PoissonLogPmf(kMu, k - z));
    }
    return mass;
  };
  // Window +-4 sigma (sigma = 4): [-16, 16], pooled tails.
  const int64_t lo = -16, hi = 16;
  const size_t bins = static_cast<size_t>(hi - lo) + 3;
  std::vector<uint64_t> observed(bins, 0);
  for (int64_t s : samples) {
    if (s < lo) {
      ++observed[0];
    } else if (s > hi) {
      ++observed[bins - 1];
    } else {
      ++observed[static_cast<size_t>(s - lo) + 1];
    }
  }
  std::vector<double> expected(bins, 0.0);
  double window_mass = 0.0;
  for (int64_t z = lo; z <= hi; ++z) {
    const double p = skellam_pmf(z);
    expected[static_cast<size_t>(z - lo) + 1] =
        p * static_cast<double>(samples.size());
    window_mass += p;
  }
  // The distribution is symmetric: split the remaining tail mass evenly.
  const double tail = (1.0 - window_mass) / 2.0;
  expected[0] = tail * static_cast<double>(samples.size());
  expected[bins - 1] = tail * static_cast<double>(samples.size());
  const auto gof = ChiSquareGoodnessOfFit(observed, expected);
  ASSERT_TRUE(gof.ok()) << gof.status().ToString();
  EXPECT_GT(gof.ValueOrDie().p_value, 1e-6)
      << "Skellam chi-square " << gof.ValueOrDie().statistic;
}

// ---------------------------------------------------------------------------
// The gamma-function machinery under the p-values.

TEST(StatConformanceTest, RegularizedGammaQKnownIdentities) {
  // Q(1, x) = e^-x.
  for (double x : {0.1, 0.5, 1.0, 2.5, 10.0}) {
    EXPECT_NEAR(RegularizedGammaQ(1.0, x), std::exp(-x), 1e-12);
  }
  // Q(1/2, x) = erfc(sqrt(x)).
  for (double x : {0.01, 0.25, 1.0, 4.0, 9.0}) {
    EXPECT_NEAR(RegularizedGammaQ(0.5, x), std::erfc(std::sqrt(x)), 1e-10);
  }
  // Q(a, 0) = 1, and Q decreases in x.
  EXPECT_DOUBLE_EQ(RegularizedGammaQ(3.0, 0.0), 1.0);
  EXPECT_LT(RegularizedGammaQ(3.0, 5.0), RegularizedGammaQ(3.0, 2.0));
}

TEST(StatConformanceTest, ChiSquarePValueMatchesTextbookQuantiles) {
  // 95th percentile of chi-square(1) is 3.841; of chi-square(10), 18.307.
  EXPECT_NEAR(ChiSquarePValue(3.841, 1.0), 0.05, 5e-4);
  EXPECT_NEAR(ChiSquarePValue(18.307, 10.0), 0.05, 5e-4);
  EXPECT_NEAR(ChiSquarePValue(0.0, 4.0), 1.0, 1e-12);
}

// ---------------------------------------------------------------------------
// The chi-square helpers themselves.

TEST(StatConformanceTest, UniformTestAcceptsUniformRejectsSkewed) {
  Rng rng(31337);
  std::vector<uint64_t> uniform(16, 0);
  for (size_t i = 0; i < 80000; ++i) ++uniform[rng.NextBounded(16)];
  const auto ok_result = ChiSquareUniform(uniform);
  ASSERT_TRUE(ok_result.ok());
  EXPECT_GT(ok_result.ValueOrDie().p_value, 1e-6);

  std::vector<uint64_t> skewed(16, 4000);
  skewed[3] = 12000;  // One bin triple-weighted.
  const auto bad_result = ChiSquareUniform(skewed);
  ASSERT_TRUE(bad_result.ok());
  EXPECT_LT(bad_result.ValueOrDie().p_value, 1e-9);
}

TEST(StatConformanceTest, TwoSampleTestSeparatesDistributions) {
  Rng rng(99);
  std::vector<uint64_t> a(12, 0), b(12, 0), c(12, 0);
  for (size_t i = 0; i < 60000; ++i) ++a[rng.NextBounded(12)];
  for (size_t i = 0; i < 60000; ++i) ++b[rng.NextBounded(12)];
  for (size_t i = 0; i < 60000; ++i) {
    // Triangular-ish: sum of two dice halves.
    ++c[(rng.NextBounded(12) + rng.NextBounded(12)) / 2];
  }
  const auto same = ChiSquareTwoSample(a, b);
  ASSERT_TRUE(same.ok());
  EXPECT_GT(same.ValueOrDie().p_value, 1e-6);
  const auto different = ChiSquareTwoSample(a, c);
  ASSERT_TRUE(different.ok());
  EXPECT_LT(different.ValueOrDie().p_value, 1e-9);
}

TEST(StatConformanceTest, GoodnessOfFitRejectsBadInputs) {
  EXPECT_FALSE(ChiSquareGoodnessOfFit({1, 2}, {3.0}).ok());
  EXPECT_FALSE(ChiSquareGoodnessOfFit({1}, {1.0}).ok());
  EXPECT_FALSE(ChiSquareGoodnessOfFit({1, 2, 3}, {5.0, 0.0, 5.0}).ok());
}

TEST(StatConformanceTest, BinTopBitsUsesTheHighBitsOfTheField) {
  // 16 bins over a 61-bit field: bin index is the value's top nibble,
  // exactly the v >> 57 binning the privacy tests use.
  const std::vector<uint64_t> values = {
      0,                          // bin 0
      uint64_t{1} << 57,          // bin 1
      (uint64_t{1} << 61) - 2,    // top bin (modulus - 1)
      uint64_t{15} << 57,         // top bin
  };
  const std::vector<uint64_t> counts = testing::BinTopBits(values, 16);
  ASSERT_EQ(counts.size(), 16u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[15], 2u);
}

}  // namespace
}  // namespace sqm
