#include "sampling/gaussian_sampler.h"

#include <gtest/gtest.h>

#include <cmath>

#include "math/stats.h"
#include "sampling/rng.h"

namespace sqm {
namespace {

TEST(GaussianSamplerTest, ZeroSigmaIsDegenerate) {
  GaussianSampler sampler(0.0);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(sampler.Sample(rng), 0.0);
}

TEST(GaussianSamplerTest, MomentsMatch) {
  for (double sigma : {0.5, 1.0, 10.0}) {
    GaussianSampler sampler(sigma);
    Rng rng(3);
    const std::vector<double> draws = sampler.SampleVector(rng, 200000);
    EXPECT_NEAR(Mean(draws), 0.0, 5.0 * sigma / std::sqrt(200000.0));
    EXPECT_NEAR(Variance(draws), sigma * sigma, 0.03 * sigma * sigma);
    EXPECT_NEAR(Skewness(draws), 0.0, 0.03);
    EXPECT_NEAR(ExcessKurtosis(draws), 0.0, 0.06);
  }
}

TEST(GaussianSamplerTest, TailMassMatchesNormal) {
  GaussianSampler sampler(1.0);
  Rng rng(5);
  constexpr int kDraws = 200000;
  int beyond_one = 0;
  int beyond_two = 0;
  for (int i = 0; i < kDraws; ++i) {
    const double x = std::fabs(sampler.Sample(rng));
    if (x > 1.0) ++beyond_one;
    if (x > 2.0) ++beyond_two;
  }
  EXPECT_NEAR(static_cast<double>(beyond_one) / kDraws, 0.3173, 0.01);
  EXPECT_NEAR(static_cast<double>(beyond_two) / kDraws, 0.0455, 0.005);
}

TEST(GaussianSamplerTest, SpareValueKeepsDistribution) {
  // Consume an odd number of samples to exercise the cached-spare path.
  GaussianSampler sampler(1.0);
  Rng rng(7);
  std::vector<double> draws;
  for (int i = 0; i < 100001; ++i) draws.push_back(sampler.Sample(rng));
  EXPECT_NEAR(Variance(draws), 1.0, 0.05);
}

}  // namespace
}  // namespace sqm
