#include "math/eigen.h"

#include <gtest/gtest.h>

#include <cmath>

#include "math/linalg.h"
#include "sampling/gaussian_sampler.h"
#include "sampling/rng.h"

namespace sqm {
namespace {

TEST(JacobiTest, DiagonalMatrix) {
  Matrix a{{3, 0, 0}, {0, 1, 0}, {0, 0, 2}};
  const EigenDecomposition eig = JacobiEigenSymmetric(a).ValueOrDie();
  ASSERT_EQ(eig.values.size(), 3u);
  EXPECT_NEAR(eig.values[0], 3.0, 1e-10);
  EXPECT_NEAR(eig.values[1], 2.0, 1e-10);
  EXPECT_NEAR(eig.values[2], 1.0, 1e-10);
}

TEST(JacobiTest, KnownTwoByTwo) {
  // Eigenvalues of [[2,1],[1,2]] are 3 and 1 with eigenvectors
  // (1,1)/sqrt(2), (1,-1)/sqrt(2).
  Matrix a{{2, 1}, {1, 2}};
  const EigenDecomposition eig = JacobiEigenSymmetric(a).ValueOrDie();
  EXPECT_NEAR(eig.values[0], 3.0, 1e-10);
  EXPECT_NEAR(eig.values[1], 1.0, 1e-10);
  EXPECT_NEAR(std::fabs(eig.vectors(0, 0)), 1.0 / std::sqrt(2.0), 1e-10);
  EXPECT_NEAR(std::fabs(eig.vectors(1, 0)), 1.0 / std::sqrt(2.0), 1e-10);
}

TEST(JacobiTest, ReconstructsMatrix) {
  Matrix a{{4, 1, -2}, {1, 2, 0}, {-2, 0, 3}};
  const EigenDecomposition eig = JacobiEigenSymmetric(a).ValueOrDie();
  // A = V diag(lambda) V^T.
  Matrix lambda(3, 3);
  for (size_t i = 0; i < 3; ++i) lambda(i, i) = eig.values[i];
  const Matrix rebuilt =
      MatMul(MatMul(eig.vectors, lambda), eig.vectors.Transpose());
  for (size_t i = 0; i < 3; ++i)
    for (size_t j = 0; j < 3; ++j)
      EXPECT_NEAR(rebuilt(i, j), a(i, j), 1e-9);
}

TEST(JacobiTest, TraceAndEigenvalueSumAgree) {
  Matrix a{{5, 2, 1}, {2, -3, 0.5}, {1, 0.5, 2}};
  const EigenDecomposition eig = JacobiEigenSymmetric(a).ValueOrDie();
  double sum = 0.0;
  for (double v : eig.values) sum += v;
  EXPECT_NEAR(sum, 5.0 - 3.0 + 2.0, 1e-9);
}

TEST(JacobiTest, RejectsNonSquare) {
  Matrix a(2, 3);
  EXPECT_EQ(JacobiEigenSymmetric(a).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(JacobiTest, RejectsAsymmetric) {
  Matrix a{{1, 2}, {3, 4}};
  EXPECT_EQ(JacobiEigenSymmetric(a).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(TopKTest, MatchesJacobiOnRandomSymmetric) {
  Rng rng(31);
  GaussianSampler gaussian(1.0);
  const size_t n = 12;
  Matrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      const double v = gaussian.Sample(rng);
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  const EigenDecomposition full = JacobiEigenSymmetric(a).ValueOrDie();
  const Matrix topk = TopKEigenvectors(a, 3).ValueOrDie();
  // The captured "energy" x -> v^T A v of the iterative top-3 subspace must
  // match the exact top-3 eigenvalue sum.
  const Matrix projected = MatMul(MatMul(topk.Transpose(), a), topk);
  double captured = 0.0;
  for (size_t i = 0; i < 3; ++i) captured += projected(i, i);
  const double exact =
      full.values[0] + full.values[1] + full.values[2];
  EXPECT_NEAR(captured, exact, 1e-6 * std::max(1.0, std::fabs(exact)));
}

TEST(TopKTest, HandlesIndefiniteMatrix) {
  // Negative eigenvalue of larger magnitude than the positive ones: plain
  // power iteration would lock onto it; the shifted iteration must return
  // the *algebraically* largest directions.
  Matrix a{{-10, 0, 0}, {0, 3, 0}, {0, 0, 1}};
  const Matrix top1 = TopKEigenvectors(a, 1).ValueOrDie();
  EXPECT_NEAR(std::fabs(top1(1, 0)), 1.0, 1e-6);  // e_2, eigenvalue 3.
}

TEST(TopKTest, ColumnsAreOrthonormal) {
  Matrix a{{4, 1, 0, 0},
           {1, 3, 1, 0},
           {0, 1, 2, 1},
           {0, 0, 1, 1}};
  const Matrix v = TopKEigenvectors(a, 2).ValueOrDie();
  EXPECT_NEAR(Norm2(v.Col(0)), 1.0, 1e-9);
  EXPECT_NEAR(Norm2(v.Col(1)), 1.0, 1e-9);
  EXPECT_NEAR(Dot(v.Col(0), v.Col(1)), 0.0, 1e-9);
}

TEST(TopKTest, RejectsBadK) {
  Matrix a = Matrix::Identity(3);
  EXPECT_FALSE(TopKEigenvectors(a, 0).ok());
  EXPECT_FALSE(TopKEigenvectors(a, 4).ok());
}

}  // namespace
}  // namespace sqm
