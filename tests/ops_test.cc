#include "mpc/ops.h"

#include <gtest/gtest.h>

#include <cmath>

#include "mpc/network.h"
#include "sampling/rng.h"

namespace sqm {
namespace {

class OpsTest : public ::testing::Test {
 protected:
  static constexpr size_t kParties = 5;

  OpsTest()
      : network_(kParties, 0.0),
        protocol_(ShamirScheme(kParties, 2), &network_, 71),
        ops_(&protocol_) {}

  SimulatedNetwork network_;
  BgwProtocol protocol_;
  SecureOps ops_;
};

TEST_F(OpsTest, ShareColumnsRoundTrip) {
  std::vector<std::vector<int64_t>> columns(kParties);
  for (size_t j = 0; j < kParties; ++j) {
    columns[j] = {static_cast<int64_t>(j), -static_cast<int64_t>(j), 7};
  }
  const auto shared = ops_.ShareColumns(columns).ValueOrDie();
  ASSERT_EQ(shared.size(), kParties);
  for (size_t j = 0; j < kParties; ++j) {
    EXPECT_EQ(protocol_.OpenSigned(shared[j]), columns[j]);
  }
}

TEST_F(OpsTest, ShareColumnsValidatesShape) {
  EXPECT_FALSE(ops_.ShareColumns({{1}, {2}}).ok());  // Wrong party count.
  std::vector<std::vector<int64_t>> ragged(kParties, {1, 2});
  ragged[3] = {1};
  EXPECT_FALSE(ops_.ShareColumns(ragged).ok());
}

TEST_F(OpsTest, NoisySumMatchesPlaintext) {
  std::vector<std::vector<int64_t>> contributions(kParties);
  std::vector<std::vector<int64_t>> noise(kParties);
  std::vector<int64_t> expected(3, 0);
  Rng rng(5);
  for (size_t j = 0; j < kParties; ++j) {
    for (int t = 0; t < 3; ++t) {
      contributions[j].push_back(
          static_cast<int64_t>(rng.NextBounded(100)) - 50);
      noise[j].push_back(static_cast<int64_t>(rng.NextBounded(20)) - 10);
      expected[t] += contributions[j][t] + noise[j][t];
    }
  }
  EXPECT_EQ(ops_.NoisySum(contributions, noise).ValueOrDie(), expected);
}

TEST_F(OpsTest, CovarianceMatchesPlaintextGram) {
  const size_t m = 7;
  std::vector<std::vector<int64_t>> columns(kParties);
  Rng rng(6);
  for (auto& col : columns) {
    for (size_t i = 0; i < m; ++i) {
      col.push_back(static_cast<int64_t>(rng.NextBounded(21)) - 10);
    }
  }
  const size_t d = kParties * (kParties + 1) / 2;
  std::vector<std::vector<int64_t>> zero_noise(
      kParties, std::vector<int64_t>(d, 0));

  const std::vector<int64_t> gram =
      ops_.NoisyCovarianceUpper(columns, zero_noise).ValueOrDie();
  size_t pair = 0;
  for (size_t i = 0; i < kParties; ++i) {
    for (size_t j = i; j < kParties; ++j, ++pair) {
      int64_t expected = 0;
      for (size_t r = 0; r < m; ++r) {
        expected += columns[i][r] * columns[j][r];
      }
      EXPECT_EQ(gram[pair], expected) << "pair (" << i << "," << j << ")";
    }
  }
}

TEST_F(OpsTest, CovarianceInjectsNoise) {
  std::vector<std::vector<int64_t>> columns(
      kParties, std::vector<int64_t>(3, 0));  // Zero data.
  const size_t d = kParties * (kParties + 1) / 2;
  std::vector<std::vector<int64_t>> noise(
      kParties, std::vector<int64_t>(d, 1));  // Each client adds 1.
  const std::vector<int64_t> gram =
      ops_.NoisyCovarianceUpper(columns, noise).ValueOrDie();
  for (int64_t value : gram) {
    EXPECT_EQ(value, static_cast<int64_t>(kParties));
  }
}

TEST_F(OpsTest, CovarianceUsesOneMultiplicationRound) {
  std::vector<std::vector<int64_t>> columns(
      kParties, std::vector<int64_t>(4, 1));
  const size_t d = kParties * (kParties + 1) / 2;
  std::vector<std::vector<int64_t>> noise(
      kParties, std::vector<int64_t>(d, 0));
  const uint64_t rounds_before = network_.stats().rounds;
  (void)ops_.NoisyCovarianceUpper(columns, noise).ValueOrDie();
  const uint64_t rounds_used = network_.stats().rounds - rounds_before;
  // n column sharings + 1 mul + n noise sharings + 1 open.
  EXPECT_EQ(rounds_used, kParties + 1 + kParties + 1);
}

TEST(OpsLogisticTest, GradientMatchesPlaintextFormula) {
  // d = 3 feature clients + 1 label client.
  const size_t d = 3;
  const size_t m = 6;
  SimulatedNetwork network(d + 1, 0.0);
  BgwProtocol protocol(ShamirScheme(d + 1, 1), &network, 9);
  SecureOps ops(&protocol);

  Rng rng(8);
  SecureOps::LogisticGradientInputs inputs;
  inputs.feature_columns.resize(d);
  for (auto& col : inputs.feature_columns) {
    for (size_t i = 0; i < m; ++i) {
      col.push_back(static_cast<int64_t>(rng.NextBounded(9)) - 4);
    }
  }
  for (size_t i = 0; i < m; ++i) {
    inputs.labels.push_back(static_cast<int64_t>(rng.NextBounded(2)) * 16);
  }
  inputs.weights = {3, -2, 5};
  inputs.half_coefficient = 128;
  inputs.label_coefficient = -16;
  inputs.noise_per_client.assign(d + 1, std::vector<int64_t>(d, 0));
  inputs.noise_per_client[0][1] = 11;  // One nonzero noise share.

  const std::vector<int64_t> grad =
      ops.NoisyLogisticGradient(inputs).ValueOrDie();
  ASSERT_EQ(grad.size(), d);

  for (size_t t = 0; t < d; ++t) {
    int64_t expected = 0;
    for (size_t i = 0; i < m; ++i) {
      int64_t u = 0;
      for (size_t j = 0; j < d; ++j) {
        u += inputs.weights[j] * inputs.feature_columns[j][i];
      }
      expected += inputs.half_coefficient * inputs.feature_columns[t][i];
      expected += u * inputs.feature_columns[t][i];
      expected += inputs.label_coefficient * inputs.labels[i] *
                  inputs.feature_columns[t][i];
    }
    if (t == 1) expected += 11;
    EXPECT_EQ(grad[t], expected) << "t=" << t;
  }
}

TEST(OpsLogisticTest, GradientUsesTwoInteractiveSteps) {
  // The structured path: one batched Mul round covers all O(m d) products;
  // the inner product with public weights costs nothing.
  const size_t d = 4;
  const size_t m = 5;
  SimulatedNetwork network(d + 1, 0.0);
  BgwProtocol protocol(ShamirScheme(d + 1, 2), &network, 10);
  SecureOps ops(&protocol);

  SecureOps::LogisticGradientInputs inputs;
  inputs.feature_columns.assign(d, std::vector<int64_t>(m, 1));
  inputs.labels.assign(m, 1);
  inputs.weights.assign(d, 1);
  inputs.half_coefficient = 1;
  inputs.label_coefficient = 1;
  inputs.noise_per_client.assign(d + 1, std::vector<int64_t>(d, 0));

  (void)ops.NoisyLogisticGradient(inputs).ValueOrDie();
  // Rounds: d feature sharings + 1 label sharing + 1 mul + (d+1) noise
  // sharings + 1 open.
  EXPECT_EQ(network.stats().rounds, d + 1 + 1 + (d + 1) + 1);
}

TEST(OpsLogisticTest, ValidatesShapes) {
  SimulatedNetwork network(4, 0.0);
  BgwProtocol protocol(ShamirScheme(4, 1), &network, 11);
  SecureOps ops(&protocol);

  SecureOps::LogisticGradientInputs inputs;
  inputs.feature_columns.assign(2, std::vector<int64_t>(3, 0));  // d=2 but
  inputs.labels.assign(3, 0);                                    // 4 parties.
  inputs.weights.assign(2, 1);
  inputs.noise_per_client.assign(4, std::vector<int64_t>(2, 0));
  EXPECT_FALSE(ops.NoisyLogisticGradient(inputs).ok());
}


TEST(OpsLinearTest, GradientMatchesPlaintextFormula) {
  const size_t d = 3;
  const size_t m = 5;
  SimulatedNetwork network(d + 1, 0.0);
  BgwProtocol protocol(ShamirScheme(d + 1, 1), &network, 12);
  SecureOps ops(&protocol);

  Rng rng(14);
  SecureOps::LinearGradientInputs inputs;
  inputs.feature_columns.resize(d);
  for (auto& col : inputs.feature_columns) {
    for (size_t i = 0; i < m; ++i) {
      col.push_back(static_cast<int64_t>(rng.NextBounded(9)) - 4);
    }
  }
  for (size_t i = 0; i < m; ++i) {
    inputs.targets.push_back(static_cast<int64_t>(rng.NextBounded(33)) -
                             16);
  }
  inputs.weights = {2, -1, 4};
  inputs.target_coefficient = -16;
  inputs.noise_per_client.assign(d + 1, std::vector<int64_t>(d, 0));
  inputs.noise_per_client[2][0] = -7;

  const std::vector<int64_t> grad =
      ops.NoisyLinearGradient(inputs).ValueOrDie();
  ASSERT_EQ(grad.size(), d);
  for (size_t t = 0; t < d; ++t) {
    int64_t expected = 0;
    for (size_t i = 0; i < m; ++i) {
      int64_t u = 0;
      for (size_t j = 0; j < d; ++j) {
        u += inputs.weights[j] * inputs.feature_columns[j][i];
      }
      expected += u * inputs.feature_columns[t][i];
      expected += inputs.target_coefficient * inputs.targets[i] *
                  inputs.feature_columns[t][i];
    }
    if (t == 0) expected += -7;
    EXPECT_EQ(grad[t], expected) << "t=" << t;
  }
}

TEST(OpsLinearTest, ValidatesShapes) {
  SimulatedNetwork network(4, 0.0);
  BgwProtocol protocol(ShamirScheme(4, 1), &network, 13);
  SecureOps ops(&protocol);
  SecureOps::LinearGradientInputs inputs;
  inputs.feature_columns.assign(3, std::vector<int64_t>(2, 0));
  inputs.targets.assign(2, 0);
  inputs.weights.assign(2, 1);  // Wrong length.
  inputs.noise_per_client.assign(4, std::vector<int64_t>(3, 0));
  EXPECT_FALSE(ops.NoisyLinearGradient(inputs).ok());
}

}  // namespace
}  // namespace sqm
