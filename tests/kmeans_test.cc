#include "vfl/kmeans.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sampling/gaussian_sampler.h"
#include "sampling/rng.h"

namespace sqm {
namespace {

/// Three well-separated Gaussian blobs; returns (data, ground truth).
std::pair<Matrix, std::vector<size_t>> Blobs(size_t per_cluster,
                                             uint64_t seed) {
  const double centers[3][2] = {{0.0, 0.0}, {5.0, 5.0}, {-5.0, 5.0}};
  Matrix x(3 * per_cluster, 2);
  std::vector<size_t> truth(3 * per_cluster);
  Rng rng(seed);
  GaussianSampler gaussian(0.4);
  for (size_t c = 0; c < 3; ++c) {
    for (size_t i = 0; i < per_cluster; ++i) {
      const size_t row = c * per_cluster + i;
      x(row, 0) = centers[c][0] + gaussian.Sample(rng);
      x(row, 1) = centers[c][1] + gaussian.Sample(rng);
      truth[row] = c;
    }
  }
  return {std::move(x), std::move(truth)};
}

TEST(KMeansTest, RecoversWellSeparatedBlobs) {
  const auto [x, truth] = Blobs(60, 1);
  KMeansOptions options;
  options.k = 3;
  const KMeansResult result = KMeans(x, options).ValueOrDie();
  EXPECT_GT(RandIndex(result.assignments, truth), 0.99);
  EXPECT_GT(result.iterations, 0u);
  EXPECT_LT(result.inertia / static_cast<double>(x.rows()), 1.0);
}

TEST(KMeansTest, InertiaDecreasesWithK) {
  const auto [x, truth] = Blobs(40, 2);
  (void)truth;
  KMeansOptions options;
  options.k = 1;
  const double k1 = KMeans(x, options).ValueOrDie().inertia;
  options.k = 3;
  const double k3 = KMeans(x, options).ValueOrDie().inertia;
  EXPECT_LT(k3, k1 / 5.0);
}

TEST(KMeansTest, LloydStepAveragesClusters) {
  Matrix x{{0, 0}, {2, 0}, {10, 10}};
  const std::vector<size_t> assignments{0, 0, 1};
  Matrix previous(2, 2);
  const Matrix centroids =
      KMeansLloydStep(x, assignments, previous).ValueOrDie();
  EXPECT_DOUBLE_EQ(centroids(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(centroids(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(centroids(1, 0), 10.0);
}

TEST(KMeansTest, LloydStepKeepsEmptyClusterCentroid) {
  Matrix x{{1, 1}};
  Matrix previous{{0, 0}, {7, 7}};
  const Matrix centroids =
      KMeansLloydStep(x, {0}, previous).ValueOrDie();
  EXPECT_DOUBLE_EQ(centroids(1, 0), 7.0);  // Untouched.
  EXPECT_DOUBLE_EQ(centroids(0, 0), 1.0);
}

TEST(KMeansTest, LloydStepValidatesShapes) {
  Matrix x{{1, 1}};
  Matrix previous(2, 2);
  EXPECT_FALSE(KMeansLloydStep(x, {0, 1}, previous).ok());  // Too many.
  EXPECT_FALSE(KMeansLloydStep(x, {5}, previous).ok());     // Bad cluster.
}

TEST(KMeansTest, ValidatesOptions) {
  Matrix x{{1, 1}, {2, 2}};
  KMeansOptions options;
  options.k = 0;
  EXPECT_FALSE(KMeans(x, options).ok());
  options.k = 5;  // > m.
  EXPECT_FALSE(KMeans(x, options).ok());
}

TEST(KMeansTest, LocalDpDegradesGracefullyWithEpsilon) {
  // Generous budget: near-perfect recovery. Tiny budget: visibly worse —
  // the utility gap that motivates distributed-DP clustering as future
  // work (Section VII).
  const auto [x, truth] = Blobs(60, 3);
  KMeansOptions options;
  options.k = 3;
  const KMeansResult generous =
      LocalDpKMeans(x, options, /*epsilon=*/1000.0, 1e-5,
                    /*record_norm_bound=*/8.0)
          .ValueOrDie();
  const KMeansResult tight =
      LocalDpKMeans(x, options, /*epsilon=*/0.05, 1e-5,
                    /*record_norm_bound=*/8.0)
          .ValueOrDie();
  EXPECT_GT(generous.sigma, 0.0);
  EXPECT_GT(tight.sigma, generous.sigma);
  const double generous_rand = RandIndex(generous.assignments, truth);
  const double tight_rand = RandIndex(tight.assignments, truth);
  EXPECT_GT(generous_rand, 0.95);
  EXPECT_LT(tight_rand, generous_rand);
}

TEST(RandIndexTest, Extremes) {
  EXPECT_DOUBLE_EQ(RandIndex({0, 0, 1, 1}, {0, 0, 1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(RandIndex({0, 0, 1, 1}, {1, 1, 0, 0}), 1.0);  // Relabel.
  EXPECT_LT(RandIndex({0, 1, 0, 1}, {0, 0, 1, 1}), 0.5);
  EXPECT_DOUBLE_EQ(RandIndex({0}, {0}), 1.0);
}

}  // namespace
}  // namespace sqm
