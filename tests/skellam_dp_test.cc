#include "dp/skellam.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dp/gaussian.h"

namespace sqm {
namespace {

TEST(SkellamDpTest, Lemma1BoundStructure) {
  // With huge mu, the min() picks the 1/mu^2 branch and the bound tends to
  // the Gaussian-equivalent main term alpha * d2^2 / (4 mu).
  const double alpha = 4.0;
  const double d1 = 10.0;
  const double d2 = 3.0;
  const double mu = 1e9;
  const double main_term = alpha * d2 * d2 / (4.0 * mu);
  EXPECT_NEAR(SkellamRdp(alpha, d1, d2, mu), main_term, main_term * 1e-3);
}

TEST(SkellamDpTest, SmallMuUsesLinearCorrection) {
  // For small mu the 3*d1/(4mu) branch is smaller than the quadratic one.
  const double alpha = 2.0;
  const double d1 = 1.0;
  const double d2 = 1.0;
  const double mu = 0.1;
  const double expected = alpha * d2 * d2 / (4.0 * mu) +
                          std::min(((2 * alpha - 1) * d2 * d2 + 6 * d1) /
                                       (16.0 * mu * mu),
                                   3.0 * d1 / (4.0 * mu));
  EXPECT_DOUBLE_EQ(SkellamRdp(alpha, d1, d2, mu), expected);
}

TEST(SkellamDpTest, RdpDecreasesInMu) {
  double prev = 1e18;
  for (double mu : {1.0, 10.0, 100.0, 1e4, 1e6}) {
    const double tau = SkellamRdp(2.0, 1.0, 1.0, mu);
    EXPECT_LT(tau, prev);
    prev = tau;
  }
}

TEST(SkellamDpTest, ServerBoundNearGaussianWithMatchingVariance) {
  // Skellam with variance 2*mu matches a Gaussian with sigma^2 = 2*mu up to
  // the vanishing correction term — the paper's "comparable
  // privacy-utility trade-off" claim (Lemma 1 discussion).
  const double d2 = 5.0;
  const double mu = 1e8;
  const double sigma = std::sqrt(2.0 * mu);
  for (double alpha : {2.0, 8.0, 32.0}) {
    const double skellam = SkellamRdpServer(alpha, d2 * d2, d2, mu);
    const double gaussian = GaussianRdp(alpha, d2, sigma);
    EXPECT_NEAR(skellam / gaussian, 1.0, 1e-2) << "alpha=" << alpha;
  }
}

TEST(SkellamDpTest, ClientBoundExceedsServerBound) {
  // Lemma 3/4: the client sees less noise and a doubled sensitivity.
  const double alpha = 4.0;
  const double d1 = 2.0;
  const double d2 = 1.5;
  const double mu = 100.0;
  for (size_t n : {2u, 10u, 100u}) {
    EXPECT_GT(SkellamRdpClient(alpha, d1, d2, mu, n),
              SkellamRdpServer(alpha, d1, d2, mu));
  }
}

TEST(SkellamDpTest, ClientBoundConvergesAsClientsGrow) {
  // The n/(n-1) factor tends to 1: more clients means each knows a smaller
  // noise fraction (Section V-C "On data partitioning").
  const double alpha = 4.0;
  const double tau_10 = SkellamRdpClient(alpha, 1.0, 1.0, 100.0, 10);
  const double tau_1000 = SkellamRdpClient(alpha, 1.0, 1.0, 100.0, 1000);
  EXPECT_GT(tau_10, tau_1000);
  const double limit = alpha * 1.0 / 100.0 + 3.0 * 1.0 / (2.0 * 100.0);
  EXPECT_NEAR(tau_1000, limit, limit * 2e-3);
}

TEST(SkellamDpTest, SingleReleaseCalibrationRoundTrips) {
  const double eps = 1.0;
  const double delta = 1e-5;
  const double d2 = 17.0;
  const double d1 = d2 * d2;
  const double mu =
      CalibrateSkellamMuSingleRelease(eps, delta, d1, d2).ValueOrDie();
  EXPECT_LE(SkellamEpsilonSingleRelease(mu, d1, d2, delta),
            eps * (1.0 + 1e-6));
  EXPECT_GT(SkellamEpsilonSingleRelease(mu * 0.9, d1, d2, delta), eps);
}

TEST(SkellamDpTest, CalibratedMuScalesQuadraticallyInSensitivity) {
  const double mu1 =
      CalibrateSkellamMuSingleRelease(1.0, 1e-5, 1.0, 1.0).ValueOrDie();
  const double mu10 =
      CalibrateSkellamMuSingleRelease(1.0, 1e-5, 100.0, 10.0).ValueOrDie();
  EXPECT_NEAR(mu10 / mu1, 100.0, 15.0);
}

TEST(SkellamDpTest, SubsampledEpsilonMonotonicInRounds) {
  const double mu = 1e4;
  const double e1 = SkellamSubsampledEpsilon(mu, 4.0, 2.0, 0.01, 10, 1e-5);
  const double e2 = SkellamSubsampledEpsilon(mu, 4.0, 2.0, 0.01, 100, 1e-5);
  EXPECT_LT(e1, e2);
}

TEST(SkellamDpTest, SubsampledCalibrationRoundTrips) {
  const double eps = 2.0;
  const double delta = 1e-5;
  const double d2 = 50.0;
  const double d1 = 500.0;
  const double q = 0.01;
  const size_t rounds = 30;
  const double mu =
      CalibrateSkellamMuSubsampled(eps, delta, d1, d2, q, rounds)
          .ValueOrDie();
  EXPECT_LE(SkellamSubsampledEpsilon(mu, d1, d2, q, rounds, delta),
            eps * (1.0 + 1e-6));
  EXPECT_GT(SkellamSubsampledEpsilon(mu * 0.9, d1, d2, q, rounds, delta),
            eps);
}

TEST(SkellamDpTest, CalibrationRejectsBadArguments) {
  EXPECT_FALSE(CalibrateSkellamMuSingleRelease(-1.0, 1e-5, 1.0, 1.0).ok());
  EXPECT_FALSE(CalibrateSkellamMuSingleRelease(1.0, 0.0, 1.0, 1.0).ok());
  EXPECT_FALSE(
      CalibrateSkellamMuSubsampled(1.0, 1e-5, 1.0, 1.0, 0.01, 0).ok());
}

TEST(SkellamDpTest, HugeSensitivitiesStayFinite) {
  // The LR accounting feeds quantized sensitivities around gamma^3 ~ 1e11;
  // every path must stay finite.
  const double d2 = 1e11;
  const double d1 = std::sqrt(800.0) * d2;
  const double mu =
      CalibrateSkellamMuSubsampled(1.0, 1e-5, d1, d2, 0.001, 25)
          .ValueOrDie();
  EXPECT_TRUE(std::isfinite(mu));
  EXPECT_GT(mu, 0.0);
}

}  // namespace
}  // namespace sqm
