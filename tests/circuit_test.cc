#include "mpc/circuit.h"

#include <gtest/gtest.h>

namespace sqm {
namespace {

TEST(CircuitTest, InputBookkeeping) {
  Circuit c;
  c.AddInput(0);
  c.AddInput(1);
  c.AddInput(0);
  EXPECT_EQ(c.NumInputsForParty(0), 2u);
  EXPECT_EQ(c.NumInputsForParty(1), 1u);
  EXPECT_EQ(c.NumInputsForParty(2), 0u);
}

TEST(CircuitTest, GateCountsAndKinds) {
  Circuit c;
  const auto a = c.AddInput(0);
  const auto b = c.AddInput(1);
  const auto sum = c.AddAdd(a, b);
  const auto product = c.AddMul(a, b);
  const auto scaled = c.AddMulConst(product, 3);
  c.MarkOutput(sum);
  c.MarkOutput(scaled);
  EXPECT_EQ(c.num_gates(), 5u);
  EXPECT_EQ(c.num_multiplications(), 1u);
  EXPECT_EQ(c.outputs().size(), 2u);
}

TEST(CircuitTest, MultiplicativeDepth) {
  Circuit c;
  const auto a = c.AddInput(0);
  const auto b = c.AddInput(1);
  EXPECT_EQ(c.MultiplicativeDepth(), 0u);
  const auto ab = c.AddMul(a, b);
  EXPECT_EQ(c.MultiplicativeDepth(), 1u);
  const auto ab2 = c.AddMul(ab, ab);
  const auto sum = c.AddAdd(ab2, a);  // Add does not increase depth.
  c.MarkOutput(sum);
  EXPECT_EQ(c.MultiplicativeDepth(), 2u);
}

TEST(CircuitTest, ValidateAcceptsWellFormed) {
  Circuit c;
  const auto a = c.AddInput(0);
  const auto k = c.AddConstant(5);
  c.MarkOutput(c.AddMul(a, k));
  EXPECT_TRUE(c.Validate(2).ok());
}

TEST(CircuitTest, ValidateRejectsNoOutputs) {
  Circuit c;
  c.AddInput(0);
  EXPECT_FALSE(c.Validate(2).ok());
}

TEST(CircuitTest, ValidateRejectsForeignParty) {
  Circuit c;
  c.MarkOutput(c.AddInput(7));
  EXPECT_FALSE(c.Validate(2).ok());
}

TEST(CircuitTest, SummaryMentionsCounts) {
  Circuit c;
  const auto a = c.AddInput(0);
  c.MarkOutput(c.AddMul(a, a));
  const std::string summary = c.Summary();
  EXPECT_NE(summary.find("mul=1"), std::string::npos);
  EXPECT_NE(summary.find("depth=1"), std::string::npos);
}

}  // namespace
}  // namespace sqm
