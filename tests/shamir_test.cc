#include "mpc/shamir.h"

#include <gtest/gtest.h>

#include <set>

#include "sampling/rng.h"

namespace sqm {
namespace {

TEST(ShamirTest, ValidateRejectsBadParameters) {
  EXPECT_FALSE(ShamirScheme::Validate(1, 1).ok());   // Too few parties.
  EXPECT_FALSE(ShamirScheme::Validate(4, 2).ok());   // 2t >= n.
  EXPECT_FALSE(ShamirScheme::Validate(4, 0).ok());   // Degenerate threshold.
  EXPECT_TRUE(ShamirScheme::Validate(3, 1).ok());
  EXPECT_TRUE(ShamirScheme::Validate(5, 2).ok());
  EXPECT_TRUE(ShamirScheme::Validate(7, 3).ok());
}

TEST(ShamirTest, ShareReconstructRoundTrip) {
  ShamirScheme scheme(5, 2);
  Rng rng(1);
  for (int64_t secret : {0L, 1L, -1L, 123456789L, -987654321L}) {
    const auto shares = scheme.Share(Field::Encode(secret), rng);
    ASSERT_EQ(shares.size(), 5u);
    EXPECT_EQ(Field::Decode(scheme.Reconstruct(shares)), secret);
  }
}

TEST(ShamirTest, AnySubsetOfThresholdPlusOneReconstructs) {
  ShamirScheme scheme(5, 2);
  Rng rng(2);
  const Field::Element secret = Field::Encode(42);
  const auto shares = scheme.Share(secret, rng);
  // All (5 choose 3) subsets.
  for (size_t a = 0; a < 5; ++a) {
    for (size_t b = a + 1; b < 5; ++b) {
      for (size_t c = b + 1; c < 5; ++c) {
        const auto value = scheme.ReconstructFromSubset(
            {{a, shares[a]}, {b, shares[b]}, {c, shares[c]}});
        EXPECT_EQ(value.ValueOrDie(), secret);
      }
    }
  }
}

TEST(ShamirTest, SubsetReconstructionValidatesInput) {
  ShamirScheme scheme(5, 2);
  Rng rng(3);
  const auto shares = scheme.Share(Field::Encode(7), rng);
  // Too few shares.
  EXPECT_FALSE(
      scheme.ReconstructFromSubset({{0, shares[0]}, {1, shares[1]}}).ok());
  // Duplicate party.
  EXPECT_FALSE(scheme
                   .ReconstructFromSubset({{0, shares[0]},
                                           {0, shares[0]},
                                           {1, shares[1]}})
                   .ok());
  // Out-of-range party.
  EXPECT_FALSE(scheme
                   .ReconstructFromSubset({{0, shares[0]},
                                           {1, shares[1]},
                                           {9, shares[2]}})
                   .ok());
}

TEST(ShamirTest, ThresholdSharesLookUniform) {
  // With threshold t, the marginal of any single share is uniform; check a
  // coarse statistic: share values of a fixed secret spread across the
  // field rather than clustering.
  ShamirScheme scheme(3, 1);
  Rng rng(4);
  std::set<Field::Element> first_shares;
  for (int i = 0; i < 200; ++i) {
    first_shares.insert(scheme.Share(Field::Encode(5), rng)[0]);
  }
  EXPECT_GT(first_shares.size(), 195u);  // Essentially all distinct.
}

TEST(ShamirTest, SharesAreAdditivelyHomomorphic) {
  ShamirScheme scheme(5, 2);
  Rng rng(5);
  const auto sa = scheme.Share(Field::Encode(100), rng);
  const auto sb = scheme.Share(Field::Encode(23), rng);
  std::vector<Field::Element> sum(5);
  for (size_t j = 0; j < 5; ++j) sum[j] = Field::Add(sa[j], sb[j]);
  EXPECT_EQ(Field::Decode(scheme.Reconstruct(sum)), 123);
}

TEST(ShamirTest, Degree2tReconstructionOfShareProducts) {
  // Local products of two degree-t sharings form a degree-2t sharing of the
  // product of the secrets — the core fact behind BGW multiplication.
  ShamirScheme scheme(5, 2);
  Rng rng(6);
  const auto sa = scheme.Share(Field::Encode(12), rng);
  const auto sb = scheme.Share(Field::Encode(-7), rng);
  std::vector<Field::Element> products(5);
  for (size_t j = 0; j < 5; ++j) products[j] = Field::Mul(sa[j], sb[j]);
  EXPECT_EQ(Field::Decode(scheme.ReconstructDegree2t(products)), -84);
}

TEST(ShamirTest, EveryQuorumSubsetReconstructsTheSameProduct) {
  // Quorum property behind dropout-tolerant BGW: a degree-2t sharing (the
  // local products of two degree-t sharings) reconstructs to the SAME
  // secret from every (2t+1)-subset of the n evaluation points.
  constexpr size_t kParties = 7;
  constexpr size_t kThreshold = 2;  // 2t+1 = 5 of 7.
  ShamirScheme scheme(kParties, kThreshold);
  Rng rng(7);
  const auto sa = scheme.Share(Field::Encode(1234), rng);
  const auto sb = scheme.Share(Field::Encode(-567), rng);
  std::vector<Field::Element> products(kParties);
  for (size_t j = 0; j < kParties; ++j) {
    products[j] = Field::Mul(sa[j], sb[j]);
  }
  const int64_t expected = 1234 * -567;
  size_t subsets = 0;
  // Enumerate all (7 choose 5) = 21 survivor subsets via the complement
  // (the two dropped parties).
  for (size_t d1 = 0; d1 < kParties; ++d1) {
    for (size_t d2 = d1 + 1; d2 < kParties; ++d2) {
      std::vector<size_t> survivors;
      for (size_t j = 0; j < kParties; ++j) {
        if (j != d1 && j != d2) survivors.push_back(j);
      }
      const auto value = scheme.ReconstructFromSurvivors(
          products, survivors, 2 * kThreshold);
      ASSERT_TRUE(value.ok());
      EXPECT_EQ(Field::Decode(value.ValueOrDie()), expected);
      ++subsets;
    }
  }
  EXPECT_EQ(subsets, 21u);
}

TEST(ShamirTest, QuorumOfOnly2tSharesFailsWithFailedPrecondition) {
  ShamirScheme scheme(7, 2);
  Rng rng(8);
  const auto sa = scheme.Share(Field::Encode(5), rng);
  const auto sb = scheme.Share(Field::Encode(9), rng);
  std::vector<Field::Element> products(7);
  for (size_t j = 0; j < 7; ++j) products[j] = Field::Mul(sa[j], sb[j]);
  // 2t = 4 survivors: one short of the 2t+1 quorum.
  const auto value =
      scheme.ReconstructFromSurvivors(products, {0, 2, 4, 6}, 4);
  ASSERT_FALSE(value.ok());
  EXPECT_EQ(value.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(value.status().message().find("need 5"), std::string::npos);
  EXPECT_NE(value.status().message().find("have 4"), std::string::npos);
}

TEST(ShamirTest, SurvivorReconstructionValidatesInput) {
  ShamirScheme scheme(5, 2);
  Rng rng(9);
  const auto shares = scheme.Share(Field::Encode(11), rng);
  // Out-of-range survivor index.
  EXPECT_FALSE(
      scheme.ReconstructFromSurvivors(shares, {0, 1, 9}, 2).ok());
  // Duplicates do not count twice towards the quorum.
  const auto dup =
      scheme.ReconstructFromSurvivors(shares, {0, 0, 1}, 2);
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kFailedPrecondition);
  // Degree-t reconstruction from t+1 survivors works on any subset.
  const auto value = scheme.ReconstructFromSurvivors(shares, {4, 2, 0}, 2);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(Field::Decode(value.ValueOrDie()), 11);
}

TEST(ShamirTest, ReconstructCheckedDetectsTamperedTrailingShare) {
  // Reconstruct interpolates from the first threshold+1 shares only; a
  // tampered TRAILING share would be silently ignored. ReconstructChecked
  // verifies all n points lie on the polynomial before returning.
  ShamirScheme scheme(5, 2);
  Rng rng(31);
  std::vector<Field::Element> shares = scheme.Share(Field::Encode(77), rng);
  const auto clean = scheme.ReconstructChecked(shares);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_EQ(Field::Decode(clean.ValueOrDie()), 77);

  shares.back() = Field::Add(shares.back(), 1);
  // The default path cannot see the tamper (it never touches share 4)...
  EXPECT_EQ(Field::Decode(scheme.Reconstruct(shares)), 77);
  // ...the checked path must.
  const auto tampered = scheme.ReconstructChecked(shares);
  EXPECT_EQ(tampered.status().code(), StatusCode::kIntegrityViolation)
      << tampered.status().ToString();
}

TEST(ShamirTest, VerifyReconstructionAssertsOnTamperedTrailingShare) {
  // The debug-mode flag (wired from the protocol's verify_sharings
  // option) turns the silent ignore into a loud abort.
  ShamirScheme scheme(5, 2);
  scheme.set_verify_reconstruction(true);
  Rng rng(31);
  std::vector<Field::Element> shares = scheme.Share(Field::Encode(77), rng);
  EXPECT_EQ(Field::Decode(scheme.Reconstruct(shares)), 77);  // Clean: fine.
  shares.back() = Field::Add(shares.back(), 1);
  EXPECT_DEATH(scheme.Reconstruct(shares), "Check failed");

  // Same guarantee on the batched path.
  ShamirScheme batch_scheme(5, 2);
  batch_scheme.set_verify_reconstruction(true);
  Rng batch_rng(32);
  std::vector<std::vector<Field::Element>> rows =
      batch_scheme.ShareBatch({Field::Encode(1), Field::Encode(2)},
                              batch_rng);
  EXPECT_EQ(batch_scheme.ReconstructBatch(rows).size(), 2u);
  rows[4][1] = Field::Add(rows[4][1], 1);
  EXPECT_DEATH(batch_scheme.ReconstructBatch(rows), "Check failed");
}

TEST(ShamirTest, LagrangeCoefficientsSumToOneForConstantPolynomial) {
  // For the constant polynomial phi == 1 every share is 1, so the Lagrange
  // weights must sum to 1.
  ShamirScheme scheme(7, 3);
  const auto coeffs = scheme.LagrangeAtZero({0, 1, 2, 3});
  Field::Element sum = 0;
  for (const auto c : coeffs) sum = Field::Add(sum, c);
  EXPECT_EQ(sum, 1u);
}

}  // namespace
}  // namespace sqm
