#include "core/status.h"

#include <gtest/gtest.h>

namespace sqm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad gamma");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad gamma");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad gamma");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented),
               "Unimplemented");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIoError), "IoError");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::Internal("x"), Status::Internal("x"));
  EXPECT_FALSE(Status::Internal("x") == Status::Internal("y"));
  EXPECT_FALSE(Status::Internal("x") == Status::IoError("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_EQ(r.status(), Status::OK());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, OkStatusIsNormalizedToInternal) {
  Result<int> r(Status::OK());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  const std::string moved = std::move(r).ValueOrDie();
  EXPECT_EQ(moved, "hello");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  SQM_ASSIGN_OR_RETURN(const int half, Half(x));
  SQM_ASSIGN_OR_RETURN(const int quarter, Half(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Quarter(8).ValueOrDie(), 2);
  EXPECT_EQ(Quarter(6).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Quarter(7).status().code(), StatusCode::kInvalidArgument);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status CheckAll(int a, int b) {
  SQM_RETURN_NOT_OK(FailIfNegative(a));
  SQM_RETURN_NOT_OK(FailIfNegative(b));
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(CheckAll(1, 2).ok());
  EXPECT_EQ(CheckAll(-1, 2).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(CheckAll(1, -2).code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace sqm
