// Tests of the lock-step transport and the accounting layer shared by all
// Transport implementations: equivalence with the seed SimulatedNetwork
// semantics, out-of-order channel draining, per-channel and per-phase
// breakdowns, configurable wire widths, and Reset's dropped-message report.

#include "net/lockstep.h"

#include <gtest/gtest.h>

#include <vector>

#include "mpc/field.h"
#include "mpc/network.h"
#include "mpc/protocol.h"
#include "mpc/shamir.h"

namespace sqm {
namespace {

// Runs the same small BGW program (input sharing from every party, one Mul,
// one Open) and returns the opened values alongside the transport's final
// counters.
struct ProgramResult {
  std::vector<int64_t> opened;
  NetworkStats stats;
  double simulated_seconds = 0.0;
};

ProgramResult RunBgwProgram(Transport* network) {
  const size_t n = network->num_parties();
  BgwProtocol protocol(ShamirScheme(n, (n - 1) / 2), network, 1234);
  SharedVector a = protocol.ShareFromParty(0, Field::EncodeVector({3, -4}));
  SharedVector b = protocol.ShareFromParty(1, Field::EncodeVector({-5, 6}));
  SharedVector product = protocol.Mul(a, b).ValueOrDie();
  ProgramResult result;
  result.opened = protocol.OpenSigned(product);
  result.stats = network->stats();
  result.simulated_seconds = network->SimulatedSeconds();
  return result;
}

TEST(LockstepTransportTest, BgwMatchesSimulatedNetworkExactly) {
  // The acceptance bar for the transport refactor: the drop-in lock-step
  // transport must reproduce the seed SimulatedNetwork bit for bit —
  // identical openings, message counts, round counts, byte counts, clock.
  SimulatedNetwork seed_network(5, 0.1);
  LockstepTransport lockstep(5, 0.1, Field::kWireBytes);
  const ProgramResult expected = RunBgwProgram(&seed_network);
  const ProgramResult actual = RunBgwProgram(&lockstep);

  EXPECT_EQ(actual.opened, expected.opened);
  EXPECT_EQ(actual.opened, (std::vector<int64_t>{-15, -24}));
  EXPECT_EQ(actual.stats.messages, expected.stats.messages);
  EXPECT_EQ(actual.stats.field_elements, expected.stats.field_elements);
  EXPECT_EQ(actual.stats.rounds, expected.stats.rounds);
  EXPECT_EQ(actual.stats.bytes(), expected.stats.bytes());
  EXPECT_DOUBLE_EQ(actual.simulated_seconds, expected.simulated_seconds);
}

TEST(LockstepTransportTest, OutOfOrderReceiveAcrossChannels) {
  // Per-channel FIFO only: channels can be drained in any order relative to
  // each other, as BGW's receive loops do.
  LockstepTransport net(3, 0.0, Field::kWireBytes);
  net.Send(0, 2, {1});
  net.Send(1, 2, {2});
  net.Send(2, 2, {3});
  EXPECT_EQ(net.Receive(2, 2).ValueOrDie(), (Transport::Payload{3}));
  EXPECT_EQ(net.Receive(0, 2).ValueOrDie(), (Transport::Payload{1}));
  EXPECT_EQ(net.Receive(1, 2).ValueOrDie(), (Transport::Payload{2}));
}

TEST(LockstepTransportTest, HasPendingAfterPartialRound) {
  // Mid-round state: after draining only some channels, HasPending must
  // report exactly the undrained ones.
  LockstepTransport net(3, 0.0, Field::kWireBytes);
  for (size_t from = 0; from < 3; ++from) net.Send(from, 0, {from});
  net.EndRound();
  ASSERT_TRUE(net.Receive(0, 0).ok());
  EXPECT_FALSE(net.HasPending(0, 0));
  EXPECT_TRUE(net.HasPending(1, 0));
  EXPECT_TRUE(net.HasPending(2, 0));
  ASSERT_TRUE(net.Receive(1, 0).ok());
  ASSERT_TRUE(net.Receive(2, 0).ok());
  EXPECT_FALSE(net.HasPending(1, 0));
  EXPECT_FALSE(net.HasPending(2, 0));
}

TEST(LockstepTransportTest, ResetReportsDroppedMessages) {
  SimulatedNetwork net(3, 0.0);
  net.Send(0, 1, {1});
  net.Send(0, 1, {2});
  net.Send(2, 0, {3});
  EXPECT_EQ(net.Reset(), 3u);
  EXPECT_FALSE(net.HasPending(0, 1));
  EXPECT_EQ(net.stats().messages, 0u);
  // A clean transport has nothing to drop — and nothing to warn about.
  EXPECT_EQ(net.Reset(), 0u);
}

TEST(LockstepTransportTest, PerChannelAccounting) {
  LockstepTransport net(3, 0.0, Field::kWireBytes);
  net.Send(0, 1, {1, 2});
  net.Send(0, 1, {3});
  net.Send(2, 0, {4});
  net.Send(1, 1, {5});  // Self-send: delivered, never counted.

  const TransportStats snapshot = net.Snapshot();
  ASSERT_EQ(snapshot.channels.size(), 2u);
  EXPECT_EQ(snapshot.channels[0].from, 0u);
  EXPECT_EQ(snapshot.channels[0].to, 1u);
  EXPECT_EQ(snapshot.channels[0].messages, 2u);
  EXPECT_EQ(snapshot.channels[0].field_elements, 3u);
  EXPECT_EQ(snapshot.channels[0].wire_bytes, 3 * Field::kWireBytes);
  EXPECT_EQ(snapshot.channels[1].from, 2u);
  EXPECT_EQ(snapshot.channels[1].to, 0u);
  EXPECT_EQ(snapshot.channels[1].messages, 1u);

  // Channel counters partition the totals.
  uint64_t channel_messages = 0;
  uint64_t channel_elements = 0;
  for (const ChannelStats& channel : snapshot.channels) {
    channel_messages += channel.messages;
    channel_elements += channel.field_elements;
  }
  EXPECT_EQ(channel_messages, snapshot.totals.messages);
  EXPECT_EQ(channel_elements, snapshot.totals.field_elements);
}

TEST(LockstepTransportTest, PhaseAccountingTracksProtocolPhases) {
  LockstepTransport net(4, 0.0, Field::kWireBytes);
  RunBgwProgram(&net);

  const TransportStats snapshot = net.Snapshot();
  std::vector<std::string> labels;
  uint64_t phase_messages = 0;
  for (const PhaseStats& phase : snapshot.phases) {
    labels.push_back(phase.phase);
    phase_messages += phase.traffic.messages;
  }
  // Two input sharings, one Mul, one Open — in first-use order.
  EXPECT_EQ(labels, (std::vector<std::string>{"input", "mul", "open"}));
  // Every message belongs to exactly one phase.
  EXPECT_EQ(phase_messages, snapshot.totals.messages);
  // Input: 2 sharings of (n-1) cross-party sends; Mul and Open: n*(n-1).
  EXPECT_EQ(snapshot.phases[0].traffic.messages, 2u * 3u);
  EXPECT_EQ(snapshot.phases[1].traffic.messages, 4u * 3u);
  EXPECT_EQ(snapshot.phases[2].traffic.messages, 4u * 3u);
}

TEST(LockstepTransportTest, PhaseScopeRestoresPreviousLabel) {
  LockstepTransport net(2, 0.0, Field::kWireBytes);
  net.SetPhase("outer");
  {
    PhaseScope inner(&net, "inner");
    EXPECT_EQ(net.phase(), "inner");
    net.Send(0, 1, {1});
  }
  EXPECT_EQ(net.phase(), "outer");
  net.Send(0, 1, {2});
  const TransportStats snapshot = net.Snapshot();
  ASSERT_EQ(snapshot.phases.size(), 2u);
  EXPECT_EQ(snapshot.phases[0].phase, "outer");
  EXPECT_EQ(snapshot.phases[1].phase, "inner");
  EXPECT_EQ(snapshot.phases[0].traffic.messages, 1u);
  EXPECT_EQ(snapshot.phases[1].traffic.messages, 1u);
  // Null transport is tolerated (protocol code without accounting).
  { PhaseScope no_op(nullptr, "ignored"); }
}

TEST(LockstepTransportTest, WireBytesFollowConfiguredElementWidth) {
  // Byte accounting uses the serialized element width handed to the
  // transport, not sizeof(Element): a 4-byte wire format yields 4-byte
  // accounting on the same payloads.
  LockstepTransport narrow(2, 0.0, /*element_wire_bytes=*/4);
  narrow.Send(0, 1, {1, 2, 3});
  EXPECT_EQ(narrow.stats().bytes(), 12u);

  // The 61-bit field needs ceil(61/8) = 8 bytes per element; that this
  // coincides with sizeof(Element) is an accident of the Mersenne prime.
  static_assert(Field::kWireBytes == (61 + 7) / 8);
  SimulatedNetwork net(2, 0.0);
  net.Send(0, 1, {1, 2, 3});
  EXPECT_EQ(net.stats().bytes(), 3 * Field::kWireBytes);
}

TEST(LockstepTransportTest, SnapshotCarriesClocksAndParties) {
  LockstepTransport net(3, 0.25, Field::kWireBytes);
  net.EndRound();
  net.EndRound();
  const TransportStats snapshot = net.Snapshot();
  EXPECT_EQ(snapshot.num_parties, 3u);
  EXPECT_EQ(snapshot.totals.rounds, 2u);
  EXPECT_DOUBLE_EQ(snapshot.simulated_seconds, 0.5);
  EXPECT_GE(snapshot.wall_seconds, 0.0);
  // Lock-step transports never inject faults.
  EXPECT_EQ(snapshot.drops_injected, 0u);
  EXPECT_EQ(snapshot.retries, 0u);
  EXPECT_EQ(snapshot.receive_timeouts, 0u);
}

}  // namespace
}  // namespace sqm
