#include "vfl/dataset.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "math/linalg.h"

namespace sqm {
namespace {

VflDataset MakeLabelled() {
  VflDataset data;
  data.name = "toy";
  data.features = Matrix{{1, 0}, {0, 2}, {3, 4}, {0.5, 0.5}, {2, 2}};
  data.labels = {0, 1, 1, 0, 1};
  return data;
}

TEST(DatasetTest, MaxRecordNorm) {
  Matrix x{{3, 4}, {1, 0}};
  EXPECT_DOUBLE_EQ(MaxRecordNorm(x), 5.0);
}

TEST(DatasetTest, NormalizeScalesGlobally) {
  Matrix x{{3, 4}, {1, 0}};
  NormalizeRecords(x, 1.0);
  EXPECT_NEAR(MaxRecordNorm(x), 1.0, 1e-12);
  // Global scaling preserves ratios.
  EXPECT_NEAR(x(0, 0) / x(0, 1), 0.75, 1e-12);
  EXPECT_NEAR(Norm2(x.Row(1)), 0.2, 1e-12);
}

TEST(DatasetTest, NormalizeNoOpWhenWithinBound) {
  Matrix x{{0.1, 0.1}};
  const Matrix before = x;
  NormalizeRecords(x, 1.0);
  EXPECT_EQ(x, before);
}

TEST(DatasetTest, SplitPreservesRecordsAndLabels) {
  const VflDataset data = MakeLabelled();
  const TrainTestSplit split = SplitTrainTest(data, 0.6, 1).ValueOrDie();
  EXPECT_EQ(split.train.num_records(), 3u);
  EXPECT_EQ(split.test.num_records(), 2u);
  EXPECT_EQ(split.train.labels.size(), 3u);
  EXPECT_EQ(split.test.labels.size(), 2u);

  // Every original row appears exactly once across the two parts, with its
  // label attached.
  std::multiset<double> original, recovered;
  for (size_t i = 0; i < data.num_records(); ++i) {
    original.insert(data.features(i, 0) * 1000 + data.labels[i]);
  }
  for (size_t i = 0; i < split.train.num_records(); ++i) {
    recovered.insert(split.train.features(i, 0) * 1000 +
                     split.train.labels[i]);
  }
  for (size_t i = 0; i < split.test.num_records(); ++i) {
    recovered.insert(split.test.features(i, 0) * 1000 +
                     split.test.labels[i]);
  }
  EXPECT_EQ(original, recovered);
}

TEST(DatasetTest, SplitIsDeterministicPerSeed) {
  const VflDataset data = MakeLabelled();
  const TrainTestSplit a = SplitTrainTest(data, 0.6, 5).ValueOrDie();
  const TrainTestSplit b = SplitTrainTest(data, 0.6, 5).ValueOrDie();
  EXPECT_EQ(a.train.features, b.train.features);
  const TrainTestSplit c = SplitTrainTest(data, 0.6, 6).ValueOrDie();
  // Different seed should (almost surely) shuffle differently.
  EXPECT_FALSE(a.train.features == c.train.features);
}

TEST(DatasetTest, SplitValidatesFraction) {
  const VflDataset data = MakeLabelled();
  EXPECT_FALSE(SplitTrainTest(data, 0.0, 1).ok());
  EXPECT_FALSE(SplitTrainTest(data, 1.0, 1).ok());
}

TEST(DatasetTest, SubsampleCountAndUniqueness) {
  const VflDataset data = MakeLabelled();
  const VflDataset sub = SubsampleRecords(data, 3, 2).ValueOrDie();
  EXPECT_EQ(sub.num_records(), 3u);
  EXPECT_EQ(sub.labels.size(), 3u);
  // Rows must be distinct originals.
  std::set<double> keys;
  for (size_t i = 0; i < 3; ++i) keys.insert(sub.features(i, 0));
  EXPECT_EQ(keys.size(), 3u);
}

TEST(DatasetTest, SubsampleValidatesCount) {
  const VflDataset data = MakeLabelled();
  EXPECT_FALSE(SubsampleRecords(data, 0, 1).ok());
  EXPECT_FALSE(SubsampleRecords(data, 6, 1).ok());
}

}  // namespace
}  // namespace sqm
