// TcpTransport over real loopback sockets, three transports in one
// process (the same adoption path the coordinator uses: pre-bound port-0
// listeners handed over by fd, so no test run can lose a bind race).
// Verifies the Transport seam contract — delivery, ordering, self-sends,
// the counting convention, Reset drain — plus the TCP-only surface:
// graceful goodbye vs. timeout, and PeerDead.

#include "net/tcp/tcp_transport.h"

#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/tcp/socket.h"

namespace {

using sqm::net::ListenOn;
using sqm::net::LocalPort;
using sqm::net::Socket;
using sqm::net::TcpSupported;
using sqm::TcpPeer;
using sqm::TcpTransport;
using sqm::TcpTransportOptions;
using Payload = sqm::Transport::Payload;

/// Builds an n-party localhost mesh. Listeners are pre-bound on port 0
/// and adopted via listen_fd; Create blocks until the mesh is up, so the
/// n transports must be created concurrently.
std::vector<std::unique_ptr<TcpTransport>> MakeMesh(
    size_t n, double receive_timeout_seconds) {
  std::vector<Socket> listeners;
  std::vector<TcpPeer> roster(n);
  for (size_t i = 0; i < n; ++i) {
    sqm::Result<Socket> listener = ListenOn("127.0.0.1", 0);
    EXPECT_TRUE(listener.ok()) << listener.status().ToString();
    sqm::Result<uint16_t> port = LocalPort(listener.ValueOrDie());
    EXPECT_TRUE(port.ok()) << port.status().ToString();
    roster[i] = {"127.0.0.1", port.ValueOrDie()};
    listeners.push_back(std::move(listener.ValueOrDie()));
  }

  std::vector<std::unique_ptr<TcpTransport>> transports(n);
  std::vector<std::string> errors(n);
  std::vector<std::thread> threads;
  for (size_t i = 0; i < n; ++i) {
    TcpTransportOptions options;
    options.local_party = i;
    options.peers = roster;
    options.session_key = 0xfeedfacecafeull;
    options.run_id = 9;
    options.receive_timeout_seconds = receive_timeout_seconds;
    options.connect_timeout_seconds = 10.0;
    options.max_reconnect_attempts = 2;
    options.reconnect_backoff_seconds = 0.05;
    options.listen_fd = listeners[i].Release();
    threads.emplace_back([&transports, &errors, options, i] {
      sqm::Result<std::unique_ptr<TcpTransport>> transport =
          TcpTransport::Create(options);
      if (transport.ok()) {
        transports[i] = std::move(transport.ValueOrDie());
      } else {
        errors[i] = transport.status().ToString();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NE(transports[i], nullptr)
        << "party " << i << " mesh setup failed: " << errors[i];
  }
  return transports;
}

class TcpTransportTest : public testing::Test {
 protected:
  void SetUp() override {
    if (!TcpSupported()) GTEST_SKIP() << "no POSIX sockets on this platform";
    mesh_ = MakeMesh(3, /*receive_timeout_seconds=*/0.3);
    for (const auto& transport : mesh_) {
      ASSERT_NE(transport, nullptr);
    }
  }

  void TearDown() override {
    for (const auto& transport : mesh_) {
      if (transport) transport->Shutdown();
    }
  }

  std::vector<std::unique_ptr<TcpTransport>> mesh_;
};

TEST_F(TcpTransportTest, DeliversAcrossSocketsInOrder) {
  mesh_[0]->Send(0, 1, {1, 2, 3});
  mesh_[0]->Send(0, 1, {4});
  sqm::Result<Payload> first = mesh_[1]->Receive(0, 1);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first.ValueOrDie(), Payload({1, 2, 3}));
  sqm::Result<Payload> second = mesh_[1]->Receive(0, 1);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second.ValueOrDie(), Payload({4}));
}

TEST_F(TcpTransportTest, SelfSendBypassesTheWire) {
  mesh_[2]->Send(2, 2, {7, 8});
  ASSERT_TRUE(mesh_[2]->HasPending(2, 2));
  sqm::Result<Payload> got = mesh_[2]->Receive(2, 2);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.ValueOrDie(), Payload({7, 8}));
  // Counting convention: self-sends appear in no statistic.
  EXPECT_EQ(mesh_[2]->stats().messages, 0u);
  EXPECT_EQ(mesh_[2]->stats().wire_bytes, 0u);
}

TEST_F(TcpTransportTest, SendsCountAtTheSenderReceivesNever) {
  mesh_[0]->Send(0, 1, {1, 2, 3});
  mesh_[0]->Send(0, 2, {4, 5});
  sqm::Result<Payload> got = mesh_[1]->Receive(0, 1);
  ASSERT_TRUE(got.ok());

  const sqm::NetworkStats sender = mesh_[0]->stats();
  EXPECT_EQ(sender.messages, 2u);
  EXPECT_EQ(sender.field_elements, 5u);
  EXPECT_EQ(sender.wire_bytes, 5u * mesh_[0]->element_wire_bytes());
  // The receiving side records nothing for deliveries.
  EXPECT_EQ(mesh_[1]->stats().messages, 0u);
  EXPECT_EQ(mesh_[2]->stats().messages, 0u);
}

TEST_F(TcpTransportTest, ReceiveTimesOutWhenNothingArrives) {
  sqm::Result<Payload> got = mesh_[0]->Receive(1, 0);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), sqm::StatusCode::kDeadlineExceeded);
}

TEST_F(TcpTransportTest, ResetDrainsPendingAndZeroesCounters) {
  mesh_[0]->Send(0, 1, {1});
  mesh_[0]->Send(0, 1, {2});
  // Wait until both frames are actually in party 1's inbox.
  while (!mesh_[1]->HasPending(0, 1)) {
    std::this_thread::yield();
  }
  sqm::Result<Payload> got = mesh_[1]->Receive(0, 1);
  ASSERT_TRUE(got.ok());
  while (!mesh_[1]->HasPending(0, 1)) {
    std::this_thread::yield();
  }
  EXPECT_EQ(mesh_[1]->Reset(), 1u);
  EXPECT_FALSE(mesh_[1]->HasPending(0, 1));
  EXPECT_EQ(mesh_[0]->Reset(), 0u);
  EXPECT_EQ(mesh_[0]->stats().messages, 0u);
}

TEST_F(TcpTransportTest, GracefulGoodbyeMarksPeerDeparted) {
  mesh_[2]->Shutdown();
  // After the goodbye frame lands, receives from party 2 fail
  // kUnavailable (positively dead) rather than kDeadlineExceeded
  // (might still arrive), and PeerDead turns true.
  sqm::Result<Payload> got = mesh_[0]->Receive(2, 0);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), sqm::StatusCode::kUnavailable);
  EXPECT_TRUE(mesh_[0]->PeerDead(2));
  // Party 1 learns the same way once it looks at the link.
  sqm::Result<Payload> other = mesh_[1]->Receive(2, 1);
  ASSERT_FALSE(other.ok());
  EXPECT_EQ(other.status().code(), sqm::StatusCode::kUnavailable);
  EXPECT_TRUE(mesh_[1]->PeerDead(2));

  // The surviving pair keeps working.
  mesh_[0]->Send(0, 1, {11});
  sqm::Result<Payload> alive = mesh_[1]->Receive(0, 1);
  ASSERT_TRUE(alive.ok());
  EXPECT_EQ(alive.ValueOrDie(), Payload({11}));
}

TEST_F(TcpTransportTest, MessagesSentBeforeGoodbyeStillDeliver) {
  mesh_[2]->Send(2, 0, {31, 32});
  mesh_[2]->Shutdown();
  sqm::Result<Payload> got = mesh_[0]->Receive(2, 0);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.ValueOrDie(), Payload({31, 32}));
}

TEST(TcpTransportMesh, FivePartyMeshComesUp) {
  if (!TcpSupported()) GTEST_SKIP() << "no POSIX sockets on this platform";
  auto mesh = MakeMesh(5, 0.3);
  for (const auto& transport : mesh) ASSERT_NE(transport, nullptr);
  // Every ordered pair exchanges one message.
  for (size_t from = 0; from < 5; ++from) {
    for (size_t to = 0; to < 5; ++to) {
      mesh[from]->Send(from, to, {from * 10 + to});
    }
  }
  for (size_t from = 0; from < 5; ++from) {
    for (size_t to = 0; to < 5; ++to) {
      sqm::Result<Payload> got = mesh[to]->Receive(from, to);
      ASSERT_TRUE(got.ok()) << "(" << from << "->" << to << "): "
                            << got.status().ToString();
      EXPECT_EQ(got.ValueOrDie(), Payload({from * 10 + to}));
    }
  }
  for (const auto& transport : mesh) transport->Shutdown();
}

}  // namespace
