// TcpTransport over real loopback sockets, three transports in one
// process (the same adoption path the coordinator uses: pre-bound port-0
// listeners handed over by fd, so no test run can lose a bind race).
// Verifies the Transport seam contract — delivery, ordering, self-sends,
// the counting convention, Reset drain — plus the TCP-only surface:
// graceful goodbye vs. timeout, and PeerDead.

#include "net/tcp/tcp_transport.h"

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/tcp/frame.h"
#include "net/tcp/socket.h"

namespace {

using sqm::net::ListenOn;
using sqm::net::LocalPort;
using sqm::net::Socket;
using sqm::net::ConnectTo;
using sqm::net::TcpSupported;
using sqm::TcpPeer;
using sqm::TcpTransport;
using sqm::TcpTransportOptions;
using Payload = sqm::Transport::Payload;

/// Builds an n-party localhost mesh. Listeners are pre-bound on port 0
/// and adopted via listen_fd; Create blocks until the mesh is up, so the
/// n transports must be created concurrently.
std::vector<std::unique_ptr<TcpTransport>> MakeMesh(
    size_t n, double receive_timeout_seconds) {
  std::vector<Socket> listeners;
  std::vector<TcpPeer> roster(n);
  for (size_t i = 0; i < n; ++i) {
    sqm::Result<Socket> listener = ListenOn("127.0.0.1", 0);
    EXPECT_TRUE(listener.ok()) << listener.status().ToString();
    sqm::Result<uint16_t> port = LocalPort(listener.ValueOrDie());
    EXPECT_TRUE(port.ok()) << port.status().ToString();
    roster[i] = {"127.0.0.1", port.ValueOrDie()};
    listeners.push_back(std::move(listener.ValueOrDie()));
  }

  std::vector<std::unique_ptr<TcpTransport>> transports(n);
  std::vector<std::string> errors(n);
  std::vector<std::thread> threads;
  for (size_t i = 0; i < n; ++i) {
    TcpTransportOptions options;
    options.local_party = i;
    options.peers = roster;
    options.session_key = 0xfeedfacecafeull;
    options.run_id = 9;
    options.receive_timeout_seconds = receive_timeout_seconds;
    options.connect_timeout_seconds = 10.0;
    options.max_reconnect_attempts = 2;
    options.reconnect_backoff_seconds = 0.05;
    options.listen_fd = listeners[i].Release();
    threads.emplace_back([&transports, &errors, options, i] {
      sqm::Result<std::unique_ptr<TcpTransport>> transport =
          TcpTransport::Create(options);
      if (transport.ok()) {
        transports[i] = std::move(transport.ValueOrDie());
      } else {
        errors[i] = transport.status().ToString();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NE(transports[i], nullptr)
        << "party " << i << " mesh setup failed: " << errors[i];
  }
  return transports;
}

class TcpTransportTest : public testing::Test {
 protected:
  void SetUp() override {
    if (!TcpSupported()) GTEST_SKIP() << "no POSIX sockets on this platform";
    mesh_ = MakeMesh(3, /*receive_timeout_seconds=*/0.3);
    for (const auto& transport : mesh_) {
      ASSERT_NE(transport, nullptr);
    }
  }

  void TearDown() override {
    for (const auto& transport : mesh_) {
      if (transport) transport->Shutdown();
    }
  }

  std::vector<std::unique_ptr<TcpTransport>> mesh_;
};

TEST_F(TcpTransportTest, DeliversAcrossSocketsInOrder) {
  mesh_[0]->Send(0, 1, {1, 2, 3});
  mesh_[0]->Send(0, 1, {4});
  sqm::Result<Payload> first = mesh_[1]->Receive(0, 1);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first.ValueOrDie(), Payload({1, 2, 3}));
  sqm::Result<Payload> second = mesh_[1]->Receive(0, 1);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second.ValueOrDie(), Payload({4}));
}

TEST_F(TcpTransportTest, SelfSendBypassesTheWire) {
  mesh_[2]->Send(2, 2, {7, 8});
  ASSERT_TRUE(mesh_[2]->HasPending(2, 2));
  sqm::Result<Payload> got = mesh_[2]->Receive(2, 2);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.ValueOrDie(), Payload({7, 8}));
  // Counting convention: self-sends appear in no statistic.
  EXPECT_EQ(mesh_[2]->stats().messages, 0u);
  EXPECT_EQ(mesh_[2]->stats().wire_bytes, 0u);
}

TEST_F(TcpTransportTest, SendsCountAtTheSenderReceivesNever) {
  mesh_[0]->Send(0, 1, {1, 2, 3});
  mesh_[0]->Send(0, 2, {4, 5});
  sqm::Result<Payload> got = mesh_[1]->Receive(0, 1);
  ASSERT_TRUE(got.ok());

  const sqm::NetworkStats sender = mesh_[0]->stats();
  EXPECT_EQ(sender.messages, 2u);
  EXPECT_EQ(sender.field_elements, 5u);
  EXPECT_EQ(sender.wire_bytes, 5u * mesh_[0]->element_wire_bytes());
  // The receiving side records nothing for deliveries.
  EXPECT_EQ(mesh_[1]->stats().messages, 0u);
  EXPECT_EQ(mesh_[2]->stats().messages, 0u);
}

TEST_F(TcpTransportTest, ReceiveTimesOutWhenNothingArrives) {
  sqm::Result<Payload> got = mesh_[0]->Receive(1, 0);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), sqm::StatusCode::kDeadlineExceeded);
}

TEST_F(TcpTransportTest, ResetDrainsPendingAndZeroesCounters) {
  mesh_[0]->Send(0, 1, {1});
  mesh_[0]->Send(0, 1, {2});
  // Wait until both frames are actually in party 1's inbox.
  while (!mesh_[1]->HasPending(0, 1)) {
    std::this_thread::yield();
  }
  sqm::Result<Payload> got = mesh_[1]->Receive(0, 1);
  ASSERT_TRUE(got.ok());
  while (!mesh_[1]->HasPending(0, 1)) {
    std::this_thread::yield();
  }
  EXPECT_EQ(mesh_[1]->Reset(), 1u);
  EXPECT_FALSE(mesh_[1]->HasPending(0, 1));
  EXPECT_EQ(mesh_[0]->Reset(), 0u);
  EXPECT_EQ(mesh_[0]->stats().messages, 0u);
}

TEST_F(TcpTransportTest, GracefulGoodbyeMarksPeerDeparted) {
  mesh_[2]->Shutdown();
  // After the goodbye frame lands, receives from party 2 fail
  // kUnavailable (positively dead) rather than kDeadlineExceeded
  // (might still arrive), and PeerDead turns true.
  sqm::Result<Payload> got = mesh_[0]->Receive(2, 0);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), sqm::StatusCode::kUnavailable);
  EXPECT_TRUE(mesh_[0]->PeerDead(2));
  // Party 1 learns the same way once it looks at the link.
  sqm::Result<Payload> other = mesh_[1]->Receive(2, 1);
  ASSERT_FALSE(other.ok());
  EXPECT_EQ(other.status().code(), sqm::StatusCode::kUnavailable);
  EXPECT_TRUE(mesh_[1]->PeerDead(2));

  // The surviving pair keeps working.
  mesh_[0]->Send(0, 1, {11});
  sqm::Result<Payload> alive = mesh_[1]->Receive(0, 1);
  ASSERT_TRUE(alive.ok());
  EXPECT_EQ(alive.ValueOrDie(), Payload({11}));
}

TEST_F(TcpTransportTest, MessagesSentBeforeGoodbyeStillDeliver) {
  mesh_[2]->Send(2, 0, {31, 32});
  mesh_[2]->Shutdown();
  sqm::Result<Payload> got = mesh_[0]->Receive(2, 0);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.ValueOrDie(), Payload({31, 32}));
}

TEST(TcpTransportMesh, FivePartyMeshComesUp) {
  if (!TcpSupported()) GTEST_SKIP() << "no POSIX sockets on this platform";
  auto mesh = MakeMesh(5, 0.3);
  for (const auto& transport : mesh) ASSERT_NE(transport, nullptr);
  // Every ordered pair exchanges one message.
  for (size_t from = 0; from < 5; ++from) {
    for (size_t to = 0; to < 5; ++to) {
      mesh[from]->Send(from, to, {from * 10 + to});
    }
  }
  for (size_t from = 0; from < 5; ++from) {
    for (size_t to = 0; to < 5; ++to) {
      sqm::Result<Payload> got = mesh[to]->Receive(from, to);
      ASSERT_TRUE(got.ok()) << "(" << from << "->" << to << "): "
                            << got.status().ToString();
      EXPECT_EQ(got.ValueOrDie(), Payload({from * 10 + to}));
    }
  }
  for (const auto& transport : mesh) transport->Shutdown();
}

// ---------------------------------------------------------------------------
// Rejoin protocol: replay rejection across incarnations.
//
// The restarted-party handshake resets the per-link sequence space, which
// is exactly the window a replay attack would aim for: capture a data
// frame before the crash, present it after the rejoin when last_recv_seq
// is back to 0. The incarnation field (MAC-covered, tcp_frame_test) must
// close that window. The crashing peer is driven over raw sockets
// speaking the wire protocol, because a real TcpTransport says goodbye in
// its destructor — kill -9 never does.
// ---------------------------------------------------------------------------

class FakePeerRejoinTest : public testing::Test {
 protected:
  static constexpr uint64_t kKey = 0x5eed5e551044ull;
  static constexpr uint64_t kRunId = 77;

  void SetUp() override {
    if (!TcpSupported()) GTEST_SKIP() << "no POSIX sockets on this platform";
    sqm::Result<Socket> listener = ListenOn("127.0.0.1", 0);
    ASSERT_TRUE(listener.ok()) << listener.status().ToString();
    sqm::Result<uint16_t> port = LocalPort(listener.ValueOrDie());
    ASSERT_TRUE(port.ok()) << port.status().ToString();
    port_ = port.ValueOrDie();

    TcpTransportOptions options;
    options.local_party = 0;
    // Party 1 is the fake peer; by the acceptor convention (higher index
    // dials lower) party 0 never dials it, so its roster port is unused.
    options.peers = {{"127.0.0.1", port_}, {"127.0.0.1", 1}};
    options.session_key = kKey;
    options.run_id = kRunId;
    options.receive_timeout_seconds = 0.5;
    options.connect_timeout_seconds = 10.0;
    options.max_reconnect_attempts = 2;
    options.reconnect_backoff_seconds = 0.05;
    // Generous rejoin allowance so the link waits for our staged
    // reconnects instead of declaring the fake peer dead mid-test.
    options.rejoin_window_seconds = 20.0;
    options.listen_fd = listener.ValueOrDie().Release();

    // Create blocks until the mesh is up (fake party 1's first handshake).
    creator_ = std::thread([this, options] {
      sqm::Result<std::unique_ptr<TcpTransport>> transport =
          TcpTransport::Create(options);
      if (transport.ok()) {
        transport_ = std::move(transport.ValueOrDie());
      } else {
        error_ = transport.status().ToString();
      }
    });
  }

  void TearDown() override {
    if (creator_.joinable()) creator_.join();
    if (transport_) transport_->Shutdown();
  }

  /// Dials party 0 as party 1 and completes the hello/ack handshake under
  /// `incarnation`. Returns the connected socket.
  Socket Handshake(uint32_t incarnation) {
    sqm::Result<Socket> dial = ConnectTo(
        "127.0.0.1", port_,
        std::chrono::steady_clock::now() + std::chrono::seconds(5));
    EXPECT_TRUE(dial.ok()) << dial.status().ToString();
    Socket sock = std::move(dial.ValueOrDie());

    sqm::net::Frame hello;
    hello.type = sqm::net::FrameType::kHello;
    hello.from = 1;
    hello.to = 0;
    hello.incarnation = incarnation;
    hello.run_id = kRunId;
    const std::vector<uint8_t> wire = sqm::net::EncodeFrame(hello, kKey);
    EXPECT_TRUE(sqm::net::WriteAll(sock, wire.data(), wire.size()).ok());

    uint8_t len_bytes[4];
    EXPECT_TRUE(sqm::net::ReadAll(sock, len_bytes, 4).ok());
    uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<uint32_t>(len_bytes[i]) << (8 * i);
    }
    std::vector<uint8_t> body(len);
    EXPECT_TRUE(sqm::net::ReadAll(sock, body.data(), len).ok());
    sqm::Result<sqm::net::Frame> ack =
        sqm::net::DecodeFrame(body.data(), len, kKey);
    EXPECT_TRUE(ack.ok()) << ack.status().ToString();
    if (ack.ok()) {
      EXPECT_EQ(ack.ValueOrDie().type, sqm::net::FrameType::kHelloAck);
      EXPECT_EQ(ack.ValueOrDie().from, 0u);
      EXPECT_EQ(ack.ValueOrDie().to, 1u);
    }
    return sock;
  }

  /// Encoded wire bytes of a party-1 -> party-0 data frame.
  std::vector<uint8_t> DataFrame(uint32_t incarnation, uint64_t seq,
                                 uint64_t word) {
    sqm::net::Frame frame;
    frame.type = sqm::net::FrameType::kData;
    frame.from = 1;
    frame.to = 0;
    frame.incarnation = incarnation;
    frame.seq = seq;
    frame.run_id = kRunId;
    frame.phase = "mul";
    frame.payload = {word};
    return sqm::net::EncodeFrame(frame, kKey);
  }

  uint16_t port_ = 0;
  std::unique_ptr<TcpTransport> transport_;
  std::string error_;
  std::thread creator_;
};

TEST_F(FakePeerRejoinTest, ReplayedPreCrashFrameIsRejectedAfterRejoin) {
  Socket first = Handshake(/*incarnation=*/0);
  creator_.join();
  ASSERT_NE(transport_, nullptr) << error_;

  // Incarnation 0 delivers normally.
  const std::vector<uint8_t> fresh = DataFrame(0, /*seq=*/1, 5);
  ASSERT_TRUE(sqm::net::WriteAll(first, fresh.data(), fresh.size()).ok());
  sqm::Result<Payload> got = transport_->Receive(1, 0);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.ValueOrDie(), Payload({5}));

  // "Capture" the next frame the old incarnation would have sent, then
  // crash: abrupt close, no goodbye. The link goes down, not dead.
  const std::vector<uint8_t> captured = DataFrame(0, /*seq=*/2, 6);
  first.Close();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(transport_->PeerDead(1));

  // Rejoin as incarnation 1. The handshake resets the replay state
  // (last_recv_seq back to 0) — the captured frame's seq 2 would sail
  // through a sequence-only check. Replay it.
  Socket rejoined = Handshake(/*incarnation=*/1);
  ASSERT_TRUE(
      sqm::net::WriteAll(rejoined, captured.data(), captured.size()).ok());

  // The stale-incarnation frame must NOT deliver (the receiver severs the
  // link instead), and the severance is survivable, not a death.
  sqm::Result<Payload> replay = transport_->Receive(1, 0);
  ASSERT_FALSE(replay.ok()) << "pre-crash frame was delivered after rejoin";
  EXPECT_EQ(replay.status().code(), sqm::StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(transport_->PeerDead(1));

  // Reconnect once more under the same incarnation and send a legitimate
  // frame in the new sequence space: the link recovers end to end.
  Socket again = Handshake(/*incarnation=*/1);
  const std::vector<uint8_t> after = DataFrame(1, /*seq=*/1, 7);
  ASSERT_TRUE(sqm::net::WriteAll(again, after.data(), after.size()).ok());
  sqm::Result<Payload> post = transport_->Receive(1, 0);
  ASSERT_TRUE(post.ok()) << post.status().ToString();
  EXPECT_EQ(post.ValueOrDie(), Payload({7}));
  EXPECT_FALSE(transport_->PeerDead(1));
}

TEST_F(FakePeerRejoinTest, StaleIncarnationHandshakeIsRefused) {
  Socket first = Handshake(/*incarnation=*/1);
  creator_.join();
  ASSERT_NE(transport_, nullptr) << error_;
  first.Close();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // A zombie process from before the restart (incarnation 0 < 1) dials
  // in: the acceptor must refuse the hello — no ack, just a dead socket.
  sqm::Result<Socket> dial = ConnectTo(
      "127.0.0.1", port_,
      std::chrono::steady_clock::now() + std::chrono::seconds(5));
  ASSERT_TRUE(dial.ok()) << dial.status().ToString();
  Socket zombie = std::move(dial.ValueOrDie());
  sqm::net::Frame hello;
  hello.type = sqm::net::FrameType::kHello;
  hello.from = 1;
  hello.to = 0;
  hello.incarnation = 0;
  hello.run_id = kRunId;
  const std::vector<uint8_t> wire = sqm::net::EncodeFrame(hello, kKey);
  ASSERT_TRUE(sqm::net::WriteAll(zombie, wire.data(), wire.size()).ok());

  uint8_t len_bytes[4];
  EXPECT_FALSE(sqm::net::ReadAll(zombie, len_bytes, 4).ok())
      << "acceptor acked a stale-incarnation hello";

  // The real incarnation can still come back afterwards.
  Socket back = Handshake(/*incarnation=*/1);
  const std::vector<uint8_t> frame = DataFrame(1, /*seq=*/1, 9);
  ASSERT_TRUE(sqm::net::WriteAll(back, frame.data(), frame.size()).ok());
  sqm::Result<Payload> got = transport_->Receive(1, 0);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.ValueOrDie(), Payload({9}));
}

}  // namespace
