// Adversarial conformance tests: every single-message wire tamper against
// BGW / SecAgg / the SQM pipeline must either surface as a descriptive
// error Status (kIntegrityViolation or a transport failure) or provably
// leave the opened release unchanged. The tamper policies run through the
// ByzantineInterceptor man-in-the-middle decorator on the Transport seam,
// so the protocol code under test is exactly the production code.

#include "testing/tamper.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/report_io.h"
#include "core/sqm.h"
#include "mpc/field.h"
#include "mpc/protocol.h"
#include "mpc/secagg.h"
#include "mpc/shamir.h"
#include "net/lockstep.h"
#include "testing/transcript.h"

namespace sqm {
namespace {

using testing::ByzantineInterceptor;
using testing::TamperPolicy;
using testing::TamperTarget;
using testing::Transcript;
using testing::TranscriptRecorder;

constexpr size_t kParties = 5;
constexpr size_t kThreshold = 2;

const std::vector<int64_t> kInputA = {3, -4, 5};
const std::vector<int64_t> kInputB = {-7, 2, 9};
// Element-wise product and its sum, what the probe releases.
const std::vector<int64_t> kExpected = {-21, -8, 45, 16};

/// The conformance probe: checked input sharing for two parties, a batched
/// multiplication (verified at exit when verify_sharings is on), an inner
/// product, and checked opens of both results.
Result<std::vector<int64_t>> RunCheckedProbe(
    MessageInterceptor* interceptor) {
  LockstepTransport network(kParties, 0.0, Field::kWireBytes);
  network.SetInterceptor(interceptor);
  BgwProtocol protocol(ShamirScheme(kParties, kThreshold), &network, 77);
  protocol.set_verify_sharings(true);
  SQM_ASSIGN_OR_RETURN(
      const SharedVector a,
      protocol.ShareFromPartyChecked(0, Field::EncodeVector(kInputA)));
  SQM_ASSIGN_OR_RETURN(
      const SharedVector b,
      protocol.ShareFromPartyChecked(1, Field::EncodeVector(kInputB)));
  SQM_ASSIGN_OR_RETURN(const SharedVector prod, protocol.Mul(a, b));
  SQM_ASSIGN_OR_RETURN(const SharedVector ip, protocol.InnerProduct(a, b));
  SQM_ASSIGN_OR_RETURN(std::vector<int64_t> outputs,
                       protocol.OpenSignedChecked(prod));
  SQM_ASSIGN_OR_RETURN(const std::vector<int64_t> ip_open,
                       protocol.OpenSignedChecked(ip));
  outputs.insert(outputs.end(), ip_open.begin(), ip_open.end());
  network.SetInterceptor(nullptr);
  return outputs;
}

/// Same probe through the legacy unchecked entry points (no verification),
/// to document what a tamper does when nobody checks.
std::vector<int64_t> RunUncheckedProbe(MessageInterceptor* interceptor) {
  LockstepTransport network(kParties, 0.0, Field::kWireBytes);
  network.SetInterceptor(interceptor);
  BgwProtocol protocol(ShamirScheme(kParties, kThreshold), &network, 77);
  const SharedVector a =
      protocol.ShareFromParty(0, Field::EncodeVector(kInputA));
  const SharedVector b =
      protocol.ShareFromParty(1, Field::EncodeVector(kInputB));
  const SharedVector prod = protocol.Mul(a, b).ValueOrDie();
  const SharedVector ip = protocol.InnerProduct(a, b).ValueOrDie();
  std::vector<int64_t> outputs = protocol.OpenSigned(prod);
  const std::vector<int64_t> ip_open = protocol.OpenSigned(ip);
  outputs.insert(outputs.end(), ip_open.begin(), ip_open.end());
  network.SetInterceptor(nullptr);
  return outputs;
}

TEST(AdversaryTest, CleanCheckedProbeReleasesExpectedValues) {
  const auto result = RunCheckedProbe(nullptr);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.ValueOrDie(), kExpected);
}

TEST(AdversaryTest, AdditiveTamperOnInputIsDetected) {
  TamperPolicy policy;
  policy.kind = TamperPolicy::Kind::kAdditive;
  policy.target.phase = "input";
  policy.magnitude = 1;  // The smallest possible perturbation.
  ByzantineInterceptor byzantine({policy});
  const auto result = RunCheckedProbe(&byzantine);
  EXPECT_EQ(byzantine.total_applications(), 1u);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIntegrityViolation)
      << result.status().ToString();
}

TEST(AdversaryTest, AdditiveTamperSilentlyCorruptsWithoutVerification) {
  // The motivation for the conformance layer: the identical tamper against
  // the legacy unchecked path changes the release and nobody notices.
  TamperPolicy policy;
  policy.kind = TamperPolicy::Kind::kAdditive;
  policy.target.phase = "input";
  policy.magnitude = 1;
  ByzantineInterceptor byzantine({policy});
  const std::vector<int64_t> outputs = RunUncheckedProbe(&byzantine);
  EXPECT_EQ(byzantine.total_applications(), 1u);
  EXPECT_NE(outputs, kExpected);
}

TEST(AdversaryTest, BitFlipOnMulSubShareIsDetected) {
  TamperPolicy policy;
  policy.kind = TamperPolicy::Kind::kBitFlip;
  policy.target.phase = "mul";
  policy.bit = 13;
  ByzantineInterceptor byzantine({policy});
  const auto result = RunCheckedProbe(&byzantine);
  EXPECT_EQ(byzantine.total_applications(), 1u);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIntegrityViolation)
      << result.status().ToString();
}

TEST(AdversaryTest, HighBitFlipOutsideFieldRangeIsDetected) {
  // Flipping bit 62 yields a value above the modulus — not even a valid
  // residue. The checked paths must reject, not crash or wrap silently.
  TamperPolicy policy;
  policy.kind = TamperPolicy::Kind::kBitFlip;
  policy.target.phase = "open";
  policy.bit = 62;
  ByzantineInterceptor byzantine({policy});
  const auto result = RunCheckedProbe(&byzantine);
  EXPECT_EQ(byzantine.total_applications(), 1u);
  ASSERT_FALSE(result.ok());
}

TEST(AdversaryTest, WrongDegreeDealingIsDetected) {
  // Dealer 0 ships every recipient a share of p(x) + c*x^3 — a consistent
  // degree-3 polynomial, one degree above the threshold. Its own (local)
  // share still lies on p, so the five points fit no single degree-<=2
  // polynomial.
  TamperPolicy policy;
  policy.kind = TamperPolicy::Kind::kWrongDegree;
  policy.target.phase = "input";
  policy.target.from = 0;
  policy.degree = kThreshold + 1;
  policy.magnitude = 12345;
  policy.max_applications = TamperPolicy::kAnyCount;
  ByzantineInterceptor byzantine({policy});
  const auto result = RunCheckedProbe(&byzantine);
  EXPECT_EQ(byzantine.total_applications(), kParties - 1);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIntegrityViolation)
      << result.status().ToString();
}

TEST(AdversaryTest, EquivocationOnOpenIsDetected) {
  // Party 2 broadcasts recipient-dependent share vectors during the open.
  // OpenChecked collects every recipient's copy and must call it out.
  TamperPolicy policy;
  policy.kind = TamperPolicy::Kind::kEquivocate;
  policy.target.phase = "open";
  policy.target.from = 2;
  policy.magnitude = 99;
  policy.max_applications = TamperPolicy::kAnyCount;
  ByzantineInterceptor byzantine({policy});
  const auto result = RunCheckedProbe(&byzantine);
  EXPECT_GE(byzantine.total_applications(), kParties - 1);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIntegrityViolation)
      << result.status().ToString();
  EXPECT_NE(result.status().message().find("equivocation"),
            std::string::npos)
      << result.status().ToString();
}

TEST(AdversaryTest, SwallowedMulMessageFailsFast) {
  TamperPolicy policy;
  policy.kind = TamperPolicy::Kind::kSwallow;
  policy.target.phase = "mul";
  ByzantineInterceptor byzantine({policy});
  const auto result = RunCheckedProbe(&byzantine);
  EXPECT_EQ(byzantine.total_applications(), 1u);
  ASSERT_FALSE(result.ok());  // Lockstep receive hard-fails, surfaced as
                              // a Status — never an abort.
}

TEST(AdversaryTest, SwallowedInputMessageFailsFast) {
  TamperPolicy policy;
  policy.kind = TamperPolicy::Kind::kSwallow;
  policy.target.phase = "input";
  ByzantineInterceptor byzantine({policy});
  const auto result = RunCheckedProbe(&byzantine);
  ASSERT_FALSE(result.ok());
}

TEST(AdversaryTest, ReplayedInputMessageIsDetectedDownstream) {
  // The duplicate sits at the head of its channel queue; the next phase's
  // receive on that channel dequeues the stale dealing instead of the
  // fresh sub-share, which the Mul-exit consistency check rejects.
  TamperPolicy policy;
  policy.kind = TamperPolicy::Kind::kReplay;
  policy.target.phase = "input";
  ByzantineInterceptor byzantine({policy});
  const auto result = RunCheckedProbe(&byzantine);
  EXPECT_EQ(byzantine.total_applications(), 1u);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIntegrityViolation)
      << result.status().ToString();
}

TEST(AdversaryTest, ReplayOnFinalOpenCannotChangeTheRelease) {
  // A duplicate of the last open broadcast is never consumed: the opens
  // receive exactly one message per channel in FIFO order, so the original
  // is what every recipient reads. The release is provably unchanged.
  TamperPolicy policy;
  policy.kind = TamperPolicy::Kind::kReplay;
  policy.target.phase = "open";
  policy.skip_matches = (kParties - 1) * kParties;  // Second (last) open.
  ByzantineInterceptor byzantine({policy});
  const auto result = RunCheckedProbe(&byzantine);
  EXPECT_EQ(byzantine.total_applications(), 1u);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.ValueOrDie(), kExpected);
}

TEST(AdversaryTest, EverySinglePolicyDetectsOrLeavesReleaseUnchanged) {
  // The blanket conformance property: for every tamper kind against every
  // protocol phase, the checked probe either fails with a descriptive
  // Status or releases exactly the untampered values. No silent wrong
  // open, ever.
  const TamperPolicy::Kind kKinds[] = {
      TamperPolicy::Kind::kAdditive,    TamperPolicy::Kind::kBitFlip,
      TamperPolicy::Kind::kWrongDegree, TamperPolicy::Kind::kEquivocate,
      TamperPolicy::Kind::kReplay,      TamperPolicy::Kind::kSwallow,
  };
  const char* kPhases[] = {"input", "mul", "open"};
  for (TamperPolicy::Kind kind : kKinds) {
    for (const char* phase : kPhases) {
      for (size_t skip : {0u, 3u, 7u}) {
        TamperPolicy policy;
        policy.kind = kind;
        policy.target.phase = phase;
        policy.skip_matches = skip;
        policy.magnitude = 42;
        policy.bit = 17;
        policy.degree = kThreshold + 1;
        ByzantineInterceptor byzantine({policy});
        const auto result = RunCheckedProbe(&byzantine);
        if (result.ok()) {
          EXPECT_EQ(result.ValueOrDie(), kExpected)
              << testing::TamperKindToString(kind) << " on " << phase
              << " skip " << skip
              << ": tampered run released WRONG values without an error";
        } else {
          EXPECT_FALSE(result.status().message().empty());
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// SecAgg wire integrity.

TEST(AdversaryTest, SecAggUploadsSurviveCleanTransport) {
  LockstepTransport network(4, 0.0, Field::kWireBytes);
  SecureAggregation secagg(4, 123, &network);
  const std::vector<std::vector<int64_t>> inputs = {
      {1, 2, 3}, {-4, 5, -6}, {7, -8, 9}, {0, 11, -12}};
  for (size_t j = 0; j < 4; ++j) {
    ASSERT_TRUE(secagg.UploadOverTransport(j, inputs[j]).ok());
  }
  network.EndRound();
  const auto uploads = secagg.CollectUploads(3);
  ASSERT_TRUE(uploads.ok()) << uploads.status().ToString();
  const auto sum = secagg.Aggregate(uploads.ValueOrDie());
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum.ValueOrDie(), (std::vector<int64_t>{4, 10, -6}));
}

TEST(AdversaryTest, SecAggBitFlipOnWireIsDetected) {
  // Linear masking has no redundancy of its own — a flipped bit would
  // silently shift the aggregate — so uploads carry an integrity digest
  // the server recomputes.
  LockstepTransport network(4, 0.0, Field::kWireBytes);
  TamperPolicy policy;
  policy.kind = TamperPolicy::Kind::kBitFlip;
  policy.target.phase = "secagg_upload";
  policy.element = 1;
  policy.bit = 7;
  ByzantineInterceptor byzantine({policy});
  network.SetInterceptor(&byzantine);
  SecureAggregation secagg(4, 123, &network);
  for (size_t j = 0; j < 4; ++j) {
    ASSERT_TRUE(secagg.UploadOverTransport(j, {1, 2, 3}).ok());
  }
  network.EndRound();
  const auto uploads = secagg.CollectUploads(3);
  EXPECT_EQ(byzantine.total_applications(), 1u);
  ASSERT_FALSE(uploads.ok());
  EXPECT_EQ(uploads.status().code(), StatusCode::kIntegrityViolation)
      << uploads.status().ToString();
  network.SetInterceptor(nullptr);
}

TEST(AdversaryTest, SecAggTamperedDigestElementIsDetected) {
  // Corrupting the digest itself must fail the same way.
  LockstepTransport network(4, 0.0, Field::kWireBytes);
  TamperPolicy policy;
  policy.kind = TamperPolicy::Kind::kAdditive;
  policy.target.phase = "secagg_upload";
  policy.element = 3;  // vector_length = 3, so index 3 is the digest.
  ByzantineInterceptor byzantine({policy});
  network.SetInterceptor(&byzantine);
  SecureAggregation secagg(4, 123, &network);
  for (size_t j = 0; j < 4; ++j) {
    ASSERT_TRUE(secagg.UploadOverTransport(j, {1, 2, 3}).ok());
  }
  const auto uploads = secagg.CollectUploads(3);
  ASSERT_FALSE(uploads.ok());
  EXPECT_EQ(uploads.status().code(), StatusCode::kIntegrityViolation);
  network.SetInterceptor(nullptr);
}

TEST(AdversaryTest, SecAggSwallowedUploadFailsFast) {
  LockstepTransport network(4, 0.0, Field::kWireBytes);
  TamperPolicy policy;
  policy.kind = TamperPolicy::Kind::kSwallow;
  policy.target.phase = "secagg_upload";
  policy.target.from = 2;
  ByzantineInterceptor byzantine({policy});
  network.SetInterceptor(&byzantine);
  SecureAggregation secagg(4, 123, &network);
  for (size_t j = 0; j < 4; ++j) {
    ASSERT_TRUE(secagg.UploadOverTransport(j, {1, 2, 3}).ok());
  }
  const auto uploads = secagg.CollectUploads(3);
  ASSERT_FALSE(uploads.ok());
  network.SetInterceptor(nullptr);
}

// ---------------------------------------------------------------------------
// SQM end-to-end under tampering.

SqmOptions BgwSqmOptions() {
  SqmOptions options;
  options.backend = MpcBackend::kBgw;
  options.mu = 0.0;
  options.gamma = 256.0;
  options.quantize_coefficients = false;
  options.seed = 7;
  return options;
}

Matrix TinyDatabase() {
  Matrix x(8, 3);
  Rng rng(21);
  for (auto& v : x.data()) v = rng.NextDouble() - 0.5;
  return x;
}

TEST(AdversaryTest, SqmEndToEndTamperIsDetected) {
  const Matrix x = TinyDatabase();
  const PolynomialVector f = PolynomialVector::OuterProduct(3);

  // Reference run: verification on, no adversary. Must release the same
  // values as the default pipeline.
  SqmOptions clean = BgwSqmOptions();
  const SqmReport baseline =
      SqmEvaluator(clean).Evaluate(f, x).ValueOrDie();
  clean.verify_sharings = true;
  const auto verified = SqmEvaluator(clean).Evaluate(f, x);
  ASSERT_TRUE(verified.ok()) << verified.status().ToString();
  EXPECT_EQ(verified.ValueOrDie().raw, baseline.raw);

  // Adversarial run: one perturbed multiplication sub-share somewhere in
  // the circuit evaluation. Must fail, not release.
  TamperPolicy policy;
  policy.kind = TamperPolicy::Kind::kAdditive;
  policy.target.phase = "mul";
  policy.skip_matches = 5;
  ByzantineInterceptor byzantine({policy});
  SqmOptions adversarial = BgwSqmOptions();
  adversarial.verify_sharings = true;
  adversarial.interceptor = &byzantine;
  const auto tampered = SqmEvaluator(adversarial).Evaluate(f, x);
  EXPECT_EQ(byzantine.total_applications(), 1u);
  ASSERT_FALSE(tampered.ok());
  EXPECT_EQ(tampered.status().code(), StatusCode::kIntegrityViolation)
      << tampered.status().ToString();
}

TEST(AdversaryTest, SqmTranscriptSupportsPrivacyVerification) {
  // Record a full SQM BGW run and check the transcript-privacy property: a
  // sub-threshold coalition's received messages are indistinguishable from
  // uniform field elements.
  const Matrix x = TinyDatabase();
  const PolynomialVector f = PolynomialVector::OuterProduct(3);
  SqmOptions options = BgwSqmOptions();
  TranscriptRecorder recorder(3);  // num_clients = columns = 3.
  options.interceptor = &recorder;
  ASSERT_TRUE(SqmEvaluator(options).Evaluate(f, x).ok());
  const Transcript transcript = recorder.transcript();
  ASSERT_GT(transcript.entries.size(), 0u);
  const testing::TranscriptPrivacyVerifier verifier;
  // threshold = (3-1)/2 = 1: any single party is below threshold.
  const Status uniform = verifier.CheckCoalitionUniform(transcript, {2});
  EXPECT_TRUE(uniform.ok()) << uniform.ToString();
}

}  // namespace
}  // namespace sqm
