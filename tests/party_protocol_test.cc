// The per-party execution path (PartyProtocol / PartyEngine / RunPartySqm)
// must be a bit-exact mirror of the driver path (BgwProtocol / BgwEngine /
// SqmEvaluator): same seed, same config, same released values — down to
// the last bit — even though one runs n processes over TCP and the other
// runs single-threaded over the lockstep transport. These tests run the
// per-party side as three threads with real loopback sockets in one
// process, which keeps the suite hermetic while exercising the identical
// code the sqm-party daemon runs.

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/party_sqm.h"
#include "core/sqm.h"
#include "net/tcp/party_config.h"
#include "net/tcp/socket.h"
#include "net/tcp/tcp_transport.h"
#include "poly/parser.h"

namespace {

using sqm::net::ListenOn;
using sqm::net::LocalPort;
using sqm::net::Socket;
using sqm::net::TcpSupported;

sqm::DeploymentConfig BaseConfig(size_t n) {
  sqm::DeploymentConfig config;
  config.run_id = 17;
  config.session_key = 0xc0ffee;
  config.parties.assign(n, {"127.0.0.1", 0});
  config.rows = 8;
  config.cols = n;
  config.data_seed = 7;
  config.polynomial = "x0*x1; x1*x2";
  config.gamma = 64;
  config.seed = 42;
  config.dp_delta = 1e-5;
  config.receive_timeout_seconds = 1.0;
  config.connect_timeout_seconds = 10.0;
  return config;
}

/// Runs every party of `config` as a thread over a real loopback mesh and
/// returns the n reports (all asserted ok).
std::vector<sqm::SqmReport> RunNetworked(sqm::DeploymentConfig config) {
  const size_t n = config.parties.size();
  std::vector<Socket> listeners;
  for (size_t i = 0; i < n; ++i) {
    sqm::Result<Socket> listener = ListenOn("127.0.0.1", 0);
    EXPECT_TRUE(listener.ok()) << listener.status().ToString();
    sqm::Result<uint16_t> port = LocalPort(listener.ValueOrDie());
    EXPECT_TRUE(port.ok()) << port.status().ToString();
    config.parties[i].port = port.ValueOrDie();
    listeners.push_back(std::move(listener.ValueOrDie()));
  }

  std::vector<sqm::SqmReport> reports(n);
  std::vector<std::string> errors(n);
  std::vector<std::thread> threads;
  for (size_t i = 0; i < n; ++i) {
    const int fd = listeners[i].Release();
    threads.emplace_back([&, i, fd] {
      sqm::Result<std::unique_ptr<sqm::TcpTransport>> transport =
          sqm::TcpTransport::Create(
              sqm::TcpOptionsFromDeployment(config, i, fd));
      if (!transport.ok()) {
        errors[i] = "transport: " + transport.status().ToString();
        return;
      }
      sqm::Result<sqm::SqmReport> report =
          sqm::RunPartySqm(config, i, transport.ValueOrDie().get());
      transport.ValueOrDie()->Shutdown();
      if (!report.ok()) {
        errors[i] = report.status().ToString();
        return;
      }
      reports[i] = report.ValueOrDie();
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(errors[i].empty()) << "party " << i << ": " << errors[i];
  }
  return reports;
}

/// The driver-side reference for the same config.
sqm::SqmReport RunLockstep(const sqm::DeploymentConfig& config) {
  sqm::Result<sqm::SqmOptions> options =
      sqm::SqmOptionsFromDeployment(config);
  EXPECT_TRUE(options.ok()) << options.status().ToString();
  const sqm::Matrix x = sqm::GenerateDeploymentMatrix(
      config.rows, sqm::DeploymentCols(config), config.data_seed);
  sqm::Result<sqm::PolynomialVector> f =
      sqm::ParsePolynomialVector(config.polynomial);
  EXPECT_TRUE(f.ok()) << f.status().ToString();
  sqm::SqmEvaluator evaluator(options.ValueOrDie());
  sqm::Result<sqm::SqmReport> report =
      evaluator.Evaluate(f.ValueOrDie(), x);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return report.ok() ? report.ValueOrDie() : sqm::SqmReport();
}

/// A config with the supervised-recovery knobs set to sensible values, as
/// the chaos suite deploys them. Serializing and re-parsing it is how the
/// coordinator actually hands configs to daemons, so the validation tests
/// below go through that exact path.
sqm::DeploymentConfig RecoveryConfig() {
  sqm::DeploymentConfig config = BaseConfig(3);
  config.max_restarts = 2;
  config.restart_backoff_seconds = 0.25;
  config.recovery_deadline_seconds = 20.0;
  return config;
}

TEST(DeploymentConfigJson, RecoveryAndChaosKnobsRoundTrip) {
  sqm::DeploymentConfig config = RecoveryConfig();
  config.chaos_seed = 777;
  config.chaos_phase = "mul";
  config.chaos_max_events = 3;
  config.chaos_reset_probability = 0.2;
  config.chaos_partial_write_probability = 0.15;
  config.chaos_stall_probability = 0.1;
  config.chaos_stall_seconds = 0.05;
  config.chaos_partition_peer = 3;
  config.chaos_partition_sends = 2;
  sqm::Result<sqm::DeploymentConfig> parsed =
      sqm::ParseDeploymentConfig(sqm::DeploymentConfigToJson(config));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const sqm::DeploymentConfig& got = parsed.ValueOrDie();
  EXPECT_EQ(got.max_restarts, 2u);
  EXPECT_EQ(got.restart_backoff_seconds, 0.25);
  EXPECT_EQ(got.recovery_deadline_seconds, 20.0);
  EXPECT_EQ(got.chaos_seed, 777u);
  EXPECT_EQ(got.chaos_phase, "mul");
  EXPECT_EQ(got.chaos_max_events, 3u);
  EXPECT_EQ(got.chaos_reset_probability, 0.2);
  EXPECT_EQ(got.chaos_partial_write_probability, 0.15);
  EXPECT_EQ(got.chaos_stall_probability, 0.1);
  EXPECT_EQ(got.chaos_stall_seconds, 0.05);
  EXPECT_EQ(got.chaos_partition_peer, 3u);
  EXPECT_EQ(got.chaos_partition_sends, 2u);
}

TEST(DeploymentConfigJson, NegativeMaxRestartsIsRejected) {
  std::string json = sqm::DeploymentConfigToJson(RecoveryConfig());
  const std::string key = "\"max_restarts\":2";
  const size_t at = json.find(key);
  ASSERT_NE(at, std::string::npos) << json;
  json.replace(at, key.size(), "\"max_restarts\":-1");
  sqm::Result<sqm::DeploymentConfig> parsed =
      sqm::ParseDeploymentConfig(json);
  EXPECT_EQ(parsed.status().code(), sqm::StatusCode::kInvalidArgument)
      << parsed.status().ToString();
}

TEST(DeploymentConfigJson, RestartsWithoutRecoveryDeadlineIsRejected) {
  sqm::DeploymentConfig config = RecoveryConfig();
  config.recovery_deadline_seconds = 0.0;  // Restarts could never rejoin.
  sqm::Result<sqm::DeploymentConfig> parsed =
      sqm::ParseDeploymentConfig(sqm::DeploymentConfigToJson(config));
  EXPECT_EQ(parsed.status().code(), sqm::StatusCode::kInvalidArgument)
      << parsed.status().ToString();
}

TEST(DeploymentConfigJson, NegativeRecoveryKnobsAreRejected) {
  sqm::DeploymentConfig config = RecoveryConfig();
  config.restart_backoff_seconds = -0.5;
  sqm::Result<sqm::DeploymentConfig> parsed =
      sqm::ParseDeploymentConfig(sqm::DeploymentConfigToJson(config));
  EXPECT_EQ(parsed.status().code(), sqm::StatusCode::kInvalidArgument)
      << parsed.status().ToString();

  config = RecoveryConfig();
  config.max_restarts = 0;
  config.recovery_deadline_seconds = -1.0;
  parsed = sqm::ParseDeploymentConfig(sqm::DeploymentConfigToJson(config));
  EXPECT_EQ(parsed.status().code(), sqm::StatusCode::kInvalidArgument)
      << parsed.status().ToString();
}

TEST(DeploymentConfigJson, ChaosProbabilityOutOfRangeIsRejected) {
  sqm::DeploymentConfig config = RecoveryConfig();
  config.chaos_reset_probability = 1.5;
  sqm::Result<sqm::DeploymentConfig> parsed =
      sqm::ParseDeploymentConfig(sqm::DeploymentConfigToJson(config));
  EXPECT_EQ(parsed.status().code(), sqm::StatusCode::kInvalidArgument)
      << parsed.status().ToString();

  config = RecoveryConfig();
  config.chaos_stall_probability = -0.1;
  parsed = sqm::ParseDeploymentConfig(sqm::DeploymentConfigToJson(config));
  EXPECT_EQ(parsed.status().code(), sqm::StatusCode::kInvalidArgument)
      << parsed.status().ToString();
}

TEST(DeploymentConfigJson, NegativeChaosStallSecondsIsRejected) {
  sqm::DeploymentConfig config = RecoveryConfig();
  config.chaos_stall_seconds = -0.05;
  sqm::Result<sqm::DeploymentConfig> parsed =
      sqm::ParseDeploymentConfig(sqm::DeploymentConfigToJson(config));
  EXPECT_EQ(parsed.status().code(), sqm::StatusCode::kInvalidArgument)
      << parsed.status().ToString();
}

TEST(PartyProtocol, NoiselessTcpRunMatchesLockstepBitForBit) {
  if (!TcpSupported()) GTEST_SKIP() << "no POSIX sockets on this platform";
  const sqm::DeploymentConfig config = BaseConfig(3);
  const std::vector<sqm::SqmReport> reports = RunNetworked(config);
  ASSERT_EQ(reports.size(), 3u);
  // Every party releases the same values...
  for (size_t i = 1; i < reports.size(); ++i) {
    EXPECT_EQ(reports[i].raw, reports[0].raw) << "party " << i << " differs";
  }
  // ...and they are the driver's values, bit for bit.
  const sqm::SqmReport reference = RunLockstep(config);
  ASSERT_FALSE(reference.raw.empty());
  EXPECT_EQ(reports[0].raw, reference.raw);
}

TEST(PartyProtocol, NoisyQuantizedRunMatchesLockstepBitForBit) {
  if (!TcpSupported()) GTEST_SKIP() << "no POSIX sockets on this platform";
  sqm::DeploymentConfig config = BaseConfig(3);
  config.run_id = 18;
  config.mu = 4.0;
  config.quantize_coefficients = true;
  config.polynomial = "x0*x1 + x2; x2*x2";
  const std::vector<sqm::SqmReport> reports = RunNetworked(config);
  ASSERT_EQ(reports.size(), 3u);
  for (size_t i = 1; i < reports.size(); ++i) {
    EXPECT_EQ(reports[i].raw, reports[0].raw) << "party " << i << " differs";
  }
  const sqm::SqmReport reference = RunLockstep(config);
  ASSERT_FALSE(reference.raw.empty());
  EXPECT_EQ(reports[0].raw, reference.raw);
  // The DP ledger is recomputed from public inputs on both sides; it must
  // agree exactly as well.
  EXPECT_EQ(reports[0].dropout.realized_mu, reference.dropout.realized_mu);
  EXPECT_EQ(reports[0].dropout.realized_epsilon,
            reference.dropout.realized_epsilon);
}

TEST(PartyProtocol, FourPartiesWithThresholdOne) {
  if (!TcpSupported()) GTEST_SKIP() << "no POSIX sockets on this platform";
  sqm::DeploymentConfig config = BaseConfig(4);
  config.run_id = 19;
  config.bgw_threshold = 1;
  config.mu = 2.0;
  config.dropout_policy = "degrade";
  config.polynomial = "x0*x1; x2*x3";
  const std::vector<sqm::SqmReport> reports = RunNetworked(config);
  ASSERT_EQ(reports.size(), 4u);
  for (size_t i = 1; i < reports.size(); ++i) {
    EXPECT_EQ(reports[i].raw, reports[0].raw) << "party " << i << " differs";
  }
  const sqm::SqmReport reference = RunLockstep(config);
  EXPECT_EQ(reports[0].raw, reference.raw);
  // Nothing dropped: full noise, full quorum.
  EXPECT_EQ(reports[0].dropout.num_dropped, 0u);
}

}  // namespace
