#include "obs/ledger.h"

#include <gtest/gtest.h>

#include "core/json.h"
#include "dp/accountant.h"
#include "obs/obs.h"

namespace sqm {
namespace {

/// The ledger singleton is shared across the binary: every test starts
/// from an empty (but sequence-preserving) ledger with obs enabled.
class LedgerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetEnabled(true);
    obs::PrivacyLedger::Global().Clear();
  }
};

TEST_F(LedgerTest, AppendStampsSequenceAndTime) {
  obs::LedgerEntry entry;
  entry.mechanism = "custom";
  entry.label = "test_spend";
  const uint64_t first = obs::PrivacyLedger::Global().Append(entry);
  const uint64_t second = obs::PrivacyLedger::Global().Append(entry);
  EXPECT_EQ(second, first + 1);

  const auto entries = obs::PrivacyLedger::Global().Entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].sequence, first);
  EXPECT_EQ(entries[1].sequence, second);
  EXPECT_GE(entries[1].elapsed_seconds, entries[0].elapsed_seconds);
}

TEST_F(LedgerTest, EntriesSinceIsAnIncrementalCursor) {
  obs::LedgerEntry entry;
  entry.label = "before";
  obs::PrivacyLedger::Global().Append(entry);

  const uint64_t cursor = obs::PrivacyLedger::Global().NextSequence();
  entry.label = "after";
  obs::PrivacyLedger::Global().Append(entry);

  const auto fresh = obs::PrivacyLedger::Global().EntriesSince(cursor);
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].label, "after");
}

TEST_F(LedgerTest, ClearKeepsSequenceMonotone) {
  obs::LedgerEntry entry;
  const uint64_t before = obs::PrivacyLedger::Global().Append(entry);
  obs::PrivacyLedger::Global().Clear();
  EXPECT_EQ(obs::PrivacyLedger::Global().size(), 0u);
  const uint64_t after = obs::PrivacyLedger::Global().Append(entry);
  EXPECT_GT(after, before);
}

TEST_F(LedgerTest, ToJsonParses) {
  obs::LedgerEntry entry;
  entry.mechanism = "skellam";
  entry.label = "json_spend";
  entry.mu = 16.0;
  entry.epsilon = 0.5;
  obs::PrivacyLedger::Global().Append(entry);

  const std::string json =
      obs::PrivacyLedger::ToJson(obs::PrivacyLedger::Global().Entries());
  const JsonValue root = ParseJson(json).ValueOrDie();
  ASSERT_EQ(root.kind, JsonValue::Kind::kArray);
  ASSERT_EQ(root.items.size(), 1u);
  EXPECT_EQ(root.items[0].Find("mechanism")->string_value, "skellam");
  EXPECT_EQ(root.items[0].Find("label")->string_value, "json_spend");
  EXPECT_DOUBLE_EQ(root.items[0].Find("mu")->number, 16.0);
}

TEST_F(LedgerTest, AccountantForwardsSkellamSpends) {
  PrivacyAccountant accountant;
  accountant.SetLedgerContext(/*delta=*/1e-5, /*gamma=*/256.0,
                              /*dimension=*/3);
  accountant.AddSkellam("unit_release", /*l1=*/2.0, /*l2=*/1.0, /*mu=*/64.0);

  // Local mirror: always recorded, with epsilon evaluated at the context
  // delta.
  ASSERT_EQ(accountant.ledger().size(), 1u);
  const obs::LedgerEntry& local = accountant.ledger()[0];
  EXPECT_EQ(local.mechanism, "skellam");
  EXPECT_EQ(local.label, "unit_release");
  EXPECT_DOUBLE_EQ(local.mu, 64.0);
  EXPECT_DOUBLE_EQ(local.gamma, 256.0);
  EXPECT_EQ(local.dimension, 3u);
  EXPECT_DOUBLE_EQ(local.delta, 1e-5);
  EXPECT_GT(local.epsilon, 0.0);
  EXPECT_GT(local.cumulative_epsilon, 0.0);

  // Global forwarding while enabled.
  const auto global = obs::PrivacyLedger::Global().Entries();
  ASSERT_EQ(global.size(), 1u);
  EXPECT_EQ(global[0].label, "unit_release");
}

TEST_F(LedgerTest, CumulativeEpsilonGrowsAcrossSpends) {
  PrivacyAccountant accountant;
  accountant.SetLedgerContext(1e-5);
  accountant.AddSkellam("first", 2.0, 1.0, 64.0);
  accountant.AddSkellam("second", 2.0, 1.0, 64.0);
  ASSERT_EQ(accountant.ledger().size(), 2u);
  EXPECT_GT(accountant.ledger()[1].cumulative_epsilon,
            accountant.ledger()[0].cumulative_epsilon);
  // Both standalone spends are identical mechanisms.
  EXPECT_DOUBLE_EQ(accountant.ledger()[0].epsilon,
                   accountant.ledger()[1].epsilon);
}

TEST_F(LedgerTest, DropoutSpendCarriesDeficitContext) {
  PrivacyAccountant accountant;
  accountant.SetLedgerContext(1e-5);
  accountant.AddSkellamWithDropouts("degraded", 2.0, 1.0, /*mu=*/100.0,
                                    /*num_clients=*/5, /*num_dropped=*/1);
  ASSERT_EQ(accountant.ledger().size(), 1u);
  const obs::LedgerEntry& entry = accountant.ledger()[0];
  EXPECT_EQ(entry.mechanism, "skellam_dropout");
  EXPECT_EQ(entry.contributors, 4u);
  EXPECT_EQ(entry.expected_contributors, 5u);
  EXPECT_DOUBLE_EQ(entry.mu, 80.0);         // Realized (n-d)/n * mu.
  EXPECT_DOUBLE_EQ(entry.deficit_mu, 20.0); // Configured minus realized.

  // The global ledger got the same completed entry, not a partial copy.
  const auto global = obs::PrivacyLedger::Global().Entries();
  ASSERT_EQ(global.size(), 1u);
  EXPECT_EQ(global[0].mechanism, "skellam_dropout");
  EXPECT_DOUBLE_EQ(global[0].deficit_mu, 20.0);
}

TEST_F(LedgerTest, KillSwitchStopsGlobalForwardingNotLocalRecording) {
  obs::SetEnabled(false);
  PrivacyAccountant accountant;
  accountant.SetLedgerContext(1e-5);
  accountant.AddSkellam("dark_release", 2.0, 1.0, 64.0);
  obs::SetEnabled(true);

  // Report data still exists; the global stream saw nothing.
  EXPECT_EQ(accountant.ledger().size(), 1u);
  EXPECT_EQ(obs::PrivacyLedger::Global().size(), 0u);
}

TEST_F(LedgerTest, ResetClearsLocalLedger) {
  PrivacyAccountant accountant;
  accountant.AddSkellam("spent", 2.0, 1.0, 64.0);
  EXPECT_EQ(accountant.ledger().size(), 1u);
  accountant.Reset();
  EXPECT_EQ(accountant.ledger().size(), 0u);
}

TEST_F(LedgerTest, GaussianSpendRecordsSigmaAsMu) {
  PrivacyAccountant accountant;
  accountant.SetLedgerContext(1e-5);
  accountant.AddGaussian("gauss_release", /*l2=*/1.0, /*sigma=*/4.0);
  ASSERT_EQ(accountant.ledger().size(), 1u);
  EXPECT_EQ(accountant.ledger()[0].mechanism, "gaussian");
  EXPECT_DOUBLE_EQ(accountant.ledger()[0].mu, 4.0);
  EXPECT_GT(accountant.ledger()[0].epsilon, 0.0);
}

}  // namespace
}  // namespace sqm
