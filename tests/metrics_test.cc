#include "vfl/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sqm {
namespace {

VflDataset TwoPointData() {
  VflDataset data;
  data.features = Matrix{{1, 0}, {-1, 0}};
  data.labels = {1, 0};
  return data;
}

TEST(MetricsTest, PredictProbabilitySigmoidOfDot) {
  EXPECT_DOUBLE_EQ(PredictProbability({0, 0}, {1, 1}), 0.5);
  EXPECT_GT(PredictProbability({10, 0}, {1, 0}), 0.99);
  EXPECT_LT(PredictProbability({10, 0}, {-1, 0}), 0.01);
}

TEST(MetricsTest, PerfectClassifierAccuracyOne) {
  EXPECT_DOUBLE_EQ(Accuracy({5, 0}, TwoPointData()), 1.0);
}

TEST(MetricsTest, InvertedClassifierAccuracyZero) {
  EXPECT_DOUBLE_EQ(Accuracy({-5, 0}, TwoPointData()), 0.0);
}

TEST(MetricsTest, ZeroWeightsPredictPositive) {
  // sigmoid(0) = 0.5 >= 0.5 threshold -> predicts 1 for everything.
  EXPECT_DOUBLE_EQ(Accuracy({0, 0}, TwoPointData()), 0.5);
}

TEST(MetricsTest, CrossEntropyDecreasesWithConfidence) {
  const VflDataset data = TwoPointData();
  const double weak = CrossEntropyLoss({1, 0}, data);
  const double strong = CrossEntropyLoss({5, 0}, data);
  EXPECT_LT(strong, weak);
  EXPECT_NEAR(CrossEntropyLoss({0, 0}, data), std::log(2.0), 1e-12);
}

TEST(MetricsTest, CrossEntropyFiniteForExtremeWeights) {
  EXPECT_TRUE(std::isfinite(CrossEntropyLoss({1000, 0}, TwoPointData())));
  EXPECT_TRUE(std::isfinite(CrossEntropyLoss({-1000, 0}, TwoPointData())));
}

TEST(MetricsTest, PcaUtilityMatchesDefinition) {
  const Matrix x{{1, 2}, {3, 4}};
  const Matrix v{{1}, {0}};  // Project onto the first axis.
  EXPECT_DOUBLE_EQ(PcaUtility(x, v), 1.0 + 9.0);
}

}  // namespace
}  // namespace sqm
