#include "core/baseline.h"

#include <gtest/gtest.h>

#include <cmath>

#include "math/stats.h"

namespace sqm {
namespace {

TEST(BaselineTest, PerturbationHasRequestedVariance) {
  Matrix x(2000, 3);  // Zeros: output is pure noise.
  const double sigma = 2.5;
  const Matrix noisy = PerturbDatabaseLocally(x, sigma, 42);
  std::vector<double> all(noisy.data().begin(), noisy.data().end());
  EXPECT_NEAR(Mean(all), 0.0, 5.0 * sigma / std::sqrt(6000.0));
  EXPECT_NEAR(Variance(all), sigma * sigma, 0.05 * sigma * sigma);
}

TEST(BaselineTest, ZeroSigmaIsIdentity) {
  Matrix x{{1, 2}, {3, 4}};
  EXPECT_EQ(PerturbDatabaseLocally(x, 0.0, 1), x);
}

TEST(BaselineTest, ColumnsPerturbedIndependently) {
  Matrix x(500, 2);
  const Matrix noisy = PerturbDatabaseLocally(x, 1.0, 7);
  // Correlation between the two noise columns should be ~0.
  const std::vector<double> a = noisy.Col(0);
  const std::vector<double> b = noisy.Col(1);
  double cov = 0.0;
  for (size_t i = 0; i < a.size(); ++i) cov += a[i] * b[i];
  cov /= static_cast<double>(a.size());
  EXPECT_NEAR(cov, 0.0, 0.15);
}

TEST(BaselineTest, Lemma12RdpValues) {
  // tau_server = alpha c^2 / (2 sigma^2); tau_client quadruples it
  // (sensitivity doubles).
  EXPECT_DOUBLE_EQ(LocalDpBaselineRdpServer(2.0, 1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(LocalDpBaselineRdpClient(2.0, 1.0, 1.0), 4.0);
}

TEST(BaselineTest, CalibrationMatchesGaussianMechanism) {
  const double sigma = CalibrateLocalDpSigma(1.0, 1e-5, 1.0).ValueOrDie();
  EXPECT_GT(sigma, 1.0);  // eps = 1 needs sigma well above sensitivity.
  // Deterministic in the inputs.
  EXPECT_DOUBLE_EQ(sigma,
                   CalibrateLocalDpSigma(1.0, 1e-5, 1.0).ValueOrDie());
}

TEST(BaselineTest, NoiseFarExceedsSqmForSameBudget) {
  // The motivating gap: per-entry local-DP noise std for eps = 1 is O(1)
  // per *entry*, while SQM's per-release noise (std sqrt(2 mu) / gamma^2)
  // is O(1) per *covariance entry sum over m records* — the baseline's
  // relative error on the Gram matrix is larger by orders of magnitude.
  const double sigma = CalibrateLocalDpSigma(1.0, 1e-5, 1.0).ValueOrDie();
  // Gram-entry noise variance from perturbed data with m records is about
  // m * sigma^2 (cross terms) + ...; just sanity-check sigma's scale here.
  EXPECT_GT(sigma, 3.0);
  EXPECT_LT(sigma, 10.0);
}

}  // namespace
}  // namespace sqm
