#include "sampling/discrete_gaussian.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "math/stats.h"
#include "sampling/rng.h"

namespace sqm {
namespace {

TEST(BernoulliExpTest, MatchesExpProbability) {
  Rng rng(1);
  for (double gamma : {0.0, 0.3, 1.0, 2.5}) {
    constexpr int kDraws = 100000;
    int accepted = 0;
    for (int i = 0; i < kDraws; ++i) {
      if (DiscreteGaussianSampler::BernoulliExp(gamma, rng)) ++accepted;
    }
    EXPECT_NEAR(static_cast<double>(accepted) / kDraws, std::exp(-gamma),
                0.01)
        << "gamma=" << gamma;
  }
}

TEST(DiscreteLaplaceTest, PmfMatchesGeometricShape) {
  // P(x) = (e^{1/t} - 1) / (e^{1/t} + 1) * e^{-|x|/t}.
  const uint64_t t = 3;
  Rng rng(2);
  constexpr int kDraws = 200000;
  std::map<int64_t, int> counts;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[DiscreteGaussianSampler::SampleDiscreteLaplace(t, rng)];
  }
  const double s = 1.0 / static_cast<double>(t);
  const double z = (std::exp(s) - 1.0) / (std::exp(s) + 1.0);
  for (int64_t x = -4; x <= 4; ++x) {
    const double expected = z * std::exp(-std::fabs(
                                     static_cast<double>(x)) * s);
    const double observed = static_cast<double>(counts[x]) / kDraws;
    EXPECT_NEAR(observed, expected, 0.005) << "x=" << x;
  }
}

TEST(DiscreteLaplaceTest, SymmetricAroundZero) {
  Rng rng(3);
  std::vector<double> draws(100000);
  for (auto& d : draws) {
    d = static_cast<double>(
        DiscreteGaussianSampler::SampleDiscreteLaplace(5, rng));
  }
  EXPECT_NEAR(Mean(draws), 0.0, 0.15);
  EXPECT_NEAR(Skewness(draws), 0.0, 0.03);
}

class DiscreteGaussianMomentsTest
    : public ::testing::TestWithParam<double> {};

TEST_P(DiscreteGaussianMomentsTest, MeanZeroVarianceSigmaSq) {
  const double sigma = GetParam();
  DiscreteGaussianSampler sampler(sigma);
  Rng rng(4);
  constexpr size_t kDraws = 150000;
  const std::vector<int64_t> draws = sampler.SampleVector(rng, kDraws);
  EXPECT_NEAR(Mean(draws), 0.0,
              5.0 * sigma / std::sqrt(static_cast<double>(kDraws)));
  // Variance of N_Z(0, sigma^2) is sigma^2 up to an exponentially small
  // theta correction for sigma >= 1.
  EXPECT_NEAR(Variance(draws) / (sigma * sigma), 1.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Sigmas, DiscreteGaussianMomentsTest,
                         ::testing::Values(1.0, 2.5, 10.0, 40.0));

TEST(DiscreteGaussianTest, PmfMatchesGaussianKernel) {
  const double sigma = 2.0;
  DiscreteGaussianSampler sampler(sigma);
  Rng rng(5);
  constexpr int kDraws = 300000;
  std::map<int64_t, int> counts;
  for (int i = 0; i < kDraws; ++i) ++counts[sampler.Sample(rng)];
  // Normalizer: sum over a wide window.
  double z = 0.0;
  for (int64_t x = -60; x <= 60; ++x) {
    z += std::exp(-static_cast<double>(x) * static_cast<double>(x) /
                  (2.0 * sigma * sigma));
  }
  for (int64_t x = -4; x <= 4; ++x) {
    const double expected =
        std::exp(-static_cast<double>(x) * static_cast<double>(x) /
                 (2.0 * sigma * sigma)) /
        z;
    const double observed = static_cast<double>(counts[x]) / kDraws;
    EXPECT_NEAR(observed, expected, 0.004) << "x=" << x;
  }
}

TEST(DiscreteGaussianTest, SubGaussianTails) {
  const double sigma = 3.0;
  DiscreteGaussianSampler sampler(sigma);
  Rng rng(6);
  constexpr int kDraws = 100000;
  int beyond = 0;
  for (int i = 0; i < kDraws; ++i) {
    if (std::llabs(sampler.Sample(rng)) >
        static_cast<int64_t>(5.0 * sigma)) {
      ++beyond;
    }
  }
  // P(|X| > 5 sigma) < 1e-6 for the (discrete) Gaussian.
  EXPECT_LE(beyond, 2);
}

TEST(DiscreteGaussianTest, SumOfSharesIsNotDiscreteGaussian) {
  // The motivating *negative* property: the sum of n independent discrete
  // Gaussians with parameter sigma/sqrt(n) has the right variance but is
  // NOT distributed as N_Z(0, sigma^2) — unlike Skellam, whose closure is
  // exact. At small sigma the difference is visible in the pmf at 0.
  const double sigma = 0.8;
  const size_t n = 16;
  DiscreteGaussianSampler share(sigma / std::sqrt(static_cast<double>(n)));
  DiscreteGaussianSampler direct(sigma);
  Rng rng(7);
  constexpr int kDraws = 150000;
  int sum_zero = 0;
  int direct_zero = 0;
  for (int i = 0; i < kDraws; ++i) {
    int64_t total = 0;
    for (size_t j = 0; j < n; ++j) total += share.Sample(rng);
    if (total == 0) ++sum_zero;
    if (direct.Sample(rng) == 0) ++direct_zero;
  }
  const double p_sum = static_cast<double>(sum_zero) / kDraws;
  const double p_direct = static_cast<double>(direct_zero) / kDraws;
  // With sigma/sqrt(n) = 0.2, each share is almost always 0, so the sum
  // is far more concentrated at 0 than the direct discrete Gaussian.
  EXPECT_GT(p_sum, p_direct + 0.05);
}

}  // namespace
}  // namespace sqm
