// Parameterized property sweeps across the core invariants:
//  - quantization is unbiased at every (value, gamma),
//  - BGW evaluates random circuits exactly for every (n, t),
//  - the RDP accountant curves are monotone where theory says they are,
//  - SQM's estimate converges to the exact polynomial sum as gamma grows.

#include <gtest/gtest.h>
#include "mpc/network.h"

#include <cmath>
#include <tuple>

#include "core/quantize.h"
#include "core/sqm.h"
#include "dp/gaussian.h"
#include "dp/rdp.h"
#include "dp/skellam.h"
#include "math/stats.h"
#include "mpc/bgw.h"
#include "sampling/rng.h"

namespace sqm {
namespace {

// ---------------------------------------------------------------- rounding

class RoundingUnbiasednessTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(RoundingUnbiasednessTest, MeanEqualsScaledValue) {
  const auto [value, gamma] = GetParam();
  Rng rng(1234);
  constexpr int kDraws = 120000;
  double sum = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    sum += static_cast<double>(StochasticRound(value, gamma, rng));
  }
  // Rounding residual is in [0,1): the mean estimator's 5-sigma band is
  // 5 * 0.5 / sqrt(draws) regardless of scale.
  EXPECT_NEAR(sum / kDraws, value * gamma, 5.0 * 0.5 / std::sqrt(kDraws));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RoundingUnbiasednessTest,
    ::testing::Combine(::testing::Values(-1.7, -0.011, 0.0, 0.3333, 0.999),
                       ::testing::Values(1.0, 7.0, 100.0, 1024.0)));

// ------------------------------------------------------------------- BGW

class BgwConfigTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(BgwConfigTest, RandomArithmeticCircuitEvaluatesExactly) {
  const auto [parties, threshold] = GetParam();
  SimulatedNetwork network(parties, 0.0);
  BgwEngine engine(ShamirScheme(parties, threshold), &network,
                   parties * 100 + threshold);

  // Random circuit over small integers, mirrored by plain evaluation.
  Rng rng(parties * 7 + threshold);
  Circuit c;
  std::vector<Circuit::WireId> wires;
  std::vector<int64_t> values;
  std::vector<std::vector<int64_t>> inputs(parties);
  for (size_t j = 0; j < parties; ++j) {
    for (int i = 0; i < 2; ++i) {
      const int64_t v = static_cast<int64_t>(rng.NextBounded(21)) - 10;
      wires.push_back(c.AddInput(j));
      values.push_back(v);
      inputs[j].push_back(v);
    }
  }
  for (int step = 0; step < 30; ++step) {
    const size_t a = rng.NextBounded(wires.size());
    const size_t b = rng.NextBounded(wires.size());
    switch (rng.NextBounded(4)) {
      case 0:
        wires.push_back(c.AddAdd(wires[a], wires[b]));
        values.push_back(values[a] + values[b]);
        break;
      case 1:
        wires.push_back(c.AddSub(wires[a], wires[b]));
        values.push_back(values[a] - values[b]);
        break;
      case 2: {
        const int64_t k = static_cast<int64_t>(rng.NextBounded(7)) - 3;
        wires.push_back(c.AddMulConst(wires[a], Field::Encode(k)));
        values.push_back(values[a] * k);
        break;
      }
      default:
        // Keep magnitudes bounded: only multiply if the product is small.
        if (std::llabs(values[a]) < (1LL << 25) &&
            std::llabs(values[b]) < (1LL << 25)) {
          wires.push_back(c.AddMul(wires[a], wires[b]));
          values.push_back(values[a] * values[b]);
        } else {
          wires.push_back(c.AddAdd(wires[a], wires[b]));
          values.push_back(values[a] + values[b]);
        }
    }
  }
  c.MarkOutput(wires.back());
  c.MarkOutput(wires[wires.size() / 2]);

  const auto out = engine.Evaluate(c, inputs).ValueOrDie();
  EXPECT_EQ(out[0], values.back());
  EXPECT_EQ(out[1], values[wires.size() / 2]);
}

INSTANTIATE_TEST_SUITE_P(Configs, BgwConfigTest,
                         ::testing::Values(std::make_tuple(3u, 1u),
                                           std::make_tuple(4u, 1u),
                                           std::make_tuple(5u, 2u),
                                           std::make_tuple(7u, 3u),
                                           std::make_tuple(9u, 4u)));

// ------------------------------------------------------------- accountant

class EpsilonMonotoneInMuTest : public ::testing::TestWithParam<double> {};

TEST_P(EpsilonMonotoneInMuTest, SingleReleaseCurve) {
  const double d2 = GetParam();
  const double d1 = std::min(d2 * d2, 10.0 * d2);
  double prev = 1e100;
  for (double mu : {d2 * d2, 4 * d2 * d2, 16 * d2 * d2, 64 * d2 * d2}) {
    const double eps = SkellamEpsilonSingleRelease(mu, d1, d2, 1e-5);
    EXPECT_LT(eps, prev);
    prev = eps;
  }
}

INSTANTIATE_TEST_SUITE_P(Sensitivities, EpsilonMonotoneInMuTest,
                         ::testing::Values(1.0, 10.0, 1000.0, 1e6));

TEST(AccountantConsistencyTest, SkellamNeverBeatsGaussianByMuch) {
  // Lemma 1's bound is the Gaussian term plus a positive correction, so at
  // matched variance the Skellam epsilon must be >= the Gaussian epsilon
  // and within a small factor for large mu.
  for (double d2 : {1.0, 50.0}) {
    const double mu = 1e6 * d2 * d2;
    const double sigma = std::sqrt(2.0 * mu);
    const double skellam =
        SkellamEpsilonSingleRelease(mu, d2 * d2, d2, 1e-5);
    const auto gauss_curve = [&](double alpha) {
      return GaussianRdp(alpha, d2, sigma);
    };
    const double gaussian =
        BestEpsilonFromCurve(gauss_curve, DefaultAlphaGrid(), 1e-5);
    EXPECT_GE(skellam, gaussian * (1.0 - 1e-9));
    EXPECT_LE(skellam, gaussian * 1.05);
  }
}

// ------------------------------------------------------------ convergence

class SqmConvergenceTest : public ::testing::TestWithParam<double> {};

TEST_P(SqmConvergenceTest, EstimateWithinTheoreticalEnvelope) {
  const double gamma = GetParam();
  Matrix x(20, 2);
  Rng gen(5);
  for (auto& v : x.data()) v = gen.NextDouble() - 0.5;
  PolynomialVector f;
  Polynomial p;
  p.AddTerm(Monomial(1.0, {{0, 1}, {1, 1}}));
  f.AddDimension(p);

  std::vector<std::vector<double>> rows;
  for (size_t i = 0; i < x.rows(); ++i) rows.push_back(x.Row(i));
  const double exact = f.EvaluateSum(rows)[0];

  SqmOptions options;
  options.gamma = gamma;
  options.mu = 0.0;
  options.quantize_coefficients = false;
  const SqmReport report =
      SqmEvaluator(options).Evaluate(f, x).ValueOrDie();
  // Lemma 2-style envelope: per-record error O(gamma^{lambda-1}) after
  // downscaling is O(m * c / gamma); use a generous constant.
  const double envelope = 20.0 * 4.0 / gamma;
  EXPECT_NEAR(report.estimate[0], exact, envelope) << "gamma=" << gamma;
}

INSTANTIATE_TEST_SUITE_P(Gammas, SqmConvergenceTest,
                         ::testing::Values(8.0, 32.0, 128.0, 512.0, 2048.0,
                                           8192.0));

}  // namespace
}  // namespace sqm
