#ifndef SQM_CORE_BASELINE_H_
#define SQM_CORE_BASELINE_H_

#include <cstdint>

#include "core/status.h"
#include "math/matrix.h"

namespace sqm {

/// The local-DP VFL baseline (Algorithm 4 / Appendix C): each client
/// perturbs its raw column with Gaussian noise and ships it to the server,
/// which reconstructs the noisy database and runs any analysis on it
/// (post-processing). Applies to arbitrary tasks but pays per-entry noise,
/// which is why it trails SQM badly in Figures 2 and 3.

/// Returns X + N(0, sigma^2) entry-wise, each column perturbed with its own
/// client-seeded stream.
Matrix PerturbDatabaseLocally(const Matrix& x, double sigma, uint64_t seed);

/// Lemma 12 accounting: server-observed RDP of Algorithm 4 is
/// tau_server(alpha) = alpha c^2 / (2 sigma^2) where c bounds each record's
/// L2 norm (add/remove neighboring releases one extra noisy record).
double LocalDpBaselineRdpServer(double alpha, double record_norm_bound,
                                double sigma);

/// Client-observed RDP: the sensitivity doubles (replace-one neighboring),
/// giving tau_client(alpha) = 2 alpha c^2 / sigma^2.
double LocalDpBaselineRdpClient(double alpha, double record_norm_bound,
                                double sigma);

/// Smallest sigma giving (epsilon, delta) server-observed DP for the
/// baseline (analytic Gaussian calibration with sensitivity c).
Result<double> CalibrateLocalDpSigma(double epsilon, double delta,
                                     double record_norm_bound);

}  // namespace sqm

#endif  // SQM_CORE_BASELINE_H_
