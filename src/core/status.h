#ifndef SQM_CORE_STATUS_H_
#define SQM_CORE_STATUS_H_

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace sqm {

/// Error categories used across the library. Mirrors the small set of
/// conditions a caller can meaningfully dispatch on.
enum class StatusCode : int8_t {
  kOk = 0,
  kInvalidArgument = 1,   ///< Caller passed a malformed or out-of-range value.
  kOutOfRange = 2,        ///< A computed value left its representable domain.
  kFailedPrecondition = 3,///< Object not in the state required for the call.
  kInternal = 4,          ///< Invariant violation inside the library.
  kNotFound = 5,          ///< A requested entity does not exist.
  kUnimplemented = 6,     ///< Feature intentionally not supported.
  kIoError = 7,           ///< Filesystem / parsing failure.
  kDeadlineExceeded = 8,  ///< A blocking operation ran out of time.
  kUnavailable = 9,       ///< The peer is gone (e.g. crashed party).
  kIntegrityViolation = 10,  ///< Received data fails a conformance check
                             ///< (inconsistent sharing, bad digest): a
                             ///< faulty or byzantine peer, never proceed.
};

/// Returns a stable human-readable name for `code` ("OK", "InvalidArgument"...).
const char* StatusCodeToString(StatusCode code);

/// Lightweight success-or-error value, modeled after arrow::Status.
///
/// A `Status` is cheap to copy in the success case (no allocation) and holds
/// a code plus message otherwise. Library functions that can fail return
/// `Status` (or `Result<T>`); they never throw.
///
/// The class is [[nodiscard]]: silently dropping a returned Status hides
/// protocol failures (a timed-out receive, an integrity violation), so the
/// compiler flags every unconsumed return. Tests that intentionally ignore
/// an outcome make it explicit by asserting on it or binding it.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status IntegrityViolation(std::string msg) {
    return Status(StatusCode::kIntegrityViolation, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// A value of type `T` or a failure `Status`, modeled after arrow::Result.
///
/// Accessing `ValueOrDie()` on an error aborts the process with the error
/// message; callers that can recover should test `ok()` first or use
/// the SQM_ASSIGN_OR_RETURN macro. [[nodiscard]] for the same reason as
/// Status: a dropped Result is a swallowed error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Implicit construction from an error status. `status.ok()` is a
  /// programming error and is normalized to kInternal.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns OK when holding a value, the stored error otherwise.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// Returns the stored value; aborts if this holds an error.
  const T& ValueOrDie() const& {
    CheckOk();
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    CheckOk();
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    CheckOk();
    return std::get<T>(std::move(repr_));
  }

  /// Alias matching absl::StatusOr spelling.
  const T& value() const& { return ValueOrDie(); }
  T& value() & { return ValueOrDie(); }
  T&& value() && { return std::move(*this).ValueOrDie(); }

  /// Returns the value or `fallback` when holding an error.
  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

 private:
  void CheckOk() const;

  std::variant<Status, T> repr_;
};

namespace internal {
/// Aborts the process, printing `status`. Out-of-line so Result stays small.
[[noreturn]] void DieOnError(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::CheckOk() const {
  if (!ok()) internal::DieOnError(std::get<Status>(repr_));
}

/// Propagates an error Status from an expression that yields Status.
#define SQM_RETURN_NOT_OK(expr)                   \
  do {                                            \
    ::sqm::Status _sqm_status = (expr);           \
    if (!_sqm_status.ok()) return _sqm_status;    \
  } while (false)

#define SQM_CONCAT_IMPL(x, y) x##y
#define SQM_CONCAT(x, y) SQM_CONCAT_IMPL(x, y)

/// Evaluates an expression yielding Result<T>; on success binds the value to
/// `lhs`, on failure returns the error from the enclosing function.
#define SQM_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  auto SQM_CONCAT(_sqm_result_, __LINE__) = (rexpr);              \
  if (!SQM_CONCAT(_sqm_result_, __LINE__).ok())                   \
    return SQM_CONCAT(_sqm_result_, __LINE__).status();           \
  lhs = std::move(SQM_CONCAT(_sqm_result_, __LINE__)).ValueOrDie()

}  // namespace sqm

#endif  // SQM_CORE_STATUS_H_
