#ifndef SQM_CORE_SYNC_H_
#define SQM_CORE_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "core/thread_annotations.h"

namespace sqm {

/// Capability-annotated mutex: a thin wrapper over std::mutex that clang's
/// -Wthread-safety analysis can see. Members protected by a Mutex carry
/// SQM_GUARDED_BY(mu_) so the compiler proves every access happens under
/// the lock; raw std::mutex offers no such proof, which is why src/net/
/// and src/obs/ use this wrapper exclusively (machine-enforced by
/// sqmlint's mutex-annotation check, see docs/STATIC_ANALYSIS.md).
///
/// The wrapper adds no state and no behavior: Lock/Unlock forward to the
/// underlying std::mutex, so the generated code is identical.
class SQM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SQM_ACQUIRE() { mu_.lock(); }
  void Unlock() SQM_RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII scoped lock over Mutex (the annotated std::lock_guard analogue).
///
///   Mutex mu_;
///   int guarded_ SQM_GUARDED_BY(mu_);
///   void Touch() { MutexLock lock(mu_); ++guarded_; }
class SQM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SQM_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() SQM_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Scoped lock that can be released before the end of its scope (the
/// annotated analogue of unlocking a std::unique_lock early). Used where a
/// function must drop the lock before a blocking call (sleep, notify) but
/// still wants RAII coverage of every early-return path.
class SQM_SCOPED_CAPABILITY ReleasableMutexLock {
 public:
  explicit ReleasableMutexLock(Mutex& mu) SQM_ACQUIRE(mu) : mu_(&mu) {
    mu_->Lock();
  }
  ~ReleasableMutexLock() SQM_RELEASE() {
    if (mu_ != nullptr) mu_->Unlock();
  }

  /// Unlocks now; the destructor becomes a no-op. Call at most once.
  void Release() SQM_RELEASE() {
    mu_->Unlock();
    mu_ = nullptr;
  }

  ReleasableMutexLock(const ReleasableMutexLock&) = delete;
  ReleasableMutexLock& operator=(const ReleasableMutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Condition variable paired with Mutex, in the abseil CondVar style: wait
/// calls take the Mutex (which the caller must hold — typically via a
/// MutexLock in the enclosing scope) rather than a lock object. Internally
/// adopts the already-held std::mutex so std::condition_variable's native
/// wait path is used unchanged.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (spurious wakeups possible, as with any condition
  /// variable). `mu` must be held by the caller.
  void Wait(Mutex& mu) SQM_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();  // The caller's scoped lock still owns the mutex.
  }

  /// Blocks until `pred()` holds. `mu` must be held by the caller.
  template <typename Predicate>
  void Wait(Mutex& mu, Predicate pred) SQM_REQUIRES(mu) {
    while (!pred()) Wait(mu);
  }

  /// Blocks until notified or `deadline`; true when notified before the
  /// deadline, false on timeout. `mu` must be held by the caller.
  template <typename Clock, typename Duration>
  bool WaitUntil(Mutex& mu,
                 const std::chrono::time_point<Clock, Duration>& deadline)
      SQM_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(native, deadline);
    native.release();
    return status == std::cv_status::no_timeout;
  }

  /// Blocks until `pred()` holds or `deadline` passes; returns `pred()`.
  template <typename Clock, typename Duration, typename Predicate>
  bool WaitUntil(Mutex& mu,
                 const std::chrono::time_point<Clock, Duration>& deadline,
                 Predicate pred) SQM_REQUIRES(mu) {
    while (!pred()) {
      if (!WaitUntil(mu, deadline)) return pred();
    }
    return true;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace sqm

#endif  // SQM_CORE_SYNC_H_
