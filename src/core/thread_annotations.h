#ifndef SQM_CORE_THREAD_ANNOTATIONS_H_
#define SQM_CORE_THREAD_ANNOTATIONS_H_

/// Clang thread-safety annotation macros (SQM_GUARDED_BY, SQM_REQUIRES,
/// ...), compiled to nothing on toolchains without the attributes.
///
/// The annotations let clang's -Wthread-safety analysis prove, at compile
/// time, that every access to a mutex-guarded member happens under its
/// mutex. They only carry meaning on the capability-annotated sync
/// primitives in core/sync.h (sqm::Mutex, sqm::MutexLock, sqm::CondVar);
/// raw std::mutex is invisible to the analysis, which is why src/net/ and
/// src/obs/ use the wrappers exclusively (machine-enforced by sqmlint's
/// mutex-annotation check, see docs/STATIC_ANALYSIS.md).
///
/// Spelling follows the modern capability attributes, with the same shape
/// as abseil's thread_annotations.h:
///
///   class SQM_CAPABILITY("mutex") Mutex { ... };
///   Mutex mu_;
///   int balance_ SQM_GUARDED_BY(mu_);
///   void Deposit(int n) SQM_REQUIRES(mu_);

#if defined(__clang__) && defined(__has_attribute)
#define SQM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SQM_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Declares a type to be a capability (lockable). The string names the
/// capability kind in diagnostics ("mutex").
#define SQM_CAPABILITY(x) SQM_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type whose lifetime acquires/releases a capability.
#define SQM_SCOPED_CAPABILITY SQM_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define SQM_GUARDED_BY(x) SQM_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x`.
#define SQM_PT_GUARDED_BY(x) SQM_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the listed capabilities to be held on entry.
#define SQM_REQUIRES(...) \
  SQM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (held on return).
#define SQM_ACQUIRE(...) \
  SQM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities (held on entry, not on return).
#define SQM_RELEASE(...) \
  SQM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function may not be called while holding the listed capabilities.
#define SQM_EXCLUDES(...) SQM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the capability guarding it.
#define SQM_RETURN_CAPABILITY(x) SQM_THREAD_ANNOTATION(lock_returned(x))

/// Assertion that the calling thread already holds `x` (runtime no-op).
#define SQM_ASSERT_CAPABILITY(...) \
  SQM_THREAD_ANNOTATION(assert_capability(__VA_ARGS__))

/// Escape hatch for functions whose locking is too dynamic for the static
/// analysis (e.g. acquiring a vector of mutexes in a loop). Use sparingly
/// and say why at the call site.
#define SQM_NO_THREAD_SAFETY_ANALYSIS \
  SQM_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // SQM_CORE_THREAD_ANNOTATIONS_H_
