#ifndef SQM_CORE_SENSITIVITY_H_
#define SQM_CORE_SENSITIVITY_H_

#include <cstddef>

#include "core/status.h"
#include "poly/polynomial.h"

namespace sqm {

/// L1/L2 sensitivity pair of a quantized release — the inputs to the
/// Skellam accountant (Lemma 1).
struct SensitivityBound {
  double l1 = 0.0;
  double l2 = 0.0;
};

/// Helper implementing the paper's generic rule Delta_1 =
/// min(Delta_2^2, sqrt(d) * Delta_2) (integer-valued outputs; Jensen).
double L1FromL2(double l2, size_t output_dim);

/// Lemma 5: sensitivity of the quantized covariance release,
/// Delta_2 = gamma^2 c^2 + n, where c bounds ||x||_2 and n is the number of
/// attributes (the +n being the quantization overhead that vanishes
/// relative to gamma^2 c^2 as gamma grows).
SensitivityBound PcaSensitivity(double gamma, double record_norm_bound,
                                size_t num_attributes);

/// Lemma 7: sensitivity of one quantized LR gradient-sum release with
/// feature dimension d (= n - 1) and ||x||_2 <= 1, ||w||_2 <= 1:
/// Delta_2 = sqrt((3/4 gamma^3)^2 + 9 gamma^5 d + 36 gamma^4).
SensitivityBound LogisticGradientSensitivity(double gamma,
                                             size_t feature_dim);

/// Generic bound for an arbitrary quantized polynomial (Lemma 4):
/// Delta_2 = gamma^{lambda+1} * max_norm + overhead, with the overhead
/// bounded via Lemma 2's per-monomial O(gamma^{lambda-1}) term scaled by the
/// per-degree coefficient amplification and summed over d * max_t v_t
/// monomials. `max_f_l2` must upper-bound max_{||x||_2 <= c} ||f(x)||_2
/// (task-specific; PCA uses c^2, LR uses 3/4). With
/// `quantize_coefficients` false (the PCA-style integer-coefficient path,
/// release scale gamma^lambda instead of gamma^{lambda+1}), the
/// coefficient amplification factor and its rounding error drop out —
/// matching Lemma 5's gamma^2 c^2 + n shape for the covariance release.
SensitivityBound PolynomialSensitivity(const PolynomialVector& f, double gamma,
                                       double record_norm_bound,
                                       double max_f_l2,
                                       bool quantize_coefficients = true);

/// Relative sensitivity overhead of LR quantization plotted in Figure 4:
/// sqrt((3/4)^2 + 9 d / gamma + 36 / gamma^2) - 3/4.
double LogisticSensitivityOverhead(double gamma, size_t feature_dim);

/// Conservative bits-of-magnitude estimate for the value SQM feeds through
/// the field: log2(m * gamma^{lambda+1} * max_f + noise margin). Used to
/// refuse parameter combinations that could wrap Z_{2^61-1} (see
/// mpc/field.h).
double EstimateCapacityBits(size_t num_records, double gamma, uint32_t degree,
                            double max_f_l2, double mu);

/// Guard used by the SQM front end: OK when EstimateCapacityBits stays
/// below the centered field capacity (60 bits), OutOfRange otherwise.
Status CheckFieldCapacity(size_t num_records, double gamma, uint32_t degree,
                          double max_f_l2, double mu);

}  // namespace sqm

#endif  // SQM_CORE_SENSITIVITY_H_
