#ifndef SQM_CORE_SQM_H_
#define SQM_CORE_SQM_H_

#include <cstdint>
#include <vector>

#include "core/quantize.h"
#include "core/sensitivity.h"
#include "core/status.h"
#include "math/matrix.h"
#include "mpc/network.h"
#include "net/threaded.h"
#include "net/transport.h"
#include "obs/ledger.h"
#include "poly/polynomial.h"

namespace sqm {

/// Which engine evaluates the quantized polynomial on shares.
enum class MpcBackend {
  /// Real BGW execution over the simulated network (faithful message
  /// pattern; used for the timing tables II/IV/V and the integration tests).
  kBgw,
  /// Functionally identical plaintext evaluation of the same quantized
  /// integers and noise shares, skipping the cryptography — the mode the
  /// paper's utility experiments effectively measure (MPC is exact, so the
  /// utility is unchanged). Orders of magnitude faster for Figure 2/3
  /// sweeps.
  kPlaintext,
};

/// What the BGW backend does when parties drop out mid-protocol.
enum class DropoutPolicy {
  /// Legacy behavior: any transport failure aborts the whole run.
  kAbort,
  /// Finish on the surviving >= 2t+1 quorum and release with the noise
  /// deficit Sk((n-d)/n * mu); the report carries the honestly recomputed
  /// realized (epsilon, delta).
  kDegrade,
  /// Like kDegrade, but survivors first share compensating Skellam noise
  /// totalling Sk(d/n * mu) so the release carries the full Sk(mu) again.
  kTopUp,
};

const char* DropoutPolicyToString(DropoutPolicy policy);

/// How the BGW backend multiplies shares.
enum class MulBackend {
  /// GRR degree reduction: every Mul re-shares the local product online.
  /// One driver round per Mul; two rounds (sub-shares + census) per Mul on
  /// the networked quorum path.
  kGrr,
  /// Offline-dealt Beaver triples: a BeaverTriplePool is pre-dealt before
  /// the protocol starts and each online Mul costs exactly one opening of
  /// the packed (x-a, y-b) batch — no census round even under dropout,
  /// since the opened values are public. Releases are bit-identical to
  /// kGrr (MPC is exact; randomness streams are disjoint by construction).
  kBeaver,
};

const char* MulBackendToString(MulBackend backend);

/// Inverse of MulBackendToString; kInvalidArgument on unknown names.
Result<MulBackend> MulBackendFromString(const std::string& name);

/// Columns owned by client `j` when `cols` attributes are evenly split
/// among `num_clients` clients (contiguous blocks, remainder to the first
/// clients). Shared by the driver evaluator and the per-party session
/// (core/party_sqm.h): both must carve the same partition or their circuit
/// input schedules diverge.
std::pair<size_t, size_t> ClientColumnRange(size_t j, size_t cols,
                                            size_t num_clients);

/// Inverse of DropoutPolicyToString; kInvalidArgument on unknown names.
Result<DropoutPolicy> DropoutPolicyFromString(const std::string& name);

/// Parameters of one SQM invocation (Algorithms 1 and 3).
struct SqmOptions {
  /// Scaling parameter gamma (quantization granularity). Larger gamma means
  /// finer quantization: both the approximation error and the relative
  /// sensitivity overhead vanish as gamma grows.
  double gamma = 256.0;

  /// Total Skellam noise parameter mu; the aggregate injected noise is
  /// Sk(mu) per output dimension, split as n independent Sk(mu/n) client
  /// shares. 0 disables noise (used to isolate quantization error).
  double mu = 0.0;

  /// Number of clients. 0 means one client per attribute/column (the
  /// paper's default partitioning).
  size_t num_clients = 0;

  MpcBackend backend = MpcBackend::kPlaintext;

  /// Shamir threshold for BGW; 0 picks the maximum (n-1)/2.
  size_t bgw_threshold = 0;

  /// Simulated per-round message latency (the paper uses 0.1 s).
  double network_latency_seconds = 0.0;

  /// Which transport runs the BGW phase. kLockstep reproduces the paper's
  /// deterministic single-machine simulation; kThreaded uses concurrent
  /// mailboxes with blocking receives and (optionally) fault injection.
  /// The released values are identical across transports — only timing,
  /// traffic, and failure behavior differ.
  TransportMode transport = TransportMode::kLockstep;

  /// Mailbox/timeout/retry/fault configuration when transport == kThreaded
  /// (per_round_latency_seconds and element_wire_bytes are overridden from
  /// this struct's siblings above).
  ThreadedTransportOptions threaded;

  uint64_t seed = 42;

  /// Dropout handling for the BGW backend. kDegrade/kTopUp attach a
  /// LivenessTracker, switch the protocol onto its quorum paths, and may
  /// resume a failed multiplication level from the phase checkpoint.
  DropoutPolicy dropout_policy = DropoutPolicy::kAbort;

  /// Multiplication backend for the BGW phase. kBeaver pre-deals a triple
  /// pool sized for the whole circuit (num_multiplications x
  /// mpc_max_attempts) from seed `seed ^ 0xbea7e5` — offline work excluded
  /// from the online timing — and halves the online round count per Mul on
  /// the networked path. Releases are bit-identical to kGrr.
  MulBackend mul_backend = MulBackend::kGrr;

  /// Delta at which degraded-mode (epsilon, delta) guarantees are
  /// recomputed and reported.
  double dp_delta = 1e-5;

  /// Bound c on ||x||_2 per record, used (with max_f_l2) to derive the
  /// release's L1/L2 sensitivities for the dropout accounting.
  double record_norm_bound = 1.0;

  /// Total attempts (first run + checkpoint resumes) for the BGW phase
  /// under kDegrade/kTopUp before the failure is surfaced.
  size_t mpc_max_attempts = 2;

  /// Upper bound on max_{||x||<=c} ||f(x)||_2, used for the field-capacity
  /// guard. Callers that know their task (PCA: c^2, LR: 3/4) should set it.
  double max_f_l2 = 1.0;

  /// Algorithm 3 lines 1-3. When false, coefficients are only rounded to
  /// the nearest integer (no per-degree scaling) and the output scale is
  /// gamma^lambda instead of gamma^{lambda+1}. The paper's PCA
  /// instantiation uses this: every coefficient is exactly 1 and every
  /// monomial has degree 2, so pre-processing would only waste a factor of
  /// gamma ("we choose not to pre-process the coefficients", Section V-A).
  /// Only valid when all monomials share one degree and have integer
  /// coefficients.
  bool quantize_coefficients = true;

  /// When true, Evaluate refuses parameter combinations whose release could
  /// exceed the field's centered range (silent wrap would corrupt results
  /// and void the DP analysis).
  bool check_capacity = true;

  /// Adversarial-conformance hooks (testing only; both default off so
  /// production runs are byte-identical to before).
  ///
  /// `interceptor` is installed on the internally constructed transport for
  /// the BGW phase — e.g. a testing::ByzantineInterceptor tampering with
  /// wire messages, or a testing::TranscriptRecorder capturing them. Must
  /// outlive the Evaluate call.
  MessageInterceptor* interceptor = nullptr;

  /// Enables the BGW conformance checks (see BgwEngine::set_verify_sharings)
  /// so a tampered run fails with kIntegrityViolation instead of releasing
  /// a silently wrong estimate. Only honored under DropoutPolicy::kAbort —
  /// the quorum paths have their own share-selection semantics.
  bool verify_sharings = false;
};

/// Timing breakdown of one SQM invocation, mirroring the columns of
/// Tables II/IV/V ("overall time" vs "time for noise injection / DP").
struct SqmTiming {
  double quantize_seconds = 0.0;
  double noise_sampling_seconds = 0.0;
  /// Wall time of the (simulated-party) MPC computation.
  double mpc_compute_seconds = 0.0;
  /// Simulated network latency (rounds * per-round latency).
  double simulated_network_seconds = 0.0;
  /// Wall time spent aggregating the noise shares inside the protocol —
  /// the paper's "time for noise injection" column.
  double noise_injection_seconds = 0.0;

  double TotalSeconds() const {
    return quantize_seconds + noise_sampling_seconds + mpc_compute_seconds +
           simulated_network_seconds;
  }
};

/// Dropout outcome of one BGW-backed run: who survived, how much noise the
/// release actually carried, and the honestly recomputed privacy guarantee.
struct DropoutReport {
  DropoutPolicy policy = DropoutPolicy::kAbort;
  size_t num_parties = 0;
  std::vector<size_t> survivors;  ///< Party indices that finished the run.
  size_t num_dropped = 0;
  double configured_mu = 0.0;  ///< Sk(mu) the run was provisioned for.
  double realized_mu = 0.0;    ///< Noise the release actually carried.
  double topup_mu = 0.0;       ///< Compensating noise added (kTopUp only).
  /// Single-release epsilon at `delta` for configured_mu / realized_mu
  /// (equal when nothing dropped; 0 when mu == 0, i.e. no DP configured).
  double configured_epsilon = 0.0;
  double realized_epsilon = 0.0;
  double delta = 0.0;
  double best_alpha = 0.0;  ///< Rényi order minimizing realized_epsilon.
  size_t mpc_attempts = 1;  ///< 1 = no checkpoint resume was needed.
  size_t resumed_from_level = 0;  ///< Mul level the last resume started at.
};

/// Output of one SQM invocation.
struct SqmReport {
  /// The server's estimate tilde-y for sum_x f(x), after down-scaling by
  /// gamma^{lambda+1}.
  std::vector<double> estimate;
  /// Integer outputs y-hat before down-scaling (what the MPC opens).
  std::vector<int64_t> raw;
  SqmTiming timing;
  /// Network counters (zero in plaintext mode).
  NetworkStats network;
  /// Full transport accounting: per-channel and per-phase breakdowns plus
  /// fault/retry counters (empty in plaintext mode).
  TransportStats transport;
  /// Dropout outcome (BGW backend; default-constructed in plaintext mode
  /// and in runs where every party survived under kAbort).
  DropoutReport dropout;
  /// Privacy-spend timeline for this run: every mechanism charge the
  /// internal accountant recorded (BGW backend with mu > 0; empty
  /// otherwise). Serialized as the report's "privacy_ledger" block.
  std::vector<obs::LedgerEntry> ledger;
};

/// The Skellam Quantization Mechanism: evaluates F(X) = sum_x f(x) for a
/// polynomial f over a vertically partitioned database with distributed
/// Skellam noise, via quantization + local noise + MPC (Algorithm 3;
/// Algorithm 1 is the special case of a single monomial dimension).
///
/// Complexities under BGW (the paper's Table I; m records, n attributes,
/// P clients, scale gamma):
///   PCA  — computation O(mP + n^2 m log m / P + n^2) per client,
///          communication O(n^2 m P log gamma), time O(n^2 m log m).
///   LR   — computation O(m(n-1)P + m(n-1) log m / P) per client,
///          communication O(m(n-1) P log m log gamma),
///          time O(m(n-1) log m).
/// The LR row assumes the structured inner-product evaluation
/// (mpc/ops.h NoisyLogisticGradient); the generic circuit path used by
/// this evaluator expands the polynomial and costs one extra factor of n
/// in products (bench/table1_complexity_scaling and
/// bench/ablation_structured_vs_circuit measure both).
class SqmEvaluator {
 public:
  explicit SqmEvaluator(SqmOptions options);

  /// Runs the full mechanism on database `x` (rows = records, columns =
  /// attributes; column j belongs to client j when num_clients is 0).
  Result<SqmReport> Evaluate(const PolynomialVector& f, const Matrix& x);

  const SqmOptions& options() const { return options_; }

 private:
  Result<SqmReport> EvaluatePlaintext(const QuantizedPolynomial& qf,
                                      const QuantizedDatabase& db,
                                      const std::vector<std::vector<int64_t>>&
                                          noise_per_client,
                                      double quantize_seconds,
                                      double noise_seconds);
  Result<SqmReport> EvaluateBgw(const QuantizedPolynomial& qf,
                                const QuantizedDatabase& db,
                                const std::vector<std::vector<int64_t>>&
                                    noise_per_client,
                                double quantize_seconds, double noise_seconds,
                                const SensitivityBound& sensitivity);

  SqmOptions options_;
};

}  // namespace sqm

#endif  // SQM_CORE_SQM_H_
