#ifndef SQM_CORE_PARTY_SQM_H_
#define SQM_CORE_PARTY_SQM_H_

#include <cstdint>
#include <functional>

#include "core/sqm.h"
#include "core/status.h"
#include "math/matrix.h"
#include "net/tcp/party_config.h"
#include "net/transport.h"

namespace sqm {

/// The number of database columns a deployment uses (config.cols, or one
/// column per party when it is 0).
size_t DeploymentCols(const DeploymentConfig& config);

/// The deployment's synthetic database: rows x cols, filled from
/// `data_seed` with every record normalized to ||x||_2 <= 1 (the paper's
/// precondition with the default record_norm_bound). Deterministic, so the
/// coordinator's in-process comparison run and every party generate the
/// SAME matrix; a party then keeps only its own ClientColumnRange columns.
Matrix GenerateDeploymentMatrix(size_t rows, size_t cols,
                                uint64_t data_seed);

/// SqmOptions that make SqmEvaluator run this deployment in-process over
/// the lockstep transport — the driver-mode reference the deploy_smoke
/// test compares bit-for-bit against the networked run.
Result<SqmOptions> SqmOptionsFromDeployment(const DeploymentConfig& config);

/// Test/chaos hooks threaded into the per-party engine.
struct PartySqmHooks {
  /// Forwarded to PartyEngine::set_mul_level_hook; the sqm-party daemon's
  /// --crash-at-mul-level uses it to raise SIGKILL mid-protocol.
  std::function<void(size_t)> mul_level_hook;

  /// When non-empty AND config.recovery_deadline_seconds > 0 AND the
  /// dropout policy is not kAbort, durable checkpoints (wire shares + RNG
  /// cursor, see mpc/checkpoint_store.h) are written to this directory at
  /// every phase boundary, and the protocol runs in recovery mode: failed
  /// levels resynchronize at a resume barrier instead of degrading
  /// immediately, so a supervised restart can rejoin.
  std::string checkpoint_dir;

  /// This process's restart generation (0 = first spawn). > 0 makes
  /// RunPartySqm load the durable checkpoint and run a resume barrier
  /// BEFORE the first evaluation attempt — the peers of a killed party
  /// are already waiting at theirs.
  uint32_t incarnation = 0;
};

/// Runs party `me`'s side of the full SQM mechanism (Algorithm 3) over
/// `transport` and returns this party's copy of the report. The networked
/// counterpart of SqmEvaluator::Evaluate with backend kBgw:
///
///  - quantizes the public coefficients identically to the driver (the
///    coefficient RNG stream is derived from the shared seed),
///  - quantizes ONLY its own columns and samples ONLY its own Skellam
///    noise share, replaying the driver's RNG split sequence so the values
///    equal the ones driver mode would have assigned to this party,
///  - builds the same arithmetic circuit (public structure) and evaluates
///    it with PartyEngine, so the released values are BIT-IDENTICAL to a
///    driver-mode run of the same config,
///  - reproduces the driver's dropout accounting: every input to the
///    realized-(epsilon, delta) computation is public (survivor census,
///    mu, sensitivities), so all surviving parties — and the coordinator —
///    report the same guarantee.
///
/// The report's noise_injection timing comes from a local zero-noise probe
/// of the same shape as the driver's (a party cannot know the other
/// parties' noise vectors): the TIMING is representative, the probe values
/// are not compared anywhere.
///
/// `transport` must already be connected (see TcpTransport::Create) and
/// have num_parties() == config.parties.size().
Result<SqmReport> RunPartySqm(const DeploymentConfig& config, size_t me,
                              Transport* transport,
                              const PartySqmHooks& hooks = {});

}  // namespace sqm

#endif  // SQM_CORE_PARTY_SQM_H_
