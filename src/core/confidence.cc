#include "core/confidence.h"

#include <cmath>

namespace sqm {

double SkellamTailRadius(double mu, double beta) {
  if (mu <= 0.0) return 0.0;
  // Invert 2 exp(-t^2 / (2 (2 mu + t))) <= beta:
  //   t^2 - 2 L t - 4 mu L >= 0  with  L = ln(2 / beta),
  // whose positive root is L + sqrt(L^2 + 4 mu L).
  const double l = std::log(2.0 / beta);
  return l + std::sqrt(l * l + 4.0 * mu * l);
}

Result<ReleaseInterval> SkellamReleaseInterval(double estimate, double mu,
                                               double output_scale,
                                               double confidence) {
  if (mu < 0.0) {
    return Status::InvalidArgument("mu must be >= 0");
  }
  if (output_scale <= 0.0) {
    return Status::InvalidArgument("output_scale must be positive");
  }
  if (confidence <= 0.0 || confidence >= 1.0) {
    return Status::InvalidArgument("confidence must be in (0, 1)");
  }
  const double radius =
      SkellamTailRadius(mu, 1.0 - confidence) / output_scale;
  ReleaseInterval interval;
  interval.lower = estimate - radius;
  interval.upper = estimate + radius;
  interval.noise_std = std::sqrt(2.0 * mu) / output_scale;
  return interval;
}

}  // namespace sqm
