#ifndef SQM_CORE_REPORT_IO_H_
#define SQM_CORE_REPORT_IO_H_

#include <string>
#include <vector>

#include "core/sqm.h"

namespace sqm {

/// Minimal JSON writer used to persist experiment artifacts — release
/// reports, timing breakdowns, network counters — so downstream analysis
/// (plotting the reproduced figures, regression-tracking the tables) does
/// not have to scrape stdout. Writes only; the library has no JSON
/// consumer.
class JsonWriter {
 public:
  JsonWriter();

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray(const std::string& key = "");
  JsonWriter& EndArray();

  JsonWriter& Key(const std::string& key);
  JsonWriter& Value(double value);
  JsonWriter& Value(uint64_t value);
  JsonWriter& Value(int64_t value);
  JsonWriter& Value(const std::string& value);
  JsonWriter& Value(bool value);

  /// Convenience: Key(key) + Value(value).
  template <typename T>
  JsonWriter& Field(const std::string& key, const T& value) {
    Key(key);
    return Value(value);
  }

  /// The accumulated document.
  std::string str() const { return out_; }

 private:
  void MaybeComma();
  void Escape(const std::string& raw);

  std::string out_;
  std::vector<bool> needs_comma_;
};

/// Serializes an SQM release report (estimates, raw integers, timing,
/// network counters, transport breakdowns) to a JSON object.
std::string SqmReportToJson(const SqmReport& report);

/// Serializes network counters alone.
std::string NetworkStatsToJson(const NetworkStats& stats);

/// Serializes a full transport snapshot: totals, per-channel and per-phase
/// breakdowns, fault/retry counters, simulated and wall clocks.
std::string TransportStatsToJson(const TransportStats& stats);

}  // namespace sqm

#endif  // SQM_CORE_REPORT_IO_H_
