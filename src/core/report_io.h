#ifndef SQM_CORE_REPORT_IO_H_
#define SQM_CORE_REPORT_IO_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/json.h"
#include "core/sqm.h"

namespace sqm {

// JsonWriter, JsonValue and ParseJson moved to core/json.h (base layer) so
// the observability runtime and logger can emit JSON; this header re-exports
// them for existing consumers.

/// Serializes an SQM release report (estimates, raw integers, timing,
/// network counters, transport breakdowns, privacy ledger) to a JSON
/// object.
std::string SqmReportToJson(const SqmReport& report);

/// Reloads a report written by SqmReportToJson: estimate, raw, timing,
/// network, dropout and privacy-ledger blocks (transport breakdowns are not
/// reloaded; a missing privacy_ledger block — pre-observability reports —
/// loads as an empty ledger). Malformed or structurally wrong documents
/// fail with a Status, never a crash.
Result<SqmReport> SqmReportFromJson(const std::string& json);

/// Serializes network counters alone.
std::string NetworkStatsToJson(const NetworkStats& stats);

/// Serializes a full transport snapshot: totals, per-channel and per-phase
/// breakdowns, fault/retry counters, simulated and wall clocks.
std::string TransportStatsToJson(const TransportStats& stats);

}  // namespace sqm

#endif  // SQM_CORE_REPORT_IO_H_
