#ifndef SQM_CORE_REPORT_IO_H_
#define SQM_CORE_REPORT_IO_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/sqm.h"

namespace sqm {

/// Minimal JSON writer used to persist experiment artifacts — release
/// reports, timing breakdowns, network counters — so downstream analysis
/// (plotting the reproduced figures, regression-tracking the tables) does
/// not have to scrape stdout. ParseJson below is the matching consumer,
/// used to reload reports and transcripts for replay.
class JsonWriter {
 public:
  JsonWriter();

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray(const std::string& key = "");
  JsonWriter& EndArray();

  JsonWriter& Key(const std::string& key);
  JsonWriter& Value(double value);
  JsonWriter& Value(uint64_t value);
  JsonWriter& Value(int64_t value);
  JsonWriter& Value(const std::string& value);
  JsonWriter& Value(bool value);

  /// Convenience: Key(key) + Value(value).
  template <typename T>
  JsonWriter& Field(const std::string& key, const T& value) {
    Key(key);
    return Value(value);
  }

  /// The accumulated document.
  std::string str() const { return out_; }

 private:
  void MaybeComma();
  void Escape(const std::string& raw);

  std::string out_;
  std::vector<bool> needs_comma_;
};

/// A parsed JSON value. Numbers keep their exact integer representation
/// alongside the double: field elements go up to 2^61 - 2, beyond double's
/// 2^53 of integer precision, so a transcript round-tripped through the
/// double would silently corrupt shares.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;

  double number = 0.0;      ///< Numeric value (lossy above 2^53).
  bool is_integer = false;  ///< Lexically integral and within 64-bit range.
  bool is_negative = false;
  uint64_t uint_value = 0;  ///< Magnitude when is_integer.
  int64_t int_value = 0;    ///< Signed value when is_integer & representable.

  std::string string_value;
  std::vector<JsonValue> items;  ///< kArray elements.
  std::vector<std::pair<std::string, JsonValue>> members;  ///< kObject.

  /// First member with the given key, or nullptr (object only).
  const JsonValue* Find(const std::string& key) const;
};

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage is an error). Malformed input fails with kIoError naming the
/// byte offset — never a crash.
Result<JsonValue> ParseJson(const std::string& text);

/// Serializes an SQM release report (estimates, raw integers, timing,
/// network counters, transport breakdowns) to a JSON object.
std::string SqmReportToJson(const SqmReport& report);

/// Reloads a report written by SqmReportToJson: estimate, raw, timing,
/// network and dropout blocks (transport breakdowns are not reloaded).
/// Malformed or structurally wrong documents fail with a Status, never a
/// crash.
Result<SqmReport> SqmReportFromJson(const std::string& json);

/// Serializes network counters alone.
std::string NetworkStatsToJson(const NetworkStats& stats);

/// Serializes a full transport snapshot: totals, per-channel and per-phase
/// breakdowns, fault/retry counters, simulated and wall clocks.
std::string TransportStatsToJson(const TransportStats& stats);

}  // namespace sqm

#endif  // SQM_CORE_REPORT_IO_H_
