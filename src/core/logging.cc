#include "core/logging.h"

#include <atomic>
#include <cstdlib>
#include <iostream>

namespace sqm {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

void Logger::SetLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel Logger::GetLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void Logger::Log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) >=
      g_level.load(std::memory_order_relaxed)) {
    std::cerr << "[" << LevelName(level) << "] " << message << "\n";
  }
  if (level == LogLevel::kFatal) std::abort();
}

}  // namespace sqm
