#include "core/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "core/json.h"
#include "obs/obs.h"

namespace sqm {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

/// Mutable logger state behind one mutex: sink, per-module overrides and
/// fatal hooks. Heap-allocated and never destroyed so logging from
/// detached threads during process exit stays safe.
struct LoggerState {
  std::mutex mu;
  LogSink sink;  // Null: default stderr sink.
  std::map<std::string, int> module_levels;
  std::vector<std::function<void()>> fatal_hooks;
};

LoggerState& State() {
  static LoggerState* state = new LoggerState();
  return *state;
}

void DefaultSink(const LogRecord& record) {
  // One formatted line composed up front, emitted with a single fwrite so
  // concurrent parties cannot interleave bytes.
  std::string line = "[";
  line += LevelName(record.level);
  line += "] ";
  line += record.message;
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
}

void Dispatch(const LogRecord& record) {
  LoggerState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.sink) {
    state.sink(record);
  } else {
    DefaultSink(record);
  }
}

void RunFatalHooks() {
  // Recursion guard: a hook that itself hits a fatal condition must not
  // re-enter the hook list.
  static std::atomic<bool> ran{false};
  if (ran.exchange(true)) return;
  std::vector<std::function<void()>> hooks;
  {
    LoggerState& state = State();
    std::lock_guard<std::mutex> lock(state.mu);
    hooks = state.fatal_hooks;
  }
  for (const auto& hook : hooks) hook();
}

}  // namespace

void Logger::SetLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel Logger::GetLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void Logger::SetModuleLevel(const std::string& module, LogLevel level) {
  LoggerState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.module_levels[module] = static_cast<int>(level);
}

void Logger::ClearModuleLevel(const std::string& module) {
  LoggerState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.module_levels.erase(module);
}

void Logger::ClearModuleLevels() {
  LoggerState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.module_levels.clear();
}

bool Logger::ShouldLog(LogLevel level, const std::string& module) {
  int threshold = g_level.load(std::memory_order_relaxed);
  if (!module.empty()) {
    LoggerState& state = State();
    std::lock_guard<std::mutex> lock(state.mu);
    auto it = state.module_levels.find(module);
    if (it != state.module_levels.end()) threshold = it->second;
  }
  return static_cast<int>(level) >= threshold;
}

void Logger::SetSink(LogSink sink) {
  LoggerState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.sink = std::move(sink);
}

std::string Logger::RecordToJsonLine(const LogRecord& record) {
  JsonWriter writer;
  writer.BeginObject()
      .Field("ts", record.elapsed_seconds)
      .Field("level", LevelName(record.level))
      .Field("module", record.module)
      .Field("file", record.file)
      .Field("line", record.line)
      .Field("message", record.message)
      .EndObject();
  return writer.str();
}

void Logger::AddFatalHook(std::function<void()> hook) {
  LoggerState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.fatal_hooks.push_back(std::move(hook));
}

std::string Logger::ModuleFromFile(const char* file) {
  if (file == nullptr) return "";
  const std::string path(file);
  // Prefer the segment after the last "src/" so absolute paths work too.
  const size_t src = path.rfind("src/");
  size_t begin;
  if (src != std::string::npos) {
    begin = src + 4;
  } else {
    const size_t slash = path.find('/');
    if (slash == std::string::npos) return "";
    begin = 0;
  }
  const size_t end = path.find('/', begin);
  if (end == std::string::npos) return "";  // A bare filename under src/.
  return path.substr(begin, end - begin);
}

void Logger::Log(LogLevel level, const std::string& message) {
  LogAt(level, "", 0, message);
}

void Logger::LogAt(LogLevel level, const char* file, int line,
                   const std::string& message) {
  LogRecord record;
  record.level = level;
  record.file = file == nullptr ? "" : file;
  record.line = line;
  record.module = ModuleFromFile(record.file);
  record.message = message;
  record.elapsed_seconds = static_cast<double>(obs::NowMicros()) * 1e-6;
  if (ShouldLog(level, record.module)) {
    Dispatch(record);
  }
  if (level == LogLevel::kFatal) {
    RunFatalHooks();
    std::abort();
  }
}

namespace internal {

void CheckFailed(const char* file, int line, const char* expression) {
  std::string message = "Check failed: ";
  message += expression;
  message += " at ";
  message += file;
  message += ":";
  message += std::to_string(line);
  Logger::LogAt(LogLevel::kFatal, file, line, message);
  std::abort();  // Unreachable: LogAt aborts on kFatal.
}

}  // namespace internal

}  // namespace sqm
