#ifndef SQM_CORE_JSON_H_
#define SQM_CORE_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/status.h"

namespace sqm {

/// Minimal JSON writer used to persist experiment artifacts — release
/// reports, timing breakdowns, network counters, Chrome trace-event files,
/// metrics snapshots — so downstream analysis (plotting the reproduced
/// figures, regression-tracking the tables, loading a trace in Perfetto)
/// does not have to scrape stdout. ParseJson below is the matching
/// consumer, used to reload reports and transcripts for replay.
///
/// Lives in the base layer (alongside status and logging) so every
/// subsystem — including the observability runtime in src/obs/ — can emit
/// JSON without depending on the full report pipeline.
class JsonWriter {
 public:
  JsonWriter();

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray(const std::string& key = "");
  JsonWriter& EndArray();

  JsonWriter& Key(const std::string& key);
  JsonWriter& Value(double value);
  JsonWriter& Value(uint64_t value);
  JsonWriter& Value(int64_t value);
  JsonWriter& Value(const std::string& value);
  JsonWriter& Value(bool value);
  /// Disambiguation overloads: without these, a literal like "ms" would
  /// silently pick the bool overload and an int literal is ambiguous.
  JsonWriter& Value(const char* value) { return Value(std::string(value)); }
  JsonWriter& Value(int value) { return Value(static_cast<int64_t>(value)); }

  /// Convenience: Key(key) + Value(value).
  template <typename T>
  JsonWriter& Field(const std::string& key, const T& value) {
    Key(key);
    return Value(value);
  }

  /// The accumulated document.
  std::string str() const { return out_; }

 private:
  void MaybeComma();
  void Escape(const std::string& raw);

  std::string out_;
  std::vector<bool> needs_comma_;
};

/// A parsed JSON value. Numbers keep their exact integer representation
/// alongside the double: field elements go up to 2^61 - 2, beyond double's
/// 2^53 of integer precision, so a transcript round-tripped through the
/// double would silently corrupt shares.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;

  double number = 0.0;      ///< Numeric value (lossy above 2^53).
  bool is_integer = false;  ///< Lexically integral and within 64-bit range.
  bool is_negative = false;
  uint64_t uint_value = 0;  ///< Magnitude when is_integer.
  int64_t int_value = 0;    ///< Signed value when is_integer & representable.

  std::string string_value;
  std::vector<JsonValue> items;  ///< kArray elements.
  std::vector<std::pair<std::string, JsonValue>> members;  ///< kObject.

  /// First member with the given key, or nullptr (object only).
  const JsonValue* Find(const std::string& key) const;
};

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage is an error). Malformed input fails with kIoError naming the
/// byte offset — never a crash.
Result<JsonValue> ParseJson(const std::string& text);

}  // namespace sqm

#endif  // SQM_CORE_JSON_H_
