#include "core/sqm.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>

#include "core/logging.h"
#include "dp/accountant.h"
#include "dp/skellam.h"
#include "mpc/beaver.h"
#include "mpc/bgw.h"
#include "mpc/circuit.h"
#include "mpc/field.h"
#include "mpc/protocol.h"
#include "mpc/shamir.h"
#include "net/liveness.h"
#include "obs/trace.h"
#include "sampling/skellam_sampler.h"

namespace sqm {
namespace {

double SecondsSince(
    const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Emits a completed span [start_micros, now) on the current track —
/// used where a pipeline step's extent is delimited by statements, not a
/// scope, so RAII Span cannot bound it.
void EmitPhaseSpan(const char* name, uint64_t start_micros) {
  if (!obs::Enabled()) return;
  obs::TraceEvent event;
  event.name = name;
  event.category = "sqm";
  event.track = obs::Tracer::CurrentTrack();
  event.ts_micros = start_micros;
  event.dur_micros = obs::NowMicros() - start_micros;
  obs::Tracer::Global().Emit(event);
}

}  // namespace

std::pair<size_t, size_t> ClientColumnRange(size_t j, size_t cols,
                                            size_t num_clients) {
  const size_t base = cols / num_clients;
  const size_t extra = cols % num_clients;
  const size_t begin = j * base + std::min(j, extra);
  const size_t count = base + (j < extra ? 1 : 0);
  return {begin, begin + count};
}

const char* DropoutPolicyToString(DropoutPolicy policy) {
  switch (policy) {
    case DropoutPolicy::kAbort:
      return "abort";
    case DropoutPolicy::kDegrade:
      return "degrade";
    case DropoutPolicy::kTopUp:
      return "topup";
  }
  return "unknown";
}

Result<DropoutPolicy> DropoutPolicyFromString(const std::string& name) {
  if (name == "abort") return DropoutPolicy::kAbort;
  if (name == "degrade") return DropoutPolicy::kDegrade;
  if (name == "topup") return DropoutPolicy::kTopUp;
  return Status::InvalidArgument("unknown dropout policy \"" + name +
                                 "\" (expected abort, degrade, or topup)");
}

const char* MulBackendToString(MulBackend backend) {
  switch (backend) {
    case MulBackend::kGrr:
      return "grr";
    case MulBackend::kBeaver:
      return "beaver";
  }
  return "unknown";
}

Result<MulBackend> MulBackendFromString(const std::string& name) {
  if (name == "grr") return MulBackend::kGrr;
  if (name == "beaver") return MulBackend::kBeaver;
  return Status::InvalidArgument("unknown mul backend \"" + name +
                                 "\" (expected grr or beaver)");
}

SqmEvaluator::SqmEvaluator(SqmOptions options)
    : options_(std::move(options)) {}

Result<SqmReport> SqmEvaluator::Evaluate(const PolynomialVector& f,
                                         const Matrix& x) {
  if (f.output_dim() == 0) {
    return Status::InvalidArgument("polynomial has no output dimensions");
  }
  if (f.MinArity() > x.cols()) {
    return Status::InvalidArgument(
        "polynomial references more variables than the database has columns");
  }
  if (x.rows() == 0) {
    return Status::InvalidArgument("empty database");
  }
  const size_t num_clients =
      options_.num_clients == 0 ? x.cols() : options_.num_clients;
  if (num_clients < 2) {
    return Status::InvalidArgument(
        "SQM needs >= 2 clients (a single client is the centralized "
        "setting)");
  }
  if (num_clients > x.cols()) {
    return Status::InvalidArgument(
        "more clients than columns: every client must own >= 1 column");
  }
  if (options_.gamma < 1.0) {
    return Status::InvalidArgument("gamma must be >= 1");
  }
  if (options_.mu < 0.0) {
    return Status::InvalidArgument("mu must be >= 0");
  }
  if (options_.check_capacity) {
    SQM_RETURN_NOT_OK(CheckFieldCapacity(x.rows(), options_.gamma, f.Degree(),
                                         options_.max_f_l2, options_.mu));
  }

  Rng rng(options_.seed);

  obs::Span evaluate_span("sqm.evaluate", "sqm");
  evaluate_span.AddArg("clients", static_cast<int64_t>(num_clients));
  evaluate_span.AddArg("rows", static_cast<int64_t>(x.rows()));
  evaluate_span.AddArg("output_dim", static_cast<int64_t>(f.output_dim()));

  // ---- Step 1: quantization (Algorithm 3 lines 1-5). Coefficients are
  // public; data columns are rounded privately per client.
  const auto quantize_start = std::chrono::steady_clock::now();
  const uint64_t quantize_ts = obs::NowMicros();
  QuantizedPolynomial qf;
  if (options_.quantize_coefficients) {
    Rng coeff_rng = rng.Split(0x0c0eff);
    SQM_ASSIGN_OR_RETURN(qf, QuantizePolynomial(f, options_.gamma,
                                                coeff_rng));
  } else {
    // PCA-style: coefficients are already integers of a single-degree
    // polynomial; keep them and down-scale by gamma^lambda only.
    for (const Polynomial& p : f.dims()) {
      for (const Monomial& term : p.terms()) {
        if (term.Degree() != f.Degree()) {
          return Status::InvalidArgument(
              "quantize_coefficients=false requires all monomials to have "
              "the polynomial's degree");
        }
        const double c = term.coefficient();
        if (c != std::floor(c)) {
          return Status::InvalidArgument(
              "quantize_coefficients=false requires integer coefficients");
        }
      }
    }
    qf.degree = f.Degree();
    qf.output_scale = std::pow(options_.gamma,
                               static_cast<double>(qf.degree));
    qf.dims.resize(f.output_dim());
    for (size_t t = 0; t < f.output_dim(); ++t) {
      for (const Monomial& term : f.dims()[t].terms()) {
        QuantizedMonomial qm;
        qm.coefficient = static_cast<int64_t>(term.coefficient());
        qm.exponents = term.exponents();
        qf.dims[t].push_back(std::move(qm));
      }
    }
  }
  Rng data_rng = rng.Split(0xda7a);
  QuantizedDatabase db = QuantizeDatabase(x, options_.gamma, data_rng);
  const double quantize_seconds = SecondsSince(quantize_start);
  EmitPhaseSpan("sqm.quantize", quantize_ts);

  // ---- Step 2: local noise sampling (Algorithm 3 lines 6-8): each client
  // draws Sk(mu / n) per output dimension, privately, before the MPC phase
  // (which is what makes the mechanism robust to timing attacks).
  const auto noise_start = std::chrono::steady_clock::now();
  const uint64_t noise_ts = obs::NowMicros();
  const size_t d = f.output_dim();
  std::vector<std::vector<int64_t>> noise_per_client(
      num_clients, std::vector<int64_t>(d, 0));
  if (options_.mu > 0.0) {
    const SkellamSampler sampler(options_.mu /
                                 static_cast<double>(num_clients));
    for (size_t j = 0; j < num_clients; ++j) {
      Rng client_rng = rng.Split(0x4015e + j);
      noise_per_client[j] = sampler.SampleVector(client_rng, d);
    }
  }
  const double noise_seconds = SecondsSince(noise_start);
  EmitPhaseSpan("sqm.noise_sample", noise_ts);

  // ---- Step 3: secure evaluation + perturbation, then server
  // post-processing.
  if (options_.backend == MpcBackend::kPlaintext) {
    return EvaluatePlaintext(qf, db, noise_per_client, quantize_seconds,
                             noise_seconds);
  }
  // Sensitivity of the release, needed by the dropout accounting to turn a
  // realized noise level back into an honest (epsilon, delta).
  SensitivityBound sensitivity;
  if (options_.mu > 0.0) {
    sensitivity = PolynomialSensitivity(f, options_.gamma,
                                        options_.record_norm_bound,
                                        options_.max_f_l2,
                                        options_.quantize_coefficients);
  }
  return EvaluateBgw(qf, db, noise_per_client, quantize_seconds,
                     noise_seconds, sensitivity);
}

Result<SqmReport> SqmEvaluator::EvaluatePlaintext(
    const QuantizedPolynomial& qf, const QuantizedDatabase& db,
    const std::vector<std::vector<int64_t>>& noise_per_client,
    double quantize_seconds, double noise_seconds) {
  const size_t d = qf.dims.size();
  SqmReport report;
  report.raw.resize(d, 0);

  const auto compute_start = std::chrono::steady_clock::now();
  for (size_t t = 0; t < d; ++t) {
    __int128 acc = 0;
    for (size_t i = 0; i < db.rows; ++i) {
      SQM_ASSIGN_OR_RETURN(int64_t value,
                           EvaluateQuantizedDim(qf.dims[t], db, i));
      acc += value;
    }
    if (acc > Field::kMaxCentered || acc < -Field::kMaxCentered) {
      return Status::OutOfRange(
          "aggregate exceeds field capacity; lower gamma or split the data");
    }
    report.raw[t] = static_cast<int64_t>(acc);
  }
  const double compute_seconds = SecondsSince(compute_start);

  // Noise injection: the aggregation of the clients' noise shares — the
  // quantity Tables II/IV/V isolate as the "time for DP".
  const auto inject_start = std::chrono::steady_clock::now();
  for (size_t t = 0; t < d; ++t) {
    __int128 acc = report.raw[t];
    for (const auto& client_noise : noise_per_client) {
      acc += client_noise[t];
    }
    if (acc > Field::kMaxCentered || acc < -Field::kMaxCentered) {
      return Status::OutOfRange("noisy aggregate exceeds field capacity");
    }
    report.raw[t] = static_cast<int64_t>(acc);
  }
  const double inject_seconds = SecondsSince(inject_start);

  report.estimate.resize(d);
  for (size_t t = 0; t < d; ++t) {
    report.estimate[t] =
        static_cast<double>(report.raw[t]) / qf.output_scale;
  }
  report.timing.quantize_seconds = quantize_seconds;
  report.timing.noise_sampling_seconds = noise_seconds;
  report.timing.mpc_compute_seconds = compute_seconds + inject_seconds;
  report.timing.noise_injection_seconds = noise_seconds + inject_seconds;
  return report;
}

Result<SqmReport> SqmEvaluator::EvaluateBgw(
    const QuantizedPolynomial& qf, const QuantizedDatabase& db,
    const std::vector<std::vector<int64_t>>& noise_per_client,
    double quantize_seconds, double noise_seconds,
    const SensitivityBound& sensitivity) {
  const size_t num_clients = noise_per_client.size();
  const size_t d = qf.dims.size();
  if (num_clients < 3) {
    return Status::InvalidArgument(
        "the BGW backend needs >= 3 clients (threshold < n/2 with "
        "threshold >= 1); use more columns/clients or the plaintext "
        "backend");
  }
  const size_t threshold = options_.bgw_threshold == 0
                               ? (num_clients - 1) / 2
                               : options_.bgw_threshold;
  SQM_RETURN_NOT_OK(ShamirScheme::Validate(num_clients, threshold));

  // Name the party tracks so the exported trace renders one labeled row
  // per party; the driver's own spans go on the track after the parties.
  if (obs::Enabled()) {
    for (size_t j = 0; j < num_clients; ++j) {
      obs::Tracer::Global().SetTrackName(static_cast<int32_t>(j),
                                         "party " + std::to_string(j));
    }
    obs::Tracer::Global().SetTrackName(static_cast<int32_t>(num_clients),
                                       "driver");
  }
  obs::TrackScope driver_track(static_cast<int32_t>(num_clients));
  obs::Span bgw_span("sqm.bgw", "sqm");
  bgw_span.AddArg("parties", static_cast<int64_t>(num_clients));
  bgw_span.AddArg("threshold", static_cast<int64_t>(threshold));

  // ---- Build one circuit: data inputs per client (its columns), noise
  // inputs per client (one per output dimension), d outputs.
  Circuit circuit;
  // column_wires[col][row].
  std::vector<std::vector<Circuit::WireId>> column_wires(db.cols);
  std::vector<std::vector<int64_t>> inputs_per_party(num_clients);
  for (size_t j = 0; j < num_clients; ++j) {
    const auto [begin, end] = ClientColumnRange(j, db.cols, num_clients);
    for (size_t col = begin; col < end; ++col) {
      column_wires[col].resize(db.rows);
      for (size_t i = 0; i < db.rows; ++i) {
        column_wires[col][i] = circuit.AddInput(j);
        inputs_per_party[j].push_back(db.at(i, col));
      }
    }
  }
  // noise_wires[j][t].
  std::vector<std::vector<Circuit::WireId>> noise_wires(num_clients);
  for (size_t j = 0; j < num_clients; ++j) {
    noise_wires[j].resize(d);
    for (size_t t = 0; t < d; ++t) {
      noise_wires[j][t] = circuit.AddInput(j);
      inputs_per_party[j].push_back(noise_per_client[j][t]);
    }
  }

  for (size_t t = 0; t < d; ++t) {
    Circuit::WireId acc = circuit.AddConstant(0);
    for (size_t i = 0; i < db.rows; ++i) {
      for (const QuantizedMonomial& term : qf.dims[t]) {
        // Product of variable powers, then scale by the public quantized
        // coefficient.
        Circuit::WireId prod = 0;
        bool have_prod = false;
        for (const auto& [var, exp] : term.exponents) {
          for (uint32_t e = 0; e < exp; ++e) {
            if (!have_prod) {
              prod = column_wires[var][i];
              have_prod = true;
            } else {
              prod = circuit.AddMul(prod, column_wires[var][i]);
            }
          }
        }
        const Field::Element coeff = Field::Encode(term.coefficient);
        const Circuit::WireId scaled =
            have_prod ? circuit.AddMulConst(prod, coeff)
                      : circuit.AddConstant(coeff);
        acc = circuit.AddAdd(acc, scaled);
      }
    }
    for (size_t j = 0; j < num_clients; ++j) {
      acc = circuit.AddAdd(acc, noise_wires[j][t]);
    }
    circuit.MarkOutput(acc);
  }

  // The protocol code is transport-agnostic; the options pick the
  // execution model (deterministic lock-step vs concurrent mailboxes with
  // optional fault injection).
  std::unique_ptr<Transport> network;
  if (options_.transport == TransportMode::kThreaded) {
    ThreadedTransportOptions threaded = options_.threaded;
    threaded.per_round_latency_seconds = options_.network_latency_seconds;
    threaded.element_wire_bytes = Field::kWireBytes;
    network = std::make_unique<ThreadedTransport>(num_clients, threaded);
  } else {
    auto lockstep = std::make_unique<SimulatedNetwork>(
        num_clients, options_.network_latency_seconds);
    // Lockstep honors the crash component of the fault options, so the
    // same dropout scenario runs under both transports.
    lockstep->ScheduleCrashes(options_.threaded.faults.EffectiveCrashes());
    network = std::move(lockstep);
  }
  if (options_.interceptor != nullptr) {
    network->SetInterceptor(options_.interceptor);
  }
  BgwEngine engine(ShamirScheme(num_clients, threshold), network.get(),
                   options_.seed ^ 0xb9d7);
  const DropoutPolicy policy = options_.dropout_policy;
  if (options_.verify_sharings && policy == DropoutPolicy::kAbort) {
    engine.set_verify_sharings(true);
  }
  const size_t quorum = 2 * threshold + 1;
  LivenessTracker tracker(num_clients);
  if (policy != DropoutPolicy::kAbort) engine.set_liveness(&tracker);

  // Beaver backend: deal the whole circuit's triples offline, before the
  // online clock starts. A checkpoint resume replays Mul levels, so the
  // pool is provisioned for max_attempts full passes; exhaustion inside
  // the protocol is a kFailedPrecondition, never a silent online deal.
  std::unique_ptr<BeaverTriplePool> beaver_pool;
  if (options_.mul_backend == MulBackend::kBeaver) {
    const size_t max_pool_attempts =
        policy != DropoutPolicy::kAbort
            ? std::max<size_t>(options_.mpc_max_attempts, 1)
            : 1;
    beaver_pool = std::make_unique<BeaverTriplePool>(
        ShamirScheme(num_clients, threshold), options_.seed ^ 0xbea7e5,
        circuit.num_multiplications() * max_pool_attempts);
    engine.protocol().set_beaver_pool(beaver_pool.get());
  }

  const auto compute_start = std::chrono::steady_clock::now();
  const uint64_t compute_ts = obs::NowMicros();

  // BGW phases 1+2 with phase-level checkpointing: a run that loses a
  // multiplication level to flaky links retries from the last completed
  // level instead of restarting quantization or input sharing. A quorum
  // shortfall (alive < 2t+1) is unrecoverable and surfaces immediately.
  BgwCheckpoint checkpoint;
  BgwCheckpoint* checkpoint_ptr =
      policy != DropoutPolicy::kAbort ? &checkpoint : nullptr;
  const size_t max_attempts =
      policy != DropoutPolicy::kAbort
          ? std::max<size_t>(options_.mpc_max_attempts, 1)
          : 1;
  SharedVector out_shares;
  size_t attempts = 0;
  size_t resumed_from_level = 0;
  while (true) {
    ++attempts;
    Result<SharedVector> shares =
        engine.EvaluateToShares(circuit, inputs_per_party, checkpoint_ptr);
    if (shares.ok()) {
      out_shares = std::move(shares).ValueOrDie();
      break;
    }
    const bool retryable = policy != DropoutPolicy::kAbort &&
                           checkpoint.valid && attempts < max_attempts &&
                           tracker.num_alive() >= quorum;
    if (!retryable) return shares.status();
    resumed_from_level = checkpoint.next_level;
  }

  // kTopUp: before opening, the survivors deal compensating Skellam noise
  // totalling Sk(d/n * mu), restoring the release to the full Sk(mu).
  double topup_mu = 0.0;
  const size_t num_dropped =
      policy != DropoutPolicy::kAbort ? tracker.num_dead() : 0;
  if (policy == DropoutPolicy::kTopUp && options_.mu > 0.0 &&
      num_dropped > 0) {
    const std::vector<size_t> survivors = tracker.Survivors();
    const double per_survivor_mu =
        options_.mu * static_cast<double>(num_dropped) /
        (static_cast<double>(num_clients) *
         static_cast<double>(survivors.size()));
    const SkellamSampler sampler(per_survivor_mu);
    Rng topup_root(options_.seed ^ 0x70bu);
    for (size_t j : survivors) {
      Rng survivor_rng = topup_root.Split(j);
      const std::vector<int64_t> extra =
          sampler.SampleVector(survivor_rng, d);
      SQM_ASSIGN_OR_RETURN(
          SharedVector extra_shares,
          engine.protocol().TryShareFromParty(
              j, Field::EncodeVector(extra), "topup"));
      SQM_ASSIGN_OR_RETURN(out_shares,
                           engine.protocol().Add(out_shares, extra_shares));
      topup_mu += per_survivor_mu;
    }
  }

  SQM_ASSIGN_OR_RETURN(std::vector<int64_t> raw,
                       engine.OpenOutputs(out_shares));
  const double compute_seconds = SecondsSince(compute_start);
  EmitPhaseSpan("sqm.mpc_compute", compute_ts);
  // The census must include parties that died during the open itself, so
  // it is taken only now. (The top-up above used the pre-open count: noise
  // compensation can only react to deaths known before release.)
  const size_t num_dropped_final =
      policy != DropoutPolicy::kAbort ? tracker.num_dead() : 0;

  // Measure the marginal cost of DP enforcement the way the paper does:
  // wall time for secret-sharing and summing the P noise vectors alone,
  // on a scratch network so the main run's counters stay clean.
  const auto inject_start = std::chrono::steady_clock::now();
  const uint64_t inject_ts = obs::NowMicros();
  {
    SimulatedNetwork scratch(num_clients, 0.0);
    // The probe's traffic must not pollute the registry's "net.*"
    // counters: those reconcile exactly against the main transport's
    // TransportStats (see docs/OBSERVABILITY.md).
    scratch.set_registry_accounting(false);
    BgwProtocol protocol(ShamirScheme(num_clients, threshold), &scratch,
                         options_.seed ^ 0x5c4a7c);
    SharedVector sum(num_clients, d);
    for (size_t j = 0; j < num_clients; ++j) {
      const SharedVector share = protocol.ShareFromParty(
          j, Field::EncodeVector(noise_per_client[j]));
      SQM_ASSIGN_OR_RETURN(sum, protocol.Add(sum, share));
    }
  }
  const double inject_seconds = SecondsSince(inject_start);
  EmitPhaseSpan("sqm.noise_probe", inject_ts);

  SqmReport report;
  report.raw = std::move(raw);
  report.estimate.resize(d);
  for (size_t t = 0; t < d; ++t) {
    report.estimate[t] =
        static_cast<double>(report.raw[t]) / qf.output_scale;
  }
  report.network = network->stats();
  report.transport = network->Snapshot();
  report.timing.quantize_seconds = quantize_seconds;
  report.timing.noise_sampling_seconds = noise_seconds;
  report.timing.mpc_compute_seconds = compute_seconds;
  report.timing.simulated_network_seconds = network->SimulatedSeconds();
  report.timing.noise_injection_seconds =
      noise_seconds + inject_seconds;

  // ---- Dropout accounting: record who survived and, when noise was
  // configured, recompute the realized (epsilon, delta) from the noise the
  // release actually carried.
  DropoutReport& dropout = report.dropout;
  dropout.policy = policy;
  dropout.num_parties = num_clients;
  dropout.num_dropped = num_dropped_final;
  if (policy != DropoutPolicy::kAbort) {
    dropout.survivors = tracker.Survivors();
  } else {
    dropout.survivors.resize(num_clients);
    for (size_t j = 0; j < num_clients; ++j) dropout.survivors[j] = j;
  }
  dropout.configured_mu = options_.mu;
  dropout.topup_mu = topup_mu;
  dropout.realized_mu =
      options_.mu > 0.0
          ? SkellamMuWithDropouts(options_.mu, num_clients,
                                  num_dropped_final) +
                topup_mu
          : 0.0;
  dropout.delta = options_.dp_delta;
  dropout.mpc_attempts = attempts;
  dropout.resumed_from_level = resumed_from_level;
  if (options_.mu > 0.0) {
    dropout.configured_epsilon = SkellamEpsilonSingleRelease(
        options_.mu, sensitivity.l1, sensitivity.l2, options_.dp_delta);
    if (dropout.realized_mu > 0.0) {
      PrivacyAccountant accountant;
      accountant.SetLedgerContext(options_.dp_delta, options_.gamma, d);
      accountant.AddSkellamWithDropouts(
          "sqm_release", sensitivity.l1, sensitivity.l2, options_.mu,
          num_clients, num_dropped_final);
      if (topup_mu > 0.0) {
        // The top-up restores noise without adding a release: account the
        // single release at its total realized noise instead.
        accountant.Reset();
        accountant.AddSkellam("sqm_release", sensitivity.l1, sensitivity.l2,
                              dropout.realized_mu);
      }
      SQM_ASSIGN_OR_RETURN(const PrivacyGuarantee guarantee,
                           accountant.TotalGuarantee(options_.dp_delta));
      dropout.realized_epsilon = guarantee.epsilon;
      dropout.best_alpha = guarantee.best_alpha;
      // Every spend the accountant witnessed, as report data: the ledger
      // rides along in SqmReport and serializes as "privacy_ledger".
      report.ledger = accountant.ledger();
    } else {
      // Every noise contributor dropped: the release is unprotected.
      dropout.realized_epsilon = std::numeric_limits<double>::infinity();
    }
  }
  return report;
}

}  // namespace sqm
