#include "core/sensitivity.h"

#include <algorithm>
#include <cmath>

#include "core/logging.h"

namespace sqm {

double L1FromL2(double l2, size_t output_dim) {
  return std::min(l2 * l2,
                  std::sqrt(static_cast<double>(output_dim)) * l2);
}

SensitivityBound PcaSensitivity(double gamma, double record_norm_bound,
                                size_t num_attributes) {
  SensitivityBound bound;
  const double c = record_norm_bound;
  bound.l2 = gamma * gamma * c * c + static_cast<double>(num_attributes);
  bound.l1 = L1FromL2(bound.l2, num_attributes * num_attributes);
  return bound;
}

SensitivityBound LogisticGradientSensitivity(double gamma,
                                             size_t feature_dim) {
  SensitivityBound bound;
  const double d = static_cast<double>(feature_dim);
  const double g3 = gamma * gamma * gamma;
  bound.l2 = std::sqrt(0.75 * 0.75 * g3 * g3 +
                       9.0 * std::pow(gamma, 5.0) * d +
                       36.0 * std::pow(gamma, 4.0));
  bound.l1 = L1FromL2(bound.l2, feature_dim);
  return bound;
}

SensitivityBound PolynomialSensitivity(const PolynomialVector& f, double gamma,
                                       double record_norm_bound,
                                       double max_f_l2,
                                       bool quantize_coefficients) {
  const double lambda = static_cast<double>(f.Degree());
  const double d = static_cast<double>(f.output_dim());
  const double v = static_cast<double>(f.MaxTermsPerDimension());
  const double c = std::max(record_norm_bound, 1.0);

  // Main term: every monomial is amplified by exactly gamma^{lambda+1}
  // (data scaling gamma^{lambda_t[l]} times coefficient scaling
  // gamma^{1+lambda-lambda_t[l]}). Without coefficient quantization the
  // coefficient factor is 1 and the release scale is gamma^lambda.
  const double scale_exp = quantize_coefficients ? lambda + 1.0 : lambda;
  const double main = std::pow(gamma, scale_exp) * max_f_l2;

  // Overhead: Lemma 2 gives a per-monomial data-rounding error of at most
  // 2*lambda*c^{lambda-1}*gamma^{lambda-1} before coefficient scaling; the
  // coefficient itself carries an extra rounding error of at most 1, which
  // multiplies the data product bounded by (gamma*c + 1)^{lambda}. Both are
  // O(gamma^lambda); we take a conservative union over d*v monomials, where
  // the largest pre-quantization coefficient magnitude also enters. With
  // integer coefficients kept as-is there is no coefficient rounding term
  // and no amplification: only the data rounding at gamma^{lambda-1}
  // survives.
  double max_abs_coeff = 0.0;
  for (const Polynomial& p : f.dims()) {
    for (const Monomial& term : p.terms()) {
      max_abs_coeff = std::max(max_abs_coeff, std::fabs(term.coefficient()));
    }
  }
  max_abs_coeff = std::max(max_abs_coeff, 1.0);
  const double data_rounding =
      2.0 * lambda * std::pow(c, std::max(lambda - 1.0, 0.0)) *
      max_abs_coeff;
  const double per_monomial =
      quantize_coefficients
          ? (data_rounding + std::pow(c + 1.0, lambda)) *
                std::pow(gamma, lambda)
          : data_rounding * std::pow(gamma, std::max(lambda - 1.0, 0.0));
  const double overhead = d * v * per_monomial;

  SensitivityBound bound;
  bound.l2 = main + overhead;
  bound.l1 = L1FromL2(bound.l2, f.output_dim());
  return bound;
}

double LogisticSensitivityOverhead(double gamma, size_t feature_dim) {
  const double d = static_cast<double>(feature_dim);
  return std::sqrt(0.75 * 0.75 + 9.0 * d / gamma +
                   36.0 / (gamma * gamma)) -
         0.75;
}

double EstimateCapacityBits(size_t num_records, double gamma, uint32_t degree,
                            double max_f_l2, double mu) {
  const double signal = static_cast<double>(num_records) *
                        std::pow(gamma, static_cast<double>(degree) + 1.0) *
                        std::max(max_f_l2, 1.0);
  // 12-sigma noise margin: Pr[|Sk(mu)| > 12 sqrt(2 mu)] is negligible.
  const double noise = 12.0 * std::sqrt(2.0 * std::max(mu, 0.0));
  return std::log2(signal + noise + 1.0);
}

Status CheckFieldCapacity(size_t num_records, double gamma, uint32_t degree,
                          double max_f_l2, double mu) {
  const double bits =
      EstimateCapacityBits(num_records, gamma, degree, max_f_l2, mu);
  if (bits >= 60.0) {
    return Status::OutOfRange(
        "SQM release magnitude needs " + std::to_string(bits) +
        " bits; the 2^61-1 field holds < 60 signed bits. Lower gamma, mu, "
        "or the record count.");
  }
  return Status::OK();
}

}  // namespace sqm
