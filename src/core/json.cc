#include "core/json.h"

#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace sqm {

JsonWriter::JsonWriter() { needs_comma_.push_back(false); }

void JsonWriter::MaybeComma() {
  if (needs_comma_.back()) out_ += ',';
  needs_comma_.back() = true;
}

void JsonWriter::Escape(const std::string& raw) {
  out_ += '"';
  for (char c : raw) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\t':
        out_ += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

JsonWriter& JsonWriter::BeginObject() {
  MaybeComma();
  out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray(const std::string& key) {
  if (!key.empty()) Key(key);
  MaybeComma();
  out_ += '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& key) {
  MaybeComma();
  Escape(key);
  out_ += ':';
  needs_comma_.back() = false;  // Next Value should not emit a comma.
  return *this;
}

JsonWriter& JsonWriter::Value(double value) {
  MaybeComma();
  if (std::isfinite(value)) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out_ += buf;
  } else {
    out_ += "null";  // JSON has no NaN/Inf.
  }
  return *this;
}

JsonWriter& JsonWriter::Value(uint64_t value) {
  MaybeComma();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t value) {
  MaybeComma();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Value(const std::string& value) {
  MaybeComma();
  Escape(value);
  return *this;
}

JsonWriter& JsonWriter::Value(bool value) {
  MaybeComma();
  out_ += value ? "true" : "false";
  return *this;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

namespace {

/// Recursive-descent JSON parser. Depth-limited so adversarial nesting
/// fails with a Status instead of exhausting the stack.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> ParseDocument() {
    SkipWhitespace();
    JsonValue value;
    SQM_RETURN_NOT_OK(ParseValue(0, &value));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing garbage after JSON document");
    }
    return value;
  }

 private:
  static constexpr size_t kMaxDepth = 256;

  Status Error(const std::string& what) const {
    return Status::IoError("JSON parse error at byte " +
                           std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(size_t depth, JsonValue* out) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(depth, out);
      case '[':
        return ParseArray(depth, out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string_value);
      case 't':
      case 'f':
        return ParseKeyword(out);
      case 'n':
        return ParseKeyword(out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseKeyword(JsonValue* out) {
    if (text_.compare(pos_, 4, "true") == 0) {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = true;
      pos_ += 4;
      return Status::OK();
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = false;
      pos_ += 5;
      return Status::OK();
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      out->kind = JsonValue::Kind::kNull;
      pos_ += 4;
      return Status::OK();
    }
    return Error("unrecognized token");
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected '\"'");
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Error("bad hex digit in \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported —
          // the writer never emits them).
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xC0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Error("unknown escape character");
      }
    }
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) out->is_negative = true;
    bool integral = true;
    if (pos_ >= text_.size() || !std::isdigit(
            static_cast<unsigned char>(text_[pos_]))) {
      return Error("expected a digit");
    }
    if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
        std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
      return Error("leading zero in number");
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    const size_t int_end = pos_;
    if (Consume('.')) {
      integral = false;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Error("expected a digit after '.'");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Error("expected a digit in exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string lexeme = text_.substr(start, pos_ - start);
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::strtod(lexeme.c_str(), nullptr);
    if (integral) {
      // Exact 64-bit integer path: field elements exceed double precision.
      const std::string digits =
          text_.substr(start + (out->is_negative ? 1 : 0),
                       int_end - start - (out->is_negative ? 1 : 0));
      errno = 0;
      const uint64_t magnitude = std::strtoull(digits.c_str(), nullptr, 10);
      if (errno != ERANGE) {
        out->is_integer = true;
        out->uint_value = magnitude;
        if (!out->is_negative &&
            magnitude <= static_cast<uint64_t>(
                             std::numeric_limits<int64_t>::max())) {
          out->int_value = static_cast<int64_t>(magnitude);
        } else if (out->is_negative &&
                   magnitude <= static_cast<uint64_t>(
                                    std::numeric_limits<int64_t>::max()) +
                                    1) {
          out->int_value = static_cast<int64_t>(-magnitude);
        } else if (out->is_negative) {
          out->is_integer = false;  // Below int64 range.
        }
      }
    }
    return Status::OK();
  }

  Status ParseArray(size_t depth, JsonValue* out) {
    Consume('[');
    out->kind = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue item;
      SkipWhitespace();
      SQM_RETURN_NOT_OK(ParseValue(depth + 1, &item));
      out->items.push_back(std::move(item));
      SkipWhitespace();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Status ParseObject(size_t depth, JsonValue* out) {
    Consume('{');
    out->kind = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      std::string key;
      SQM_RETURN_NOT_OK(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      JsonValue value;
      SkipWhitespace();
      SQM_RETURN_NOT_OK(ParseValue(depth + 1, &value));
      out->members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(const std::string& text) {
  JsonParser parser(text);
  return parser.ParseDocument();
}

}  // namespace sqm
