#include "core/report_io.h"

#include <cmath>

namespace sqm {

namespace {

/// Structured accessors for reloading reports: every mismatch is a Status
/// naming the offending key, never a crash.
Status RequireKind(const JsonValue& value, JsonValue::Kind kind,
                   const std::string& what) {
  if (value.kind != kind) {
    return Status::IoError("JSON field \"" + what +
                           "\" has the wrong type");
  }
  return Status::OK();
}

Result<const JsonValue*> RequireMember(const JsonValue& object,
                                       const std::string& key) {
  const JsonValue* member = object.Find(key);
  if (member == nullptr) {
    return Status::IoError("JSON object is missing required key \"" + key +
                           "\"");
  }
  return member;
}

Result<double> NumberField(const JsonValue& object, const std::string& key) {
  SQM_ASSIGN_OR_RETURN(const JsonValue* member, RequireMember(object, key));
  if (member->kind == JsonValue::Kind::kNull) return 0.0;  // NaN/Inf.
  SQM_RETURN_NOT_OK(RequireKind(*member, JsonValue::Kind::kNumber, key));
  return member->number;
}

Result<uint64_t> UintField(const JsonValue& object, const std::string& key) {
  SQM_ASSIGN_OR_RETURN(const JsonValue* member, RequireMember(object, key));
  SQM_RETURN_NOT_OK(RequireKind(*member, JsonValue::Kind::kNumber, key));
  if (!member->is_integer || member->is_negative) {
    return Status::IoError("JSON field \"" + key +
                           "\" is not an unsigned integer");
  }
  return member->uint_value;
}

Result<std::string> StringField(const JsonValue& object,
                                const std::string& key) {
  SQM_ASSIGN_OR_RETURN(const JsonValue* member, RequireMember(object, key));
  SQM_RETURN_NOT_OK(RequireKind(*member, JsonValue::Kind::kString, key));
  return member->string_value;
}

Result<int64_t> IntElement(const JsonValue& value, const std::string& what) {
  SQM_RETURN_NOT_OK(RequireKind(value, JsonValue::Kind::kNumber, what));
  if (!value.is_integer) {
    return Status::IoError("JSON field \"" + what +
                           "\" is not a 64-bit integer");
  }
  return value.int_value;
}

void WriteNetworkStatsFields(JsonWriter& writer, const NetworkStats& stats) {
  writer.Field("messages", stats.messages)
      .Field("field_elements", stats.field_elements)
      .Field("bytes", stats.bytes())
      .Field("rounds", stats.rounds);
}

void WriteTransportStatsFields(JsonWriter& writer,
                               const TransportStats& stats) {
  writer.Field("num_parties", static_cast<uint64_t>(stats.num_parties));
  writer.Key("totals").BeginObject();
  WriteNetworkStatsFields(writer, stats.totals);
  writer.EndObject();
  writer.BeginArray("channels");
  for (const ChannelStats& channel : stats.channels) {
    writer.BeginObject()
        .Field("from", static_cast<uint64_t>(channel.from))
        .Field("to", static_cast<uint64_t>(channel.to))
        .Field("messages", channel.messages)
        .Field("field_elements", channel.field_elements)
        .Field("bytes", channel.wire_bytes)
        .EndObject();
  }
  writer.EndArray();
  writer.BeginArray("phases");
  for (const PhaseStats& phase : stats.phases) {
    writer.BeginObject().Field("phase", phase.phase);
    WriteNetworkStatsFields(writer, phase.traffic);
    writer.EndObject();
  }
  writer.EndArray();
  writer.Field("drops_injected", stats.drops_injected)
      .Field("delays_injected", stats.delays_injected)
      .Field("reorders_injected", stats.reorders_injected)
      .Field("receive_timeouts", stats.receive_timeouts)
      .Field("retries", stats.retries)
      .Field("crash_losses", stats.crash_losses)
      .Field("simulated_seconds", stats.simulated_seconds)
      .Field("wall_seconds", stats.wall_seconds);
}

void WriteLedgerEntryFields(JsonWriter& writer,
                            const obs::LedgerEntry& entry) {
  writer.Field("sequence", entry.sequence)
      .Field("elapsed_seconds", entry.elapsed_seconds)
      .Field("mechanism", entry.mechanism)
      .Field("label", entry.label)
      .Field("mu", entry.mu)
      .Field("gamma", entry.gamma)
      .Field("dimension", static_cast<uint64_t>(entry.dimension))
      .Field("l1_sensitivity", entry.l1_sensitivity)
      .Field("l2_sensitivity", entry.l2_sensitivity)
      .Field("sampling_rate", entry.sampling_rate)
      .Field("count", entry.count)
      .Field("epsilon", entry.epsilon)
      .Field("delta", entry.delta)
      .Field("best_alpha", entry.best_alpha)
      .Field("cumulative_epsilon", entry.cumulative_epsilon)
      .Field("contributors", static_cast<uint64_t>(entry.contributors))
      .Field("expected_contributors",
             static_cast<uint64_t>(entry.expected_contributors))
      .Field("deficit_mu", entry.deficit_mu);
}

Result<obs::LedgerEntry> LedgerEntryFromJson(const JsonValue& object) {
  SQM_RETURN_NOT_OK(
      RequireKind(object, JsonValue::Kind::kObject, "privacy_ledger[i]"));
  obs::LedgerEntry entry;
  SQM_ASSIGN_OR_RETURN(entry.sequence, UintField(object, "sequence"));
  SQM_ASSIGN_OR_RETURN(entry.elapsed_seconds,
                       NumberField(object, "elapsed_seconds"));
  SQM_ASSIGN_OR_RETURN(entry.mechanism, StringField(object, "mechanism"));
  SQM_ASSIGN_OR_RETURN(entry.label, StringField(object, "label"));
  SQM_ASSIGN_OR_RETURN(entry.mu, NumberField(object, "mu"));
  SQM_ASSIGN_OR_RETURN(entry.gamma, NumberField(object, "gamma"));
  SQM_ASSIGN_OR_RETURN(const uint64_t dimension,
                       UintField(object, "dimension"));
  entry.dimension = static_cast<size_t>(dimension);
  SQM_ASSIGN_OR_RETURN(entry.l1_sensitivity,
                       NumberField(object, "l1_sensitivity"));
  SQM_ASSIGN_OR_RETURN(entry.l2_sensitivity,
                       NumberField(object, "l2_sensitivity"));
  SQM_ASSIGN_OR_RETURN(entry.sampling_rate,
                       NumberField(object, "sampling_rate"));
  SQM_ASSIGN_OR_RETURN(entry.count, UintField(object, "count"));
  SQM_ASSIGN_OR_RETURN(entry.epsilon, NumberField(object, "epsilon"));
  SQM_ASSIGN_OR_RETURN(entry.delta, NumberField(object, "delta"));
  SQM_ASSIGN_OR_RETURN(entry.best_alpha, NumberField(object, "best_alpha"));
  SQM_ASSIGN_OR_RETURN(entry.cumulative_epsilon,
                       NumberField(object, "cumulative_epsilon"));
  SQM_ASSIGN_OR_RETURN(const uint64_t contributors,
                       UintField(object, "contributors"));
  entry.contributors = static_cast<size_t>(contributors);
  SQM_ASSIGN_OR_RETURN(const uint64_t expected,
                       UintField(object, "expected_contributors"));
  entry.expected_contributors = static_cast<size_t>(expected);
  SQM_ASSIGN_OR_RETURN(entry.deficit_mu, NumberField(object, "deficit_mu"));
  return entry;
}

}  // namespace

std::string NetworkStatsToJson(const NetworkStats& stats) {
  JsonWriter writer;
  writer.BeginObject();
  WriteNetworkStatsFields(writer, stats);
  writer.EndObject();
  return writer.str();
}

std::string TransportStatsToJson(const TransportStats& stats) {
  JsonWriter writer;
  writer.BeginObject();
  WriteTransportStatsFields(writer, stats);
  writer.EndObject();
  return writer.str();
}

std::string SqmReportToJson(const SqmReport& report) {
  JsonWriter writer;
  writer.BeginObject();
  writer.BeginArray("estimate");
  for (double v : report.estimate) writer.Value(v);
  writer.EndArray();
  writer.BeginArray("raw");
  for (int64_t v : report.raw) writer.Value(v);
  writer.EndArray();
  writer.Key("timing").BeginObject()
      .Field("quantize_seconds", report.timing.quantize_seconds)
      .Field("noise_sampling_seconds",
             report.timing.noise_sampling_seconds)
      .Field("mpc_compute_seconds", report.timing.mpc_compute_seconds)
      .Field("simulated_network_seconds",
             report.timing.simulated_network_seconds)
      .Field("noise_injection_seconds",
             report.timing.noise_injection_seconds)
      .Field("total_seconds", report.timing.TotalSeconds())
      .EndObject();
  writer.Key("network").BeginObject()
      .Field("messages", report.network.messages)
      .Field("field_elements", report.network.field_elements)
      .Field("bytes", report.network.bytes())
      .Field("rounds", report.network.rounds)
      .EndObject();
  writer.Key("transport").BeginObject();
  WriteTransportStatsFields(writer, report.transport);
  writer.EndObject();
  writer.Key("dropout").BeginObject()
      .Field("policy", std::string(DropoutPolicyToString(
                           report.dropout.policy)))
      .Field("num_parties", static_cast<uint64_t>(
                                report.dropout.num_parties))
      .Field("num_dropped", static_cast<uint64_t>(
                                report.dropout.num_dropped));
  writer.BeginArray("survivors");
  for (size_t j : report.dropout.survivors) {
    writer.Value(static_cast<uint64_t>(j));
  }
  writer.EndArray();
  writer.Field("configured_mu", report.dropout.configured_mu)
      .Field("realized_mu", report.dropout.realized_mu)
      .Field("topup_mu", report.dropout.topup_mu)
      .Field("configured_epsilon", report.dropout.configured_epsilon)
      .Field("realized_epsilon", report.dropout.realized_epsilon)
      .Field("delta", report.dropout.delta)
      .Field("best_alpha", report.dropout.best_alpha)
      .Field("mpc_attempts", static_cast<uint64_t>(
                                 report.dropout.mpc_attempts))
      .Field("resumed_from_level",
             static_cast<uint64_t>(report.dropout.resumed_from_level))
      .EndObject();
  writer.BeginArray("privacy_ledger");
  for (const obs::LedgerEntry& entry : report.ledger) {
    writer.BeginObject();
    WriteLedgerEntryFields(writer, entry);
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();
  return writer.str();
}

Result<SqmReport> SqmReportFromJson(const std::string& json) {
  SQM_ASSIGN_OR_RETURN(const JsonValue root, ParseJson(json));
  SQM_RETURN_NOT_OK(RequireKind(root, JsonValue::Kind::kObject, "<root>"));
  SqmReport report;

  SQM_ASSIGN_OR_RETURN(const JsonValue* estimate,
                       RequireMember(root, "estimate"));
  SQM_RETURN_NOT_OK(
      RequireKind(*estimate, JsonValue::Kind::kArray, "estimate"));
  for (const JsonValue& item : estimate->items) {
    SQM_RETURN_NOT_OK(
        RequireKind(item, JsonValue::Kind::kNumber, "estimate[i]"));
    report.estimate.push_back(item.number);
  }

  SQM_ASSIGN_OR_RETURN(const JsonValue* raw, RequireMember(root, "raw"));
  SQM_RETURN_NOT_OK(RequireKind(*raw, JsonValue::Kind::kArray, "raw"));
  for (const JsonValue& item : raw->items) {
    SQM_ASSIGN_OR_RETURN(const int64_t v, IntElement(item, "raw[i]"));
    report.raw.push_back(v);
  }

  SQM_ASSIGN_OR_RETURN(const JsonValue* timing,
                       RequireMember(root, "timing"));
  SQM_RETURN_NOT_OK(RequireKind(*timing, JsonValue::Kind::kObject, "timing"));
  SQM_ASSIGN_OR_RETURN(report.timing.quantize_seconds,
                       NumberField(*timing, "quantize_seconds"));
  SQM_ASSIGN_OR_RETURN(report.timing.noise_sampling_seconds,
                       NumberField(*timing, "noise_sampling_seconds"));
  SQM_ASSIGN_OR_RETURN(report.timing.mpc_compute_seconds,
                       NumberField(*timing, "mpc_compute_seconds"));
  SQM_ASSIGN_OR_RETURN(report.timing.simulated_network_seconds,
                       NumberField(*timing, "simulated_network_seconds"));
  SQM_ASSIGN_OR_RETURN(report.timing.noise_injection_seconds,
                       NumberField(*timing, "noise_injection_seconds"));

  SQM_ASSIGN_OR_RETURN(const JsonValue* network,
                       RequireMember(root, "network"));
  SQM_RETURN_NOT_OK(
      RequireKind(*network, JsonValue::Kind::kObject, "network"));
  SQM_ASSIGN_OR_RETURN(report.network.messages,
                       UintField(*network, "messages"));
  SQM_ASSIGN_OR_RETURN(report.network.field_elements,
                       UintField(*network, "field_elements"));
  SQM_ASSIGN_OR_RETURN(report.network.rounds, UintField(*network, "rounds"));

  SQM_ASSIGN_OR_RETURN(const JsonValue* dropout,
                       RequireMember(root, "dropout"));
  SQM_RETURN_NOT_OK(
      RequireKind(*dropout, JsonValue::Kind::kObject, "dropout"));
  SQM_ASSIGN_OR_RETURN(const JsonValue* policy,
                       RequireMember(*dropout, "policy"));
  SQM_RETURN_NOT_OK(
      RequireKind(*policy, JsonValue::Kind::kString, "dropout.policy"));
  SQM_ASSIGN_OR_RETURN(report.dropout.policy,
                       DropoutPolicyFromString(policy->string_value));
  SQM_ASSIGN_OR_RETURN(const uint64_t num_parties,
                       UintField(*dropout, "num_parties"));
  report.dropout.num_parties = static_cast<size_t>(num_parties);
  SQM_ASSIGN_OR_RETURN(const uint64_t num_dropped,
                       UintField(*dropout, "num_dropped"));
  report.dropout.num_dropped = static_cast<size_t>(num_dropped);
  SQM_ASSIGN_OR_RETURN(const JsonValue* survivors,
                       RequireMember(*dropout, "survivors"));
  SQM_RETURN_NOT_OK(RequireKind(*survivors, JsonValue::Kind::kArray,
                                "dropout.survivors"));
  for (const JsonValue& item : survivors->items) {
    SQM_ASSIGN_OR_RETURN(const int64_t j,
                         IntElement(item, "dropout.survivors[i]"));
    if (j < 0) {
      return Status::IoError("dropout.survivors[i] is negative");
    }
    report.dropout.survivors.push_back(static_cast<size_t>(j));
  }
  SQM_ASSIGN_OR_RETURN(report.dropout.configured_mu,
                       NumberField(*dropout, "configured_mu"));
  SQM_ASSIGN_OR_RETURN(report.dropout.realized_mu,
                       NumberField(*dropout, "realized_mu"));
  SQM_ASSIGN_OR_RETURN(report.dropout.topup_mu,
                       NumberField(*dropout, "topup_mu"));
  SQM_ASSIGN_OR_RETURN(report.dropout.configured_epsilon,
                       NumberField(*dropout, "configured_epsilon"));
  SQM_ASSIGN_OR_RETURN(report.dropout.realized_epsilon,
                       NumberField(*dropout, "realized_epsilon"));
  SQM_ASSIGN_OR_RETURN(report.dropout.delta,
                       NumberField(*dropout, "delta"));
  SQM_ASSIGN_OR_RETURN(report.dropout.best_alpha,
                       NumberField(*dropout, "best_alpha"));
  SQM_ASSIGN_OR_RETURN(const uint64_t mpc_attempts,
                       UintField(*dropout, "mpc_attempts"));
  report.dropout.mpc_attempts = static_cast<size_t>(mpc_attempts);
  SQM_ASSIGN_OR_RETURN(const uint64_t resumed_from_level,
                       UintField(*dropout, "resumed_from_level"));
  report.dropout.resumed_from_level =
      static_cast<size_t>(resumed_from_level);

  // Transport accounting. Older archived reports predate the block; the
  // totals also back the coordinator's telemetry reconciliation check, so
  // when the block exists it must parse.
  if (const JsonValue* transport = root.Find("transport")) {
    SQM_RETURN_NOT_OK(
        RequireKind(*transport, JsonValue::Kind::kObject, "transport"));
    SQM_ASSIGN_OR_RETURN(const uint64_t transport_parties,
                         UintField(*transport, "num_parties"));
    report.transport.num_parties = static_cast<size_t>(transport_parties);
    SQM_ASSIGN_OR_RETURN(const JsonValue* totals,
                         RequireMember(*transport, "totals"));
    SQM_RETURN_NOT_OK(
        RequireKind(*totals, JsonValue::Kind::kObject, "transport.totals"));
    SQM_ASSIGN_OR_RETURN(report.transport.totals.messages,
                         UintField(*totals, "messages"));
    SQM_ASSIGN_OR_RETURN(report.transport.totals.field_elements,
                         UintField(*totals, "field_elements"));
    SQM_ASSIGN_OR_RETURN(report.transport.totals.wire_bytes,
                         UintField(*totals, "bytes"));
    SQM_ASSIGN_OR_RETURN(report.transport.totals.rounds,
                         UintField(*totals, "rounds"));
    if (const JsonValue* channels = transport->Find("channels")) {
      SQM_RETURN_NOT_OK(RequireKind(*channels, JsonValue::Kind::kArray,
                                    "transport.channels"));
      for (const JsonValue& item : channels->items) {
        SQM_RETURN_NOT_OK(RequireKind(item, JsonValue::Kind::kObject,
                                      "transport.channels[i]"));
        ChannelStats channel;
        SQM_ASSIGN_OR_RETURN(const uint64_t from, UintField(item, "from"));
        SQM_ASSIGN_OR_RETURN(const uint64_t to, UintField(item, "to"));
        channel.from = static_cast<size_t>(from);
        channel.to = static_cast<size_t>(to);
        SQM_ASSIGN_OR_RETURN(channel.messages,
                             UintField(item, "messages"));
        SQM_ASSIGN_OR_RETURN(channel.field_elements,
                             UintField(item, "field_elements"));
        SQM_ASSIGN_OR_RETURN(channel.wire_bytes, UintField(item, "bytes"));
        report.transport.channels.push_back(channel);
      }
    }
    if (const JsonValue* phases = transport->Find("phases")) {
      SQM_RETURN_NOT_OK(RequireKind(*phases, JsonValue::Kind::kArray,
                                    "transport.phases"));
      for (const JsonValue& item : phases->items) {
        SQM_RETURN_NOT_OK(RequireKind(item, JsonValue::Kind::kObject,
                                      "transport.phases[i]"));
        PhaseStats phase;
        SQM_ASSIGN_OR_RETURN(phase.phase, StringField(item, "phase"));
        SQM_ASSIGN_OR_RETURN(phase.traffic.messages,
                             UintField(item, "messages"));
        SQM_ASSIGN_OR_RETURN(phase.traffic.field_elements,
                             UintField(item, "field_elements"));
        SQM_ASSIGN_OR_RETURN(phase.traffic.wire_bytes,
                             UintField(item, "bytes"));
        SQM_ASSIGN_OR_RETURN(phase.traffic.rounds,
                             UintField(item, "rounds"));
        report.transport.phases.push_back(std::move(phase));
      }
    }
  }

  // Pre-observability reports have no ledger block; load those as empty
  // rather than failing, so archived artifacts stay readable.
  if (const JsonValue* ledger = root.Find("privacy_ledger")) {
    SQM_RETURN_NOT_OK(
        RequireKind(*ledger, JsonValue::Kind::kArray, "privacy_ledger"));
    for (const JsonValue& item : ledger->items) {
      SQM_ASSIGN_OR_RETURN(obs::LedgerEntry entry,
                           LedgerEntryFromJson(item));
      report.ledger.push_back(std::move(entry));
    }
  }
  return report;
}

}  // namespace sqm
