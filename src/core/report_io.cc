#include "core/report_io.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace sqm {

JsonWriter::JsonWriter() { needs_comma_.push_back(false); }

void JsonWriter::MaybeComma() {
  if (needs_comma_.back()) out_ += ',';
  needs_comma_.back() = true;
}

void JsonWriter::Escape(const std::string& raw) {
  out_ += '"';
  for (char c : raw) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\t':
        out_ += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

JsonWriter& JsonWriter::BeginObject() {
  MaybeComma();
  out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray(const std::string& key) {
  if (!key.empty()) Key(key);
  MaybeComma();
  out_ += '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& key) {
  MaybeComma();
  Escape(key);
  out_ += ':';
  needs_comma_.back() = false;  // Next Value should not emit a comma.
  return *this;
}

JsonWriter& JsonWriter::Value(double value) {
  MaybeComma();
  if (std::isfinite(value)) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out_ += buf;
  } else {
    out_ += "null";  // JSON has no NaN/Inf.
  }
  return *this;
}

JsonWriter& JsonWriter::Value(uint64_t value) {
  MaybeComma();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t value) {
  MaybeComma();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Value(const std::string& value) {
  MaybeComma();
  Escape(value);
  return *this;
}

JsonWriter& JsonWriter::Value(bool value) {
  MaybeComma();
  out_ += value ? "true" : "false";
  return *this;
}

namespace {

void WriteNetworkStatsFields(JsonWriter& writer, const NetworkStats& stats) {
  writer.Field("messages", stats.messages)
      .Field("field_elements", stats.field_elements)
      .Field("bytes", stats.bytes())
      .Field("rounds", stats.rounds);
}

void WriteTransportStatsFields(JsonWriter& writer,
                               const TransportStats& stats) {
  writer.Field("num_parties", static_cast<uint64_t>(stats.num_parties));
  writer.Key("totals").BeginObject();
  WriteNetworkStatsFields(writer, stats.totals);
  writer.EndObject();
  writer.BeginArray("channels");
  for (const ChannelStats& channel : stats.channels) {
    writer.BeginObject()
        .Field("from", static_cast<uint64_t>(channel.from))
        .Field("to", static_cast<uint64_t>(channel.to))
        .Field("messages", channel.messages)
        .Field("field_elements", channel.field_elements)
        .Field("bytes", channel.wire_bytes)
        .EndObject();
  }
  writer.EndArray();
  writer.BeginArray("phases");
  for (const PhaseStats& phase : stats.phases) {
    writer.BeginObject().Field("phase", phase.phase);
    WriteNetworkStatsFields(writer, phase.traffic);
    writer.EndObject();
  }
  writer.EndArray();
  writer.Field("drops_injected", stats.drops_injected)
      .Field("delays_injected", stats.delays_injected)
      .Field("reorders_injected", stats.reorders_injected)
      .Field("receive_timeouts", stats.receive_timeouts)
      .Field("retries", stats.retries)
      .Field("crash_losses", stats.crash_losses)
      .Field("simulated_seconds", stats.simulated_seconds)
      .Field("wall_seconds", stats.wall_seconds);
}

}  // namespace

std::string NetworkStatsToJson(const NetworkStats& stats) {
  JsonWriter writer;
  writer.BeginObject();
  WriteNetworkStatsFields(writer, stats);
  writer.EndObject();
  return writer.str();
}

std::string TransportStatsToJson(const TransportStats& stats) {
  JsonWriter writer;
  writer.BeginObject();
  WriteTransportStatsFields(writer, stats);
  writer.EndObject();
  return writer.str();
}

std::string SqmReportToJson(const SqmReport& report) {
  JsonWriter writer;
  writer.BeginObject();
  writer.BeginArray("estimate");
  for (double v : report.estimate) writer.Value(v);
  writer.EndArray();
  writer.BeginArray("raw");
  for (int64_t v : report.raw) writer.Value(v);
  writer.EndArray();
  writer.Key("timing").BeginObject()
      .Field("quantize_seconds", report.timing.quantize_seconds)
      .Field("noise_sampling_seconds",
             report.timing.noise_sampling_seconds)
      .Field("mpc_compute_seconds", report.timing.mpc_compute_seconds)
      .Field("simulated_network_seconds",
             report.timing.simulated_network_seconds)
      .Field("noise_injection_seconds",
             report.timing.noise_injection_seconds)
      .Field("total_seconds", report.timing.TotalSeconds())
      .EndObject();
  writer.Key("network").BeginObject()
      .Field("messages", report.network.messages)
      .Field("field_elements", report.network.field_elements)
      .Field("bytes", report.network.bytes())
      .Field("rounds", report.network.rounds)
      .EndObject();
  writer.Key("transport").BeginObject();
  WriteTransportStatsFields(writer, report.transport);
  writer.EndObject();
  writer.Key("dropout").BeginObject()
      .Field("policy", std::string(DropoutPolicyToString(
                           report.dropout.policy)))
      .Field("num_parties", static_cast<uint64_t>(
                                report.dropout.num_parties))
      .Field("num_dropped", static_cast<uint64_t>(
                                report.dropout.num_dropped));
  writer.BeginArray("survivors");
  for (size_t j : report.dropout.survivors) {
    writer.Value(static_cast<uint64_t>(j));
  }
  writer.EndArray();
  writer.Field("configured_mu", report.dropout.configured_mu)
      .Field("realized_mu", report.dropout.realized_mu)
      .Field("topup_mu", report.dropout.topup_mu)
      .Field("configured_epsilon", report.dropout.configured_epsilon)
      .Field("realized_epsilon", report.dropout.realized_epsilon)
      .Field("delta", report.dropout.delta)
      .Field("best_alpha", report.dropout.best_alpha)
      .Field("mpc_attempts", static_cast<uint64_t>(
                                 report.dropout.mpc_attempts))
      .Field("resumed_from_level",
             static_cast<uint64_t>(report.dropout.resumed_from_level))
      .EndObject();
  writer.EndObject();
  return writer.str();
}

}  // namespace sqm
