#include "core/report_io.h"

#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace sqm {

JsonWriter::JsonWriter() { needs_comma_.push_back(false); }

void JsonWriter::MaybeComma() {
  if (needs_comma_.back()) out_ += ',';
  needs_comma_.back() = true;
}

void JsonWriter::Escape(const std::string& raw) {
  out_ += '"';
  for (char c : raw) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\t':
        out_ += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

JsonWriter& JsonWriter::BeginObject() {
  MaybeComma();
  out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray(const std::string& key) {
  if (!key.empty()) Key(key);
  MaybeComma();
  out_ += '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& key) {
  MaybeComma();
  Escape(key);
  out_ += ':';
  needs_comma_.back() = false;  // Next Value should not emit a comma.
  return *this;
}

JsonWriter& JsonWriter::Value(double value) {
  MaybeComma();
  if (std::isfinite(value)) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out_ += buf;
  } else {
    out_ += "null";  // JSON has no NaN/Inf.
  }
  return *this;
}

JsonWriter& JsonWriter::Value(uint64_t value) {
  MaybeComma();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t value) {
  MaybeComma();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Value(const std::string& value) {
  MaybeComma();
  Escape(value);
  return *this;
}

JsonWriter& JsonWriter::Value(bool value) {
  MaybeComma();
  out_ += value ? "true" : "false";
  return *this;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

namespace {

/// Recursive-descent JSON parser. Depth-limited so adversarial nesting
/// fails with a Status instead of exhausting the stack.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> ParseDocument() {
    SkipWhitespace();
    JsonValue value;
    SQM_RETURN_NOT_OK(ParseValue(0, &value));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing garbage after JSON document");
    }
    return value;
  }

 private:
  static constexpr size_t kMaxDepth = 256;

  Status Error(const std::string& what) const {
    return Status::IoError("JSON parse error at byte " +
                           std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(size_t depth, JsonValue* out) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(depth, out);
      case '[':
        return ParseArray(depth, out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string_value);
      case 't':
      case 'f':
        return ParseKeyword(out);
      case 'n':
        return ParseKeyword(out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseKeyword(JsonValue* out) {
    if (text_.compare(pos_, 4, "true") == 0) {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = true;
      pos_ += 4;
      return Status::OK();
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = false;
      pos_ += 5;
      return Status::OK();
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      out->kind = JsonValue::Kind::kNull;
      pos_ += 4;
      return Status::OK();
    }
    return Error("unrecognized token");
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected '\"'");
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Error("bad hex digit in \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported —
          // the writer never emits them).
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xC0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Error("unknown escape character");
      }
    }
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) out->is_negative = true;
    bool integral = true;
    if (pos_ >= text_.size() || !std::isdigit(
            static_cast<unsigned char>(text_[pos_]))) {
      return Error("expected a digit");
    }
    if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
        std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
      return Error("leading zero in number");
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    const size_t int_end = pos_;
    if (Consume('.')) {
      integral = false;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Error("expected a digit after '.'");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Error("expected a digit in exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string lexeme = text_.substr(start, pos_ - start);
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::strtod(lexeme.c_str(), nullptr);
    if (integral) {
      // Exact 64-bit integer path: field elements exceed double precision.
      const std::string digits =
          text_.substr(start + (out->is_negative ? 1 : 0),
                       int_end - start - (out->is_negative ? 1 : 0));
      errno = 0;
      const uint64_t magnitude = std::strtoull(digits.c_str(), nullptr, 10);
      if (errno != ERANGE) {
        out->is_integer = true;
        out->uint_value = magnitude;
        if (!out->is_negative &&
            magnitude <= static_cast<uint64_t>(
                             std::numeric_limits<int64_t>::max())) {
          out->int_value = static_cast<int64_t>(magnitude);
        } else if (out->is_negative &&
                   magnitude <= static_cast<uint64_t>(
                                    std::numeric_limits<int64_t>::max()) +
                                    1) {
          out->int_value = static_cast<int64_t>(-magnitude);
        } else if (out->is_negative) {
          out->is_integer = false;  // Below int64 range.
        }
      }
    }
    return Status::OK();
  }

  Status ParseArray(size_t depth, JsonValue* out) {
    Consume('[');
    out->kind = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue item;
      SkipWhitespace();
      SQM_RETURN_NOT_OK(ParseValue(depth + 1, &item));
      out->items.push_back(std::move(item));
      SkipWhitespace();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Status ParseObject(size_t depth, JsonValue* out) {
    Consume('{');
    out->kind = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      std::string key;
      SQM_RETURN_NOT_OK(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      JsonValue value;
      SkipWhitespace();
      SQM_RETURN_NOT_OK(ParseValue(depth + 1, &value));
      out->members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

/// Structured accessors for reloading reports: every mismatch is a Status
/// naming the offending key, never a crash.
Status RequireKind(const JsonValue& value, JsonValue::Kind kind,
                   const std::string& what) {
  if (value.kind != kind) {
    return Status::IoError("JSON field \"" + what +
                           "\" has the wrong type");
  }
  return Status::OK();
}

Result<const JsonValue*> RequireMember(const JsonValue& object,
                                       const std::string& key) {
  const JsonValue* member = object.Find(key);
  if (member == nullptr) {
    return Status::IoError("JSON object is missing required key \"" + key +
                           "\"");
  }
  return member;
}

Result<double> NumberField(const JsonValue& object, const std::string& key) {
  SQM_ASSIGN_OR_RETURN(const JsonValue* member, RequireMember(object, key));
  if (member->kind == JsonValue::Kind::kNull) return 0.0;  // NaN/Inf.
  SQM_RETURN_NOT_OK(RequireKind(*member, JsonValue::Kind::kNumber, key));
  return member->number;
}

Result<uint64_t> UintField(const JsonValue& object, const std::string& key) {
  SQM_ASSIGN_OR_RETURN(const JsonValue* member, RequireMember(object, key));
  SQM_RETURN_NOT_OK(RequireKind(*member, JsonValue::Kind::kNumber, key));
  if (!member->is_integer || member->is_negative) {
    return Status::IoError("JSON field \"" + key +
                           "\" is not an unsigned integer");
  }
  return member->uint_value;
}

Result<int64_t> IntElement(const JsonValue& value, const std::string& what) {
  SQM_RETURN_NOT_OK(RequireKind(value, JsonValue::Kind::kNumber, what));
  if (!value.is_integer) {
    return Status::IoError("JSON field \"" + what +
                           "\" is not a 64-bit integer");
  }
  return value.int_value;
}

void WriteNetworkStatsFields(JsonWriter& writer, const NetworkStats& stats) {
  writer.Field("messages", stats.messages)
      .Field("field_elements", stats.field_elements)
      .Field("bytes", stats.bytes())
      .Field("rounds", stats.rounds);
}

void WriteTransportStatsFields(JsonWriter& writer,
                               const TransportStats& stats) {
  writer.Field("num_parties", static_cast<uint64_t>(stats.num_parties));
  writer.Key("totals").BeginObject();
  WriteNetworkStatsFields(writer, stats.totals);
  writer.EndObject();
  writer.BeginArray("channels");
  for (const ChannelStats& channel : stats.channels) {
    writer.BeginObject()
        .Field("from", static_cast<uint64_t>(channel.from))
        .Field("to", static_cast<uint64_t>(channel.to))
        .Field("messages", channel.messages)
        .Field("field_elements", channel.field_elements)
        .Field("bytes", channel.wire_bytes)
        .EndObject();
  }
  writer.EndArray();
  writer.BeginArray("phases");
  for (const PhaseStats& phase : stats.phases) {
    writer.BeginObject().Field("phase", phase.phase);
    WriteNetworkStatsFields(writer, phase.traffic);
    writer.EndObject();
  }
  writer.EndArray();
  writer.Field("drops_injected", stats.drops_injected)
      .Field("delays_injected", stats.delays_injected)
      .Field("reorders_injected", stats.reorders_injected)
      .Field("receive_timeouts", stats.receive_timeouts)
      .Field("retries", stats.retries)
      .Field("crash_losses", stats.crash_losses)
      .Field("simulated_seconds", stats.simulated_seconds)
      .Field("wall_seconds", stats.wall_seconds);
}

}  // namespace

std::string NetworkStatsToJson(const NetworkStats& stats) {
  JsonWriter writer;
  writer.BeginObject();
  WriteNetworkStatsFields(writer, stats);
  writer.EndObject();
  return writer.str();
}

std::string TransportStatsToJson(const TransportStats& stats) {
  JsonWriter writer;
  writer.BeginObject();
  WriteTransportStatsFields(writer, stats);
  writer.EndObject();
  return writer.str();
}

std::string SqmReportToJson(const SqmReport& report) {
  JsonWriter writer;
  writer.BeginObject();
  writer.BeginArray("estimate");
  for (double v : report.estimate) writer.Value(v);
  writer.EndArray();
  writer.BeginArray("raw");
  for (int64_t v : report.raw) writer.Value(v);
  writer.EndArray();
  writer.Key("timing").BeginObject()
      .Field("quantize_seconds", report.timing.quantize_seconds)
      .Field("noise_sampling_seconds",
             report.timing.noise_sampling_seconds)
      .Field("mpc_compute_seconds", report.timing.mpc_compute_seconds)
      .Field("simulated_network_seconds",
             report.timing.simulated_network_seconds)
      .Field("noise_injection_seconds",
             report.timing.noise_injection_seconds)
      .Field("total_seconds", report.timing.TotalSeconds())
      .EndObject();
  writer.Key("network").BeginObject()
      .Field("messages", report.network.messages)
      .Field("field_elements", report.network.field_elements)
      .Field("bytes", report.network.bytes())
      .Field("rounds", report.network.rounds)
      .EndObject();
  writer.Key("transport").BeginObject();
  WriteTransportStatsFields(writer, report.transport);
  writer.EndObject();
  writer.Key("dropout").BeginObject()
      .Field("policy", std::string(DropoutPolicyToString(
                           report.dropout.policy)))
      .Field("num_parties", static_cast<uint64_t>(
                                report.dropout.num_parties))
      .Field("num_dropped", static_cast<uint64_t>(
                                report.dropout.num_dropped));
  writer.BeginArray("survivors");
  for (size_t j : report.dropout.survivors) {
    writer.Value(static_cast<uint64_t>(j));
  }
  writer.EndArray();
  writer.Field("configured_mu", report.dropout.configured_mu)
      .Field("realized_mu", report.dropout.realized_mu)
      .Field("topup_mu", report.dropout.topup_mu)
      .Field("configured_epsilon", report.dropout.configured_epsilon)
      .Field("realized_epsilon", report.dropout.realized_epsilon)
      .Field("delta", report.dropout.delta)
      .Field("best_alpha", report.dropout.best_alpha)
      .Field("mpc_attempts", static_cast<uint64_t>(
                                 report.dropout.mpc_attempts))
      .Field("resumed_from_level",
             static_cast<uint64_t>(report.dropout.resumed_from_level))
      .EndObject();
  writer.EndObject();
  return writer.str();
}

Result<JsonValue> ParseJson(const std::string& text) {
  JsonParser parser(text);
  return parser.ParseDocument();
}

Result<SqmReport> SqmReportFromJson(const std::string& json) {
  SQM_ASSIGN_OR_RETURN(const JsonValue root, ParseJson(json));
  SQM_RETURN_NOT_OK(RequireKind(root, JsonValue::Kind::kObject, "<root>"));
  SqmReport report;

  SQM_ASSIGN_OR_RETURN(const JsonValue* estimate,
                       RequireMember(root, "estimate"));
  SQM_RETURN_NOT_OK(
      RequireKind(*estimate, JsonValue::Kind::kArray, "estimate"));
  for (const JsonValue& item : estimate->items) {
    SQM_RETURN_NOT_OK(
        RequireKind(item, JsonValue::Kind::kNumber, "estimate[i]"));
    report.estimate.push_back(item.number);
  }

  SQM_ASSIGN_OR_RETURN(const JsonValue* raw, RequireMember(root, "raw"));
  SQM_RETURN_NOT_OK(RequireKind(*raw, JsonValue::Kind::kArray, "raw"));
  for (const JsonValue& item : raw->items) {
    SQM_ASSIGN_OR_RETURN(const int64_t v, IntElement(item, "raw[i]"));
    report.raw.push_back(v);
  }

  SQM_ASSIGN_OR_RETURN(const JsonValue* timing,
                       RequireMember(root, "timing"));
  SQM_RETURN_NOT_OK(RequireKind(*timing, JsonValue::Kind::kObject, "timing"));
  SQM_ASSIGN_OR_RETURN(report.timing.quantize_seconds,
                       NumberField(*timing, "quantize_seconds"));
  SQM_ASSIGN_OR_RETURN(report.timing.noise_sampling_seconds,
                       NumberField(*timing, "noise_sampling_seconds"));
  SQM_ASSIGN_OR_RETURN(report.timing.mpc_compute_seconds,
                       NumberField(*timing, "mpc_compute_seconds"));
  SQM_ASSIGN_OR_RETURN(report.timing.simulated_network_seconds,
                       NumberField(*timing, "simulated_network_seconds"));
  SQM_ASSIGN_OR_RETURN(report.timing.noise_injection_seconds,
                       NumberField(*timing, "noise_injection_seconds"));

  SQM_ASSIGN_OR_RETURN(const JsonValue* network,
                       RequireMember(root, "network"));
  SQM_RETURN_NOT_OK(
      RequireKind(*network, JsonValue::Kind::kObject, "network"));
  SQM_ASSIGN_OR_RETURN(report.network.messages,
                       UintField(*network, "messages"));
  SQM_ASSIGN_OR_RETURN(report.network.field_elements,
                       UintField(*network, "field_elements"));
  SQM_ASSIGN_OR_RETURN(report.network.rounds, UintField(*network, "rounds"));

  SQM_ASSIGN_OR_RETURN(const JsonValue* dropout,
                       RequireMember(root, "dropout"));
  SQM_RETURN_NOT_OK(
      RequireKind(*dropout, JsonValue::Kind::kObject, "dropout"));
  SQM_ASSIGN_OR_RETURN(const JsonValue* policy,
                       RequireMember(*dropout, "policy"));
  SQM_RETURN_NOT_OK(
      RequireKind(*policy, JsonValue::Kind::kString, "dropout.policy"));
  SQM_ASSIGN_OR_RETURN(report.dropout.policy,
                       DropoutPolicyFromString(policy->string_value));
  SQM_ASSIGN_OR_RETURN(const uint64_t num_parties,
                       UintField(*dropout, "num_parties"));
  report.dropout.num_parties = static_cast<size_t>(num_parties);
  SQM_ASSIGN_OR_RETURN(const uint64_t num_dropped,
                       UintField(*dropout, "num_dropped"));
  report.dropout.num_dropped = static_cast<size_t>(num_dropped);
  SQM_ASSIGN_OR_RETURN(const JsonValue* survivors,
                       RequireMember(*dropout, "survivors"));
  SQM_RETURN_NOT_OK(RequireKind(*survivors, JsonValue::Kind::kArray,
                                "dropout.survivors"));
  for (const JsonValue& item : survivors->items) {
    SQM_ASSIGN_OR_RETURN(const int64_t j,
                         IntElement(item, "dropout.survivors[i]"));
    if (j < 0) {
      return Status::IoError("dropout.survivors[i] is negative");
    }
    report.dropout.survivors.push_back(static_cast<size_t>(j));
  }
  SQM_ASSIGN_OR_RETURN(report.dropout.configured_mu,
                       NumberField(*dropout, "configured_mu"));
  SQM_ASSIGN_OR_RETURN(report.dropout.realized_mu,
                       NumberField(*dropout, "realized_mu"));
  SQM_ASSIGN_OR_RETURN(report.dropout.topup_mu,
                       NumberField(*dropout, "topup_mu"));
  SQM_ASSIGN_OR_RETURN(report.dropout.configured_epsilon,
                       NumberField(*dropout, "configured_epsilon"));
  SQM_ASSIGN_OR_RETURN(report.dropout.realized_epsilon,
                       NumberField(*dropout, "realized_epsilon"));
  SQM_ASSIGN_OR_RETURN(report.dropout.delta,
                       NumberField(*dropout, "delta"));
  SQM_ASSIGN_OR_RETURN(report.dropout.best_alpha,
                       NumberField(*dropout, "best_alpha"));
  SQM_ASSIGN_OR_RETURN(const uint64_t mpc_attempts,
                       UintField(*dropout, "mpc_attempts"));
  report.dropout.mpc_attempts = static_cast<size_t>(mpc_attempts);
  SQM_ASSIGN_OR_RETURN(const uint64_t resumed_from_level,
                       UintField(*dropout, "resumed_from_level"));
  report.dropout.resumed_from_level =
      static_cast<size_t>(resumed_from_level);
  return report;
}

}  // namespace sqm
