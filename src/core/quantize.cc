#include "core/quantize.h"

#include <cmath>

#include "core/logging.h"
#include "mpc/field.h"

namespace sqm {

int64_t StochasticRound(double value, double scale, Rng& rng) {
  const double scaled = value * scale;
  const double floor_val = std::floor(scaled);
  const double frac = scaled - floor_val;
  // Algorithm 2: heads with probability equal to the fractional part.
  const int64_t base = static_cast<int64_t>(floor_val);
  return rng.NextBernoulli(frac) ? base + 1 : base;
}

std::vector<int64_t> StochasticRoundVector(const std::vector<double>& values,
                                           double scale, Rng& rng) {
  std::vector<int64_t> out(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    out[i] = StochasticRound(values[i], scale, rng);
  }
  return out;
}

int64_t NearestRound(double value, double scale) {
  return static_cast<int64_t>(std::llround(value * scale));
}

QuantizedDatabase QuantizeDatabase(const Matrix& x, double gamma, Rng& rng) {
  QuantizedDatabase db;
  db.rows = x.rows();
  db.cols = x.cols();
  db.columns.resize(x.cols());
  for (size_t j = 0; j < x.cols(); ++j) {
    // Each client rounds with its own independent randomness.
    Rng client_rng = rng.Split(j);
    db.columns[j] = StochasticRoundVector(x.Col(j), gamma, client_rng);
  }
  return db;
}

Result<QuantizedPolynomial> QuantizePolynomial(const PolynomialVector& f,
                                               double gamma, Rng& rng) {
  if (gamma < 1.0) {
    return Status::InvalidArgument("gamma must be >= 1");
  }
  QuantizedPolynomial out;
  out.degree = f.Degree();
  out.output_scale = std::pow(gamma, static_cast<double>(out.degree) + 1.0);
  out.dims.resize(f.output_dim());
  for (size_t t = 0; t < f.output_dim(); ++t) {
    for (const Monomial& term : f.dims()[t].terms()) {
      // Scale by gamma^{1 + lambda - lambda_t[l]} (Algorithm 3 line 3):
      // combined with the gamma^{lambda_t[l]} the data quantization
      // contributes, every monomial is amplified by gamma^{lambda+1}.
      const double coeff_scale = std::pow(
          gamma, 1.0 + static_cast<double>(out.degree) -
                     static_cast<double>(term.Degree()));
      const double scaled = term.coefficient() * coeff_scale;
      if (std::fabs(scaled) >= static_cast<double>(Field::kMaxCentered)) {
        return Status::OutOfRange(
            "quantized coefficient exceeds field capacity; lower gamma");
      }
      QuantizedMonomial qm;
      qm.coefficient = StochasticRound(term.coefficient(), coeff_scale, rng);
      qm.exponents = term.exponents();
      out.dims[t].push_back(std::move(qm));
    }
  }
  return out;
}

Result<int64_t> EvaluateQuantizedDim(const std::vector<QuantizedMonomial>& dim,
                                     const QuantizedDatabase& db, size_t row) {
  if (row >= db.rows) {
    return Status::InvalidArgument("row index out of range");
  }
  __int128 acc = 0;
  const __int128 capacity = static_cast<__int128>(Field::kMaxCentered);
  for (const QuantizedMonomial& term : dim) {
    __int128 value = term.coefficient;
    for (const auto& [var, exp] : term.exponents) {
      if (var >= db.cols) {
        return Status::InvalidArgument("monomial references missing column");
      }
      const __int128 x = db.at(row, var);
      for (uint32_t e = 0; e < exp; ++e) {
        value *= x;
        if (value > capacity || value < -capacity) {
          return Status::OutOfRange(
              "quantized monomial value exceeds field capacity; lower gamma");
        }
      }
    }
    acc += value;
    if (acc > capacity || acc < -capacity) {
      return Status::OutOfRange(
          "quantized polynomial value exceeds field capacity; lower gamma");
    }
  }
  return static_cast<int64_t>(acc);
}

}  // namespace sqm
