#ifndef SQM_CORE_QUANTIZE_H_
#define SQM_CORE_QUANTIZE_H_

#include <cstdint>
#include <vector>

#include "core/status.h"
#include "math/matrix.h"
#include "poly/polynomial.h"
#include "sampling/rng.h"

namespace sqm {

/// Algorithm 2 of the paper: scale a real value by `scale` and randomly
/// round to one of the two nearest integers, choosing the upper neighbour
/// with probability equal to the fractional part. Unbiased:
/// E[StochasticRound(v, s)] = s * v.
int64_t StochasticRound(double value, double scale, Rng& rng);

/// Vector form of Algorithm 2.
std::vector<int64_t> StochasticRoundVector(const std::vector<double>& values,
                                           double scale, Rng& rng);

/// Deterministic nearest-integer rounding — the ablation comparator
/// (bench/ablation_rounding). Biased for Gram matrices; kept to demonstrate
/// why Algorithm 2 uses randomized rounding.
int64_t NearestRound(double value, double scale);

/// Quantized integer database: column j is client j's processed portion
/// X-hat[:, j] (Algorithm 1 lines 1-2 / Algorithm 3 lines 4-5).
struct QuantizedDatabase {
  size_t rows = 0;
  size_t cols = 0;
  /// Column-major: columns[j][i] = X-hat[i, j]; each column is produced
  /// (and owned) by a single client.
  std::vector<std::vector<int64_t>> columns;

  int64_t at(size_t i, size_t j) const { return columns[j][i]; }
};

/// Quantizes every column of `x` with scaling factor gamma. Each column
/// uses an independent RNG stream split from `rng`, mirroring the fact that
/// each client rounds privately with its own randomness.
QuantizedDatabase QuantizeDatabase(const Matrix& x, double gamma, Rng& rng);

/// One quantized monomial of one output dimension.
struct QuantizedMonomial {
  /// Processed integer coefficient a-hat_t[l] (Algorithm 3 line 3).
  int64_t coefficient = 0;
  /// Sparse exponents over variables, copied from the source monomial.
  std::vector<std::pair<size_t, uint32_t>> exponents;
};

/// A fully quantized polynomial ready for integer/MPC evaluation.
struct QuantizedPolynomial {
  /// quantized_dims[t] lists the quantized monomials of dimension t.
  std::vector<std::vector<QuantizedMonomial>> dims;
  /// Degree lambda of the original polynomial.
  uint32_t degree = 0;
  /// Common output scale: every evaluated dimension is gamma^{degree+1}
  /// times the true value (Algorithm 3 line 11 divides by this).
  double output_scale = 0.0;
};

/// Algorithm 3 lines 1-3: quantizes the coefficients of `f`, scaling the
/// l-th monomial of dimension t by gamma^{1 + lambda - lambda_t[l]} so every
/// monomial ends up amplified by gamma^{lambda+1} regardless of its degree.
/// Coefficients are public, so this step costs no privacy.
///
/// Fails with OutOfRange if a scaled coefficient cannot be represented as a
/// field-safe integer.
Result<QuantizedPolynomial> QuantizePolynomial(const PolynomialVector& f,
                                               double gamma, Rng& rng);

/// Evaluates one quantized dimension on row `i` of the quantized database
/// using 128-bit intermediate accumulation. Fails with OutOfRange if the
/// value leaves the centered field range (the capacity guard the paper's
/// "numerical precision" discussion calls for).
Result<int64_t> EvaluateQuantizedDim(const std::vector<QuantizedMonomial>& dim,
                                     const QuantizedDatabase& db, size_t row);

}  // namespace sqm

#endif  // SQM_CORE_QUANTIZE_H_
