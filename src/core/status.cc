#include "core/status.h"

#include <cstdlib>
#include <iostream>

namespace sqm {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kIntegrityViolation:
      return "IntegrityViolation";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

namespace internal {

void DieOnError(const Status& status) {
  std::cerr << "Fatal: attempted to access the value of an errored Result: "
            << status.ToString() << std::endl;
  std::abort();
}

}  // namespace internal
}  // namespace sqm
