#ifndef SQM_CORE_LOGGING_H_
#define SQM_CORE_LOGGING_H_

#include <sstream>
#include <string>

namespace sqm {

/// Severity levels for the library logger, lowest to highest.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Minimal thread-compatible logger. Messages at or above the global
/// threshold go to stderr; kFatal additionally aborts. Benchmarks and tests
/// raise the threshold to keep output clean.
class Logger {
 public:
  /// Sets the global minimum severity that will be emitted.
  static void SetLevel(LogLevel level);
  static LogLevel GetLevel();

  /// Emits one formatted line ("[LEVEL] message"). Aborts on kFatal.
  static void Log(LogLevel level, const std::string& message);
};

namespace internal {

/// Stream-style accumulator used by the SQM_LOG macro; flushes on
/// destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Log(level_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

/// Usage: SQM_LOG(kInfo) << "epoch " << e << " done";
#define SQM_LOG(severity) \
  ::sqm::internal::LogMessage(::sqm::LogLevel::severity)

/// Precondition check that survives release builds. Aborts with the
/// condition text on failure; use for programmer errors, not data errors.
#define SQM_CHECK(condition)                                            \
  do {                                                                  \
    if (!(condition)) {                                                 \
      ::sqm::Logger::Log(::sqm::LogLevel::kFatal,                       \
                         std::string("Check failed: ") + #condition +  \
                             " at " + __FILE__ + ":" +                  \
                             std::to_string(__LINE__));                 \
    }                                                                   \
  } while (false)

}  // namespace sqm

#endif  // SQM_CORE_LOGGING_H_
