#ifndef SQM_CORE_LOGGING_H_
#define SQM_CORE_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>

namespace sqm {

/// Severity levels for the library logger, lowest to highest.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// One log emission, as handed to sinks.
struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  const char* file = "";    ///< __FILE__ of the call site ("" for legacy).
  int line = 0;
  std::string module;       ///< Source subsystem, e.g. "net", "mpc".
  std::string message;
  double elapsed_seconds = 0.0;  ///< Since the process trace epoch.
};

/// A pluggable destination for log records. Sinks are called under the
/// logger mutex, so each record is emitted exactly once and whole —
/// concurrent party threads can no longer interleave bytes within a line.
using LogSink = std::function<void(const LogRecord&)>;

/// Thread-safe logger. Messages at or above the effective threshold (the
/// per-module override when one is set, else the global level) go to the
/// installed sink — by default one atomic "[LEVEL] message" line on stderr.
/// kFatal runs the registered fatal hooks (e.g. the tracer's crash flush)
/// and aborts. Benchmarks and tests raise the threshold to keep output
/// clean.
class Logger {
 public:
  /// Sets the global minimum severity that will be emitted.
  static void SetLevel(LogLevel level);
  static LogLevel GetLevel();

  /// Per-module threshold override (module = path segment after "src/",
  /// e.g. "net"). Wins over the global level for that module's call sites.
  static void SetModuleLevel(const std::string& module, LogLevel level);
  static void ClearModuleLevel(const std::string& module);
  static void ClearModuleLevels();

  /// Whether a record at `level` from `module` would be emitted.
  static bool ShouldLog(LogLevel level, const std::string& module);

  /// Replaces the output sink; a null sink restores the default stderr
  /// sink. The sink runs under the logger mutex — keep it fast.
  static void SetSink(LogSink sink);

  /// A record rendered as one JSON object (no trailing newline) — the
  /// building block for JSON-lines sinks:
  ///   Logger::SetSink([&](const LogRecord& r) {
  ///     stream << Logger::RecordToJsonLine(r) << '\n';
  ///   });
  static std::string RecordToJsonLine(const LogRecord& record);

  /// Registers a hook run (once each) on the fatal path before abort.
  /// Used by obs::Tracer to flush the active trace from crashes.
  static void AddFatalHook(std::function<void()> hook);

  /// Emits one formatted line ("[LEVEL] message"). Aborts on kFatal.
  static void Log(LogLevel level, const std::string& message);

  /// Full-context emission used by SQM_LOG; derives the module from file.
  static void LogAt(LogLevel level, const char* file, int line,
                    const std::string& message);

  /// "src/net/threaded.cc" -> "net"; files outside src/ map to their
  /// directory name, bare filenames to "".
  static std::string ModuleFromFile(const char* file);
};

namespace internal {

/// Stream-style accumulator used by the SQM_LOG macro; flushes on
/// destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { Logger::LogAt(level_, file_, line_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_ = "";
  int line_ = 0;
  std::ostringstream stream_;
};

/// Fatal path of SQM_CHECK: one atomic write carrying the failed
/// expression and location, fatal hooks (trace flush), then abort.
[[noreturn]] void CheckFailed(const char* file, int line,
                              const char* expression);

}  // namespace internal

/// Usage: SQM_LOG(kInfo) << "epoch " << e << " done";
#define SQM_LOG(severity)                                     \
  ::sqm::internal::LogMessage(::sqm::LogLevel::severity,      \
                              __FILE__, __LINE__)

/// Precondition check that survives release builds. On failure, emits the
/// failed expression and location in one atomic write, flushes the active
/// trace buffer (via the logger's fatal hooks), and aborts. The statement
/// form is safe in an unbraced if/else, and the compiler knows execution
/// does not continue past a failed check. Use for programmer errors, not
/// data errors.
#define SQM_CHECK(condition)                                  \
  do {                                                        \
    if (!(condition)) {                                       \
      ::sqm::internal::CheckFailed(__FILE__, __LINE__,        \
                                   #condition);               \
    }                                                         \
  } while (false)

}  // namespace sqm

#endif  // SQM_CORE_LOGGING_H_
