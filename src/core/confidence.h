#ifndef SQM_CORE_CONFIDENCE_H_
#define SQM_CORE_CONFIDENCE_H_

#include <cstdint>

#include "core/status.h"

namespace sqm {

/// Error bars for SQM releases.
///
/// A downstream consumer of a release tilde-y sees signal + noise, with
/// the noise fully characterized: Sk(mu) scaled by gamma^{-(lambda+1)}
/// (or gamma^{-lambda} when coefficients are not pre-processed), plus a
/// deterministic quantization residual bounded by the Lemma-2 envelope.
/// These helpers turn (mu, gamma, lambda) into a two-sided confidence
/// interval — the honest way to report a DP statistic.
struct ReleaseInterval {
  double lower = 0.0;
  double upper = 0.0;
  double noise_std = 0.0;  ///< Std of the de-scaled Skellam noise.
};

/// Two-sided interval around `estimate` containing the true de-scaled
/// noisy signal with probability >= confidence (over the Skellam draw).
/// Uses the sub-exponential tail bound of Sk(mu)
///     P(|Z| >= t) <= 2 exp(-t^2 / (2 (2 mu + t)))
/// inverted for t, which is within a small constant of the Gaussian
/// quantile for large mu and remains valid for small mu.
///
/// `output_scale` is gamma^{lambda+1} (Algorithm 3) or gamma^lambda (PCA
/// convention); `confidence` in (0, 1).
Result<ReleaseInterval> SkellamReleaseInterval(double estimate, double mu,
                                               double output_scale,
                                               double confidence = 0.95);

/// The tail radius t such that P(|Sk(mu)| >= t) <= beta, from the
/// sub-exponential bound above (in un-scaled integer units).
double SkellamTailRadius(double mu, double beta);

}  // namespace sqm

#endif  // SQM_CORE_CONFIDENCE_H_
