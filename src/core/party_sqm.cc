#include "core/party_sqm.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "core/logging.h"
#include "core/quantize.h"
#include "core/sensitivity.h"
#include "dp/accountant.h"
#include "dp/skellam.h"
#include "mpc/beaver.h"
#include "mpc/checkpoint_store.h"
#include "mpc/circuit.h"
#include "mpc/field.h"
#include "mpc/network.h"
#include "mpc/party_protocol.h"
#include "mpc/protocol.h"
#include "mpc/shamir.h"
#include "net/liveness.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "poly/parser.h"
#include "sampling/skellam_sampler.h"

namespace sqm {
namespace {

double SecondsSince(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Identity of the computation a durable checkpoint belongs to: every
/// config field that determines the circuit structure, the synthetic
/// inputs, or the RNG streams. A checkpoint whose fingerprint mismatches
/// is from a different deployment and must not be resumed.
uint64_t ConfigFingerprint(const DeploymentConfig& config) {
  uint64_t h = 0x53514d434b505431ULL;
  const auto mix = [&h](uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  const auto mix_double = [&mix](double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    mix(bits);
  };
  mix(config.run_id);
  mix(config.seed);
  mix(config.data_seed);
  mix(config.rows);
  mix(config.cols);
  mix(config.parties.size());
  mix(config.bgw_threshold);
  mix_double(config.gamma);
  mix_double(config.mu);
  mix(config.quantize_coefficients ? 1 : 0);
  // The mul backend changes the RNG consumption schedule (Beaver Mul
  // never draws re-sharing randomness), so checkpoints do not transfer
  // across backends.
  mix(config.mul_backend == "beaver" ? 1 : 0);
  for (const char c : config.polynomial) {
    mix(static_cast<uint8_t>(c));
  }
  return h;
}

}  // namespace

size_t DeploymentCols(const DeploymentConfig& config) {
  return config.cols == 0 ? config.parties.size() : config.cols;
}

Matrix GenerateDeploymentMatrix(size_t rows, size_t cols,
                                uint64_t data_seed) {
  Rng rng(data_seed);
  std::vector<double> values(rows * cols);
  for (size_t i = 0; i < rows; ++i) {
    double norm_sq = 0.0;
    for (size_t j = 0; j < cols; ++j) {
      const double v = 2.0 * rng.NextDouble() - 1.0;
      values[i * cols + j] = v;
      norm_sq += v * v;
    }
    // Normalize records into the unit ball so the default
    // record_norm_bound = 1 sensitivity analysis applies.
    const double norm = std::sqrt(norm_sq);
    if (norm > 1.0) {
      for (size_t j = 0; j < cols; ++j) values[i * cols + j] /= norm;
    }
  }
  return Matrix(rows, cols, std::move(values));
}

Result<SqmOptions> SqmOptionsFromDeployment(const DeploymentConfig& config) {
  SqmOptions options;
  options.gamma = config.gamma;
  options.mu = config.mu;
  options.num_clients = config.parties.size();
  options.backend = MpcBackend::kBgw;
  options.bgw_threshold = config.bgw_threshold;
  options.transport = TransportMode::kLockstep;
  options.seed = config.seed;
  SQM_ASSIGN_OR_RETURN(options.dropout_policy,
                       DropoutPolicyFromString(config.dropout_policy));
  SQM_ASSIGN_OR_RETURN(options.mul_backend,
                       MulBackendFromString(config.mul_backend));
  options.dp_delta = config.dp_delta;
  options.record_norm_bound = config.record_norm_bound;
  options.mpc_max_attempts = config.mpc_max_attempts;
  options.max_f_l2 = config.max_f_l2;
  options.quantize_coefficients = config.quantize_coefficients;
  options.check_capacity = config.check_capacity;
  return options;
}

Result<SqmReport> RunPartySqm(const DeploymentConfig& config, size_t me,
                              Transport* transport,
                              const PartySqmHooks& hooks) {
  const size_t num_clients = config.parties.size();
  if (me >= num_clients) {
    return Status::InvalidArgument(
        "party index " + std::to_string(me) + " out of range for " +
        std::to_string(num_clients) + " parties");
  }
  if (transport == nullptr || transport->num_parties() != num_clients) {
    return Status::InvalidArgument(
        "transport party count does not match the deployment roster");
  }
  SQM_ASSIGN_OR_RETURN(const DropoutPolicy policy,
                       DropoutPolicyFromString(config.dropout_policy));
  SQM_ASSIGN_OR_RETURN(const MulBackend mul_backend,
                       MulBackendFromString(config.mul_backend));
  SQM_ASSIGN_OR_RETURN(const PolynomialVector f,
                       ParsePolynomialVector(config.polynomial));

  const size_t cols = DeploymentCols(config);
  // Validation mirror of SqmEvaluator::Evaluate — same failure, same
  // message class, before any traffic.
  if (f.output_dim() == 0) {
    return Status::InvalidArgument("polynomial has no output dimensions");
  }
  if (f.MinArity() > cols) {
    return Status::InvalidArgument(
        "polynomial references more variables than the database has columns");
  }
  if (num_clients > cols) {
    return Status::InvalidArgument(
        "more clients than columns: every client must own >= 1 column");
  }
  if (num_clients < 3) {
    return Status::InvalidArgument(
        "the BGW backend needs >= 3 clients (threshold < n/2 with "
        "threshold >= 1)");
  }
  if (config.gamma < 1.0) {
    return Status::InvalidArgument("gamma must be >= 1");
  }
  if (config.mu < 0.0) {
    return Status::InvalidArgument("mu must be >= 0");
  }
  if (config.check_capacity) {
    SQM_RETURN_NOT_OK(CheckFieldCapacity(config.rows, config.gamma,
                                         f.Degree(), config.max_f_l2,
                                         config.mu));
  }

  const Matrix x = GenerateDeploymentMatrix(config.rows, cols,
                                            config.data_seed);
  Rng rng(config.seed);

  obs::Span evaluate_span("sqm.party_evaluate", "sqm");
  evaluate_span.AddArg("party", static_cast<int64_t>(me));
  evaluate_span.AddArg("clients", static_cast<int64_t>(num_clients));
  evaluate_span.AddArg("rows", static_cast<int64_t>(config.rows));

  // ---- Step 1: quantization. Coefficients are public, so every party
  // derives the same quantized polynomial from the shared seed's
  // coefficient stream. Data columns: this party replays the driver's
  // per-column split sequence and stochastically rounds ONLY its own
  // columns — the splits consume parent draws but never data, so the
  // values equal what driver mode assigns to this party.
  const auto quantize_start = std::chrono::steady_clock::now();
  QuantizedPolynomial qf;
  if (config.quantize_coefficients) {
    Rng coeff_rng = rng.Split(0x0c0eff);
    SQM_ASSIGN_OR_RETURN(qf,
                         QuantizePolynomial(f, config.gamma, coeff_rng));
  } else {
    for (const Polynomial& p : f.dims()) {
      for (const Monomial& term : p.terms()) {
        if (term.Degree() != f.Degree()) {
          return Status::InvalidArgument(
              "quantize_coefficients=false requires all monomials to have "
              "the polynomial's degree");
        }
        const double c = term.coefficient();
        if (c != std::floor(c)) {
          return Status::InvalidArgument(
              "quantize_coefficients=false requires integer coefficients");
        }
      }
    }
    qf.degree = f.Degree();
    qf.output_scale =
        std::pow(config.gamma, static_cast<double>(qf.degree));
    qf.dims.resize(f.output_dim());
    for (size_t t = 0; t < f.output_dim(); ++t) {
      for (const Monomial& term : f.dims()[t].terms()) {
        QuantizedMonomial qm;
        qm.coefficient = static_cast<int64_t>(term.coefficient());
        qm.exponents = term.exponents();
        qf.dims[t].push_back(std::move(qm));
      }
    }
  }
  Rng data_rng = rng.Split(0xda7a);
  const auto [col_begin, col_end] =
      ClientColumnRange(me, cols, num_clients);
  std::vector<std::vector<int64_t>> my_columns(cols);
  for (size_t j = 0; j < cols; ++j) {
    Rng client_rng = data_rng.Split(j);
    if (j >= col_begin && j < col_end) {
      my_columns[j] = StochasticRoundVector(x.Col(j), config.gamma,
                                            client_rng);
    }
  }
  const double quantize_seconds = SecondsSince(quantize_start);

  // ---- Step 2: local Skellam noise — own stream only, same replay.
  const auto noise_start = std::chrono::steady_clock::now();
  const size_t d = f.output_dim();
  std::vector<int64_t> my_noise(d, 0);
  if (config.mu > 0.0) {
    const SkellamSampler sampler(config.mu /
                                 static_cast<double>(num_clients));
    for (size_t j = 0; j < num_clients; ++j) {
      Rng client_rng = rng.Split(0x4015e + j);
      if (j == me) my_noise = sampler.SampleVector(client_rng, d);
    }
  }
  const double noise_seconds = SecondsSince(noise_start);

  SensitivityBound sensitivity;
  if (config.mu > 0.0) {
    sensitivity = PolynomialSensitivity(f, config.gamma,
                                        config.record_norm_bound,
                                        config.max_f_l2,
                                        config.quantize_coefficients);
  }

  const size_t threshold = config.bgw_threshold == 0
                               ? (num_clients - 1) / 2
                               : config.bgw_threshold;
  SQM_RETURN_NOT_OK(ShamirScheme::Validate(num_clients, threshold));

  if (obs::Enabled()) {
    obs::Tracer::Global().SetTrackName(static_cast<int32_t>(me),
                                       "party " + std::to_string(me));
  }
  obs::TrackScope party_track(static_cast<int32_t>(me));
  obs::Span bgw_span("sqm.bgw", "sqm");
  bgw_span.AddArg("parties", static_cast<int64_t>(num_clients));
  bgw_span.AddArg("threshold", static_cast<int64_t>(threshold));

  // ---- Step 3: the same circuit SqmEvaluator::EvaluateBgw builds — the
  // structure is a pure function of (qf, rows, cols, partition, d), all
  // public. Only this party's input VALUES are filled in.
  Circuit circuit;
  std::vector<std::vector<Circuit::WireId>> column_wires(cols);
  std::vector<int64_t> my_inputs;
  for (size_t j = 0; j < num_clients; ++j) {
    const auto [begin, end] = ClientColumnRange(j, cols, num_clients);
    for (size_t col = begin; col < end; ++col) {
      column_wires[col].resize(config.rows);
      for (size_t i = 0; i < config.rows; ++i) {
        column_wires[col][i] = circuit.AddInput(j);
        if (j == me) my_inputs.push_back(my_columns[col][i]);
      }
    }
  }
  std::vector<std::vector<Circuit::WireId>> noise_wires(num_clients);
  for (size_t j = 0; j < num_clients; ++j) {
    noise_wires[j].resize(d);
    for (size_t t = 0; t < d; ++t) {
      noise_wires[j][t] = circuit.AddInput(j);
      if (j == me) my_inputs.push_back(my_noise[t]);
    }
  }
  for (size_t t = 0; t < d; ++t) {
    Circuit::WireId acc = circuit.AddConstant(0);
    for (size_t i = 0; i < config.rows; ++i) {
      for (const QuantizedMonomial& term : qf.dims[t]) {
        Circuit::WireId prod = 0;
        bool have_prod = false;
        for (const auto& [var, exp] : term.exponents) {
          for (uint32_t e = 0; e < exp; ++e) {
            if (!have_prod) {
              prod = column_wires[var][i];
              have_prod = true;
            } else {
              prod = circuit.AddMul(prod, column_wires[var][i]);
            }
          }
        }
        const Field::Element coeff = Field::Encode(term.coefficient);
        const Circuit::WireId scaled =
            have_prod ? circuit.AddMulConst(prod, coeff)
                      : circuit.AddConstant(coeff);
        acc = circuit.AddAdd(acc, scaled);
      }
    }
    for (size_t j = 0; j < num_clients; ++j) {
      acc = circuit.AddAdd(acc, noise_wires[j][t]);
    }
    circuit.MarkOutput(acc);
  }

  PartyEngine engine(ShamirScheme(num_clients, threshold), transport,
                     config.seed ^ 0xb9d7, me);
  if (hooks.mul_level_hook) {
    engine.set_mul_level_hook(hooks.mul_level_hook);
  }
  const size_t quorum = 2 * threshold + 1;
  LivenessTracker tracker(num_clients);
  if (policy != DropoutPolicy::kAbort) engine.set_liveness(&tracker);

  // Supervised recovery: durable checkpoints at every phase boundary plus
  // resume barriers on failure, so a kill -9'd party can be respawned by
  // the coordinator and rejoin with full quorum (docs/DEPLOYMENT.md
  // "Recovery & supervision"). Needs a non-abort policy: abort runs have
  // no liveness tracker to arbitrate a barrier.
  const bool recovery_enabled = !hooks.checkpoint_dir.empty() &&
                                config.recovery_deadline_seconds > 0.0 &&
                                policy != DropoutPolicy::kAbort;
  const uint64_t fingerprint = ConfigFingerprint(config);
  const CheckpointStore store(hooks.checkpoint_dir);
  PartyCheckpoint checkpoint;
  if (recovery_enabled) {
    engine.protocol().set_recovery_mode(true);
    engine.set_checkpoint_sink([&](const PartyCheckpoint& ckpt) {
      DurableCheckpoint snap;
      snap.run_id = config.run_id;
      snap.party = static_cast<uint32_t>(me);
      snap.incarnation = hooks.incarnation;
      snap.fingerprint = fingerprint;
      snap.valid = ckpt.valid;
      snap.next_level = ckpt.next_level;
      snap.mul_rounds_done = ckpt.mul_rounds_done;
      snap.wire_shares = ckpt.wire_shares;
      engine.protocol().SaveRngState(snap.rng_state);
      const Status saved = store.Save(snap);
      SQM_FLIGHT_EVENT2("ckpt", saved.ok() ? "saved" : "save_failed",
                        static_cast<int64_t>(ckpt.next_level),
                        static_cast<int64_t>(ckpt.mul_rounds_done));
      if (!saved.ok()) {
        // A failed save degrades a future restart to a full redo; this
        // run continues unharmed.
        SQM_LOG(kWarning) << "party " << me
                          << ": durable checkpoint save failed: " << saved;
      }
    });
    if (hooks.incarnation > 0) {
      // Restarted process: restore the pre-crash wire shares and RNG
      // cursor, so redone levels deal bit-identical randomness.
      Result<DurableCheckpoint> loaded = store.Load();
      if (loaded.ok() && loaded.ValueOrDie().run_id == config.run_id &&
          loaded.ValueOrDie().party == me &&
          loaded.ValueOrDie().fingerprint == fingerprint &&
          loaded.ValueOrDie().valid &&
          loaded.ValueOrDie().wire_shares.size() == circuit.gates().size()) {
        DurableCheckpoint& snap = loaded.ValueOrDie();
        checkpoint.valid = true;
        checkpoint.next_level = static_cast<size_t>(snap.next_level);
        checkpoint.mul_rounds_done =
            static_cast<size_t>(snap.mul_rounds_done);
        checkpoint.wire_shares = std::move(snap.wire_shares);
        engine.protocol().RestoreRngState(snap.rng_state);
      } else {
        SQM_LOG(kWarning)
            << "party " << me << ": no usable durable checkpoint ("
            << (loaded.ok() ? Status::OK() : loaded.status())
            << "); announcing a full redo at the resume barrier";
      }
    }
  }

  // Beaver backend: every party pre-deals the SAME pool from the shared
  // (scheme, seed, capacity) — offline work, before the online clock.
  // A checkpoint resume replays Mul levels, so the pool is provisioned
  // for mpc_max_attempts full passes. Supervised recovery is rejected:
  // the pool cursor is not part of the durable checkpoint, so a restarted
  // incarnation could not realign its triple stream.
  std::unique_ptr<BeaverTriplePool> beaver_pool;
  if (mul_backend == MulBackend::kBeaver) {
    if (recovery_enabled) {
      return Status::InvalidArgument(
          "mul_backend=beaver is not supported with supervised recovery: "
          "the Beaver pool cursor is not part of the durable checkpoint");
    }
    const size_t pool_attempts =
        policy != DropoutPolicy::kAbort
            ? std::max<size_t>(config.mpc_max_attempts, 1)
            : 1;
    beaver_pool = std::make_unique<BeaverTriplePool>(
        ShamirScheme(num_clients, threshold), config.seed ^ 0xbea7e5,
        circuit.num_multiplications() * pool_attempts);
    engine.protocol().set_beaver_pool(beaver_pool.get());
  }

  const auto compute_start = std::chrono::steady_clock::now();

  // Meets every peer at the resume barrier and redoes from the minimum
  // announced level: 0 = someone lost its input phase, full redo.
  const auto reconcile = [&]() -> Status {
    const uint64_t my_encoded =
        checkpoint.valid ? static_cast<uint64_t>(checkpoint.next_level) + 1
                         : 0;
    SQM_ASSIGN_OR_RETURN(const uint64_t min_encoded,
                         engine.protocol().ResumeBarrier(
                             config.recovery_deadline_seconds, my_encoded));
    if (min_encoded == 0) {
      checkpoint = PartyCheckpoint{};
    } else {
      // min includes our own announcement, so min - 1 <= next_level.
      checkpoint.next_level = static_cast<size_t>(min_encoded - 1);
    }
    SQM_FLIGHT_EVENT2("resume_barrier", "",
                      static_cast<int64_t>(my_encoded),
                      static_cast<int64_t>(min_encoded));
    return Status::OK();
  };

  // Checkpoint retry loop, mirroring the driver. Under TCP's crash-stop
  // failure model a failed level usually means a permanent quorum
  // shortfall (links die, they do not flake), so without recovery retries
  // are rare — the loop exists for schedule parity and for transports
  // with transient faults. With recovery enabled, a failed level is the
  // NORMAL rendezvous with a restarted peer.
  PartyCheckpoint* checkpoint_ptr =
      policy != DropoutPolicy::kAbort ? &checkpoint : nullptr;
  const size_t max_attempts =
      policy != DropoutPolicy::kAbort
          ? std::max<size_t>(config.mpc_max_attempts, 1)
          : 1;
  PartyProtocol::Shares out_shares;
  std::vector<int64_t> raw;
  double topup_mu = 0.0;
  size_t attempts = 0;
  size_t resumed_from_level = 0;
  if (recovery_enabled && hooks.incarnation > 0) {
    // The peers of this killed-and-respawned party are already waiting at
    // their barriers; answer before the first attempt.
    SQM_RETURN_NOT_OK(reconcile());
    resumed_from_level = checkpoint.valid ? checkpoint.next_level : 0;
  }

  // kTopUp: replay the driver's survivor-ordered top-up split sequence;
  // this party samples only its own compensating share. Survivor sets
  // agree across parties under the crash-stop model (a dead TCP link is
  // kUnavailable for every peer). Deterministic seeds, so re-running it
  // on a fresh out_shares after a recovery retry adds the same values.
  const auto run_topup = [&](PartyProtocol::Shares* shares_io,
                             double* mu_out) -> Status {
    *mu_out = 0.0;
    const size_t num_dropped =
        policy != DropoutPolicy::kAbort ? tracker.num_dead() : 0;
    if (policy != DropoutPolicy::kTopUp || config.mu <= 0.0 ||
        num_dropped == 0) {
      return Status::OK();
    }
    const std::vector<size_t> survivors = tracker.Survivors();
    const double per_survivor_mu =
        config.mu * static_cast<double>(num_dropped) /
        (static_cast<double>(num_clients) *
         static_cast<double>(survivors.size()));
    const SkellamSampler sampler(per_survivor_mu);
    Rng topup_root(config.seed ^ 0x70bu);
    for (size_t j : survivors) {
      Rng survivor_rng = topup_root.Split(j);
      std::vector<Field::Element> encoded;
      if (j == me) {
        encoded = Field::EncodeVector(sampler.SampleVector(survivor_rng, d));
      }
      SQM_ASSIGN_OR_RETURN(
          const PartyProtocol::Shares extra_shares,
          engine.protocol().ShareFromParty(j, encoded, d, "topup"));
      SQM_ASSIGN_OR_RETURN(*shares_io,
                           engine.protocol().Add(*shares_io, extra_shares));
      *mu_out += per_survivor_mu;
    }
    return Status::OK();
  };

  // The retry loop covers evaluate AND the output opening. The opening is
  // the protocol's last exchange: under recovery its full-quorum failure
  // (a laggard peer still at its resume barrier) must route back through
  // reconcile() like any failed level, or the laggard would be stranded
  // with nobody answering its barrier. Each retry recomputes out_shares
  // from the (possibly rewound) checkpoint, so nothing is double-added.
  while (true) {
    ++attempts;
    Status failure = Status::OK();
    Result<PartyProtocol::Shares> shares =
        engine.EvaluateToShares(circuit, my_inputs, checkpoint_ptr);
    if (!shares.ok()) {
      failure = shares.status();
    } else {
      out_shares = std::move(shares).ValueOrDie();
      const Status topup_status = run_topup(&out_shares, &topup_mu);
      if (!topup_status.ok()) {
        // Without recovery this keeps the pre-recovery contract: a topup
        // or open failure is terminal, never retried.
        if (!recovery_enabled) return topup_status;
        failure = topup_status;
      } else {
        Result<std::vector<int64_t>> opened = engine.OpenOutputs(out_shares);
        if (opened.ok()) {
          raw = std::move(opened).ValueOrDie();
          break;
        }
        if (!recovery_enabled) return opened.status();
        failure = opened.status();
      }
    }
    SQM_LOG(kInfo) << "party " << me << " attempt " << attempts
                   << " failed: " << failure;
    bool retryable =
        policy != DropoutPolicy::kAbort && attempts < max_attempts;
    if (retryable && recovery_enabled) {
      // The barrier may revive a restarted party or declare a vanished
      // one positively dead, so the quorum check comes after it.
      SQM_RETURN_NOT_OK(reconcile());
    }
    retryable = retryable && (checkpoint.valid || recovery_enabled) &&
                tracker.num_alive() >= quorum;
    if (!retryable) return failure;
    resumed_from_level = checkpoint.valid ? checkpoint.next_level : 0;
  }
  const double compute_seconds = SecondsSince(compute_start);
  const size_t num_dropped_final =
      policy != DropoutPolicy::kAbort ? tracker.num_dead() : 0;
  if (num_dropped_final > 0) {
    SQM_FLIGHT_EVENT2("degrade", config.dropout_policy.c_str(),
                      static_cast<int64_t>(num_dropped_final),
                      static_cast<int64_t>(attempts));
  }

  // Noise-injection timing probe, same shape as the driver's but with
  // zero vectors for the other parties (their noise is private to them);
  // the timing is representative, the values are never compared.
  const auto inject_start = std::chrono::steady_clock::now();
  {
    SimulatedNetwork scratch(num_clients, 0.0);
    scratch.set_registry_accounting(false);
    BgwProtocol protocol(ShamirScheme(num_clients, threshold), &scratch,
                         config.seed ^ 0x5c4a7c);
    SharedVector sum(num_clients, d);
    const std::vector<int64_t> zero(d, 0);
    for (size_t j = 0; j < num_clients; ++j) {
      const SharedVector share = protocol.ShareFromParty(
          j, Field::EncodeVector(j == me ? my_noise : zero));
      SQM_ASSIGN_OR_RETURN(sum, protocol.Add(sum, share));
    }
  }
  const double inject_seconds = SecondsSince(inject_start);

  SqmReport report;
  report.raw = std::move(raw);
  report.estimate.resize(d);
  for (size_t t = 0; t < d; ++t) {
    report.estimate[t] =
        static_cast<double>(report.raw[t]) / qf.output_scale;
  }
  report.network = transport->stats();
  report.transport = transport->Snapshot();
  report.timing.quantize_seconds = quantize_seconds;
  report.timing.noise_sampling_seconds = noise_seconds;
  report.timing.mpc_compute_seconds = compute_seconds;
  report.timing.simulated_network_seconds = transport->SimulatedSeconds();
  report.timing.noise_injection_seconds = noise_seconds + inject_seconds;

  // ---- Dropout accounting: byte-for-byte the driver's computation —
  // every input (survivor census, mu, sensitivities, delta) is public, so
  // all surviving parties report the same realized guarantee.
  DropoutReport& dropout = report.dropout;
  dropout.policy = policy;
  dropout.num_parties = num_clients;
  dropout.num_dropped = num_dropped_final;
  if (policy != DropoutPolicy::kAbort) {
    dropout.survivors = tracker.Survivors();
  } else {
    dropout.survivors.resize(num_clients);
    for (size_t j = 0; j < num_clients; ++j) dropout.survivors[j] = j;
  }
  dropout.configured_mu = config.mu;
  dropout.topup_mu = topup_mu;
  dropout.realized_mu =
      config.mu > 0.0
          ? SkellamMuWithDropouts(config.mu, num_clients,
                                  num_dropped_final) +
                topup_mu
          : 0.0;
  dropout.delta = config.dp_delta;
  dropout.mpc_attempts = attempts;
  dropout.resumed_from_level = resumed_from_level;
  if (config.mu > 0.0) {
    dropout.configured_epsilon = SkellamEpsilonSingleRelease(
        config.mu, sensitivity.l1, sensitivity.l2, config.dp_delta);
    if (dropout.realized_mu > 0.0) {
      PrivacyAccountant accountant;
      accountant.SetLedgerContext(config.dp_delta, config.gamma, d);
      accountant.AddSkellamWithDropouts(
          "sqm_release", sensitivity.l1, sensitivity.l2, config.mu,
          num_clients, num_dropped_final);
      if (topup_mu > 0.0) {
        accountant.Reset();
        accountant.AddSkellam("sqm_release", sensitivity.l1,
                              sensitivity.l2, dropout.realized_mu);
      }
      SQM_ASSIGN_OR_RETURN(const PrivacyGuarantee guarantee,
                           accountant.TotalGuarantee(config.dp_delta));
      dropout.realized_epsilon = guarantee.epsilon;
      dropout.best_alpha = guarantee.best_alpha;
      report.ledger = accountant.ledger();
    } else {
      dropout.realized_epsilon = std::numeric_limits<double>::infinity();
    }
  }
  return report;
}

}  // namespace sqm
