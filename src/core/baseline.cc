#include "core/baseline.h"

#include "core/logging.h"
#include "dp/gaussian.h"
#include "sampling/gaussian_sampler.h"
#include "sampling/rng.h"

namespace sqm {

Matrix PerturbDatabaseLocally(const Matrix& x, double sigma, uint64_t seed) {
  SQM_CHECK(sigma >= 0.0);
  Matrix noisy = x;
  Rng root(seed);
  for (size_t j = 0; j < x.cols(); ++j) {
    // One independent stream per client, as each client perturbs locally.
    Rng client_rng = root.Split(j);
    GaussianSampler sampler(sigma);
    for (size_t i = 0; i < x.rows(); ++i) {
      noisy(i, j) += sampler.Sample(client_rng);
    }
  }
  return noisy;
}

double LocalDpBaselineRdpServer(double alpha, double record_norm_bound,
                                double sigma) {
  return GaussianRdp(alpha, record_norm_bound, sigma);
}

double LocalDpBaselineRdpClient(double alpha, double record_norm_bound,
                                double sigma) {
  return GaussianRdp(alpha, 2.0 * record_norm_bound, sigma);
}

Result<double> CalibrateLocalDpSigma(double epsilon, double delta,
                                     double record_norm_bound) {
  return CalibrateGaussianSigma(epsilon, delta, record_norm_bound);
}

}  // namespace sqm
