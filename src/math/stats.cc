#include "math/stats.h"

#include <algorithm>
#include <cmath>

namespace sqm {
namespace {

std::vector<double> ToDouble(const std::vector<int64_t>& values) {
  std::vector<double> out(values.size());
  for (size_t i = 0; i < values.size(); ++i)
    out[i] = static_cast<double>(values[i]);
  return out;
}

}  // namespace

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double acc = 0.0;
  for (double v : values) acc += v;
  return acc / static_cast<double>(values.size());
}

double Variance(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double mean = Mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - mean) * (v - mean);
  return acc / static_cast<double>(values.size() - 1);
}

double StdDev(const std::vector<double>& values) {
  return std::sqrt(Variance(values));
}

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double Skewness(const std::vector<double>& values) {
  if (values.size() < 3) return 0.0;
  const double mean = Mean(values);
  double m2 = 0.0, m3 = 0.0;
  for (double v : values) {
    const double d = v - mean;
    m2 += d * d;
    m3 += d * d * d;
  }
  const double n = static_cast<double>(values.size());
  m2 /= n;
  m3 /= n;
  if (m2 <= 0.0) return 0.0;
  return m3 / std::pow(m2, 1.5);
}

double ExcessKurtosis(const std::vector<double>& values) {
  if (values.size() < 4) return 0.0;
  const double mean = Mean(values);
  double m2 = 0.0, m4 = 0.0;
  for (double v : values) {
    const double d = v - mean;
    m2 += d * d;
    m4 += d * d * d * d;
  }
  const double n = static_cast<double>(values.size());
  m2 /= n;
  m4 /= n;
  if (m2 <= 0.0) return 0.0;
  return m4 / (m2 * m2) - 3.0;
}

double Mean(const std::vector<int64_t>& values) {
  return Mean(ToDouble(values));
}

double Variance(const std::vector<int64_t>& values) {
  return Variance(ToDouble(values));
}

namespace {

/// Lower regularized gamma P(a, x) by series: converges fast for x < a+1.
double GammaPSeries(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int i = 0; i < 500; ++i) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

/// Upper regularized gamma Q(a, x) by modified Lentz continued fraction:
/// converges fast for x >= a+1.
double GammaQContinuedFraction(double a, double x) {
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-15) break;
  }
  return std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
}

}  // namespace

double RegularizedGammaQ(double a, double x) {
  if (!(a > 0.0) || x < 0.0) return std::nan("");
  if (x == 0.0) return 1.0;
  return x < a + 1.0 ? 1.0 - GammaPSeries(a, x)
                     : GammaQContinuedFraction(a, x);
}

double ChiSquarePValue(double statistic, double dof) {
  if (dof <= 0.0) return std::nan("");
  if (statistic <= 0.0) return 1.0;
  return RegularizedGammaQ(dof / 2.0, statistic / 2.0);
}

}  // namespace sqm
