#ifndef SQM_MATH_STATS_H_
#define SQM_MATH_STATS_H_

#include <cstdint>
#include <vector>

namespace sqm {

/// Summary statistics used by the distributional tests (sampler moment
/// checks) and by the benchmark harness when averaging over repeated runs.

/// Arithmetic mean; 0 for an empty input.
double Mean(const std::vector<double>& values);

/// Unbiased sample variance (n-1 denominator); 0 when size < 2.
double Variance(const std::vector<double>& values);

/// Sample standard deviation.
double StdDev(const std::vector<double>& values);

/// Linear-interpolation quantile, q in [0, 1]. Sorts a copy.
double Quantile(std::vector<double> values, double q);

/// Sample skewness (Fisher); 0 when size < 3 or variance is 0.
double Skewness(const std::vector<double>& values);

/// Excess kurtosis; 0 when size < 4 or variance is 0.
double ExcessKurtosis(const std::vector<double>& values);

/// Convenience overloads for integer samples.
double Mean(const std::vector<int64_t>& values);
double Variance(const std::vector<int64_t>& values);

/// Regularized upper incomplete gamma function Q(a, x) = Γ(a, x) / Γ(a),
/// a > 0, x >= 0. Series expansion for x < a + 1, Lentz continued
/// fraction otherwise (the classical gammp/gammq split). Accurate to
/// ~1e-12, which is far below any significance level the conformance
/// tests use.
double RegularizedGammaQ(double a, double x);

/// Survival function of the chi-square distribution: P(X > statistic)
/// with `dof` degrees of freedom. This is the p-value of a Pearson
/// goodness-of-fit statistic; the distributional conformance suite
/// (ctest -L stats) rejects when it falls below a fixed significance.
double ChiSquarePValue(double statistic, double dof);

}  // namespace sqm

#endif  // SQM_MATH_STATS_H_
