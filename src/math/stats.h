#ifndef SQM_MATH_STATS_H_
#define SQM_MATH_STATS_H_

#include <cstdint>
#include <vector>

namespace sqm {

/// Summary statistics used by the distributional tests (sampler moment
/// checks) and by the benchmark harness when averaging over repeated runs.

/// Arithmetic mean; 0 for an empty input.
double Mean(const std::vector<double>& values);

/// Unbiased sample variance (n-1 denominator); 0 when size < 2.
double Variance(const std::vector<double>& values);

/// Sample standard deviation.
double StdDev(const std::vector<double>& values);

/// Linear-interpolation quantile, q in [0, 1]. Sorts a copy.
double Quantile(std::vector<double> values, double q);

/// Sample skewness (Fisher); 0 when size < 3 or variance is 0.
double Skewness(const std::vector<double>& values);

/// Excess kurtosis; 0 when size < 4 or variance is 0.
double ExcessKurtosis(const std::vector<double>& values);

/// Convenience overloads for integer samples.
double Mean(const std::vector<int64_t>& values);
double Variance(const std::vector<int64_t>& values);

}  // namespace sqm

#endif  // SQM_MATH_STATS_H_
