#include "math/linalg.h"

#include <cmath>

#include "core/logging.h"

namespace sqm {

Matrix MatMul(const Matrix& a, const Matrix& b) {
  SQM_CHECK(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  // i-k-j loop order keeps the inner loop contiguous in both B and C.
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (size_t j = 0; j < b.cols(); ++j) {
        c(i, j) += aik * b(k, j);
      }
    }
  }
  return c;
}

Matrix Gram(const Matrix& x) {
  const size_t n = x.cols();
  Matrix c(n, n);
  // Accumulate rank-1 updates x_i^T x_i; exploit symmetry.
  for (size_t r = 0; r < x.rows(); ++r) {
    for (size_t i = 0; i < n; ++i) {
      const double xi = x(r, i);
      if (xi == 0.0) continue;
      for (size_t j = i; j < n; ++j) {
        c(i, j) += xi * x(r, j);
      }
    }
  }
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < i; ++j) c(i, j) = c(j, i);
  return c;
}

std::vector<double> MatVec(const Matrix& a, const std::vector<double>& v) {
  SQM_CHECK(a.cols() == v.size());
  std::vector<double> y(a.rows(), 0.0);
  for (size_t i = 0; i < a.rows(); ++i) {
    double acc = 0.0;
    for (size_t j = 0; j < a.cols(); ++j) acc += a(i, j) * v[j];
    y[i] = acc;
  }
  return y;
}

double Dot(const std::vector<double>& u, const std::vector<double>& v) {
  SQM_CHECK(u.size() == v.size());
  double acc = 0.0;
  for (size_t i = 0; i < u.size(); ++i) acc += u[i] * v[i];
  return acc;
}

double Norm2(const std::vector<double>& v) { return std::sqrt(Dot(v, v)); }

double Norm1(const std::vector<double>& v) {
  double acc = 0.0;
  for (double x : v) acc += std::fabs(x);
  return acc;
}

double FrobeniusNorm(const Matrix& a) {
  double acc = 0.0;
  for (double x : a.data()) acc += x * x;
  return std::sqrt(acc);
}

void ClipNorm(std::vector<double>& v, double max_norm) {
  SQM_CHECK(max_norm > 0.0);
  const double norm = Norm2(v);
  if (norm > max_norm) {
    const double scale = max_norm / norm;
    for (auto& x : v) x *= scale;
  }
}

double CapturedVariance(const Matrix& x, const Matrix& v) {
  return std::pow(FrobeniusNorm(MatMul(x, v)), 2.0);
}

size_t OrthonormalizeColumns(Matrix& a) {
  const size_t n = a.rows();
  const size_t k = a.cols();
  size_t kept = 0;
  for (size_t j = 0; j < k; ++j) {
    std::vector<double> col = a.Col(j);
    for (size_t p = 0; p < j; ++p) {
      const std::vector<double> prev = a.Col(p);
      const double proj = Dot(col, prev);
      for (size_t i = 0; i < n; ++i) col[i] -= proj * prev[i];
    }
    const double norm = Norm2(col);
    if (norm < 1e-12) {
      std::fill(col.begin(), col.end(), 0.0);
    } else {
      for (auto& x : col) x /= norm;
      ++kept;
    }
    a.SetCol(j, col);
  }
  return kept;
}

}  // namespace sqm
