#ifndef SQM_MATH_MATRIX_H_
#define SQM_MATH_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "core/status.h"

namespace sqm {

/// Dense row-major matrix of doubles.
///
/// The library's data plane: databases X (records as rows, attributes as
/// columns), covariance matrices, principal subspaces and gradients all use
/// this type. Deliberately minimal — just the storage plus the operations
/// the reproduction needs; see linalg.h for algorithms on top of it.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// `rows` x `cols` matrix of zeros.
  Matrix(size_t rows, size_t cols);

  /// Matrix filled from `values` in row-major order; `values.size()` must
  /// equal rows*cols.
  Matrix(size_t rows, size_t cols, std::vector<double> values);

  /// Convenience literal construction: Matrix({{1,2},{3,4}}).
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(size_t i, size_t j) { return data_[i * cols_ + j]; }
  double operator()(size_t i, size_t j) const { return data_[i * cols_ + j]; }

  /// Raw row-major storage.
  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// Copies of a single row / column.
  std::vector<double> Row(size_t i) const;
  std::vector<double> Col(size_t j) const;

  void SetRow(size_t i, const std::vector<double>& values);
  void SetCol(size_t j, const std::vector<double>& values);

  /// Submatrix of the listed columns, in the given order.
  Matrix SelectCols(const std::vector<size_t>& col_indices) const;

  /// Submatrix of the listed rows, in the given order.
  Matrix SelectRows(const std::vector<size_t>& row_indices) const;

  Matrix Transpose() const;

  /// Element-wise operations. Shapes must match (checked).
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);

  friend Matrix operator+(Matrix lhs, const Matrix& rhs) {
    lhs += rhs;
    return lhs;
  }
  friend Matrix operator-(Matrix lhs, const Matrix& rhs) {
    lhs -= rhs;
    return lhs;
  }
  friend Matrix operator*(Matrix lhs, double scalar) {
    lhs *= scalar;
    return lhs;
  }
  friend Matrix operator*(double scalar, Matrix rhs) {
    rhs *= scalar;
    return rhs;
  }

  bool operator==(const Matrix& other) const;

  /// Human-readable rendering (small matrices; debugging aid).
  std::string ToString() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace sqm

#endif  // SQM_MATH_MATRIX_H_
