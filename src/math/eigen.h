#ifndef SQM_MATH_EIGEN_H_
#define SQM_MATH_EIGEN_H_

#include <cstdint>
#include <vector>

#include "core/status.h"
#include "math/matrix.h"

namespace sqm {

/// Full eigendecomposition of a symmetric matrix.
struct EigenDecomposition {
  /// Eigenvalues sorted in descending order.
  std::vector<double> values;
  /// Column j of `vectors` is the unit eigenvector for values[j].
  Matrix vectors;
};

/// Options for the iterative top-k solver.
struct TopKOptions {
  size_t max_iterations = 300;
  /// Convergence threshold on the subspace change between iterations.
  double tolerance = 1e-9;
  /// Seed for the random starting subspace.
  uint64_t seed = 7;
};

/// Computes all eigenpairs of symmetric `a` with the cyclic Jacobi method.
///
/// Robust and accurate; O(n^3) per sweep, so intended for n up to a few
/// hundred (tests, small covariance matrices). Returns InvalidArgument if
/// `a` is not square or not (numerically) symmetric.
Result<EigenDecomposition> JacobiEigenSymmetric(const Matrix& a,
                                                double symmetry_tol = 1e-8);

/// Computes the top-k eigenvectors of symmetric `a` by subspace (orthogonal)
/// iteration — the PCA path for the paper's large covariance matrices, where
/// only the principal rank-k subspace is needed.
///
/// Works on indefinite matrices (noisy covariance estimates can have
/// negative eigenvalues) by iterating on a spectral shift of `a`.
/// Returns an n x k matrix with orthonormal columns.
Result<Matrix> TopKEigenvectors(const Matrix& a, size_t k,
                                const TopKOptions& options = {});

}  // namespace sqm

#endif  // SQM_MATH_EIGEN_H_
