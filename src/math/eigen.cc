#include "math/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "math/linalg.h"
#include "obs/metrics.h"
#include "sampling/rng.h"

namespace sqm {
namespace {

Status CheckSymmetric(const Matrix& a, double tol) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("matrix is not square");
  }
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = i + 1; j < a.cols(); ++j) {
      const double scale =
          std::max(1.0, std::fabs(a(i, j)) + std::fabs(a(j, i)));
      if (std::fabs(a(i, j) - a(j, i)) > tol * scale) {
        return Status::InvalidArgument("matrix is not symmetric");
      }
    }
  }
  return Status::OK();
}

}  // namespace

Result<EigenDecomposition> JacobiEigenSymmetric(const Matrix& a,
                                                double symmetry_tol) {
  SQM_RETURN_NOT_OK(CheckSymmetric(a, symmetry_tol));
  const size_t n = a.rows();
  Matrix d = a;                      // Working copy driven to diagonal form.
  Matrix v = Matrix::Identity(n);    // Accumulated rotations.

  constexpr size_t kMaxSweeps = 100;
  for (size_t sweep = 0; sweep < kMaxSweeps; ++sweep) {
    // Off-diagonal mass; stop when numerically diagonal.
    double off = 0.0;
    for (size_t i = 0; i < n; ++i)
      for (size_t j = i + 1; j < n; ++j) off += d(i, j) * d(i, j);
    // The gauge tracks convergence of the current decomposition; the
    // counter accumulates sweeps across calls.
    SQM_OBS_GAUGE_SET("eigen.jacobi.off_diag_norm", std::sqrt(off));
    if (off < 1e-24) break;
    SQM_OBS_COUNTER_INC("eigen.jacobi.sweeps");

    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = d(p, q);
        if (std::fabs(apq) < 1e-30) continue;
        const double app = d(p, p);
        const double aqq = d(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        // Smaller-magnitude root of t^2 + 2*theta*t - 1 = 0.
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) +
                          std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        // Apply the rotation to rows/columns p and q of D.
        for (size_t k = 0; k < n; ++k) {
          const double dkp = d(k, p);
          const double dkq = d(k, q);
          d(k, p) = c * dkp - s * dkq;
          d(k, q) = s * dkp + c * dkq;
        }
        for (size_t k = 0; k < n; ++k) {
          const double dpk = d(p, k);
          const double dqk = d(q, k);
          d(p, k) = c * dpk - s * dqk;
          d(q, k) = s * dpk + c * dqk;
        }
        // Accumulate the rotation into the eigenvector matrix.
        for (size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> diag(n);
  for (size_t i = 0; i < n; ++i) diag[i] = d(i, i);
  std::sort(order.begin(), order.end(),
            [&diag](size_t i, size_t j) { return diag[i] > diag[j]; });

  EigenDecomposition result;
  result.values.resize(n);
  result.vectors = Matrix(n, n);
  for (size_t j = 0; j < n; ++j) {
    result.values[j] = diag[order[j]];
    for (size_t i = 0; i < n; ++i) result.vectors(i, j) = v(i, order[j]);
  }
  return result;
}

Result<Matrix> TopKEigenvectors(const Matrix& a, size_t k,
                                const TopKOptions& options) {
  SQM_RETURN_NOT_OK(CheckSymmetric(a, 1e-6));
  const size_t n = a.rows();
  if (k == 0 || k > n) {
    return Status::InvalidArgument("k must be in [1, n]");
  }

  // Shift so the matrix is positive definite: eigenvalues of A + s*I are
  // lambda_i + s > 0 because |lambda_i| <= ||A||_F <= s. Subspace iteration
  // on the shifted matrix then converges to the *algebraically* largest
  // eigenvectors of A, which is what PCA needs even when the noisy
  // covariance estimate is indefinite.
  const double shift = FrobeniusNorm(a) + 1.0;
  Matrix shifted = a;
  for (size_t i = 0; i < n; ++i) shifted(i, i) += shift;

  Rng rng(options.seed);
  Matrix q(n, k);
  for (auto& x : q.data()) x = rng.NextDouble() - 0.5;
  OrthonormalizeColumns(q);

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    Matrix z = MatMul(shifted, q);
    OrthonormalizeColumns(z);
    // Convergence: subspace distance via ||Q_new - Q_old * (Q_old^T Q_new)||.
    Matrix overlap = MatMul(q.Transpose(), z);
    Matrix residual = z - MatMul(q, overlap);
    q = std::move(z);
    if (FrobeniusNorm(residual) < options.tolerance) break;
  }
  return q;
}

}  // namespace sqm
