#include "math/matrix.h"

#include <sstream>

#include "core/logging.h"

namespace sqm {

Matrix::Matrix(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(size_t rows, size_t cols, std::vector<double> values)
    : rows_(rows), cols_(cols), data_(std::move(values)) {
  SQM_CHECK(data_.size() == rows * cols);
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    SQM_CHECK(row.size() == cols_);
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

std::vector<double> Matrix::Row(size_t i) const {
  SQM_CHECK(i < rows_);
  return std::vector<double>(data_.begin() + i * cols_,
                             data_.begin() + (i + 1) * cols_);
}

std::vector<double> Matrix::Col(size_t j) const {
  SQM_CHECK(j < cols_);
  std::vector<double> out(rows_);
  for (size_t i = 0; i < rows_; ++i) out[i] = (*this)(i, j);
  return out;
}

void Matrix::SetRow(size_t i, const std::vector<double>& values) {
  SQM_CHECK(i < rows_ && values.size() == cols_);
  std::copy(values.begin(), values.end(), data_.begin() + i * cols_);
}

void Matrix::SetCol(size_t j, const std::vector<double>& values) {
  SQM_CHECK(j < cols_ && values.size() == rows_);
  for (size_t i = 0; i < rows_; ++i) (*this)(i, j) = values[i];
}

Matrix Matrix::SelectCols(const std::vector<size_t>& col_indices) const {
  Matrix out(rows_, col_indices.size());
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < col_indices.size(); ++k) {
      SQM_CHECK(col_indices[k] < cols_);
      out(i, k) = (*this)(i, col_indices[k]);
    }
  }
  return out;
}

Matrix Matrix::SelectRows(const std::vector<size_t>& row_indices) const {
  Matrix out(row_indices.size(), cols_);
  for (size_t k = 0; k < row_indices.size(); ++k) {
    SQM_CHECK(row_indices[k] < rows_);
    const size_t src = row_indices[k] * cols_;
    std::copy(data_.begin() + src, data_.begin() + src + cols_,
              out.data_.begin() + k * cols_);
  }
  return out;
}

Matrix Matrix::Transpose() const {
  Matrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i)
    for (size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  return out;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  SQM_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t k = 0; k < data_.size(); ++k) data_[k] += other.data_[k];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  SQM_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t k = 0; k < data_.size(); ++k) data_[k] -= other.data_[k];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (auto& x : data_) x *= scalar;
  return *this;
}

bool Matrix::operator==(const Matrix& other) const {
  return rows_ == other.rows_ && cols_ == other.cols_ &&
         data_ == other.data_;
}

std::string Matrix::ToString() const {
  std::ostringstream os;
  os << rows_ << "x" << cols_ << " [";
  for (size_t i = 0; i < rows_; ++i) {
    os << (i == 0 ? "[" : " [");
    for (size_t j = 0; j < cols_; ++j) {
      if (j > 0) os << ", ";
      os << (*this)(i, j);
    }
    os << "]" << (i + 1 < rows_ ? "\n" : "");
  }
  os << "]";
  return os.str();
}

}  // namespace sqm
