#ifndef SQM_MATH_LINALG_H_
#define SQM_MATH_LINALG_H_

#include <vector>

#include "math/matrix.h"

namespace sqm {

/// Dense linear-algebra kernels on Matrix. These back both the plaintext
/// baselines and the reference values the MPC layer is checked against.

/// C = A * B. Dies if inner dimensions mismatch.
Matrix MatMul(const Matrix& a, const Matrix& b);

/// Gram matrix X^T X — the covariance polynomial f(x) = x^T x summed over
/// records, i.e. the PCA target function of Section V-A.
Matrix Gram(const Matrix& x);

/// y = A * v (v as column vector).
std::vector<double> MatVec(const Matrix& a, const std::vector<double>& v);

/// Inner product <u, v>.
double Dot(const std::vector<double>& u, const std::vector<double>& v);

/// L2 norm of v.
double Norm2(const std::vector<double>& v);

/// L1 norm of v.
double Norm1(const std::vector<double>& v);

/// Frobenius norm of A.
double FrobeniusNorm(const Matrix& a);

/// Scales v in place so that ||v||_2 <= max_norm (no-op if already within).
/// This is the gradient/weight clipping primitive of DPSGD and the LR loop.
void ClipNorm(std::vector<double>& v, double max_norm);

/// ||X V||_F^2 — the captured-variance utility metric the paper reports for
/// PCA (Figure 2).
double CapturedVariance(const Matrix& x, const Matrix& v);

/// Orthonormalizes the columns of `a` in place (modified Gram-Schmidt).
/// Returns the number of linearly independent columns kept; dependent
/// columns are replaced with zeros.
size_t OrthonormalizeColumns(Matrix& a);

}  // namespace sqm

#endif  // SQM_MATH_LINALG_H_
