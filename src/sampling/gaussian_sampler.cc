#include "sampling/gaussian_sampler.h"

#include <cmath>

#include "core/logging.h"

namespace sqm {

GaussianSampler::GaussianSampler(double sigma) : sigma_(sigma) {
  SQM_CHECK(sigma >= 0.0);
}

double GaussianSampler::Sample(Rng& rng) {
  if (has_spare_) {
    has_spare_ = false;
    return spare_ * sigma_;
  }
  // Marsaglia polar method.
  double u, v, s;
  do {
    u = 2.0 * rng.NextDouble() - 1.0;
    v = 2.0 * rng.NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  has_spare_ = true;
  return u * factor * sigma_;
}

std::vector<double> GaussianSampler::SampleVector(Rng& rng, size_t count) {
  std::vector<double> out(count);
  for (auto& x : out) x = Sample(rng);
  return out;
}

}  // namespace sqm
