#ifndef SQM_SAMPLING_GAUSSIAN_SAMPLER_H_
#define SQM_SAMPLING_GAUSSIAN_SAMPLER_H_

#include <cstddef>
#include <vector>

#include "sampling/rng.h"

namespace sqm {

/// Sampler for the continuous Gaussian N(0, sigma^2).
///
/// Used only by the *baselines* (the local-DP VFL baseline of Algorithm 4,
/// central DPSGD, Analyze-Gauss PCA). SQM itself never samples continuous
/// noise — that is the point of the paper: continuous mechanisms realized in
/// finite precision can violate DP, so SQM injects integer Skellam noise.
class GaussianSampler {
 public:
  /// Creates a sampler with standard deviation `sigma` >= 0.
  explicit GaussianSampler(double sigma);

  /// Draws one variate (Marsaglia polar method; both values of each pair are
  /// used).
  double Sample(Rng& rng);

  /// Draws `count` i.i.d. variates.
  std::vector<double> SampleVector(Rng& rng, size_t count);

  double sigma() const { return sigma_; }

 private:
  double sigma_;
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace sqm

#endif  // SQM_SAMPLING_GAUSSIAN_SAMPLER_H_
