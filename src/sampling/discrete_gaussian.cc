#include "sampling/discrete_gaussian.h"

#include <cmath>

#include "core/logging.h"
#include "obs/metrics.h"

namespace sqm {
namespace {

/// Bernoulli(exp(-gamma)) for gamma in [0, 1]: sample A_k ~
/// Bernoulli(gamma / k) until the first failure at k = K; accept iff K is
/// odd. (Taylor-series rejection; exact.)
bool BernoulliExpFraction(double gamma, Rng& rng) {
  uint64_t k = 1;
  for (;;) {
    if (!rng.NextBernoulli(gamma / static_cast<double>(k))) {
      return k % 2 == 1;
    }
    ++k;
  }
}

}  // namespace

bool DiscreteGaussianSampler::BernoulliExp(double gamma, Rng& rng) {
  SQM_CHECK(gamma >= 0.0);
  // exp(-gamma) = exp(-1)^floor(gamma) * exp(-frac): AND of independent
  // events.
  while (gamma > 1.0) {
    if (!BernoulliExpFraction(1.0, rng)) return false;
    gamma -= 1.0;
  }
  return BernoulliExpFraction(gamma, rng);
}

int64_t DiscreteGaussianSampler::SampleDiscreteLaplace(uint64_t t,
                                                       Rng& rng) {
  SQM_CHECK(t >= 1);
  for (;;) {
    // Magnitude X = U + t*V with U uniform in [0, t) accepted w.p.
    // exp(-U/t), and V geometric with success prob 1 - e^{-1}.
    const uint64_t u = rng.NextBounded(t);
    if (!BernoulliExp(static_cast<double>(u) / static_cast<double>(t),
                      rng)) {
      continue;
    }
    uint64_t v = 0;
    while (BernoulliExp(1.0, rng)) ++v;
    const int64_t magnitude =
        static_cast<int64_t>(u) + static_cast<int64_t>(t * v);
    const bool negative = rng.NextBernoulli(0.5);
    if (negative && magnitude == 0) continue;  // Avoid double-counting 0.
    return negative ? -magnitude : magnitude;
  }
}

DiscreteGaussianSampler::DiscreteGaussianSampler(double sigma)
    : sigma_(sigma) {
  SQM_CHECK(sigma > 0.0);
  t_ = static_cast<uint64_t>(std::floor(sigma)) + 1;
}

int64_t DiscreteGaussianSampler::Sample(Rng& rng) const {
  SQM_OBS_COUNTER_INC("sampler.dgauss.draws");
  const double sigma_sq = sigma_ * sigma_;
  for (;;) {
    const int64_t y = SampleDiscreteLaplace(t_, rng);
    const double shift =
        std::fabs(static_cast<double>(y)) -
        sigma_sq / static_cast<double>(t_);
    const double gamma = shift * shift / (2.0 * sigma_sq);
    if (BernoulliExp(gamma, rng)) return y;
    SQM_OBS_COUNTER_INC("sampler.dgauss.rejections");
  }
}

std::vector<int64_t> DiscreteGaussianSampler::SampleVector(
    Rng& rng, size_t count) const {
  std::vector<int64_t> out(count);
  for (auto& v : out) v = Sample(rng);
  return out;
}

}  // namespace sqm
