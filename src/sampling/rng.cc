#include "sampling/rng.h"

#include "core/logging.h"

namespace sqm {
namespace {

// splitmix64: used only to expand seeds into full engine state.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
  // All-zero state is a fixed point of xoshiro; splitmix cannot produce four
  // zero outputs from any seed, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  SQM_CHECK(bound > 0);
  // Lemire-style rejection: accept only draws in the largest multiple of
  // `bound` to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

void Rng::SaveState(uint64_t out[4]) const {
  for (int i = 0; i < 4; ++i) out[i] = state_[i];
}

Rng Rng::FromState(const uint64_t state[4]) {
  Rng rng(0);
  for (int i = 0; i < 4; ++i) rng.state_[i] = state[i];
  if ((rng.state_[0] | rng.state_[1] | rng.state_[2] | rng.state_[3]) == 0) {
    rng.state_[0] = 1;
  }
  return rng;
}

Rng Rng::Split(uint64_t stream) {
  // Mix the parent's next output with the stream id through splitmix to get
  // an unrelated child seed.
  uint64_t mix = NextUint64() ^ (stream * 0xd1342543de82ef95ULL + 1);
  return Rng(SplitMix64(mix));
}

}  // namespace sqm
