#ifndef SQM_SAMPLING_POISSON_H_
#define SQM_SAMPLING_POISSON_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sampling/rng.h"

namespace sqm {

/// Exact sampler for the Poisson(mu) distribution.
///
/// Two regimes, both exact (no normal approximation — DP noise must follow
/// the stated distribution exactly or the privacy proof does not apply):
///  - mu < 10: Knuth's product-of-uniforms inversion.
///  - mu >= 10: Hörmann's PTRS transformed-rejection sampler.
///
/// SQM draws Skellam noise as the difference of two Poisson draws, so the
/// per-client noise cost is two calls per output dimension.
class PoissonSampler {
 public:
  /// Creates a sampler with fixed rate `mu` >= 0.
  explicit PoissonSampler(double mu);

  /// Draws one variate using `rng`.
  int64_t Sample(Rng& rng) const;

  /// Draws `count` variates.
  std::vector<int64_t> SampleVector(Rng& rng, size_t count) const;

  double mu() const { return mu_; }

  /// Rate at which sampling switches from Knuth inversion to PTRS.
  /// Public so conformance tests can pin each path explicitly.
  static constexpr double kPtrsThreshold = 10.0;

 private:
  int64_t SampleKnuth(Rng& rng) const;
  int64_t SamplePtrs(Rng& rng) const;

  double mu_;
  // Precomputed PTRS constants (valid when mu_ >= kPtrsThreshold).
  double b_, a_, inv_alpha_, v_r_, log_mu_;
};

}  // namespace sqm

#endif  // SQM_SAMPLING_POISSON_H_
