#ifndef SQM_SAMPLING_RNG_H_
#define SQM_SAMPLING_RNG_H_

#include <cstdint>

namespace sqm {

/// Deterministic 64-bit random engine (xoshiro256**), seeded via splitmix64.
///
/// This is the single source of randomness in the library: quantization coin
/// flips, Skellam noise shares, Gaussian baselines, synthetic datasets and
/// Shamir sharing all draw from an `Rng`. Seeding each component explicitly
/// keeps every experiment reproducible, which the benchmark harness relies
/// on when printing paper-versus-measured rows.
///
/// Not cryptographically secure; a production deployment would replace the
/// generator behind this same interface with a CSPRNG (the call sites do not
/// change). The paper's analysis only requires the sampled *distributions*
/// to be exact, which they are.
class Rng {
 public:
  /// Constructs an engine whose entire state is derived from `seed`.
  explicit Rng(uint64_t seed);

  /// Returns the next raw 64-bit output.
  uint64_t NextUint64();

  /// Returns an unbiased draw from {0, ..., bound - 1}. `bound` must be > 0.
  /// Uses rejection to avoid modulo bias.
  uint64_t NextBounded(uint64_t bound);

  /// Returns a double uniform in [0, 1) with 53 bits of precision.
  double NextDouble();

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool NextBernoulli(double p);

  /// Derives an independent child engine; children with distinct `stream`
  /// values are statistically independent of each other and of the parent.
  Rng Split(uint64_t stream);

  /// Copies the engine's exact position in its stream into `out` (4 words).
  /// Together with FromState this lets a durable checkpoint record the RNG
  /// cursor, so a restarted party regenerates bit-identical shares and
  /// noise from where it left off.
  void SaveState(uint64_t out[4]) const;

  /// Reconstructs an engine at a position previously captured by
  /// SaveState. The words are engine state, not a seed: they are installed
  /// verbatim (modulo the all-zero fixed-point guard).
  static Rng FromState(const uint64_t state[4]);

 private:
  uint64_t state_[4];
};

}  // namespace sqm

#endif  // SQM_SAMPLING_RNG_H_
