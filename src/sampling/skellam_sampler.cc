#include "sampling/skellam_sampler.h"

#include <cmath>

namespace sqm {

SkellamSampler::SkellamSampler(double mu) : poisson_(mu) {}

bool SkellamSampler::IsExact() const {
  return poisson_.mu() <= kExactMuLimit;
}

int64_t SkellamSampler::Sample(Rng& rng) const {
  const double mu = poisson_.mu();
  if (mu <= kExactMuLimit) {
    return poisson_.Sample(rng) - poisson_.Sample(rng);
  }
  // Large-mu fallback: rounded Gaussian of matching variance (see header).
  // Inline Box-Muller-style polar draw to keep the sampler stateless.
  double u, v, s;
  do {
    u = 2.0 * rng.NextDouble() - 1.0;
    v = 2.0 * rng.NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double gaussian = u * std::sqrt(-2.0 * std::log(s) / s);
  return static_cast<int64_t>(std::llround(gaussian * std::sqrt(2.0 * mu)));
}

std::vector<int64_t> SkellamSampler::SampleVector(Rng& rng,
                                                  size_t count) const {
  std::vector<int64_t> out(count);
  for (auto& v : out) v = Sample(rng);
  return out;
}

}  // namespace sqm
