#ifndef SQM_SAMPLING_SKELLAM_SAMPLER_H_
#define SQM_SAMPLING_SKELLAM_SAMPLER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sampling/poisson.h"
#include "sampling/rng.h"

namespace sqm {

/// Sampler for the symmetric Skellam distribution Sk(mu).
///
/// Z ~ Sk(mu) is defined as U - V with U, V independent Poisson(mu), so
/// E[Z] = 0 and Var[Z] = 2*mu. The Skellam family is closed under
/// convolution: the sum of n independent Sk(mu/n) draws is distributed as
/// Sk(mu). SQM relies on this to let every client contribute an independent
/// local noise share whose aggregate matches the centrally calibrated noise
/// (Algorithm 1, lines 3-5 of the paper).
///
/// Exactness domain: for mu <= 2^46 the two Poisson draws are sampled
/// exactly (all intermediate integers are exactly representable in IEEE
/// doubles, so PTRS is exact). For larger mu — which the LR experiments
/// reach at extreme gamma, where the calibrated mu scales with
/// gamma^6 — the sampler falls back to a rounded Gaussian of matching
/// variance. At such mu the total-variation distance between Sk(mu) and the
/// rounded Gaussian is negligible (O(1/sqrt(mu)) < 1e-6), and the paper's
/// own experiments simulate this regime the same way; a deployment would
/// instead use the communication-efficient scaled Skellam representation.
class SkellamSampler {
 public:
  /// Creates a sampler for Sk(mu), mu >= 0.
  explicit SkellamSampler(double mu);

  /// Largest mu for which sampling is exact.
  static constexpr double kExactMuLimit = 70368744177664.0;  // 2^46

  /// True when this sampler operates in the exact regime.
  bool IsExact() const;

  /// Draws one variate.
  int64_t Sample(Rng& rng) const;

  /// Draws `count` i.i.d. variates.
  std::vector<int64_t> SampleVector(Rng& rng, size_t count) const;

  /// Rate parameter of each underlying Poisson.
  double mu() const { return poisson_.mu(); }

  /// Variance of the distribution (= 2 * mu).
  double Variance() const { return 2.0 * poisson_.mu(); }

 private:
  PoissonSampler poisson_;
};

}  // namespace sqm

#endif  // SQM_SAMPLING_SKELLAM_SAMPLER_H_
