#include "sampling/poisson.h"

#include <cmath>

#include "core/logging.h"
#include "obs/metrics.h"

namespace sqm {

PoissonSampler::PoissonSampler(double mu) : mu_(mu) {
  SQM_CHECK(mu >= 0.0);
  if (mu_ >= kPtrsThreshold) {
    b_ = 0.931 + 2.53 * std::sqrt(mu_);
    a_ = -0.059 + 0.02483 * b_;
    inv_alpha_ = 1.1239 + 1.1328 / (b_ - 3.4);
    v_r_ = 0.9277 - 3.6224 / (b_ - 2.0);
    log_mu_ = std::log(mu_);
  } else {
    b_ = a_ = inv_alpha_ = v_r_ = log_mu_ = 0.0;
  }
}

int64_t PoissonSampler::Sample(Rng& rng) const {
  if (mu_ == 0.0) return 0;
  return mu_ < kPtrsThreshold ? SampleKnuth(rng) : SamplePtrs(rng);
}

std::vector<int64_t> PoissonSampler::SampleVector(Rng& rng,
                                                  size_t count) const {
  std::vector<int64_t> out(count);
  for (auto& v : out) v = Sample(rng);
  return out;
}

int64_t PoissonSampler::SampleKnuth(Rng& rng) const {
  SQM_OBS_COUNTER_INC("sampler.poisson.knuth_draws");
  // Multiply uniforms until the product drops below e^{-mu}.
  const double limit = std::exp(-mu_);
  int64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= rng.NextDouble();
  } while (p > limit);
  return k - 1;
}

int64_t PoissonSampler::SamplePtrs(Rng& rng) const {
  SQM_OBS_COUNTER_INC("sampler.poisson.ptrs_draws");
  // Hörmann (1993), "The transformed rejection method for generating Poisson
  // random variables", algorithm PTRS. Exact for mu >= 10.
  for (;;) {
    const double u = rng.NextDouble() - 0.5;
    const double v = rng.NextDouble();
    const double us = 0.5 - std::fabs(u);
    const double kf = std::floor((2.0 * a_ / us + b_) * u + mu_ + 0.43);
    if (us >= 0.07 && v <= v_r_) return static_cast<int64_t>(kf);
    if (kf < 0.0 || (us < 0.013 && v > us)) {
      SQM_OBS_COUNTER_INC("sampler.poisson.ptrs_rejections");
      continue;
    }
    const double k = kf;
    const double lhs =
        std::log(v * inv_alpha_ / (a_ / (us * us) + b_));
    const double rhs = k * log_mu_ - mu_ - std::lgamma(k + 1.0);
    if (lhs <= rhs) return static_cast<int64_t>(kf);
    SQM_OBS_COUNTER_INC("sampler.poisson.ptrs_rejections");
  }
}

}  // namespace sqm
