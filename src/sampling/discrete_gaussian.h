#ifndef SQM_SAMPLING_DISCRETE_GAUSSIAN_H_
#define SQM_SAMPLING_DISCRETE_GAUSSIAN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sampling/rng.h"

namespace sqm {

/// Exact sampler for the discrete Gaussian N_Z(0, sigma^2),
///   P(X = x) ∝ exp(-x^2 / (2 sigma^2)),  x in Z,
/// after Canonne, Kamath & Steinke, "The Discrete Gaussian for
/// Differential Privacy" (the paper's reference [51]).
///
/// Included as the natural comparison point for the Skellam noise: the
/// discrete Gaussian has marginally tighter RDP at matched variance, but
/// it is NOT closed under convolution — the sum of n independent discrete
/// Gaussians is not a discrete Gaussian — so in the distributed setting
/// each client cannot simply contribute a share, which is exactly why the
/// paper (and this library) injects Skellam noise instead. The
/// `ablation_noise_distribution` bench quantifies both effects.
///
/// The sampler is exact: it uses only uniform draws and Bernoulli(e^-g)
/// events realized by the CKS rejection scheme — no floating-point
/// transcendentals on the sample path that could bias the distribution.
class DiscreteGaussianSampler {
 public:
  /// Creates a sampler with parameter sigma > 0 (variance ~ sigma^2; the
  /// exact variance is sigma^2 up to a negligible theta-function factor
  /// for sigma >= 1).
  explicit DiscreteGaussianSampler(double sigma);

  /// Draws one variate.
  int64_t Sample(Rng& rng) const;

  /// Draws `count` i.i.d. variates.
  std::vector<int64_t> SampleVector(Rng& rng, size_t count) const;

  double sigma() const { return sigma_; }

  /// Bernoulli(exp(-gamma)) for gamma >= 0, exact (CKS Algorithm 1).
  /// Exposed for tests.
  static bool BernoulliExp(double gamma, Rng& rng);

  /// Discrete Laplace with integer scale t >= 1: P(x) ∝ exp(-|x|/t)
  /// (CKS Algorithm 2). Exposed for tests.
  static int64_t SampleDiscreteLaplace(uint64_t t, Rng& rng);

 private:
  double sigma_;
  uint64_t t_;  // floor(sigma) + 1, the Laplace proposal scale.
};

}  // namespace sqm

#endif  // SQM_SAMPLING_DISCRETE_GAUSSIAN_H_
