#include "mpc/secagg.h"

#include "core/logging.h"
#include "sampling/rng.h"

namespace sqm {

SecureAggregation::SecureAggregation(size_t num_clients, uint64_t seed,
                                     Transport* network)
    : num_clients_(num_clients), seed_(seed), network_(network) {
  SQM_CHECK(num_clients >= 2);
}

std::vector<Field::Element> SecureAggregation::PairMask(
    size_t i, size_t j, size_t length) const {
  SQM_CHECK(i < j);
  // Both endpoints derive the identical stream from the shared pair seed
  // (in a deployment: a Diffie-Hellman agreed key; here: the common seed).
  Rng rng(seed_ ^ (0x9e3779b97f4a7c15ULL * (i * num_clients_ + j + 1)));
  std::vector<Field::Element> mask(length);
  for (auto& m : mask) m = rng.NextBounded(Field::kModulus);
  return mask;
}

Result<std::vector<Field::Element>> SecureAggregation::MaskedUpload(
    size_t client, const std::vector<int64_t>& values) {
  if (client >= num_clients_) {
    return Status::InvalidArgument("unknown client index");
  }
  std::vector<Field::Element> upload = Field::EncodeVector(values);
  for (size_t other = 0; other < num_clients_; ++other) {
    if (other == client) continue;
    const size_t lo = std::min(client, other);
    const size_t hi = std::max(client, other);
    const std::vector<Field::Element> mask = PairMask(lo, hi,
                                                      values.size());
    for (size_t t = 0; t < values.size(); ++t) {
      // The lower-indexed endpoint adds, the higher one subtracts.
      upload[t] = client == lo ? Field::Add(upload[t], mask[t])
                               : Field::Sub(upload[t], mask[t]);
    }
  }
  if (network_ != nullptr) {
    // Model the upload to the server as party `client` -> party 0.
    PhaseScope phase(network_, "secagg_upload");
    network_->Send(client, 0, upload);
  }
  return upload;
}

Result<std::vector<int64_t>> SecureAggregation::Aggregate(
    const std::vector<std::vector<Field::Element>>& uploads) const {
  if (uploads.size() != num_clients_) {
    return Status::InvalidArgument(
        "need exactly one upload per client (no-dropout protocol)");
  }
  const size_t length = uploads[0].size();
  std::vector<Field::Element> total(length, 0);
  for (const auto& upload : uploads) {
    if (upload.size() != length) {
      return Status::InvalidArgument("ragged uploads");
    }
    for (size_t t = 0; t < length; ++t) {
      total[t] = Field::Add(total[t], upload[t]);
    }
  }
  return Field::DecodeVector(total);
}

}  // namespace sqm
