#include "mpc/secagg.h"

#include "core/logging.h"
#include "obs/trace.h"
#include "sampling/rng.h"

namespace sqm {

SecureAggregation::SecureAggregation(size_t num_clients, uint64_t seed,
                                     Transport* network)
    : num_clients_(num_clients), seed_(seed), network_(network) {
  SQM_CHECK(num_clients >= 2);
}

std::vector<Field::Element> SecureAggregation::PairMask(
    size_t i, size_t j, size_t length) const {
  SQM_CHECK(i < j);
  // Both endpoints derive the identical stream from the shared pair seed
  // (in a deployment: a Diffie-Hellman agreed key; here: the common seed).
  Rng rng(seed_ ^ (0x9e3779b97f4a7c15ULL * (i * num_clients_ + j + 1)));
  std::vector<Field::Element> mask(length);
  for (auto& m : mask) m = rng.NextBounded(Field::kModulus);
  return mask;
}

std::vector<Field::Element> SecureAggregation::MaskVector(
    size_t client, const std::vector<int64_t>& values) const {
  std::vector<Field::Element> upload = Field::EncodeVector(values);
  for (size_t other = 0; other < num_clients_; ++other) {
    if (other == client) continue;
    const size_t lo = std::min(client, other);
    const size_t hi = std::max(client, other);
    const std::vector<Field::Element> mask = PairMask(lo, hi,
                                                      values.size());
    for (size_t t = 0; t < values.size(); ++t) {
      // The lower-indexed endpoint adds, the higher one subtracts.
      upload[t] = client == lo ? Field::Add(upload[t], mask[t])
                               : Field::Sub(upload[t], mask[t]);
    }
  }
  return upload;
}

Result<std::vector<Field::Element>> SecureAggregation::MaskedUpload(
    size_t client, const std::vector<int64_t>& values) {
  if (client >= num_clients_) {
    return Status::InvalidArgument("unknown client index");
  }
  obs::Span span("secagg.upload", "mpc", static_cast<int32_t>(client));
  span.AddArg("client", static_cast<int64_t>(client));
  span.AddArg("elements", static_cast<int64_t>(values.size()));
  std::vector<Field::Element> upload = MaskVector(client, values);
  if (network_ != nullptr) {
    // Model the upload to the server as party `client` -> party 0.
    PhaseScope phase(network_, "secagg_upload");
    network_->Send(client, 0, upload);
  }
  return upload;
}

Field::Element SecureAggregation::UploadDigest(
    size_t client, const std::vector<Field::Element>& masked) {
  // Horner evaluation of the upload at a fixed public point, seeded with
  // the client index so an upload replayed onto another client's slot also
  // fails. The point is public: this is an *integrity* tag against wire
  // corruption, not a MAC against a byzantine sender.
  constexpr Field::Element kDigestPoint = 0x5DEECE66DULL;
  Field::Element acc = Field::Reduce(static_cast<uint64_t>(client) + 1);
  for (Field::Element v : masked) {
    acc = Field::Add(Field::Mul(acc, kDigestPoint), v);
  }
  return acc;
}

Status SecureAggregation::UploadOverTransport(
    size_t client, const std::vector<int64_t>& values) {
  if (client >= num_clients_) {
    return Status::InvalidArgument("unknown client index");
  }
  if (network_ == nullptr) {
    return Status::FailedPrecondition(
        "UploadOverTransport requires an attached transport");
  }
  obs::Span span("secagg.upload", "mpc", static_cast<int32_t>(client));
  span.AddArg("client", static_cast<int64_t>(client));
  span.AddArg("elements", static_cast<int64_t>(values.size()));
  std::vector<Field::Element> payload = MaskVector(client, values);
  payload.push_back(UploadDigest(client, payload));
  PhaseScope phase(network_, "secagg_upload");
  network_->Send(client, 0, std::move(payload));
  return Status::OK();
}

Result<std::vector<std::vector<Field::Element>>>
SecureAggregation::CollectUploads(size_t vector_length) {
  if (network_ == nullptr) {
    return Status::FailedPrecondition(
        "CollectUploads requires an attached transport");
  }
  std::vector<std::vector<Field::Element>> uploads(num_clients_);
  for (size_t j = 0; j < num_clients_; ++j) {
    SQM_ASSIGN_OR_RETURN(std::vector<Field::Element> payload,
                         network_->Receive(j, 0));
    if (payload.size() != vector_length + 1) {
      return Status::IntegrityViolation(
          "client " + std::to_string(j) + "'s upload has " +
          std::to_string(payload.size()) + " elements, expected " +
          std::to_string(vector_length + 1) +
          " (vector + digest); truncated or replayed message");
    }
    const Field::Element received_tag = payload.back();
    payload.pop_back();
    const Field::Element expected_tag = UploadDigest(j, payload);
    if (received_tag != expected_tag) {
      return Status::IntegrityViolation(
          "client " + std::to_string(j) +
          "'s upload failed its integrity digest: the masked vector was "
          "corrupted in transit");
    }
    uploads[j] = std::move(payload);
  }
  return uploads;
}

Result<std::vector<int64_t>> SecureAggregation::Aggregate(
    const std::vector<std::vector<Field::Element>>& uploads) const {
  if (uploads.size() != num_clients_) {
    return Status::InvalidArgument(
        "need exactly one upload per client (use AggregateWithDropouts for "
        "missing uploads)");
  }
  const size_t length = uploads[0].size();
  std::vector<Field::Element> total(length, 0);
  for (const auto& upload : uploads) {
    if (upload.size() != length) {
      return Status::InvalidArgument("ragged uploads");
    }
    for (size_t t = 0; t < length; ++t) {
      total[t] = Field::Add(total[t], upload[t]);
    }
  }
  return Field::DecodeVector(total);
}

Result<SecureAggregation::SecAggResult>
SecureAggregation::AggregateWithDropouts(
    const std::vector<std::optional<std::vector<Field::Element>>>& uploads)
    const {
  if (uploads.size() != num_clients_) {
    return Status::InvalidArgument("need one upload slot per client");
  }
  std::vector<size_t> survivors;
  std::vector<size_t> dropped;
  size_t length = 0;
  for (size_t j = 0; j < num_clients_; ++j) {
    if (uploads[j].has_value()) {
      survivors.push_back(j);
      length = uploads[j]->size();
    } else {
      dropped.push_back(j);
    }
  }
  obs::Span span("secagg.unmask", "mpc");
  span.AddArg("survivors", static_cast<int64_t>(survivors.size()));
  span.AddArg("dropped", static_cast<int64_t>(dropped.size()));
  if (survivors.size() < 2) {
    // One survivor's unmasked "sum" is its bare private vector.
    return Status::FailedPrecondition(
        "secure aggregation needs >= 2 survivors, have " +
        std::to_string(survivors.size()) +
        "; a single survivor's input would be revealed in the clear");
  }
  std::vector<Field::Element> total(length, 0);
  for (size_t j : survivors) {
    if (uploads[j]->size() != length) {
      return Status::InvalidArgument("ragged uploads");
    }
    for (size_t t = 0; t < length; ++t) {
      total[t] = Field::Add(total[t], (*uploads[j])[t]);
    }
  }
  // Unmask round: each survivor reveals its pair seed towards every dropped
  // client so the server can strip the residual masks. Masks between two
  // dropped clients never entered an upload and need no correction.
  if (network_ != nullptr && !dropped.empty()) {
    PhaseScope phase(network_, "secagg_unmask");
    for (size_t j : survivors) {
      network_->Send(j, 0,
                     std::vector<Field::Element>(dropped.size(), 0));
    }
    network_->EndRound();
    for (size_t j : survivors) {
      // Drain the modeled unmask messages so the transport stays clean.
      (void)network_->Receive(j, 0);
    }
  }
  for (size_t i : survivors) {
    for (size_t d : dropped) {
      const size_t lo = std::min(i, d);
      const size_t hi = std::max(i, d);
      const std::vector<Field::Element> mask = PairMask(lo, hi, length);
      for (size_t t = 0; t < length; ++t) {
        // Survivor i carried +m (if it is the lower endpoint) or -m; the
        // dropped peer's cancelling term never arrived. Remove i's term.
        total[t] = i == lo ? Field::Sub(total[t], mask[t])
                           : Field::Add(total[t], mask[t]);
      }
    }
  }
  SecAggResult result;
  result.sum = Field::DecodeVector(total);
  result.survivors = std::move(survivors);
  result.num_dropped = dropped.size();
  return result;
}

}  // namespace sqm
