#ifndef SQM_MPC_OPS_H_
#define SQM_MPC_OPS_H_

#include <cstdint>
#include <vector>

#include "core/status.h"
#include "mpc/protocol.h"

namespace sqm {

/// Structured secure operations on top of BgwProtocol — the vectorized
/// evaluation strategies behind the paper's Table I complexities.
///
/// The generic circuit engine (mpc/bgw.h) evaluates the *expanded*
/// polynomial: for LR that is O(m n^2) multiplications, because every
/// monomial w_j x_j x_t becomes its own product gate. The operations here
/// exploit structure instead:
///  - the inner product u_i = <w-hat, x-hat_i> with *public* quantized
///    weights is a local linear combination of shares (no interaction),
///  - the remaining products u_i * x-hat_{i,t} and y-hat_i * x-hat_{i,t}
///    are two batched multiplication rounds of m*d elements,
/// giving the O(m (n-1)) multiplication count of the paper's LR row.
/// Likewise the covariance op batches all m * n(n+1)/2 pair products into
/// one round.
///
/// All operations assume the paper's canonical partitioning: one attribute
/// column per client (client j inputs column j), plus — for LR — a label
/// client owning the label column.
class SecureOps {
 public:
  /// `protocol` must outlive this object.
  explicit SecureOps(BgwProtocol* protocol);

  /// Shares column j from party j. `columns.size()` must equal the number
  /// of parties; `columns[j]` are party j's private values (all columns
  /// must have equal length).
  Result<std::vector<SharedVector>> ShareColumns(
      const std::vector<std::vector<int64_t>>& columns);

  /// Sums per-client contributions plus per-client noise shares and opens
  /// the result: out[t] = sum_j contributions[j][t] + sum_j noise[j][t].
  /// One sharing round per party plus one open round.
  Result<std::vector<int64_t>> NoisySum(
      const std::vector<std::vector<int64_t>>& contributions,
      const std::vector<std::vector<int64_t>>& noise_per_client);

  /// Noisy quantized covariance, upper triangle in row-major (i, j >= i)
  /// order: out[(i,j)] = sum_r X[r,i] X[r,j] + sum_c noise[c][(i,j)].
  /// `columns[j]` is client j's quantized column (m entries); noise shares
  /// have n(n+1)/2 entries per client. One batched multiplication round.
  Result<std::vector<int64_t>> NoisyCovarianceUpper(
      const std::vector<std::vector<int64_t>>& columns,
      const std::vector<std::vector<int64_t>>& noise_per_client);

  /// Inputs for the structured LR gradient release (Eq. 9 quantized as in
  /// Lemma 7: data scaled by gamma, weights pre-scaled by gamma * w/4,
  /// the 1/2 coefficient by gamma^2 / 2, the label coefficient by -gamma).
  struct LogisticGradientInputs {
    /// d feature columns; client j owns column j (each m entries).
    std::vector<std::vector<int64_t>> feature_columns;
    /// Quantized labels, owned by the label client (party index d).
    std::vector<int64_t> labels;
    /// Public quantized weights w-hat[j] ~ gamma * w[j] / 4.
    std::vector<int64_t> weights;
    /// Public quantized coefficient c-hat ~ gamma^2 / 2.
    int64_t half_coefficient = 0;
    /// Public quantized label coefficient ~ -gamma.
    int64_t label_coefficient = 0;
    /// Per-client Skellam noise shares, d entries each; one vector per
    /// party (d feature clients + 1 label client).
    std::vector<std::vector<int64_t>> noise_per_client;
  };

  /// Computes the noisy quantized gradient sum
  ///   g[t] = sum_i (c-hat x-hat_{i,t} + u_i x-hat_{i,t}
  ///                 + l-hat y-hat_i x-hat_{i,t}) + sum_c Z_c[t],
  ///   u_i = sum_j w-hat[j] x-hat_{i,j}   (local on shares),
  /// in two batched multiplication rounds — O(m d) secure products versus
  /// the circuit path's O(m d^2).
  Result<std::vector<int64_t>> NoisyLogisticGradient(
      const LogisticGradientInputs& inputs);

  /// Inputs for the structured linear-regression gradient (vfl/linear.h's
  /// exactly-polynomial gradient <w, x> x - y x, quantized: weights
  /// pre-scaled by gamma * w, targets by gamma, label coefficient -gamma).
  struct LinearGradientInputs {
    std::vector<std::vector<int64_t>> feature_columns;
    std::vector<int64_t> targets;   ///< Owned by the target client (d).
    std::vector<int64_t> weights;   ///< Public, ~ gamma * w[j].
    int64_t target_coefficient = 0; ///< Public, ~ -gamma.
    std::vector<std::vector<int64_t>> noise_per_client;
  };

  /// g[t] = sum_i (u_i x_{i,t} + t-hat y_i x_{i,t}) + sum_c Z_c[t] with
  /// u_i = sum_j w-hat[j] x_{i,j} local on shares — the ridge-regression
  /// analogue of NoisyLogisticGradient (same O(m d) product count).
  Result<std::vector<int64_t>> NoisyLinearGradient(
      const LinearGradientInputs& inputs);

 private:
  BgwProtocol* protocol_;
};

}  // namespace sqm

#endif  // SQM_MPC_OPS_H_
