#ifndef SQM_MPC_SHAMIR_H_
#define SQM_MPC_SHAMIR_H_

#include <cstdint>
#include <vector>

#include "core/status.h"
#include "mpc/field.h"
#include "sampling/rng.h"

namespace sqm {

/// Shamir (t, n) secret sharing over Z_{2^61-1} — the building block of the
/// BGW protocol (Appendix B of the paper).
///
/// A secret s is embedded as the constant term of a uniformly random degree-t
/// polynomial phi; party j receives the evaluation phi(alpha_j) where
/// alpha_j = j + 1. Any t+1 shares reconstruct s by Lagrange interpolation
/// at zero; any t or fewer shares are jointly uniform and reveal nothing.
class ShamirScheme {
 public:
  /// Creates a scheme for `num_parties` parties with polynomial degree
  /// `threshold` (an adversary must corrupt > threshold parties to learn
  /// anything). BGW multiplication requires threshold < num_parties / 2.
  ShamirScheme(size_t num_parties, size_t threshold);

  /// Validates the (t, n) combination; call before constructing when the
  /// parameters come from user input.
  static Status Validate(size_t num_parties, size_t threshold);

  size_t num_parties() const { return num_parties_; }
  size_t threshold() const { return threshold_; }

  /// Evaluation point assigned to party j (0-based): alpha_j = j + 1.
  Field::Element EvaluationPoint(size_t party) const;

  /// Splits `secret` into one share per party using randomness from `rng`.
  std::vector<Field::Element> Share(Field::Element secret, Rng& rng) const;

  /// Reconstructs the secret from the full share vector (degree-t
  /// interpolation using the first threshold+1 shares).
  Field::Element Reconstruct(
      const std::vector<Field::Element>& shares) const;

  /// Reconstructs from an arbitrary subset of (party index, share) pairs.
  /// Needs at least threshold+1 pairs with distinct parties.
  Result<Field::Element> ReconstructFromSubset(
      const std::vector<std::pair<size_t, Field::Element>>& shares) const;

  /// Reconstructs a value shared with a *degree-2t* polynomial — the result
  /// of parties locally multiplying two degree-t sharings. Needs all
  /// 2t+1 <= n shares. Used by the BGW degree-reduction step.
  Field::Element ReconstructDegree2t(
      const std::vector<Field::Element>& shares) const;

  /// Quorum reconstruction: interpolates a degree-`degree` sharing from the
  /// shares of the listed survivor parties only. `shares` is the full
  /// n-length vector indexed by party; entries of non-survivors are ignored
  /// (typically stale or missing). Needs at least degree+1 distinct valid
  /// survivors, else fails with kFailedPrecondition naming the shortfall.
  /// Any (degree+1)-subset of a consistent sharing yields the same secret —
  /// this is what lets a BGW run release the exact no-crash output from a
  /// 2t+1 quorum after dropouts.
  Result<Field::Element> ReconstructFromSurvivors(
      const std::vector<Field::Element>& shares,
      const std::vector<size_t>& survivors, size_t degree) const;

  /// Lagrange coefficients L_j such that sum_j L_j * phi(alpha_j) = phi(0)
  /// for any polynomial phi of degree < parties.size(), where the points are
  /// alpha_{parties[j]}.
  std::vector<Field::Element> LagrangeAtZero(
      const std::vector<size_t>& parties) const;

  /// Lagrange coefficients L_j for evaluating at an arbitrary point x:
  /// sum_j L_j * phi(alpha_{parties[j]}) = phi(x) for any polynomial of
  /// degree < parties.size(). `x` must differ from every alpha_{parties[j]}.
  std::vector<Field::Element> LagrangeAt(const std::vector<size_t>& parties,
                                         Field::Element x) const;

  /// Conformance check: do the listed parties' share points all lie on ONE
  /// polynomial of degree <= `degree`? Interpolates from the first
  /// degree+1 listed points and verifies every remaining one; a honest
  /// degree-`degree` sharing always passes, while a wrong-degree dealing,
  /// an equivocated broadcast, or any single tampered share among at least
  /// degree+2 points fails with kIntegrityViolation naming the first
  /// mismatching party. With exactly degree+1 points there is no
  /// redundancy: the check vacuously passes (any degree+1 points lie on
  /// some degree-`degree` polynomial), which is the information-theoretic
  /// limit, not an implementation gap. `shares` is the full n-length
  /// vector indexed by party.
  Status CheckConsistentSharing(const std::vector<Field::Element>& shares,
                                const std::vector<size_t>& parties,
                                size_t degree) const;

  /// All-parties overload: checks the full n-point sharing.
  Status CheckConsistentSharing(const std::vector<Field::Element>& shares,
                                size_t degree) const;

 private:
  size_t num_parties_;
  size_t threshold_;
};

}  // namespace sqm

#endif  // SQM_MPC_SHAMIR_H_
