#ifndef SQM_MPC_SHAMIR_H_
#define SQM_MPC_SHAMIR_H_

#include <cstdint>
#include <vector>

#include "core/status.h"
#include "mpc/field.h"
#include "sampling/rng.h"

namespace sqm {

/// Shamir (t, n) secret sharing over Z_{2^61-1} — the building block of the
/// BGW protocol (Appendix B of the paper).
///
/// A secret s is embedded as the constant term of a uniformly random degree-t
/// polynomial phi; party j receives the evaluation phi(alpha_j) where
/// alpha_j = j + 1. Any t+1 shares reconstruct s by Lagrange interpolation
/// at zero; any t or fewer shares are jointly uniform and reveal nothing.
class ShamirScheme {
 public:
  /// Creates a scheme for `num_parties` parties with polynomial degree
  /// `threshold` (an adversary must corrupt > threshold parties to learn
  /// anything). BGW multiplication requires threshold < num_parties / 2.
  ShamirScheme(size_t num_parties, size_t threshold);

  /// Validates the (t, n) combination; call before constructing when the
  /// parameters come from user input.
  static Status Validate(size_t num_parties, size_t threshold);

  size_t num_parties() const { return num_parties_; }
  size_t threshold() const { return threshold_; }

  /// Evaluation point assigned to party j (0-based): alpha_j = j + 1.
  Field::Element EvaluationPoint(size_t party) const;

  /// Splits `secret` into one share per party using randomness from `rng`.
  std::vector<Field::Element> Share(Field::Element secret, Rng& rng) const;

  /// Batched sharing: splits a d-vector of secrets into one d-row per
  /// party, evaluating against the precomputed Vandermonde table instead of
  /// d Horner walks. Draws randomness in exactly the order d scalar Share
  /// calls would (secret-major, coefficient-minor), so a driver issuing
  /// ShareBatch and a replayer issuing d Share calls stay bit-identical and
  /// leave `rng` at the same cursor.
  std::vector<std::vector<Field::Element>> ShareBatch(
      const std::vector<Field::Element>& secrets, Rng& rng) const;

  /// Reconstructs the secret from the full share vector (degree-t
  /// interpolation using the first threshold+1 shares). When
  /// verify_reconstruction is set (wired from the protocol layer's
  /// verify_sharings option), first checks that ALL n shares lie on the
  /// interpolated degree-t polynomial and aborts on a tampered share —
  /// by default the trailing n-t-1 shares are silently ignored.
  Field::Element Reconstruct(
      const std::vector<Field::Element>& shares) const;

  /// Status-returning variant of the full-share consistency check: fails
  /// with kIntegrityViolation if any of the n shares (including the
  /// trailing ones Reconstruct never touches) is off the degree-t
  /// polynomial, otherwise returns the reconstructed secret.
  Result<Field::Element> ReconstructChecked(
      const std::vector<Field::Element>& shares) const;

  /// Batched reconstruction of d secrets from per-party d-rows
  /// (`rows[party][i]`), using the precomputed degree-t Lagrange weights —
  /// one multiply-accumulate sweep per basis party instead of d
  /// interpolations. Bit-identical to d scalar Reconstruct calls.
  std::vector<Field::Element> ReconstructBatch(
      const std::vector<std::vector<Field::Element>>& rows) const;

  /// Quorum variant of ReconstructBatch: selects interpolation parties from
  /// `survivors` exactly as ReconstructFromSurvivors does, then recombines
  /// all d elements with one weight vector. Rows of non-survivors are
  /// ignored and may be empty; a selected row of the wrong length fails
  /// with kIntegrityViolation.
  Result<std::vector<Field::Element>> ReconstructBatchFromSurvivors(
      const std::vector<std::vector<Field::Element>>& rows,
      const std::vector<size_t>& survivors, size_t degree) const;

  /// Debug-mode consistency assert for Reconstruct/ReconstructBatch (see
  /// Reconstruct). Off by default; the protocol layer's set_verify_sharings
  /// forwards here.
  void set_verify_reconstruction(bool verify) {
    verify_reconstruction_ = verify;
  }
  bool verify_reconstruction() const { return verify_reconstruction_; }

  /// Reconstructs from an arbitrary subset of (party index, share) pairs.
  /// Needs at least threshold+1 pairs with distinct parties.
  Result<Field::Element> ReconstructFromSubset(
      const std::vector<std::pair<size_t, Field::Element>>& shares) const;

  /// Reconstructs a value shared with a *degree-2t* polynomial — the result
  /// of parties locally multiplying two degree-t sharings. Needs all
  /// 2t+1 <= n shares. Used by the BGW degree-reduction step.
  Field::Element ReconstructDegree2t(
      const std::vector<Field::Element>& shares) const;

  /// Quorum reconstruction: interpolates a degree-`degree` sharing from the
  /// shares of the listed survivor parties only. `shares` is the full
  /// n-length vector indexed by party; entries of non-survivors are ignored
  /// (typically stale or missing). Needs at least degree+1 distinct valid
  /// survivors, else fails with kFailedPrecondition naming the shortfall.
  /// Any (degree+1)-subset of a consistent sharing yields the same secret —
  /// this is what lets a BGW run release the exact no-crash output from a
  /// 2t+1 quorum after dropouts.
  Result<Field::Element> ReconstructFromSurvivors(
      const std::vector<Field::Element>& shares,
      const std::vector<size_t>& survivors, size_t degree) const;

  /// Lagrange coefficients L_j such that sum_j L_j * phi(alpha_j) = phi(0)
  /// for any polynomial phi of degree < parties.size(), where the points are
  /// alpha_{parties[j]}.
  std::vector<Field::Element> LagrangeAtZero(
      const std::vector<size_t>& parties) const;

  /// Lagrange coefficients L_j for evaluating at an arbitrary point x:
  /// sum_j L_j * phi(alpha_{parties[j]}) = phi(x) for any polynomial of
  /// degree < parties.size(). `x` must differ from every alpha_{parties[j]}.
  std::vector<Field::Element> LagrangeAt(const std::vector<size_t>& parties,
                                         Field::Element x) const;

  /// Conformance check: do the listed parties' share points all lie on ONE
  /// polynomial of degree <= `degree`? Interpolates from the first
  /// degree+1 listed points and verifies every remaining one; a honest
  /// degree-`degree` sharing always passes, while a wrong-degree dealing,
  /// an equivocated broadcast, or any single tampered share among at least
  /// degree+2 points fails with kIntegrityViolation naming the first
  /// mismatching party. With exactly degree+1 points there is no
  /// redundancy: the check vacuously passes (any degree+1 points lie on
  /// some degree-`degree` polynomial), which is the information-theoretic
  /// limit, not an implementation gap. `shares` is the full n-length
  /// vector indexed by party.
  Status CheckConsistentSharing(const std::vector<Field::Element>& shares,
                                const std::vector<size_t>& parties,
                                size_t degree) const;

  /// All-parties overload: checks the full n-point sharing.
  Status CheckConsistentSharing(const std::vector<Field::Element>& shares,
                                size_t degree) const;

 private:
  /// Selects the first degree+1 distinct valid survivor indices — the
  /// shared selection rule of ReconstructFromSurvivors and its batch
  /// variant, so both always interpolate from the same quorum subset.
  Result<std::vector<size_t>> SelectSurvivorBasis(
      const std::vector<size_t>& survivors, size_t degree) const;

  size_t num_parties_;
  size_t threshold_;
  bool verify_reconstruction_ = false;

  /// Precomputed coefficient tables (see docs/PROTOCOL.md "Batched
  /// evaluation"): vandermonde_[j][e] = alpha_j^e for e <= threshold, and
  /// the Lagrange-at-zero weights of the first t+1 (degree-t) and first
  /// 2t+1 (degree-2t) parties. All are pure functions of (n, t), so two
  /// schemes with equal parameters share identical tables.
  std::vector<std::vector<Field::Element>> vandermonde_;
  std::vector<Field::Element> lagrange_t_;
  std::vector<Field::Element> lagrange_2t_;
};

}  // namespace sqm

#endif  // SQM_MPC_SHAMIR_H_
