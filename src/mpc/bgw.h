#ifndef SQM_MPC_BGW_H_
#define SQM_MPC_BGW_H_

#include <cstdint>
#include <vector>

#include "core/status.h"
#include "mpc/circuit.h"
#include "mpc/protocol.h"
#include "mpc/shamir.h"
#include "net/liveness.h"
#include "net/transport.h"

namespace sqm {

/// Traffic/round report for one circuit evaluation.
struct BgwExecutionReport {
  NetworkStats network;
  size_t multiplications = 0;
  size_t mul_rounds = 0;  ///< Communication rounds spent on multiplications.
};

/// Phase-level checkpoint of one circuit evaluation: the wire shares after
/// the last fully completed multiplication level. A Mul that fails (quorum
/// shortfall, timed-out links) leaves the checkpoint at the preceding
/// level; passing the same checkpoint back into EvaluateToShares resumes
/// there — input sharing and all completed levels are skipped, and stale
/// queued sub-shares from the aborted round are drained first.
struct BgwCheckpoint {
  bool valid = false;    ///< Inputs shared; wire_shares meaningful.
  size_t next_level = 0; ///< First multiplication level not yet completed.
  std::vector<std::vector<Field::Element>> wire_shares;  ///< [party][wire].
  size_t mul_rounds_done = 0;
};

/// Gate-level BGW evaluator (the paper's Appendix B, three-phase execution).
///
/// Phase 1: every party Shamir-shares its private inputs. Phase 2: the
/// circuit is evaluated on shares — linear gates locally, multiplication
/// gates via GRR degree reduction, with all multiplications of equal
/// multiplicative depth batched into a single communication round. Phase 3:
/// output wires are opened to all parties.
///
/// SQM uses this engine as a black box: it hands the engine the quantized
/// data and the locally sampled Skellam noise as private inputs, and a
/// circuit that sums f-hat over records plus the noise shares (Algorithm 1
/// line 5 / Algorithm 3 line 9).
///
/// Dropout tolerance: attach a LivenessTracker (set_liveness) and use the
/// EvaluateToShares / OpenOutputs split with a BgwCheckpoint. Dead parties
/// are excluded from every round, multiplications recombine over any 2t+1
/// usable dealers, and a failed level can be retried from the checkpoint.
class BgwEngine {
 public:
  /// `network` must outlive the engine and match the scheme's party count.
  /// Any Transport works: the lock-step simulation for deterministic runs,
  /// a ThreadedTransport for concurrent/faulty execution.
  BgwEngine(ShamirScheme scheme, Transport* network, uint64_t seed);

  /// Evaluates `circuit`. `inputs_per_party[j]` supplies party j's private
  /// inputs as centered signed integers, in input-gate declaration order.
  /// Returns the opened outputs (decoded to signed integers) in
  /// MarkOutput order.
  Result<std::vector<int64_t>> Evaluate(
      const Circuit& circuit,
      const std::vector<std::vector<int64_t>>& inputs_per_party);

  /// Phases 1 + 2 only: shares inputs, evaluates every gate level, and
  /// returns the output-wire shares unopened (so callers can, e.g., add
  /// top-up noise shares before release). With a non-null `checkpoint`,
  /// progress is recorded per completed multiplication level and a
  /// previously valid checkpoint resumes instead of restarting — input
  /// sharing is never repeated. An input-phase failure is fatal (a lost
  /// input has no quorum to reconstruct it) and leaves the checkpoint
  /// invalid.
  Result<SharedVector> EvaluateToShares(
      const Circuit& circuit,
      const std::vector<std::vector<int64_t>>& inputs_per_party,
      BgwCheckpoint* checkpoint = nullptr);

  /// Phase 3: opens output shares to all parties and finalizes
  /// last_report(). Uses the quorum opening path when a tracker is
  /// attached.
  Result<std::vector<int64_t>> OpenOutputs(const SharedVector& out_shares);

  /// Attaches a shared failure detector (forwarded to the protocol layer).
  void set_liveness(LivenessTracker* tracker) {
    protocol_.set_liveness(tracker);
  }

  /// Enables conformance verification (forwarded to the protocol layer):
  /// input sharing, multiplication outputs, and opening all check
  /// degree-consistency and broadcast agreement, turning any single-message
  /// wire tamper into a descriptive kIntegrityViolation. Ignored on code
  /// paths that run with a liveness tracker (the quorum paths have their
  /// own share-selection semantics).
  void set_verify_sharings(bool verify) {
    protocol_.set_verify_sharings(verify);
  }

  BgwProtocol& protocol() { return protocol_; }

  /// Report for the most recent Evaluate call.
  const BgwExecutionReport& last_report() const { return last_report_; }

 private:
  BgwProtocol protocol_;
  Transport* network_;
  BgwExecutionReport last_report_;
  NetworkStats stats_before_;  ///< Captured at fresh EvaluateToShares start.
};

}  // namespace sqm

#endif  // SQM_MPC_BGW_H_
