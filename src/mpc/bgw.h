#ifndef SQM_MPC_BGW_H_
#define SQM_MPC_BGW_H_

#include <cstdint>
#include <vector>

#include "core/status.h"
#include "mpc/circuit.h"
#include "mpc/protocol.h"
#include "mpc/shamir.h"
#include "net/transport.h"

namespace sqm {

/// Traffic/round report for one circuit evaluation.
struct BgwExecutionReport {
  NetworkStats network;
  size_t multiplications = 0;
  size_t mul_rounds = 0;  ///< Communication rounds spent on multiplications.
};

/// Gate-level BGW evaluator (the paper's Appendix B, three-phase execution).
///
/// Phase 1: every party Shamir-shares its private inputs. Phase 2: the
/// circuit is evaluated on shares — linear gates locally, multiplication
/// gates via GRR degree reduction, with all multiplications of equal
/// multiplicative depth batched into a single communication round. Phase 3:
/// output wires are opened to all parties.
///
/// SQM uses this engine as a black box: it hands the engine the quantized
/// data and the locally sampled Skellam noise as private inputs, and a
/// circuit that sums f-hat over records plus the noise shares (Algorithm 1
/// line 5 / Algorithm 3 line 9).
class BgwEngine {
 public:
  /// `network` must outlive the engine and match the scheme's party count.
  /// Any Transport works: the lock-step simulation for deterministic runs,
  /// a ThreadedTransport for concurrent/faulty execution.
  BgwEngine(ShamirScheme scheme, Transport* network, uint64_t seed);

  /// Evaluates `circuit`. `inputs_per_party[j]` supplies party j's private
  /// inputs as centered signed integers, in input-gate declaration order.
  /// Returns the opened outputs (decoded to signed integers) in
  /// MarkOutput order.
  Result<std::vector<int64_t>> Evaluate(
      const Circuit& circuit,
      const std::vector<std::vector<int64_t>>& inputs_per_party);

  /// Report for the most recent Evaluate call.
  const BgwExecutionReport& last_report() const { return last_report_; }

 private:
  BgwProtocol protocol_;
  Transport* network_;
  BgwExecutionReport last_report_;
};

}  // namespace sqm

#endif  // SQM_MPC_BGW_H_
