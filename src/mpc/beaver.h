#ifndef SQM_MPC_BEAVER_H_
#define SQM_MPC_BEAVER_H_

#include <cstddef>
#include <vector>

#include "core/status.h"
#include "mpc/protocol.h"
#include "sampling/rng.h"

namespace sqm {

/// Beaver-triple multiplication: the preprocessing-model alternative to
/// BGW's GRR degree reduction.
///
/// Offline, a dealer (or an offline protocol) distributes shares of random
/// triples (a, b, c) with c = a * b. Online, multiplying [x] * [y] costs
/// one opening of (x - a, y - b) — half the per-party traffic of GRR
/// re-sharing and no fresh polynomial sampling on the critical path, at
/// the price of consuming one triple per product.
///
/// SQM treats the MPC as a black box (Section II), so this backend slots
/// under the same SharedVector algebra; `bench/ablation_beaver_vs_grr`
/// compares the online costs. The dealer here is the standard semi-honest
/// preprocessing abstraction: in a deployment it would be replaced by an
/// offline triple-generation protocol, which does not change the online
/// phase measured here.
class BeaverTripleDealer {
 public:
  /// Shares of one multiplication triple: for each party j,
  /// a_shares[j], b_shares[j], c_shares[j] are degree-t Shamir shares of
  /// (a, b, a*b).
  struct TripleShares {
    std::vector<Field::Element> a_shares;
    std::vector<Field::Element> b_shares;
    std::vector<Field::Element> c_shares;
  };

  BeaverTripleDealer(ShamirScheme scheme, uint64_t seed);

  /// Deals one random triple.
  TripleShares Deal();

  /// Deals `count` triples (one per element of a batched multiplication).
  std::vector<TripleShares> DealBatch(size_t count);

 private:
  ShamirScheme scheme_;
  Rng rng_;
};

/// Offline-phase triple store: pre-deals a fixed budget of triples at
/// construction and serves the online path from the queue, so online Mul
/// timing and traffic contain zero dealing work. The triple stream is a
/// pure function of (scheme, seed) and byte-identical to what a
/// BeaverTripleDealer with the same seed would deal — every party (or the
/// driver replaying all parties) derives the same pool independently,
/// which is the standard semi-honest preprocessing abstraction.
///
/// Exhaustion is a refusal, never a silent online re-deal: Take past the
/// dealt budget fails with kFailedPrecondition. Refill is an explicit
/// offline act, and on the quorum/dropout path it enforces the same
/// 2t+1 dealer rule as MulQuorum: fewer than 2t+1 surviving parties can
/// no longer deal degree-t sharings that recombine to a correct product.
class BeaverTriplePool {
 public:
  /// One Take's worth of triples in SharedVector layout: element i of
  /// (a, b, c) is the i-th triple, c = a * b.
  struct TripleBatch {
    SharedVector a;
    SharedVector b;
    SharedVector c;
  };

  /// Pre-deals `capacity` triples from the deterministic `seed` stream
  /// (the offline phase; not part of any online timing).
  BeaverTriplePool(ShamirScheme scheme, uint64_t seed, size_t capacity);

  size_t capacity() const { return dealt_; }
  size_t taken() const { return cursor_; }
  size_t available() const { return dealt_ - cursor_; }

  /// Takes the next `count` triples in stream order. Fails with
  /// kFailedPrecondition when fewer than `count` remain — the pool is
  /// left untouched and no fresh triples are dealt.
  Result<TripleBatch> Take(size_t count);

  /// Offline refill: deals `count` further triples from the same stream.
  Status Refill(size_t count);

  /// Quorum-path refill: refuses with kFailedPrecondition unless at least
  /// 2t+1 distinct valid parties survive in `survivors` (the MulQuorum
  /// dealer rule); otherwise deals exactly as Refill(count).
  Status Refill(size_t count, const std::vector<size_t>& survivors);

 private:
  void DealInto(size_t count);

  ShamirScheme scheme_;
  Rng rng_;
  size_t dealt_ = 0;
  size_t cursor_ = 0;
  // Structure-of-arrays: rows_[party][triple], so a Take slices k
  // contiguous columns into SharedVector rows.
  std::vector<std::vector<Field::Element>> a_rows_;
  std::vector<std::vector<Field::Element>> b_rows_;
  std::vector<std::vector<Field::Element>> c_rows_;
};

/// Online Beaver multiplication over an existing BgwProtocol's network and
/// sharing scheme.
class BeaverMultiplier {
 public:
  /// `protocol` supplies the parties, scheme, and network; `dealer` the
  /// preprocessed triples. Both must outlive this object. Triples are
  /// dealt inline during Mul — online timings therefore include dealing
  /// cost; prefer the pool constructor for a true offline/online split.
  BeaverMultiplier(BgwProtocol* protocol, BeaverTripleDealer* dealer);

  /// Pool-backed variant: Mul consumes pre-dealt triples and fails with
  /// the pool's kFailedPrecondition when the offline budget runs out.
  BeaverMultiplier(BgwProtocol* protocol, BeaverTriplePool* pool);

  /// Element-wise product of two shared vectors using one triple per
  /// element: one communication round (the joint opening of d = x - a and
  /// e = y - b), then the local combination [c] + d[b] + e[a] + d*e.
  Result<SharedVector> Mul(const SharedVector& x, const SharedVector& y);

  /// Triples consumed so far.
  size_t triples_used() const { return triples_used_; }

 private:
  BgwProtocol* protocol_;
  BeaverTripleDealer* dealer_ = nullptr;
  BeaverTriplePool* pool_ = nullptr;
  size_t triples_used_ = 0;
};

}  // namespace sqm

#endif  // SQM_MPC_BEAVER_H_
