#ifndef SQM_MPC_BEAVER_H_
#define SQM_MPC_BEAVER_H_

#include <cstddef>
#include <vector>

#include "core/status.h"
#include "mpc/protocol.h"
#include "sampling/rng.h"

namespace sqm {

/// Beaver-triple multiplication: the preprocessing-model alternative to
/// BGW's GRR degree reduction.
///
/// Offline, a dealer (or an offline protocol) distributes shares of random
/// triples (a, b, c) with c = a * b. Online, multiplying [x] * [y] costs
/// one opening of (x - a, y - b) — half the per-party traffic of GRR
/// re-sharing and no fresh polynomial sampling on the critical path, at
/// the price of consuming one triple per product.
///
/// SQM treats the MPC as a black box (Section II), so this backend slots
/// under the same SharedVector algebra; `bench/ablation_beaver_vs_grr`
/// compares the online costs. The dealer here is the standard semi-honest
/// preprocessing abstraction: in a deployment it would be replaced by an
/// offline triple-generation protocol, which does not change the online
/// phase measured here.
class BeaverTripleDealer {
 public:
  /// Shares of one multiplication triple: for each party j,
  /// a_shares[j], b_shares[j], c_shares[j] are degree-t Shamir shares of
  /// (a, b, a*b).
  struct TripleShares {
    std::vector<Field::Element> a_shares;
    std::vector<Field::Element> b_shares;
    std::vector<Field::Element> c_shares;
  };

  BeaverTripleDealer(ShamirScheme scheme, uint64_t seed);

  /// Deals one random triple.
  TripleShares Deal();

  /// Deals `count` triples (one per element of a batched multiplication).
  std::vector<TripleShares> DealBatch(size_t count);

 private:
  ShamirScheme scheme_;
  Rng rng_;
};

/// Online Beaver multiplication over an existing BgwProtocol's network and
/// sharing scheme.
class BeaverMultiplier {
 public:
  /// `protocol` supplies the parties, scheme, and network; `dealer` the
  /// preprocessed triples. Both must outlive this object.
  BeaverMultiplier(BgwProtocol* protocol, BeaverTripleDealer* dealer);

  /// Element-wise product of two shared vectors using one triple per
  /// element: one communication round (the joint opening of d = x - a and
  /// e = y - b), then the local combination [c] + d[b] + e[a] + d*e.
  Result<SharedVector> Mul(const SharedVector& x, const SharedVector& y);

  /// Triples consumed so far.
  size_t triples_used() const { return triples_used_; }

 private:
  BgwProtocol* protocol_;
  BeaverTripleDealer* dealer_;
  size_t triples_used_ = 0;
};

}  // namespace sqm

#endif  // SQM_MPC_BEAVER_H_
