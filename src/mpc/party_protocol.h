#ifndef SQM_MPC_PARTY_PROTOCOL_H_
#define SQM_MPC_PARTY_PROTOCOL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/status.h"
#include "mpc/circuit.h"
#include "mpc/field.h"
#include "mpc/shamir.h"
#include "net/liveness.h"
#include "net/transport.h"
#include "sampling/rng.h"

namespace sqm {

class BeaverTriplePool;

/// Per-party BGW primitives: the distributed counterpart of BgwProtocol.
///
/// BgwProtocol executes every party in one process — it owns all n RNG
/// streams and all n share rows. PartyProtocol is what one OS process runs
/// in a real deployment: it holds party `me`'s share row only, derives
/// exactly the RNG stream the driver would have assigned to `me` (by
/// replaying the driver's Split sequence, which consumes parent draws but
/// never data), and exchanges the same messages over the transport. The
/// consequence, asserted by tests/party_protocol_test.cc and the
/// deploy_smoke target, is that n PartyProtocol processes release values
/// BIT-IDENTICAL to one driver-mode run with the same seed.
///
/// A "shared vector" here is just this party's row:
/// std::vector<Field::Element> with one share per element.
///
/// Rounds: the driver calls Transport::EndRound once per round. In
/// per-party execution every party signals its own round end; over a
/// TcpTransport that is a plain EndRound (per-process accounting), while n
/// party threads sharing one ThreadedTransport must instead arrive at the
/// transport's round barrier — inject that via set_round_barrier.
///
/// Dropout tolerance mirrors the driver's quorum paths with one genuinely
/// distributed addition: after a multiplication's sub-share exchange the
/// survivors run a census round (phase "census"), broadcasting a bitmask of
/// the dealers they received and intersecting the masks, so every survivor
/// recombines over the SAME 2t+1 dealer set — the property the driver gets
/// for free from its global view. The census is agreement under the
/// documented failure model (crash-stop, reliable links among survivors,
/// failures detected by every survivor within its timeout window); it is
/// not Byzantine consensus.
class PartyProtocol {
 public:
  using Shares = std::vector<Field::Element>;
  using RoundFn = std::function<void()>;

  /// `transport` must outlive the protocol. `seed` must equal the driver
  /// seed (BgwEngine's protocol seed) for bit-identical execution; `me` is
  /// this process's party index.
  PartyProtocol(ShamirScheme scheme, Transport* transport, uint64_t seed,
                size_t me);

  size_t num_parties() const { return scheme_.num_parties(); }
  size_t me() const { return me_; }
  const ShamirScheme& scheme() const { return scheme_; }

  /// Attaches (or detaches) the local failure detector. Each party holds
  /// its OWN tracker — liveness is a local view, reconciled where it must
  /// be (multiplications) by the census round.
  void set_liveness(LivenessTracker* tracker) { liveness_ = tracker; }
  LivenessTracker* liveness() const { return liveness_; }

  /// Overrides how a round end is signaled (default:
  /// transport->EndRound()). Party threads sharing one ThreadedTransport
  /// pass [&] { transport.ArriveRound(me); }.
  void set_round_barrier(RoundFn fn) { round_fn_ = std::move(fn); }

  /// Input phase for dealer `dealer` dealing `count` elements. When
  /// dealer == me, `values` holds the encoded plaintext inputs
  /// (values.size() == count); otherwise `values` is ignored. Every party
  /// returns its own share row. Mirrors BgwProtocol::ShareFromParty /
  /// TryShareFromParty: with a liveness tracker attached, a dead dealer or
  /// a failed receive fails kUnavailable (a lost input has no quorum).
  Result<Shares> ShareFromParty(size_t dealer,
                                const std::vector<Field::Element>& values,
                                size_t count,
                                const std::string& phase_label = "input");

  /// Local linear algebra on own share rows (identical to the driver's
  /// per-row arithmetic).
  Shares SharePublic(const std::vector<Field::Element>& values) const;
  Result<Shares> Add(const Shares& a, const Shares& b) const;
  Result<Shares> Sub(const Shares& a, const Shares& b) const;
  Shares ScaleConst(const Shares& a, Field::Element c) const;

  /// Element-wise product with GRR degree reduction; one communication
  /// round without a tracker, two (sub-shares + census) with one. With a
  /// Beaver pool attached, the online path is instead one opening round in
  /// BOTH cases: the opened (x-a, y-b) values are public, so any t+1
  /// survivor shares agree and no census/agreement round is needed.
  Result<Shares> Mul(const Shares& a, const Shares& b);

  /// Attaches this party's offline triple pool (nullptr detaches). Every
  /// party constructs its pool from the same (scheme, seed, capacity), so
  /// the pools' triple streams — and hence each party's rows — agree
  /// without communication (the semi-honest preprocessing abstraction).
  /// Must outlive the protocol while attached. Not supported together with
  /// recovery mode: the pool cursor is not part of the durable checkpoint.
  void set_beaver_pool(BeaverTriplePool* pool) { beaver_pool_ = pool; }
  BeaverTriplePool* beaver_pool() const { return beaver_pool_; }

  /// Beaver triples consumed by Mul since construction (0 under GRR).
  size_t beaver_triples_used() const { return beaver_triples_used_; }

  /// Opens to every party (one round) and returns the plaintext. With a
  /// tracker, dead parties are skipped and reconstruction interpolates
  /// over whichever survivors delivered (any t+1 agree on the value).
  Result<std::vector<Field::Element>> Open(const Shares& a);
  Result<std::vector<int64_t>> OpenSigned(const Shares& a);

  /// Discards every deliverable message addressed to this party. Called
  /// between a failed multiplication level and its checkpoint retry.
  size_t DrainPending();

  /// Recovery mode changes two behaviors, both needed for supervised
  /// restart+rejoin (see docs/DEPLOYMENT.md "Recovery & supervision"):
  ///  - Full-quorum multiplications: MulQuorum fails the level unless the
  ///    census agreed on EVERY non-dead party's dealing and every alive
  ///    party voted, so all parties fail a level together and meet at the
  ///    same resume barrier instead of partitioning into a degraded
  ///    majority and an orphaned restartee.
  ///  - Marker tolerance: every receive site discards late resume-barrier
  ///    markers (a peer that finished its barrier first may send one final
  ///    marker round into our next protocol phase).
  /// Requires a LivenessTracker and an immediate-delivery transport (TCP
  /// or threaded; the lockstep transport defers delivery to EndRound and
  /// cannot run the barrier's resend loop).
  void set_recovery_mode(bool on) { recovery_mode_ = on; }
  bool recovery_mode() const { return recovery_mode_; }

  /// Resynchronization point after a failed level or a supervised restart.
  ///
  /// Every participant announces the level it can resume from, encoded as
  /// 0 = "no checkpoint, full redo" or next_level + 1 otherwise, and loops
  /// {resend marker, try receive} per unresolved peer until each is either
  /// marker-resolved (answered with its own marker) or positively dead
  /// (transport kUnavailable), or `deadline_seconds` elapses — peers still
  /// unresolved at the deadline are MarkDead. Marker-resolved peers are
  /// Revive()d (the sanctioned resurrection: the minimum announced level
  /// is redone by everyone, so no pre-crash share can reach a quorum).
  ///
  /// Returns the minimum encoded level across self and every
  /// marker-resolved peer: 0 means redo from scratch (invalidate the
  /// checkpoint), v > 0 means set next_level = v - 1 and redo from there.
  /// Redoing a completed level is safe: mul wires are overwritten with
  /// freshly dealt, census-consistent sub-shares, and non-mul gates are
  /// pure functions of their inputs.
  Result<uint64_t> ResumeBarrier(double deadline_seconds,
                                 uint64_t my_encoded_level);

  /// True when `payload` is a resume-barrier marker (size-3 payload whose
  /// first two words are magic values above the field modulus, so no
  /// share, census, or opening payload can collide with it).
  static bool IsRecoveryMarker(const Transport::Payload& payload);

  /// Snapshot / restore of this party's protocol RNG stream, so a durable
  /// checkpoint can resume share dealing bit-identically: the restarted
  /// process regenerates exactly the sub-share randomness the crashed one
  /// would have drawn next.
  void SaveRngState(uint64_t out[4]) const { my_rng_.SaveState(out); }
  void RestoreRngState(const uint64_t state[4]) {
    my_rng_ = Rng::FromState(state);
  }

 private:
  Result<Shares> MulQuorum(const Shares& a, const Shares& b);

  /// Beaver online multiplication (pool attached): one opening round,
  /// tagged to the "mul" phase, plus local combination.
  Result<Shares> MulBeaver(const Shares& a, const Shares& b);

  /// Broadcast-and-reconstruct body shared by Open and MulBeaver; the
  /// caller owns the PhaseScope.
  Result<std::vector<Field::Element>> OpenInPhase(const Shares& a);

  /// Receive that discards late resume-barrier markers in recovery mode.
  /// ALL protocol receive sites must go through this: a peer that left the
  /// barrier first may push one final marker round into our next phase.
  Result<Transport::Payload> RecvData(size_t from);

  /// Feeds a receive failure to the liveness tracker — except that in
  /// recovery mode only the transport's positive kUnavailable counts as
  /// death (timeouts fail the level but keep the peer revivable). Callers
  /// must hold a non-null liveness_.
  void RecordRecvFailure(size_t party, StatusCode code);

  void EndRound();
  bool PartyDead(size_t party) const {
    return liveness_ != nullptr && liveness_->IsDead(party);
  }

  ShamirScheme scheme_;
  Transport* network_;
  LivenessTracker* liveness_ = nullptr;
  BeaverTriplePool* beaver_pool_ = nullptr;
  size_t beaver_triples_used_ = 0;
  const size_t me_;
  Rng my_rng_;
  std::vector<Field::Element> degree2t_lagrange_;
  RoundFn round_fn_;
  bool recovery_mode_ = false;
};

/// Checkpoint of one per-party circuit evaluation: this party's wire shares
/// after the last completed multiplication level (the per-party slice of
/// BgwCheckpoint).
struct PartyCheckpoint {
  bool valid = false;
  size_t next_level = 0;
  std::vector<Field::Element> wire_shares;  ///< [wire], own row only.
  size_t mul_rounds_done = 0;
};

/// Per-party gate-level evaluator: the distributed counterpart of
/// BgwEngine. Evaluates the SAME circuit the driver builds, on this party's
/// share row, with the same level batching — so the message schedule, and
/// therefore the released values, match driver-mode bit for bit.
class PartyEngine {
 public:
  PartyEngine(ShamirScheme scheme, Transport* network, uint64_t seed,
              size_t me);

  /// `my_inputs` supplies only this party's private inputs (centered
  /// signed), which must number circuit.NumInputsForParty(me). Other
  /// parties' input counts are read from the circuit — public structure.
  Result<PartyProtocol::Shares> EvaluateToShares(
      const Circuit& circuit, const std::vector<int64_t>& my_inputs,
      PartyCheckpoint* checkpoint = nullptr);

  Result<std::vector<int64_t>> OpenOutputs(
      const PartyProtocol::Shares& out_shares);

  void set_liveness(LivenessTracker* tracker) {
    protocol_.set_liveness(tracker);
  }

  /// Called at the start of every multiplication level with the level
  /// index. The sqm-party daemon's --crash-at-mul-level hook (raising
  /// SIGKILL mid-protocol for the resilience tests) attaches here.
  void set_mul_level_hook(std::function<void(size_t)> hook) {
    mul_level_hook_ = std::move(hook);
  }

  /// Called with the in-memory checkpoint after the input phase completes
  /// and again after every completed circuit level. The recovery layer
  /// attaches a sink that persists a durable snapshot (wire shares + RNG
  /// cursor) at each of these phase boundaries, so a kill -9 at any point
  /// loses at most the level in flight.
  void set_checkpoint_sink(std::function<void(const PartyCheckpoint&)> sink) {
    checkpoint_sink_ = std::move(sink);
  }

  PartyProtocol& protocol() { return protocol_; }

 private:
  PartyProtocol protocol_;
  std::function<void(size_t)> mul_level_hook_;
  std::function<void(const PartyCheckpoint&)> checkpoint_sink_;
};

}  // namespace sqm

#endif  // SQM_MPC_PARTY_PROTOCOL_H_
