#include "mpc/network.h"

#include "core/logging.h"

namespace sqm {

SimulatedNetwork::SimulatedNetwork(size_t num_parties,
                                   double per_round_latency_seconds)
    : num_parties_(num_parties),
      per_round_latency_(per_round_latency_seconds),
      channels_(num_parties * num_parties) {
  SQM_CHECK(num_parties >= 1);
  SQM_CHECK(per_round_latency_seconds >= 0.0);
}

size_t SimulatedNetwork::ChannelIndex(size_t from, size_t to) const {
  SQM_CHECK(from < num_parties_ && to < num_parties_);
  return from * num_parties_ + to;
}

void SimulatedNetwork::Send(size_t from, size_t to,
                            std::vector<Field::Element> payload) {
  if (from != to) {
    ++stats_.messages;
    stats_.field_elements += payload.size();
  }
  channels_[ChannelIndex(from, to)].push_back(std::move(payload));
}

Result<std::vector<Field::Element>> SimulatedNetwork::Receive(size_t from,
                                                              size_t to) {
  auto& queue = channels_[ChannelIndex(from, to)];
  if (queue.empty()) {
    return Status::FailedPrecondition(
        "receive with no pending message on channel " +
        std::to_string(from) + " -> " + std::to_string(to));
  }
  std::vector<Field::Element> payload = std::move(queue.front());
  queue.pop_front();
  return payload;
}

bool SimulatedNetwork::HasPending(size_t from, size_t to) const {
  return !channels_[ChannelIndex(from, to)].empty();
}

void SimulatedNetwork::EndRound() { ++stats_.rounds; }

double SimulatedNetwork::SimulatedSeconds() const {
  return static_cast<double>(stats_.rounds) * per_round_latency_;
}

void SimulatedNetwork::Reset() {
  for (auto& queue : channels_) queue.clear();
  stats_ = NetworkStats{};
}

}  // namespace sqm
