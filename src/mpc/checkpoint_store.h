#ifndef SQM_MPC_CHECKPOINT_STORE_H_
#define SQM_MPC_CHECKPOINT_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"

namespace sqm {

/// Everything a restarted party needs to resume its side of the protocol
/// bit-identically: the in-memory PartyCheckpoint phase state plus the
/// party's RNG-split cursor (so re-dealt sub-shares and noise come out of
/// the same stream positions) and enough identity to refuse a snapshot
/// from the wrong run, party, or circuit.
struct DurableCheckpoint {
  uint64_t run_id = 0;
  uint32_t party = 0;
  /// Incarnation that WROTE the snapshot. A restarted party loads any
  /// incarnation <= its own (its predecessors wrote them).
  uint32_t incarnation = 0;
  /// Caller-chosen fingerprint of the circuit/config (gate count, seed,
  /// roster size, ... mixed by the caller); a mismatch means the config
  /// changed under the run and the snapshot must be refused.
  uint64_t fingerprint = 0;
  /// Mirrors PartyCheckpoint: valid == false means the input phase had not
  /// completed when the snapshot was taken.
  bool valid = false;
  uint64_t next_level = 0;
  uint64_t mul_rounds_done = 0;
  std::vector<uint64_t> wire_shares;
  /// Rng::SaveState words of the party's protocol stream at snapshot time.
  uint64_t rng_state[4] = {0, 0, 0, 0};
};

/// Versioned, CRC-guarded on-disk snapshot of one party's protocol state.
///
/// One file per party directory (`<dir>/checkpoint.bin`). Save is atomic
/// (write to a temp file in the same directory, flush, rename), so a crash
/// mid-save leaves either the previous snapshot or none — never a torn
/// file. Load verifies magic, format version, length, and a CRC-32 over
/// the whole payload before believing a single field, and then the caller
/// re-checks run_id/party/fingerprint against the live config.
class CheckpointStore {
 public:
  /// `dir` must exist; the store never creates directories.
  explicit CheckpointStore(std::string dir);

  const std::string& dir() const { return dir_; }
  std::string path() const;

  /// Atomically replaces the snapshot on disk.
  Status Save(const DurableCheckpoint& checkpoint) const;

  /// Reads and validates the snapshot. kNotFound when no file exists,
  /// kIntegrityViolation on any corruption (bad magic, version, length,
  /// CRC).
  Result<DurableCheckpoint> Load() const;

  bool Exists() const;

  /// Removes the snapshot (idempotent; missing file is OK).
  Status Clear() const;

 private:
  std::string dir_;
};

/// CRC-32 (IEEE 802.3 polynomial, reflected) of `len` bytes. Exposed for
/// tests that corrupt snapshots deliberately.
uint32_t Crc32(const uint8_t* data, size_t len);

}  // namespace sqm

#endif  // SQM_MPC_CHECKPOINT_STORE_H_
