#include "mpc/checkpoint_store.h"

#include <cstdio>
#include <utility>

namespace sqm {
namespace {

// "SQMCKPT" + format generation in the last byte.
constexpr uint64_t kMagic = 0x53514d434b505431ULL;
constexpr uint32_t kFormatVersion = 1;

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(uint8_t(v >> (8 * i)));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(uint8_t(v >> (8 * i)));
}

// Bounds-checked little-endian reader (same defensive shape as the TCP
// frame decoder: length errors surface as status, never as UB).
class Reader {
 public:
  Reader(const uint8_t* data, size_t len) : data_(data), len_(len) {}

  bool U32(uint32_t* out) {
    if (len_ - pos_ < 4) return false;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= uint32_t(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    *out = v;
    return true;
  }

  bool U64(uint64_t* out) {
    if (len_ - pos_ < 8) return false;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= uint64_t(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    *out = v;
    return true;
  }

  size_t remaining() const { return len_ - pos_; }

 private:
  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

Status Corrupt(const std::string& path, const std::string& what) {
  return Status::IntegrityViolation("checkpoint " + path + ": " + what);
}

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t len) {
  // Bitwise CRC-32/ISO-HDLC (reflected 0xEDB88320). Snapshot files are a
  // few KB at phase boundaries; no table needed.
  uint32_t crc = 0xffffffffu;
  for (size_t i = 0; i < len; ++i) {
    crc ^= data[i];
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
    }
  }
  return crc ^ 0xffffffffu;
}

CheckpointStore::CheckpointStore(std::string dir) : dir_(std::move(dir)) {}

std::string CheckpointStore::path() const { return dir_ + "/checkpoint.bin"; }

Status CheckpointStore::Save(const DurableCheckpoint& checkpoint) const {
  std::vector<uint8_t> buffer;
  buffer.reserve(96 + 8 * checkpoint.wire_shares.size());
  PutU64(&buffer, kMagic);
  PutU32(&buffer, kFormatVersion);
  PutU64(&buffer, checkpoint.run_id);
  PutU32(&buffer, checkpoint.party);
  PutU32(&buffer, checkpoint.incarnation);
  PutU64(&buffer, checkpoint.fingerprint);
  PutU32(&buffer, checkpoint.valid ? 1 : 0);
  PutU64(&buffer, checkpoint.next_level);
  PutU64(&buffer, checkpoint.mul_rounds_done);
  for (int i = 0; i < 4; ++i) PutU64(&buffer, checkpoint.rng_state[i]);
  PutU64(&buffer, checkpoint.wire_shares.size());
  for (uint64_t word : checkpoint.wire_shares) PutU64(&buffer, word);
  const uint32_t crc = Crc32(buffer.data(), buffer.size());
  PutU32(&buffer, crc);

  const std::string final_path = path();
  const std::string tmp_path = final_path + ".tmp";
  std::FILE* f = std::fopen(tmp_path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open " + tmp_path + " for writing");
  }
  const size_t written = std::fwrite(buffer.data(), 1, buffer.size(), f);
  const bool flushed = std::fflush(f) == 0;
  const bool closed = std::fclose(f) == 0;
  if (written != buffer.size() || !flushed || !closed) {
    std::remove(tmp_path.c_str());
    return Status::IoError("short write to " + tmp_path);
  }
  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::IoError("cannot rename " + tmp_path + " into place");
  }
  return Status::OK();
}

Result<DurableCheckpoint> CheckpointStore::Load() const {
  const std::string file_path = path();
  std::FILE* f = std::fopen(file_path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("no checkpoint at " + file_path);
  }
  std::vector<uint8_t> buffer;
  uint8_t chunk[4096];
  size_t got;
  while ((got = std::fread(chunk, 1, sizeof chunk, f)) > 0) {
    buffer.insert(buffer.end(), chunk, chunk + got);
  }
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok) return Status::IoError("cannot read " + file_path);

  if (buffer.size() < 4) return Corrupt(file_path, "truncated");
  const size_t body_len = buffer.size() - 4;
  uint32_t stored_crc = 0;
  for (int i = 0; i < 4; ++i) {
    stored_crc |= uint32_t(buffer[body_len + i]) << (8 * i);
  }
  if (Crc32(buffer.data(), body_len) != stored_crc) {
    return Corrupt(file_path, "CRC mismatch");
  }

  Reader reader(buffer.data(), body_len);
  uint64_t magic = 0;
  uint32_t version = 0;
  if (!reader.U64(&magic) || magic != kMagic) {
    return Corrupt(file_path, "bad magic");
  }
  if (!reader.U32(&version) || version != kFormatVersion) {
    return Corrupt(file_path,
                   "unsupported format version " + std::to_string(version));
  }
  DurableCheckpoint checkpoint;
  uint32_t valid_word = 0;
  uint64_t count = 0;
  if (!reader.U64(&checkpoint.run_id) || !reader.U32(&checkpoint.party) ||
      !reader.U32(&checkpoint.incarnation) ||
      !reader.U64(&checkpoint.fingerprint) || !reader.U32(&valid_word) ||
      !reader.U64(&checkpoint.next_level) ||
      !reader.U64(&checkpoint.mul_rounds_done)) {
    return Corrupt(file_path, "truncated header");
  }
  checkpoint.valid = valid_word != 0;
  for (int i = 0; i < 4; ++i) {
    if (!reader.U64(&checkpoint.rng_state[i])) {
      return Corrupt(file_path, "truncated rng state");
    }
  }
  if (!reader.U64(&count) || count != reader.remaining() / 8 ||
      count * 8 != reader.remaining()) {
    return Corrupt(file_path, "wire count does not match file length");
  }
  checkpoint.wire_shares.resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    reader.U64(&checkpoint.wire_shares[i]);
  }
  return checkpoint;
}

bool CheckpointStore::Exists() const {
  std::FILE* f = std::fopen(path().c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

Status CheckpointStore::Clear() const {
  std::remove(path().c_str());
  return Status::OK();
}

}  // namespace sqm
