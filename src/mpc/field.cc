#include "mpc/field.h"

#include "core/logging.h"

namespace sqm {
namespace {

// Branchless canonicalization of r in [0, 2p): subtract p iff r >= p. The
// scalar ops route through this too — field elements are shares and masks,
// and a data-dependent branch on them is a timing side channel. (It also
// keeps the batched loops below straight-line and auto-vectorizable.)
inline uint64_t CanonicalizeBranchless(uint64_t r) {
  return r - (Field::kModulus &
              -static_cast<uint64_t>(r >= Field::kModulus));
}

inline uint64_t MulOneBranchless(uint64_t a, uint64_t b) {
  const __uint128_t prod = static_cast<__uint128_t>(a) * b;
  const uint64_t lo = static_cast<uint64_t>(prod) & Field::kModulus;
  const uint64_t hi = static_cast<uint64_t>(prod >> 61);
  uint64_t r = lo + (hi & Field::kModulus) + (hi >> 61);
  r = (r & Field::kModulus) + (r >> 61);
  return CanonicalizeBranchless(r);
}

}  // namespace

Field::Element Field::Reduce(uint64_t x) {
  // Mersenne reduction: x = hi*2^61 + lo === hi + lo (mod 2^61 - 1).
  return CanonicalizeBranchless((x & kModulus) + (x >> 61));
}

Field::Element Field::Add(Element a, Element b) {
  return CanonicalizeBranchless(a + b);  // a+b < 2^62, no overflow.
}

Field::Element Field::Sub(Element a, Element b) {
  // a - b, plus p iff a < b — mask add instead of a secret-dependent branch.
  return a - b + (kModulus & -static_cast<uint64_t>(a < b));
}

Field::Element Field::Neg(Element a) {
  // (p - a) for a != 0, 0 for a == 0, without branching on the element.
  return (kModulus - a) & -static_cast<uint64_t>(a != 0);
}

Field::Element Field::Mul(Element a, Element b) {
  return MulOneBranchless(a, b);
}

Field::Element Field::Pow(Element a, uint64_t e) {
  Element result = 1;
  Element base = a;
  while (e > 0) {
    if (e & 1) result = Mul(result, base);
    base = Mul(base, base);
    e >>= 1;
  }
  return result;
}

Field::Element Field::Inv(Element a) {
  SQM_CHECK(a != 0);
  // Fermat: a^(p-2) mod p.
  return Pow(a, kModulus - 2);
}

Field::Element Field::Encode(int64_t v) {
  SQM_CHECK(v >= -kMaxCentered && v <= kMaxCentered);
  // v for v >= 0, p - |v| == p + v for v < 0: add p under the sign mask.
  // Two's-complement wraparound makes the uint64 sum land in [0, p).
  return static_cast<Element>(
      static_cast<uint64_t>(v) +
      (kModulus & -static_cast<uint64_t>(v < 0)));
}

int64_t Field::Decode(Element e) {
  SQM_CHECK(e < kModulus);
  // e for small representatives, e - p for the negative half — the
  // subtrahend is selected by mask, not by a branch on the element.
  return static_cast<int64_t>(e) -
         static_cast<int64_t>(
             kModulus &
             -static_cast<uint64_t>(e > static_cast<Element>(kMaxCentered)));
}

std::vector<Field::Element> Field::EncodeVector(
    const std::vector<int64_t>& v) {
  std::vector<Element> out(v.size());
  for (size_t i = 0; i < v.size(); ++i) out[i] = Encode(v[i]);
  return out;
}

std::vector<int64_t> Field::DecodeVector(const std::vector<Element>& v) {
  std::vector<int64_t> out(v.size());
  for (size_t i = 0; i < v.size(); ++i) out[i] = Decode(v[i]);
  return out;
}

void Field::ReduceVec(const uint64_t* in, Element* out, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    out[i] =
        CanonicalizeBranchless((in[i] & kModulus) + (in[i] >> 61));
  }
}

void Field::AddVec(const Element* a, const Element* b, Element* out,
                   size_t n) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = CanonicalizeBranchless(a[i] + b[i]);  // a+b < 2^62: no overflow.
  }
}

void Field::SubVec(const Element* a, const Element* b, Element* out,
                   size_t n) {
  for (size_t i = 0; i < n; ++i) {
    // a - b + (p if a < b): the mask add replaces the scalar ternary.
    out[i] =
        a[i] - b[i] + (kModulus & -static_cast<uint64_t>(a[i] < b[i]));
  }
}

void Field::MulVec(const Element* a, const Element* b, Element* out,
                   size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = MulOneBranchless(a[i], b[i]);
}

void Field::ScaleVec(const Element* a, Element c, Element* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = MulOneBranchless(a[i], c);
}

void Field::MulAddVec(Element* acc, const Element* v, Element w, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    acc[i] = CanonicalizeBranchless(acc[i] + MulOneBranchless(v[i], w));
  }
}

Field::Element Field::SumVec(const Element* a, size_t n) {
  Element acc = 0;
  for (size_t i = 0; i < n; ++i) acc = CanonicalizeBranchless(acc + a[i]);
  return acc;
}

}  // namespace sqm
