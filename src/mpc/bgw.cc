#include "mpc/bgw.h"

#include <algorithm>

#include "core/logging.h"
#include "obs/trace.h"

namespace sqm {

BgwEngine::BgwEngine(ShamirScheme scheme, Transport* network,
                     uint64_t seed)
    : protocol_(std::move(scheme), network, seed), network_(network) {}

Result<std::vector<int64_t>> BgwEngine::Evaluate(
    const Circuit& circuit,
    const std::vector<std::vector<int64_t>>& inputs_per_party) {
  SQM_ASSIGN_OR_RETURN(SharedVector out_shares,
                       EvaluateToShares(circuit, inputs_per_party));
  return OpenOutputs(out_shares);
}

Result<SharedVector> BgwEngine::EvaluateToShares(
    const Circuit& circuit,
    const std::vector<std::vector<int64_t>>& inputs_per_party,
    BgwCheckpoint* checkpoint) {
  const size_t n = protocol_.num_parties();
  SQM_RETURN_NOT_OK(circuit.Validate(n));
  if (inputs_per_party.size() != n) {
    return Status::InvalidArgument("need one input vector per party");
  }
  for (size_t j = 0; j < n; ++j) {
    if (inputs_per_party[j].size() != circuit.NumInputsForParty(j)) {
      return Status::InvalidArgument(
          "party " + std::to_string(j) + " supplied " +
          std::to_string(inputs_per_party[j].size()) + " inputs, circuit expects " +
          std::to_string(circuit.NumInputsForParty(j)));
    }
  }

  BgwCheckpoint scratch;
  BgwCheckpoint* ckpt = checkpoint != nullptr ? checkpoint : &scratch;
  const bool resuming = ckpt->valid;
  const auto& gates = circuit.gates();

  obs::Span evaluate("bgw.evaluate", "mpc");
  evaluate.AddArg("gates", static_cast<int64_t>(gates.size()));
  evaluate.AddArg("resuming", resuming ? 1 : 0);
  if (resuming && obs::Enabled()) {
    obs::TraceEvent event;
    event.name = "bgw.checkpoint_resume";
    event.category = "mpc";
    event.AddArg("next_level", static_cast<int64_t>(ckpt->next_level));
    event.AddArg("mul_rounds_done",
                 static_cast<int64_t>(ckpt->mul_rounds_done));
    obs::Tracer::Global().Instant(event);
  }

  if (!resuming) {
    stats_before_ = network_->stats();
    ckpt->next_level = 0;
    ckpt->mul_rounds_done = 0;
    // wire_shares[party][wire] lives inside the checkpoint: each completed
    // level's results are persisted in place, no copies.
    ckpt->wire_shares.assign(n,
                             std::vector<Field::Element>(gates.size(), 0));

    // ---- Phase 1: input sharing (one protocol round per contributing
    // party; each party's inputs are batched into a single message per
    // recipient). Crashed parties' input shares survive among the live
    // parties, so a later resume never repeats this phase.
    for (size_t j = 0; j < n; ++j) {
      if (inputs_per_party[j].empty()) continue;
      SharedVector shared;
      if (protocol_.liveness() != nullptr) {
        SQM_ASSIGN_OR_RETURN(
            shared, protocol_.TryShareFromParty(
                        j, Field::EncodeVector(inputs_per_party[j])));
      } else if (protocol_.verify_sharings()) {
        SQM_ASSIGN_OR_RETURN(
            shared, protocol_.ShareFromPartyChecked(
                        j, Field::EncodeVector(inputs_per_party[j])));
      } else {
        shared = protocol_.ShareFromParty(
            j, Field::EncodeVector(inputs_per_party[j]));
      }
      // Scatter this party's input shares onto its input wires.
      size_t index = 0;
      for (size_t w = 0; w < gates.size(); ++w) {
        const Circuit::Gate& gate = gates[w];
        if (gate.kind == Circuit::GateKind::kInput && gate.owner == j) {
          for (size_t r = 0; r < n; ++r) {
            ckpt->wire_shares[r][w] = shared.shares(r)[gate.input_index];
          }
          ++index;
        }
      }
      SQM_CHECK(index == inputs_per_party[j].size());
    }
    ckpt->valid = true;
  } else {
    SQM_CHECK(ckpt->wire_shares.size() == n);
    SQM_CHECK(ckpt->wire_shares[0].size() == gates.size());
    // Stale sub-shares queued by the aborted round must not mix into the
    // retry's fresh resharing randomness.
    protocol_.DrainPending();
  }

  std::vector<std::vector<Field::Element>>& wire_shares = ckpt->wire_shares;

  // ---- Phase 2: evaluate gate levels. Multiplications of equal depth are
  // batched into one communication round.
  std::vector<size_t> depth(gates.size(), 0);
  size_t max_depth = 0;
  for (size_t i = 0; i < gates.size(); ++i) {
    const Circuit::Gate& gate = gates[i];
    switch (gate.kind) {
      case Circuit::GateKind::kInput:
      case Circuit::GateKind::kConstant:
        break;
      case Circuit::GateKind::kAdd:
      case Circuit::GateKind::kSub:
        depth[i] = std::max(depth[gate.lhs], depth[gate.rhs]);
        break;
      case Circuit::GateKind::kMulConst:
        depth[i] = depth[gate.lhs];
        break;
      case Circuit::GateKind::kMul:
        depth[i] = std::max(depth[gate.lhs], depth[gate.rhs]) + 1;
        break;
    }
    max_depth = std::max(max_depth, depth[i]);
  }

  auto process_local_gate = [&](size_t w) {
    const Circuit::Gate& gate = gates[w];
    for (size_t r = 0; r < n; ++r) {
      auto& shares = wire_shares[r];
      switch (gate.kind) {
        case Circuit::GateKind::kConstant:
          // Public constant = degree-0 sharing: everyone holds the value.
          shares[w] = Field::Reduce(gate.constant);
          break;
        case Circuit::GateKind::kAdd:
          shares[w] = Field::Add(shares[gate.lhs], shares[gate.rhs]);
          break;
        case Circuit::GateKind::kSub:
          shares[w] = Field::Sub(shares[gate.lhs], shares[gate.rhs]);
          break;
        case Circuit::GateKind::kMulConst:
          shares[w] = Field::Mul(shares[gate.lhs],
                                 Field::Reduce(gate.constant));
          break;
        case Circuit::GateKind::kInput:
        case Circuit::GateKind::kMul:
          break;  // Inputs done in phase 1; muls handled per level.
      }
    }
  };

  for (size_t level = ckpt->next_level; level <= max_depth; ++level) {
    if (level > 0) {
      // Batch all multiplications at this depth into one round.
      std::vector<size_t> mul_wires;
      for (size_t w = 0; w < gates.size(); ++w) {
        if (gates[w].kind == Circuit::GateKind::kMul && depth[w] == level) {
          mul_wires.push_back(w);
        }
      }
      if (!mul_wires.empty()) {
        SharedVector lhs(n, mul_wires.size());
        SharedVector rhs(n, mul_wires.size());
        for (size_t r = 0; r < n; ++r) {
          for (size_t i = 0; i < mul_wires.size(); ++i) {
            lhs.shares(r)[i] = wire_shares[r][gates[mul_wires[i]].lhs];
            rhs.shares(r)[i] = wire_shares[r][gates[mul_wires[i]].rhs];
          }
        }
        // A failed Mul leaves wire_shares at the previous level and
        // ckpt->next_level == level: exactly where a retry must resume.
        SQM_ASSIGN_OR_RETURN(SharedVector products, protocol_.Mul(lhs, rhs));
        for (size_t r = 0; r < n; ++r) {
          for (size_t i = 0; i < mul_wires.size(); ++i) {
            wire_shares[r][mul_wires[i]] = products.shares(r)[i];
          }
        }
        ++ckpt->mul_rounds_done;
      }
    }
    // Local gates at this depth, in id order (intra-level dependencies
    // always point backwards).
    for (size_t w = 0; w < gates.size(); ++w) {
      if (gates[w].kind != Circuit::GateKind::kMul &&
          gates[w].kind != Circuit::GateKind::kInput && depth[w] == level) {
        process_local_gate(w);
      }
    }
    ckpt->next_level = level + 1;
  }

  SharedVector out_shares(n, circuit.outputs().size());
  for (size_t r = 0; r < n; ++r) {
    for (size_t i = 0; i < circuit.outputs().size(); ++i) {
      out_shares.shares(r)[i] = wire_shares[r][circuit.outputs()[i]];
    }
  }
  last_report_.multiplications = circuit.num_multiplications();
  last_report_.mul_rounds = ckpt->mul_rounds_done;
  return out_shares;
}

Result<std::vector<int64_t>> BgwEngine::OpenOutputs(
    const SharedVector& out_shares) {
  // ---- Phase 3: open outputs.
  std::vector<int64_t> outputs;
  if (protocol_.liveness() != nullptr) {
    SQM_ASSIGN_OR_RETURN(outputs, protocol_.TryOpenSigned(out_shares));
  } else if (protocol_.verify_sharings()) {
    SQM_ASSIGN_OR_RETURN(outputs, protocol_.OpenSignedChecked(out_shares));
  } else {
    outputs = protocol_.OpenSigned(out_shares);
  }
  // The network delta spans everything since the fresh EvaluateToShares
  // start, including any failed attempts retried from a checkpoint — that
  // is the traffic the run actually cost.
  last_report_.network = network_->stats() - stats_before_;
  return outputs;
}

}  // namespace sqm
