#include "mpc/protocol.h"

#include <numeric>

#include "core/logging.h"

namespace sqm {

BgwProtocol::BgwProtocol(ShamirScheme scheme, Transport* network,
                         uint64_t seed)
    : scheme_(std::move(scheme)), network_(network) {
  SQM_CHECK(network_ != nullptr);
  SQM_CHECK(network_->num_parties() == scheme_.num_parties());
  Rng root(seed);
  party_rngs_.reserve(scheme_.num_parties());
  for (size_t j = 0; j < scheme_.num_parties(); ++j) {
    party_rngs_.push_back(root.Split(j));
  }
  std::vector<size_t> all(2 * scheme_.threshold() + 1);
  std::iota(all.begin(), all.end(), 0);
  degree2t_lagrange_ = scheme_.LagrangeAtZero(all);
}

SharedVector BgwProtocol::ShareFromParty(
    size_t party, const std::vector<Field::Element>& values) {
  const size_t n = num_parties();
  SQM_CHECK(party < n);
  PhaseScope phase(network_, "input");
  // The owner computes one share vector per recipient and sends it.
  std::vector<std::vector<Field::Element>> outbound(
      n, std::vector<Field::Element>(values.size()));
  for (size_t i = 0; i < values.size(); ++i) {
    const std::vector<Field::Element> shares =
        scheme_.Share(values[i], party_rngs_[party]);
    for (size_t j = 0; j < n; ++j) outbound[j][i] = shares[j];
  }
  for (size_t j = 0; j < n; ++j) {
    network_->Send(party, j, std::move(outbound[j]));
  }
  network_->EndRound();

  SharedVector result(n, values.size());
  for (size_t j = 0; j < n; ++j) {
    result.shares(j) = network_->Receive(party, j).ValueOrDie();
  }
  return result;
}

SharedVector BgwProtocol::SharePublic(
    const std::vector<Field::Element>& values) const {
  // A public value is a degree-0 polynomial: every party's share equals the
  // value itself. Valid for Add/Mul since degree 0 <= t.
  SharedVector result(num_parties(), values.size());
  for (size_t j = 0; j < num_parties(); ++j) result.shares(j) = values;
  return result;
}

Result<SharedVector> BgwProtocol::Add(const SharedVector& a,
                                      const SharedVector& b) const {
  if (a.size() != b.size() || a.num_parties() != b.num_parties()) {
    return Status::InvalidArgument("Add: shape mismatch");
  }
  SharedVector out(a.num_parties(), a.size());
  for (size_t j = 0; j < a.num_parties(); ++j) {
    for (size_t i = 0; i < a.size(); ++i) {
      out.shares(j)[i] = Field::Add(a.shares(j)[i], b.shares(j)[i]);
    }
  }
  return out;
}

Result<SharedVector> BgwProtocol::Sub(const SharedVector& a,
                                      const SharedVector& b) const {
  if (a.size() != b.size() || a.num_parties() != b.num_parties()) {
    return Status::InvalidArgument("Sub: shape mismatch");
  }
  SharedVector out(a.num_parties(), a.size());
  for (size_t j = 0; j < a.num_parties(); ++j) {
    for (size_t i = 0; i < a.size(); ++i) {
      out.shares(j)[i] = Field::Sub(a.shares(j)[i], b.shares(j)[i]);
    }
  }
  return out;
}

SharedVector BgwProtocol::ScaleConst(const SharedVector& a,
                                     Field::Element c) const {
  SharedVector out(a.num_parties(), a.size());
  for (size_t j = 0; j < a.num_parties(); ++j) {
    for (size_t i = 0; i < a.size(); ++i) {
      out.shares(j)[i] = Field::Mul(a.shares(j)[i], c);
    }
  }
  return out;
}

Result<SharedVector> BgwProtocol::AddPublic(
    const SharedVector& a, const std::vector<Field::Element>& pub) const {
  if (a.size() != pub.size()) {
    return Status::InvalidArgument("AddPublic: shape mismatch");
  }
  SharedVector out(a.num_parties(), a.size());
  for (size_t j = 0; j < a.num_parties(); ++j) {
    for (size_t i = 0; i < a.size(); ++i) {
      // Adding a public constant to a degree-t sharing adds it to the free
      // coefficient: every party adds the constant to its share.
      out.shares(j)[i] = Field::Add(a.shares(j)[i], pub[i]);
    }
  }
  return out;
}

Result<SharedVector> BgwProtocol::Mul(const SharedVector& a,
                                      const SharedVector& b) {
  if (a.size() != b.size() || a.num_parties() != b.num_parties()) {
    return Status::InvalidArgument("Mul: shape mismatch");
  }
  const size_t n = num_parties();
  const size_t k = a.size();
  PhaseScope phase(network_, "mul");

  // Step 1 (local): each party multiplies its shares, yielding a share of a
  // degree-2t polynomial with the right free coefficient.
  // Step 2 (re-share): each party deals a fresh degree-t sharing of its
  // degree-2t share and distributes the sub-shares — one message per pair,
  // batched over all k elements.
  std::vector<std::vector<std::vector<Field::Element>>> outbound(
      n, std::vector<std::vector<Field::Element>>(
             n, std::vector<Field::Element>(k)));
  for (size_t j = 0; j < n; ++j) {
    for (size_t i = 0; i < k; ++i) {
      const Field::Element product =
          Field::Mul(a.shares(j)[i], b.shares(j)[i]);
      const std::vector<Field::Element> subshares =
          scheme_.Share(product, party_rngs_[j]);
      for (size_t r = 0; r < n; ++r) outbound[j][r][i] = subshares[r];
    }
  }
  for (size_t j = 0; j < n; ++j) {
    for (size_t r = 0; r < n; ++r) {
      network_->Send(j, r, std::move(outbound[j][r]));
    }
  }
  network_->EndRound();

  // Step 3 (local): recombine sub-shares with the degree-2t Lagrange
  // weights. Only the first 2t+1 dealers are needed; the rest are received
  // and discarded, as in the standard description.
  const size_t needed = 2 * scheme_.threshold() + 1;
  SharedVector out(n, k);
  for (size_t r = 0; r < n; ++r) {
    auto& acc = out.shares(r);
    for (size_t j = 0; j < n; ++j) {
      // A failed receive (timed-out retries, crashed dealer) aborts the
      // multiplication gracefully — the caller decides how to recover.
      SQM_ASSIGN_OR_RETURN(const std::vector<Field::Element> received,
                           network_->Receive(j, r));
      if (j >= needed) continue;
      const Field::Element weight = degree2t_lagrange_[j];
      for (size_t i = 0; i < k; ++i) {
        acc[i] = Field::Add(acc[i], Field::Mul(weight, received[i]));
      }
    }
  }
  return out;
}

SharedVector BgwProtocol::SumElements(const SharedVector& a) const {
  SharedVector out(a.num_parties(), 1);
  for (size_t j = 0; j < a.num_parties(); ++j) {
    Field::Element acc = 0;
    for (Field::Element s : a.shares(j)) acc = Field::Add(acc, s);
    out.shares(j)[0] = acc;
  }
  return out;
}

Result<SharedVector> BgwProtocol::InnerProduct(const SharedVector& a,
                                               const SharedVector& b) {
  SQM_ASSIGN_OR_RETURN(SharedVector products, Mul(a, b));
  return SumElements(products);
}

std::vector<Field::Element> BgwProtocol::Open(const SharedVector& a) {
  const size_t n = num_parties();
  PhaseScope phase(network_, "open");
  for (size_t j = 0; j < n; ++j) {
    for (size_t r = 0; r < n; ++r) {
      network_->Send(j, r, a.shares(j));
    }
  }
  network_->EndRound();

  // Every party receives all shares and interpolates; we compute the value
  // once from party 0's viewpoint and drain the rest.
  std::vector<std::vector<Field::Element>> all(n);
  for (size_t j = 0; j < n; ++j) {
    for (size_t r = 0; r < n; ++r) {
      auto received = network_->Receive(j, r).ValueOrDie();
      if (r == 0) all[j] = std::move(received);
    }
  }
  std::vector<Field::Element> out(a.size());
  std::vector<Field::Element> shares(n);
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < n; ++j) shares[j] = all[j][i];
    out[i] = scheme_.Reconstruct(shares);
  }
  return out;
}

std::vector<int64_t> BgwProtocol::OpenSigned(const SharedVector& a) {
  return Field::DecodeVector(Open(a));
}

}  // namespace sqm
