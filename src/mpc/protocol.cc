#include "mpc/protocol.h"

#include <numeric>

#include "core/logging.h"
#include "mpc/beaver.h"
#include "obs/trace.h"

namespace sqm {

BgwProtocol::BgwProtocol(ShamirScheme scheme, Transport* network,
                         uint64_t seed)
    : scheme_(std::move(scheme)), network_(network) {
  SQM_CHECK(network_ != nullptr);
  SQM_CHECK(network_->num_parties() == scheme_.num_parties());
  Rng root(seed);
  party_rngs_.reserve(scheme_.num_parties());
  for (size_t j = 0; j < scheme_.num_parties(); ++j) {
    party_rngs_.push_back(root.Split(j));
  }
  std::vector<size_t> all(2 * scheme_.threshold() + 1);
  std::iota(all.begin(), all.end(), 0);
  degree2t_lagrange_ = scheme_.LagrangeAtZero(all);
}

SharedVector BgwProtocol::ShareFromParty(
    size_t party, const std::vector<Field::Element>& values) {
  const size_t n = num_parties();
  SQM_CHECK(party < n);
  PhaseScope phase(network_, "input");
  // Pinned to the dealer's track: in driver mode one thread plays every
  // party, and the trace should still show who did the work.
  obs::Span span("bgw.share", "mpc", static_cast<int32_t>(party));
  span.AddArg("party", static_cast<int64_t>(party));
  span.AddArg("elements", static_cast<int64_t>(values.size()));
  // The owner deals every recipient's row in one table-driven batch.
  std::vector<std::vector<Field::Element>> outbound =
      scheme_.ShareBatch(values, party_rngs_[party]);
  for (size_t j = 0; j < n; ++j) {
    network_->Send(party, j, std::move(outbound[j]));
  }
  network_->EndRound();

  SharedVector result(n, values.size());
  for (size_t j = 0; j < n; ++j) {
    result.shares(j) = network_->Receive(party, j).ValueOrDie();
  }
  return result;
}

SharedVector BgwProtocol::SharePublic(
    const std::vector<Field::Element>& values) const {
  // A public value is a degree-0 polynomial: every party's share equals the
  // value itself. Valid for Add/Mul since degree 0 <= t.
  SharedVector result(num_parties(), values.size());
  for (size_t j = 0; j < num_parties(); ++j) result.shares(j) = values;
  return result;
}

Result<SharedVector> BgwProtocol::Add(const SharedVector& a,
                                      const SharedVector& b) const {
  if (a.size() != b.size() || a.num_parties() != b.num_parties()) {
    return Status::InvalidArgument("Add: shape mismatch");
  }
  SharedVector out(a.num_parties(), a.size());
  for (size_t j = 0; j < a.num_parties(); ++j) {
    Field::AddVec(a.shares(j).data(), b.shares(j).data(),
                  out.shares(j).data(), a.size());
  }
  return out;
}

Result<SharedVector> BgwProtocol::Sub(const SharedVector& a,
                                      const SharedVector& b) const {
  if (a.size() != b.size() || a.num_parties() != b.num_parties()) {
    return Status::InvalidArgument("Sub: shape mismatch");
  }
  SharedVector out(a.num_parties(), a.size());
  for (size_t j = 0; j < a.num_parties(); ++j) {
    Field::SubVec(a.shares(j).data(), b.shares(j).data(),
                  out.shares(j).data(), a.size());
  }
  return out;
}

SharedVector BgwProtocol::ScaleConst(const SharedVector& a,
                                     Field::Element c) const {
  SharedVector out(a.num_parties(), a.size());
  for (size_t j = 0; j < a.num_parties(); ++j) {
    Field::ScaleVec(a.shares(j).data(), c, out.shares(j).data(), a.size());
  }
  return out;
}

Result<SharedVector> BgwProtocol::AddPublic(
    const SharedVector& a, const std::vector<Field::Element>& pub) const {
  if (a.size() != pub.size()) {
    return Status::InvalidArgument("AddPublic: shape mismatch");
  }
  // Adding a public constant to a degree-t sharing adds it to the free
  // coefficient: every party adds the constant to its share.
  SharedVector out(a.num_parties(), a.size());
  for (size_t j = 0; j < a.num_parties(); ++j) {
    Field::AddVec(a.shares(j).data(), pub.data(), out.shares(j).data(),
                  a.size());
  }
  return out;
}

Result<SharedVector> BgwProtocol::Mul(const SharedVector& a,
                                      const SharedVector& b) {
  if (a.size() != b.size() || a.num_parties() != b.num_parties()) {
    return Status::InvalidArgument("Mul: shape mismatch");
  }
  if (beaver_pool_ != nullptr) return MulBeaver(a, b);
  if (liveness_ != nullptr) return MulQuorum(a, b);
  const size_t n = num_parties();
  const size_t k = a.size();
  PhaseScope phase(network_, "mul");
  obs::Span span("bgw.mul", "mpc");
  span.AddArg("elements", static_cast<int64_t>(k));

  // Step 1 (local): each party multiplies its shares, yielding a share of a
  // degree-2t polynomial with the right free coefficient.
  // Step 2 (re-share): each party deals a fresh degree-t sharing of its
  // degree-2t share batch and distributes the sub-shares — one message per
  // pair carrying all k elements.
  std::vector<Field::Element> products(k);
  for (size_t j = 0; j < n; ++j) {
    obs::Span deal("bgw.mul.deal", "mpc", static_cast<int32_t>(j));
    deal.AddArg("party", static_cast<int64_t>(j));
    Field::MulVec(a.shares(j).data(), b.shares(j).data(), products.data(),
                  k);
    std::vector<std::vector<Field::Element>> outbound =
        scheme_.ShareBatch(products, party_rngs_[j]);
    for (size_t r = 0; r < n; ++r) {
      network_->Send(j, r, std::move(outbound[r]));
    }
  }
  network_->EndRound();

  // Step 3 (local): recombine sub-shares with the degree-2t Lagrange
  // weights. Only the first 2t+1 dealers are needed; the rest are received
  // and discarded, as in the standard description.
  const size_t needed = 2 * scheme_.threshold() + 1;
  SharedVector out(n, k);
  for (size_t r = 0; r < n; ++r) {
    obs::Span recombine("bgw.mul.recombine", "mpc", static_cast<int32_t>(r));
    recombine.AddArg("party", static_cast<int64_t>(r));
    auto& acc = out.shares(r);
    for (size_t j = 0; j < n; ++j) {
      // A failed receive (timed-out retries, crashed dealer) aborts the
      // multiplication gracefully — the caller decides how to recover.
      SQM_ASSIGN_OR_RETURN(const std::vector<Field::Element> received,
                           network_->Receive(j, r));
      if (received.size() != k) {
        // A wrong-length sub-share batch means the channel is desynced —
        // a replayed or stale message — and must never be recombined.
        return Status::IntegrityViolation(
            "Mul sub-share batch from dealer " + std::to_string(j) +
            " to party " + std::to_string(r) + " has " +
            std::to_string(received.size()) + " elements, expected " +
            std::to_string(k) + " (replayed or stale message)");
      }
      if (j >= needed) continue;
      Field::MulAddVec(acc.data(), received.data(), degree2t_lagrange_[j],
                       k);
    }
  }
  if (verify_sharings_) {
    SQM_RETURN_NOT_OK(VerifySharing(out, "Mul output"));
  }
  return out;
}

Result<SharedVector> BgwProtocol::MulQuorum(const SharedVector& a,
                                            const SharedVector& b) {
  const size_t n = num_parties();
  const size_t k = a.size();
  const size_t needed = 2 * scheme_.threshold() + 1;
  PhaseScope phase(network_, "mul");
  obs::Span span("bgw.mul", "mpc");
  span.AddArg("elements", static_cast<int64_t>(k));
  span.AddArg("quorum", 1);

  // Dealing: dead parties neither compute nor send (their RNG streams are
  // independent, so skipping them leaves the survivors' randomness — and
  // hence the recombined free coefficients — untouched). Sends to dead
  // recipients are skipped too; a real sender has removed them from its
  // view.
  std::vector<Field::Element> products(k);
  for (size_t j = 0; j < n; ++j) {
    if (PartyDead(j)) continue;
    obs::Span deal("bgw.mul.deal", "mpc", static_cast<int32_t>(j));
    deal.AddArg("party", static_cast<int64_t>(j));
    Field::MulVec(a.shares(j).data(), b.shares(j).data(), products.data(),
                  k);
    std::vector<std::vector<Field::Element>> outbound =
        scheme_.ShareBatch(products, party_rngs_[j]);
    for (size_t r = 0; r < n; ++r) {
      if (r != j && PartyDead(r)) continue;
      network_->Send(j, r, std::move(outbound[r]));
    }
  }
  network_->EndRound();

  // Collection, dealer-outer: a dealer is usable only if EVERY alive
  // recipient received its sub-share vector — all parties must recombine
  // with the same dealer set and weights or the result is not a consistent
  // degree-t sharing. Payloads are buffered and only accumulated once the
  // dealer set is final.
  std::vector<size_t> usable;
  std::vector<std::vector<std::vector<Field::Element>>> payloads(n);
  for (size_t j = 0; j < n; ++j) {
    if (PartyDead(j)) continue;
    bool dealer_ok = true;
    std::vector<std::vector<Field::Element>> received_rows(n);
    for (size_t r = 0; r < n; ++r) {
      if (r != j && PartyDead(r)) continue;
      Result<Transport::Payload> received = network_->Receive(j, r);
      if (!received.ok()) {
        liveness_->RecordFailure(j, received.status().code());
        if (obs::Enabled()) {
          obs::TraceEvent event;
          event.name = "bgw.mul.dealer_failed";
          event.category = "mpc";
          event.AddArg("dealer", static_cast<int64_t>(j));
          event.AddArg("recipient", static_cast<int64_t>(r));
          obs::Tracer::Global().Instant(event);
        }
        dealer_ok = false;
        break;
      }
      if (received.ValueOrDie().size() != k) {
        return Status::IntegrityViolation(
            "quorum Mul sub-share batch from dealer " + std::to_string(j) +
            " to party " + std::to_string(r) + " has " +
            std::to_string(received.ValueOrDie().size()) +
            " elements, expected " + std::to_string(k) +
            " (replayed or stale message)");
      }
      received_rows[r] = std::move(received).ValueOrDie();
    }
    if (!dealer_ok) continue;
    liveness_->RecordSuccess(j);
    usable.push_back(j);
    payloads[j] = std::move(received_rows);
  }

  if (usable.size() < needed) {
    return Status::Unavailable(
        "Mul quorum shortfall: degree-2t recombination needs 2t+1 = " +
        std::to_string(needed) + " dealers, only " +
        std::to_string(usable.size()) + " of " + std::to_string(n) +
        " delivered (dead: " + std::to_string(liveness_->num_dead()) + ")");
  }

  // Recombine over the first 2t+1 usable dealers with Lagrange weights for
  // exactly those evaluation points. Any such subset yields the same free
  // coefficient, so degraded outputs equal the no-crash outputs.
  const std::vector<size_t> dealers(usable.begin(), usable.begin() + needed);
  const std::vector<Field::Element> weights = scheme_.LagrangeAtZero(dealers);
  SharedVector out(n, k);
  for (size_t r = 0; r < n; ++r) {
    if (PartyDead(r)) continue;
    obs::Span recombine("bgw.mul.recombine", "mpc", static_cast<int32_t>(r));
    recombine.AddArg("party", static_cast<int64_t>(r));
    auto& acc = out.shares(r);
    for (size_t d = 0; d < dealers.size(); ++d) {
      Field::MulAddVec(acc.data(), payloads[dealers[d]][r].data(),
                       weights[d], k);
    }
  }
  if (verify_sharings_) {
    SQM_RETURN_NOT_OK(VerifySharing(out, "quorum Mul output"));
  }
  return out;
}

SharedVector BgwProtocol::SumElements(const SharedVector& a) const {
  SharedVector out(a.num_parties(), 1);
  for (size_t j = 0; j < a.num_parties(); ++j) {
    Field::Element acc = 0;
    for (Field::Element s : a.shares(j)) acc = Field::Add(acc, s);
    out.shares(j)[0] = acc;
  }
  return out;
}

Result<SharedVector> BgwProtocol::InnerProduct(const SharedVector& a,
                                               const SharedVector& b) {
  SQM_ASSIGN_OR_RETURN(SharedVector products, Mul(a, b));
  return SumElements(products);
}

std::vector<Field::Element> BgwProtocol::Open(const SharedVector& a) {
  PhaseScope phase(network_, "open");
  return OpenInPhase(a);
}

std::vector<Field::Element> BgwProtocol::OpenInPhase(const SharedVector& a) {
  const size_t n = num_parties();
  obs::Span span("bgw.open", "mpc");
  span.AddArg("elements", static_cast<int64_t>(a.size()));
  for (size_t j = 0; j < n; ++j) {
    obs::Span broadcast("bgw.open.broadcast", "mpc", static_cast<int32_t>(j));
    broadcast.AddArg("party", static_cast<int64_t>(j));
    for (size_t r = 0; r < n; ++r) {
      network_->Send(j, r, a.shares(j));
    }
  }
  network_->EndRound();

  // Every party receives all shares and interpolates; we compute the value
  // once from party 0's viewpoint and drain the rest.
  std::vector<std::vector<Field::Element>> all(n);
  for (size_t j = 0; j < n; ++j) {
    for (size_t r = 0; r < n; ++r) {
      auto received = network_->Receive(j, r).ValueOrDie();
      if (r == 0) all[j] = std::move(received);
    }
  }
  // One table-driven recombination sweep instead of a.size() scalar
  // interpolations (bit-identical; see ShamirScheme::ReconstructBatch).
  return scheme_.ReconstructBatch(all);
}

std::vector<int64_t> BgwProtocol::OpenSigned(const SharedVector& a) {
  return Field::DecodeVector(Open(a));
}

Result<SharedVector> BgwProtocol::TryShareFromParty(
    size_t party, const std::vector<Field::Element>& values,
    const std::string& phase_label) {
  const size_t n = num_parties();
  SQM_CHECK(party < n);
  SQM_CHECK(liveness_ != nullptr);
  if (PartyDead(party)) {
    return Status::Unavailable("input sharing impossible: dealer party " +
                               std::to_string(party) + " is dead");
  }
  PhaseScope phase(network_, phase_label);
  obs::Span span("bgw.share", "mpc", static_cast<int32_t>(party));
  span.AddArg("party", static_cast<int64_t>(party));
  span.AddArg("elements", static_cast<int64_t>(values.size()));
  std::vector<std::vector<Field::Element>> outbound =
      scheme_.ShareBatch(values, party_rngs_[party]);
  for (size_t j = 0; j < n; ++j) {
    if (j != party && PartyDead(j)) continue;
    network_->Send(party, j, std::move(outbound[j]));
  }
  network_->EndRound();

  SharedVector result(n, values.size());
  for (size_t j = 0; j < n; ++j) {
    if (j != party && PartyDead(j)) continue;
    Result<Transport::Payload> received = network_->Receive(party, j);
    if (!received.ok()) {
      liveness_->RecordFailure(party, received.status().code());
      // A lost input is not degradable: no quorum of other parties holds
      // the dealer's secret. Surface kUnavailable and let the caller
      // decide whether the run can proceed without this input.
      return Status::Unavailable(
          "input sharing from party " + std::to_string(party) +
          " failed (" + received.status().message() +
          "); inputs cannot be reconstructed by a quorum");
    }
    result.shares(j) = std::move(received).ValueOrDie();
  }
  liveness_->RecordSuccess(party);
  return result;
}

Result<std::vector<Field::Element>> BgwProtocol::TryOpen(
    const SharedVector& a) {
  PhaseScope phase(network_, "open");
  return TryOpenInPhase(a);
}

Result<std::vector<Field::Element>> BgwProtocol::TryOpenInPhase(
    const SharedVector& a) {
  const size_t n = num_parties();
  SQM_CHECK(liveness_ != nullptr);
  obs::Span span("bgw.open", "mpc");
  span.AddArg("elements", static_cast<int64_t>(a.size()));
  span.AddArg("quorum", 1);
  for (size_t j = 0; j < n; ++j) {
    if (PartyDead(j)) continue;
    obs::Span broadcast("bgw.open.broadcast", "mpc", static_cast<int32_t>(j));
    broadcast.AddArg("party", static_cast<int64_t>(j));
    for (size_t r = 0; r < n; ++r) {
      if (r != j && PartyDead(r)) continue;
      network_->Send(j, r, a.shares(j));
    }
  }
  network_->EndRound();

  // Collect each usable broadcaster's share vector and drain the other
  // recipients' copies so no stale messages linger. A broadcaster sends the
  // SAME vector to every recipient, so the first successfully received copy
  // serves as everyone's view — this stays correct even when a party dies
  // in the middle of this very round (its pending copies simply fail).
  if (liveness_->num_alive() == 0) {
    return Status::Unavailable("open impossible: every party is dead");
  }
  std::vector<bool> have(n, false);
  std::vector<std::vector<Field::Element>> all(n);
  for (size_t j = 0; j < n; ++j) {
    if (PartyDead(j)) continue;
    bool broadcaster_ok = true;
    bool have_copy = false;
    std::vector<Field::Element> kept;
    for (size_t r = 0; r < n; ++r) {
      if (r != j && PartyDead(r)) continue;
      Result<Transport::Payload> received = network_->Receive(j, r);
      if (!received.ok()) {
        liveness_->RecordFailure(j, received.status().code());
        broadcaster_ok = false;
        break;
      }
      if (!have_copy) {
        kept = std::move(received).ValueOrDie();
        have_copy = true;
      }
    }
    if (!broadcaster_ok || !have_copy) continue;
    liveness_->RecordSuccess(j);
    have[j] = true;
    all[j] = std::move(kept);
  }

  std::vector<size_t> survivors;
  for (size_t j = 0; j < n; ++j) {
    if (have[j]) survivors.push_back(j);
  }
  return scheme_.ReconstructBatchFromSurvivors(all, survivors,
                                               scheme_.threshold());
}

Result<SharedVector> BgwProtocol::MulBeaver(const SharedVector& a,
                                            const SharedVector& b) {
  const size_t n = num_parties();
  const size_t k = a.size();
  PhaseScope phase(network_, "mul");
  obs::Span span("bgw.mul", "mpc");
  span.AddArg("elements", static_cast<int64_t>(k));
  span.AddArg("beaver", 1);

  BeaverTriplePool::TripleBatch triples;
  SQM_ASSIGN_OR_RETURN(triples, beaver_pool_->Take(k));
  beaver_triples_used_ += k;

  // Local masking: pack d = x - a and e = y - b into one 2k-element shared
  // vector so the whole Mul costs exactly one opening round.
  SharedVector packed(n, 2 * k);
  for (size_t j = 0; j < n; ++j) {
    if (PartyDead(j)) continue;
    auto& dst = packed.shares(j);
    Field::SubVec(a.shares(j).data(), triples.a.shares(j).data(),
                  dst.data(), k);
    Field::SubVec(b.shares(j).data(), triples.b.shares(j).data(),
                  dst.data() + k, k);
  }
  std::vector<Field::Element> opened;
  if (liveness_ != nullptr) {
    // Quorum opening, but no census round: the opened values are PUBLIC,
    // so any threshold+1 survivor shares of a consistent sharing agree —
    // survivor-set agreement across parties is unnecessary. This is why
    // the Beaver online path costs one round where quorum GRR costs two.
    SQM_ASSIGN_OR_RETURN(opened, TryOpenInPhase(packed));
  } else {
    opened = OpenInPhase(packed);
  }

  // Local combination [xy] = [c] + d*[b] + e*[a] + d*e (same accumulation
  // order as BeaverMultiplier, hence bit-identical results).
  const Field::Element* d = opened.data();
  const Field::Element* e = opened.data() + k;
  std::vector<Field::Element> de(k);
  Field::MulVec(d, e, de.data(), k);
  std::vector<Field::Element> term(k);
  SharedVector out(n, k);
  for (size_t j = 0; j < n; ++j) {
    if (PartyDead(j)) continue;
    auto& dst = out.shares(j);
    dst = triples.c.shares(j);
    Field::MulVec(d, triples.b.shares(j).data(), term.data(), k);
    Field::AddVec(dst.data(), term.data(), dst.data(), k);
    Field::MulVec(e, triples.a.shares(j).data(), term.data(), k);
    Field::AddVec(dst.data(), term.data(), dst.data(), k);
    Field::AddVec(dst.data(), de.data(), dst.data(), k);
  }
  if (verify_sharings_) {
    SQM_RETURN_NOT_OK(VerifySharing(out, "Beaver Mul output"));
  }
  return out;
}

Result<std::vector<int64_t>> BgwProtocol::TryOpenSigned(
    const SharedVector& a) {
  SQM_ASSIGN_OR_RETURN(const std::vector<Field::Element> opened, TryOpen(a));
  return Field::DecodeVector(opened);
}

Status BgwProtocol::VerifySharing(const SharedVector& a,
                                  const std::string& where) const {
  const size_t n = num_parties();
  std::vector<size_t> usable;
  usable.reserve(n);
  for (size_t j = 0; j < n; ++j) {
    if (!PartyDead(j)) usable.push_back(j);
  }
  std::vector<Field::Element> shares(n);
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < n; ++j) shares[j] = a.shares(j)[i];
    const Status status =
        scheme_.CheckConsistentSharing(shares, usable, scheme_.threshold());
    if (!status.ok()) {
      return Status(status.code(), where + ", element " + std::to_string(i) +
                                       ": " + status.message());
    }
  }
  return Status::OK();
}

Result<SharedVector> BgwProtocol::ShareFromPartyChecked(
    size_t party, const std::vector<Field::Element>& values) {
  const size_t n = num_parties();
  SQM_CHECK(party < n);
  PhaseScope phase(network_, "input");
  obs::Span span("bgw.share", "mpc", static_cast<int32_t>(party));
  span.AddArg("party", static_cast<int64_t>(party));
  span.AddArg("elements", static_cast<int64_t>(values.size()));
  std::vector<std::vector<Field::Element>> outbound =
      scheme_.ShareBatch(values, party_rngs_[party]);
  for (size_t j = 0; j < n; ++j) {
    network_->Send(party, j, std::move(outbound[j]));
  }
  network_->EndRound();

  SharedVector result(n, values.size());
  for (size_t j = 0; j < n; ++j) {
    SQM_ASSIGN_OR_RETURN(Transport::Payload received,
                         network_->Receive(party, j));
    if (received.size() != values.size()) {
      return Status::IntegrityViolation(
          "input dealing from party " + std::to_string(party) + " to " +
          std::to_string(j) + " has " + std::to_string(received.size()) +
          " elements, expected " + std::to_string(values.size()));
    }
    result.shares(j) = std::move(received);
  }
  if (verify_sharings_) {
    SQM_RETURN_NOT_OK(VerifySharing(
        result, "input dealing from party " + std::to_string(party)));
  }
  return result;
}

Result<std::vector<Field::Element>> BgwProtocol::OpenChecked(
    const SharedVector& a) {
  const size_t n = num_parties();
  PhaseScope phase(network_, "open");
  obs::Span span("bgw.open", "mpc");
  span.AddArg("elements", static_cast<int64_t>(a.size()));
  span.AddArg("checked", 1);
  for (size_t j = 0; j < n; ++j) {
    obs::Span broadcast("bgw.open.broadcast", "mpc", static_cast<int32_t>(j));
    broadcast.AddArg("party", static_cast<int64_t>(j));
    for (size_t r = 0; r < n; ++r) {
      network_->Send(j, r, a.shares(j));
    }
  }
  network_->EndRound();

  // Collect EVERY recipient's copy of every broadcast (Open keeps only
  // party 0's): equivocation — a broadcaster telling different recipients
  // different shares — is visible only across copies.
  std::vector<std::vector<Field::Element>> view(n);
  for (size_t j = 0; j < n; ++j) {
    for (size_t r = 0; r < n; ++r) {
      SQM_ASSIGN_OR_RETURN(Transport::Payload received,
                           network_->Receive(j, r));
      if (received.size() != a.size()) {
        return Status::IntegrityViolation(
            "opened broadcast from party " + std::to_string(j) + " to " +
            std::to_string(r) + " has " + std::to_string(received.size()) +
            " elements, expected " + std::to_string(a.size()));
      }
      if (r == 0) {
        view[j] = std::move(received);
      } else if (received != view[j]) {
        return Status::IntegrityViolation(
            "equivocation: party " + std::to_string(j) +
            " broadcast different share vectors to recipients 0 and " +
            std::to_string(r));
      }
    }
  }

  std::vector<Field::Element> out(a.size());
  std::vector<Field::Element> shares(n);
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < n; ++j) shares[j] = view[j][i];
    const Status status =
        scheme_.CheckConsistentSharing(shares, scheme_.threshold());
    if (!status.ok()) {
      return Status(status.code(),
                    "open, element " + std::to_string(i) + ": " +
                        status.message());
    }
    out[i] = scheme_.Reconstruct(shares);
  }
  return out;
}

Result<std::vector<int64_t>> BgwProtocol::OpenSignedChecked(
    const SharedVector& a) {
  SQM_ASSIGN_OR_RETURN(const std::vector<Field::Element> opened,
                       OpenChecked(a));
  return Field::DecodeVector(opened);
}

size_t BgwProtocol::DrainPending() {
  const size_t n = num_parties();
  size_t drained = 0;
  for (size_t j = 0; j < n; ++j) {
    for (size_t r = 0; r < n; ++r) {
      while (network_->HasPending(j, r)) {
        Result<Transport::Payload> stale = network_->Receive(j, r);
        if (!stale.ok()) break;
        ++drained;
      }
    }
  }
  return drained;
}

}  // namespace sqm
