#include "mpc/shamir.h"

#include <numeric>

#include "core/logging.h"

namespace sqm {

ShamirScheme::ShamirScheme(size_t num_parties, size_t threshold)
    : num_parties_(num_parties), threshold_(threshold) {
  SQM_CHECK(Validate(num_parties, threshold).ok());
  // Precompute the evaluation and recombination tables once per scheme so
  // the batched hot path is table lookups, not repeated interpolation.
  vandermonde_.resize(num_parties_);
  for (size_t j = 0; j < num_parties_; ++j) {
    vandermonde_[j].resize(threshold_ + 1);
    vandermonde_[j][0] = 1;
    const Field::Element x = EvaluationPoint(j);
    for (size_t e = 1; e <= threshold_; ++e) {
      vandermonde_[j][e] = Field::Mul(vandermonde_[j][e - 1], x);
    }
  }
  std::vector<size_t> basis_t(threshold_ + 1);
  std::iota(basis_t.begin(), basis_t.end(), 0);
  lagrange_t_ = LagrangeAtZero(basis_t);
  std::vector<size_t> basis_2t(2 * threshold_ + 1);  // 2t+1 <= n (Validate).
  std::iota(basis_2t.begin(), basis_2t.end(), 0);
  lagrange_2t_ = LagrangeAtZero(basis_2t);
}

Status ShamirScheme::Validate(size_t num_parties, size_t threshold) {
  if (num_parties < 2) {
    return Status::InvalidArgument("Shamir sharing needs >= 2 parties");
  }
  if (2 * threshold >= num_parties) {
    return Status::InvalidArgument(
        "BGW multiplication requires threshold < num_parties / 2");
  }
  if (threshold == 0) {
    return Status::InvalidArgument(
        "threshold 0 gives every party the secret in the clear");
  }
  return Status::OK();
}

Field::Element ShamirScheme::EvaluationPoint(size_t party) const {
  SQM_CHECK(party < num_parties_);
  return static_cast<Field::Element>(party + 1);
}

std::vector<Field::Element> ShamirScheme::Share(Field::Element secret,
                                                Rng& rng) const {
  // Random polynomial phi(x) = secret + c_1 x + ... + c_t x^t.
  std::vector<Field::Element> coeffs(threshold_ + 1);
  coeffs[0] = secret;
  for (size_t i = 1; i <= threshold_; ++i) {
    coeffs[i] = rng.NextBounded(Field::kModulus);
  }
  std::vector<Field::Element> shares(num_parties_);
  for (size_t j = 0; j < num_parties_; ++j) {
    // Horner evaluation at alpha_j.
    const Field::Element x = EvaluationPoint(j);
    Field::Element acc = coeffs[threshold_];
    for (size_t i = threshold_; i-- > 0;) {
      acc = Field::Add(Field::Mul(acc, x), coeffs[i]);
    }
    shares[j] = acc;
  }
  return shares;
}

Field::Element ShamirScheme::Reconstruct(
    const std::vector<Field::Element>& shares) const {
  SQM_CHECK(shares.size() == num_parties_);
  if (verify_reconstruction_) {
    // Debug mode: interpolation uses only the first t+1 shares, so a
    // tampered trailing share would otherwise pass silently. Check the
    // full n-point sharing before trusting it.
    const Status consistent = CheckConsistentSharing(shares, threshold_);
    if (!consistent.ok()) SQM_LOG(kError) << consistent.ToString();
    SQM_CHECK(consistent.ok());
  }
  Field::Element acc = 0;
  for (size_t j = 0; j <= threshold_; ++j) {
    acc = Field::Add(acc, Field::Mul(lagrange_t_[j], shares[j]));
  }
  return acc;
}

Result<Field::Element> ShamirScheme::ReconstructChecked(
    const std::vector<Field::Element>& shares) const {
  SQM_CHECK(shares.size() == num_parties_);
  SQM_RETURN_NOT_OK(CheckConsistentSharing(shares, threshold_));
  Field::Element acc = 0;
  for (size_t j = 0; j <= threshold_; ++j) {
    acc = Field::Add(acc, Field::Mul(lagrange_t_[j], shares[j]));
  }
  return acc;
}

std::vector<std::vector<Field::Element>> ShamirScheme::ShareBatch(
    const std::vector<Field::Element>& secrets, Rng& rng) const {
  const size_t d = secrets.size();
  // Draw every polynomial's coefficients first, secret-major — the exact
  // order d scalar Share calls consume the stream — then evaluate all d
  // polynomials per party as one table multiply-accumulate sweep per
  // coefficient index.
  std::vector<std::vector<Field::Element>> coeffs(
      threshold_, std::vector<Field::Element>(d));
  for (size_t i = 0; i < d; ++i) {
    for (size_t e = 0; e < threshold_; ++e) {
      coeffs[e][i] = rng.NextBounded(Field::kModulus);
    }
  }
  std::vector<std::vector<Field::Element>> rows(num_parties_);
  for (size_t j = 0; j < num_parties_; ++j) {
    rows[j] = secrets;  // vandermonde_[j][0] == 1: constant term.
    for (size_t e = 0; e < threshold_; ++e) {
      Field::MulAddVec(rows[j].data(), coeffs[e].data(),
                       vandermonde_[j][e + 1], d);
    }
  }
  return rows;
}

std::vector<Field::Element> ShamirScheme::ReconstructBatch(
    const std::vector<std::vector<Field::Element>>& rows) const {
  SQM_CHECK(rows.size() == num_parties_);
  const size_t d = rows.empty() ? 0 : rows[0].size();
  for (const std::vector<Field::Element>& row : rows) {
    SQM_CHECK(row.size() == d);
  }
  if (verify_reconstruction_) {
    std::vector<Field::Element> column(num_parties_);
    for (size_t i = 0; i < d; ++i) {
      for (size_t j = 0; j < num_parties_; ++j) column[j] = rows[j][i];
      const Status consistent = CheckConsistentSharing(column, threshold_);
      if (!consistent.ok()) SQM_LOG(kError) << consistent.ToString();
      SQM_CHECK(consistent.ok());
    }
  }
  std::vector<Field::Element> out(d, 0);
  for (size_t j = 0; j <= threshold_; ++j) {
    Field::MulAddVec(out.data(), rows[j].data(), lagrange_t_[j], d);
  }
  return out;
}

Result<std::vector<Field::Element>> ShamirScheme::ReconstructBatchFromSurvivors(
    const std::vector<std::vector<Field::Element>>& rows,
    const std::vector<size_t>& survivors, size_t degree) const {
  SQM_CHECK(rows.size() == num_parties_);
  std::vector<size_t> parties;
  SQM_ASSIGN_OR_RETURN(parties, SelectSurvivorBasis(survivors, degree));
  size_t d = rows[parties[0]].size();
  for (size_t party : parties) {
    if (rows[party].size() != d) {
      return Status::IntegrityViolation(
          "survivor " + std::to_string(party) +
          " sent a batch of length " + std::to_string(rows[party].size()) +
          ", expected " + std::to_string(d));
    }
  }
  const std::vector<Field::Element> lagrange = LagrangeAtZero(parties);
  std::vector<Field::Element> out(d, 0);
  for (size_t j = 0; j < parties.size(); ++j) {
    Field::MulAddVec(out.data(), rows[parties[j]].data(), lagrange[j], d);
  }
  return out;
}

Result<Field::Element> ShamirScheme::ReconstructFromSubset(
    const std::vector<std::pair<size_t, Field::Element>>& shares) const {
  if (shares.size() < threshold_ + 1) {
    return Status::InvalidArgument(
        "not enough shares to reconstruct: need threshold+1");
  }
  std::vector<size_t> parties;
  parties.reserve(threshold_ + 1);
  for (const auto& [party, unused] : shares) {
    if (party >= num_parties_) {
      return Status::InvalidArgument("share from unknown party index");
    }
    for (size_t seen : parties) {
      if (seen == party) {
        return Status::InvalidArgument("duplicate party index in shares");
      }
    }
    parties.push_back(party);
    if (parties.size() == threshold_ + 1) break;
  }
  const std::vector<Field::Element> lagrange = LagrangeAtZero(parties);
  Field::Element acc = 0;
  for (size_t j = 0; j < parties.size(); ++j) {
    acc = Field::Add(acc, Field::Mul(lagrange[j], shares[j].second));
  }
  return acc;
}

Field::Element ShamirScheme::ReconstructDegree2t(
    const std::vector<Field::Element>& shares) const {
  SQM_CHECK(shares.size() == num_parties_);
  const size_t needed = 2 * threshold_ + 1;
  Field::Element acc = 0;
  for (size_t j = 0; j < needed; ++j) {
    acc = Field::Add(acc, Field::Mul(lagrange_2t_[j], shares[j]));
  }
  return acc;
}

Result<std::vector<size_t>> ShamirScheme::SelectSurvivorBasis(
    const std::vector<size_t>& survivors, size_t degree) const {
  const size_t needed = degree + 1;
  std::vector<size_t> parties;
  parties.reserve(needed);
  for (size_t party : survivors) {
    if (party >= num_parties_) {
      return Status::InvalidArgument("survivor index " +
                                     std::to_string(party) +
                                     " out of range");
    }
    bool duplicate = false;
    for (size_t seen : parties) {
      if (seen == party) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    parties.push_back(party);
    if (parties.size() == needed) break;
  }
  if (parties.size() < needed) {
    return Status::FailedPrecondition(
        "quorum too small for degree-" + std::to_string(degree) +
        " reconstruction: need " + std::to_string(needed) +
        " survivors, have " + std::to_string(parties.size()));
  }
  return parties;
}

Result<Field::Element> ShamirScheme::ReconstructFromSurvivors(
    const std::vector<Field::Element>& shares,
    const std::vector<size_t>& survivors, size_t degree) const {
  SQM_CHECK(shares.size() == num_parties_);
  std::vector<size_t> parties;
  SQM_ASSIGN_OR_RETURN(parties, SelectSurvivorBasis(survivors, degree));
  const std::vector<Field::Element> lagrange = LagrangeAtZero(parties);
  Field::Element acc = 0;
  for (size_t j = 0; j < parties.size(); ++j) {
    acc = Field::Add(acc, Field::Mul(lagrange[j], shares[parties[j]]));
  }
  return acc;
}

std::vector<Field::Element> ShamirScheme::LagrangeAtZero(
    const std::vector<size_t>& parties) const {
  return LagrangeAt(parties, 0);
}

std::vector<Field::Element> ShamirScheme::LagrangeAt(
    const std::vector<size_t>& parties, Field::Element x) const {
  std::vector<Field::Element> coeffs(parties.size());
  for (size_t j = 0; j < parties.size(); ++j) {
    const Field::Element xj = EvaluationPoint(parties[j]);
    Field::Element num = 1;
    Field::Element den = 1;
    for (size_t l = 0; l < parties.size(); ++l) {
      if (l == j) continue;
      const Field::Element xl = EvaluationPoint(parties[l]);
      // L_j(x) = prod_{l != j} (x - x_l) / (x_j - x_l).
      num = Field::Mul(num, Field::Sub(x, xl));
      den = Field::Mul(den, Field::Sub(xj, xl));
    }
    coeffs[j] = Field::Mul(num, Field::Inv(den));
  }
  return coeffs;
}

Status ShamirScheme::CheckConsistentSharing(
    const std::vector<Field::Element>& shares,
    const std::vector<size_t>& parties, size_t degree) const {
  SQM_CHECK(shares.size() == num_parties_);
  const size_t basis_size = degree + 1;
  if (parties.size() <= basis_size) return Status::OK();  // No redundancy.
  const std::vector<size_t> basis(parties.begin(),
                                  parties.begin() + basis_size);
  for (size_t j = basis_size; j < parties.size(); ++j) {
    const size_t party = parties[j];
    const std::vector<Field::Element> weights =
        LagrangeAt(basis, EvaluationPoint(party));
    Field::Element predicted = 0;
    for (size_t l = 0; l < basis.size(); ++l) {
      predicted =
          Field::Add(predicted, Field::Mul(weights[l], shares[basis[l]]));
    }
    if (predicted != shares[party]) {
      return Status::IntegrityViolation(
          "inconsistent sharing: party " + std::to_string(party) +
          "'s share does not lie on the degree-" + std::to_string(degree) +
          " polynomial through the first " + std::to_string(basis_size) +
          " shares (wrong-degree dealing, equivocation, or a tampered "
          "share)");
    }
  }
  return Status::OK();
}

Status ShamirScheme::CheckConsistentSharing(
    const std::vector<Field::Element>& shares, size_t degree) const {
  std::vector<size_t> all(num_parties_);
  std::iota(all.begin(), all.end(), 0);
  return CheckConsistentSharing(shares, all, degree);
}

}  // namespace sqm
