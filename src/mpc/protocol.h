#ifndef SQM_MPC_PROTOCOL_H_
#define SQM_MPC_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"
#include "mpc/field.h"
#include "mpc/shamir.h"
#include "net/liveness.h"
#include "net/transport.h"
#include "sampling/rng.h"

namespace sqm {

class BeaverTriplePool;

/// A secret-shared vector: element i is Shamir-shared across all parties,
/// shares(party)[i] being party's share. Produced and consumed by
/// BgwProtocol; callers never see plaintext until Open().
class SharedVector {
 public:
  SharedVector() = default;
  SharedVector(size_t num_parties, size_t size)
      : shares_(num_parties, std::vector<Field::Element>(size, 0)) {}

  size_t num_parties() const { return shares_.size(); }
  size_t size() const { return shares_.empty() ? 0 : shares_[0].size(); }

  std::vector<Field::Element>& shares(size_t party) { return shares_[party]; }
  const std::vector<Field::Element>& shares(size_t party) const {
    return shares_[party];
  }

 private:
  std::vector<std::vector<Field::Element>> shares_;
};

/// Vectorized semi-honest BGW primitives over an abstract transport.
///
/// Executes all parties in one process, exactly following the message
/// pattern of the real protocol so that communication counters and round
/// counts are faithful:
///  - `ShareFromParty` — the input phase (one round of n-1 sends).
///  - `Add`/`Sub`/`ScaleConst`/`AddPublic` — local, no communication.
///  - `Mul` — each party multiplies its shares locally (degree-2t sharing),
///    re-shares the product with a fresh degree-t polynomial, and the
///    parties recombine with the degree-2t Lagrange weights (GRR
///    degree-reduction; one round, n*(n-1) messages per batch).
///  - `Open` — each party broadcasts its share; everyone interpolates
///    (one round).
///
/// All element-wise operations are batched: a Mul over a K-element vector
/// costs one round and n*(n-1) messages of K elements, matching how a real
/// implementation would pack a round's traffic.
///
/// The protocol is transport-agnostic: over LockstepTransport it reproduces
/// the paper's deterministic simulation; over ThreadedTransport the same
/// message pattern runs with blocking receives, and fault-injected drops
/// are recovered by the transport's retry path. `Mul` surfaces transport
/// failures (e.g. a crashed party) as an error Status; `ShareFromParty` and
/// `Open` assume delivery eventually succeeds (retries included) and abort
/// on an exhausted channel, which in a correct configuration indicates a
/// protocol bug rather than a recoverable fault.
///
/// Dropout tolerance: attach a LivenessTracker via set_liveness() to switch
/// Mul into its quorum path and enable TryShareFromParty / TryOpen /
/// TryOpenSigned. Parties the tracker declares dead are skipped entirely
/// (no sends, no timeout windows burned), and recombination / opening
/// interpolate over the surviving evaluation points: any 2t+1 usable
/// dealers recombine a product to the same degree-t sharing free
/// coefficient, so a degraded run's released values are bit-identical to
/// the no-crash run's. Fewer than 2t+1 usable dealers fails with
/// kUnavailable naming the quorum shortfall. Without a tracker the legacy
/// behavior (and traffic pattern) is unchanged.
class BgwProtocol {
 public:
  /// `network` must outlive the protocol and have the same party count as
  /// `scheme`. `seed` drives all sharing randomness.
  BgwProtocol(ShamirScheme scheme, Transport* network, uint64_t seed);

  size_t num_parties() const { return scheme_.num_parties(); }
  const ShamirScheme& scheme() const { return scheme_; }

  /// Party `party` inputs plaintext `values`; everyone ends up with shares.
  SharedVector ShareFromParty(size_t party,
                              const std::vector<Field::Element>& values);

  /// Shares a public constant vector (deterministic degree-0 "sharing";
  /// no communication — every party just adopts the constant).
  SharedVector SharePublic(const std::vector<Field::Element>& values) const;

  /// Element-wise addition/subtraction; local.
  Result<SharedVector> Add(const SharedVector& a, const SharedVector& b) const;
  Result<SharedVector> Sub(const SharedVector& a, const SharedVector& b) const;

  /// Multiplies every element by public constant c; local.
  SharedVector ScaleConst(const SharedVector& a, Field::Element c) const;

  /// Adds a public vector to a shared vector; local.
  Result<SharedVector> AddPublic(const SharedVector& a,
                                 const std::vector<Field::Element>& pub) const;

  /// Element-wise product with GRR degree reduction; one communication
  /// round.
  Result<SharedVector> Mul(const SharedVector& a, const SharedVector& b);

  /// Sum of all elements into a 1-element shared vector; local.
  SharedVector SumElements(const SharedVector& a) const;

  /// Inner product <a, b> as a 1-element shared vector: one Mul round plus
  /// a local sum.
  Result<SharedVector> InnerProduct(const SharedVector& a,
                                    const SharedVector& b);

  /// Opens the shared vector to all parties (one round) and returns the
  /// plaintext.
  std::vector<Field::Element> Open(const SharedVector& a);

  /// Convenience: opens and decodes to centered signed integers.
  std::vector<int64_t> OpenSigned(const SharedVector& a);

  /// Enables conformance verification (default off, so benchmark timings
  /// and traffic are unchanged): Mul additionally checks that the
  /// recombined product is a consistent degree-t sharing, and the Checked
  /// entry points below become the preferred input/open paths. With
  /// verification on, every single-message wire tamper (additive
  /// perturbation, bit flip, wrong-degree dealing, equivocation, replay,
  /// swallow) surfaces as a descriptive error Status instead of a silent
  /// wrong open — the property tests/adversary_test.cc asserts per policy.
  /// A real deployment would get the same guarantee from verifiable secret
  /// sharing / authenticated shares; in this single-process simulation the
  /// global view makes the check direct.
  void set_verify_sharings(bool verify) {
    verify_sharings_ = verify;
    // Also arm the scheme-level debug assert: Reconstruct checks that ALL
    // n shares lie on the interpolated polynomial instead of silently
    // using only the first threshold+1.
    scheme_.set_verify_reconstruction(verify);
  }
  bool verify_sharings() const { return verify_sharings_; }

  /// Attaches an offline-dealt BeaverTriplePool (nullptr detaches); Mul
  /// switches from GRR degree reduction to the Beaver online path: one
  /// opening of (x-a, y-b) per Mul, consuming one triple per element, and
  /// no census round on the quorum path (the opened values are public, so
  /// any t+1 survivor shares agree without a dealer-set agreement round).
  /// The pool must outlive the protocol while attached; exhaustion
  /// surfaces as the pool's kFailedPrecondition.
  void set_beaver_pool(BeaverTriplePool* pool) { beaver_pool_ = pool; }
  BeaverTriplePool* beaver_pool() const { return beaver_pool_; }

  /// Beaver triples consumed by Mul since construction (0 under GRR).
  size_t beaver_triples_used() const { return beaver_triples_used_; }

  /// Conformance check: every element of `a` must be a consistent
  /// degree-threshold sharing across all parties (or across the alive
  /// parties when a liveness tracker is attached). kIntegrityViolation
  /// names `where` and the offending element on failure.
  Status VerifySharing(const SharedVector& a, const std::string& where) const;

  /// Input sharing that surfaces transport failures and (when verification
  /// is enabled) inconsistent dealings as a Status instead of aborting:
  /// the conformance-hardened replacement for ShareFromParty.
  Result<SharedVector> ShareFromPartyChecked(
      size_t party, const std::vector<Field::Element>& values);

  /// Opening hardened against byzantine broadcasters: receives every
  /// recipient's copy, fails with kIntegrityViolation when a broadcaster
  /// equivocated (sent different share vectors to different recipients) or
  /// when the collected shares are not a consistent degree-t sharing, and
  /// surfaces receive failures as their transport Status. Traffic pattern
  /// is identical to Open.
  Result<std::vector<Field::Element>> OpenChecked(const SharedVector& a);
  Result<std::vector<int64_t>> OpenSignedChecked(const SharedVector& a);

  /// Attaches (or detaches, with nullptr) a shared failure detector. Must
  /// outlive the protocol while attached. With a tracker, Mul runs its
  /// quorum path and the Try* entry points become dropout-tolerant.
  void set_liveness(LivenessTracker* tracker) { liveness_ = tracker; }
  LivenessTracker* liveness() const { return liveness_; }

  /// Dropout-tolerant input sharing. A dead dealer, or a receive failure
  /// during the round, fails with kUnavailable — a lost *input* cannot be
  /// degraded around (the secret is gone), only the dealing party excluded
  /// by the caller. `phase_label` tags the traffic (e.g. "input", "topup").
  Result<SharedVector> TryShareFromParty(
      size_t party, const std::vector<Field::Element>& values,
      const std::string& phase_label = "input");

  /// Dropout-tolerant opening: dead parties neither broadcast nor receive,
  /// and reconstruction interpolates over any threshold+1 usable
  /// survivors' shares (kFailedPrecondition below that).
  Result<std::vector<Field::Element>> TryOpen(const SharedVector& a);
  Result<std::vector<int64_t>> TryOpenSigned(const SharedVector& a);

  /// Discards every currently deliverable queued message. Called when
  /// resuming from a checkpoint after a failed round, so stale sub-shares
  /// from the aborted round cannot mix into the retry's fresh randomness.
  /// Driver-mode only (single protocol-driving thread).
  size_t DrainPending();

 private:
  /// Quorum-path multiplication used when a tracker is attached.
  Result<SharedVector> MulQuorum(const SharedVector& a,
                                 const SharedVector& b);

  /// Beaver online multiplication used when a pool is attached: one
  /// opening (tagged to the "mul" phase) plus local combination.
  Result<SharedVector> MulBeaver(const SharedVector& a,
                                 const SharedVector& b);

  /// Broadcast-and-reconstruct bodies shared by Open/TryOpen and
  /// MulBeaver; the caller owns the PhaseScope so the traffic lands in
  /// the right phase bucket.
  std::vector<Field::Element> OpenInPhase(const SharedVector& a);
  Result<std::vector<Field::Element>> TryOpenInPhase(const SharedVector& a);

  bool PartyDead(size_t party) const {
    return liveness_ != nullptr && liveness_->IsDead(party);
  }

  ShamirScheme scheme_;
  Transport* network_;
  LivenessTracker* liveness_ = nullptr;
  BeaverTriplePool* beaver_pool_ = nullptr;
  bool verify_sharings_ = false;
  size_t beaver_triples_used_ = 0;
  std::vector<Rng> party_rngs_;  // Independent randomness per party.
  std::vector<Field::Element> degree2t_lagrange_;
};

}  // namespace sqm

#endif  // SQM_MPC_PROTOCOL_H_
